// Package profiler implements Dilu's multi-factor profiling (§3.2): the
// binary-search training profiler and the Hybrid Growth Search Strategy
// (HGSS) for inference <SMR, IBS> configurations, plus the baseline
// searchers compared in Table 2 (exhaustive Traversal, GPUlet's two-phase
// pre-running grid, and INFless' predictive decomposition).
//
// Each "trial" corresponds to one pre-running measurement (~30 s on the
// paper's testbed); searchers run trials against a solo instance on an
// idle GPU, which the simulator evaluates in closed form from the model
// catalog — exactly what a pre-run would converge to.
package profiler

import (
	"fmt"

	"dilu/internal/gpu"
	"dilu/internal/model"
	"dilu/internal/sim"
)

// Role distinguishes training and inference functions.
type Role int

// Function roles.
const (
	RoleInference Role = iota
	RoleTraining
)

func (r Role) String() string {
	if r == RoleTraining {
		return "training"
	}
	return "inference"
}

// SMRStep is the linear SMR growth unit of HGSS ("10 units" = 10% SM).
const SMRStep = 0.10

// TrainResult is the outcome of training profiling.
type TrainResult struct {
	Request float64 // SMR meeting 80% of exclusive throughput
	Limit   float64 // SMR meeting near-exclusive (98%) throughput
	Trials  int
}

// requestThroughputTarget and limitThroughputTarget are the p factors of
// the binary search: request ensures 80% exclusive throughput, limit the
// marginal-effect point (within 2% of exclusive).
const (
	requestThroughputTarget = 0.80
	limitThroughputTarget   = 0.98
)

// ProfileTraining runs the paper's binary search twice (request, limit).
// The exclusive-throughput measurement is shared between the searches.
func ProfileTraining(spec *model.Spec) TrainResult {
	trials := 1 // T1 at 100% SMR
	t1 := spec.TrainThroughput(1.0)
	search := func(p float64) float64 {
		lo, hi := 0.0, 1.0
		smr := 0.5
		for i := 0; i < 20; i++ {
			trials++
			ti := spec.TrainThroughput(smr)
			ratio := ti / t1
			if ratio >= p-0.02 && ratio <= p+0.02 {
				return smr
			}
			if ratio < p {
				lo = smr
			} else {
				hi = smr
			}
			smr = (lo + hi) / 2
		}
		return smr
	}
	req := search(requestThroughputTarget)
	lim := search(limitThroughputTarget)
	if lim < req {
		lim = req
	}
	return TrainResult{Request: req, Limit: lim, Trials: trials}
}

// InferResult is the outcome of an inference configuration search.
type InferResult struct {
	Request float64 // optimal SMR (the star of Figure 4)
	Limit   float64 // 2× request, capped at 1 (burst headroom)
	IBS     int
	TE      float64
	Trials  int
	Method  string
}

// execTime evaluates one pre-running trial: the batch execution time
// (TPOT for generative models) at the given configuration.
func execTime(spec *model.Spec, smr float64, ibs int) sim.Duration {
	if spec.Generative {
		return spec.TPOT(smr, ibs)
	}
	return spec.InferExecTime(smr, ibs)
}

// feasible applies the SLO rule t_exec ≤ SLO/2 (the INFless convention
// the paper adopts to cover batching wait, communication and
// preprocessing overheads).
func feasible(spec *model.Spec, smr float64, ibs int) bool {
	return execTime(spec, smr, ibs) <= spec.SLO/2
}

// te computes throughput efficacy for a configuration. For generative
// models throughput is tokens per second per SM unit.
func te(spec *model.Spec, smr float64, ibs int) float64 {
	if smr <= 0 {
		return 0
	}
	t := execTime(spec, smr, ibs).Seconds()
	if t <= 0 {
		return 0
	}
	return float64(ibs) / t / (smr * 100)
}

func finishInfer(spec *model.Spec, smr float64, ibs, trials int, method string) InferResult {
	lim := 2 * smr
	if lim > 1 {
		lim = 1
	}
	return InferResult{
		Request: smr, Limit: lim, IBS: ibs,
		TE: te(spec, smr, ibs), Trials: trials, Method: method,
	}
}

// HGSS is Dilu's Hybrid Growth Search Strategy: IBS doubles while SMR
// grows linearly by SMRStep; infeasible larger batches are pruned by a
// single full-SMR bound probe, exploiting the convex TE surface.
func HGSS(spec *model.Spec) InferResult {
	trials := 0
	smr := SMRStep
	// Climb SMR until the batch-1 configuration meets the SLO.
	for smr <= 1.0 {
		trials++
		if feasible(spec, smr, 1) {
			break
		}
		smr += SMRStep
	}
	if smr > 1.0 {
		// SLO unattainable even exclusively; fall back to full GPU.
		return finishInfer(spec, 1.0, 1, trials, "Dilu")
	}
	bestSMR, bestIBS := smr, 1
	bestTE := te(spec, smr, 1)
	for ibs := 2; ibs <= model.MaxIBS; ibs *= 2 {
		// Pruning probe: if even the whole GPU cannot make this batch
		// feasible, no larger batch can be either (work is monotone).
		trials++
		if !feasible(spec, 1.0, ibs) {
			break
		}
		s := bestSMR
		for s <= 1.0 {
			trials++
			if feasible(spec, s, ibs) {
				break
			}
			s += SMRStep
		}
		if s > 1.0 {
			break
		}
		if t := te(spec, s, ibs); t > bestTE {
			bestTE, bestSMR, bestIBS = t, s, ibs
		} else {
			// Convex surface: once TE declines, the forward path is done.
			break
		}
	}
	return finishInfer(spec, bestSMR, bestIBS, trials, "Dilu")
}

// Traversal exhaustively pre-runs the full 6×10 <IBS, SMR> grid (60
// trials) and picks the feasible configuration with the best TE.
func Traversal(spec *model.Spec) InferResult {
	trials := 0
	bestTE := -1.0
	bestSMR, bestIBS := 1.0, 1
	for ibs := 1; ibs <= model.MaxIBS; ibs *= 2 {
		for smr := SMRStep; smr <= 1.0+1e-9; smr += SMRStep {
			trials++
			if !feasible(spec, smr, ibs) {
				continue
			}
			if t := te(spec, smr, ibs); t > bestTE {
				bestTE, bestSMR, bestIBS = t, smr, ibs
			}
		}
	}
	return finishInfer(spec, bestSMR, bestIBS, trials, "Traversal")
}

// GPUlet pre-runs a coarse two-phase 4×4 grid (16 trials, matching the
// constant trial count Table 2 reports) and refines to the best feasible
// cell.
func GPUlet(spec *model.Spec) InferResult {
	trials := 0
	bestTE := -1.0
	bestSMR, bestIBS := 1.0, 1
	for _, ibs := range []int{1, 2, 4, 8} {
		for _, smr := range []float64{0.25, 0.5, 0.75, 1.0} {
			trials++
			if !feasible(spec, smr, ibs) {
				continue
			}
			if t := te(spec, smr, ibs); t > bestTE {
				bestTE, bestSMR, bestIBS = t, smr, ibs
			}
		}
	}
	return finishInfer(spec, bestSMR, bestIBS, trials, "GPUlet")
}

// INFless models the predictive searcher: the model is decomposed into
// operator groups whose execution times are predicted from calibration
// runs — 8 trials per candidate batch level up to the first level that is
// infeasible even at full SMR. Prediction error (the paper notes lower
// accuracy from operator-time prediction) is modeled as one SMR step of
// overshoot on the chosen request quota.
func INFless(spec *model.Spec) InferResult {
	trials := 0
	levels := 0
	for ibs := 1; ibs <= model.MaxIBS; ibs *= 2 {
		levels++
		if !feasible(spec, 1.0, ibs) {
			break
		}
	}
	trials = 8 * levels
	// Predicted optimum: like traversal but on predicted times, with the
	// final SMR rounded up one step (conservative prediction margin).
	ref := Traversal(spec)
	smr := ref.Request + SMRStep
	if smr > 1 {
		smr = 1
	}
	res := finishInfer(spec, smr, ref.IBS, trials, "INFless")
	return res
}

// SearchByName dispatches a Table 2 searcher by its label.
func SearchByName(name string, spec *model.Spec) (InferResult, error) {
	switch name {
	case "Dilu":
		return HGSS(spec), nil
	case "Traversal":
		return Traversal(spec), nil
	case "GPUlet":
		return GPUlet(spec), nil
	case "INFless":
		return INFless(spec), nil
	}
	return InferResult{}, fmt.Errorf("profiler: unknown searcher %q", name)
}

// ---------------------------------------------------------------------------
// Figure 4 surface.

// SurfacePoint is one cell of the ⟨IBS, SMR, TE⟩ surface of Figure 4.
type SurfacePoint struct {
	IBS      int
	SMR      float64
	TE       float64
	Feasible bool
	Star     bool
}

// TESurface evaluates the full surface and marks the HGSS optimum.
func TESurface(spec *model.Spec) []SurfacePoint {
	star := HGSS(spec)
	var out []SurfacePoint
	for ibs := 1; ibs <= model.MaxIBS; ibs *= 2 {
		for smr := SMRStep; smr <= 1.0+1e-9; smr += SMRStep {
			p := SurfacePoint{
				IBS: ibs, SMR: smr,
				TE:       te(spec, smr, ibs),
				Feasible: feasible(spec, smr, ibs),
			}
			if ibs == star.IBS && abs(smr-star.Request) < SMRStep/2 {
				p.Star = true
			}
			out = append(out, p)
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// Function profiles.

// Profile is the resourcing metadata the scheduler and scalers consume.
type Profile struct {
	Spec  *model.Spec
	Role  Role
	SMReq float64
	SMLim float64
	IBS   int // inference batch size (1 for training)
	MemMB float64
	// ServingRPS is one instance's sustainable request rate at its
	// request quota — the per-instance capacity the global scaler uses.
	ServingRPS float64
	// SeedKLC is the duration in seconds of an uncontended batch-1
	// iteration (decode step for generative models; compute phase for
	// training) at the limit quota, and SeedWork its block work. They
	// prime RCKM clients' T_min; the serving plane divides both by the
	// pipeline stage count.
	SeedKLC  float64
	SeedWork float64
	Trials   int
}

// For profiles a function with Dilu's searchers and derives the serving
// metadata.
func For(spec *model.Spec, role Role) Profile {
	if role == RoleTraining {
		r := ProfileTraining(spec)
		// Compute-only iteration time at the limit quota (sync excluded:
		// the KLC covers kernel launches, not communication idle).
		seed := spec.TrainWork / (model.BlocksPerSecond * gpu.Eff(spec.TrainSatK(), r.Limit))
		return Profile{
			Spec: spec, Role: role,
			SMReq: r.Request, SMLim: r.Limit, IBS: 1,
			MemMB: spec.TrainMemMB, SeedKLC: seed, SeedWork: spec.TrainWork,
			Trials: r.Trials,
		}
	}
	r := HGSS(spec)
	seed := execTime(spec, r.Limit, 1).Seconds()
	seedWork := spec.InferWork(1)
	if spec.Generative {
		seedWork = spec.DecodeStepWork(1)
	}
	return Profile{
		Spec: spec, Role: role,
		SMReq: r.Request, SMLim: r.Limit, IBS: r.IBS,
		MemMB:      spec.InferMemMB,
		ServingRPS: spec.InferThroughput(r.Request, r.IBS),
		SeedKLC:    seed, SeedWork: seedWork, Trials: r.Trials,
	}
}

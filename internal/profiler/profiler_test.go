package profiler

import (
	"math"
	"testing"
	"testing/quick"

	"dilu/internal/model"
)

func TestTrainingBinarySearchTargets(t *testing.T) {
	for _, spec := range model.All() {
		r := ProfileTraining(spec)
		t1 := spec.TrainThroughput(1.0)
		reqRatio := spec.TrainThroughput(r.Request) / t1
		limRatio := spec.TrainThroughput(r.Limit) / t1
		if reqRatio < 0.76 || reqRatio > 0.86 {
			t.Fatalf("%s: request ratio %.3f, want ~0.80±0.02", spec.Name, reqRatio)
		}
		if limRatio < 0.94 {
			t.Fatalf("%s: limit ratio %.3f, want ≥0.96±0.02", spec.Name, limRatio)
		}
		if r.Request > r.Limit {
			t.Fatalf("%s: request %v > limit %v", spec.Name, r.Request, r.Limit)
		}
		if r.Trials > 25 {
			t.Fatalf("%s: binary search used %d trials", spec.Name, r.Trials)
		}
	}
}

func TestHGSSMeetsSLO(t *testing.T) {
	for _, spec := range model.All() {
		r := HGSS(spec)
		if !feasible(spec, r.Request, r.IBS) {
			t.Fatalf("%s: HGSS star (%d, %.1f) violates SLO", spec.Name, r.IBS, r.Request)
		}
		if r.Limit < r.Request || r.Limit > 1 {
			t.Fatalf("%s: bad limit %v for request %v", spec.Name, r.Limit, r.Request)
		}
	}
}

func TestHGSSInteriorStars(t *testing.T) {
	// The sigmoid TE surface must put stars at interior, moderate
	// configurations (Figure 4), not pinned to the SMR grid edge for the
	// larger models.
	for _, name := range []string{"RoBERTa-large", "GPT2-large", "LLaMA2-7B"} {
		r := HGSS(model.ByName(name))
		if r.Request < 0.15 || r.Request > 0.95 {
			t.Fatalf("%s: star SMR %.2f at grid edge", name, r.Request)
		}
		if r.IBS < 2 {
			t.Fatalf("%s: star IBS %d — batching should pay off", name, r.IBS)
		}
	}
}

func TestTable2TrialCounts(t *testing.T) {
	// Table 2 shape: Traversal = 60 per model; GPUlet = 16 constant;
	// Dilu far below both; INFless in between.
	for _, name := range []string{"ResNet152", "RoBERTa-large", "GPT2-large", "LLaMA2-7B"} {
		spec := model.ByName(name)
		trav := Traversal(spec)
		gpulet := GPUlet(spec)
		dilu := HGSS(spec)
		infless := INFless(spec)
		if trav.Trials != 60 {
			t.Fatalf("%s: traversal trials = %d, want 60", name, trav.Trials)
		}
		if gpulet.Trials != 16 {
			t.Fatalf("%s: GPUlet trials = %d, want 16", name, gpulet.Trials)
		}
		if dilu.Trials >= gpulet.Trials {
			t.Fatalf("%s: Dilu trials %d not below GPUlet %d", name, dilu.Trials, gpulet.Trials)
		}
		if infless.Trials <= gpulet.Trials || infless.Trials >= trav.Trials {
			t.Fatalf("%s: INFless trials %d out of (16,60)", name, infless.Trials)
		}
	}
}

func TestHGSSNearOptimalTE(t *testing.T) {
	// HGSS follows a forward path; its star may be slightly below the
	// exhaustive optimum but must stay within a reasonable factor.
	for _, spec := range model.All() {
		h := HGSS(spec)
		tr := Traversal(spec)
		if h.TE < 0.5*tr.TE {
			t.Fatalf("%s: HGSS TE %.3f vs traversal %.3f — too far off", spec.Name, h.TE, tr.TE)
		}
	}
}

func TestINFlessOvershootsRequest(t *testing.T) {
	// INFless' predictive margin allocates at least the traversal-optimal
	// SMR (the conservative 30% RoBERTa allocation of Figure 2(a)).
	spec := model.ByName("RoBERTa-large")
	inf := INFless(spec)
	trav := Traversal(spec)
	if inf.Request < trav.Request {
		t.Fatalf("INFless request %v below optimal %v", inf.Request, trav.Request)
	}
	if !feasible(spec, inf.Request, inf.IBS) {
		t.Fatal("INFless config violates SLO")
	}
}

func TestSearchByName(t *testing.T) {
	spec := model.ByName("BERT-base")
	for _, n := range []string{"Dilu", "Traversal", "GPUlet", "INFless"} {
		r, err := SearchByName(n, spec)
		if err != nil {
			t.Fatal(err)
		}
		if r.Trials == 0 {
			t.Fatalf("%s: zero trials", n)
		}
	}
	if _, err := SearchByName("zzz", spec); err == nil {
		t.Fatal("expected error")
	}
}

func TestTESurfaceHasStarAndBlockedCells(t *testing.T) {
	for _, name := range []string{"ResNet152", "RoBERTa-large", "GPT2-large", "LLaMA2-7B"} {
		pts := TESurface(model.ByName(name))
		if len(pts) != 60 {
			t.Fatalf("%s: surface has %d cells, want 60", name, len(pts))
		}
		stars, feas, infeas := 0, 0, 0
		for _, p := range pts {
			if p.Star {
				stars++
				if !p.Feasible {
					t.Fatalf("%s: star on infeasible cell", name)
				}
			}
			if p.Feasible {
				feas++
			} else {
				infeas++
			}
		}
		if stars != 1 {
			t.Fatalf("%s: %d stars", name, stars)
		}
		if feas == 0 || infeas == 0 {
			t.Fatalf("%s: surface not mixed (feasible=%d infeasible=%d)", name, feas, infeas)
		}
	}
}

func TestProfileForInference(t *testing.T) {
	p := For(model.ByName("RoBERTa-large"), RoleInference)
	if p.Role != RoleInference || p.IBS < 1 {
		t.Fatalf("bad profile %+v", p)
	}
	if p.ServingRPS <= 0 {
		t.Fatal("serving RPS missing")
	}
	if p.MemMB != model.ByName("RoBERTa-large").InferMemMB {
		t.Fatal("memory mismatch")
	}
	if p.SeedKLC <= 0 {
		t.Fatal("seed KLC missing")
	}
	// Serving capacity at the request quota must be consistent with the
	// model's predicted throughput.
	want := model.ByName("RoBERTa-large").InferThroughput(p.SMReq, p.IBS)
	if math.Abs(p.ServingRPS-want) > 1e-9 {
		t.Fatalf("serving RPS %v != %v", p.ServingRPS, want)
	}
}

func TestProfileForTraining(t *testing.T) {
	p := For(model.ByName("GPT2-large"), RoleTraining)
	if p.Role != RoleTraining || p.IBS != 1 {
		t.Fatalf("bad profile %+v", p)
	}
	if p.MemMB != model.ByName("GPT2-large").TrainMemMB {
		t.Fatal("memory mismatch")
	}
	if p.SMReq <= 0 || p.SMLim < p.SMReq || p.SMLim > 1 {
		t.Fatalf("quotas: req=%v lim=%v", p.SMReq, p.SMLim)
	}
}

// Property: for every model the profiled request quota never exceeds the
// limit, and both stay in (0, 1].
func TestQuotaOrderingProperty(t *testing.T) {
	models := model.All()
	f := func(mi uint8, train bool) bool {
		spec := models[int(mi)%len(models)]
		role := RoleInference
		if train {
			role = RoleTraining
		}
		p := For(spec, role)
		return p.SMReq > 0 && p.SMReq <= p.SMLim && p.SMLim <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package simtest

import (
	"strings"
	"testing"

	"dilu/internal/core"
	"dilu/internal/scaler"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// checkedSystem builds a small collocated system with every checker
// attached and both workload kinds deployed.
func checkedSystem(t *testing.T) *core.System {
	t.Helper()
	sys := core.MustSystem(core.Config{
		Nodes: 1, GPUsPerNode: 2, Seed: 7,
		Invariants: Checkers(),
		NewScaler:  func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) },
	})
	if _, err := sys.DeployTraining("train", "BERT-base", core.TrainOpts{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeployInference("inf", "RoBERTa-large", core.InferOpts{
		Arrivals: workload.Poisson{RPS: 30},
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCheckersGreenOnHealthySystem(t *testing.T) {
	sys := checkedSystem(t)
	// Scale-out/in, keep-alive churn and training completion all happen
	// inside this horizon; any bookkeeping drift panics.
	sys.Run(40 * sim.Second)
}

func TestCheckersAreFreshPerCall(t *testing.T) {
	a, b := Checkers(), Checkers()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("checker count: %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name == "" || a[i].Check == nil {
			t.Fatalf("checker %d incomplete", i)
		}
		// Closures must be distinct instances (per-system state).
		if &a[i] == &b[i] {
			t.Fatal("shared checker instance")
		}
	}
}

func TestQuotaConservationCatchesDrift(t *testing.T) {
	sys := checkedSystem(t)
	sys.Run(2 * sim.Second)
	g := sys.Clu.GPUs()[0]
	g.SumReq += 0.25 // simulate a leaked reservation
	err := QuotaConservation().Check(sys, sys.Eng.Now())
	if err == nil || !strings.Contains(err.Error(), "quota sums drifted") {
		t.Fatalf("drift not caught: %v", err)
	}
	g.SumReq -= 0.25
	if err := QuotaConservation().Check(sys, sys.Eng.Now()); err != nil {
		t.Fatalf("healthy system flagged: %v", err)
	}
}

func TestQuotaConservationCatchesDeviceSplitBrain(t *testing.T) {
	sys := checkedSystem(t)
	sys.Run(2 * sim.Second)
	for _, g := range sys.Clu.GPUs() {
		if len(g.Placements) == 0 {
			continue
		}
		p := g.Placements[0]
		p.MemMB += 512 // placement-side accounting now disagrees
		g.MemUsedMB += 512
		err := QuotaConservation().Check(sys, sys.Eng.Now())
		if err == nil || !strings.Contains(err.Error(), "split brain") {
			t.Fatalf("device split brain not caught: %v", err)
		}
		p.MemMB -= 512
		g.MemUsedMB -= 512
		return
	}
	t.Fatal("no placed GPU found")
}

func TestMonotoneTimeCatchesBackwardsClock(t *testing.T) {
	sys := checkedSystem(t)
	sys.Run(6 * sim.Second) // advance the engine clock past the probe times
	inv := MonotoneTime()
	if err := inv.Check(sys, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	err := inv.Check(sys, 4*sim.Second)
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("backwards clock not caught: %v", err)
	}
	// A fresh instance has no watermark — same time is fine again.
	if err := MonotoneTime().Check(sys, 4*sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestNoNegativeResidentsCatchesCorruption(t *testing.T) {
	sys := checkedSystem(t)
	sys.Run(2 * sim.Second)
	for _, g := range sys.Clu.GPUs() {
		if g.Dev == nil || g.Dev.ResidentCount() == 0 {
			continue
		}
		r := g.Dev.Residents()[0]
		r.MemMB = -1
		err := NoNegativeResidents().Check(sys, sys.Eng.Now())
		if err == nil || !strings.Contains(err.Error(), "negative resident memory") {
			t.Fatalf("negative memory not caught: %v", err)
		}
		r.MemMB = 1
		return
	}
	t.Fatal("no resident found")
}

func TestViolationPanicsDuringRun(t *testing.T) {
	sys := core.MustSystem(core.Config{
		Nodes: 1, GPUsPerNode: 1, Seed: 1,
		Invariants: []core.Invariant{{
			Name: "always-broken",
			Check: func(*core.System, sim.Time) error {
				return errInjected
			},
		}},
	})
	if _, err := sys.DeployInference("inf", "BERT-base", core.InferOpts{
		Arrivals: workload.Constant{RPS: 10},
	}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "always-broken") {
			t.Fatalf("panic does not name the invariant: %v", r)
		}
	}()
	sys.Run(10 * sim.Second)
}

var errInjected = errInjectedType{}

type errInjectedType struct{}

func (errInjectedType) Error() string { return "injected failure" }

func TestActiveSetConsistencyGreenAcrossScaling(t *testing.T) {
	// A bursty workload drives scale-out (cold starts), keep-alive
	// descheduling and warm reuse — the transitions the active-set
	// bookkeeping has to survive.
	sys := core.MustSystem(core.Config{
		Nodes: 1, GPUsPerNode: 4, Seed: 3,
		Invariants: Checkers(),
		NewScaler:  func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) },
	})
	if _, err := sys.DeployInference("burst", "RoBERTa-large", core.InferOpts{
		Arrivals: workload.Bursty{BaseRPS: 10, Scale: 6, BurstDur: 5 * sim.Second, Quiet: 10 * sim.Second},
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run(60 * sim.Second)
	if err := ActiveSetConsistency().Check(sys, sys.Eng.Now()); err != nil {
		t.Fatal(err)
	}
}

// Package simtest provides invariant checkers for the simulation kernel
// and the core world loop — the testing counterpart of the PR-2 active-set
// refactor. Checkers attach through core.Config.Invariants (or globally
// via core.SetDefaultInvariantFactory from a TestMain) and verify, at
// every fired tick and at the run horizon, that the incremental indexes
// the hot path trusts — GPU quota sums, device memory accounting, tick
// active sets — still agree with the ground truth recomputed from first
// principles.
//
// Checkers are read-only and hold any per-run state (the monotone-time
// watermark) in closures, so every System must get fresh instances:
// always install the Checkers factory, never a shared slice.
package simtest

import (
	"fmt"
	"math"

	"dilu/internal/cluster"
	"dilu/internal/core"
	"dilu/internal/gpu"
	"dilu/internal/instance"
	"dilu/internal/sim"
)

// quotaEps absorbs float accumulation drift in quota sums: reservations
// are added and subtracted in varying order over thousands of
// placements, which is exactly the drift the conservation check must
// tolerate while still catching real leaks (a leaked placement is off
// by whole quota units, not 1e-9ths).
const quotaEps = 1e-6

// Checkers returns one fresh instance of every invariant, ready for
// core.Config.Invariants or core.SetDefaultInvariantFactory.
func Checkers() []core.Invariant {
	return []core.Invariant{
		QuotaConservation(),
		NoNegativeResidents(),
		MonotoneTime(),
		ActiveSetConsistency(),
		RetiredGPUQuiescence(),
		ClassQuotaConservation(),
		RequestConservation(),
		KVConservation(),
	}
}

// KVConservation verifies the token-level KV-cache ledger at every
// granularity, for every run (zero everywhere unless an LLM function is
// deployed):
//
//   - per GPU, the KV slice recorded on placements sums to the GPU's
//     KVUsedMB aggregate (ReserveKV/ReleaseKV/Remove maintain both);
//   - KVUsedMB is non-negative and never exceeds the memory actually
//     reserved on the GPU — KV is a slice of MemUsedMB, not an addition;
//   - per device, the GPU's KV aggregate equals a from-scratch recount
//     over every live LLM instance's resident sequences (each sequence's
//     charge split evenly over its stages, the runtime's own split), so
//     no interleaving of admission, decode growth, preemption, abort, or
//     teardown can leak or double-free a token's worth of cache.
func KVConservation() core.Invariant {
	return core.Invariant{
		Name: "kv-conservation",
		Check: func(sys *core.System, now sim.Time) error {
			recount := map[*gpu.Device]float64{}
			for _, f := range sys.Functions() {
				f.VisitInstances(func(in instance.Server, warm bool) {
					l, ok := in.(*instance.LLM)
					if !ok {
						return
					}
					per := l.KVUsedMB() / float64(len(l.Stages))
					for _, st := range l.Stages {
						recount[st.Res.Device()] += per
					}
				})
			}
			for _, g := range sys.Clu.GPUs() {
				var pkv float64
				for _, p := range g.Placements {
					pkv += p.KVMB
				}
				if math.Abs(pkv-g.KVUsedMB) > quotaEps {
					return fmt.Errorf("%s: KV placement ledger drifted: GPU %.6f ≠ Σ placements %.6f",
						g.ID, g.KVUsedMB, pkv)
				}
				if g.KVUsedMB < -quotaEps {
					return fmt.Errorf("%s: negative KV reservation %.6f", g.ID, g.KVUsedMB)
				}
				if g.KVUsedMB > g.MemUsedMB+quotaEps {
					return fmt.Errorf("%s: KV reservation %.6f exceeds reserved memory %.6f",
						g.ID, g.KVUsedMB, g.MemUsedMB)
				}
				if g.Dev != nil {
					if got := recount[g.Dev]; math.Abs(got-g.KVUsedMB) > quotaEps {
						return fmt.Errorf("%s: KV ledger drifted: GPU %.6f ≠ Σ live sequences %.6f",
							g.ID, g.KVUsedMB, got)
					}
				}
			}
			return nil
		},
	}
}

// RequestConservation verifies the gateway's admission ledger against
// the serving plane, per function and per tenant:
//
//   - submitted = admitted + shed (the gateway never loses a decision);
//   - admitted = served + in-flight + lost, where in-flight is recounted
//     from first principles — gateway pending plus every instance's
//     queued and batched requests, including keep-alive entries — and
//     lost is the explicit ledger of batches destroyed by no-keep-alive
//     scale-in; an eviction or sweep that dropped requests without
//     either redispatching or recording them is caught the tick it
//     happens;
//   - the tenant ledgers' totals equal the function ledgers' totals (a
//     request is accounted against exactly one tenant and one function,
//     even when its request-level tenant differs from the function's
//     deployment tenant).
//
// Under resilience (retries/hedges) the conservation equation gains the
// duplicate-copy term — recount = in-flight + extra live copies — and
// the at-most-once-service check arms: distinct served request IDs must
// equal recorded service count, so no interleaving of abort, retry, and
// hedge ever records the same request twice. The tenant ledgers'
// retry/hedge totals must likewise match the per-function mitigation
// stats (the budget is charged exactly once per redelivery).
func RequestConservation() core.Invariant {
	return core.Invariant{
		Name: "request-conservation",
		Check: func(sys *core.System, now sim.Time) error {
			var fSub, fAdm, fShed, fRetry, fHedge int64
			for _, f := range sys.Functions() {
				sub, adm, shed := f.GatewayCounts()
				if sub != adm+shed {
					return fmt.Errorf("%s: gateway ledger leak: submitted %d ≠ admitted %d + shed %d",
						f.Name, sub, adm, shed)
				}
				inflight := f.InFlightCount()
				if inflight < 0 {
					return fmt.Errorf("%s: negative in-flight ledger: admitted %d < served %d + lost %d",
						f.Name, adm, f.Served(), f.Lost())
				}
				if recount, extra := f.RecountInFlight(), f.ExtraCopies(); recount != inflight+extra {
					return fmt.Errorf("%s: in-flight drifted: ledger %d + %d extra copies, ground truth %d (pending+queued+batched+parked)",
						f.Name, inflight, extra, recount)
				}
				if unique, ok := f.UniqueServed(); ok && unique != f.Served() {
					return fmt.Errorf("%s: at-most-once service violated: %d distinct requests served, %d services recorded",
						f.Name, unique, f.Served())
				}
				st := f.ResilienceStats()
				fRetry += st.Retries
				fHedge += st.Hedges
				fSub += sub
				fAdm += adm
				fShed += shed
			}
			var tSub, tAdm, tShed, tRetry, tHedge int64
			for _, ts := range sys.GatewayTenantStats() {
				if ts.Submitted != ts.Admitted+ts.Shed {
					return fmt.Errorf("tenant %q: gateway ledger leak: submitted %d ≠ admitted %d + shed %d",
						ts.Tenant, ts.Submitted, ts.Admitted, ts.Shed)
				}
				tSub += ts.Submitted
				tAdm += ts.Admitted
				tShed += ts.Shed
				tRetry += ts.Retries
				tHedge += ts.Hedges
			}
			if tSub != fSub || tAdm != fAdm || tShed != fShed {
				return fmt.Errorf("tenant/function ledgers disagree: tenants %d/%d/%d, functions %d/%d/%d (submitted/admitted/shed)",
					tSub, tAdm, tShed, fSub, fAdm, fShed)
			}
			if tRetry != fRetry || tHedge != fHedge {
				return fmt.Errorf("retry-budget ledgers disagree: tenants %d/%d, functions %d/%d (retries/hedges)",
					tRetry, tHedge, fRetry, fHedge)
			}
			return nil
		},
	}
}

// QuotaConservation verifies the cluster's incremental bookkeeping
// against ground truth: every GPU's SM request/limit and memory sums
// must equal the recomputation over its placements, memory must fit the
// card, the active-GPU index must match placement state exactly, and a
// GPU's device-side memory reservation must mirror the placement-side
// one.
func QuotaConservation() core.Invariant {
	return core.Invariant{
		Name: "quota-conservation",
		Check: func(sys *core.System, now sim.Time) error {
			clu := sys.Clu
			occupied := 0
			for _, g := range clu.GPUs() {
				var req, lim, treq, mem float64
				for _, p := range g.Placements {
					req += p.Req
					lim += p.Lim
					if p.TrueReq > 0 {
						treq += p.TrueReq
					} else {
						treq += p.Req
					}
					mem += p.MemMB
				}
				if math.Abs(req-g.SumReq) > quotaEps || math.Abs(lim-g.SumLim) > quotaEps ||
					math.Abs(treq-g.SumTrueReq) > quotaEps || math.Abs(mem-g.MemUsedMB) > quotaEps {
					return fmt.Errorf("%s: quota sums drifted: req %.9f≠%.9f lim %.9f≠%.9f true %.9f≠%.9f mem %.3f≠%.3f",
						g.ID, g.SumReq, req, g.SumLim, lim, g.SumTrueReq, treq, g.MemUsedMB, mem)
				}
				if g.MemUsedMB > g.MemCapMB+quotaEps {
					return fmt.Errorf("%s: memory over capacity: %.1f > %.1f MB", g.ID, g.MemUsedMB, g.MemCapMB)
				}
				if g.Active() {
					occupied++
				}
				if g.Dev != nil {
					var devMem float64
					for _, r := range g.Dev.Residents() {
						devMem += r.MemMB
					}
					if math.Abs(devMem-g.Dev.MemUsedMB()) > quotaEps {
						return fmt.Errorf("%s: device memory drifted: %.3f ≠ Σ residents %.3f", g.ID, g.Dev.MemUsedMB(), devMem)
					}
					if math.Abs(g.Dev.MemUsedMB()-g.MemUsedMB) > quotaEps {
						return fmt.Errorf("%s: device/placement memory split brain: dev %.3f vs placements %.3f",
							g.ID, g.Dev.MemUsedMB(), g.MemUsedMB)
					}
				}
			}
			if occupied != clu.OccupiedCount() {
				return fmt.Errorf("occupied-GPU index drifted: index %d, ground truth %d", clu.OccupiedCount(), occupied)
			}
			active := clu.ActiveGPUs()
			if len(active) != occupied {
				return fmt.Errorf("active-GPU list has %d entries, ground truth %d", len(active), occupied)
			}
			for i, g := range active {
				if !g.Active() {
					return fmt.Errorf("active-GPU list holds idle GPU %s", g.ID)
				}
				if i > 0 && active[i-1].Pos() >= g.Pos() {
					return fmt.Errorf("active-GPU list out of inventory order at %s", g.ID)
				}
			}
			return nil
		},
	}
}

// NoNegativeResidents verifies device-side execution state: resident
// counts, pending block demand, token grants and memory can never go
// negative, and a detached resident can never linger on a device.
func NoNegativeResidents() core.Invariant {
	return core.Invariant{
		Name: "no-negative-residents",
		Check: func(sys *core.System, now sim.Time) error {
			for _, g := range sys.Clu.GPUs() {
				if g.Dev == nil {
					continue
				}
				if g.Dev.MemUsedMB() < -quotaEps {
					return fmt.Errorf("%s: negative device memory %.3f", g.ID, g.Dev.MemUsedMB())
				}
				if got, want := g.Dev.ResidentCount(), len(g.Dev.Residents()); got != want {
					return fmt.Errorf("%s: resident count %d ≠ list length %d", g.ID, got, want)
				}
				for _, r := range g.Dev.Residents() {
					if r.Pending() < 0 {
						return fmt.Errorf("%s/%s: negative pending demand %.3f", g.ID, r.ID, r.Pending())
					}
					if r.Grant() < 0 {
						return fmt.Errorf("%s/%s: negative token grant %.3f", g.ID, r.ID, r.Grant())
					}
					if r.MemMB < 0 {
						return fmt.Errorf("%s/%s: negative resident memory %.3f", g.ID, r.ID, r.MemMB)
					}
				}
			}
			return nil
		},
	}
}

// RetiredGPUQuiescence verifies the churn lifecycle's placement
// contract: a failed GPU holds no placements and no device residents
// (FailNode evicts, the serving plane detaches), and a draining or
// quarantined GPU's placement set only ever shrinks — new work never
// lands on a device on its way out, whether churn or the health
// monitor retired it. Drain-set watermarks live in the closure: one
// instance per system.
func RetiredGPUQuiescence() core.Invariant {
	draining := map[string]map[string]bool{} // gpu ID → instance IDs seen at drain time
	return core.Invariant{
		Name: "retired-gpu-quiescence",
		Check: func(sys *core.System, now sim.Time) error {
			for _, g := range sys.Clu.GPUs() {
				switch g.Health() {
				case cluster.Failed:
					delete(draining, g.ID)
					if len(g.Placements) > 0 {
						return fmt.Errorf("%s: failed GPU still holds %d placements", g.ID, len(g.Placements))
					}
					if g.Dev != nil && g.Dev.ResidentCount() > 0 {
						return fmt.Errorf("%s: failed GPU still executes %d residents", g.ID, g.Dev.ResidentCount())
					}
				case cluster.Draining, cluster.Quarantined:
					seen, ok := draining[g.ID]
					if !ok {
						// First observation since the drain began: the
						// placements present now are the grandfathered set.
						seen = make(map[string]bool, len(g.Placements))
						for _, p := range g.Placements {
							seen[p.Instance] = true
						}
						draining[g.ID] = seen
						continue
					}
					for _, p := range g.Placements {
						if !seen[p.Instance] {
							return fmt.Errorf("%s: draining GPU gained placement %s", g.ID, p.Instance)
						}
					}
				default:
					delete(draining, g.ID)
				}
			}
			return nil
		},
	}
}

// ClassQuotaConservation verifies the heterogeneity bookkeeping per
// capacity class: class membership covers the whole inventory and stays
// constant (fail/drain/join must not migrate GPUs between classes), the
// per-class ΣReq aggregates equal a recomputation from placements, and
// the capacity-weighted occupancy the cost accounting integrates equals
// the sum over active GPUs.
func ClassQuotaConservation() core.Invariant {
	var wantTotals []int // per-class GPU counts at first observation
	return core.Invariant{
		Name: "class-quota-conservation",
		Check: func(sys *core.System, now sim.Time) error {
			stats := sys.Clu.ClassStats()
			if wantTotals == nil {
				for _, st := range stats {
					wantTotals = append(wantTotals, st.Total)
				}
			}
			if len(stats) != len(wantTotals) {
				return fmt.Errorf("class count changed: %d, want %d", len(stats), len(wantTotals))
			}
			total := 0
			for i, st := range stats {
				if st.Total != wantTotals[i] {
					return fmt.Errorf("class %s: membership drifted: %d GPUs, want %d", st.Name, st.Total, wantTotals[i])
				}
				if st.Capacity <= 0 {
					return fmt.Errorf("class %s: non-positive capacity %v", st.Name, st.Capacity)
				}
				total += st.Total
			}
			if total != len(sys.Clu.GPUs()) {
				return fmt.Errorf("classes cover %d GPUs, inventory has %d", total, len(sys.Clu.GPUs()))
			}
			sumReq := make([]float64, len(stats))
			occupied := make([]int, len(stats))
			var occCap float64
			for _, g := range sys.Clu.GPUs() {
				idx := classIndexOf(stats, g)
				if idx < 0 {
					return fmt.Errorf("%s: class %q unknown to ClassStats", g.ID, g.Class)
				}
				for _, p := range g.Placements {
					sumReq[idx] += p.Req
				}
				if g.Active() {
					occupied[idx]++
					occCap += g.Capacity
				}
			}
			for i, st := range stats {
				if math.Abs(sumReq[i]-st.SumReq) > quotaEps {
					return fmt.Errorf("class %s: ΣReq drifted: index %.9f, ground truth %.9f", st.Name, st.SumReq, sumReq[i])
				}
				if occupied[i] != st.Occupied {
					return fmt.Errorf("class %s: occupancy drifted: index %d, ground truth %d", st.Name, st.Occupied, occupied[i])
				}
			}
			if math.Abs(occCap-sys.Clu.OccupiedCapacity()) > quotaEps {
				return fmt.Errorf("capacity-weighted occupancy drifted: index %.9f, ground truth %.9f",
					sys.Clu.OccupiedCapacity(), occCap)
			}
			return nil
		},
	}
}

func classIndexOf(stats []cluster.ClassStat, g *cluster.GPU) int {
	for i, st := range stats {
		if st.Name == g.Class {
			return i
		}
	}
	return -1
}

// MonotoneTime verifies the virtual clock never runs backwards across
// checks and that checks observe the engine's own Now. State (the
// watermark) lives in the closure — one instance per system.
func MonotoneTime() core.Invariant {
	last := sim.Time(-1)
	return core.Invariant{
		Name: "monotone-virtual-time",
		Check: func(sys *core.System, now sim.Time) error {
			if now < last {
				return fmt.Errorf("virtual time went backwards: %s after %s", now, last)
			}
			if eng := sys.Eng.Now(); now > eng {
				return fmt.Errorf("check time %s ahead of engine clock %s", now, eng)
			}
			last = now
			return nil
		},
	}
}

// ActiveSetConsistency verifies the tick loop's active sets against the
// busy state they index:
//
//   - every busy instance runtime (queued or in-flight inference work,
//     an unfinished active training job) is in the instance active set —
//     the direction that must hold at every instant, since a busy
//     runtime outside the set stops being ticked and its work stalls
//     silently (the converse, a lingering idle member, is legal between
//     sweeps);
//   - the set's list and index agree on membership size;
//   - a manager is in the manager set exactly while it has registered
//     clients, and a device is in the execution set exactly while it has
//     residents — attach/detach maintain both directions immediately.
func ActiveSetConsistency() core.Invariant {
	return core.Invariant{
		Name: "active-set-consistency",
		Check: func(sys *core.System, now sim.Time) error {
			list, index := sys.ActiveSetSizes()
			if list != index {
				return fmt.Errorf("instance active set split brain: list %d vs index %d", list, index)
			}
			var err error
			for _, f := range sys.Functions() {
				f.VisitInstances(func(in instance.Server, warm bool) {
					if err == nil && in.Busy() && !sys.InActiveSet(in) {
						err = fmt.Errorf("busy instance %s (warm=%v) missing from active set", in.InstID(), warm)
					}
				})
				if err != nil {
					return err
				}
			}
			for _, tj := range sys.Jobs() {
				if tj.Job != nil && tj.Job.Busy() && !sys.InActiveSet(tj.Job) {
					return fmt.Errorf("busy training job %s missing from active set", tj.Name)
				}
			}
			for _, g := range sys.Clu.GPUs() {
				m := sys.Manager(g)
				if m != nil {
					if hasClients := len(m.Clients()) > 0; hasClients != sys.ManagerInActiveSet(m) {
						return fmt.Errorf("%s: manager active-set membership %v but %d clients",
							g.ID, sys.ManagerInActiveSet(m), len(m.Clients()))
					}
				}
				if g.Dev != nil {
					if hasRes := g.Dev.ResidentCount() > 0; hasRes != sys.DeviceInActiveSet(g.Dev) {
						return fmt.Errorf("%s: device active-set membership %v but %d residents",
							g.ID, sys.DeviceInActiveSet(g.Dev), g.Dev.ResidentCount())
					}
				}
			}
			return nil
		},
	}
}

package simtest

import (
	"math/rand"
	"testing"

	"dilu/internal/core"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/scaler"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Property tests for the resilience layer, wired into `make
// test-race-subsys`: the capped exponential backoff's determinism and
// bounds, the SRE retry budget against the tenant ledger, and
// at-most-once service under random fault/retry/hedge interleavings
// with the armed invariants auditing every tick.

// TestBackoffDeterministicAndCapped: Backoff is a pure function of the
// attempt number — deterministic, monotone non-decreasing, starting at
// the base and never exceeding the cap.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := core.ResilienceConfig{
			BackoffBase: sim.Duration(1+rng.Intn(500)) * sim.Millisecond,
			BackoffCap:  sim.Duration(1+rng.Intn(5000)) * sim.Millisecond,
		}
		if cfg.BackoffCap < cfg.BackoffBase {
			cfg.BackoffBase, cfg.BackoffCap = cfg.BackoffCap, cfg.BackoffBase
		}
		prev := sim.Duration(0)
		for n := 1; n <= 40; n++ {
			d := cfg.Backoff(n)
			if d != cfg.Backoff(n) {
				t.Fatalf("seed %d: Backoff(%d) not deterministic", seed, n)
			}
			if d < cfg.BackoffBase || d > cfg.BackoffCap {
				t.Fatalf("seed %d: Backoff(%d)=%v outside [base %v, cap %v]",
					seed, n, d, cfg.BackoffBase, cfg.BackoffCap)
			}
			if d < prev {
				t.Fatalf("seed %d: Backoff(%d)=%v < Backoff(%d)=%v", seed, n, d, n-1, prev)
			}
			if n == 1 && d != cfg.BackoffBase {
				t.Fatalf("seed %d: first backoff %v ≠ base %v", seed, d, cfg.BackoffBase)
			}
			prev = d
		}
	}
}

// resilienceChaos drives one random interleaving of request bursts and
// direct fault injections (slowdowns, restores, batch errors) against a
// resilience-enabled two-node system with the invariants armed, then
// drains and returns the system for property assertions.
func resilienceChaos(t *testing.T, seed int64, budget float64) *core.System {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sys := core.MustSystem(core.Config{
		Nodes: 2, GPUsPerNode: 2, Seed: seed,
		Invariants: Checkers(),
		Resilience: &core.ResilienceConfig{
			Timeout:     40 * sim.Millisecond,
			BackoffBase: 10 * sim.Millisecond,
			MaxAttempts: 4,
			RetryBudget: budget,
			HedgeDelay:  25 * sim.Millisecond,
		},
		Health: &core.HealthConfig{SlowSamples: 2, ProbeAfter: 2 * sim.Second},
	})
	if _, err := sys.DeployInference("f", "BERT-base", core.InferOpts{Instances: 2, NoScaler: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeployInference("g", "ResNet152", core.InferOpts{Instances: 2, NoScaler: true, Tenant: "alpha"}); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		now := sys.Eng.Now()
		for i, burst := 0, rng.Intn(10); i < burst; i++ {
			req := core.Request{Func: []string{"f", "g"}[rng.Intn(2)]}
			if req.Func == "g" {
				req.Tenant = "alpha"
			}
			if rng.Intn(2) == 0 {
				req.Deadline = sim.Duration(20+rng.Intn(100)) * sim.Millisecond
			}
			sys.Submit(now, req)
		}
		switch rng.Intn(4) {
		case 0:
			sys.SlowGPU(rng.Intn(2), rng.Intn(2), 2+6*rng.Float64())
		case 1:
			sys.SlowGPU(rng.Intn(2), rng.Intn(2), 1) // restore
		case 2:
			sys.ErrorGPU(rng.Intn(2), rng.Intn(2))
		}
		sys.Run(sim.Duration(1+rng.Intn(40)) * 5 * sim.Millisecond)
	}
	// Restore every device and drain: retries park up to
	// MaxAttempts×backoff, hedges resolve at first completion.
	for n := 0; n < 2; n++ {
		for g := 0; g < 2; g++ {
			sys.SlowGPU(n, g, 1)
		}
	}
	sys.Run(5 * sim.Second)
	return sys
}

// TestRetryBudgetBoundsRedeliveries: across random fault interleavings,
// each tenant's retries + hedges stay within the SRE budget — a
// fraction of its admitted traffic (one in-flight redelivery of slack
// past the strict bound, since the budget is checked before acting).
func TestRetryBudgetBoundsRedeliveries(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		budget := 0.05 + 0.3*rand.New(rand.NewSource(seed)).Float64()
		sys := resilienceChaos(t, seed, budget)
		var acted bool
		for _, ts := range sys.GatewayTenantStats() {
			redelivered := float64(ts.Retries + ts.Hedges)
			if bound := budget*float64(ts.Admitted) + 1; redelivered > bound {
				t.Fatalf("seed %d: tenant %q redelivered %v > budget %.2f × admitted %d + 1",
					seed, ts.Tenant, redelivered, budget, ts.Admitted)
			}
			if ts.Retries+ts.Hedges > 0 {
				acted = true
			}
		}
		if !acted {
			t.Fatalf("seed %d: no retries or hedges fired — chaos too gentle to test the budget", seed)
		}
	}
}

// TestAtMostOnceUnderFaultInterleavings: random abort/retry/hedge
// interleavings never serve a request twice and never leak one — the
// unique-served count matches the ledger and the extended conservation
// recount (parked + in-flight + speculative copies) balances. The armed
// checkers audit the same invariants at every fired tick; this is the
// independent end-of-run restatement.
func TestAtMostOnceUnderFaultInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sys := resilienceChaos(t, seed, 0.5)
		for _, f := range sys.Functions() {
			unique, ok := f.UniqueServed()
			if !ok {
				t.Fatalf("seed %d: %s lost its resilience ledger", seed, f.Name)
			}
			if unique != f.Served() {
				t.Fatalf("seed %d: %s served %d requests but %d unique — duplicate service",
					seed, f.Name, f.Served(), unique)
			}
			_, adm, _ := f.GatewayCounts()
			if adm != f.Served()+f.InFlightCount()+f.Lost() {
				t.Fatalf("seed %d: %s ledger broken: admitted %d ≠ served %d + inflight %d + lost %d",
					seed, f.Name, adm, f.Served(), f.InFlightCount(), f.Lost())
			}
			if recount, extra := f.RecountInFlight(), f.ExtraCopies(); recount != f.InFlightCount()+extra {
				t.Fatalf("seed %d: %s recount %d ≠ in-flight %d + extra copies %d",
					seed, f.Name, recount, f.InFlightCount(), extra)
			}
		}
	}
}

// TestRequeueOnTeardownEliminatesLoss is the scale-in regression test:
// under a no-keep-alive policy (Dilu's lazy scale-in, TTL 0) a burst
// that scales out and then ebbs tears instances down mid-batch. The
// legacy path counts the dying batch as lost; RequeueOnTeardown sends
// it back through the gateway, so nothing is lost and every admitted
// request is eventually served. Same seed, same arrivals, same scaler —
// only the flag differs.
func TestRequeueOnTeardownEliminatesLoss(t *testing.T) {
	run := func(requeue bool) *core.System {
		sys := core.MustSystem(core.Config{
			Nodes: 1, GPUsPerNode: 4, Seed: 11,
			Invariants:        Checkers(),
			RequeueOnTeardown: requeue,
			// Hair-trigger lazy scale-in so the underloaded tail of the
			// run sheds instances while their batches still execute.
			NewScaler: func() scaler.Policy {
				return scaler.NewDilu(scaler.DiluConfig{Window: 4, PhiOut: 2, PhiIn: 2})
			},
		})
		prof := profiler.For(model.ByName("VGG19"), profiler.RoleInference)
		if _, err := sys.DeployInference("f", "VGG19", core.InferOpts{
			Instances: 3,
			// ~1.5× one instance's rate: under 2-instance capacity, so the
			// scaler keeps trying to shed the third instance mid-traffic.
			Arrivals: workload.Poisson{RPS: 1.5 * prof.ServingRPS},
		}); err != nil {
			t.Fatal(err)
		}
		sys.Run(40 * sim.Second)
		return sys
	}

	legacy, requeued := run(false), run(true)
	var legacyLost int64
	for _, f := range legacy.Functions() {
		legacyLost += f.Lost()
	}
	if legacyLost == 0 {
		t.Fatal("legacy run lost nothing — scale-in never caught an in-flight batch, regression not exercised")
	}
	for _, f := range requeued.Functions() {
		if f.Lost() != 0 {
			t.Fatalf("requeue-on-teardown still lost %d requests", f.Lost())
		}
		_, adm, _ := f.GatewayCounts()
		if f.Served()+f.InFlightCount() != adm {
			t.Fatalf("requeued run leaks: served %d + in-flight %d ≠ admitted %d",
				f.Served(), f.InFlightCount(), adm)
		}
	}
}

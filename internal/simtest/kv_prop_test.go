package simtest

import (
	"math/rand"
	"testing"

	"dilu/internal/cluster"
	"dilu/internal/core"
	"dilu/internal/sim"
)

// TestKVConservationUnderChurn is the property test behind the KV
// ledger: under random interleavings of submits (explicit token
// lengths), abrupt node failures mid-decode, and rejoins, the KV-cache
// charge/release bookkeeping must conserve against a from-scratch
// recount — at placement granularity (Σ p.KVMB == g.KVUsedMB), at GPU
// granularity (KVUsedMB within MemUsedMB), and at device granularity
// (live LLM sequences recounted per device). The KVConservation checker
// armed via Config.Invariants runs the full audit every 5ms tick, so a
// single leaked or double-released megabyte anywhere in the
// admit/grow/preempt/complete/abort/evict lifecycle panics the run.
//
// KV-tight cards (1 GB of cache headroom over the 16 GB of weights)
// make the schedule adversarial: sequences are preempted mid-decode by
// cache exhaustion, evicted by node failures, refused at admission, and
// redispatched onto rejoined nodes — every unwind path runs many times.
func TestKVConservationUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runKVChurn(t, seed)
		})
	}
}

func runKVChurn(t *testing.T, seed int64) {
	sys := core.MustSystem(core.Config{
		Nodes: 2, GPUsPerNode: 2, Seed: seed,
		Classes:    []cluster.GPUClass{{Name: "kv-tight", Capacity: 1, MemCapMB: 17 * 1024, Weight: 1}},
		Invariants: Checkers(),
	})
	if _, err := sys.DeployInference("llm", "LLaMA2-7B", core.InferOpts{
		Instances: 2, Stages: 1, NoScaler: true,
		LLM: &core.LLMOpts{
			MaxBatch: 16,
			TTFT:     300 * sim.Millisecond,
			TPOT:     80 * sim.Millisecond,
		},
	}); err != nil {
		t.Fatal(err)
	}

	// The schedule's randomness is its own (deterministic per seed) and
	// independent of the system RNG — the property must hold for any
	// interleaving, not just the ones the workload generators produce.
	rng := rand.New(rand.NewSource(seed))
	failed := [2]bool{}
	sys.OnTick(func(now sim.Time) {
		// Bursty submits: enough concurrent long decodes to exhaust the
		// 1 GB KV headroom and force preemptions and refusals.
		for i := rng.Intn(3); i > 0; i-- {
			sys.Submit(now, core.Request{
				Func:         "llm",
				PromptTokens: 64 + rng.Intn(449),
				DecodeTokens: 32 + rng.Intn(225),
			})
		}
		// Rare abrupt failures mid-decode and later rejoins: the
		// FailNode path evicts placements with live KV (cluster-side
		// reconcile) before the serving plane aborts the sequences
		// (resident-side release) — the ordering the ledger must absorb.
		if rng.Intn(200) == 0 {
			n := rng.Intn(2)
			if failed[n] {
				sys.JoinNode(n)
			} else if !failed[1-n] { // keep one node alive for redispatch
				sys.FailNode(n)
			}
			failed[n] = !failed[n]
		}
	})
	sys.Run(30 * sim.Second)

	// The invariant ran every tick; one last explicit audit at the end
	// state, then assert the schedule was adversarial enough to mean
	// anything: tokens flowed and at least one pressure unwind ran.
	if err := KVConservation().Check(sys, sys.Eng.Now()); err != nil {
		t.Fatalf("seed %d: final KV audit: %v", seed, err)
	}
	rec := sys.Functions()[0].TokenStats()
	if rec == nil || rec.TokensOut() == 0 {
		t.Fatalf("seed %d: no tokens decoded — vacuous run", seed)
	}
	if rec.Preemptions() == 0 && rec.Refusals() == 0 {
		t.Fatalf("seed %d: no KV pressure events — schedule not adversarial", seed)
	}
}

package simtest

import (
	"math"
	"math/rand"
	"testing"

	"dilu/internal/core"
	"dilu/internal/scaler"
	"dilu/internal/sim"
)

// Property tests for the admission layer, wired into `make
// test-race-subsys`: random submit/shed/serve interleavings against the
// full-recount conservation reference, the token bucket's rate bound,
// and the water-filling allocator's max-min contract.

// TestAdmissionInterleavingsConserveRequests drives random interleavings
// of gateway submissions (random tenants, priorities, deadlines, burst
// sizes) and serving progress (random run lengths, so batches complete
// between bursts) through a rate-limited system. The armed
// request-conservation checker audits ledger-vs-recount at every fired
// tick; the explicit end-of-run check is the same full-recount reference
// stated independently of the invariant code path.
func TestAdmissionInterleavingsConserveRequests(t *testing.T) {
	tenants := []string{"", "alpha", "beta", "gamma"}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := core.MustSystem(core.Config{
			Nodes: 1, GPUsPerNode: 2, Seed: seed,
			Invariants: Checkers(),
			Admission: core.Chain{
				core.NewTokenBucket(40, 10),
				core.FairShare{Capacity: 16},
			},
			NewScaler: func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) },
		})
		if _, err := sys.DeployInference("f", "BERT-base", core.InferOpts{}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.DeployInference("g", "ResNet152", core.InferOpts{Tenant: "alpha"}); err != nil {
			t.Fatal(err)
		}

		var submitted, admitted int64
		for step := 0; step < 40; step++ {
			burst := rng.Intn(12)
			now := sys.Eng.Now()
			for i := 0; i < burst; i++ {
				req := core.Request{
					Func:     []string{"f", "g"}[rng.Intn(2)],
					Tenant:   tenants[rng.Intn(len(tenants))],
					Priority: rng.Intn(3),
				}
				if rng.Intn(2) == 0 {
					req.Deadline = sim.Duration(rng.Intn(200)) * sim.Millisecond
				}
				submitted++
				if sys.Submit(now, req) {
					admitted++
				}
			}
			// Random serving progress: up to ~300 ms between bursts.
			sys.Run(sim.Duration(1+rng.Intn(60)) * 5 * sim.Millisecond)
		}
		sys.Run(2 * sim.Second) // drain

		// Full-recount reference, independent of the invariant: totals
		// across functions and tenants must both equal the driver's own
		// count, and in-flight must equal the plane recount.
		var fSub, fAdm, fShed, fServed, fInflight, fLost, fRecount int64
		for _, f := range sys.Functions() {
			sub, adm, shed := f.GatewayCounts()
			fSub += sub
			fAdm += adm
			fShed += shed
			fServed += f.Served()
			fInflight += f.InFlightCount()
			fLost += f.Lost()
			fRecount += f.RecountInFlight()
		}
		if fSub != submitted || fAdm != admitted {
			t.Fatalf("seed %d: ledger %d/%d, driver counted %d/%d (submitted/admitted)",
				seed, fSub, fAdm, submitted, admitted)
		}
		if fSub != fAdm+fShed {
			t.Fatalf("seed %d: submitted %d ≠ admitted %d + shed %d", seed, fSub, fAdm, fShed)
		}
		if fAdm != fServed+fInflight+fLost {
			t.Fatalf("seed %d: admitted %d ≠ served %d + in-flight %d + lost %d",
				seed, fAdm, fServed, fInflight, fLost)
		}
		if fInflight != fRecount {
			t.Fatalf("seed %d: in-flight ledger %d ≠ plane recount %d", seed, fInflight, fRecount)
		}
		var tSub int64
		for _, ts := range sys.GatewayTenantStats() {
			tSub += ts.Submitted
		}
		if tSub != submitted {
			t.Fatalf("seed %d: tenant ledgers sum %d, driver submitted %d", seed, tSub, submitted)
		}
	}
}

// TestTokenBucketNeverExceedsRate: over any prefix of any random
// admission sequence, a tenant's admitted count is bounded by
// burst + rate·elapsed — the token bucket's defining property.
func TestTokenBucketNeverExceedsRate(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rate := 1 + 50*rng.Float64()
		burst := 1 + 20*rng.Float64()
		tb := core.NewTokenBucket(rate, burst)
		admitted := 0.0
		now := sim.Time(0)
		for i := 0; i < 2000; i++ {
			now += sim.Duration(rng.Intn(50)) * sim.Millisecond
			if tb.Admit(now, core.Request{Tenant: "t"}, nil) {
				admitted++
			}
			bound := burst + rate*now.Seconds()
			if admitted > bound+1e-6 {
				t.Fatalf("seed %d: admitted %.0f > burst %.2f + rate %.2f × %.3fs at step %d",
					seed, admitted, burst, rate, now.Seconds(), i)
			}
		}
		// Sanity floor only: tokens above the burst cap are legitimately
		// lost when rate·gap exceeds burst, so the upper bound above is
		// the property; a saturating caller must still admit something.
		if admitted == 0 {
			t.Fatalf("seed %d: saturating caller admitted nothing (rate %.2f, burst %.2f)", seed, rate, burst)
		}
	}
}

// TestFairSharesProperties: for random capacities, weights and demands
// the water-filling allocation (a) never exceeds any tenant's demand,
// (b) sums to min(capacity, Σdemand) — shares sum to capacity exactly
// under saturation — and (c) is max-min fair: an unsatisfied tenant's
// weighted share is no smaller than any other tenant's weighted
// allocation (nobody it could take from sits above it).
func TestFairSharesProperties(t *testing.T) {
	const eps = 1e-6
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		capacity := 30 * rng.Float64()
		weights := make([]float64, n)
		demands := make([]float64, n)
		var totalDemand float64
		for i := range weights {
			weights[i] = 0.5 + 2*rng.Float64()
			demands[i] = float64(rng.Intn(15))
			totalDemand += demands[i]
		}
		alloc := core.FairShares(capacity, weights, demands)
		var sum float64
		for i, a := range alloc {
			if a < -eps || a > demands[i]+eps {
				t.Fatalf("seed %d: alloc[%d]=%.6f outside [0, demand %.0f]", seed, i, a, demands[i])
			}
			sum += a
		}
		want := math.Min(capacity, totalDemand)
		if math.Abs(sum-want) > eps {
			t.Fatalf("seed %d: Σalloc %.6f ≠ min(capacity %.3f, Σdemand %.0f)", seed, sum, capacity, totalDemand)
		}
		for i := range alloc {
			if demands[i]-alloc[i] <= eps {
				continue // satisfied
			}
			for j := range alloc {
				if j == i || alloc[j] <= eps {
					continue
				}
				if alloc[j]/weights[j] > alloc[i]/weights[i]+eps {
					t.Fatalf("seed %d: not max-min: unsatisfied tenant %d at level %.6f while tenant %d holds %.6f",
						seed, i, alloc[i]/weights[i], j, alloc[j]/weights[j])
				}
			}
		}
	}
}

package workload

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"dilu/internal/sim"
)

func TestParseTraceCSV(t *testing.T) {
	in := `# a comment
seconds,function
0.5,beta
0.25,alpha

1.75,alpha
`
	tr, err := ParseTraceCSV("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 3 {
		t.Fatalf("count = %d, want 3", tr.Count())
	}
	// Events sorted by (time, func) regardless of file order.
	want := []TraceEvent{
		{sim.FromSeconds(0.25), "alpha"},
		{sim.FromSeconds(0.5), "beta"},
		{sim.FromSeconds(1.75), "alpha"},
	}
	for i, e := range tr.Events {
		if e != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, e, want[i])
		}
	}
	if got := tr.Functions(); !slices.Equal(got, []string{"alpha", "beta"}) {
		t.Fatalf("functions = %v", got)
	}
	if d := tr.Duration(); d != sim.FromSeconds(1.75) {
		t.Fatalf("duration = %v", d)
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := []string{
		"0.5",              // no function column
		"0.5,alpha\nx,b",   // bad timestamp past the header position
		"-1,alpha",         // negative timestamp
		"0.5,",             // empty function
		"0..5,alpha\n1,b",  // malformed first timestamp is NOT a header
		"1e,alpha\n1,beta", // digits present: must error, not skip
	}
	for _, in := range cases {
		if _, err := ParseTraceCSV("bad", strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
	// A digitless first row is the documented optional header.
	tr, err := ParseTraceCSV("hdr", strings.NewReader("time,fn\n0.5,alpha\n"))
	if err != nil || tr.Count() != 1 {
		t.Fatalf("header skip broken: %v %+v", err, tr)
	}
}

func TestParseTraceJSON(t *testing.T) {
	in := `{"name": "prod", "events": [{"t": 1.5, "func": "b"}, {"t": 0.5, "func": "a"}]}`
	tr, err := ParseTraceJSON("fallback", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "prod" {
		t.Fatalf("label = %q, want document name", tr.Label)
	}
	if tr.Count() != 2 || tr.Events[0].Func != "a" {
		t.Fatalf("events = %+v", tr.Events)
	}
	if _, err := ParseTraceJSON("bad", strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestLoadTraceDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "a.csv")
	if err := os.WriteFile(csvPath, []byte("0.5,fn\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "a" || tr.Count() != 1 {
		t.Fatalf("csv load: %+v", tr)
	}
	jsonPath := filepath.Join(dir, "b.json")
	if err := os.WriteFile(jsonPath, []byte(`{"events":[{"t":0.1,"func":"x"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if tr, err = LoadTrace(jsonPath); err != nil || tr.Count() != 1 {
		t.Fatalf("json load: %v %+v", err, tr)
	}
	if _, err := LoadTrace(filepath.Join(dir, "c.txt")); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTraceCompileAndArrivals(t *testing.T) {
	tr := &Trace{Events: []TraceEvent{
		{sim.Second, "a"}, {2 * sim.Second, "b"}, {3 * sim.Second, "a"},
	}}
	times := tr.Compile("a")
	if !slices.Equal(times, []sim.Time{sim.Second, 3 * sim.Second}) {
		t.Fatalf("compile = %v", times)
	}
	arr := tr.Arrivals("a")
	// Replay is exact and horizon-clipped; the RNG is ignored.
	got := arr.Generate(nil, 2500*sim.Millisecond)
	if !slices.Equal(got, []sim.Time{sim.Second}) {
		t.Fatalf("clipped replay = %v", got)
	}
	if got := arr.Generate(nil, sim.Minute); !slices.Equal(got, times) {
		t.Fatalf("full replay = %v", got)
	}
	// Generate must hand out an independent copy each time: the engine
	// takes ownership of series slices, and one Times value may feed
	// engines running in parallel.
	a := arr.Generate(nil, sim.Minute)
	b := arr.Generate(nil, sim.Minute)
	if &a[0] == &b[0] {
		t.Fatal("replays share a backing array")
	}
}

func TestSampleTracesCommitted(t *testing.T) {
	names := SampleTraceNames()
	if !slices.Contains(names, "sample_mix") || !slices.Contains(names, "sample_small") {
		t.Fatalf("sample traces missing: %v", names)
	}
	mix := MustSampleTrace("sample_mix")
	if mix.Count() < 1000 {
		t.Fatalf("sample_mix degenerate: %d events", mix.Count())
	}
	if got := mix.Functions(); !slices.Equal(got, []string{"bert", "roberta", "vgg"}) {
		t.Fatalf("sample_mix functions = %v", got)
	}
	if d := mix.Duration(); d <= 60*sim.Second || d > 120*sim.Second {
		t.Fatalf("sample_mix duration = %v, want ~120 s", d)
	}
	small := MustSampleTrace("sample_small")
	if small.Count() != 8 {
		t.Fatalf("sample_small = %d events", small.Count())
	}
	if _, err := SampleTrace("nope"); err == nil {
		t.Fatal("unknown sample accepted")
	}
}

func TestSampleTraceReplayDeterministic(t *testing.T) {
	// Two independent loads compile to identical series — the property
	// the trace_replay golden manifest rests on.
	a := MustSampleTrace("sample_mix")
	b := MustSampleTrace("sample_mix")
	for _, fn := range a.Functions() {
		if !slices.Equal(a.Compile(fn), b.Compile(fn)) {
			t.Fatalf("%s: replay differs between loads", fn)
		}
	}
}

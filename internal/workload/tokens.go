// Token-length sampling for LLM workloads: each request of a
// token-level function carries a prompt length (prefill cost, initial
// KV footprint) and a decode length (output tokens). Samplers are
// deterministic under the seeded RNG like the arrival generators.
package workload

import (
	"fmt"
	"math"

	"dilu/internal/sim"
)

// TokenSampler draws per-request (prompt, decode) token counts.
type TokenSampler interface {
	Name() string
	Sample(rng *sim.RNG) (prompt, decode int)
}

// FixedTokens emits the same lengths for every request — the degenerate
// mix unit tests and closed-form comparisons use.
type FixedTokens struct {
	Prompt, Decode int
}

// Name implements TokenSampler.
func (f FixedTokens) Name() string { return fmt.Sprintf("fixed(%d,%d)", f.Prompt, f.Decode) }

// Sample implements TokenSampler.
func (f FixedTokens) Sample(*sim.RNG) (int, int) { return f.Prompt, f.Decode }

// zipfBuckets is the resolution of ZipfTokenMix: the length range is
// split into this many equal bands, band r weighted (r+1)^−Alpha.
const zipfBuckets = 8

// ZipfTokenMix draws prompt and decode lengths independently from
// Zipf-weighted length bands: the range [Min, Max] splits into eight
// equal bands, band r carries weight (r+1)^−Alpha (most requests are
// short, a heavy tail is long — the production LLM mix shape), and the
// length is uniform within the chosen band.
type ZipfTokenMix struct {
	PromptMin, PromptMax int
	DecodeMin, DecodeMax int
	Alpha                float64 // band skew; <=0 defaults to 1.0
}

// Name implements TokenSampler.
func (z ZipfTokenMix) Name() string {
	return fmt.Sprintf("zipf(p%d-%d,d%d-%d,a%.1f)", z.PromptMin, z.PromptMax, z.DecodeMin, z.DecodeMax, z.alpha())
}

func (z ZipfTokenMix) alpha() float64 {
	if z.Alpha <= 0 {
		return 1.0
	}
	return z.Alpha
}

// drawLen picks a band by Zipf weight, then a length uniformly inside
// it. Two RNG draws per length, always — the fixed consumption pattern
// keeps downstream streams aligned whatever values come out.
func (z ZipfTokenMix) drawLen(rng *sim.RNG, min, max int) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	alpha := z.alpha()
	var weights [zipfBuckets]float64
	total := 0.0
	for r := 0; r < zipfBuckets; r++ {
		w := math.Pow(float64(r+1), -alpha)
		weights[r] = w
		total += w
	}
	u := rng.Float64() * total
	band := 0
	for ; band < zipfBuckets-1; band++ {
		if u < weights[band] {
			break
		}
		u -= weights[band]
	}
	span := max - min + 1
	lo := min + band*span/zipfBuckets
	hi := min + (band+1)*span/zipfBuckets - 1
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Sample implements TokenSampler: prompt then decode, independent
// draws.
func (z ZipfTokenMix) Sample(rng *sim.RNG) (int, int) {
	p := z.drawLen(rng, z.PromptMin, z.PromptMax)
	d := z.drawLen(rng, z.DecodeMin, z.DecodeMax)
	return p, d
}

package workload

import (
	"strings"
	"testing"

	"dilu/internal/sim"
)

func TestStragglerMixDeterministicAndPaired(t *testing.T) {
	gen := func() []FaultEvent {
		return StragglerMix(sim.NewRNG(7), 2, 4, 10*sim.Second, 2*sim.Second, 30*sim.Second, 3, 4.0)
	}
	a, b := gen(), gen()
	if len(a) != 6 {
		t.Fatalf("events = %d, want 3 slow + 3 restore", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mix not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("events unsorted at %d", i)
		}
	}
	// Every straggler restores exactly once, dur after its slowdown, on a
	// distinct GPU.
	type target struct{ node, gpu int }
	slows := map[target]sim.Time{}
	for _, ev := range a {
		if ev.Kind != FaultSlow {
			t.Fatalf("non-slow event in straggler mix: %+v", ev)
		}
		tg := target{ev.Node, ev.GPU}
		switch ev.Factor {
		case 4.0:
			if _, dup := slows[tg]; dup {
				t.Fatalf("GPU %v slowed twice", tg)
			}
			slows[tg] = ev.At
		case 1.0:
			at, ok := slows[tg]
			if !ok {
				t.Fatalf("restore of never-slowed GPU %v", tg)
			}
			if ev.At != at+30*sim.Second {
				t.Fatalf("GPU %v restores at %v, want slow+30s", tg, ev.At)
			}
		default:
			t.Fatalf("unexpected factor %v", ev.Factor)
		}
	}
	if len(slows) != 3 {
		t.Fatalf("%d distinct GPUs slowed, want 3", len(slows))
	}
}

func TestStragglerMixCountClamped(t *testing.T) {
	evs := StragglerMix(sim.NewRNG(1), 1, 2, 0, sim.Second, sim.Second, 10, 2.0)
	if len(evs) != 4 {
		t.Fatalf("count must clamp to GPU count: got %d events", len(evs))
	}
}

func TestFaultWaveDeterministicAndBounded(t *testing.T) {
	gen := func() []FaultEvent {
		return FaultWave(sim.NewRNG(3), 1, 4, 5*sim.Second, 60*sim.Second, 3.0)
	}
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("wave produced no events")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wave not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Kind != FaultError || a[i].Node != 1 {
			t.Fatalf("wave event %d targets wrong node/kind: %+v", i, a[i])
		}
		if a[i].At < 5*sim.Second || a[i].At >= 65*sim.Second {
			t.Fatalf("wave event %d outside window: %v", i, a[i].At)
		}
		if a[i].GPU < 0 || a[i].GPU >= 4 {
			t.Fatalf("wave event %d bad GPU %d", i, a[i].GPU)
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("events unsorted at %d", i)
		}
	}
	if evs := FaultWave(sim.NewRNG(3), 0, 4, 0, 0, 3.0); evs != nil {
		t.Fatal("zero-duration wave must be empty")
	}
}

func TestParseFaultCSV(t *testing.T) {
	in := `# incident replay
seconds,action,node,gpu,factor
30,error,2,*
10,slow,0,3,4
40.5,SLOW,0,3,1
`
	evs, err := ParseFaultCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{At: 10 * sim.Second, Kind: FaultSlow, Node: 0, GPU: 3, Factor: 4},
		{At: 30 * sim.Second, Kind: FaultError, Node: 2, GPU: -1},
		{At: sim.FromSeconds(40.5), Kind: FaultSlow, Node: 0, GPU: 3, Factor: 1},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
}

func TestParseFaultCSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"10,melt,0,0\n",                // unknown action
		"10,slow,0\n",                  // missing gpu
		"-5,error,0,0\n",               // negative time
		"10,error,-1,0\n",              // negative node
		"10,error,0,-2\n",              // negative gpu (only '*' means all)
		"10,slow,0,0\n",                // slow without factor
		"10,slow,0,0,0.5\n",            // sub-1 slowdown is meaningless
		"x,error,0,0\ny,error,1,0\n",   // non-numeric time past the header
		"1o0,error,3,0\n",              // digit-bearing typo is never a header
		"5,error,0,0\nbad,error,1,0\n", // malformed mid-file line must error
	} {
		if _, err := ParseFaultCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

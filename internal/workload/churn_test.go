package workload

import (
	"strings"
	"testing"

	"dilu/internal/sim"
)

func TestFailureWaveDeterministicAndPaired(t *testing.T) {
	gen := func() []ChurnEvent {
		return FailureWave(sim.NewRNG(7), 10, 100*sim.Second, 20*sim.Second, 60*sim.Second, 3)
	}
	a, b := gen(), gen()
	if len(a) != 6 {
		t.Fatalf("events = %d, want 3 fail + 3 join", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wave not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("events unsorted at %d", i)
		}
	}
	// Every failed node joins back exactly once, repair after its fail.
	fails := map[int]sim.Time{}
	for _, ev := range a {
		switch ev.Kind {
		case ChurnFail:
			fails[ev.Node] = ev.At
		case ChurnJoin:
			at, ok := fails[ev.Node]
			if !ok {
				t.Fatalf("join of never-failed node %d", ev.Node)
			}
			if ev.At != at+60*sim.Second {
				t.Fatalf("node %d repairs at %v, want fail+60s", ev.Node, ev.At)
			}
		}
	}
	if len(fails) != 3 {
		t.Fatalf("%d distinct nodes failed, want 3", len(fails))
	}
}

func TestFailureWaveCountClamped(t *testing.T) {
	evs := FailureWave(sim.NewRNG(1), 2, 0, sim.Second, sim.Second, 10)
	if len(evs) != 4 {
		t.Fatalf("count must clamp to node count: got %d events", len(evs))
	}
}

func TestRollingDrainNonOverlapping(t *testing.T) {
	evs := RollingDrain(0, 3, 10*sim.Second, 8*sim.Second)
	if len(evs) != 6 {
		t.Fatalf("events = %d, want 6", len(evs))
	}
	// At most one node out at a time: each join precedes the next drain.
	for i := 0; i+2 < len(evs); i += 2 {
		drain, join, next := evs[i], evs[i+1], evs[i+2]
		if drain.Kind != ChurnDrain || join.Kind != ChurnJoin || join.Node != drain.Node {
			t.Fatalf("sweep order broken at %d: %+v %+v", i, drain, join)
		}
		if next.At <= join.At {
			t.Fatalf("node %d drains before node %d rejoined", next.Node, join.Node)
		}
	}
}

func TestParseChurnCSV(t *testing.T) {
	in := `# upgrade schedule
seconds,action,node
30,drain,2
10,fail,0
40.5,JOIN,0
`
	evs, err := ParseChurnCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []ChurnEvent{
		{At: 10 * sim.Second, Kind: ChurnFail, Node: 0},
		{At: 30 * sim.Second, Kind: ChurnDrain, Node: 2},
		{At: sim.FromSeconds(40.5), Kind: ChurnJoin, Node: 0},
	}
	if len(evs) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(evs), len(want))
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
}

func TestParseChurnCSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"10,reboot,0\n",          // unknown action
		"10,fail\n",              // missing node
		"-5,fail,0\n",            // negative time
		"10,fail,-1\n",           // negative node
		"x,fail,0\ny,fail,1\n",   // non-numeric time past the header line
		"1o0,fail,3\n",           // digit-bearing typo is never a header
		"5,fail,0\nbad,fail,1\n", // malformed mid-file line must error, not vanish
	} {
		if _, err := ParseChurnCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

package workload

import (
	"math"
	"testing"

	"dilu/internal/sim"
)

func TestRateFuncTracksRate(t *testing.T) {
	// Step function: 10 rps for 100s, then 50 rps for 100s.
	rf := RateFunc{
		Label: "step",
		RPS: func(at sim.Time) float64 {
			if at < 100*sim.Second {
				return 10
			}
			return 50
		},
		Peak: 50,
	}
	arr := rf.Generate(sim.NewRNG(3), 200*sim.Second)
	var lo, hi int
	for _, a := range arr {
		if a < 100*sim.Second {
			lo++
		} else {
			hi++
		}
	}
	if math.Abs(float64(lo)-1000) > 150 {
		t.Fatalf("low phase arrivals = %d, want ~1000", lo)
	}
	if math.Abs(float64(hi)-5000) > 400 {
		t.Fatalf("high phase arrivals = %d, want ~5000", hi)
	}
}

func TestRateFuncZeroPeak(t *testing.T) {
	rf := RateFunc{Label: "z", RPS: func(sim.Time) float64 { return 10 }, Peak: 0}
	if got := rf.Generate(sim.NewRNG(1), sim.Minute); got != nil {
		t.Fatal("zero peak should generate nothing")
	}
}

func TestRateFuncName(t *testing.T) {
	if (RateFunc{Label: "abc"}).Name() != "abc" {
		t.Fatal("label lost")
	}
}

func TestOfferedRPSEmptyAndZeroWindow(t *testing.T) {
	if OfferedRPS(nil, 0, sim.Minute) != nil {
		t.Fatal("zero window should return nil")
	}
	if OfferedRPS(nil, sim.Second, 500*sim.Millisecond) != nil {
		t.Fatal("sub-window horizon should return nil")
	}
}

func TestMeanRPSZeroDuration(t *testing.T) {
	if MeanRPS([]sim.Time{1, 2}, 0) != 0 {
		t.Fatal("zero duration should be 0")
	}
}

func TestBurstyDefaultsApplied(t *testing.T) {
	// Zero BurstDur/Quiet take documented defaults without panicking.
	arr := Bursty{BaseRPS: 5, Scale: 3}.Generate(sim.NewRNG(2), 120*sim.Second)
	if len(arr) == 0 {
		t.Fatal("no arrivals with defaults")
	}
}

func TestPeriodicNeverNegativeRate(t *testing.T) {
	// Amp > 1 would push the sinusoid negative; the generator clamps.
	p := Periodic{BaseRPS: 10, Amp: 2, Period: 20 * sim.Second}
	arr := p.Generate(sim.NewRNG(4), 100*sim.Second)
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	for _, a := range arr {
		if a < 0 {
			t.Fatal("negative arrival time")
		}
	}
}

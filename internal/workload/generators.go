package workload

import (
	"fmt"
	"math"

	"dilu/internal/sim"
)

// Diurnal synthesizes a compressed production day: load swings between a
// night trough and a daytime plateau with a sharper evening peak — the
// arrival shape HAS-GPU and DeepServe evaluate autoscalers against.
// Unlike Periodic's single sinusoid, the profile is asymmetric: ramps are
// fast, the trough is long, and the evening peak tops the daytime
// plateau by PeakBoost.
type Diurnal struct {
	TroughRPS float64      // overnight base rate
	DayRPS    float64      // daytime plateau rate
	PeakBoost float64      // evening peak = DayRPS·(1+PeakBoost); default 0.5
	Period    sim.Duration // one compressed "day"; default 240 s
}

// Name implements Arrivals.
func (d Diurnal) Name() string { return "diurnal" }

// boost resolves the PeakBoost default in one place: rate and the
// thinning Peak bound must agree, or arrivals would be silently capped
// below the profile during the evening peak.
func (d Diurnal) boost() float64 {
	if d.PeakBoost <= 0 {
		return 0.5
	}
	return d.PeakBoost
}

// rate is the instantaneous rate at phase u ∈ [0,1) of the day.
func (d Diurnal) rate(u float64) float64 {
	boost := d.boost()
	switch {
	case u < 0.25: // night trough
		return d.TroughRPS
	case u < 0.35: // morning ramp
		f := (u - 0.25) / 0.10
		return d.TroughRPS + f*(d.DayRPS-d.TroughRPS)
	case u < 0.70: // daytime plateau
		return d.DayRPS
	case u < 0.80: // evening peak (raised cosine bump)
		f := (u - 0.70) / 0.10
		return d.DayRPS * (1 + boost*0.5*(1-math.Cos(2*math.Pi*f)))
	case u < 0.90: // wind-down
		f := (u - 0.80) / 0.10
		return d.DayRPS + f*(d.TroughRPS-d.DayRPS)
	default:
		return d.TroughRPS
	}
}

// Generate implements Arrivals.
func (d Diurnal) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	period := d.Period
	if period <= 0 {
		period = 240 * sim.Second
	}
	peak := d.DayRPS * (1 + d.boost())
	if peak < d.TroughRPS {
		peak = d.TroughRPS
	}
	rf := RateFunc{
		Label: "diurnal",
		RPS: func(at sim.Time) float64 {
			u := math.Mod(float64(at)/float64(period), 1)
			return d.rate(u)
		},
		Peak: peak,
	}
	return rf.Generate(rng, dur)
}

// Pareto is a heavy-tailed renewal process: inter-arrival gaps follow a
// Pareto(α, x_m) distribution with the scale chosen so the mean rate is
// RPS. Small α (1 < α ≤ 2) produces the bursty, long-silence arrival
// pattern of production serverless traces — most gaps are tiny (bursts),
// but occasional gaps are enormous, a regime Poisson never visits.
type Pareto struct {
	RPS   float64
	Alpha float64 // tail exponent; values ≤ 1 are clamped to 1.05 (infinite-mean regime)
}

// Name implements Arrivals.
func (p Pareto) Name() string { return "pareto" }

// Generate implements Arrivals.
func (p Pareto) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	if p.RPS <= 0 {
		return nil
	}
	alpha := p.Alpha
	if alpha <= 1 {
		alpha = 1.05
	}
	// Mean gap of Pareto(α, x_m) is α·x_m/(α−1); match it to 1/RPS.
	xm := (alpha - 1) / (alpha * p.RPS)
	var out []sim.Time
	t := sim.Time(0)
	for {
		t += sim.FromSeconds(rng.Pareto(alpha, xm))
		if t >= dur {
			return out
		}
		out = append(out, t)
	}
}

// TenantArrivals is one tenant's share of a multi-tenant mix.
type TenantArrivals struct {
	// Tenant is the structured tenant identity, for core.InferOpts.Tenant
	// / core.Request.Tenant — the gateway's accounting key.
	Tenant string
	// Name is the per-tenant function name. It equals Tenant (the
	// pre-gateway name-mangled encoding), kept as a separate field so
	// deployments that predate structured tenancy stay byte-identical.
	Name   string
	Weight float64 // popularity share in (0,1], Σ = 1
	Times  []sim.Time
}

// TenantMix synthesizes a multi-tenant workload with per-function
// popularity skew: TotalRPS is split across Tenants functions by Zipf
// weights w_i ∝ 1/i^Skew, and each tenant draws an independent arrival
// process at its share of the rate. Skew 0 is a uniform split; Skew ≈ 1
// reproduces the head-heavy popularity of production function traces.
type TenantMix struct {
	Tenants  int
	TotalRPS float64
	Skew     float64
	// Shape builds tenant i's arrival process at rate rps; nil defaults to
	// Poisson. The per-tenant index lets mixes vary shape by popularity
	// rank (e.g. bursty head, sporadic tail).
	Shape func(i int, rps float64) Arrivals
}

// Weights returns the normalized Zipf popularity weights, head first.
func (m TenantMix) Weights() []float64 {
	n := m.Tenants
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), m.Skew)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Split materializes every tenant's arrival sequence. Each tenant draws
// from an independent forked RNG stream, so adding a tenant never
// perturbs the others' arrivals.
func (m TenantMix) Split(rng *sim.RNG, dur sim.Duration) []TenantArrivals {
	weights := m.Weights()
	out := make([]TenantArrivals, len(weights))
	for i, w := range weights {
		rps := m.TotalRPS * w
		var arr Arrivals
		if m.Shape != nil {
			arr = m.Shape(i, rps)
		} else {
			arr = Poisson{RPS: rps}
		}
		id := fmt.Sprintf("tenant-%02d", i)
		out[i] = TenantArrivals{
			Tenant: id,
			Name:   id,
			Weight: w,
			Times:  arr.Generate(rng.Fork(int64(i+1)), dur),
		}
	}
	return out
}

// Name implements Arrivals for the aggregate mix.
func (m TenantMix) Name() string { return "tenant-mix" }

// Generate implements Arrivals: the merged arrival sequence of every
// tenant (the aggregate offered load).
func (m TenantMix) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	split := m.Split(rng, dur)
	seqs := make([][]sim.Time, len(split))
	for i, t := range split {
		seqs[i] = t.Times
	}
	return Merge(seqs...)
}

package workload

import (
	"bufio"
	"embed"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"

	"dilu/internal/sim"
)

// TraceEvent is one recorded request arrival: a virtual timestamp and the
// function it invokes.
type TraceEvent struct {
	At   sim.Time
	Func string
}

// Trace is an external arrival recording replayed against the system —
// the production counterpart of the synthetic generators. Events are
// sorted by (At, Func); per-function subsequences compile down to plain
// []sim.Time slices, so replay rides the pointer-free
// sim.Engine.ScheduleSeries cursor exactly like generated workloads.
type Trace struct {
	Label  string
	Events []TraceEvent
}

// normalize sorts events and validates timestamps.
func (t *Trace) normalize() error {
	for _, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("workload: trace %q has negative timestamp %v", t.Label, e.At)
		}
		if e.Func == "" {
			return fmt.Errorf("workload: trace %q has an event without a function", t.Label)
		}
	}
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].At != t.Events[j].At {
			return t.Events[i].At < t.Events[j].At
		}
		return t.Events[i].Func < t.Events[j].Func
	})
	return nil
}

// Count returns the number of events.
func (t *Trace) Count() int { return len(t.Events) }

// Duration returns the timestamp of the last event — the natural replay
// horizon.
func (t *Trace) Duration() sim.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// Functions returns the distinct function names of the trace, sorted.
func (t *Trace) Functions() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range t.Events {
		if !seen[e.Func] {
			seen[e.Func] = true
			out = append(out, e.Func)
		}
	}
	slices.Sort(out)
	return out
}

// Compile extracts the function's arrival times as a fresh, sorted
// []sim.Time — the exact shape sim.Engine.ScheduleSeries consumes.
func (t *Trace) Compile(fn string) []sim.Time {
	var out []sim.Time
	for _, e := range t.Events {
		if e.Func == fn {
			out = append(out, e.At)
		}
	}
	return out
}

// Arrivals returns a replay source for one function of the trace,
// satisfying the same interface as the synthetic generators. The returned
// source ignores the RNG: replay is exact.
func (t *Trace) Arrivals(fn string) Arrivals {
	return Times{Label: t.Label + "/" + fn, T: t.Compile(fn)}
}

// Times is a pre-materialized arrival sequence wrapped as an Arrivals
// source (trace replay, tenant-mix splits). Generate ignores the RNG and
// returns a copy of the prefix inside the horizon, so one Times value can
// feed engines running in parallel.
type Times struct {
	Label string
	T     []sim.Time
}

// Name implements Arrivals.
func (ts Times) Name() string { return ts.Label }

// Generate implements Arrivals.
func (ts Times) Generate(_ *sim.RNG, dur sim.Duration) []sim.Time {
	n := sort.Search(len(ts.T), func(i int) bool { return ts.T[i] >= dur })
	if n == 0 {
		return nil
	}
	out := make([]sim.Time, n)
	copy(out, ts.T[:n])
	return out
}

// ---------------------------------------------------------------------------
// Parsing.

// ParseTraceCSV reads the simple CSV trace format:
//
//	# comment lines and blank lines are skipped
//	seconds,function
//	0.125,roberta
//	0.250,bert
//
// A leading "seconds,function"-style header row is skipped when present.
// Timestamps are fractional seconds of virtual time, non-negative, in any
// order (events are sorted on load).
func ParseTraceCSV(label string, r io.Reader) (*Trace, error) {
	tr := &Trace{Label: label}
	sc := bufio.NewScanner(r)
	line, dataRows := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sec, fn, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("workload: %s:%d: want \"seconds,function\", got %q", label, line, text)
		}
		dataRows++
		sec, fn = strings.TrimSpace(sec), strings.TrimSpace(fn)
		v, err := strconv.ParseFloat(sec, 64)
		if err != nil {
			// A first row that fails to parse is the optional header only
			// if it looks like one — no digits at all ("seconds"). A
			// malformed timestamp ("0..5") must error, not vanish.
			if dataRows == 1 && !strings.ContainsAny(sec, "0123456789") {
				continue
			}
			return nil, fmt.Errorf("workload: %s:%d: bad timestamp %q: %v", label, line, sec, err)
		}
		if v < 0 {
			// Row-numbered, like every other parse error: normalize()
			// would also reject it, but only with a trace-level message
			// that leaves the offending row to a manual hunt.
			return nil, fmt.Errorf("workload: %s:%d: negative timestamp %q", label, line, sec)
		}
		tr.Events = append(tr.Events, TraceEvent{At: sim.FromSeconds(v), Func: fn})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %s: %v", label, err)
	}
	if err := tr.normalize(); err != nil {
		return nil, err
	}
	return tr, nil
}

// jsonTrace is the JSON trace document shape.
type jsonTrace struct {
	Name   string `json:"name"`
	Events []struct {
		T    float64 `json:"t"`
		Func string  `json:"func"`
	} `json:"events"`
}

// ParseTraceJSON reads the JSON trace format:
//
//	{"name": "prod-slice", "events": [{"t": 0.125, "func": "roberta"}, ...]}
//
// The document name overrides label when present.
func ParseTraceJSON(label string, r io.Reader) (*Trace, error) {
	var doc jsonTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("workload: %s: bad JSON trace: %v", label, err)
	}
	if doc.Name != "" {
		label = doc.Name
	}
	tr := &Trace{Label: label}
	for _, e := range doc.Events {
		tr.Events = append(tr.Events, TraceEvent{At: sim.FromSeconds(e.T), Func: e.Func})
	}
	if err := tr.normalize(); err != nil {
		return nil, err
	}
	return tr, nil
}

// LoadTrace reads a trace file, dispatching on extension (.csv or .json).
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	defer f.Close()
	label := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ParseTraceCSV(label, f)
	case ".json":
		return ParseTraceJSON(label, f)
	default:
		return nil, fmt.Errorf("workload: %s: unknown trace extension %q (want .csv or .json)", path, ext)
	}
}

// ---------------------------------------------------------------------------
// Committed sample traces.

//go:embed testdata/traces
var sampleTraceFS embed.FS

// SampleTraceNames lists the committed sample traces (base names without
// extension), sorted.
func SampleTraceNames() []string {
	entries, err := fs.ReadDir(sampleTraceFS, "testdata/traces")
	if err != nil {
		panic(err) // embedded directory always present
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		out = append(out, strings.TrimSuffix(name, filepath.Ext(name)))
	}
	slices.Sort(out)
	return out
}

// SampleTrace loads a committed sample trace by base name. The samples
// are embedded, so experiment drivers replay them identically regardless
// of working directory.
func SampleTrace(name string) (*Trace, error) {
	for _, ext := range []string{".csv", ".json"} {
		b, err := sampleTraceFS.ReadFile("testdata/traces/" + name + ext)
		if err != nil {
			continue
		}
		if ext == ".csv" {
			return ParseTraceCSV(name, strings.NewReader(string(b)))
		}
		return ParseTraceJSON(name, strings.NewReader(string(b)))
	}
	return nil, fmt.Errorf("workload: unknown sample trace %q (have %v)", name, SampleTraceNames())
}

// MustSampleTrace is SampleTrace that panics on error.
func MustSampleTrace(name string) *Trace {
	tr, err := SampleTrace(name)
	if err != nil {
		panic(err)
	}
	return tr
}

package workload

import (
	"strings"
	"testing"

	"dilu/internal/sim"
)

// Table-driven edge cases for the three CSV schedule parsers, pinned on
// the row-numbered error contract: a malformed row must name its line,
// never be silently skipped. Silent skips turn a fat-fingered incident
// replay into a subtly different experiment.
func TestParserEdgeCasesRowNumberedErrors(t *testing.T) {
	cases := []struct {
		name    string
		parse   func(in string) error
		in      string
		wantErr string // substring of the error, including "line N"/":N:"
	}{
		// --- fault schedule ---
		{"fault negative seconds", parseFault,
			"10,error,0,0\n-5,error,1,0\n", "fault line 2: negative timestamp"},
		{"fault bad factor", parseFault,
			"10,slow,0,0,fast\n", "fault line 1: bad factor \"fast\""},
		{"fault sub-1 factor", parseFault,
			"# hdr\n10,slow,0,0,0.5\n", "fault line 2: slow needs factor ≥ 1"},
		{"fault unknown action", parseFault,
			"10,error,0,0\n20,melt,0,0\n", "fault line 2: unknown action \"melt\""},
		{"fault bad gpu", parseFault,
			"10,error,0,x\n", "fault line 1: bad gpu \"x\""},
		// --- churn schedule ---
		{"churn negative seconds", parseChurn,
			"10,fail,0\n-1,join,0\n", "churn line 2: negative timestamp"},
		{"churn unknown action", parseChurn,
			"10,reboot,0\n", "churn line 1: unknown action \"reboot\""},
		// A '*' GPU column belongs to the fault format; on a churn node
		// row it makes a fourth field and must error by row, not drop.
		{"churn star gpu column", parseChurn,
			"10,fail,0\n20,fail,1,*\n", "churn line 2: want seconds,action,node"},
		{"churn bad node", parseChurn,
			"10,fail,*\n", "churn line 1: bad node \"*\""},
		// --- request trace ---
		{"trace negative seconds", parseTrace,
			"0.5,alpha\n-2,beta\n", "tr:2: negative timestamp \"-2\""},
		{"trace malformed row", parseTrace,
			"0.5,alpha\n0..7,beta\n", "tr:2: bad timestamp \"0..7\""},
		{"trace missing function", parseTrace,
			"0.5,alpha\n1.5\n", "tr:2: want \"seconds,function\""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.parse(tc.in)
			if err == nil {
				t.Fatalf("input %q accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the row: want substring %q", err, tc.wantErr)
			}
		})
	}
}

func parseFault(in string) error {
	_, err := ParseFaultCSV(strings.NewReader(in))
	return err
}

func parseChurn(in string) error {
	_, err := ParseChurnCSV(strings.NewReader(in))
	return err
}

func parseTrace(in string) error {
	_, err := ParseTraceCSV("tr", strings.NewReader(in))
	return err
}

// Non-monotone seconds are not an error in any of the three formats:
// schedules are sorted on load (incident dumps come unordered), and
// the sorted order is what replays.
func TestParsersAcceptNonMonotoneSeconds(t *testing.T) {
	evs, err := ParseFaultCSV(strings.NewReader("30,error,1,0\n10,error,0,*\n"))
	if err != nil || len(evs) != 2 {
		t.Fatalf("fault parse: %v (%d events)", err, len(evs))
	}
	if evs[0].At != 10*sim.Second || evs[0].GPU != -1 || evs[1].At != 30*sim.Second {
		t.Fatalf("fault events not sorted on load: %+v", evs)
	}
	cevs, err := ParseChurnCSV(strings.NewReader("40,join,2\n5,fail,2\n"))
	if err != nil || len(cevs) != 2 {
		t.Fatalf("churn parse: %v (%d events)", err, len(cevs))
	}
	if cevs[0].At != 5*sim.Second || cevs[1].At != 40*sim.Second {
		t.Fatalf("churn events not sorted on load: %+v", cevs)
	}
	tr, err := ParseTraceCSV("tr", strings.NewReader("2.5,beta\n0.5,alpha\n"))
	if err != nil || tr.Count() != 2 {
		t.Fatalf("trace parse: %v", err)
	}
	if tr.Events[0].Func != "alpha" || tr.Events[1].Func != "beta" {
		t.Fatalf("trace events not sorted on load: %+v", tr.Events)
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dilu/internal/sim"
)

// Gray-failure schedules: unlike churn (churn.go), which kills or
// drains whole nodes, fault events degrade capacity that stays in
// service — per-GPU slowdowns (stragglers stretching every execution
// tick) and transient batch errors (an in-flight batch aborts and its
// requests need redelivery). Both are the "gray zone" DeepServe and
// FlexPipe treat as a first-class serving-plane concern: the cluster
// still reports the GPU healthy, only the serving plane's observed
// signals reveal it. Schedules come from seeded generators
// (StragglerMix, FaultWave) or external CSVs (ParseFaultCSV) and replay
// through core.System.ScheduleFaults on one ScheduleSeries cursor.

// FaultKind is one gray-failure event type.
type FaultKind uint8

const (
	// FaultSlow sets a GPU's slowdown factor: Factor > 1 stretches its
	// execution (a 4× straggler does a tick's work in four), Factor == 1
	// restores full speed.
	FaultSlow FaultKind = iota
	// FaultError aborts the in-flight batches on a GPU: their requests
	// are redelivered to the gateway (transient XID-style error, the
	// device itself survives).
	FaultError
)

// String returns the trace-file spelling of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultSlow:
		return "slow"
	case FaultError:
		return "error"
	}
	return fmt.Sprintf("fault(%d)", k)
}

// FaultEvent is one scheduled gray-failure event. GPU indexes into the
// node's devices; -1 targets every GPU on the node (a flaky host: NIC,
// PCIe switch, thermal). Factor applies to FaultSlow only.
type FaultEvent struct {
	At     sim.Time
	Kind   FaultKind
	Node   int
	GPU    int
	Factor float64
}

// SortFaults orders events by (At, original position) — the stable
// order a replay through sim.Engine.ScheduleSeries requires.
func SortFaults(events []FaultEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// StragglerMix generates a seeded straggler population: count distinct
// GPUs (drawn over nodes × gpusPerNode) slow down by factor at start —
// staggered one stagger apart so detection sees them appear one by one —
// and recover after dur each. The produced schedule is sorted and
// deterministic in the RNG seed.
func StragglerMix(rng *sim.RNG, nodes, gpusPerNode int, start sim.Time, stagger, dur sim.Duration, count int, factor float64) []FaultEvent {
	total := nodes * gpusPerNode
	if count > total {
		count = total
	}
	perm := make([]int, total)
	for i := range perm {
		perm[i] = i
	}
	// Fisher-Yates off the deterministic RNG: which GPUs straggle is
	// part of the seeded scenario, like FailureWave's node draw.
	for i := total - 1; i > 0; i-- {
		j := int(rng.Float64() * float64(i+1))
		if j > i {
			j = i
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	var out []FaultEvent
	for i := 0; i < count; i++ {
		node, gpu := perm[i]/gpusPerNode, perm[i]%gpusPerNode
		at := start + sim.Duration(i)*stagger
		out = append(out, FaultEvent{At: at, Kind: FaultSlow, Node: node, GPU: gpu, Factor: factor})
		out = append(out, FaultEvent{At: at + dur, Kind: FaultSlow, Node: node, GPU: gpu, Factor: 1})
	}
	SortFaults(out)
	return out
}

// FaultWave generates a flaky node with a time-varying error rate: over
// [start, start+dur) the node emits transient batch errors whose
// inter-arrival times follow a triangular intensity profile — sparse at
// the edges, peaking at peakPerSec mid-window — rotating across the
// node's GPUs. This is the gray pattern that evades fail-stop
// detection: the node never dies, it just hurts more and more, then
// recovers. Deterministic in the RNG seed.
func FaultWave(rng *sim.RNG, node, gpusPerNode int, start sim.Time, dur sim.Duration, peakPerSec float64) []FaultEvent {
	if dur <= 0 || peakPerSec <= 0 {
		return nil
	}
	var out []FaultEvent
	t := start
	end := start + dur
	gpu := 0
	for t < end {
		// Triangular intensity: ramps 0→peak over the first half of the
		// window and back down over the second.
		frac := float64(t-start) / float64(dur)
		shape := 2 * frac
		if frac > 0.5 {
			shape = 2 * (1 - frac)
		}
		rate := peakPerSec * shape
		if rate < 0.1*peakPerSec {
			rate = 0.1 * peakPerSec
		}
		// Exponential gap at the current rate, jittered off the seed.
		gap := sim.Duration(float64(sim.Second) / rate * (0.5 + rng.Float64()))
		if gap < sim.TickPeriod {
			gap = sim.TickPeriod
		}
		t += gap
		if t >= end {
			break
		}
		out = append(out, FaultEvent{At: t, Kind: FaultError, Node: node, GPU: gpu, Factor: 0})
		if gpusPerNode > 0 {
			gpu = (gpu + 1) % gpusPerNode
		}
	}
	SortFaults(out)
	return out
}

// ParseFaultCSV reads a fault trace: one "seconds,action,node,gpu[,factor]"
// line per event (action ∈ slow|error; gpu may be '*' for every GPU on
// the node; factor is required for slow, 1 restores full speed), '#'
// comments and a header line allowed. Events are returned sorted by
// time.
func ParseFaultCSV(r io.Reader) ([]FaultEvent, error) {
	sc := bufio.NewScanner(r)
	var out []FaultEvent
	line, dataRows := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 && len(parts) != 5 {
			return nil, fmt.Errorf("workload: fault line %d: want seconds,action,node,gpu[,factor], got %q", line, text)
		}
		dataRows++
		secs, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			// Only the first data row may be a column header, and only
			// when it holds no digits at all — a malformed mid-file
			// timestamp must error, not vanish. (Same rule as
			// ParseChurnCSV.)
			if dataRows == 1 && !strings.ContainsAny(parts[0], "0123456789") {
				continue
			}
			return nil, fmt.Errorf("workload: fault line %d: bad timestamp %q", line, parts[0])
		}
		if secs < 0 {
			return nil, fmt.Errorf("workload: fault line %d: negative timestamp", line)
		}
		var kind FaultKind
		switch action := strings.ToLower(strings.TrimSpace(parts[1])); action {
		case "slow":
			kind = FaultSlow
		case "error":
			kind = FaultError
		default:
			return nil, fmt.Errorf("workload: fault line %d: unknown action %q", line, action)
		}
		node, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || node < 0 {
			return nil, fmt.Errorf("workload: fault line %d: bad node %q", line, parts[2])
		}
		gpu := -1
		if gs := strings.TrimSpace(parts[3]); gs != "*" {
			gpu, err = strconv.Atoi(gs)
			if err != nil || gpu < 0 {
				return nil, fmt.Errorf("workload: fault line %d: bad gpu %q (index or '*')", line, parts[3])
			}
		}
		factor := 0.0
		if len(parts) == 5 {
			factor, err = strconv.ParseFloat(strings.TrimSpace(parts[4]), 64)
			if err != nil || factor < 0 {
				return nil, fmt.Errorf("workload: fault line %d: bad factor %q", line, parts[4])
			}
		}
		if kind == FaultSlow {
			if factor < 1 {
				return nil, fmt.Errorf("workload: fault line %d: slow needs factor ≥ 1 (1 restores)", line)
			}
		}
		out = append(out, FaultEvent{At: sim.FromSeconds(secs), Kind: kind, Node: node, GPU: gpu, Factor: factor})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	SortFaults(out)
	return out, nil
}

// LoadFaults reads a fault trace file (CSV).
func LoadFaults(path string) ([]FaultEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseFaultCSV(f)
}

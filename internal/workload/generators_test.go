package workload

import (
	"math"
	"slices"
	"testing"

	"dilu/internal/sim"
)

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{TroughRPS: 2, DayRPS: 40, PeakBoost: 0.5, Period: 240 * sim.Second}
	arr := d.Generate(sim.NewRNG(11), 240*sim.Second)
	if !sortedTimes(arr) {
		t.Fatal("not sorted")
	}
	// Count arrivals in the trough ([0, 60s)) vs the plateau ([90s, 160s)).
	var trough, day float64
	for _, a := range arr {
		switch {
		case a < 60*sim.Second:
			trough++
		case a >= 90*sim.Second && a < 160*sim.Second:
			day++
		}
	}
	troughRate := trough / 60
	dayRate := day / 70
	if dayRate < 5*troughRate {
		t.Fatalf("day rate %.1f not well above trough rate %.1f", dayRate, troughRate)
	}
	if math.Abs(dayRate-40) > 10 {
		t.Fatalf("plateau rate %.1f, want ~40", dayRate)
	}
}

func TestDiurnalDefaultsAndZero(t *testing.T) {
	if got := (Diurnal{}).Generate(sim.NewRNG(1), sim.Minute); got != nil {
		t.Fatal("zero rates must generate nothing")
	}
	// Zero period/boost take defaults without panicking.
	arr := Diurnal{TroughRPS: 1, DayRPS: 10}.Generate(sim.NewRNG(2), 300*sim.Second)
	if len(arr) == 0 {
		t.Fatal("no arrivals with defaults")
	}
}

func TestParetoMeanRateAndTail(t *testing.T) {
	p := Pareto{RPS: 20, Alpha: 1.5}
	arr := p.Generate(sim.NewRNG(5), 600*sim.Second)
	if !sortedTimes(arr) {
		t.Fatal("not sorted")
	}
	// Heavy tails converge slowly; accept a loose band around the target.
	rate := MeanRPS(arr, 600*sim.Second)
	if rate < 8 || rate > 40 {
		t.Fatalf("mean rate %.1f, want roughly 20", rate)
	}
	// Heavy-tailed gaps: the largest gap dwarfs the median gap by far
	// more than an exponential process would allow.
	var gaps []float64
	prev := sim.Time(0)
	for _, a := range arr {
		gaps = append(gaps, (a - prev).Seconds())
		prev = a
	}
	slices.Sort(gaps)
	median := gaps[len(gaps)/2]
	max := gaps[len(gaps)-1]
	if max < 50*median {
		t.Fatalf("max/median gap = %.1f, want heavy tail (>50)", max/median)
	}
}

func TestParetoClampsAlpha(t *testing.T) {
	if got := (Pareto{RPS: 0}).Generate(sim.NewRNG(1), sim.Minute); got != nil {
		t.Fatal("zero RPS must be empty")
	}
	// α ≤ 1 clamps instead of dividing by zero.
	arr := Pareto{RPS: 10, Alpha: 0.5}.Generate(sim.NewRNG(3), sim.Minute)
	if !sortedTimes(arr) {
		t.Fatal("not sorted")
	}
}

func TestTenantMixWeights(t *testing.T) {
	m := TenantMix{Tenants: 4, TotalRPS: 40, Skew: 1}
	w := m.Weights()
	if len(w) != 4 {
		t.Fatalf("weights = %v", w)
	}
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Zipf s=1 over 4 tenants: head weight = 1/(1+1/2+1/3+1/4) = 0.48.
	if math.Abs(w[0]-0.48) > 0.001 {
		t.Fatalf("head weight %v, want 0.48", w[0])
	}
	// Skew 0 is uniform.
	u := TenantMix{Tenants: 4, TotalRPS: 40}.Weights()
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("uniform weights = %v", u)
		}
	}
	if (TenantMix{}).Weights() != nil {
		t.Fatal("zero tenants must have no weights")
	}
}

func TestTenantMixSplitSkewed(t *testing.T) {
	m := TenantMix{Tenants: 6, TotalRPS: 60, Skew: 1.2}
	split := m.Split(sim.NewRNG(7), 300*sim.Second)
	if len(split) != 6 {
		t.Fatalf("split = %d tenants", len(split))
	}
	head := len(split[0].Times)
	tail := len(split[5].Times)
	if head <= 3*tail {
		t.Fatalf("no popularity skew: head %d vs tail %d", head, tail)
	}
	for i, ta := range split {
		if !sortedTimes(ta.Times) {
			t.Fatalf("tenant %d not sorted", i)
		}
		if ta.Name == "" || ta.Weight <= 0 {
			t.Fatalf("tenant %d metadata: %+v", i, ta)
		}
		if ta.Tenant != ta.Name {
			t.Fatalf("tenant %d: structured ID %q diverged from name %q", i, ta.Tenant, ta.Name)
		}
	}
	// Determinism: same seed, same split.
	again := m.Split(sim.NewRNG(7), 300*sim.Second)
	for i := range split {
		if !slices.Equal(split[i].Times, again[i].Times) {
			t.Fatalf("tenant %d split not deterministic", i)
		}
	}
}

func TestTenantMixCustomShapeAndMerge(t *testing.T) {
	m := TenantMix{
		Tenants: 3, TotalRPS: 30, Skew: 1,
		Shape: func(i int, rps float64) Arrivals {
			if i == 0 {
				return Bursty{BaseRPS: rps, Scale: 3}
			}
			return Poisson{RPS: rps}
		},
	}
	merged := m.Generate(sim.NewRNG(9), 120*sim.Second)
	if !sortedTimes(merged) {
		t.Fatal("merged mix not sorted")
	}
	split := m.Split(sim.NewRNG(9), 120*sim.Second)
	var n int
	for _, ta := range split {
		n += len(ta.Times)
	}
	if n != len(merged) {
		t.Fatalf("merge lost events: %d vs %d", len(merged), n)
	}
}

// TestBurstyReplayIdentical is the regression test for the monotone rate
// cursor: replaying the same generator (same seed, same horizon) twice
// must produce identical output — the cursor must rewind, not resume
// past the last burst window of the previous run.
func TestBurstyReplayIdentical(t *testing.T) {
	b := Bursty{BaseRPS: 10, Scale: 5, BurstDur: 10 * sim.Second, Quiet: 30 * sim.Second}
	first := b.Generate(sim.NewRNG(42), 200*sim.Second)
	second := b.Generate(sim.NewRNG(42), 200*sim.Second)
	if !slices.Equal(first, second) {
		t.Fatalf("replay diverged: %d vs %d arrivals", len(first), len(second))
	}
}

// TestRateFuncResetRewindsCursor exercises the reuse hazard directly: a
// RateFunc whose RPS closure keeps a monotone cursor is Generated twice
// from the same value. Without Reset the second run would start with the
// cursor past every window and see only the base rate.
func TestRateFuncResetRewindsCursor(t *testing.T) {
	b := Bursty{BaseRPS: 10, Scale: 6, BurstDur: 20 * sim.Second, Quiet: 30 * sim.Second}
	rf := b.rateFunc(sim.NewRNG(8), 300*sim.Second)
	first := rf.Generate(sim.NewRNG(1), 300*sim.Second)
	second := rf.Generate(sim.NewRNG(1), 300*sim.Second)
	if !slices.Equal(first, second) {
		t.Fatalf("reused RateFunc diverged: %d vs %d arrivals", len(first), len(second))
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dilu/internal/sim"
)

// ChurnKind is one cluster lifecycle transition.
type ChurnKind uint8

const (
	// ChurnFail retires a node abruptly; its placements are evicted and
	// rescheduled with cold starts.
	ChurnFail ChurnKind = iota
	// ChurnDrain stops new placements on a node (planned removal);
	// instances are migrated off make-before-break.
	ChurnDrain
	// ChurnJoin returns a failed or drained node to service.
	ChurnJoin
)

// String returns the trace-file spelling of the kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnFail:
		return "fail"
	case ChurnDrain:
		return "drain"
	case ChurnJoin:
		return "join"
	}
	return fmt.Sprintf("churn(%d)", k)
}

// ChurnEvent is one scheduled lifecycle transition of a cluster node.
type ChurnEvent struct {
	At   sim.Time
	Kind ChurnKind
	Node int
}

// SortChurn orders events by (At, original position) — the stable order
// a replay through sim.Engine.ScheduleSeries requires.
func SortChurn(events []ChurnEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// FailureWave generates a seeded failure storm: count distinct nodes
// (drawn from [0, nodes)) fail one after another, interval apart,
// starting at start; each rejoins repair after its failure. The produced
// schedule is sorted and deterministic in the RNG seed.
func FailureWave(rng *sim.RNG, nodes int, start sim.Time, interval, repair sim.Duration, count int) []ChurnEvent {
	if count > nodes {
		count = nodes
	}
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	// Fisher-Yates off the deterministic RNG: which nodes fail is part
	// of the seeded scenario.
	for i := nodes - 1; i > 0; i-- {
		j := int(rng.Float64() * float64(i+1))
		if j > i {
			j = i
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	var out []ChurnEvent
	for i := 0; i < count; i++ {
		at := start + sim.Duration(i)*interval
		out = append(out, ChurnEvent{At: at, Kind: ChurnFail, Node: perm[i]})
		out = append(out, ChurnEvent{At: at + repair, Kind: ChurnJoin, Node: perm[i]})
	}
	SortChurn(out)
	return out
}

// RollingDrain generates the zero-downtime upgrade sweep: each node in
// [first, first+count) drains at its turn, dwells for the upgrade
// window, and rejoins before the next node starts — at most one node is
// ever out of service.
func RollingDrain(first, count int, start sim.Time, dwell sim.Duration) []ChurnEvent {
	var out []ChurnEvent
	at := start
	for n := first; n < first+count; n++ {
		out = append(out, ChurnEvent{At: at, Kind: ChurnDrain, Node: n})
		out = append(out, ChurnEvent{At: at + dwell, Kind: ChurnJoin, Node: n})
		at += dwell + dwell/4
	}
	return out
}

// ParseChurnCSV reads a churn trace: one "seconds,action,node" line per
// event (action ∈ fail|drain|join), '#' comments and a header line
// allowed. Events are returned sorted by time.
func ParseChurnCSV(r io.Reader) ([]ChurnEvent, error) {
	sc := bufio.NewScanner(r)
	var out []ChurnEvent
	line, dataRows := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: churn line %d: want seconds,action,node, got %q", line, text)
		}
		dataRows++
		secs, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			// Only the first data row may be a column header, and only
			// when it holds no digits at all — a malformed mid-file
			// timestamp ("1o0") must error, not vanish. (Same rule as
			// ParseTraceCSV.)
			if dataRows == 1 && !strings.ContainsAny(parts[0], "0123456789") {
				continue
			}
			return nil, fmt.Errorf("workload: churn line %d: bad timestamp %q", line, parts[0])
		}
		if secs < 0 {
			return nil, fmt.Errorf("workload: churn line %d: negative timestamp", line)
		}
		var kind ChurnKind
		switch action := strings.ToLower(strings.TrimSpace(parts[1])); action {
		case "fail":
			kind = ChurnFail
		case "drain":
			kind = ChurnDrain
		case "join":
			kind = ChurnJoin
		default:
			return nil, fmt.Errorf("workload: churn line %d: unknown action %q", line, action)
		}
		node, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || node < 0 {
			return nil, fmt.Errorf("workload: churn line %d: bad node %q", line, parts[2])
		}
		out = append(out, ChurnEvent{At: sim.FromSeconds(secs), Kind: kind, Node: node})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	SortChurn(out)
	return out, nil
}

// LoadChurn reads a churn trace file (CSV).
func LoadChurn(path string) ([]ChurnEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseChurnCSV(f)
}

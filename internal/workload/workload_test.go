package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dilu/internal/sim"
)

const testDur = 300 * sim.Second

func sortedTimes(ts []sim.Time) bool {
	return sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

func TestConstantRate(t *testing.T) {
	arr := Constant{RPS: 10}.Generate(nil, 10*sim.Second)
	if len(arr) != 99 { // gaps of 100ms starting at 100ms, ending before 10s
		t.Fatalf("got %d arrivals, want 99", len(arr))
	}
	if !sortedTimes(arr) {
		t.Fatal("not sorted")
	}
}

func TestConstantZeroRPS(t *testing.T) {
	if got := (Constant{RPS: 0}).Generate(nil, testDur); got != nil {
		t.Fatal("zero RPS must be empty")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := sim.NewRNG(1)
	arr := Poisson{RPS: 50}.Generate(rng, testDur)
	got := MeanRPS(arr, testDur)
	if math.Abs(got-50)/50 > 0.05 {
		t.Fatalf("mean RPS = %v, want ~50", got)
	}
	if !sortedTimes(arr) {
		t.Fatal("not sorted")
	}
}

func TestGammaMeanRateAcrossCV(t *testing.T) {
	for _, cv := range []float64{0.001, 1, 3, 6} {
		rng := sim.NewRNG(2)
		arr := Gamma{RPS: 40, CV: cv}.Generate(rng, testDur)
		got := MeanRPS(arr, testDur)
		if math.Abs(got-40)/40 > 0.08 {
			t.Fatalf("cv=%v: mean RPS = %v, want ~40", cv, got)
		}
	}
}

func TestGammaCVControlsBurstiness(t *testing.T) {
	// Higher CV must produce more variable per-second counts.
	variance := func(cv float64) float64 {
		rng := sim.NewRNG(3)
		arr := Gamma{RPS: 40, CV: cv}.Generate(rng, testDur)
		rates := OfferedRPS(arr, sim.Second, testDur)
		var m, v float64
		for _, r := range rates {
			m += r
		}
		m /= float64(len(rates))
		for _, r := range rates {
			v += (r - m) * (r - m)
		}
		return v / float64(len(rates))
	}
	low, high := variance(0.5), variance(6)
	if high < 2*low {
		t.Fatalf("CV=6 variance (%v) should far exceed CV=0.5 (%v)", high, low)
	}
}

func TestBurstyHasBursts(t *testing.T) {
	rng := sim.NewRNG(4)
	tr := Bursty{BaseRPS: 10, Scale: 6, BurstDur: 20 * sim.Second, Quiet: 60 * sim.Second}
	arr := tr.Generate(rng, testDur)
	rates := OfferedRPS(arr, 5*sim.Second, testDur)
	var peak, trough float64 = 0, math.Inf(1)
	for _, r := range rates {
		if r > peak {
			peak = r
		}
		if r < trough {
			trough = r
		}
	}
	if peak < 35 {
		t.Fatalf("peak rate %v too low for scale-6 bursts on base 10", peak)
	}
	if trough > 25 {
		t.Fatalf("trough rate %v too high — no quiet periods", trough)
	}
}

func TestPeriodicOscillates(t *testing.T) {
	rng := sim.NewRNG(5)
	tr := Periodic{BaseRPS: 30, Amp: 0.8, Period: 60 * sim.Second}
	arr := tr.Generate(rng, testDur)
	rates := OfferedRPS(arr, 10*sim.Second, testDur)
	var peak, trough float64 = 0, math.Inf(1)
	for _, r := range rates {
		if r > peak {
			peak = r
		}
		if r < trough {
			trough = r
		}
	}
	if peak < 40 || trough > 20 {
		t.Fatalf("periodic should swing: peak=%v trough=%v", peak, trough)
	}
	got := MeanRPS(arr, testDur)
	if math.Abs(got-30)/30 > 0.15 {
		t.Fatalf("mean = %v, want ~30", got)
	}
}

func TestSporadicMostlyIdle(t *testing.T) {
	rng := sim.NewRNG(6)
	tr := Sporadic{ClusterRPS: 5, ClusterDur: 10 * sim.Second, IdleMean: 90 * sim.Second}
	arr := tr.Generate(rng, 600*sim.Second)
	rates := OfferedRPS(arr, sim.Second, 600*sim.Second)
	idle := 0
	for _, r := range rates {
		if r == 0 {
			idle++
		}
	}
	if frac := float64(idle) / float64(len(rates)); frac < 0.5 {
		t.Fatalf("sporadic trace should be mostly idle, idle frac = %v", frac)
	}
	if len(arr) == 0 {
		t.Fatal("sporadic trace should still contain requests")
	}
}

func TestOfferedRPSSumsToArrivals(t *testing.T) {
	rng := sim.NewRNG(7)
	arr := Poisson{RPS: 20}.Generate(rng, testDur)
	rates := OfferedRPS(arr, sim.Second, testDur)
	var total float64
	for _, r := range rates {
		total += r // 1-second windows: rate == count
	}
	if int(total+0.5) != len(arr) {
		t.Fatalf("rates sum %v != %d arrivals", total, len(arr))
	}
}

func TestMerge(t *testing.T) {
	a := []sim.Time{1, 5, 9}
	b := []sim.Time{2, 3, 10}
	m := Merge(a, b)
	if len(m) != 6 || !sortedTimes(m) {
		t.Fatalf("merge = %v", m)
	}
}

func TestDeterminism(t *testing.T) {
	gens := []Arrivals{
		Poisson{RPS: 25},
		Gamma{RPS: 25, CV: 4},
		Bursty{BaseRPS: 10, Scale: 4},
		Periodic{BaseRPS: 20},
		Sporadic{ClusterRPS: 5},
	}
	for _, g := range gens {
		a := g.Generate(sim.NewRNG(42), testDur)
		b := g.Generate(sim.NewRNG(42), testDur)
		if len(a) != len(b) {
			t.Fatalf("%s: non-deterministic length", g.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: non-deterministic at %d", g.Name(), i)
			}
		}
	}
}

// Property: all generators produce sorted arrivals within the horizon.
func TestGeneratorsSortedBoundedProperty(t *testing.T) {
	f := func(seed int64, which uint8, rps uint8) bool {
		r := float64(rps%50) + 1
		var g Arrivals
		switch which % 5 {
		case 0:
			g = Poisson{RPS: r}
		case 1:
			g = Gamma{RPS: r, CV: 3}
		case 2:
			g = Bursty{BaseRPS: r, Scale: 4}
		case 3:
			g = Periodic{BaseRPS: r}
		default:
			g = Sporadic{ClusterRPS: r}
		}
		arr := g.Generate(sim.NewRNG(seed), 60*sim.Second)
		if !sortedTimes(arr) {
			return false
		}
		for _, a := range arr {
			if a < 0 || a >= 60*sim.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Package workload generates the request arrival processes of the
// paper's evaluation: Poisson and Gamma(CV) inter-arrival processes
// (Figures 7, 8, 10), and Azure-Functions-like Bursty, Sporadic and
// Periodic traces (Table 3, Figures 12, 15) synthesized from the shape
// descriptions published with INFless and "Serverless in the Wild".
//
// Generators materialize the full arrival sequence for a run up front
// from a seeded RNG, keeping every experiment deterministic.
package workload

import (
	"math"
	"slices"

	"dilu/internal/sim"
)

// Arrivals produces a deterministic arrival-time sequence over a horizon.
type Arrivals interface {
	Name() string
	// Generate returns strictly non-decreasing arrival times in [0, dur).
	Generate(rng *sim.RNG, dur sim.Duration) []sim.Time
}

// Constant emits requests at an exact fixed rate (deterministic gaps).
type Constant struct{ RPS float64 }

// Name implements Arrivals.
func (c Constant) Name() string { return "constant" }

// Generate implements Arrivals.
func (c Constant) Generate(_ *sim.RNG, dur sim.Duration) []sim.Time {
	if c.RPS <= 0 {
		return nil
	}
	gap := sim.FromSeconds(1 / c.RPS)
	var out []sim.Time
	for t := gap; t < dur; t += gap {
		out = append(out, t)
	}
	return out
}

// Poisson is a homogeneous Poisson arrival process.
type Poisson struct{ RPS float64 }

// Name implements Arrivals.
func (p Poisson) Name() string { return "poisson" }

// Generate implements Arrivals.
func (p Poisson) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	if p.RPS <= 0 {
		return nil
	}
	var out []sim.Time
	t := sim.Time(0)
	for {
		t += sim.FromSeconds(rng.Exp(p.RPS))
		if t >= dur {
			return out
		}
		out = append(out, t)
	}
}

// Gamma is a renewal process with Gamma-distributed inter-arrival gaps
// parameterized by mean rate and coefficient of variation; CV=1 recovers
// Poisson and larger CVs produce the fluctuating workloads of Figure 10
// (FastServe-style).
type Gamma struct {
	RPS float64
	CV  float64
}

// Name implements Arrivals.
func (g Gamma) Name() string { return "gamma" }

// Generate implements Arrivals.
func (g Gamma) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	if g.RPS <= 0 {
		return nil
	}
	meanGap := 1 / g.RPS
	var out []sim.Time
	t := sim.Time(0)
	for {
		t += sim.FromSeconds(rng.GammaInterArrival(meanGap, g.CV))
		if t >= dur {
			return out
		}
		out = append(out, t)
	}
}

// RateFunc is a non-homogeneous Poisson process whose instantaneous rate
// is given by RPS(t). It is the building block for the Azure-style traces.
//
// Thinning queries RPS at non-decreasing times within one Generate, so
// implementations may keep a monotone cursor over precomputed rate
// segments. A stateful RPS must supply Reset so a reused RateFunc value
// replays identically: Generate rewinds the cursor before every run.
type RateFunc struct {
	Label string
	RPS   func(t sim.Time) float64
	Peak  float64 // an upper bound of RPS over the horizon, for thinning
	// Reset rewinds any cursor state inside RPS to time zero. Called at
	// the start of every Generate; nil means RPS is stateless.
	Reset func()
}

// Name implements Arrivals.
func (r RateFunc) Name() string { return r.Label }

// Generate implements Arrivals via Lewis-Shedler thinning.
func (r RateFunc) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	if r.Peak <= 0 {
		return nil
	}
	if r.Reset != nil {
		r.Reset()
	}
	var out []sim.Time
	t := sim.Time(0)
	for {
		t += sim.FromSeconds(rng.Exp(r.Peak))
		if t >= dur {
			return out
		}
		if rng.Float64() < r.RPS(t)/r.Peak {
			out = append(out, t)
		}
	}
}

// Bursty synthesizes the Azure "Bursty" trace class: a low base rate with
// sudden bursts of Scale× the base, each lasting BurstDur, spaced
// Quiet apart on average. The paper's Figure 8(a) uses initial burst
// scale factors of 4 and 6.
type Bursty struct {
	BaseRPS  float64
	Scale    float64
	BurstDur sim.Duration
	Quiet    sim.Duration
}

// Name implements Arrivals.
func (b Bursty) Name() string { return "bursty" }

// rateFunc precomputes the burst windows and returns the thinning
// process over them. The rate closure keeps a monotone cursor over the
// (ascending, disjoint) windows instead of scanning the whole list per
// candidate arrival; the cursor is declared through RateFunc.Reset so a
// replayed RateFunc rewinds it instead of resuming past the last burst.
func (b Bursty) rateFunc(rng *sim.RNG, dur sim.Duration) RateFunc {
	burstDur := b.BurstDur
	if burstDur <= 0 {
		burstDur = 20 * sim.Second
	}
	quiet := b.Quiet
	if quiet <= 0 {
		quiet = 60 * sim.Second
	}
	// Precompute burst windows.
	type window struct{ start, end sim.Time }
	var bursts []window
	t := sim.Time(float64(quiet) * (0.5 + rng.Float64()))
	for t < dur {
		bursts = append(bursts, window{t, t + burstDur})
		t += burstDur + sim.Time(float64(quiet)*(0.5+rng.Float64()))
	}
	idx := 0
	return RateFunc{
		Label: "bursty",
		RPS: func(at sim.Time) float64 {
			for idx < len(bursts) && at >= bursts[idx].end {
				idx++
			}
			if idx < len(bursts) && at >= bursts[idx].start {
				return b.BaseRPS * b.Scale
			}
			return b.BaseRPS
		},
		Peak:  b.BaseRPS * b.Scale,
		Reset: func() { idx = 0 },
	}
}

// Generate implements Arrivals.
func (b Bursty) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	return b.rateFunc(rng, dur).Generate(rng, dur)
}

// Periodic synthesizes the Azure "Periodic" trace class: a smooth
// oscillation between trough and peak, modelling compressed diurnal load.
type Periodic struct {
	BaseRPS float64
	Amp     float64 // peak = Base·(1+Amp), trough = Base·(1−Amp)
	Period  sim.Duration
}

// Name implements Arrivals.
func (p Periodic) Name() string { return "periodic" }

// Generate implements Arrivals.
func (p Periodic) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	period := p.Period
	if period <= 0 {
		period = 120 * sim.Second
	}
	amp := p.Amp
	if amp <= 0 {
		amp = 0.8
	}
	rate := func(at sim.Time) float64 {
		phase := 2 * math.Pi * float64(at) / float64(period)
		r := p.BaseRPS * (1 + amp*math.Sin(phase))
		if r < 0 {
			return 0
		}
		return r
	}
	return RateFunc{Label: "periodic", RPS: rate, Peak: p.BaseRPS * (1 + amp)}.Generate(rng, dur)
}

// Sporadic synthesizes the Azure "Sporadic" trace class: long idle
// stretches with occasional short clusters of requests — the keep-alive
// waste driver of Observation-3 (fewer than 85% of functions invoked per
// minute; a keep-alive instance may see 3-4 requests in ~50 s).
type Sporadic struct {
	ClusterRPS float64      // rate inside a cluster
	ClusterDur sim.Duration // cluster length
	IdleMean   sim.Duration // mean idle gap between clusters
}

// Name implements Arrivals.
func (s Sporadic) Name() string { return "sporadic" }

// Generate implements Arrivals.
func (s Sporadic) Generate(rng *sim.RNG, dur sim.Duration) []sim.Time {
	clusterDur := s.ClusterDur
	if clusterDur <= 0 {
		clusterDur = 10 * sim.Second
	}
	idle := s.IdleMean
	if idle <= 0 {
		idle = 90 * sim.Second
	}
	var out []sim.Time
	t := sim.FromSeconds(rng.Exp(1 / idle.Seconds()))
	for t < dur {
		end := t + clusterDur
		for t < end && t < dur {
			t += sim.FromSeconds(rng.Exp(s.ClusterRPS))
			if t < end && t < dur {
				out = append(out, t)
			}
		}
		t = end + sim.FromSeconds(rng.Exp(1/idle.Seconds()))
	}
	return out
}

// OfferedRPS buckets an arrival sequence into per-window request rates —
// the signal plotted in the top panel of Figure 12 and consumed by the
// global scaler's sliding window.
func OfferedRPS(arrivals []sim.Time, window sim.Duration, dur sim.Duration) []float64 {
	if window <= 0 {
		return nil
	}
	n := int(dur / window)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for _, t := range arrivals {
		i := int(t / window)
		if i >= 0 && i < n {
			out[i] += 1
		}
	}
	scale := 1 / window.Seconds()
	for i := range out {
		out[i] *= scale
	}
	return out
}

// MeanRPS returns the average arrival rate over the horizon.
func MeanRPS(arrivals []sim.Time, dur sim.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(len(arrivals)) / dur.Seconds()
}

// Merge combines multiple sorted arrival sequences into one sorted
// sequence (for aggregate offered-load views).
func Merge(seqs ...[]sim.Time) []sim.Time {
	var out []sim.Time
	for _, s := range seqs {
		out = append(out, s...)
	}
	slices.Sort(out)
	return out
}

// Package cluster maintains the node/GPU inventory and the ⟨request,
// limit⟩/memory bookkeeping that Dilu's scheduler (Algorithm 1) operates
// on, along with the fragmentation and occupancy metrics reported in
// Figures 2 and 17.
//
// A GPU entry can optionally carry a live gpu.Device for kernel-level
// experiments; placement-only simulations (the 1,000-node run of §5.5)
// leave it nil and work purely on quota accounting.
//
// The inventory keeps incremental indexes so the scheduler hot path does
// no O(cluster) work: the active-GPU set is maintained (in inventory
// order) on every placement transition, the first-inactive lookup is a
// lazy min-heap over inventory positions, and per-GPU function
// membership is counted instead of rescanned. Two further indexes make
// placement sub-linear in cluster size: a function→hosting-GPUs posting
// index (FuncGPUs, kept in inventory order) lets workload-affinity
// lookups enumerate only the GPUs that actually host a function, and an
// occupancy index (OccupancyBucket) buckets active GPUs by ΣReq with
// lazy compaction so best-fit scans touch only feasible occupancy bands.
package cluster

import (
	"fmt"
	"slices"

	"dilu/internal/gpu"
)

// Placement records one instance's resource reservation on a GPU.
type Placement struct {
	Instance string
	Func     string
	Req      float64 // SM request quota as allocated by the scheduler
	Lim      float64 // SM limit quota
	MemMB    float64
	// TrueReq is the profiled request quota — the instance's actual
	// compute need regardless of how generously the scheduler allocated
	// (Exclusive allocates 1.0 for a 0.3-need instance). Fragmentation
	// accounting uses it; zero falls back to Req.
	TrueReq float64
}

// trueReq returns the actual compute need of the placement.
func (p *Placement) trueReq() float64 {
	if p.TrueReq > 0 {
		return p.TrueReq
	}
	return p.Req
}

// GPU is one schedulable device slot.
type GPU struct {
	ID    string
	Node  *Node
	Index int
	Dev   *gpu.Device // nil in placement-only simulations

	MemCapMB   float64
	SumReq     float64
	SumLim     float64
	SumTrueReq float64
	MemUsedMB  float64
	Placements []*Placement

	// clu and pos link the GPU back to its cluster's indexes; nil/0 for
	// GPUs constructed outside New (index maintenance is then skipped).
	clu *Cluster
	pos int
	// funcCounts counts placements per function, making HostsFunc O(1).
	funcCounts map[string]int
	// occIdx is the occupancy bucket of the GPU's most recent ΣReq
	// recording; occMask has bit b set iff an entry for this GPU
	// currently sits in the cluster's occ[b] slice (stale entries stay
	// until lazily compacted, and the mask keeps a GPU cycling through
	// buckets from accumulating duplicates).
	occIdx  int
	occMask uint64
}

// Active reports whether any instance is placed on the GPU.
func (g *GPU) Active() bool { return len(g.Placements) > 0 }

// Pos returns the GPU's position in the cluster inventory (the stable
// scan order of Cluster.GPUs); zero for GPUs built outside New.
func (g *GPU) Pos() int { return g.pos }

// Place reserves the placement's quotas on the GPU. Feasibility is the
// scheduler's concern; Place only refuses memory overflow, mirroring
// constraint (4).
func (g *GPU) Place(p *Placement) error {
	if g.MemUsedMB+p.MemMB > g.MemCapMB {
		return fmt.Errorf("cluster: gpu %s memory overflow (%.0f+%.0f > %.0f MB)",
			g.ID, g.MemUsedMB, p.MemMB, g.MemCapMB)
	}
	g.SumReq += p.Req
	g.SumLim += p.Lim
	g.SumTrueReq += p.trueReq()
	g.MemUsedMB += p.MemMB
	g.Placements = append(g.Placements, p)
	if g.funcCounts == nil {
		g.funcCounts = make(map[string]int, 4)
	}
	g.funcCounts[p.Func]++
	if g.clu != nil {
		if len(g.Placements) == 1 {
			g.clu.noteActivated(g)
		}
		if g.funcCounts[p.Func] == 1 {
			g.clu.notePostingAdd(p.Func, g)
		}
		g.clu.noteOccupancy(g)
	}
	return nil
}

// Remove releases a placement's reservation.
func (g *GPU) Remove(p *Placement) {
	for i, q := range g.Placements {
		if q == p {
			g.Placements = append(g.Placements[:i], g.Placements[i+1:]...)
			g.SumReq -= p.Req
			g.SumLim -= p.Lim
			g.SumTrueReq -= p.trueReq()
			g.MemUsedMB -= p.MemMB
			if g.funcCounts[p.Func]--; g.funcCounts[p.Func] <= 0 {
				delete(g.funcCounts, p.Func)
				if g.clu != nil {
					g.clu.notePostingRemove(p.Func, g)
				}
			}
			if g.clu != nil {
				if len(g.Placements) == 0 {
					// The occupancy entry goes stale with the GPU; it is
					// compacted away (or revalidated by a reactivation)
					// lazily, like the free-heap entries.
					g.clu.noteDeactivated(g)
				} else {
					g.clu.noteOccupancy(g)
				}
			}
			return
		}
	}
}

// HostsFunc reports whether any placement belongs to the function.
func (g *GPU) HostsFunc(fn string) bool { return g.funcCounts[fn] > 0 }

// FuncCounts returns the per-function placement counts. The map is the
// GPU's live index — callers must treat it as read-only.
func (g *GPU) FuncCounts() map[string]int { return g.funcCounts }

// Funcs returns the set of function names placed on the GPU (a fresh
// copy; FuncCounts avoids the allocation on hot paths).
func (g *GPU) Funcs() map[string]bool {
	out := make(map[string]bool, len(g.funcCounts))
	for f := range g.funcCounts {
		out[f] = true
	}
	return out
}

// Node groups the GPUs of one server.
type Node struct {
	ID   string
	GPUs []*GPU
}

// Cluster is the full inventory.
type Cluster struct {
	Nodes []*Node
	gpus  []*GPU

	// active holds the GPUs with at least one placement, sorted by
	// inventory position — the same order a linear scan would produce.
	active []*GPU
	// inactive is a min-heap of inventory positions of GPUs believed
	// inactive, with lazy deletion: activation leaves a stale entry that
	// FirstInactive discards when it surfaces. inHeap tracks which
	// positions currently have an entry so a GPU cycling through
	// activations never accumulates duplicates.
	inactive []int
	inHeap   []bool
	// takenScratch backs AppendInactive's pop-and-restore, reused across
	// calls (the cluster's mutating lookups are single-threaded).
	takenScratch []int

	// posting maps a function name to the GPUs currently hosting at
	// least one of its placements, in inventory order — the posting list
	// workload-affinity lookups enumerate instead of scanning all active
	// GPUs. Lists are maintained eagerly on 0↔1 per-GPU count
	// transitions, and a function's key is deleted when its last
	// placement leaves so the map tracks live functions only.
	posting map[string][]*GPU
	// occ buckets active GPUs by ΣReq (bucket b holds ΣReq in
	// [b/64, (b+1)/64), clamped into the top bucket): the occupancy
	// index best-fit scans walk from the most-occupied feasible bucket
	// downward instead of over all active GPUs. Entries are appended on
	// ΣReq changes and compacted lazily on read; GPU.occIdx/occMask
	// identify the live entry.
	occ [OccupancyBuckets][]*GPU
}

// Config controls cluster construction.
type Config struct {
	Nodes       int
	GPUsPerNode int
	MemCapMB    float64 // zero defaults to A100-40GB
	WithDevices bool    // allocate live gpu.Devices for kernel-level runs
}

// New builds a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.GPUsPerNode <= 0 {
		cfg.GPUsPerNode = 4
	}
	if cfg.MemCapMB <= 0 {
		cfg.MemCapMB = gpu.DefaultMemoryMB
	}
	c := &Cluster{posting: make(map[string][]*GPU)}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{ID: fmt.Sprintf("node-%d", n)}
		for i := 0; i < cfg.GPUsPerNode; i++ {
			g := &GPU{
				ID:       fmt.Sprintf("node-%d/gpu-%d", n, i),
				Node:     node,
				Index:    i,
				MemCapMB: cfg.MemCapMB,
				clu:      c,
				pos:      len(c.gpus),
			}
			if cfg.WithDevices {
				g.Dev = gpu.NewDevice(g.ID)
				g.Dev.MemoryMB = cfg.MemCapMB
			}
			node.GPUs = append(node.GPUs, g)
			c.gpus = append(c.gpus, g)
		}
		c.Nodes = append(c.Nodes, node)
	}
	// Every GPU starts inactive; positions are pushed in order, which is
	// already a valid min-heap.
	c.inactive = make([]int, len(c.gpus))
	c.inHeap = make([]bool, len(c.gpus))
	for i := range c.inactive {
		c.inactive[i] = i
		c.inHeap[i] = true
	}
	return c
}

// activeIndex returns the insertion point of pos in the active list
// (lower bound by inventory position).
func (c *Cluster) activeIndex(pos int) int {
	lo, hi := 0, len(c.active)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.active[mid].pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// noteActivated inserts g into the active list at its inventory position.
// The matching inactive-heap entry is left in place and lazily discarded.
func (c *Cluster) noteActivated(g *GPU) {
	lo := c.activeIndex(g.pos)
	c.active = append(c.active, nil)
	copy(c.active[lo+1:], c.active[lo:])
	c.active[lo] = g
}

// noteDeactivated removes g from the active list and returns its position
// to the inactive heap.
func (c *Cluster) noteDeactivated(g *GPU) {
	lo := c.activeIndex(g.pos)
	if lo < len(c.active) && c.active[lo] == g {
		c.active = append(c.active[:lo], c.active[lo+1:]...)
	}
	// A stale entry from before the GPU's last activation may still sit
	// in the heap; it is valid again now, so don't add a duplicate.
	if !c.inHeap[g.pos] {
		c.inHeap[g.pos] = true
		c.pushInactive(g.pos)
	}
}

func (c *Cluster) pushInactive(pos int) {
	c.inactive = append(c.inactive, pos)
	i := len(c.inactive) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.inactive[parent] <= c.inactive[i] {
			break
		}
		c.inactive[i], c.inactive[parent] = c.inactive[parent], c.inactive[i]
		i = parent
	}
}

func (c *Cluster) popInactive() int {
	h := c.inactive
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	c.inactive = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l] < h[min] {
			min = l
		}
		if r < n && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// GPUs returns every GPU in the cluster, in stable order.
func (c *Cluster) GPUs() []*GPU { return c.gpus }

// ActiveGPUs returns GPUs hosting at least one placement (the 𝐺_act set
// of Algorithm 1), in inventory order. The slice is the cluster's live
// index — callers must treat it as read-only and must not hold it across
// placement changes.
func (c *Cluster) ActiveGPUs() []*GPU { return c.active }

// FirstInactive returns the inactive GPU earliest in inventory order —
// the GPU a linear "first !Active()" scan would find — or nil when every
// GPU is occupied.
func (c *Cluster) FirstInactive() *GPU {
	for len(c.inactive) > 0 {
		g := c.gpus[c.inactive[0]]
		if !g.Active() {
			return g
		}
		c.inHeap[c.popInactive()] = false // stale entry from a past activation
	}
	return nil
}

// InactiveCount returns the number of GPUs with no placements.
func (c *Cluster) InactiveCount() int { return len(c.gpus) - len(c.active) }

// AppendInactive appends up to k inactive GPUs in inventory order to dst
// and returns the extended slice.
func (c *Cluster) AppendInactive(dst []*GPU, k int) []*GPU {
	if k <= 0 {
		return dst
	}
	taken := c.takenScratch[:0]
	for len(taken) < k && len(c.inactive) > 0 {
		pos := c.popInactive()
		if c.gpus[pos].Active() {
			c.inHeap[pos] = false // stale entry
			continue
		}
		taken = append(taken, pos)
		dst = append(dst, c.gpus[pos])
	}
	for _, pos := range taken {
		c.pushInactive(pos) // still inactive: return to the heap
	}
	c.takenScratch = taken
	return dst
}

// OccupiedCount returns the number of active GPUs — the scheduling
// objective Σ g_i of Equation (1).
func (c *Cluster) OccupiedCount() int { return len(c.active) }

// ---------------------------------------------------------------------------
// Function posting index.

// FuncGPUs returns the GPUs hosting at least one placement of fn, in
// inventory order. The slice is the cluster's live posting list —
// callers must treat it as read-only and must not hold it across
// placement changes. Nil when no GPU hosts the function.
func (c *Cluster) FuncGPUs(fn string) []*GPU { return c.posting[fn] }

// postingIndex returns the insertion point of pos in fn's posting list
// (lower bound by inventory position).
func postingIndex(list []*GPU, pos int) int {
	lo, _ := slices.BinarySearchFunc(list, pos, func(g *GPU, p int) int { return g.pos - p })
	return lo
}

// notePostingAdd records that g now hosts fn (its per-GPU count went
// 0→1), keeping the posting list in inventory order.
func (c *Cluster) notePostingAdd(fn string, g *GPU) {
	list := c.posting[fn]
	c.posting[fn] = slices.Insert(list, postingIndex(list, g.pos), g)
}

// notePostingRemove records that g no longer hosts fn (count 1→0). The
// key is deleted when the list empties so the map never accumulates
// dead function names (§5.5-style mixes use per-instance names).
func (c *Cluster) notePostingRemove(fn string, g *GPU) {
	list := c.posting[fn]
	lo := postingIndex(list, g.pos)
	if lo >= len(list) || list[lo] != g {
		return
	}
	list = slices.Delete(list, lo, lo+1)
	if len(list) == 0 {
		delete(c.posting, fn)
	} else {
		c.posting[fn] = list
	}
}

// ---------------------------------------------------------------------------
// Occupancy index.

// OccupancyBuckets is the resolution of the occupancy index: active
// GPUs are bucketed by ΣReq into bands of width 1/OccupancyBuckets,
// with everything at or above 1.0 clamped into the top bucket.
const OccupancyBuckets = 64

// OccupancyBucketOf returns the bucket index a GPU with the given ΣReq
// belongs to. Negative inputs (float residue after removals) clamp to
// bucket 0, values ≥ 1 to the top bucket.
func OccupancyBucketOf(sumReq float64) int {
	idx := int(sumReq * OccupancyBuckets)
	if idx < 0 {
		return 0
	}
	if idx >= OccupancyBuckets {
		return OccupancyBuckets - 1
	}
	return idx
}

// noteOccupancy records g's current ΣReq in the occupancy index. The
// previous bucket's entry (if different) is left stale and compacted
// lazily; occMask dedups re-insertions into a bucket that still holds a
// stale entry, which then simply becomes valid again.
func (c *Cluster) noteOccupancy(g *GPU) {
	idx := OccupancyBucketOf(g.SumReq)
	g.occIdx = idx
	if g.occMask&(1<<idx) == 0 {
		g.occMask |= 1 << idx
		c.occ[idx] = append(c.occ[idx], g)
	}
}

// OccupancyBucket compacts bucket b and returns the active GPUs whose
// current ΣReq falls in it. Order within a bucket is not specified —
// consumers needing the tie order of an inventory scan must rank by
// (key, Pos()) lexicographically. The returned slice is the cluster's
// live index: read-only, not to be held across placement changes.
func (c *Cluster) OccupancyBucket(b int) []*GPU {
	bucket := c.occ[b]
	kept := bucket[:0]
	for _, g := range bucket {
		if g.Active() && g.occIdx == b {
			kept = append(kept, g)
		} else {
			g.occMask &^= 1 << b // stale: deactivated or moved buckets
		}
	}
	// Zero the evicted tail so stale *GPU pointers don't pin memory.
	for i := len(kept); i < len(bucket); i++ {
		bucket[i] = nil
	}
	c.occ[b] = kept
	return kept
}

// Stats aggregates the fragmentation view of the cluster.
type Stats struct {
	OccupiedGPUs int
	TotalGPUs    int
	// SMFrag is the mean SM share of active GPUs not covered by any
	// instance's true compute need (1 − ΣTrueReq, floored at 0) — the
	// dark bars of Figure 17. Exclusive allocation shows high SMFrag
	// because whole GPUs back fractional needs.
	SMFrag float64
	// MemFrag is the mean unreserved memory share across active GPUs —
	// the striped bars of Figure 17.
	MemFrag float64
	// MeanReq and MeanMem are allocation densities of active GPUs.
	MeanReq float64
	MeanMem float64
}

// Snapshot computes the current fragmentation stats.
func (c *Cluster) Snapshot() Stats {
	st := Stats{TotalGPUs: len(c.gpus)}
	for _, g := range c.gpus {
		if !g.Active() {
			continue
		}
		st.OccupiedGPUs++
		smFree := 1 - g.SumTrueReq
		if smFree < 0 {
			smFree = 0
		}
		st.SMFrag += smFree
		st.MemFrag += 1 - g.MemUsedMB/g.MemCapMB
		st.MeanReq += g.SumReq
		st.MeanMem += g.MemUsedMB / g.MemCapMB
	}
	if st.OccupiedGPUs > 0 {
		n := float64(st.OccupiedGPUs)
		st.SMFrag /= n
		st.MemFrag /= n
		st.MeanReq /= n
		st.MeanMem /= n
	}
	return st
}

// Package cluster maintains the node/GPU inventory and the ⟨request,
// limit⟩/memory bookkeeping that Dilu's scheduler (Algorithm 1) operates
// on, along with the fragmentation and occupancy metrics reported in
// Figures 2 and 17.
//
// A GPU entry can optionally carry a live gpu.Device for kernel-level
// experiments; placement-only simulations (the 1,000-node run of §5.5)
// leave it nil and work purely on quota accounting.
package cluster

import (
	"fmt"

	"dilu/internal/gpu"
)

// Placement records one instance's resource reservation on a GPU.
type Placement struct {
	Instance string
	Func     string
	Req      float64 // SM request quota as allocated by the scheduler
	Lim      float64 // SM limit quota
	MemMB    float64
	// TrueReq is the profiled request quota — the instance's actual
	// compute need regardless of how generously the scheduler allocated
	// (Exclusive allocates 1.0 for a 0.3-need instance). Fragmentation
	// accounting uses it; zero falls back to Req.
	TrueReq float64
}

// trueReq returns the actual compute need of the placement.
func (p *Placement) trueReq() float64 {
	if p.TrueReq > 0 {
		return p.TrueReq
	}
	return p.Req
}

// GPU is one schedulable device slot.
type GPU struct {
	ID    string
	Node  *Node
	Index int
	Dev   *gpu.Device // nil in placement-only simulations

	MemCapMB   float64
	SumReq     float64
	SumLim     float64
	SumTrueReq float64
	MemUsedMB  float64
	Placements []*Placement
}

// Active reports whether any instance is placed on the GPU.
func (g *GPU) Active() bool { return len(g.Placements) > 0 }

// Place reserves the placement's quotas on the GPU. Feasibility is the
// scheduler's concern; Place only refuses memory overflow, mirroring
// constraint (4).
func (g *GPU) Place(p *Placement) error {
	if g.MemUsedMB+p.MemMB > g.MemCapMB {
		return fmt.Errorf("cluster: gpu %s memory overflow (%.0f+%.0f > %.0f MB)",
			g.ID, g.MemUsedMB, p.MemMB, g.MemCapMB)
	}
	g.SumReq += p.Req
	g.SumLim += p.Lim
	g.SumTrueReq += p.trueReq()
	g.MemUsedMB += p.MemMB
	g.Placements = append(g.Placements, p)
	return nil
}

// Remove releases a placement's reservation.
func (g *GPU) Remove(p *Placement) {
	for i, q := range g.Placements {
		if q == p {
			g.Placements = append(g.Placements[:i], g.Placements[i+1:]...)
			g.SumReq -= p.Req
			g.SumLim -= p.Lim
			g.SumTrueReq -= p.trueReq()
			g.MemUsedMB -= p.MemMB
			return
		}
	}
}

// HostsFunc reports whether any placement belongs to the function.
func (g *GPU) HostsFunc(fn string) bool {
	for _, p := range g.Placements {
		if p.Func == fn {
			return true
		}
	}
	return false
}

// Funcs returns the set of function names placed on the GPU.
func (g *GPU) Funcs() map[string]bool {
	out := make(map[string]bool, len(g.Placements))
	for _, p := range g.Placements {
		out[p.Func] = true
	}
	return out
}

// Node groups the GPUs of one server.
type Node struct {
	ID   string
	GPUs []*GPU
}

// Cluster is the full inventory.
type Cluster struct {
	Nodes []*Node
	gpus  []*GPU
}

// Config controls cluster construction.
type Config struct {
	Nodes       int
	GPUsPerNode int
	MemCapMB    float64 // zero defaults to A100-40GB
	WithDevices bool    // allocate live gpu.Devices for kernel-level runs
}

// New builds a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.GPUsPerNode <= 0 {
		cfg.GPUsPerNode = 4
	}
	if cfg.MemCapMB <= 0 {
		cfg.MemCapMB = gpu.DefaultMemoryMB
	}
	c := &Cluster{}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{ID: fmt.Sprintf("node-%d", n)}
		for i := 0; i < cfg.GPUsPerNode; i++ {
			g := &GPU{
				ID:       fmt.Sprintf("node-%d/gpu-%d", n, i),
				Node:     node,
				Index:    i,
				MemCapMB: cfg.MemCapMB,
			}
			if cfg.WithDevices {
				g.Dev = gpu.NewDevice(g.ID)
				g.Dev.MemoryMB = cfg.MemCapMB
			}
			node.GPUs = append(node.GPUs, g)
			c.gpus = append(c.gpus, g)
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// GPUs returns every GPU in the cluster, in stable order.
func (c *Cluster) GPUs() []*GPU { return c.gpus }

// ActiveGPUs returns GPUs hosting at least one placement (the 𝐺_act set
// of Algorithm 1).
func (c *Cluster) ActiveGPUs() []*GPU {
	var out []*GPU
	for _, g := range c.gpus {
		if g.Active() {
			out = append(out, g)
		}
	}
	return out
}

// OccupiedCount returns the number of active GPUs — the scheduling
// objective Σ g_i of Equation (1).
func (c *Cluster) OccupiedCount() int {
	n := 0
	for _, g := range c.gpus {
		if g.Active() {
			n++
		}
	}
	return n
}

// Stats aggregates the fragmentation view of the cluster.
type Stats struct {
	OccupiedGPUs int
	TotalGPUs    int
	// SMFrag is the mean SM share of active GPUs not covered by any
	// instance's true compute need (1 − ΣTrueReq, floored at 0) — the
	// dark bars of Figure 17. Exclusive allocation shows high SMFrag
	// because whole GPUs back fractional needs.
	SMFrag float64
	// MemFrag is the mean unreserved memory share across active GPUs —
	// the striped bars of Figure 17.
	MemFrag float64
	// MeanReq and MeanMem are allocation densities of active GPUs.
	MeanReq float64
	MeanMem float64
}

// Snapshot computes the current fragmentation stats.
func (c *Cluster) Snapshot() Stats {
	st := Stats{TotalGPUs: len(c.gpus)}
	for _, g := range c.gpus {
		if !g.Active() {
			continue
		}
		st.OccupiedGPUs++
		smFree := 1 - g.SumTrueReq
		if smFree < 0 {
			smFree = 0
		}
		st.SMFrag += smFree
		st.MemFrag += 1 - g.MemUsedMB/g.MemCapMB
		st.MeanReq += g.SumReq
		st.MeanMem += g.MemUsedMB / g.MemCapMB
	}
	if st.OccupiedGPUs > 0 {
		n := float64(st.OccupiedGPUs)
		st.SMFrag /= n
		st.MemFrag /= n
		st.MeanReq /= n
		st.MeanMem /= n
	}
	return st
}

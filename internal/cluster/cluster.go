// Package cluster maintains the node/GPU inventory and the ⟨request,
// limit⟩/memory bookkeeping that Dilu's scheduler (Algorithm 1) operates
// on, along with the fragmentation and occupancy metrics reported in
// Figures 2 and 17.
//
// A GPU entry can optionally carry a live gpu.Device for kernel-level
// experiments; placement-only simulations (the 1,000-node run of §5.5)
// leave it nil and work purely on quota accounting.
//
// The inventory keeps incremental indexes so the scheduler hot path does
// no O(cluster) work: the active-GPU set is maintained (in inventory
// order) on every placement transition, the first-inactive lookup is a
// lazy min-heap over inventory positions, and per-GPU function
// membership is counted instead of rescanned. Two further indexes make
// placement sub-linear in cluster size: a function→hosting-GPUs posting
// index (FuncGPUs, kept in inventory order) lets workload-affinity
// lookups enumerate only the GPUs that actually host a function, and an
// occupancy index (OccupancyBucket) buckets active GPUs by ΣReq with
// lazy compaction so best-fit scans touch only feasible occupancy bands.
package cluster

import (
	"fmt"
	"slices"

	"dilu/internal/gpu"
)

// Placement records one instance's resource reservation on a GPU.
type Placement struct {
	Instance string
	Func     string
	Req      float64 // SM request quota as allocated by the scheduler
	Lim      float64 // SM limit quota
	MemMB    float64
	// TrueReq is the profiled request quota — the instance's actual
	// compute need regardless of how generously the scheduler allocated
	// (Exclusive allocates 1.0 for a 0.3-need instance). Fragmentation
	// accounting uses it; zero falls back to Req.
	TrueReq float64
	// KVMB is the KV-cache slice of MemMB, maintained by ReserveKV/
	// ReleaseKV. Remove reconciles it so an eviction racing a token-level
	// release (node failure before instance abort) never double-counts.
	KVMB float64
}

// trueReq returns the actual compute need of the placement.
func (p *Placement) trueReq() float64 {
	if p.TrueReq > 0 {
		return p.TrueReq
	}
	return p.Req
}

// Health is a GPU's lifecycle state. Healthy GPUs accept placements;
// Draining GPUs keep their existing placements but take no new ones
// (rolling upgrades); Failed GPUs hold nothing — FailNode evicts their
// placements for the caller to reschedule. Quarantined GPUs are the
// gray-failure analogue of Draining: ejected from the schedulable
// indexes by the health monitor on observed slowdown/error outliers,
// existing placements migrated make-before-break, readmitted when a
// probe comes back clean.
type Health uint8

const (
	Healthy Health = iota
	Draining
	Failed
	Quarantined
)

func (h Health) String() string {
	switch h {
	case Draining:
		return "draining"
	case Failed:
		return "failed"
	case Quarantined:
		return "quarantined"
	}
	return "healthy"
}

// GPUClass describes one device generation of a heterogeneous fleet.
// Capacity is relative compute throughput (1.0 = the baseline device the
// profiler's SM quotas are expressed against); a 0.5-capacity GPU is
// full at ΣReq 0.5. Quota feasibility and the occupancy index work on
// normalized utilization ΣReq/Capacity so mixed fleets share one scale.
type GPUClass struct {
	Name     string
	Capacity float64 // relative compute capacity; <=0 defaults to 1.0
	MemCapMB float64 // per-class memory; <=0 defaults to Config.MemCapMB
	Weight   float64 // share of nodes assigned to the class; <=0 means 1
}

// GPU is one schedulable device slot.
type GPU struct {
	ID    string
	Node  *Node
	Index int
	Dev   *gpu.Device // nil in placement-only simulations

	// Class and Capacity identify the GPU's device generation in a
	// heterogeneous fleet; Capacity is 1.0 on homogeneous clusters.
	Class    string
	Capacity float64

	MemCapMB   float64
	SumReq     float64
	SumLim     float64
	SumTrueReq float64
	MemUsedMB  float64
	// KVUsedMB is the slice of MemUsedMB currently held by KV caches —
	// variable-size reservations grown and shrunk token-by-token via
	// ReserveKV/ReleaseKV, always contained in some placement's MemMB.
	KVUsedMB   float64
	Placements []*Placement

	health   Health
	classIdx int

	// clu and pos link the GPU back to its cluster's indexes; nil/0 for
	// GPUs constructed outside New (index maintenance is then skipped).
	clu *Cluster
	pos int
	// funcCounts counts placements per function, making HostsFunc O(1).
	funcCounts map[string]int
	// occIdx is the occupancy bucket of the GPU's most recent ΣReq
	// recording; occMask has bit b set iff an entry for this GPU
	// currently sits in its shard's occupancy bucket b (stale entries
	// stay until lazily compacted, and the mask keeps a GPU cycling
	// through buckets from accumulating duplicates).
	occIdx  int
	occMask uint64
	// shard is the contiguous position-range shard the GPU belongs to;
	// 0 until SetShards partitions the inventory. A GPU's shard changes
	// only in SetShards (which rebuilds the per-shard indexes), so the
	// occupancy mask never straddles shards.
	shard int
}

// Active reports whether any instance is placed on the GPU.
func (g *GPU) Active() bool { return len(g.Placements) > 0 }

// Health returns the GPU's lifecycle state.
func (g *GPU) Health() Health { return g.health }

// Schedulable reports whether the GPU accepts new placements: healthy,
// neither draining nor failed.
func (g *GPU) Schedulable() bool { return g.health == Healthy }

// Util returns the GPU's normalized compute utilization ΣReq/Capacity —
// the occupancy measure the index buckets by. On a capacity-1.0 GPU it
// equals ΣReq exactly (x/1.0 is bit-identical to x), so homogeneous
// fleets behave as before normalization.
func (g *GPU) Util() float64 {
	if g.Capacity > 0 {
		return g.SumReq / g.Capacity
	}
	return g.SumReq
}

// Pos returns the GPU's position in the cluster inventory (the stable
// scan order of Cluster.GPUs); zero for GPUs built outside New.
func (g *GPU) Pos() int { return g.pos }

// Shard returns the inventory shard the GPU belongs to (0 on an
// unsharded cluster).
func (g *GPU) Shard() int { return g.shard }

// Place reserves the placement's quotas on the GPU. Feasibility is the
// scheduler's concern; Place only refuses memory overflow — mirroring
// constraint (4) — and failed devices, which physically cannot host.
func (g *GPU) Place(p *Placement) error {
	if g.health == Failed {
		return fmt.Errorf("cluster: gpu %s has failed", g.ID)
	}
	if g.MemUsedMB+p.MemMB > g.MemCapMB {
		return fmt.Errorf("cluster: gpu %s memory overflow (%.0f+%.0f > %.0f MB)",
			g.ID, g.MemUsedMB, p.MemMB, g.MemCapMB)
	}
	g.SumReq += p.Req
	g.SumLim += p.Lim
	g.SumTrueReq += p.trueReq()
	g.MemUsedMB += p.MemMB
	g.Placements = append(g.Placements, p)
	if g.funcCounts == nil {
		g.funcCounts = make(map[string]int, 4)
	}
	g.funcCounts[p.Func]++
	if g.clu != nil {
		if len(g.Placements) == 1 {
			g.clu.noteActivated(g)
		}
		if g.funcCounts[p.Func] == 1 {
			g.clu.notePostingAdd(p.Func, g)
		}
		g.clu.noteOccupancy(g)
	}
	return nil
}

// Remove releases a placement's reservation.
func (g *GPU) Remove(p *Placement) {
	for i, q := range g.Placements {
		if q == p {
			g.Placements = append(g.Placements[:i], g.Placements[i+1:]...)
			g.SumReq -= p.Req
			g.SumLim -= p.Lim
			g.SumTrueReq -= p.trueReq()
			g.MemUsedMB -= p.MemMB
			// The KV charge leaves inside p.MemMB; reconcile the KV view
			// and zero the placement's slice so a late ReleaseKV no-ops.
			g.KVUsedMB -= p.KVMB
			p.KVMB = 0
			if g.funcCounts[p.Func]--; g.funcCounts[p.Func] <= 0 {
				delete(g.funcCounts, p.Func)
				if g.clu != nil {
					g.clu.notePostingRemove(p.Func, g)
				}
			}
			if g.clu != nil {
				if len(g.Placements) == 0 {
					// The occupancy entry goes stale with the GPU; it is
					// compacted away (or revalidated by a reactivation)
					// lazily, like the free-heap entries.
					g.clu.noteDeactivated(g)
				} else {
					g.clu.noteOccupancy(g)
				}
			}
			return
		}
	}
}

// ReserveKV grows placement p's reservation by mb of KV-cache memory.
// It refuses (false) when the GPU lacks headroom — the cache-full signal
// that forces token-level serving to preempt or shed. On success the
// charge lands in p.MemMB, g.MemUsedMB, and g.KVUsedMB together, so the
// quota-conservation view (Σ placement MemMB == MemUsedMB) is preserved.
// The occupancy index is untouched: it buckets by ΣReq only.
func (g *GPU) ReserveKV(p *Placement, mb float64) bool {
	if mb <= 0 {
		return true
	}
	if g.MemUsedMB+mb > g.MemCapMB {
		return false
	}
	p.MemMB += mb
	p.KVMB += mb
	g.MemUsedMB += mb
	g.KVUsedMB += mb
	return true
}

// ReleaseKV returns mb of KV-cache memory from placement p (sequence
// completion, preemption, or instance teardown before Remove). The
// release clamps to the placement's live KV charge: a placement already
// evicted by Remove (node failure racing an instance abort) has nothing
// left to release here.
func (g *GPU) ReleaseKV(p *Placement, mb float64) {
	if mb > p.KVMB {
		mb = p.KVMB
	}
	if mb <= 0 {
		return
	}
	p.MemMB -= mb
	p.KVMB -= mb
	g.MemUsedMB -= mb
	g.KVUsedMB -= mb
}

// HostsFunc reports whether any placement belongs to the function.
func (g *GPU) HostsFunc(fn string) bool { return g.funcCounts[fn] > 0 }

// FuncCounts returns the per-function placement counts. The map is the
// GPU's live index — callers must treat it as read-only.
func (g *GPU) FuncCounts() map[string]int { return g.funcCounts }

// Funcs returns the set of function names placed on the GPU (a fresh
// copy; FuncCounts avoids the allocation on hot paths).
func (g *GPU) Funcs() map[string]bool {
	out := make(map[string]bool, len(g.funcCounts))
	for f := range g.funcCounts {
		out[f] = true
	}
	return out
}

// Node groups the GPUs of one server.
type Node struct {
	ID   string
	GPUs []*GPU

	// Kernels is the node-local kernel/JIT artifact cache: nil until
	// the serving plane enables the staged cold-start model. Together
	// with the FuncGPUs posting index (which tracks *current* hosting)
	// it forms the cache-affinity signal schedulers consult — the cache
	// remembers functions the node served *before*, surviving teardown.
	Kernels *gpu.KernelCache
}

// KernelsWarm reports whether the node's kernel cache (if any) holds
// compiled kernels for the function. Safe to call with the stage model
// disabled: a nil cache is never warm, so affinity tie-breaking is
// inert on the legacy path.
func (n *Node) KernelsWarm(fn string) bool {
	return n.Kernels != nil && n.Kernels.Warm(fn)
}

// Cluster is the full inventory.
type Cluster struct {
	Nodes []*Node
	gpus  []*GPU

	// active holds the GPUs with at least one placement, sorted by
	// inventory position — the same order a linear scan would produce.
	active []*GPU
	// inactive is a min-heap of inventory positions of GPUs believed
	// inactive, with lazy deletion: activation leaves a stale entry that
	// FirstInactive discards when it surfaces. inHeap tracks which
	// positions currently have an entry so a GPU cycling through
	// activations never accumulates duplicates.
	inactive []int
	inHeap   []bool
	// takenScratch backs AppendInactive's pop-and-restore, reused across
	// calls (the cluster's mutating lookups are single-threaded).
	takenScratch []int

	// posting maps a function name to the GPUs currently hosting at
	// least one of its placements, in inventory order — the posting list
	// workload-affinity lookups enumerate instead of scanning all active
	// GPUs. Lists are maintained eagerly on 0↔1 per-GPU count
	// transitions, and a function's key is deleted when its last
	// placement leaves so the map tracks live functions only.
	posting map[string][]*GPU
	// occs buckets active GPUs by normalized utilization ΣReq/Capacity
	// (bucket b holds utilization in [b/64, (b+1)/64), clamped into the
	// top bucket): the occupancy index best-fit scans walk from the
	// most-occupied feasible bucket downward instead of over all active
	// GPUs. Entries are appended on ΣReq changes and compacted lazily on
	// read; GPU.occIdx/occMask identify the live entry. On a homogeneous
	// (capacity 1.0) fleet, utilization equals ΣReq bit-for-bit.
	//
	// Storage is per (shard, bucket) — occs[s][b] — so parallel scan
	// workers compact and walk disjoint state; shards (default 1, set by
	// SetShards) partitions the inventory into contiguous position
	// ranges. At one shard the layout is exactly the unsharded index.
	shards     int
	occs       [][OccupancyBuckets][]*GPU
	occScratch []*GPU

	// classes records the fleet's device generations (one synthetic
	// entry for homogeneous clusters); hetero is true when classes
	// differ in capacity or memory. min/maxCap bound GPU capacities and
	// back the schedulers' bucket-walk pruning bounds.
	classes []GPUClass
	hetero  bool
	minCap  float64
	maxCap  float64

	// retired counts GPUs out of service (draining or failed);
	// retiredActive those of them still holding placements (only
	// draining GPUs can). SchedulableInactive derives from both.
	retired       int
	retiredActive int
	// occupiedCap sums the capacities of active GPUs (capacity-weighted
	// occupancy, the cost measure on mixed fleets).
	occupiedCap float64
}

// Config controls cluster construction.
type Config struct {
	Nodes       int
	GPUsPerNode int
	MemCapMB    float64 // zero defaults to A100-40GB
	WithDevices bool    // allocate live gpu.Devices for kernel-level runs
	// Classes makes the fleet heterogeneous: nodes are assigned to
	// classes by a deterministic weighted interleave (largest-deficit
	// round-robin), so device generations mix through the inventory the
	// way racks mix in a real fleet — position-ordered policies like
	// first-inactive see both generations early instead of an all-big
	// prefix. A node carries one GPU generation. Empty means one
	// uniform capacity-1.0 class — the pre-heterogeneity behavior.
	Classes []GPUClass
	// Shards partitions the inventory into contiguous position-range
	// shards for parallel scans (see SetShards); <=1 keeps the single
	// unsharded index.
	Shards int
}

// classAssign returns each node's class index under largest-deficit
// weighted round-robin: node n goes to the class whose assigned share
// lags its weight the most (ties toward the earlier class). A 70/30
// split yields B B S B B B S B B S …, deterministically.
func classAssign(classes []GPUClass, nodes int) []int {
	total := 0.0
	weights := make([]float64, len(classes))
	for i, cl := range classes {
		w := cl.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	out := make([]int, nodes)
	assigned := make([]float64, len(classes))
	for n := 0; n < nodes; n++ {
		best, bestDeficit := 0, -1.0
		for i, w := range weights {
			deficit := w/total*float64(n+1) - assigned[i]
			if deficit > bestDeficit {
				best, bestDeficit = i, deficit
			}
		}
		assigned[best]++
		out[n] = best
	}
	return out
}

// New builds a cluster.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.GPUsPerNode <= 0 {
		cfg.GPUsPerNode = 4
	}
	if cfg.MemCapMB <= 0 {
		cfg.MemCapMB = gpu.DefaultMemoryMB
	}
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = []GPUClass{{Name: "uniform", Capacity: 1, MemCapMB: cfg.MemCapMB, Weight: 1}}
	}
	classes = slices.Clone(classes)
	for i := range classes {
		if classes[i].Capacity <= 0 {
			classes[i].Capacity = 1
		}
		if classes[i].MemCapMB <= 0 {
			classes[i].MemCapMB = cfg.MemCapMB
		}
		if classes[i].Name == "" {
			classes[i].Name = fmt.Sprintf("class-%d", i)
		}
	}
	c := &Cluster{
		posting: make(map[string][]*GPU),
		classes: classes,
		shards:  1,
		occs:    make([][OccupancyBuckets][]*GPU, 1),
	}
	c.minCap, c.maxCap = classes[0].Capacity, classes[0].Capacity
	for _, cl := range classes {
		if cl.Capacity < c.minCap {
			c.minCap = cl.Capacity
		}
		if cl.Capacity > c.maxCap {
			c.maxCap = cl.Capacity
		}
		if cl.Capacity != classes[0].Capacity || cl.MemCapMB != classes[0].MemCapMB {
			c.hetero = true
		}
	}
	assign := classAssign(classes, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		ci := assign[n]
		cl := classes[ci]
		node := &Node{ID: fmt.Sprintf("node-%d", n)}
		for i := 0; i < cfg.GPUsPerNode; i++ {
			g := &GPU{
				ID:       fmt.Sprintf("node-%d/gpu-%d", n, i),
				Node:     node,
				Index:    i,
				Class:    cl.Name,
				Capacity: cl.Capacity,
				MemCapMB: cl.MemCapMB,
				clu:      c,
				pos:      len(c.gpus),
				classIdx: ci,
			}
			if cfg.WithDevices {
				g.Dev = gpu.NewDevice(g.ID)
				g.Dev.MemoryMB = cl.MemCapMB
			}
			node.GPUs = append(node.GPUs, g)
			c.gpus = append(c.gpus, g)
		}
		c.Nodes = append(c.Nodes, node)
	}
	// Every GPU starts inactive; positions are pushed in order, which is
	// already a valid min-heap.
	c.inactive = make([]int, len(c.gpus))
	c.inHeap = make([]bool, len(c.gpus))
	for i := range c.inactive {
		c.inactive[i] = i
		c.inHeap[i] = true
	}
	c.SetShards(cfg.Shards)
	return c
}

// activeIndex returns the insertion point of pos in the active list
// (lower bound by inventory position).
func (c *Cluster) activeIndex(pos int) int {
	lo, hi := 0, len(c.active)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.active[mid].pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// noteActivated inserts g into the active list at its inventory position.
// The matching inactive-heap entry is left in place and lazily discarded.
func (c *Cluster) noteActivated(g *GPU) {
	lo := c.activeIndex(g.pos)
	c.active = append(c.active, nil)
	copy(c.active[lo+1:], c.active[lo:])
	c.active[lo] = g
	c.occupiedCap += g.Capacity
	if !g.Schedulable() {
		c.retiredActive++
	}
}

// noteDeactivated removes g from the active list and returns its position
// to the inactive heap.
func (c *Cluster) noteDeactivated(g *GPU) {
	lo := c.activeIndex(g.pos)
	if lo < len(c.active) && c.active[lo] == g {
		c.active = append(c.active[:lo], c.active[lo+1:]...)
	}
	c.occupiedCap -= g.Capacity
	if !g.Schedulable() {
		c.retiredActive--
	}
	// A stale entry from before the GPU's last activation may still sit
	// in the heap; it is valid again now, so don't add a duplicate.
	if !c.inHeap[g.pos] {
		c.inHeap[g.pos] = true
		c.pushInactive(g.pos)
	}
}

func (c *Cluster) pushInactive(pos int) {
	c.inactive = append(c.inactive, pos)
	i := len(c.inactive) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.inactive[parent] <= c.inactive[i] {
			break
		}
		c.inactive[i], c.inactive[parent] = c.inactive[parent], c.inactive[i]
		i = parent
	}
}

func (c *Cluster) popInactive() int {
	h := c.inactive
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	c.inactive = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h[l] < h[min] {
			min = l
		}
		if r < n && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// GPUs returns every GPU in the cluster, in stable order.
func (c *Cluster) GPUs() []*GPU { return c.gpus }

// ActiveGPUs returns GPUs hosting at least one placement (the 𝐺_act set
// of Algorithm 1), in inventory order. The slice is the cluster's live
// index — callers must treat it as read-only and must not hold it across
// placement changes.
func (c *Cluster) ActiveGPUs() []*GPU { return c.active }

// FirstInactive returns the schedulable inactive GPU earliest in
// inventory order — the GPU a linear "first !Active() && Schedulable()"
// scan would find — or nil when none exists. Failed and draining GPUs
// are discarded from the heap here and pushed back by JoinNode.
func (c *Cluster) FirstInactive() *GPU {
	for len(c.inactive) > 0 {
		g := c.gpus[c.inactive[0]]
		if !g.Active() && g.Schedulable() {
			return g
		}
		c.inHeap[c.popInactive()] = false // stale (activated) or retired entry
	}
	return nil
}

// InactiveCount returns the number of GPUs with no placements, whatever
// their health; SchedulableInactive is the scheduler-facing count.
func (c *Cluster) InactiveCount() int { return len(c.gpus) - len(c.active) }

// SchedulableInactive returns the number of healthy GPUs with no
// placements — the fresh-GPU supply the schedulers can actually draw
// from. On a churn-free cluster it equals InactiveCount.
func (c *Cluster) SchedulableInactive() int {
	return len(c.gpus) - len(c.active) - (c.retired - c.retiredActive)
}

// FirstInactiveFit returns the earliest schedulable inactive GPU whose
// class fits the need — Capacity ≥ minCap (within quota epsilon) and
// MemCapMB ≥ memMB — or nil. Too-small GPUs are skipped but stay in the
// heap (they remain valid fresh candidates for smaller requests); on a
// homogeneous fleet nothing is ever skipped and the result is exactly
// FirstInactive's.
func (c *Cluster) FirstInactiveFit(minCap, memMB float64) *GPU {
	taken := c.takenScratch[:0]
	var found *GPU
	for len(c.inactive) > 0 {
		g := c.gpus[c.inactive[0]]
		if g.Active() || !g.Schedulable() {
			c.inHeap[c.popInactive()] = false // stale or retired entry
			continue
		}
		if minCap <= g.Capacity+1e-9 && memMB <= g.MemCapMB {
			found = g
			break
		}
		taken = append(taken, c.popInactive()) // too small for this need only
	}
	for _, pos := range taken {
		c.pushInactive(pos)
	}
	c.takenScratch = taken
	return found
}

// AppendInactive appends up to k schedulable inactive GPUs in inventory
// order to dst and returns the extended slice.
func (c *Cluster) AppendInactive(dst []*GPU, k int) []*GPU {
	if k <= 0 {
		return dst
	}
	taken := c.takenScratch[:0]
	for len(taken) < k && len(c.inactive) > 0 {
		pos := c.popInactive()
		if g := c.gpus[pos]; g.Active() || !g.Schedulable() {
			c.inHeap[pos] = false // stale or retired entry
			continue
		}
		taken = append(taken, pos)
		dst = append(dst, c.gpus[pos])
	}
	for _, pos := range taken {
		c.pushInactive(pos) // still inactive: return to the heap
	}
	c.takenScratch = taken
	return dst
}

// OccupiedCount returns the number of active GPUs — the scheduling
// objective Σ g_i of Equation (1).
func (c *Cluster) OccupiedCount() int { return len(c.active) }

// OccupiedCapacity returns the summed compute capacity of active GPUs —
// the capacity-weighted occupancy that prices mixed fleets (a 0.5-
// capacity GPU costs half a baseline device). Equals OccupiedCount on
// homogeneous clusters.
func (c *Cluster) OccupiedCapacity() float64 { return c.occupiedCap }

// Heterogeneous reports whether the fleet mixes GPU classes differing in
// capacity or memory.
func (c *Cluster) Heterogeneous() bool { return c.hetero }

// MinCapacity and MaxCapacity bound GPU compute capacities over the
// inventory; the schedulers' bucket-walk pruning bounds use them. Both
// are 1.0 on homogeneous clusters.
func (c *Cluster) MinCapacity() float64 { return c.minCap }

// MaxCapacity returns the largest GPU capacity in the fleet.
func (c *Cluster) MaxCapacity() float64 { return c.maxCap }

// ---------------------------------------------------------------------------
// Node lifecycle: failures, drains, joins.

// FailNode takes a node out of service abruptly: every placement on its
// GPUs is evicted through the normal Remove path (so the active list,
// free heap, posting index, and occupancy buckets stay consistent) and
// returned to the caller as rescheduling work. The GPUs stop being
// offered by every index until JoinNode restores them.
func (c *Cluster) FailNode(n *Node) []*Placement {
	var evicted []*Placement
	for _, g := range n.GPUs {
		for len(g.Placements) > 0 {
			p := g.Placements[len(g.Placements)-1]
			g.Remove(p)
			evicted = append(evicted, p)
		}
		c.setHealth(g, Failed)
	}
	return evicted
}

// DrainNode stops new placements on a node for a planned removal.
// Existing placements stay until their owners release (or migrate) them;
// the node's GPUs are withheld from the fresh-GPU indexes immediately.
func (c *Cluster) DrainNode(n *Node) {
	for _, g := range n.GPUs {
		c.setHealth(g, Draining)
	}
}

// JoinNode returns a failed or drained node to service: its idle GPUs
// re-enter the free heap and new placements are accepted again.
func (c *Cluster) JoinNode(n *Node) {
	for _, g := range n.GPUs {
		c.setHealth(g, Healthy)
	}
}

// QuarantineGPU ejects one GPU from the schedulable indexes on a
// health-monitor verdict. Like DrainNode the existing placements stay
// for make-before-break migration; unlike DrainNode the unit is a
// single device — gray failures are per-GPU, not per-node.
func (c *Cluster) QuarantineGPU(g *GPU) {
	c.setHealth(g, Quarantined)
}

// ReadmitGPU returns a quarantined GPU to service after a clean probe.
// It refuses to touch Draining/Failed GPUs — those belong to the churn
// lifecycle (JoinNode), not the health monitor.
func (c *Cluster) ReadmitGPU(g *GPU) {
	if g.health == Quarantined {
		c.setHealth(g, Healthy)
	}
}

// setHealth transitions one GPU's lifecycle state, keeping the retired
// counters and the free heap consistent. Placement eviction is the
// caller's job (FailNode evicts before marking).
func (c *Cluster) setHealth(g *GPU, h Health) {
	if g.health == h {
		return
	}
	switch {
	case g.health == Healthy: // leaving service
		c.retired++
		if g.Active() {
			c.retiredActive++
		}
	case h == Healthy: // rejoining
		c.retired--
		if g.Active() {
			c.retiredActive--
		} else if !c.inHeap[g.pos] {
			// The GPU's heap entry was discarded while it was retired;
			// restore it so FirstInactive can offer the GPU again.
			c.inHeap[g.pos] = true
			c.pushInactive(g.pos)
		}
		// Draining↔Failed transitions change neither counter.
	}
	g.health = h
}

// ---------------------------------------------------------------------------
// Function posting index.

// FuncGPUs returns the GPUs hosting at least one placement of fn, in
// inventory order. The slice is the cluster's live posting list —
// callers must treat it as read-only and must not hold it across
// placement changes. Nil when no GPU hosts the function.
func (c *Cluster) FuncGPUs(fn string) []*GPU { return c.posting[fn] }

// postingIndex returns the insertion point of pos in fn's posting list
// (lower bound by inventory position).
func postingIndex(list []*GPU, pos int) int {
	lo, _ := slices.BinarySearchFunc(list, pos, func(g *GPU, p int) int { return g.pos - p })
	return lo
}

// notePostingAdd records that g now hosts fn (its per-GPU count went
// 0→1), keeping the posting list in inventory order.
func (c *Cluster) notePostingAdd(fn string, g *GPU) {
	list := c.posting[fn]
	c.posting[fn] = slices.Insert(list, postingIndex(list, g.pos), g)
}

// notePostingRemove records that g no longer hosts fn (count 1→0). The
// key is deleted when the list empties so the map never accumulates
// dead function names (§5.5-style mixes use per-instance names).
func (c *Cluster) notePostingRemove(fn string, g *GPU) {
	list := c.posting[fn]
	lo := postingIndex(list, g.pos)
	if lo >= len(list) || list[lo] != g {
		return
	}
	list = slices.Delete(list, lo, lo+1)
	if len(list) == 0 {
		delete(c.posting, fn)
	} else {
		c.posting[fn] = list
	}
}

// ---------------------------------------------------------------------------
// Occupancy index.

// OccupancyBuckets is the resolution of the occupancy index: active
// GPUs are bucketed by normalized utilization (ΣReq/Capacity) into
// bands of width 1/OccupancyBuckets, with everything at or above 1.0
// clamped into the top bucket.
const OccupancyBuckets = 64

// OccupancyBucketOf returns the bucket index a GPU with the given
// normalized utilization belongs to. Negative inputs (float residue
// after removals) clamp to bucket 0, values ≥ 1 to the top bucket.
func OccupancyBucketOf(util float64) int {
	idx := int(util * OccupancyBuckets)
	if idx < 0 {
		return 0
	}
	if idx >= OccupancyBuckets {
		return OccupancyBuckets - 1
	}
	return idx
}

// noteOccupancy records g's current normalized utilization in its
// shard's occupancy index. The previous bucket's entry (if different)
// is left stale and compacted lazily; occMask dedups re-insertions into
// a bucket that still holds a stale entry, which then simply becomes
// valid again.
func (c *Cluster) noteOccupancy(g *GPU) {
	idx := OccupancyBucketOf(g.Util())
	g.occIdx = idx
	if g.occMask&(1<<idx) == 0 {
		g.occMask |= 1 << idx
		c.occs[g.shard][idx] = append(c.occs[g.shard][idx], g)
	}
}

// compactBucket compacts shard s's occupancy bucket b and returns its
// live entries. It mutates only shard-s state (the bucket slice and the
// occMask of shard-s GPUs), which is what makes concurrent compaction
// of distinct shards safe.
func (c *Cluster) compactBucket(s, b int) []*GPU {
	bucket := c.occs[s][b]
	kept := bucket[:0]
	for _, g := range bucket {
		if g.Active() && g.occIdx == b {
			kept = append(kept, g)
		} else {
			g.occMask &^= 1 << b // stale: deactivated or moved buckets
		}
	}
	// Zero the evicted tail so stale *GPU pointers don't pin memory.
	for i := len(kept); i < len(bucket); i++ {
		bucket[i] = nil
	}
	c.occs[s][b] = kept
	return kept
}

// OccupancyBucket compacts bucket b and returns the active GPUs whose
// current ΣReq falls in it. Order within a bucket is not specified —
// consumers needing the tie order of an inventory scan must rank by
// (key, Pos()) lexicographically. The returned slice is the cluster's
// live index: read-only, not to be held across placement changes nor
// across further OccupancyBucket calls (on a sharded cluster the
// result is assembled in a reused scratch buffer).
func (c *Cluster) OccupancyBucket(b int) []*GPU {
	if c.shards == 1 {
		return c.compactBucket(0, b)
	}
	c.occScratch = c.occScratch[:0]
	for s := 0; s < c.shards; s++ {
		c.occScratch = append(c.occScratch, c.compactBucket(s, b)...)
	}
	return c.occScratch
}

// OccupancyBucketShard compacts and returns shard s's slice of
// occupancy bucket b. It is the parallel-scan entry point: calls for
// distinct shards touch disjoint state and may run concurrently, as
// long as nothing mutates placements meanwhile. Same read-only/do-not-
// hold contract as OccupancyBucket.
func (c *Cluster) OccupancyBucketShard(s, b int) []*GPU { return c.compactBucket(s, b) }

// ---------------------------------------------------------------------------
// Inventory shards.

// SetShards partitions the inventory into n contiguous position-range
// shards (clamped to [1, #GPUs]) and rebuilds the per-shard occupancy
// index. Shard s covers positions [⌈s·N/n⌉, ⌈(s+1)·N/n⌉) — balanced to
// within one GPU — so a shard's active GPUs are a contiguous segment of
// the position-sorted active list (ActiveRange). Selection results are
// independent of the shard count: the occupancy index only changes how
// bucket entries are stored, and every consumer ranks candidates by a
// total order. Safe to call at any time; existing active GPUs are
// re-bucketed.
func (c *Cluster) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(c.gpus) {
		n = len(c.gpus)
	}
	if n == c.shards {
		return
	}
	c.shards = n
	c.occs = make([][OccupancyBuckets][]*GPU, n)
	total := len(c.gpus)
	for i, g := range c.gpus {
		g.shard = i * n / total
		g.occMask = 0
	}
	for _, g := range c.active {
		c.noteOccupancy(g)
	}
}

// ShardCount returns the number of inventory shards (1 unless SetShards
// partitioned the cluster).
func (c *Cluster) ShardCount() int { return c.shards }

// ShardRange returns shard s's position range [lo, hi) in the
// inventory.
func (c *Cluster) ShardRange(s int) (lo, hi int) {
	total := len(c.gpus)
	return (s*total + c.shards - 1) / c.shards, ((s+1)*total + c.shards - 1) / c.shards
}

// ActiveRange returns shard s's segment of the position-sorted active
// list — the 𝐺_act subset a parallel scan worker walks. Purely a
// read-only view (two binary searches, no mutation), so concurrent
// calls for any shards are safe. Same do-not-hold contract as
// ActiveGPUs.
func (c *Cluster) ActiveRange(s int) []*GPU {
	lo, hi := c.ShardRange(s)
	return c.active[c.activeIndex(lo):c.activeIndex(hi)]
}

// Stats aggregates the fragmentation view of the cluster.
type Stats struct {
	OccupiedGPUs int
	TotalGPUs    int
	// SMFrag is the mean normalized SM share of active GPUs not covered
	// by any instance's true compute need (1 − ΣTrueReq/Capacity,
	// floored at 0) — the dark bars of Figure 17. Exclusive allocation
	// shows high SMFrag because whole GPUs back fractional needs.
	SMFrag float64
	// MemFrag is the mean unreserved memory share across active GPUs —
	// the striped bars of Figure 17.
	MemFrag float64
	// MeanReq and MeanMem are allocation densities of active GPUs
	// (normalized utilization and memory share).
	MeanReq float64
	MeanMem float64
}

// Snapshot computes the current fragmentation stats.
func (c *Cluster) Snapshot() Stats {
	st := Stats{TotalGPUs: len(c.gpus)}
	for _, g := range c.gpus {
		if !g.Active() {
			continue
		}
		st.OccupiedGPUs++
		smFree := 1 - g.SumTrueReq/g.Capacity
		if smFree < 0 {
			smFree = 0
		}
		st.SMFrag += smFree
		st.MemFrag += 1 - g.MemUsedMB/g.MemCapMB
		st.MeanReq += g.Util()
		st.MeanMem += g.MemUsedMB / g.MemCapMB
	}
	if st.OccupiedGPUs > 0 {
		n := float64(st.OccupiedGPUs)
		st.SMFrag /= n
		st.MemFrag /= n
		st.MeanReq /= n
		st.MeanMem /= n
	}
	return st
}

// ClassStat is the per-device-generation slice of the fleet view.
type ClassStat struct {
	Name     string
	Capacity float64
	MemCapMB float64
	Total    int
	Occupied int
	Retired  int // draining or failed
	SumReq   float64
}

// ClassStats aggregates occupancy per GPU class, in class declaration
// order (one synthetic "uniform" entry on homogeneous clusters).
func (c *Cluster) ClassStats() []ClassStat {
	out := make([]ClassStat, len(c.classes))
	for i, cl := range c.classes {
		out[i] = ClassStat{Name: cl.Name, Capacity: cl.Capacity, MemCapMB: cl.MemCapMB}
	}
	for _, g := range c.gpus {
		st := &out[g.classIdx]
		st.Total++
		if g.Active() {
			st.Occupied++
		}
		if !g.Schedulable() {
			st.Retired++
		}
		st.SumReq += g.SumReq
	}
	return out
}

package cluster

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// These property tests drive random Place/Remove/Drain interleavings —
// and, since the lifecycle work, random FailNode/DrainNode/JoinNode
// churn on heterogeneous fleets — and, after every operation, require
// each incremental index — the function posting lists, the occupancy
// buckets, the active list, the free heap, and the retired counters —
// to agree exactly with a from-scratch recomputation over the
// inventory. They run under -race via `make test-race-subsys`.

// checkIndexesConsistent recomputes every index from the placements and
// compares. The occupancy comparison goes through OccupancyBucket (the
// read API), so lazy compaction is exercised, and duplicates inside a
// bucket are a failure in their own right.
func checkIndexesConsistent(t *testing.T, c *Cluster, step int) {
	t.Helper()

	// Active list: GPUs with placements, in inventory order.
	var wantActive []*GPU
	for _, g := range c.gpus {
		if g.Active() {
			wantActive = append(wantActive, g)
		}
	}
	if !slices.Equal(wantActive, c.ActiveGPUs()) {
		t.Fatalf("step %d: active list diverged (len %d vs %d)",
			step, len(c.ActiveGPUs()), len(wantActive))
	}

	// Posting index: for every function with a live placement, the
	// hosting GPUs in inventory order; and no dead keys linger.
	wantPosting := map[string][]*GPU{}
	for _, g := range c.gpus {
		for fn := range g.funcCounts {
			wantPosting[fn] = append(wantPosting[fn], g)
		}
	}
	for fn, want := range wantPosting {
		slices.SortFunc(want, func(a, b *GPU) int { return a.pos - b.pos })
		if got := c.FuncGPUs(fn); !slices.Equal(want, got) {
			t.Fatalf("step %d: posting list for %q diverged: got %d GPUs, want %d",
				step, fn, len(got), len(want))
		}
	}
	for fn := range c.posting {
		if _, ok := wantPosting[fn]; !ok {
			t.Fatalf("step %d: posting index retains dead function %q", step, fn)
		}
	}

	// Occupancy index: every active GPU appears in exactly the bucket
	// its current normalized utilization maps to, exactly once, and in
	// no other bucket.
	seen := map[*GPU]int{}
	for b := 0; b < OccupancyBuckets; b++ {
		for _, g := range c.OccupancyBucket(b) {
			if prev, dup := seen[g]; dup {
				t.Fatalf("step %d: %s appears in buckets %d and %d", step, g.ID, prev, b)
			}
			seen[g] = b
			if want := OccupancyBucketOf(g.Util()); want != b {
				t.Fatalf("step %d: %s (util=%v) in bucket %d, want %d",
					step, g.ID, g.Util(), b, want)
			}
			if !g.Active() {
				t.Fatalf("step %d: inactive %s surfaced from bucket %d", step, g.ID, b)
			}
		}
	}
	if len(seen) != len(wantActive) {
		t.Fatalf("step %d: occupancy index covers %d GPUs, want %d active",
			step, len(seen), len(wantActive))
	}

	// Free index: FirstInactive returns the earliest schedulable
	// inactive GPU — retired (failed/draining) slots never surface.
	var wantFirst *GPU
	wantSchedInactive := 0
	for _, g := range c.gpus {
		if !g.Active() && g.Schedulable() {
			if wantFirst == nil {
				wantFirst = g
			}
			wantSchedInactive++
		}
	}
	if got := c.FirstInactive(); got != wantFirst {
		t.Fatalf("step %d: FirstInactive = %v, want %v", step, got, wantFirst)
	}
	if got := c.SchedulableInactive(); got != wantSchedInactive {
		t.Fatalf("step %d: SchedulableInactive = %d, want %d", step, got, wantSchedInactive)
	}

	// Retired quiescence and capacity accounting.
	var wantCap float64
	for _, g := range c.gpus {
		if g.Active() {
			wantCap += g.Capacity
		}
		if g.Health() == Failed && len(g.Placements) > 0 {
			t.Fatalf("step %d: failed %s still holds %d placements", step, g.ID, len(g.Placements))
		}
	}
	if diff := wantCap - c.OccupiedCapacity(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("step %d: OccupiedCapacity = %v, want %v", step, c.OccupiedCapacity(), wantCap)
	}

	// AppendInactive agrees with a filtered inventory scan prefix.
	got := c.AppendInactive(nil, 3)
	var want []*GPU
	for _, g := range c.gpus {
		if len(want) == 3 {
			break
		}
		if !g.Active() && g.Schedulable() {
			want = append(want, g)
		}
	}
	if !slices.Equal(got, want) {
		t.Fatalf("step %d: AppendInactive(3) diverged from scan", step)
	}

	// Shard views (trivially satisfied at one shard): the position
	// ranges tile the inventory, every GPU sits in its range's shard,
	// the ActiveRange segments concatenate to the active list, and the
	// per-shard occupancy buckets partition the global bucket contents.
	prevHi := 0
	var tiledActive []*GPU
	for s := 0; s < c.ShardCount(); s++ {
		lo, hi := c.ShardRange(s)
		if lo != prevHi {
			t.Fatalf("step %d: shard %d starts at %d, want %d", step, s, lo, prevHi)
		}
		prevHi = hi
		for pos := lo; pos < hi; pos++ {
			if c.gpus[pos].Shard() != s {
				t.Fatalf("step %d: gpu pos %d has shard %d, want %d", step, pos, c.gpus[pos].Shard(), s)
			}
		}
		for _, g := range c.ActiveRange(s) {
			if g.pos < lo || g.pos >= hi {
				t.Fatalf("step %d: ActiveRange(%d) holds pos %d outside [%d,%d)", step, s, g.pos, lo, hi)
			}
		}
		tiledActive = append(tiledActive, c.ActiveRange(s)...)
	}
	if prevHi != len(c.gpus) {
		t.Fatalf("step %d: shard ranges tile to %d, want %d", step, prevHi, len(c.gpus))
	}
	if !slices.Equal(tiledActive, c.ActiveGPUs()) {
		t.Fatalf("step %d: concatenated ActiveRange segments diverge from the active list", step)
	}
	for b := 0; b < OccupancyBuckets; b++ {
		shardUnion := map[*GPU]bool{}
		n := 0
		for s := 0; s < c.ShardCount(); s++ {
			for _, g := range c.OccupancyBucketShard(s, b) {
				if g.Shard() != s {
					t.Fatalf("step %d: bucket %d shard %d surfaced %s of shard %d",
						step, b, s, g.ID, g.Shard())
				}
				shardUnion[g] = true
				n++
			}
		}
		global := c.OccupancyBucket(b)
		if len(shardUnion) != n || len(global) != n {
			t.Fatalf("step %d: bucket %d shard union has %d entries (%d unique), global %d",
				step, b, n, len(shardUnion), len(global))
		}
		for _, g := range global {
			if !shardUnion[g] {
				t.Fatalf("step %d: bucket %d global entry %s missing from shard union", step, b, g.ID)
			}
		}
	}
}

// TestIndexConsistencyProperty interleaves placements, removals, and
// whole-GPU drains under a seeded RNG and checks full index/recompute
// agreement after every single operation.
func TestIndexConsistencyProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			c := New(Config{Nodes: 4, GPUsPerNode: 3, MemCapMB: 1 << 20})
			funcs := []string{"bert", "resnet", "llama", "gpt2", "vgg"}
			var live []*Placement
			onGPU := map[*Placement]*GPU{}
			steps := 400
			if testing.Short() {
				steps = 120
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(live) == 0: // place
					g := c.gpus[rng.Intn(len(c.gpus))]
					p := &Placement{
						Instance: fmt.Sprintf("i%d", step),
						Func:     funcs[rng.Intn(len(funcs))],
						Req:      float64(rng.Intn(1000)) / 999, // hits 0 and 1 exactly
						Lim:      rng.Float64() * 1.5,
						MemMB:    float64(rng.Intn(4096)),
					}
					if err := g.Place(p); err == nil {
						live = append(live, p)
						onGPU[p] = g
					}
				case op < 8: // remove one
					i := rng.Intn(len(live))
					p := live[i]
					onGPU[p].Remove(p)
					delete(onGPU, p)
					live = slices.Delete(live, i, i+1)
				default: // drain a whole GPU
					g := c.gpus[rng.Intn(len(c.gpus))]
					for len(g.Placements) > 0 {
						p := g.Placements[len(g.Placements)-1]
						g.Remove(p)
						delete(onGPU, p)
						if i := slices.Index(live, p); i >= 0 {
							live = slices.Delete(live, i, i+1)
						}
					}
				}
				checkIndexesConsistent(t, c, step)
			}
		})
	}
}

// TestLifecycleIndexConsistencyProperty interleaves placements,
// removals, and random node Fail/Drain/Join churn on a heterogeneous
// (70/30 big/small) fleet, checking full index/recompute agreement
// after every single operation — the churn extension of the property
// suite. Runs under -race via `make test-race-subsys`.
func TestLifecycleIndexConsistencyProperty(t *testing.T) {
	classes := []GPUClass{
		{Name: "big", Capacity: 1.0, MemCapMB: 1 << 20, Weight: 0.7},
		{Name: "small", Capacity: 0.5, MemCapMB: 1 << 19, Weight: 0.3},
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 977))
			c := New(Config{Nodes: 5, GPUsPerNode: 3, Classes: classes})
			funcs := []string{"bert", "resnet", "llama", "gpt2", "vgg"}
			var live []*Placement
			onGPU := map[*Placement]*GPU{}
			forget := func(p *Placement) {
				delete(onGPU, p)
				if i := slices.Index(live, p); i >= 0 {
					live = slices.Delete(live, i, i+1)
				}
			}
			steps := 500
			if testing.Short() {
				steps = 150
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(12); {
				case op < 5 || (len(live) == 0 && op < 8): // place
					g := c.gpus[rng.Intn(len(c.gpus))]
					p := &Placement{
						Instance: fmt.Sprintf("i%d", step),
						Func:     funcs[rng.Intn(len(funcs))],
						Req:      float64(rng.Intn(1000)) / 999 * g.Capacity,
						Lim:      rng.Float64() * 1.5,
						MemMB:    float64(rng.Intn(4096)),
					}
					// Place refuses failed GPUs; draining accepts direct
					// placements (the scheduler, not the inventory, is
					// the drain gate) — both paths get exercised.
					if err := g.Place(p); err == nil {
						live = append(live, p)
						onGPU[p] = g
					} else if g.Health() != Failed {
						t.Fatalf("step %d: place on %s (%s) failed: %v", step, g.ID, g.Health(), err)
					}
				case op < 8: // remove one
					i := rng.Intn(len(live))
					p := live[i]
					onGPU[p].Remove(p)
					forget(p)
				case op < 9: // fail a node, evicting its placements
					n := c.Nodes[rng.Intn(len(c.Nodes))]
					evicted := c.FailNode(n)
					for _, p := range evicted {
						forget(p)
					}
					for _, g := range n.GPUs {
						if g.Health() != Failed || g.Active() {
							t.Fatalf("step %d: %s not quiesced by FailNode", step, g.ID)
						}
					}
				case op < 10: // drain a node, placements stay
					n := c.Nodes[rng.Intn(len(c.Nodes))]
					before := 0
					for _, g := range n.GPUs {
						before += len(g.Placements)
					}
					c.DrainNode(n)
					after := 0
					for _, g := range n.GPUs {
						after += len(g.Placements)
						if g.Schedulable() {
							t.Fatalf("step %d: %s schedulable after drain", step, g.ID)
						}
					}
					if before != after {
						t.Fatalf("step %d: drain changed placements %d→%d", step, before, after)
					}
				default: // join a node back
					n := c.Nodes[rng.Intn(len(c.Nodes))]
					c.JoinNode(n)
					for _, g := range n.GPUs {
						if !g.Schedulable() {
							t.Fatalf("step %d: %s not schedulable after join", step, g.ID)
						}
					}
				}
				checkIndexesConsistent(t, c, step)
			}
		})
	}
}

// TestShardedIndexConsistencyProperty runs the placement/removal/churn
// interleavings on a sharded inventory, with SetShards repartitions
// mixed into the op stream: after every operation each shard view must
// agree with the global indexes and the global indexes with a
// recompute. This is the partitioner's property test — the occupancy
// index's per-shard storage may never change what the set of bucket
// entries is, only where they are stored.
func TestShardedIndexConsistencyProperty(t *testing.T) {
	classes := []GPUClass{
		{Name: "big", Capacity: 1.0, MemCapMB: 1 << 20, Weight: 0.7},
		{Name: "small", Capacity: 0.5, MemCapMB: 1 << 19, Weight: 0.3},
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 5309))
			c := New(Config{Nodes: 5, GPUsPerNode: 3, Classes: classes, Shards: 4})
			funcs := []string{"bert", "resnet", "llama", "gpt2", "vgg"}
			var live []*Placement
			onGPU := map[*Placement]*GPU{}
			forget := func(p *Placement) {
				delete(onGPU, p)
				if i := slices.Index(live, p); i >= 0 {
					live = slices.Delete(live, i, i+1)
				}
			}
			steps := 400
			if testing.Short() {
				steps = 120
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(12); {
				case op < 5 || (len(live) == 0 && op < 9): // place
					g := c.gpus[rng.Intn(len(c.gpus))]
					p := &Placement{
						Instance: fmt.Sprintf("i%d", step),
						Func:     funcs[rng.Intn(len(funcs))],
						Req:      float64(rng.Intn(1000)) / 999 * g.Capacity,
						Lim:      rng.Float64() * 1.5,
						MemMB:    float64(rng.Intn(4096)),
					}
					if err := g.Place(p); err == nil {
						live = append(live, p)
						onGPU[p] = g
					} else if g.Health() != Failed {
						t.Fatalf("step %d: place on %s failed: %v", step, g.ID, err)
					}
				case op < 8: // remove one
					i := rng.Intn(len(live))
					p := live[i]
					onGPU[p].Remove(p)
					forget(p)
				case op < 9: // fail a node
					for _, p := range c.FailNode(c.Nodes[rng.Intn(len(c.Nodes))]) {
						forget(p)
					}
				case op < 10: // join a node back
					c.JoinNode(c.Nodes[rng.Intn(len(c.Nodes))])
				default: // repartition the inventory mid-flight
					c.SetShards(1 + rng.Intn(8))
				}
				checkIndexesConsistent(t, c, step)
			}
		})
	}
}

// TestOccupancyBucketBoundaries pins the clamping behavior the
// schedulers' bucket-walk pruning relies on.
func TestOccupancyBucketBoundaries(t *testing.T) {
	cases := []struct {
		sum  float64
		want int
	}{
		{-1e-15, 0}, {0, 0}, {1.0 / OccupancyBuckets, 1},
		{0.25, 16}, {0.9999, OccupancyBuckets - 1},
		{1.0, OccupancyBuckets - 1}, {1.7, OccupancyBuckets - 1},
	}
	for _, tc := range cases {
		if got := OccupancyBucketOf(tc.sum); got != tc.want {
			t.Fatalf("OccupancyBucketOf(%v) = %d, want %d", tc.sum, got, tc.want)
		}
	}
}

// TestPostingIndexBasics covers the eager 0↔1 transitions directly:
// replicas of one function on a GPU must not duplicate posting entries,
// and the last replica leaving must drop the GPU (and eventually the
// key).
func TestPostingIndexBasics(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 3})
	g0, g2 := c.gpus[0], c.gpus[2]
	p1 := &Placement{Instance: "a", Func: "f", Req: 0.2, MemMB: 10}
	p2 := &Placement{Instance: "b", Func: "f", Req: 0.2, MemMB: 10}
	p3 := &Placement{Instance: "c", Func: "f", Req: 0.2, MemMB: 10}
	if err := g2.Place(p1); err != nil {
		t.Fatal(err)
	}
	if err := g0.Place(p2); err != nil {
		t.Fatal(err)
	}
	if err := g0.Place(p3); err != nil { // second replica: no new entry
		t.Fatal(err)
	}
	if got := c.FuncGPUs("f"); len(got) != 2 || got[0] != g0 || got[1] != g2 {
		t.Fatalf("posting list wrong: %v", got)
	}
	g0.Remove(p2) // one replica left on g0: entry stays
	if got := c.FuncGPUs("f"); len(got) != 2 {
		t.Fatalf("posting list dropped a still-hosting GPU: %v", got)
	}
	g0.Remove(p3)
	if got := c.FuncGPUs("f"); len(got) != 1 || got[0] != g2 {
		t.Fatalf("posting list after drain: %v", got)
	}
	g2.Remove(p1)
	if c.FuncGPUs("f") != nil {
		t.Fatal("posting key must be deleted with the last placement")
	}
}

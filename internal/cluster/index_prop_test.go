package cluster

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// These property tests drive random Place/Remove/Drain interleavings
// and, after every operation, require each incremental index — the
// function posting lists, the occupancy buckets, the active list, and
// the free heap — to agree exactly with a from-scratch recomputation
// over the inventory. They run under -race via `make test-race-subsys`.

// checkIndexesConsistent recomputes every index from the placements and
// compares. The occupancy comparison goes through OccupancyBucket (the
// read API), so lazy compaction is exercised, and duplicates inside a
// bucket are a failure in their own right.
func checkIndexesConsistent(t *testing.T, c *Cluster, step int) {
	t.Helper()

	// Active list: GPUs with placements, in inventory order.
	var wantActive []*GPU
	for _, g := range c.gpus {
		if g.Active() {
			wantActive = append(wantActive, g)
		}
	}
	if !slices.Equal(wantActive, c.ActiveGPUs()) {
		t.Fatalf("step %d: active list diverged (len %d vs %d)",
			step, len(c.ActiveGPUs()), len(wantActive))
	}

	// Posting index: for every function with a live placement, the
	// hosting GPUs in inventory order; and no dead keys linger.
	wantPosting := map[string][]*GPU{}
	for _, g := range c.gpus {
		for fn := range g.funcCounts {
			wantPosting[fn] = append(wantPosting[fn], g)
		}
	}
	for fn, want := range wantPosting {
		slices.SortFunc(want, func(a, b *GPU) int { return a.pos - b.pos })
		if got := c.FuncGPUs(fn); !slices.Equal(want, got) {
			t.Fatalf("step %d: posting list for %q diverged: got %d GPUs, want %d",
				step, fn, len(got), len(want))
		}
	}
	for fn := range c.posting {
		if _, ok := wantPosting[fn]; !ok {
			t.Fatalf("step %d: posting index retains dead function %q", step, fn)
		}
	}

	// Occupancy index: every active GPU appears in exactly the bucket
	// its current ΣReq maps to, exactly once, and in no other bucket.
	seen := map[*GPU]int{}
	for b := 0; b < OccupancyBuckets; b++ {
		for _, g := range c.OccupancyBucket(b) {
			if prev, dup := seen[g]; dup {
				t.Fatalf("step %d: %s appears in buckets %d and %d", step, g.ID, prev, b)
			}
			seen[g] = b
			if want := OccupancyBucketOf(g.SumReq); want != b {
				t.Fatalf("step %d: %s (ΣReq=%v) in bucket %d, want %d",
					step, g.ID, g.SumReq, b, want)
			}
			if !g.Active() {
				t.Fatalf("step %d: inactive %s surfaced from bucket %d", step, g.ID, b)
			}
		}
	}
	if len(seen) != len(wantActive) {
		t.Fatalf("step %d: occupancy index covers %d GPUs, want %d active",
			step, len(seen), len(wantActive))
	}

	// Free index: FirstInactive returns the earliest inactive GPU.
	var wantFirst *GPU
	for _, g := range c.gpus {
		if !g.Active() {
			wantFirst = g
			break
		}
	}
	if got := c.FirstInactive(); got != wantFirst {
		t.Fatalf("step %d: FirstInactive = %v, want %v", step, got, wantFirst)
	}
}

// TestIndexConsistencyProperty interleaves placements, removals, and
// whole-GPU drains under a seeded RNG and checks full index/recompute
// agreement after every single operation.
func TestIndexConsistencyProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			c := New(Config{Nodes: 4, GPUsPerNode: 3, MemCapMB: 1 << 20})
			funcs := []string{"bert", "resnet", "llama", "gpt2", "vgg"}
			var live []*Placement
			onGPU := map[*Placement]*GPU{}
			steps := 400
			if testing.Short() {
				steps = 120
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(live) == 0: // place
					g := c.gpus[rng.Intn(len(c.gpus))]
					p := &Placement{
						Instance: fmt.Sprintf("i%d", step),
						Func:     funcs[rng.Intn(len(funcs))],
						Req:      float64(rng.Intn(1000)) / 999, // hits 0 and 1 exactly
						Lim:      rng.Float64() * 1.5,
						MemMB:    float64(rng.Intn(4096)),
					}
					if err := g.Place(p); err == nil {
						live = append(live, p)
						onGPU[p] = g
					}
				case op < 8: // remove one
					i := rng.Intn(len(live))
					p := live[i]
					onGPU[p].Remove(p)
					delete(onGPU, p)
					live = slices.Delete(live, i, i+1)
				default: // drain a whole GPU
					g := c.gpus[rng.Intn(len(c.gpus))]
					for len(g.Placements) > 0 {
						p := g.Placements[len(g.Placements)-1]
						g.Remove(p)
						delete(onGPU, p)
						if i := slices.Index(live, p); i >= 0 {
							live = slices.Delete(live, i, i+1)
						}
					}
				}
				checkIndexesConsistent(t, c, step)
			}
		})
	}
}

// TestOccupancyBucketBoundaries pins the clamping behavior the
// schedulers' bucket-walk pruning relies on.
func TestOccupancyBucketBoundaries(t *testing.T) {
	cases := []struct {
		sum  float64
		want int
	}{
		{-1e-15, 0}, {0, 0}, {1.0 / OccupancyBuckets, 1},
		{0.25, 16}, {0.9999, OccupancyBuckets - 1},
		{1.0, OccupancyBuckets - 1}, {1.7, OccupancyBuckets - 1},
	}
	for _, tc := range cases {
		if got := OccupancyBucketOf(tc.sum); got != tc.want {
			t.Fatalf("OccupancyBucketOf(%v) = %d, want %d", tc.sum, got, tc.want)
		}
	}
}

// TestPostingIndexBasics covers the eager 0↔1 transitions directly:
// replicas of one function on a GPU must not duplicate posting entries,
// and the last replica leaving must drop the GPU (and eventually the
// key).
func TestPostingIndexBasics(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 3})
	g0, g2 := c.gpus[0], c.gpus[2]
	p1 := &Placement{Instance: "a", Func: "f", Req: 0.2, MemMB: 10}
	p2 := &Placement{Instance: "b", Func: "f", Req: 0.2, MemMB: 10}
	p3 := &Placement{Instance: "c", Func: "f", Req: 0.2, MemMB: 10}
	if err := g2.Place(p1); err != nil {
		t.Fatal(err)
	}
	if err := g0.Place(p2); err != nil {
		t.Fatal(err)
	}
	if err := g0.Place(p3); err != nil { // second replica: no new entry
		t.Fatal(err)
	}
	if got := c.FuncGPUs("f"); len(got) != 2 || got[0] != g0 || got[1] != g2 {
		t.Fatalf("posting list wrong: %v", got)
	}
	g0.Remove(p2) // one replica left on g0: entry stays
	if got := c.FuncGPUs("f"); len(got) != 2 {
		t.Fatalf("posting list dropped a still-hosting GPU: %v", got)
	}
	g0.Remove(p3)
	if got := c.FuncGPUs("f"); len(got) != 1 || got[0] != g2 {
		t.Fatalf("posting list after drain: %v", got)
	}
	g2.Remove(p1)
	if c.FuncGPUs("f") != nil {
		t.Fatal("posting key must be deleted with the last placement")
	}
}

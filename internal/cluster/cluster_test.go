package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewClusterShape(t *testing.T) {
	c := New(Config{Nodes: 5, GPUsPerNode: 4})
	if len(c.Nodes) != 5 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if len(c.GPUs()) != 20 {
		t.Fatalf("gpus = %d", len(c.GPUs()))
	}
	if c.GPUs()[7].Node != c.Nodes[1] {
		t.Fatal("gpu/node linkage broken")
	}
}

func TestNewClusterDefaults(t *testing.T) {
	c := New(Config{})
	if len(c.GPUs()) != 4 {
		t.Fatalf("default cluster = %d GPUs, want 4", len(c.GPUs()))
	}
	if c.GPUs()[0].MemCapMB != 40*1024 {
		t.Fatalf("default memory = %v", c.GPUs()[0].MemCapMB)
	}
	if c.GPUs()[0].Dev != nil {
		t.Fatal("devices must be opt-in")
	}
}

func TestWithDevices(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 2, WithDevices: true})
	for _, g := range c.GPUs() {
		if g.Dev == nil {
			t.Fatal("missing device")
		}
		if g.Dev.MemoryMB != g.MemCapMB {
			t.Fatal("device memory mismatch")
		}
	}
}

func TestPlaceRemoveAccounting(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 1})
	g := c.GPUs()[0]
	p1 := &Placement{Instance: "i1", Func: "f", Req: 0.3, Lim: 0.6, MemMB: 1000}
	p2 := &Placement{Instance: "i2", Func: "g", Req: 0.4, Lim: 0.7, MemMB: 2000}
	if err := g.Place(p1); err != nil {
		t.Fatal(err)
	}
	if err := g.Place(p2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.SumReq-0.7) > 1e-9 || math.Abs(g.SumLim-1.3) > 1e-9 || g.MemUsedMB != 3000 {
		t.Fatalf("accounting: req=%v lim=%v mem=%v", g.SumReq, g.SumLim, g.MemUsedMB)
	}
	g.Remove(p1)
	if math.Abs(g.SumReq-0.4) > 1e-9 || g.MemUsedMB != 2000 {
		t.Fatalf("after remove: req=%v mem=%v", g.SumReq, g.MemUsedMB)
	}
	if !g.HostsFunc("g") || g.HostsFunc("f") {
		t.Fatal("HostsFunc wrong")
	}
}

func TestPlaceMemoryOverflow(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 1, MemCapMB: 1000})
	g := c.GPUs()[0]
	if err := g.Place(&Placement{MemMB: 1001}); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestOccupiedAndActive(t *testing.T) {
	c := New(Config{Nodes: 2, GPUsPerNode: 2})
	if c.OccupiedCount() != 0 {
		t.Fatal("fresh cluster occupied")
	}
	g := c.GPUs()[2]
	_ = g.Place(&Placement{Instance: "a", Func: "f", Req: 0.5, MemMB: 10})
	if c.OccupiedCount() != 1 {
		t.Fatalf("occupied = %d", c.OccupiedCount())
	}
	act := c.ActiveGPUs()
	if len(act) != 1 || act[0] != g {
		t.Fatal("ActiveGPUs wrong")
	}
}

func TestSnapshotFragmentation(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 2, MemCapMB: 1000})
	_ = c.GPUs()[0].Place(&Placement{Instance: "a", Func: "f", Req: 0.6, MemMB: 250})
	// GPU 1 idle: must not enter fragmentation averages.
	st := c.Snapshot()
	if st.OccupiedGPUs != 1 || st.TotalGPUs != 2 {
		t.Fatalf("occupancy: %+v", st)
	}
	if math.Abs(st.SMFrag-0.4) > 1e-9 {
		t.Fatalf("SM frag = %v, want 0.4", st.SMFrag)
	}
	if math.Abs(st.MemFrag-0.75) > 1e-9 {
		t.Fatalf("mem frag = %v, want 0.75", st.MemFrag)
	}
}

func TestSnapshotClampsOversubscription(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 1})
	g := c.GPUs()[0]
	_ = g.Place(&Placement{Instance: "a", Func: "f", Req: 0.7, MemMB: 10})
	_ = g.Place(&Placement{Instance: "b", Func: "g", Req: 0.7, MemMB: 10})
	st := c.Snapshot()
	if st.SMFrag != 0 {
		t.Fatalf("oversubscribed GPU must report zero SM frag, got %v", st.SMFrag)
	}
}

func TestFuncsSet(t *testing.T) {
	c := New(Config{Nodes: 1, GPUsPerNode: 1})
	g := c.GPUs()[0]
	_ = g.Place(&Placement{Instance: "a", Func: "f", MemMB: 1})
	_ = g.Place(&Placement{Instance: "b", Func: "f", MemMB: 1})
	_ = g.Place(&Placement{Instance: "c", Func: "g", MemMB: 1})
	fs := g.Funcs()
	if len(fs) != 2 || !fs["f"] || !fs["g"] {
		t.Fatalf("funcs = %v", fs)
	}
}

// Property: place/remove sequences leave accounting consistent with the
// surviving placements.
func TestAccountingConsistencyProperty(t *testing.T) {
	f := func(ops []struct {
		Req, Lim uint8
		Mem      uint16
		Remove   bool
	}) bool {
		c := New(Config{Nodes: 1, GPUsPerNode: 1, MemCapMB: 1e9})
		g := c.GPUs()[0]
		var live []*Placement
		for i, op := range ops {
			if op.Remove && len(live) > 0 {
				p := live[i%len(live)]
				g.Remove(p)
				for j, q := range live {
					if q == p {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
				continue
			}
			p := &Placement{
				Instance: "x", Func: "f",
				Req: float64(op.Req) / 255, Lim: float64(op.Lim) / 255,
				MemMB: float64(op.Mem),
			}
			if g.Place(p) == nil {
				live = append(live, p)
			}
		}
		var req, lim, mem float64
		for _, p := range live {
			req += p.Req
			lim += p.Lim
			mem += p.MemMB
		}
		return math.Abs(g.SumReq-req) < 1e-6 &&
			math.Abs(g.SumLim-lim) < 1e-6 &&
			math.Abs(g.MemUsedMB-mem) < 1e-6 &&
			len(g.Placements) == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

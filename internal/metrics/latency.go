// Package metrics implements the measurement layer shared by all Dilu
// experiments: latency recorders with percentiles and SLO-violation rates,
// counters for cold starts, time series for utilization traces, and
// fragmentation/throughput accounting.
package metrics

import (
	"fmt"
	"math"
	"slices"

	"dilu/internal/sim"
)

// ColdStage identifies the cold-start stage that was on a request's
// critical path: the stage of the launch window the request's wait
// overlapped the most (ColdNone when no launch was on the path — a
// warm-queueing wait, or no wait at all).
type ColdStage uint8

// Cold-start stage identifiers, in execution order.
const (
	ColdNone      ColdStage = iota // no cold start on the request's path
	ColdImageInit                  // container image pull + runtime init
	ColdModelLoad                  // parameter load
	ColdKernelJIT                  // GPU-kernel JIT / graph capture
)

// String names the stage for tables and error messages.
func (s ColdStage) String() string {
	switch s {
	case ColdImageInit:
		return "image_init"
	case ColdModelLoad:
		return "model_load"
	case ColdKernelJIT:
		return "kernel_jit"
	default:
		return "none"
	}
}

// LatencyRecorder accumulates request latencies for one function and
// derives the paper's inference metrics: p50/p95/p99 latency and SLO
// violation rate (SVR), plus the goodput/attribution accounting of the
// SLO layer (see slo.go).
type LatencyRecorder struct {
	name    string
	tenant  string
	slo     sim.Duration
	samples []sim.Duration
	// sorted is the dirty flag of the percentile path: it is cleared on
	// every mutation and set by the one sort ensureSorted performs per
	// mutation epoch, so chained Percentile/P95/P99/Max calls (the SLO
	// summary emits several in a row) never re-sort an unchanged slice.
	// sorts counts those sorts for the regression test that pins the
	// one-sort-per-epoch contract.
	sorted bool
	sorts  int
	// violations counts samples above the SLO; waitViolations is the
	// legacy attribution — the subset whose request waited at the
	// gateway before dispatch, regardless of whether a launch was on its
	// path. It keeps pre-stage-model manifest bytes stable.
	violations     int
	waitViolations int
	// trackStages arms the precise cold-on-path attribution: per-stage
	// violation counters plus the warm-queue bucket (waited, but no
	// launch on the path). Off by default so recorders on the legacy
	// path never count — the omitempty manifest fields must stay zero.
	trackStages         bool
	stageViolations     [4]int // indexed by ColdStage; [ColdNone] unused
	warmQueueViolations int
}

// NewLatencyRecorder creates a recorder for a function with the given SLO.
// An SLO of zero disables violation accounting.
func NewLatencyRecorder(name string, slo sim.Duration) *LatencyRecorder {
	return &LatencyRecorder{name: name, slo: slo}
}

// Name returns the function name this recorder belongs to.
func (r *LatencyRecorder) Name() string { return r.name }

// SetTenant labels the recorder with the function's deployment tenant;
// the SLO summary carries it into the per-function stats row.
func (r *LatencyRecorder) SetTenant(tenant string) { r.tenant = tenant }

// Tenant returns the deployment tenant label ("" = default tenant).
func (r *LatencyRecorder) Tenant() string { return r.tenant }

// SLO returns the recorder's SLO target.
func (r *LatencyRecorder) SLO() sim.Duration { return r.slo }

// Observe records one request latency with no gateway-wait attribution.
func (r *LatencyRecorder) Observe(latency sim.Duration) { r.ObserveWait(latency, 0) }

// ObserveWait records one request latency together with the time the
// request spent waiting at the gateway for an instance (zero when it
// was dispatched on arrival), with no cold-stage attribution.
func (r *LatencyRecorder) ObserveWait(latency, wait sim.Duration) {
	r.ObserveWaitStage(latency, wait, ColdNone)
}

// SetColdStageTracking arms (or disarms) per-stage attribution. The
// serving plane sets it when the staged cold-start model or prewarming
// is configured; recorders on the legacy path leave it off so the
// omitempty stage counters stay zero in manifests.
func (r *LatencyRecorder) SetColdStageTracking(on bool) { r.trackStages = on }

// ObserveWaitStage records one request latency, its gateway wait, and
// the cold-start stage on its critical path (ColdNone when the request
// waited for an already-launching-free reason or not at all).
//
// Violation attribution is two-tier. The legacy counter keeps the
// historical wait>0 heuristic unconditionally — fault-free manifests
// depend on its bytes. When stage tracking is armed, a violating
// sample is additionally attributed precisely: to the stage actually
// on its path, or to the warm-queue bucket when it waited with no
// launch on the path.
func (r *LatencyRecorder) ObserveWaitStage(latency, wait sim.Duration, stage ColdStage) {
	r.samples = append(r.samples, latency)
	r.sorted = false
	if r.slo > 0 && latency > r.slo {
		r.violations++
		if wait > 0 {
			r.waitViolations++
		}
		if r.trackStages {
			if stage != ColdNone {
				r.stageViolations[stage]++
			} else if wait > 0 {
				r.warmQueueViolations++
			}
		}
	}
}

// Count returns the number of recorded samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Violations returns the number of SLO-violating samples.
func (r *LatencyRecorder) Violations() int { return r.violations }

// ColdStartViolations returns the violating samples attributed to the
// cold-start path. With stage tracking armed it is the precise count —
// violations with a launch stage on the critical path; otherwise it
// falls back to the legacy wait>0 heuristic (which also sweeps in
// warm-queueing waits, the PR-3 misattribution this split fixes).
func (r *LatencyRecorder) ColdStartViolations() int {
	if r.trackStages {
		return r.stageViolations[ColdImageInit] +
			r.stageViolations[ColdModelLoad] +
			r.stageViolations[ColdKernelJIT]
	}
	return r.waitViolations
}

// StageViolations returns the violating samples whose critical path ran
// through the given cold-start stage. Zero unless stage tracking is
// armed; ColdNone always reports zero (see WarmQueueViolations).
func (r *LatencyRecorder) StageViolations(stage ColdStage) int {
	return r.stageViolations[stage]
}

// WarmQueueViolations returns the violating samples that waited at the
// gateway with no launch on their critical path — warm queueing,
// redispatch after churn, retry/hedge waits. Zero unless stage
// tracking is armed.
func (r *LatencyRecorder) WarmQueueViolations() int { return r.warmQueueViolations }

// Goodput returns the number of samples that met the SLO. With no SLO
// configured every sample counts as goodput.
func (r *LatencyRecorder) Goodput() int { return len(r.samples) - r.violations }

// ViolationRate returns the SLO violation rate in [0,1]; zero when empty.
func (r *LatencyRecorder) ViolationRate() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return float64(r.violations) / float64(len(r.samples))
}

func (r *LatencyRecorder) ensureSorted() {
	if !r.sorted {
		// slices.Sort specializes on the ordered element type — no
		// reflection-driven swaps on the percentile path.
		slices.Sort(r.samples)
		r.sorted = true
		r.sorts++
	}
}

// Percentile returns the p-th percentile latency (p in [0,100]) by
// linear interpolation between the two nearest ranks (the "exclusive"
// quantile convention, rank = p/100·(n−1)); zero when empty.
func (r *LatencyRecorder) Percentile(p float64) sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[len(r.samples)-1]
	}
	rank := p / 100 * float64(len(r.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo] + sim.Duration(frac*float64(r.samples[hi]-r.samples[lo]))
}

// P50 returns the median latency.
func (r *LatencyRecorder) P50() sim.Duration { return r.Percentile(50) }

// P95 returns the 95th percentile latency.
func (r *LatencyRecorder) P95() sim.Duration { return r.Percentile(95) }

// P99 returns the 99th percentile latency.
func (r *LatencyRecorder) P99() sim.Duration { return r.Percentile(99) }

// Mean returns the mean latency.
func (r *LatencyRecorder) Mean() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / sim.Duration(len(r.samples))
}

// Max returns the maximum latency.
func (r *LatencyRecorder) Max() sim.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	return r.samples[len(r.samples)-1]
}

// Reset discards all samples and counters, including the sort-epoch
// counter, so a reused recorder starts a fresh one-sort-per-epoch
// regime (tracking arming survives — it is configuration, not state).
func (r *LatencyRecorder) Reset() {
	r.samples = r.samples[:0]
	r.violations = 0
	r.waitViolations = 0
	r.stageViolations = [4]int{}
	r.warmQueueViolations = 0
	r.sorted = true
	r.sorts = 0
}

func (r *LatencyRecorder) String() string {
	return fmt.Sprintf("%s: n=%d p50=%.1fms p95=%.1fms svr=%.2f%%",
		r.name, r.Count(), r.P50().Millis(), r.P95().Millis(), r.ViolationRate()*100)
}

package metrics

import (
	"math"

	"dilu/internal/sim"
)

// Point is one sample of a time series.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series used for utilization, kernel-issue
// and instance-count traces (Figures 12-14, 17).
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(at sim.Time, v float64) { s.Points = append(s.Points, Point{at, v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the mean of all values; zero when empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the maximum value; zero when empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	if len(s.Points) == 0 {
		return 0
	}
	for _, p := range s.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Min returns the minimum value; zero when empty.
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, p := range s.Points {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}

// Integral returns the time integral of the series (trapezoid-free,
// step interpretation: value holds until next sample) in value·seconds.
// Used for GPU-time accounting (saved GPU time in Table 3, Figure 17).
func (s *Series) Integral() float64 {
	if len(s.Points) < 2 {
		return 0
	}
	var total float64
	for i := 1; i < len(s.Points); i++ {
		dt := (s.Points[i].At - s.Points[i-1].At).Seconds()
		total += s.Points[i-1].Value * dt
	}
	return total
}

// Downsample returns a new series averaging buckets of the given width,
// keeping traces compact for report rendering.
func (s *Series) Downsample(width sim.Duration) *Series {
	out := NewSeries(s.Name)
	if len(s.Points) == 0 || width <= 0 {
		return out
	}
	bucketStart := s.Points[0].At
	var sum float64
	var n int
	flush := func(end sim.Time) {
		if n > 0 {
			out.Add(bucketStart, sum/float64(n))
		}
		bucketStart = end
		sum, n = 0, 0
	}
	for _, p := range s.Points {
		for p.At >= bucketStart+width {
			flush(bucketStart + width)
		}
		sum += p.Value
		n++
	}
	flush(bucketStart + width)
	return out
}

// Counter is a monotonically increasing event counter (cold starts,
// launches, terminations).
type Counter struct {
	Name  string
	Value int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Value++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.Value += n }

package metrics

import (
	"math"
	"strings"
	"testing"

	"dilu/internal/sim"
)

func TestObserveWaitAttribution(t *testing.T) {
	r := NewLatencyRecorder("f", 100*sim.Millisecond)
	r.ObserveWait(50*sim.Millisecond, 0)                   // within SLO
	r.ObserveWait(150*sim.Millisecond, 0)                  // violation, hot path
	r.ObserveWait(200*sim.Millisecond, 80*sim.Millisecond) // violation, waited at gateway
	r.ObserveWait(90*sim.Millisecond, 60*sim.Millisecond)  // waited but still met SLO
	if r.Violations() != 2 {
		t.Fatalf("violations = %d", r.Violations())
	}
	if r.ColdStartViolations() != 1 {
		t.Fatalf("cold violations = %d", r.ColdStartViolations())
	}
	if r.Goodput() != 2 {
		t.Fatalf("goodput = %d", r.Goodput())
	}
	r.Reset()
	if r.Violations() != 0 || r.ColdStartViolations() != 0 || r.Count() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestObserveDelegatesToObserveWait(t *testing.T) {
	r := NewLatencyRecorder("f", 100*sim.Millisecond)
	r.Observe(150 * sim.Millisecond)
	if r.Violations() != 1 || r.ColdStartViolations() != 0 {
		t.Fatalf("observe: v=%d cold=%d", r.Violations(), r.ColdStartViolations())
	}
}

func TestNoSLOMeansNoViolations(t *testing.T) {
	r := NewLatencyRecorder("f", 0)
	r.ObserveWait(10*sim.Second, 5*sim.Second)
	if r.Violations() != 0 || r.Goodput() != 1 {
		t.Fatal("zero SLO must disable violation accounting")
	}
}

func TestSummarizeSLO(t *testing.T) {
	a := NewLatencyRecorder("a", 100*sim.Millisecond)
	for i := 0; i < 98; i++ {
		a.ObserveWait(50*sim.Millisecond, 0)
	}
	a.ObserveWait(150*sim.Millisecond, 10*sim.Millisecond)
	a.ObserveWait(120*sim.Millisecond, 0)

	b := NewLatencyRecorder("b", 50*sim.Millisecond)
	for i := 0; i < 10; i++ {
		b.ObserveWait(200*sim.Millisecond, 20*sim.Millisecond)
	}

	sum := SummarizeSLO(100*sim.Second, a, b, nil)
	if len(sum.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(sum.Funcs))
	}
	if sum.Requests != 110 || sum.Violations != 12 || sum.ColdStartViolations != 11 {
		t.Fatalf("totals: %+v", sum)
	}
	// Goodput: (100-2)/100 + 0/100 = 0.98 rps.
	if math.Abs(sum.GoodputRPS-0.98) > 1e-9 {
		t.Fatalf("goodput = %v", sum.GoodputRPS)
	}
	// a attains p95 (98% of samples at 50 ms), b attains nothing.
	if sum.P95Attainment != 0.5 {
		t.Fatalf("p95 attainment = %v", sum.P95Attainment)
	}
	fa := sum.Funcs[0]
	if fa.Func != "a" || !fa.AttainedP95 || fa.AttainedP99 {
		t.Fatalf("func a stats: %+v", fa)
	}
	if got := fa.ViolationRate(); math.Abs(got-0.02) > 1e-9 {
		t.Fatalf("func a SVR = %v", got)
	}
	if got := sum.ColdStartShare(); math.Abs(got-11.0/12) > 1e-9 {
		t.Fatalf("cold share = %v", got)
	}
	if s := sum.String(); !strings.Contains(s, "110 reqs") {
		t.Fatalf("summary string: %s", s)
	}
}

func TestSummarizeSLOEmpty(t *testing.T) {
	sum := SummarizeSLO(10 * sim.Second)
	if sum.Requests != 0 || sum.ViolationRate() != 0 || sum.ColdStartShare() != 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
	// A recorder with no samples never counts as attaining.
	empty := NewLatencyRecorder("e", sim.Second)
	sum = SummarizeSLO(10*sim.Second, empty)
	if sum.P95Attainment != 0 {
		t.Fatalf("empty recorder attained: %+v", sum)
	}
}

// Token-level serving metrics: TTFT/TPOT latency distributions, output
// token throughput, and the KV-cache pressure events (preemptions,
// admission refusals) the LLM runtime reports. One TokenRecorder per
// function, shared across its instances like the LatencyRecorder.
package metrics

import (
	"fmt"

	"dilu/internal/sim"
)

// TokenRecorder accumulates token-level serving metrics for one
// function: time-to-first-token and time-per-output-token samples
// (each with an optional target), output token counts, and KV-cache
// pressure events.
type TokenRecorder struct {
	name string
	ttft *LatencyRecorder
	tpot *LatencyRecorder

	tokensOut   int64
	requests    int64
	preemptions int64
	refusals    int64
}

// NewTokenRecorder creates a recorder with the given TTFT and TPOT
// targets; a zero target disables the corresponding violation count.
func NewTokenRecorder(name string, ttftTarget, tpotTarget sim.Duration) *TokenRecorder {
	return &TokenRecorder{
		name: name,
		ttft: NewLatencyRecorder(name+"/ttft", ttftTarget),
		tpot: NewLatencyRecorder(name+"/tpot", tpotTarget),
	}
}

// Name returns the function name this recorder belongs to.
func (t *TokenRecorder) Name() string { return t.name }

// ObserveTTFT records one time-to-first-token sample (request arrival
// to first output token).
func (t *TokenRecorder) ObserveTTFT(d sim.Duration) { t.ttft.Observe(d) }

// ObserveTPOT records one request's mean time-per-output-token over its
// decode phase (first token to completion).
func (t *TokenRecorder) ObserveTPOT(d sim.Duration) { t.tpot.Observe(d) }

// AddTokens counts n output tokens produced.
func (t *TokenRecorder) AddTokens(n int64) { t.tokensOut += n }

// NoteRequest counts one completed request.
func (t *TokenRecorder) NoteRequest() { t.requests++ }

// NotePreemption counts one cache-full sequence eviction.
func (t *TokenRecorder) NotePreemption() { t.preemptions++ }

// NoteRefusal counts one queue head refused admission on KV headroom
// (latched per request by the runtime, not per tick).
func (t *TokenRecorder) NoteRefusal() { t.refusals++ }

// TTFT and TPOT expose the underlying distributions.
func (t *TokenRecorder) TTFT() *LatencyRecorder { return t.ttft }

// TPOT returns the time-per-output-token distribution.
func (t *TokenRecorder) TPOT() *LatencyRecorder { return t.tpot }

// TokensOut returns total output tokens produced.
func (t *TokenRecorder) TokensOut() int64 { return t.tokensOut }

// Requests returns completed requests.
func (t *TokenRecorder) Requests() int64 { return t.requests }

// Preemptions returns cache-full sequence evictions.
func (t *TokenRecorder) Preemptions() int64 { return t.preemptions }

// Refusals returns admission refusals on KV headroom.
func (t *TokenRecorder) Refusals() int64 { return t.refusals }

func (t *TokenRecorder) String() string {
	return fmt.Sprintf("%s: tokens=%d ttft-p95=%.1fms tpot-p95=%.1fms preempt=%d refuse=%d",
		t.name, t.tokensOut, t.ttft.P95().Millis(), t.tpot.P95().Millis(), t.preemptions, t.refusals)
}

// LLMFuncStats is one function's row in the token-level roll-up.
type LLMFuncStats struct {
	Func      string `json:"func"`
	Requests  int64  `json:"requests"`
	TokensOut int64  `json:"tokens_out"`
	// TokensPerSecond is output tokens over the run horizon.
	TokensPerSecond float64 `json:"tokens_per_second"`
	// TTFT/TPOT targets and tails; targets omitted when unset.
	TTFTTargetMillis float64 `json:"ttft_target_ms,omitempty"`
	TTFTP95Millis    float64 `json:"ttft_p95_ms"`
	TTFTViolations   int64   `json:"ttft_violations,omitempty"`
	TPOTTargetMillis float64 `json:"tpot_target_ms,omitempty"`
	TPOTP95Millis    float64 `json:"tpot_p95_ms"`
	TPOTViolations   int64   `json:"tpot_violations,omitempty"`
	// KV pressure attribution: sequences evicted mid-decode on a full
	// cache, and queue heads refused admission for lack of headroom.
	CacheFullPreemptions int64 `json:"cache_full_preemptions,omitempty"`
	AdmitRefusals        int64 `json:"admit_refusals,omitempty"`
}

// LLMSLO is the token-level serving block of a run summary: per-function
// TTFT/TPOT accounting plus the run's aggregate token throughput and
// KV-cache occupancy peaks. Present only on runs that deployed an LLM
// function; prior manifests keep their bytes.
type LLMSLO struct {
	Funcs           []LLMFuncStats `json:"funcs,omitempty"`
	TokensOut       int64          `json:"tokens_out"`
	TokensPerSecond float64        `json:"tokens_per_second"`
	// KVPeakMB is the largest cluster-wide KV reservation observed at
	// any 1 Hz sample; KVPeakShare the largest single-GPU KV share of
	// device memory.
	KVPeakMB             float64 `json:"kv_peak_mb"`
	KVPeakShare          float64 `json:"kv_peak_share"`
	CacheFullPreemptions int64   `json:"cache_full_preemptions,omitempty"`
	AdmitRefusals        int64   `json:"admit_refusals,omitempty"`
}

// SummarizeLLM builds the token-level roll-up over a run's token
// recorders (deployment order, for determinism). The horizon converts
// token counts to rates; KV peaks are sampled by the serving plane and
// passed through.
func SummarizeLLM(horizon sim.Duration, kvPeakMB, kvPeakShare float64, recs ...*TokenRecorder) *LLMSLO {
	sum := &LLMSLO{KVPeakMB: kvPeakMB, KVPeakShare: kvPeakShare}
	seconds := horizon.Seconds()
	for _, t := range recs {
		if t == nil {
			continue
		}
		st := LLMFuncStats{
			Func:                 t.name,
			Requests:             t.requests,
			TokensOut:            t.tokensOut,
			TTFTTargetMillis:     t.ttft.SLO().Millis(),
			TTFTP95Millis:        t.ttft.P95().Millis(),
			TTFTViolations:       int64(t.ttft.Violations()),
			TPOTTargetMillis:     t.tpot.SLO().Millis(),
			TPOTP95Millis:        t.tpot.P95().Millis(),
			TPOTViolations:       int64(t.tpot.Violations()),
			CacheFullPreemptions: t.preemptions,
			AdmitRefusals:        t.refusals,
		}
		if seconds > 0 {
			st.TokensPerSecond = float64(t.tokensOut) / seconds
		}
		sum.Funcs = append(sum.Funcs, st)
		sum.TokensOut += st.TokensOut
		sum.TokensPerSecond += st.TokensPerSecond
		sum.CacheFullPreemptions += st.CacheFullPreemptions
		sum.AdmitRefusals += st.AdmitRefusals
	}
	return sum
}

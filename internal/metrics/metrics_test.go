package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dilu/internal/sim"
)

// TestLatencyOneSortPerMutationEpoch pins the dirty-flag contract: a
// run of Percentile/P95/P99/Max calls between two mutations costs
// exactly one sort (the SLO summary path issues several in a row), and
// each new observation opens exactly one new epoch.
func TestLatencyOneSortPerMutationEpoch(t *testing.T) {
	r := NewLatencyRecorder("f", 100*sim.Millisecond)
	for i := 50; i >= 1; i-- {
		r.Observe(sim.Duration(i) * sim.Millisecond)
	}
	r.P50()
	r.P95()
	r.P99()
	r.Percentile(42)
	r.Max()
	if r.sorts != 1 {
		t.Fatalf("chained percentile calls cost %d sorts, want exactly 1", r.sorts)
	}
	// A mutation opens a new epoch: one more sort, and only one.
	r.ObserveWait(7*sim.Millisecond, sim.Millisecond)
	r.P95()
	r.P99()
	if r.sorts != 2 {
		t.Fatalf("after mutation: %d sorts, want exactly 2", r.sorts)
	}
	// No mutation since: reading percentiles again stays sort-free.
	r.P50()
	r.Max()
	if r.sorts != 2 {
		t.Fatalf("unchanged samples re-sorted: %d sorts", r.sorts)
	}
	// Reset zeroes the epoch counter and leaves an empty-but-sorted
	// recorder; the next reads must not sort until something is
	// observed, and the reused recorder starts counting from scratch.
	r.Reset()
	r.P95()
	if r.sorts != 0 {
		t.Fatalf("reset recorder kept/spent sorts: %d, want 0", r.sorts)
	}
	r.Observe(3 * sim.Millisecond)
	r.P95()
	if r.sorts != 1 {
		t.Fatalf("post-reset epoch: %d sorts, want exactly 1", r.sorts)
	}
}

// TestColdStageAttribution pins the two-tier attribution: the legacy
// wait>0 counter is unconditional (manifest bytes), while the per-stage
// and warm-queue counters only move when tracking is armed, and
// ColdStartViolations switches from the heuristic to the precise sum.
func TestColdStageAttribution(t *testing.T) {
	slo := 10 * sim.Millisecond
	viol := 50 * sim.Millisecond

	// Untracked recorder: stage markers are ignored, heuristic rules.
	r := NewLatencyRecorder("legacy", slo)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdModelLoad)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdNone) // warm queue
	r.ObserveWaitStage(viol, 0, ColdNone)                 // pure exec violation
	if got := r.ColdStartViolations(); got != 2 {
		t.Fatalf("legacy ColdStartViolations = %d, want 2 (wait>0 heuristic)", got)
	}
	for st := ColdImageInit; st <= ColdKernelJIT; st++ {
		if r.StageViolations(st) != 0 {
			t.Fatalf("untracked recorder counted stage %v", st)
		}
	}
	if r.WarmQueueViolations() != 0 {
		t.Fatal("untracked recorder counted warm-queue violations")
	}

	// Tracked recorder: precise attribution.
	r = NewLatencyRecorder("staged", slo)
	r.SetColdStageTracking(true)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdImageInit)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdModelLoad)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdModelLoad)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdKernelJIT)
	r.ObserveWaitStage(viol, 5*sim.Millisecond, ColdNone)                 // warm queue
	r.ObserveWaitStage(viol, 0, ColdNone)                                 // pure exec violation
	r.ObserveWaitStage(sim.Millisecond, 5*sim.Millisecond, ColdModelLoad) // met SLO
	if got := r.ColdStartViolations(); got != 4 {
		t.Fatalf("tracked ColdStartViolations = %d, want 4 (stage sum)", got)
	}
	if r.StageViolations(ColdImageInit) != 1 || r.StageViolations(ColdModelLoad) != 2 ||
		r.StageViolations(ColdKernelJIT) != 1 {
		t.Fatalf("stage violations = %d/%d/%d, want 1/2/1",
			r.StageViolations(ColdImageInit), r.StageViolations(ColdModelLoad),
			r.StageViolations(ColdKernelJIT))
	}
	if got := r.WarmQueueViolations(); got != 1 {
		t.Fatalf("WarmQueueViolations = %d, want 1", got)
	}
	if got := r.Violations(); got != 6 {
		t.Fatalf("Violations = %d, want 6", got)
	}
	r.Reset()
	if r.ColdStartViolations() != 0 || r.WarmQueueViolations() != 0 {
		t.Fatal("Reset left attribution counters non-zero")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	r := NewLatencyRecorder("f", 100*sim.Millisecond)
	for i := 1; i <= 100; i++ {
		r.Observe(sim.Duration(i) * sim.Millisecond)
	}
	if got := r.P50(); math.Abs(got.Millis()-50.5) > 1 {
		t.Fatalf("p50 = %v", got.Millis())
	}
	if got := r.P95(); math.Abs(got.Millis()-95.05) > 1 {
		t.Fatalf("p95 = %v", got.Millis())
	}
	if got := r.Max(); got != 100*sim.Millisecond {
		t.Fatalf("max = %v", got)
	}
}

func TestLatencySVR(t *testing.T) {
	r := NewLatencyRecorder("f", 100*sim.Millisecond)
	for i := 0; i < 90; i++ {
		r.Observe(50 * sim.Millisecond)
	}
	for i := 0; i < 10; i++ {
		r.Observe(150 * sim.Millisecond)
	}
	if got := r.ViolationRate(); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("SVR = %v, want 0.10", got)
	}
	if r.Violations() != 10 {
		t.Fatalf("violations = %d", r.Violations())
	}
}

func TestLatencyEmpty(t *testing.T) {
	r := NewLatencyRecorder("f", 0)
	if r.P50() != 0 || r.P95() != 0 || r.Mean() != 0 || r.Max() != 0 || r.ViolationRate() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
}

func TestLatencyZeroSLODisablesViolations(t *testing.T) {
	r := NewLatencyRecorder("f", 0)
	r.Observe(sim.Hour)
	if r.Violations() != 0 {
		t.Fatal("zero SLO must not count violations")
	}
}

func TestLatencyReset(t *testing.T) {
	r := NewLatencyRecorder("f", sim.Millisecond)
	r.Observe(2 * sim.Millisecond)
	r.Reset()
	if r.Count() != 0 || r.Violations() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLatencyMeanInterleavedWithPercentile(t *testing.T) {
	r := NewLatencyRecorder("f", 0)
	r.Observe(10 * sim.Millisecond)
	_ = r.P50() // sort
	r.Observe(20 * sim.Millisecond)
	if got := r.Mean(); got != 15*sim.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	if got := r.Max(); got != 20*sim.Millisecond {
		t.Fatalf("max after resort = %v", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max of samples.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder("f", 0)
		for _, v := range raw {
			r.Observe(sim.Duration(v) * sim.Microsecond)
		}
		sorted := append([]uint16(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := sim.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := r.Percentile(p)
			if v < prev {
				return false
			}
			if v < sim.Duration(sorted[0])*sim.Microsecond || v > sim.Duration(sorted[len(sorted)-1])*sim.Microsecond {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("util")
	s.Add(0, 1)
	s.Add(sim.Second, 3)
	s.Add(2*sim.Second, 5)
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 5 || s.Min() != 1 {
		t.Fatalf("max/min = %v/%v", s.Max(), s.Min())
	}
}

func TestSeriesIntegral(t *testing.T) {
	s := NewSeries("gpus")
	s.Add(0, 4)
	s.Add(10*sim.Second, 2)
	s.Add(20*sim.Second, 2)
	// 4 gpus for 10s + 2 gpus for 10s = 60 gpu-seconds
	if got := s.Integral(); math.Abs(got-60) > 1e-9 {
		t.Fatalf("integral = %v, want 60", got)
	}
}

func TestSeriesIntegralDegenerate(t *testing.T) {
	s := NewSeries("x")
	if s.Integral() != 0 {
		t.Fatal("empty integral")
	}
	s.Add(0, 5)
	if s.Integral() != 0 {
		t.Fatal("single-point integral")
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Add(sim.Time(i)*sim.Millisecond, float64(i))
	}
	d := s.Downsample(10 * sim.Millisecond)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d, want 10", d.Len())
	}
	if math.Abs(d.Points[0].Value-4.5) > 1e-9 {
		t.Fatalf("bucket 0 mean = %v, want 4.5", d.Points[0].Value)
	}
}

func TestSeriesDownsampleWithGaps(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(35*sim.Millisecond, 2)
	d := s.Downsample(10 * sim.Millisecond)
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2 (gap buckets skipped)", d.Len())
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "cold"}
	c.Inc()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("counter = %d", c.Value)
	}
}

// Property: downsampling preserves the overall mean within floating error
// when buckets are uniformly filled.
func TestDownsampleMeanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) < 4 {
			return true
		}
		s := NewSeries("x")
		for i, v := range vals {
			s.Add(sim.Time(i)*sim.Millisecond, float64(v))
		}
		// width=1ms means identity downsample
		d := s.Downsample(sim.Millisecond)
		return d.Len() == s.Len() && math.Abs(d.Mean()-s.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// SLO accounting: per-function targets rolled up into the
// violation/goodput summary the harness manifest records. The paper
// reports SVR alone; serving systems evaluated against production
// arrival patterns (HAS-GPU, DeepServe) additionally track percentile
// attainment, goodput, and how much of the violation mass the cold-start
// path contributes — which is what this layer adds.
package metrics

import (
	"fmt"

	"dilu/internal/sim"
)

// SLOFuncStats is the per-function SLO accounting of one run.
type SLOFuncStats struct {
	Func string `json:"func"`
	// Tenant is the function's deployment tenant; omitted for the default
	// tenant so single-tenant manifests keep their pre-tenant bytes.
	Tenant    string  `json:"tenant,omitempty"`
	SLOMillis float64 `json:"slo_ms"`
	Requests  int64   `json:"requests"`
	// Violations counts requests over the SLO; ColdStartViolations is
	// the subset attributed to the cold-start path — under the staged
	// model, violations with a launch stage on the critical path;
	// otherwise the legacy wait>0 heuristic.
	Violations          int64 `json:"violations"`
	ColdStartViolations int64 `json:"cold_start_violations"`
	// Per-stage attribution (staged cold-start model only): which launch
	// phase was on the violating request's critical path, with waits
	// that had no launch on the path split out as warm queueing. All
	// omitempty — zero (hence absent) on the legacy path.
	ImageInitViolations int64 `json:"image_init_violations,omitempty"`
	ModelLoadViolations int64 `json:"model_load_violations,omitempty"`
	KernelJITViolations int64 `json:"kernel_jit_violations,omitempty"`
	WarmQueueViolations int64 `json:"warm_queue_violations,omitempty"`
	// GoodputRPS is SLO-met requests per second of horizon.
	GoodputRPS float64 `json:"goodput_rps"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	// AttainedP95/P99 report whether the percentile latency met the SLO
	// (vacuously false with no samples, true with no SLO configured).
	AttainedP95 bool `json:"attained_p95"`
	AttainedP99 bool `json:"attained_p99"`
}

// ViolationRate returns the function's SVR in [0,1].
func (s SLOFuncStats) ViolationRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Violations) / float64(s.Requests)
}

// TenantSLOStats is one tenant's row in the gateway admission roll-up.
type TenantSLOStats struct {
	Tenant    string `json:"tenant"`
	Submitted int64  `json:"submitted"`
	Admitted  int64  `json:"admitted"`
	Shed      int64  `json:"shed"`
	Served    int64  `json:"served"`
	// Retries and Hedges count resilience redeliveries charged to the
	// tenant's retry budget; omitted (keeping pre-fault bytes) when the
	// resilience layer never acted for the tenant.
	Retries int64 `json:"retries,omitempty"`
	Hedges  int64 `json:"hedges,omitempty"`
	// GoodputRPS is the tenant's SLO-met request rate over the horizon.
	GoodputRPS float64 `json:"goodput_rps"`
}

// GatewaySLO is the admission-layer block of a run summary: how many
// requests the gateway saw, admitted, and shed — in aggregate and per
// tenant. Present only for multi-tenant runs or runs with an admission
// policy; pre-gateway manifests keep their bytes.
type GatewaySLO struct {
	Policy    string           `json:"policy,omitempty"`
	Submitted int64            `json:"submitted"`
	Admitted  int64            `json:"admitted"`
	Shed      int64            `json:"shed"`
	Tenants   []TenantSLOStats `json:"tenants,omitempty"`
}

// ShedRate returns the fraction of submitted requests shed, in [0,1].
func (g *GatewaySLO) ShedRate() float64 {
	if g.Submitted == 0 {
		return 0
	}
	return float64(g.Shed) / float64(g.Submitted)
}

// ResilienceSLO is the gray-failure block of a run summary: injected
// fault events and per-cause mitigation attribution (timeouts, retry
// successes, hedge wins, quarantine migrations). Present only on runs
// that injected faults or enabled a mitigation layer; every column is
// omitempty so partial activity keeps minimal bytes.
type ResilienceSLO struct {
	SlowEvents           int64 `json:"slow_events,omitempty"`
	ErrorEvents          int64 `json:"error_events,omitempty"`
	AbortedBatches       int64 `json:"aborted_batches,omitempty"`
	AbortedRequests      int64 `json:"aborted_requests,omitempty"`
	Timeouts             int64 `json:"timeouts,omitempty"`
	Retries              int64 `json:"retries,omitempty"`
	RetrySuccess         int64 `json:"retry_success,omitempty"`
	Hedges               int64 `json:"hedges,omitempty"`
	HedgeWins            int64 `json:"hedge_wins,omitempty"`
	HedgeDiscards        int64 `json:"hedge_discards,omitempty"`
	Quarantines          int64 `json:"quarantines,omitempty"`
	Readmits             int64 `json:"readmits,omitempty"`
	QuarantineMigrations int64 `json:"quarantine_migrations,omitempty"`
}

// ColdStartSLO is the staged cold-start block of a run summary:
// per-stage violation attribution summed over functions, warm-queue
// waits split out, kernel-cache effectiveness, and prewarming activity.
// Present only on runs with the stage model or prewarming configured;
// every column is omitempty so partial activity keeps minimal bytes.
type ColdStartSLO struct {
	ImageInitViolations int64 `json:"image_init_violations,omitempty"`
	ModelLoadViolations int64 `json:"model_load_violations,omitempty"`
	KernelJITViolations int64 `json:"kernel_jit_violations,omitempty"`
	WarmQueueViolations int64 `json:"warm_queue_violations,omitempty"`
	// KernelCacheHits/Misses count cold launches that found (or missed)
	// every target node's kernel cache warm; a hit shrinks the JIT stage.
	KernelCacheHits   int64 `json:"kernel_cache_hits,omitempty"`
	KernelCacheMisses int64 `json:"kernel_cache_misses,omitempty"`
	// PrewarmLaunches counts cold launches initiated ahead of demand by
	// the prewarming policy — their cold starts are paid off the request
	// path.
	PrewarmLaunches int64 `json:"prewarm_launches,omitempty"`
	// ColdLaunches / ColdMillisTotal are the run's cold-launch count and
	// total cold-start wall clock actually paid (cache shortening
	// included), so drivers can report mean effective cold-start time.
	ColdLaunches    int64   `json:"cold_launches,omitempty"`
	ColdMillisTotal float64 `json:"cold_ms_total,omitempty"`
}

// MeanColdMillis returns the mean effective cold-start duration paid
// per cold launch, in milliseconds.
func (c *ColdStartSLO) MeanColdMillis() float64 {
	if c.ColdLaunches == 0 {
		return 0
	}
	return c.ColdMillisTotal / float64(c.ColdLaunches)
}

// SLOSummary rolls per-function SLO accounting up to one run.
type SLOSummary struct {
	Funcs []SLOFuncStats `json:"funcs,omitempty"`

	// Gateway is the admission roll-up; nil for single-tenant runs with
	// the admit-all policy (the pre-gateway configuration).
	Gateway *GatewaySLO `json:"gateway,omitempty"`

	// Resilience is the gray-failure/mitigation roll-up; nil for runs
	// that never injected a fault nor enabled retry/hedge/quarantine.
	Resilience *ResilienceSLO `json:"resilience,omitempty"`

	// ColdStart is the staged cold-start roll-up; nil for runs on the
	// legacy scalar cold-start path.
	ColdStart *ColdStartSLO `json:"cold_start,omitempty"`

	// LLM is the token-level serving roll-up; nil for runs that never
	// deployed a token-level function.
	LLM *LLMSLO `json:"llm,omitempty"`

	Requests            int64 `json:"requests"`
	Violations          int64 `json:"violations"`
	ColdStartViolations int64 `json:"cold_start_violations"`
	// GoodputRPS is the aggregate SLO-met request rate.
	GoodputRPS float64 `json:"goodput_rps"`
	// P95Attainment / P99Attainment are the fractions of functions whose
	// p95/p99 latency met their SLO.
	P95Attainment float64 `json:"p95_attainment"`
	P99Attainment float64 `json:"p99_attainment"`
}

// ViolationRate returns the aggregate SVR in [0,1].
func (s *SLOSummary) ViolationRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Violations) / float64(s.Requests)
}

// ColdStartShare returns the fraction of violations attributed to the
// cold-start path. Under the staged model this means a launch stage
// was on the violating request's critical path; on the legacy path it
// is the wait>0 heuristic, which also sweeps in warm-queueing waits.
func (s *SLOSummary) ColdStartShare() float64 {
	if s.Violations == 0 {
		return 0
	}
	return float64(s.ColdStartViolations) / float64(s.Violations)
}

func (s *SLOSummary) String() string {
	return fmt.Sprintf("slo: %d reqs svr=%.2f%% cold-share=%.0f%% goodput=%.1f rps p95-attain=%.0f%%",
		s.Requests, s.ViolationRate()*100, s.ColdStartShare()*100, s.GoodputRPS, s.P95Attainment*100)
}

// SummarizeSLO builds the summary over a run's latency recorders (one
// per function, in the order given — callers pass deployment order so
// the summary is deterministic). The horizon converts goodput counts to
// rates.
func SummarizeSLO(horizon sim.Duration, recs ...*LatencyRecorder) *SLOSummary {
	sum := &SLOSummary{}
	seconds := horizon.Seconds()
	attained95, attained99 := 0, 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		slo := r.SLO()
		st := SLOFuncStats{
			Func:                r.Name(),
			Tenant:              r.Tenant(),
			SLOMillis:           slo.Millis(),
			Requests:            int64(r.Count()),
			Violations:          int64(r.Violations()),
			ColdStartViolations: int64(r.ColdStartViolations()),
			ImageInitViolations: int64(r.StageViolations(ColdImageInit)),
			ModelLoadViolations: int64(r.StageViolations(ColdModelLoad)),
			KernelJITViolations: int64(r.StageViolations(ColdKernelJIT)),
			WarmQueueViolations: int64(r.WarmQueueViolations()),
			P95Millis:           r.P95().Millis(),
			P99Millis:           r.P99().Millis(),
		}
		if seconds > 0 {
			st.GoodputRPS = float64(r.Goodput()) / seconds
		}
		if r.Count() > 0 {
			st.AttainedP95 = slo <= 0 || r.P95() <= slo
			st.AttainedP99 = slo <= 0 || r.P99() <= slo
		}
		if st.AttainedP95 {
			attained95++
		}
		if st.AttainedP99 {
			attained99++
		}
		sum.Funcs = append(sum.Funcs, st)
		sum.Requests += st.Requests
		sum.Violations += st.Violations
		sum.ColdStartViolations += st.ColdStartViolations
		sum.GoodputRPS += st.GoodputRPS
	}
	if n := len(sum.Funcs); n > 0 {
		sum.P95Attainment = float64(attained95) / float64(n)
		sum.P99Attainment = float64(attained99) / float64(n)
	}
	return sum
}

package experiments

import (
	"fmt"
	"slices"

	"dilu/internal/cluster"
	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/rckm"
	"dilu/internal/report"
	"dilu/internal/sched"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// lsInstance is one deployment of the large-scale placement simulation.
type lsInstance struct {
	fn      string
	profile profiler.Profile
	stages  int
	workers int
	arrive  sim.Time
	depart  sim.Time
}

// largeScaleMix generates the 3,200-instance workload of §5.5: training,
// LLM inference and non-LLM inference in a 2:2:6 ratio, arriving over the
// first horizon third with exponential lifetimes.
func largeScaleMix(total int, horizon sim.Duration, rng *sim.RNG) []lsInstance {
	trainModels := []string{"BERT-base", "ResNet152", "RoBERTa-large", "GPT2-large", "VGG19"}
	llmModels := []string{"LLaMA2-7B", "ChatGLM3-6B"}
	infModels := []string{"ResNet152", "VGG19", "BERT-base", "RoBERTa-large", "GPT2-large"}
	var out []lsInstance
	// The cache key is a comparable struct, not a formatted string: the
	// lookup runs once per generated instance, and Sprintf cost there
	// showed up in the hyperscale (32k-instance) generation profile.
	type profKey struct {
		name string
		role profiler.Role
	}
	profCache := map[profKey]profiler.Profile{}
	prof := func(name string, role profiler.Role) profiler.Profile {
		key := profKey{name, role}
		if p, ok := profCache[key]; ok {
			return p
		}
		p := profiler.For(model.ByName(name), role)
		profCache[key] = p
		return p
	}
	for i := 0; i < total; i++ {
		arrive := sim.Duration(rng.Float64() * float64(horizon) / 3)
		life := sim.FromSeconds(rng.Exp(1 / (horizon.Seconds() / 2)))
		inst := lsInstance{arrive: arrive, depart: arrive + life}
		switch {
		case i%10 < 2: // training
			name := trainModels[i%len(trainModels)]
			inst.fn = fmt.Sprintf("train-%s-%d", name, i)
			inst.profile = prof(name, profiler.RoleTraining)
			inst.workers = 1 + i%3 // 1-3 workers
		case i%10 < 4: // LLM inference
			name := llmModels[i%len(llmModels)]
			inst.fn = fmt.Sprintf("llm-%s-%d", name, i)
			inst.profile = prof(name, profiler.RoleInference)
			inst.stages = model.ByName(name).PipelineStages
			inst.workers = 1
		default: // non-LLM inference
			name := infModels[i%len(infModels)]
			inst.fn = fmt.Sprintf("inf-%s-%d", name, i)
			inst.profile = prof(name, profiler.RoleInference)
			inst.workers = 1
		}
		out = append(out, inst)
	}
	return out
}

// lsEvent is an arrival or departure.
type lsEvent struct {
	at     sim.Time
	arrive bool
	idx    int
}

// runLargeScale replays the instance mix through one scheduler on the
// paper's 1,000-node cluster and samples occupancy/fragmentation over
// time.
func runLargeScale(mk func(*cluster.Cluster) sched.Scheduler, mix []lsInstance, horizon sim.Duration, shards int) (*metrics.Series, cluster.Stats, float64) {
	occ, stats, gpuSeconds, _ := runLargeScaleOn(mk, mix, horizon, 1000, shards)
	return occ, stats, gpuSeconds
}

// runLargeScaleOn is runLargeScale with a configurable node count (the
// hyperscale driver runs 10,000 nodes); it additionally reports how many
// deployment requests were placed.
func runLargeScaleOn(mk func(*cluster.Cluster) sched.Scheduler, mix []lsInstance, horizon sim.Duration, nodes, shards int) (*metrics.Series, cluster.Stats, float64, int) {
	r := runLargeScaleClu(mk, mix, horizon, cluster.Config{Nodes: nodes, GPUsPerNode: 4}, shards)
	return r.occ, r.stats, r.gpuSeconds, r.placed
}

// lsResult is one scheduler's large-scale replay outcome.
type lsResult struct {
	occ        *metrics.Series
	stats      cluster.Stats
	classes    []cluster.ClassStat
	gpuSeconds float64
	// capSeconds integrates capacity-weighted occupancy — the cost
	// measure that prices a fractional-capacity GPU at its fraction.
	// Equals gpuSeconds on homogeneous fleets.
	capSeconds float64
	placed     int
}

// runLargeScaleClu is the configurable-cluster core of the large-scale
// placement replays: the heterogeneity drivers pass mixed GPU classes,
// everything else a plain node count.
//
// shards > 1 runs the replay in sharded mode: the cluster is partitioned
// into position-range shards (parallelizing the scheduler's candidate
// scans through a fork-join pool), and the event stream is driven through
// a sim.ShardedEngine — each event lives on a shard heap, windows advance
// on all cores, and the actual placements and releases execute on the
// coordinator at barriers, ordered by (at, global event index) through
// the deterministic mailbox. That order equals the serial loop's sorted
// order, so the result is byte-identical at any shard count (guarded by
// TestLargeScaleShardInvariance and the sched_shard_equiv differentials).
func runLargeScaleClu(mk func(*cluster.Cluster) sched.Scheduler, mix []lsInstance, horizon sim.Duration, cfg cluster.Config, shards int) lsResult {
	if shards > 1 {
		cfg.Shards = shards
	}
	clu := cluster.New(cfg)
	s := mk(clu)
	var pool *sim.Pool
	if shards > 1 {
		pool = sim.NewPool(0)
		defer pool.Close()
		if p, ok := s.(interface{ SetParallel(*sim.Pool) }); ok {
			p.SetParallel(pool)
		}
	}
	var events []lsEvent
	for i, inst := range mix {
		events = append(events, lsEvent{inst.arrive, true, i})
		if inst.depart < horizon {
			events = append(events, lsEvent{inst.depart, false, i})
		}
	}
	// (at, idx) is a total order — no ties — so the unstable sort is
	// deterministic; SortFunc avoids sort.Slice's reflection-based swaps.
	slices.SortFunc(events, func(a, b lsEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	placed := map[int][]sched.Decision{}
	occ := metrics.NewSeries(s.Name() + "/occupied-gpus")
	placedCount := 0
	var gpuSeconds, capSeconds float64
	var lastAt sim.Time
	var lastOcc, lastCap float64
	record := func(at sim.Time) {
		cur := float64(clu.OccupiedCount())
		gpuSeconds += lastOcc * (at - lastAt).Seconds()
		capSeconds += lastCap * (at - lastAt).Seconds()
		lastAt, lastOcc, lastCap = at, cur, clu.OccupiedCapacity()
		occ.Add(at, cur)
	}
	apply := func(ev lsEvent) {
		if ev.arrive {
			inst := mix[ev.idx]
			decs, err := s.Schedule(sched.Request{
				Func: inst.fn, Profile: inst.profile,
				Instances: inst.workers, GPUsPerInstance: inst.stages,
			})
			if err == nil {
				placed[ev.idx] = decs
				placedCount++
			}
		} else {
			for _, d := range placed[ev.idx] {
				d.Release()
			}
			delete(placed, ev.idx)
		}
		record(ev.at)
	}
	if shards > 1 {
		// Events round-robin onto shard heaps; each fires inside its
		// window and mails the coordinator, which applies the placement
		// against the shared cluster at the barrier. The mailbox key is
		// the event's position in the sorted stream — sharding-invariant,
		// so (at, key) delivery reproduces the serial loop order exactly
		// regardless of shard count or window size.
		se := sim.NewShardedEngine(shards, 0, pool)
		for i, ev := range events {
			sh := i % shards
			box := se.Outbox(sh)
			key := uint64(i)
			se.Schedule(sh, ev.at, func(sim.Time) {
				box.Send(sim.Coordinator, ev.at, key, func(sim.Time) { apply(ev) })
			})
		}
		se.Run(horizon)
	} else {
		for _, ev := range events {
			apply(ev)
		}
	}
	record(horizon)
	return lsResult{occ: occ, stats: clu.Snapshot(), classes: clu.ClassStats(),
		gpuSeconds: gpuSeconds, capSeconds: capSeconds, placed: placedCount}
}

// figure17Schedulers builds the three §5.5 comparison schedulers.
func figure17Schedulers() map[string]func(*cluster.Cluster) sched.Scheduler {
	return map[string]func(*cluster.Cluster) sched.Scheduler{
		"Exclusive":  func(c *cluster.Cluster) sched.Scheduler { return sched.NewExclusive(c) },
		"INFless+-l": func(c *cluster.Cluster) sched.Scheduler { return sched.NewINFlessL(c) },
		"Dilu":       func(c *cluster.Cluster) sched.Scheduler { return sched.NewDilu(c, sched.Options{}) },
	}
}

// Figure17 reproduces the 1,000-node / 3,200-instance simulation: GPU
// occupancy and SM/memory fragmentation per scheduler.
func Figure17(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure17", "Large-scale cluster simulation (Figure 17)")
	horizon := 3600 * sim.Second
	rng := sim.NewRNG(opts.Seed)
	mix := largeScaleMix(3200, horizon, rng)
	order := []string{"Exclusive", "INFless+-l", "Dilu"}
	scheds := figure17Schedulers()
	t := rep.AddTable(report.NewTable(
		"Figure 17. Occupancy and fragmentation at 3,200 instances",
		"scheduler", "peak GPUs", "SM frag", "mem frag", "GPU-hours", "cost vs Exclusive"))
	var exclusiveGPUh float64
	for _, name := range order {
		occ, stats, gpuSeconds := runLargeScale(scheds[name], mix, horizon, opts.Shards)
		opts.Meter.AddVirtual(horizon)
		gpuH := gpuSeconds / 3600
		if name == "Exclusive" {
			exclusiveGPUh = gpuH
		}
		t.AddRow(name, occ.Max(), stats.SMFrag, stats.MemFrag, gpuH, gpuH/maxf(exclusiveGPUh, 1e-9))
		rep.AddSeries(occ.Downsample(120 * sim.Second))
	}
	rep.AddNote("paper: Dilu cuts cost 30%% vs Exclusive and 23%% vs INFless+-l at 3,200 instances with the lowest fragmentation")
	return rep
}

// Figure18 reproduces the sensitivity analyses: the oversubscription
// coefficient γ (placement-level) and RCKM MaxTokens (GPU-level).
func Figure18(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure18", "Sensitivity analyses (Figure 18)")

	// (a) Oversubscription coefficient sweep on the 3,200-instance mix.
	horizon := 3600 * sim.Second
	mix := largeScaleMix(3200, horizon, sim.NewRNG(opts.Seed))
	a := rep.AddTable(report.NewTable(
		"Figure 18(a). Oversubscription coefficient γ",
		"gamma", "peak GPUs", "SM frag", "mem frag"))
	for _, gamma := range []float64{1.0, 1.25, 1.5, 2.0, 2.5} {
		g := gamma
		occ, stats, _ := runLargeScale(func(c *cluster.Cluster) sched.Scheduler {
			return sched.NewDilu(c, sched.Options{Gamma: g})
		}, mix, horizon, opts.Shards)
		opts.Meter.AddVirtual(horizon)
		a.AddRow(fmt.Sprintf("%.2f", gamma), occ.Max(), stats.SMFrag, stats.MemFrag)
	}

	// (b) MaxTokens sweep on a training-inference collocation.
	b := rep.AddTable(report.NewTable(
		"Figure 18(b). MaxTokens (× device capacity per 5 ms period)",
		"max tokens ×", "inference p95 ms", "inference SVR %", "train samples/s"))
	dur := opts.dur(60 * sim.Second)
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := core.Config{
			Nodes: 1, GPUsPerNode: 1, Policy: "Dilu", Seed: opts.Seed,
			RCKM:  rckm.Config{MaxTokens: mult * 5000},
			Meter: opts.Meter,
		}
		sys := core.MustSystem(cfg)
		tj, err := sys.DeployTraining("t", "BERT-base", core.TrainOpts{Workers: 1, Pin: []int{0}})
		if err != nil {
			panic(err)
		}
		f, err := sys.DeployInference("i", "RoBERTa-large", core.InferOpts{
			Pin: []int{0}, Arrivals: workload.Gamma{RPS: 40, CV: 3},
		})
		if err != nil {
			panic(err)
		}
		sys.Run(dur)
		b.AddRow(fmt.Sprintf("%.2f", mult), f.Rec.P95().Millis(),
			f.Rec.ViolationRate()*100, tj.Throughput(sys.Eng.Now()))
	}
	rep.AddNote("paper: fragmentation gains diminish beyond γ=1.5; conservative MaxTokens starves collocated tasks while excessive values cause interference")
	return rep
}

// ScheduleBatch places n instances of a representative mix through a
// fresh Dilu scheduler on a 1,000-node cluster, for the §5.3 scheduling-
// overhead measurement (the paper reports 1.12 s for 3,200 decisions).
func ScheduleBatch(n int, seed int64) (placed int) {
	return ScheduleBatchOn(1000, n, seed)
}

// ScheduleBatchOn is ScheduleBatch on a cluster of the given node count
// (4 GPUs per node) — the hyperscale placement benchmark varies the
// cluster an order of magnitude around the paper's 1,000 nodes to show
// placement cost tracks feasible candidates, not inventory size.
func ScheduleBatchOn(nodes, n int, seed int64) (placed int) {
	clu := cluster.New(cluster.Config{Nodes: nodes, GPUsPerNode: 4})
	return ScheduleBatchWith(sched.NewDilu(clu, sched.Options{}), n, seed)
}

// ScheduleBatchShardedOn is ScheduleBatchOn with the cluster partitioned
// into position-range shards and the Dilu candidate scans fanned out on
// a fork-join pool — the parallel placement kernel the sharded replay
// drivers and BenchmarkShardedHyperscale exercise. Placement results are
// bit-identical to ScheduleBatchOn at any shard count.
func ScheduleBatchShardedOn(nodes, n int, seed int64, shards int) (placed int) {
	clu := cluster.New(cluster.Config{Nodes: nodes, GPUsPerNode: 4, Shards: shards})
	s := sched.NewDilu(clu, sched.Options{})
	if shards > 1 {
		pool := sim.NewPool(0)
		defer pool.Close()
		s.SetParallel(pool)
	}
	return ScheduleBatchWith(s, n, seed)
}

// ScheduleBatchWith replays the §5.5 instance mix through an arbitrary
// scheduler (the cmd/dilu-sched tool).
func ScheduleBatchWith(s sched.Scheduler, n int, seed int64) (placed int) {
	mix := largeScaleMix(n, 3600*sim.Second, sim.NewRNG(seed))
	for _, inst := range mix {
		if _, err := s.Schedule(sched.Request{
			Func: inst.fn, Profile: inst.profile,
			Instances: inst.workers, GPUsPerInstance: inst.stages,
		}); err == nil {
			placed++
		}
	}
	return placed
}

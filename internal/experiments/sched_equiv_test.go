package experiments

import (
	"fmt"
	"slices"
	"testing"

	"dilu/internal/cluster"
	"dilu/internal/profiler"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// This file is a differential guard for the scheduler's incremental
// indexes: oldDilu, oldStatic and oldExclusive reimplement the three
// schedulers with the pre-index full-scan logic (literal inventory
// scans, per-call Funcs() maps, all-inactive candidate lists), and the
// tests replay the §5.5 large-scale mix through both implementations,
// requiring identical GPU choices decision by decision. It caught a
// duplicate free-heap entry during the PR-2 refactor; keep it in sync
// with any future selection-semantics change.
//
// Since the heterogeneity work the references carry the capacity-
// normalized formulas (feasibility against Ω·Capacity, scores and free
// shares over ΣReq/Capacity, schedulability guards) — bit-identical to
// the pre-capacity expressions when every Capacity is 1.0 — and the
// replay runs in three fleets: the homogeneous original, a 70/30
// big/small mix, and a homogeneous fleet under fail/drain/join churn.

// oldDilu replays Algorithm 1 with the pre-index full-scan logic.
type oldDilu struct {
	opts sched.Options
	clu  *cluster.Cluster
	seq  int
}

func (s *oldDilu) Name() string              { return "old" }
func (s *oldDilu) Cluster() *cluster.Cluster { return s.clu }

func (s *oldDilu) activeGPUs() []*cluster.GPU {
	var out []*cluster.GPU
	for _, g := range s.clu.GPUs() {
		if g.Active() {
			out = append(out, g)
		}
	}
	return out
}

func (s *oldDilu) Schedule(req sched.Request) ([]sched.Decision, error) {
	if req.Instances <= 0 {
		req.Instances = 1
	}
	stages := req.GPUsPerInstance
	if stages <= 0 {
		stages = 1
	}
	var out []sched.Decision
	for k := 0; k < req.Instances; k++ {
		var d sched.Decision
		var err error
		if stages > 1 {
			d, err = s.placeMultiGPU(req, stages)
		} else {
			d, err = s.placeSingle(req)
		}
		if err != nil {
			for _, prev := range out {
				prev.Release()
			}
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func (s *oldDilu) nextID(fn string) string {
	s.seq++
	return fmt.Sprintf("%s-%d", fn, s.seq)
}

func (s *oldDilu) placeSingle(req sched.Request) (sched.Decision, error) {
	p := req.Profile
	var gpu *cluster.GPU
	if !s.opts.DisableAffinity {
		gpu = s.selectOptGPU(s.affinityGPUs(req.Func), p, req.Func)
	}
	if gpu == nil {
		gpu = s.selectOptGPU(s.activeGPUs(), p, req.Func)
	}
	if gpu == nil {
		gpu = s.freshGPU(p)
	}
	if gpu == nil {
		return sched.Decision{}, sched.ErrNoCapacity
	}
	pl := &cluster.Placement{
		Instance: s.nextID(req.Func), Func: req.Func,
		Req: p.SMReq, Lim: p.SMLim, MemMB: p.MemMB,
	}
	if err := gpu.Place(pl); err != nil {
		return sched.Decision{}, err
	}
	return sched.Decision{Instance: pl.Instance, Func: req.Func,
		GPUs: []*cluster.GPU{gpu}, Placements: []*cluster.Placement{pl}}, nil
}

func shardProfileOld(p profiler.Profile, stages int) profiler.Profile {
	if stages <= 1 {
		return p
	}
	n := float64(stages)
	p.SMReq /= n
	p.SMLim /= n
	p.MemMB /= n
	return p
}

// moreFreeRef is the reference normalized free-memory comparison
// (deliberately re-derived rather than shared with the scheduler).
func moreFreeRef(ga *cluster.GPU, freeA float64, gb *cluster.GPU, freeB float64) bool {
	if ga.MemCapMB == gb.MemCapMB {
		return freeA > freeB
	}
	return freeA*gb.MemCapMB > freeB*ga.MemCapMB
}

func (s *oldDilu) placeMultiGPU(req sched.Request, stages int) (sched.Decision, error) {
	p := shardProfileOld(req.Profile, stages)
	type cand struct {
		g    *cluster.GPU
		free float64
	}
	var cands []cand
	for _, g := range s.clu.GPUs() {
		if !g.Schedulable() {
			continue
		}
		if g.SumReq+p.SMReq > s.opts.Omega*g.Capacity+1e-9 {
			continue
		}
		if g.SumLim+p.SMLim > s.opts.Gamma*g.Capacity+1e-9 {
			continue
		}
		if g.MemUsedMB+p.MemMB > g.MemCapMB {
			continue
		}
		cands = append(cands, cand{g, g.MemCapMB - g.MemUsedMB})
	}
	if len(cands) < stages {
		return sched.Decision{}, sched.ErrNoCapacity
	}
	for i := 0; i < stages; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if moreFreeRef(cands[j].g, cands[j].free, cands[best].g, cands[best].free) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	id := s.nextID(req.Func)
	d := sched.Decision{Instance: id, Func: req.Func}
	for i := 0; i < stages; i++ {
		pl := &cluster.Placement{
			Instance: fmt.Sprintf("%s/s%d", id, i), Func: req.Func,
			Req: p.SMReq, Lim: p.SMLim, MemMB: p.MemMB,
		}
		if err := cands[i].g.Place(pl); err != nil {
			d.Release()
			return sched.Decision{}, err
		}
		d.GPUs = append(d.GPUs, cands[i].g)
		d.Placements = append(d.Placements, pl)
	}
	return d, nil
}

func (s *oldDilu) affinityGPUs(fn string) []*cluster.GPU {
	partners := make(map[string]bool)
	for _, g := range s.activeGPUs() {
		if !g.HostsFunc(fn) {
			continue
		}
		for f := range g.Funcs() {
			if f != fn {
				partners[f] = true
			}
		}
	}
	if len(partners) == 0 {
		return nil
	}
	var out []*cluster.GPU
	for _, g := range s.activeGPUs() {
		if g.HostsFunc(fn) {
			continue
		}
		for f := range g.Funcs() {
			if partners[f] {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

func (s *oldDilu) selectOptGPU(cands []*cluster.GPU, p profiler.Profile, fn string) *cluster.GPU {
	bestScore := 1e18
	var best *cluster.GPU
	for _, g := range cands {
		if !g.Schedulable() {
			continue
		}
		newReq := g.SumReq + p.SMReq
		newLim := g.SumLim + p.SMLim
		newMem := g.MemUsedMB + p.MemMB
		if newReq > s.opts.Omega*g.Capacity+1e-9 || newLim > s.opts.Gamma*g.Capacity+1e-9 || newMem > g.MemCapMB {
			continue
		}
		if g.HostsFunc(fn) && p.Role == profiler.RoleTraining {
			continue
		}
		score := s.opts.Alpha * (1 - newReq/g.Capacity)
		if !s.opts.DisableComplementary {
			score += s.opts.Beta * (1 - newMem/g.MemCapMB)
		}
		if g.HostsFunc(fn) {
			score += 0.5
		}
		if score < bestScore {
			bestScore = score
			best = g
		}
	}
	return best
}

func (s *oldDilu) freshGPU(p profiler.Profile) *cluster.GPU {
	minCap := p.SMReq / s.opts.Omega
	if lc := p.SMLim / s.opts.Gamma; lc > minCap {
		minCap = lc
	}
	for _, g := range s.clu.GPUs() {
		if !g.Active() && g.Schedulable() && minCap <= g.Capacity+1e-9 && p.MemMB <= g.MemCapMB {
			return g
		}
	}
	return nil
}

// oldStatic replays the Static (INFless+/FaST-GS+) best-fit with the
// pre-index full-scan logic: every pick walks the whole active list.
type oldStatic struct {
	useLimit bool
	clu      *cluster.Cluster
	seq      int
}

func (s *oldStatic) Name() string              { return "old-static" }
func (s *oldStatic) Cluster() *cluster.Cluster { return s.clu }

func (s *oldStatic) quota(p profiler.Profile) float64 {
	if s.useLimit {
		return p.SMLim
	}
	return p.SMReq
}

func (s *oldStatic) firstInactiveFit(minCap, memMB float64) *cluster.GPU {
	for _, g := range s.clu.GPUs() {
		if !g.Active() && g.Schedulable() && minCap <= g.Capacity+1e-9 && memMB <= g.MemCapMB {
			return g
		}
	}
	return nil
}

func (s *oldStatic) pick(q, memMB float64, wholeGPU bool) *cluster.GPU {
	if wholeGPU {
		return s.firstInactiveFit(q, memMB)
	}
	var best *cluster.GPU
	bestFree := 2.0
	for _, g := range s.clu.GPUs() {
		if !g.Active() || !g.Schedulable() {
			continue
		}
		if g.SumReq+q > g.Capacity+1e-9 || g.MemUsedMB+memMB > g.MemCapMB {
			continue
		}
		free := 1 - g.Util()
		if free < bestFree {
			bestFree = free
			best = g
		}
	}
	if best != nil {
		return best
	}
	return s.firstInactiveFit(q, memMB)
}

func (s *oldStatic) Schedule(req sched.Request) ([]sched.Decision, error) {
	if req.Instances <= 0 {
		req.Instances = 1
	}
	stages := req.GPUsPerInstance
	if stages <= 0 {
		stages = 1
	}
	prof := shardProfileOld(req.Profile, stages)
	q := s.quota(prof)
	var out []sched.Decision
	fail := func(err error) ([]sched.Decision, error) {
		for _, prev := range out {
			prev.Release()
		}
		return nil, err
	}
	for k := 0; k < req.Instances; k++ {
		s.seq++
		d := sched.Decision{Instance: fmt.Sprintf("%s-%d", req.Func, s.seq), Func: req.Func}
		for i := 0; i < stages; i++ {
			g := s.pick(q, prof.MemMB, stages > 1)
			if g == nil {
				d.Release()
				return fail(sched.ErrNoCapacity)
			}
			pl := &cluster.Placement{
				Instance: fmt.Sprintf("%s/s%d", d.Instance, i), Func: req.Func,
				Req: q, Lim: q, MemMB: prof.MemMB,
				TrueReq: prof.SMReq,
			}
			if err := g.Place(pl); err != nil {
				d.Release()
				return fail(err)
			}
			d.GPUs = append(d.GPUs, g)
			d.Placements = append(d.Placements, pl)
		}
		out = append(out, d)
	}
	return out, nil
}

// oldExclusive replays the Exclusive baseline with a literal first-
// inactive inventory scan instead of the free-GPU heap.
type oldExclusive struct {
	clu *cluster.Cluster
	seq int
}

func (s *oldExclusive) Name() string              { return "old-exclusive" }
func (s *oldExclusive) Cluster() *cluster.Cluster { return s.clu }

func (s *oldExclusive) Schedule(req sched.Request) ([]sched.Decision, error) {
	if req.Instances <= 0 {
		req.Instances = 1
	}
	stages := req.GPUsPerInstance
	if stages <= 0 {
		stages = 1
	}
	var out []sched.Decision
	for k := 0; k < req.Instances; k++ {
		s.seq++
		d := sched.Decision{Instance: fmt.Sprintf("%s-%d", req.Func, s.seq), Func: req.Func}
		for i := 0; i < stages; i++ {
			var g *cluster.GPU
			for _, cand := range s.clu.GPUs() {
				if !cand.Active() && cand.Schedulable() &&
					req.Profile.MemMB/float64(stages) <= cand.MemCapMB {
					g = cand
					break
				}
			}
			if g == nil {
				d.Release()
				for _, prev := range out {
					prev.Release()
				}
				return nil, sched.ErrNoCapacity
			}
			pl := &cluster.Placement{
				Instance: fmt.Sprintf("%s/s%d", d.Instance, i), Func: req.Func,
				Req: g.Capacity, Lim: g.Capacity, MemMB: req.Profile.MemMB / float64(stages),
				TrueReq: req.Profile.SMReq / float64(stages),
			}
			if err := g.Place(pl); err != nil {
				d.Release()
				return nil, err
			}
			d.GPUs = append(d.GPUs, g)
			d.Placements = append(d.Placements, pl)
		}
		out = append(out, d)
	}
	return out, nil
}

func optsWithDefaults() sched.Options {
	return sched.Options{Omega: 1.0, Gamma: 1.5, Alpha: 0.5, Beta: 0.5}
}

// replayMixEquiv replays the §5.5 arrival/departure sequence through the
// indexed scheduler and its full-scan reference on twin clusters,
// requiring the same GPU choice (or the same failure) for every
// decision. Departures release both sides, so the differential coverage
// includes the lazily-compacted index states after removals.
func replayMixEquiv(t *testing.T, sNew, sOld sched.Scheduler) {
	t.Helper()
	replayMixEquivChurn(t, sNew, sOld, false)
}

// replayMixEquivChurn is replayMixEquiv with an optional deterministic
// fail/drain/join storm interleaved into the replay (identically on
// both clusters): every 59th event either retires the next node
// (alternating abrupt failure and drain) or rejoins the oldest retired
// one, so the differential coverage includes evicted placements, free-
// heap entries discarded for retired slots, and post-join re-offers.
func replayMixEquivChurn(t *testing.T, sNew, sOld sched.Scheduler, churn bool) {
	t.Helper()
	horizon := 3600 * sim.Second
	mix := largeScaleMix(3200, horizon, sim.NewRNG(1))
	var retired []int
	churnStep := 0
	applyChurn := func() {
		cluNew, cluOld := sNew.Cluster(), sOld.Cluster()
		nodes := len(cluNew.Nodes)
		churnStep++
		if len(retired) > 2 {
			node := retired[0]
			retired = retired[1:]
			cluNew.JoinNode(cluNew.Nodes[node])
			cluOld.JoinNode(cluOld.Nodes[node])
			return
		}
		node := (churnStep * 131) % nodes
		if churnStep%2 == 0 {
			cluNew.FailNode(cluNew.Nodes[node])
			cluOld.FailNode(cluOld.Nodes[node])
		} else {
			cluNew.DrainNode(cluNew.Nodes[node])
			cluOld.DrainNode(cluOld.Nodes[node])
		}
		retired = append(retired, node)
	}

	var events []lsEvent
	for i, inst := range mix {
		events = append(events, lsEvent{inst.arrive, true, i})
		if inst.depart < horizon {
			events = append(events, lsEvent{inst.depart, false, i})
		}
	}
	slices.SortFunc(events, func(a, b lsEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	placedNew := map[int][]sched.Decision{}
	placedOld := map[int][]sched.Decision{}
	failures := 0
	for n, ev := range events {
		if churn && n%59 == 0 {
			applyChurn()
		}
		inst := mix[ev.idx]
		if ev.arrive {
			req := sched.Request{Func: inst.fn, Profile: inst.profile,
				Instances: inst.workers, GPUsPerInstance: inst.stages}
			dn, errN := sNew.Schedule(req)
			do, errO := sOld.Schedule(req)
			if (errN == nil) != (errO == nil) {
				t.Fatalf("event %d (%s): err mismatch new=%v old=%v", n, inst.fn, errN, errO)
			}
			if errN == nil {
				for k := range dn {
					var gn, gi []string
					for _, g := range dn[k].GPUs {
						gn = append(gn, g.ID)
					}
					for _, g := range do[k].GPUs {
						gi = append(gi, g.ID)
					}
					if fmt.Sprint(gn) != fmt.Sprint(gi) {
						t.Fatalf("event %d (%s stages=%d workers=%d): GPU mismatch\nnew=%v\nold=%v",
							n, inst.fn, inst.stages, inst.workers, gn, gi)
					}
				}
				placedNew[ev.idx] = dn
				placedOld[ev.idx] = do
			} else {
				failures++
			}
		} else {
			for _, d := range placedNew[ev.idx] {
				d.Release()
			}
			for _, d := range placedOld[ev.idx] {
				d.Release()
			}
			delete(placedNew, ev.idx)
			delete(placedOld, ev.idx)
		}
	}
	if len(placedNew) == 0 {
		t.Fatal("degenerate replay: nothing stayed placed")
	}
	t.Logf("replayed %d events, %d capacity failures (matched on both sides)", len(events), failures)
}

func TestDiluSchedulerIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	cluOld := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	replayMixEquiv(t,
		sched.NewDilu(cluNew, sched.Options{}),
		&oldDilu{opts: optsWithDefaults(), clu: cluOld})
}

func TestStaticSchedulerIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	cluOld := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	replayMixEquiv(t,
		sched.NewINFlessL(cluNew),
		&oldStatic{useLimit: true, clu: cluOld})
}

func TestStaticRequestQuotaIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	cluOld := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	replayMixEquiv(t,
		sched.NewINFlessR(cluNew),
		&oldStatic{useLimit: false, clu: cluOld})
}

func TestExclusiveSchedulerIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	cluOld := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	replayMixEquiv(t,
		sched.NewExclusive(cluNew),
		&oldExclusive{clu: cluOld})
}

// heteroEquivConfig is the mixed-fleet topology of the heterogeneous
// differential replays — the same 70/30 class split the hetero_mix
// driver runs, at a size where capacity failures exercise the fallback
// paths on both implementations.
func heteroEquivConfig() cluster.Config {
	return cluster.Config{Nodes: 1000, GPUsPerNode: 4, Classes: heteroClasses()}
}

func TestDiluHeteroIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(heteroEquivConfig())
	cluOld := cluster.New(heteroEquivConfig())
	replayMixEquiv(t,
		sched.NewDilu(cluNew, sched.Options{}),
		&oldDilu{opts: optsWithDefaults(), clu: cluOld})
}

func TestStaticHeteroIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(heteroEquivConfig())
	cluOld := cluster.New(heteroEquivConfig())
	replayMixEquiv(t,
		sched.NewINFlessL(cluNew),
		&oldStatic{useLimit: true, clu: cluOld})
}

func TestExclusiveHeteroIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(heteroEquivConfig())
	cluOld := cluster.New(heteroEquivConfig())
	replayMixEquiv(t,
		sched.NewExclusive(cluNew),
		&oldExclusive{clu: cluOld})
}

func TestDiluChurnIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	cluOld := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	replayMixEquivChurn(t,
		sched.NewDilu(cluNew, sched.Options{}),
		&oldDilu{opts: optsWithDefaults(), clu: cluOld}, true)
}

func TestStaticChurnIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	cluOld := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
	replayMixEquivChurn(t,
		sched.NewINFlessL(cluNew),
		&oldStatic{useLimit: true, clu: cluOld}, true)
}

func TestDiluHeteroChurnIndexEquivalence(t *testing.T) {
	cluNew := cluster.New(heteroEquivConfig())
	cluOld := cluster.New(heteroEquivConfig())
	replayMixEquivChurn(t,
		sched.NewDilu(cluNew, sched.Options{}),
		&oldDilu{opts: optsWithDefaults(), clu: cluOld}, true)
}

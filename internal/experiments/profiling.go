package experiments

import (
	"fmt"

	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
)

// table2Models are the four inference models (a)-(d) of Table 2/Figure 4.
var table2Models = []string{"ResNet152", "RoBERTa-large", "GPT2-large", "LLaMA2-7B"}

// Table2 reproduces the profiling-efficiency comparison: search trial
// counts per model for Traversal, INFless, GPUlet and Dilu's HGSS.
func Table2(opts Options) *report.Report {
	rep := report.New("table2", "Inference profiling efficiency (Table 2)")
	t := rep.AddTable(report.NewTable(
		"Table 2. Profiling iterations per model (~30 s per trial)",
		"method", "ResNet152", "RoBERTa-large", "GPT2-large", "LLaMA2-7B"))
	methods := []string{"Traversal", "INFless", "GPUlet", "Dilu"}
	for _, m := range methods {
		row := []interface{}{m}
		for _, name := range table2Models {
			r, err := profiler.SearchByName(m, model.ByName(name))
			if err != nil {
				panic(err)
			}
			row = append(row, r.Trials)
		}
		t.AddRow(row...)
	}
	// Speedups relative to Dilu, mirroring the paper's 0.7-1.7× vs
	// traversal and 1-3.3× vs GPUlet claims.
	s := rep.AddTable(report.NewTable(
		"Table 2 (derived). Search speedup of Dilu",
		"model", "vs Traversal", "vs GPUlet", "vs INFless"))
	for _, name := range table2Models {
		spec := model.ByName(name)
		d := profiler.HGSS(spec).Trials
		s.AddRow(name,
			float64(profiler.Traversal(spec).Trials)/float64(d),
			float64(profiler.GPUlet(spec).Trials)/float64(d),
			float64(profiler.INFless(spec).Trials)/float64(d))
	}
	rep.AddNote("paper: Dilu 8/6/6/9 trials; Traversal 60; GPUlet 16; INFless 20-40")
	return rep
}

// Figure4 reproduces the throughput-efficacy surfaces with HGSS stars:
// for each model the feasible/blocked cell counts, the per-IBS best TE
// row (the surface ridge), and the starred configuration.
func Figure4(opts Options) *report.Report {
	rep := report.New("figure4", "TE surfaces and HGSS stars (Figure 4)")
	stars := rep.AddTable(report.NewTable(
		"Figure 4. HGSS stars <IBS, SMR> and surface shape",
		"model", "star IBS", "star SMR", "star TE", "feasible cells", "blocked cells", "trials"))
	for _, name := range table2Models {
		spec := model.ByName(name)
		pts := profiler.TESurface(spec)
		res := profiler.HGSS(spec)
		feasible, blocked := 0, 0
		for _, p := range pts {
			if p.Feasible {
				feasible++
			} else {
				blocked++
			}
		}
		stars.AddRow(name, res.IBS, res.Request, res.TE, feasible, blocked, res.Trials)

		ridge := rep.AddTable(report.NewTable(
			fmt.Sprintf("Figure 4 ridge: %s best TE per IBS (starred row = HGSS choice)", name),
			"IBS", "best SMR", "TE", "feasible"))
		for ibs := 1; ibs <= model.MaxIBS; ibs *= 2 {
			bestTE, bestSMR, any := -1.0, 0.0, false
			for _, p := range pts {
				if p.IBS != ibs || !p.Feasible {
					continue
				}
				any = true
				if p.TE > bestTE {
					bestTE, bestSMR = p.TE, p.SMR
				}
			}
			if any {
				mark := ""
				if ibs == res.IBS {
					mark = "*"
				}
				ridge.AddRow(fmt.Sprintf("%d%s", ibs, mark), bestSMR, bestTE, "yes")
			} else {
				ridge.AddRow(fmt.Sprintf("%d", ibs), "-", "-", "no (blocked)")
			}
		}
	}
	rep.AddNote("stars sit at interior <IBS,SMR> cells; blocked cells are SLO violations (red crosses)")
	return rep
}

package experiments

import (
	"dilu/internal/core"
	"dilu/internal/rckm"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// ControllerAblation quantifies the DESIGN.md §4.6 interpretation choices
// against naive readings of Algorithm 2 on a stressful collocation: a
// RoBERTa-large inference function under a fluctuating Gamma workload
// sharing one GPU with a BERT-base training job. It is not a paper
// artifact; it documents why the reproduction's controller deviates from
// the literal pseudocode.
func ControllerAblation(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("ablation-controller",
		"RCKM controller ablations (DESIGN.md §4.6, not a paper artifact)")
	dur := opts.dur(120 * sim.Second)
	variants := []struct {
		label string
		cfg   rckm.Config
	}{
		{"stabilized (default)", rckm.Config{}},
		{"no hysteresis", rckm.Config{NoHysteresis: true}},
		{"no pressure hold", rckm.Config{NoPressureHold: true}},
		{"no anti-windup", rckm.Config{NoAntiWindup: true}},
		{"literal Algorithm 2", rckm.Config{NoHysteresis: true, NoPressureHold: true, NoAntiWindup: true}},
	}
	t := rep.AddTable(report.NewTable(
		"Controller ablation: RoBERTa-large@40 CV=3 + BERT-base training, one GPU",
		"controller", "inf p95 ms", "inf SVR %", "train samples/s", "train % of request-rate"))
	for _, v := range variants {
		sys := core.MustSystem(core.Config{
			Nodes: 1, GPUsPerNode: 1, Policy: "Dilu", Seed: opts.Seed, RCKM: v.cfg,
			Meter: opts.Meter,
		})
		tj, err := sys.DeployTraining("t", "BERT-base", core.TrainOpts{Workers: 1, Pin: []int{0}})
		if err != nil {
			panic(err)
		}
		f, err := sys.DeployInference("i", "RoBERTa-large", core.InferOpts{
			Pin:      []int{0},
			Arrivals: workload.Gamma{RPS: 40, CV: 3},
		})
		if err != nil {
			panic(err)
		}
		sys.Run(dur)
		thr := tj.Throughput(sys.Eng.Now())
		atReq := tj.Spec.TrainThroughput(tj.Profile.SMReq)
		t.AddRow(v.label, f.Rec.P95().Millis(), f.Rec.ViolationRate()*100,
			thr, 100*thr/atReq)
	}
	rep.AddNote("anti-windup protects training from permanent decay; pressure hold protects inference during backlogs; hysteresis damps grant oscillation")
	return rep
}

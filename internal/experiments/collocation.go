package experiments

import (
	"fmt"

	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// collocCase is one training-inference collocation scenario of Figure 7.
// Pairings follow the paper's model set; EXPERIMENTS.md documents them.
type collocCase struct {
	label      string
	infModel   string
	infRPS     float64
	infStages  int // >1 shards the inference over GPU fragments
	trainModel string
	trainWork  int // training workers
	gpus       int // GPUs shared by the collocated deployment
}

var figure7Cases = []collocCase{
	{label: "VGG19-inf + ResNet152-train", infModel: "VGG19", infRPS: 35, infStages: 1, trainModel: "ResNet152", trainWork: 1, gpus: 1},
	{label: "RoBERTa-inf + BERT-train", infModel: "RoBERTa-large", infRPS: 20, infStages: 1, trainModel: "BERT-base", trainWork: 1, gpus: 1},
	{label: "GPT2-inf + RoBERTa-train", infModel: "GPT2-large", infRPS: 10, infStages: 1, trainModel: "RoBERTa-large", trainWork: 1, gpus: 1},
	{label: "LLaMA2-inf(4frag) + BERT-train", infModel: "LLaMA2-7B", infRPS: 3, infStages: 4, trainModel: "BERT-base", trainWork: 4, gpus: 4},
}

// runColloc executes one collocation case under one baseline and returns
// the inference recorder, training throughput, and GPUs used.
func runColloc(c collocCase, baseline string, arr workload.Arrivals, dur sim.Duration, opts Options) (rec *metrics.LatencyRecorder, trainThr float64, gpus int) {
	pin := make([]int, c.gpus)
	for i := range pin {
		pin[i] = i
	}
	if baseline == "Exclusive" {
		// Inference and training on dedicated GPUs.
		sys := systemFor("Exclusive", 1, c.gpus+c.trainWork, opts)
		tj, err := sys.DeployTraining(c.trainModel+"-t", c.trainModel, core.TrainOpts{
			Workers: c.trainWork, Pin: seqInts(c.gpus, c.trainWork),
		})
		if err != nil {
			panic(err)
		}
		stages := 1 // exclusive LLM serving gets a whole GPU
		f, err := sys.DeployInference(c.infModel+"-i", c.infModel, core.InferOpts{
			Stages: stages, Pin: pinFor(stages, 0), Arrivals: arr,
		})
		if err != nil {
			panic(err)
		}
		sys.Run(dur)
		return f.Rec, tj.Throughput(sys.Eng.Now()), sys.Clu.OccupiedCount()
	}
	sys := systemFor(baseline, 1, c.gpus, opts)
	tj, err := sys.DeployTraining(c.trainModel+"-t", c.trainModel, core.TrainOpts{
		Workers: c.trainWork, Pin: seqInts(0, c.trainWork),
	})
	if err != nil {
		panic(err)
	}
	f, err := sys.DeployInference(c.infModel+"-i", c.infModel, core.InferOpts{
		Stages: c.infStages, Pin: pin, Arrivals: arr,
	})
	if err != nil {
		panic(err)
	}
	sys.Run(dur)
	return f.Rec, tj.Throughput(sys.Eng.Now()), sys.Clu.OccupiedCount()
}

func seqInts(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

func pinFor(stages, first int) []int { return seqInts(first, stages) }

// Figure7 reproduces training-inference collocation performance: p50/p95
// inference latency and collocated training throughput per baseline.
func Figure7(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure7", "Training-inference collocation (Figure 7)")
	dur := opts.dur(90 * sim.Second)
	for _, c := range figure7Cases {
		lat := rep.AddTable(report.NewTable(
			fmt.Sprintf("Figure 7(a). %s — inference latency (ms)", c.label),
			"baseline", "p50", "p95", "SVR %", "GPUs"))
		thr := rep.AddTable(report.NewTable(
			fmt.Sprintf("Figure 7(b). %s — training throughput (normalized to Exclusive)", c.label),
			"baseline", "samples/s", "normalized"))
		var exclThr float64
		for _, b := range gpuBaselines {
			arr := workload.Poisson{RPS: c.infRPS}
			rec, tthr, gpus := runColloc(c, b, arr, dur, opts)
			if b == "Exclusive" {
				exclThr = tthr
			}
			lat.AddRow(b, rec.P50().Millis(), rec.P95().Millis(), rec.ViolationRate()*100, gpus)
			thr.AddRow(b, tthr, tthr/maxf(exclThr, 1e-9))
		}
	}
	rep.AddNote("paper: Dilu ≈1.24×/1.28× Exclusive p50/p95 with 97.2%% training throughput on half the GPUs; TGS nearly stops training; MPS-r inflates tails")
	return rep
}

// figure8Cases are inference-inference pairs.
type infPair struct {
	label    string
	a, b     string
	rpsA     float64 // Poisson rates (Fig. 8(b))
	rpsB     float64
	burstA   float64 // bursty base rates (Fig. 8(a))
	burstB   float64
	scale    float64 // burst scale factor
	stages   int
	gpuCount int
}

var figure8Cases = []infPair{
	{label: "ResNet152 + VGG19", a: "ResNet152", b: "VGG19", rpsA: 20, rpsB: 20, burstA: 10, burstB: 10, scale: 4, stages: 1, gpuCount: 1},
	{label: "RoBERTa + BERT", a: "RoBERTa-large", b: "BERT-base", rpsA: 30, rpsB: 30, burstA: 12, burstB: 12, scale: 6, stages: 1, gpuCount: 1},
	{label: "GPT2 + RoBERTa", a: "GPT2-large", b: "RoBERTa-large", rpsA: 20, rpsB: 20, burstA: 8, burstB: 8, scale: 6, stages: 1, gpuCount: 1},
	{label: "LLaMA2 + ChatGLM3 (4frag)", a: "LLaMA2-7B", b: "ChatGLM3-6B", rpsA: 3, rpsB: 3, burstA: 1, burstB: 1, scale: 4, stages: 4, gpuCount: 4},
}

func runInfPair(c infPair, baseline string, arrA, arrB workload.Arrivals, dur sim.Duration, opts Options) (ra, rb *metrics.LatencyRecorder) {
	if baseline == "Exclusive" {
		sys := systemFor("Exclusive", 1, 2*c.gpuCount, opts)
		fa, err := sys.DeployInference(c.a+"-a", c.a, core.InferOpts{Stages: 1, Pin: []int{0}, Arrivals: arrA})
		if err != nil {
			panic(err)
		}
		fb, err := sys.DeployInference(c.b+"-b", c.b, core.InferOpts{Stages: 1, Pin: []int{c.gpuCount}, Arrivals: arrB})
		if err != nil {
			panic(err)
		}
		sys.Run(dur)
		return fa.Rec, fb.Rec
	}
	sys := systemFor(baseline, 1, c.gpuCount, opts)
	pin := seqInts(0, c.gpuCount)
	stA, stB := c.stages, c.stages
	fa, err := sys.DeployInference(c.a+"-a", c.a, core.InferOpts{Stages: stA, Pin: pin[:boundStages(stA, c.gpuCount)], Arrivals: arrA})
	if err != nil {
		panic(err)
	}
	fb, err := sys.DeployInference(c.b+"-b", c.b, core.InferOpts{Stages: stB, Pin: pin[:boundStages(stB, c.gpuCount)], Arrivals: arrB})
	if err != nil {
		panic(err)
	}
	sys.Run(dur)
	return fa.Rec, fb.Rec
}

func boundStages(stages, gpus int) int {
	if stages > gpus {
		return gpus
	}
	return stages
}

// Figure8 reproduces inference-inference collocation under bursty and
// Poisson workloads.
func Figure8(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure8", "Inference-inference collocation (Figure 8)")
	dur := opts.dur(120 * sim.Second)
	for _, c := range figure8Cases {
		burst := rep.AddTable(report.NewTable(
			fmt.Sprintf("Figure 8(a). %s — bursty (scale %.0f), mean of pair (ms)", c.label, c.scale),
			"baseline", "p50", "p95", "SVR %"))
		pois := rep.AddTable(report.NewTable(
			fmt.Sprintf("Figure 8(b). %s — Poisson, mean of pair (ms)", c.label),
			"baseline", "p50", "p95", "SVR %"))
		for _, b := range gpuBaselines {
			ba := workload.Bursty{BaseRPS: c.burstA, Scale: c.scale, BurstDur: 15 * sim.Second, Quiet: 45 * sim.Second}
			bb := workload.Bursty{BaseRPS: c.burstB, Scale: c.scale, BurstDur: 15 * sim.Second, Quiet: 45 * sim.Second}
			ra, rb := runInfPair(c, b, ba, bb, dur, opts)
			burst.AddRow(b,
				(ra.P50().Millis()+rb.P50().Millis())/2,
				(ra.P95().Millis()+rb.P95().Millis())/2,
				(ra.ViolationRate()+rb.ViolationRate())/2*100)

			ra, rb = runInfPair(c, b, workload.Poisson{RPS: c.rpsA}, workload.Poisson{RPS: c.rpsB}, dur, opts)
			pois.AddRow(b,
				(ra.P50().Millis()+rb.P50().Millis())/2,
				(ra.P95().Millis()+rb.P95().Millis())/2,
				(ra.ViolationRate()+rb.ViolationRate())/2*100)
		}
	}
	rep.AddNote("paper: TGS p50/p95 reach 442×/405× Dilu (low-priority starvation); Dilu cuts mean p95 ~25%% vs MPS-l under bursts")
	return rep
}

// Figure9 reproduces training-training collocation: aggregate normalized
// throughput per GPU versus Exclusive.
func Figure9(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure9", "Training-training collocation (Figure 9)")
	pairs := [][2]string{
		{"BERT-base", "RoBERTa-large"},
		{"ResNet152", "VGG19"},
		{"GPT2-large", "BERT-base"},
		{"RoBERTa-large", "VGG19"},
	}
	dur := opts.dur(60 * sim.Second)
	t := rep.AddTable(report.NewTable(
		"Figure 9. Aggregate normalized training throughput per GPU (Exclusive = 1.0)",
		"pair", "Dilu", "MPS-l", "MPS-r", "TGS"))
	for _, pair := range pairs {
		row := []interface{}{pair[0] + " + " + pair[1]}
		for _, b := range []string{"Dilu", "MPS-l", "MPS-r", "TGS"} {
			sys := systemFor(b, 1, 1, opts)
			a, err := sys.DeployTraining("a", pair[0], core.TrainOpts{Workers: 1, Pin: []int{0}})
			if err != nil {
				panic(err)
			}
			bj, err := sys.DeployTraining("b", pair[1], core.TrainOpts{Workers: 1, Pin: []int{0}})
			if err != nil {
				panic(err)
			}
			sys.Run(dur)
			// Normalized per GPU: the collocated pair uses 1 GPU, the
			// Exclusive reference 2.
			agg := a.Throughput(sys.Eng.Now())/a.Spec.TrainThroughput(1) +
				bj.Throughput(sys.Eng.Now())/bj.Spec.TrainThroughput(1)
			row = append(row, agg) // exclusive per-GPU = (1+1)/2 = 1.0
		}
		t.AddRow(row...)
	}
	rep.AddNote("paper: Dilu averages 176%% of Exclusive's per-GPU aggregate; 10-14%% over MPS-l, 3-14%% over MPS-r")
	return rep
}

// Figure10 reproduces the fast-adaptivity study: p95 latency across
// Gamma-distribution CVs for two collocation cases.
func Figure10(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure10", "Inference p95 under Gamma workloads (Figure 10)")
	cases := []struct {
		label      string
		infModel   string
		rps        float64
		trainModel string
	}{
		{"RoBERTa-large @64 + BERT-base train", "RoBERTa-large", 64, "BERT-base"},
		{"GPT2-large @48 + RoBERTa-large train", "GPT2-large", 48, "RoBERTa-large"},
	}
	dur := opts.dur(90 * sim.Second)
	baselines := []string{"Exclusive", "Dilu", "MPS-r", "MPS-l"}
	for _, c := range cases {
		t := rep.AddTable(report.NewTable(
			fmt.Sprintf("Figure 10. %s — p95 latency (ms) by CV", c.label),
			"CV", "Exclusive", "Dilu", "MPS-r", "MPS-l"))
		for _, cv := range []float64{0.001, 1, 2, 3, 4, 5, 6} {
			row := []interface{}{fmt.Sprintf("%g", cv)}
			for _, b := range baselines {
				arr := workload.Gamma{RPS: c.rps, CV: cv}
				var rec *metrics.LatencyRecorder
				if b == "Exclusive" {
					sys := systemFor("Exclusive", 1, 2, opts)
					_, err := sys.DeployTraining("t", c.trainModel, core.TrainOpts{Workers: 1, Pin: []int{1}})
					if err != nil {
						panic(err)
					}
					f, err := sys.DeployInference("i", c.infModel, core.InferOpts{Pin: []int{0}, Arrivals: arr})
					if err != nil {
						panic(err)
					}
					sys.Run(dur)
					rec = f.Rec
				} else {
					sys := systemFor(b, 1, 1, opts)
					_, err := sys.DeployTraining("t", c.trainModel, core.TrainOpts{Workers: 1, Pin: []int{0}})
					if err != nil {
						panic(err)
					}
					f, err := sys.DeployInference("i", c.infModel, core.InferOpts{Pin: []int{0}, Arrivals: arr})
					if err != nil {
						panic(err)
					}
					sys.Run(dur)
					rec = f.Rec
				}
				row = append(row, rec.P95().Millis())
			}
			t.AddRow(row...)
		}
	}
	rep.AddNote("paper: at CV=6, MPS-l and MPS-r p95 are 2.08× and 4.76× Dilu; Dilu stays within ~9%% of Exclusive")
	return rep
}

// Figure11 reproduces the vertical-scaling overhead study: managed vs
// unmanaged throughput/latency.
func Figure11(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure11", "Vertical scaling overhead (Figure 11)")
	dur := opts.dur(40 * sim.Second)
	a := rep.AddTable(report.NewTable(
		"Figure 11(a). Training throughput with RCKM management (normalized, full quota)",
		"model", "without Dilu", "with Dilu", "normalized"))
	full := 1.0
	for _, name := range []string{"BERT-base", "RoBERTa-large", "GPT2-large", "LLaMA2-7B"} {
		run := func(policy string) float64 {
			sys := systemFor(policy, 1, 1, opts)
			p := trainFullProfile(name)
			tj, err := sys.DeployTraining("t", name, core.TrainOpts{Workers: 1, Pin: []int{0}, Profile: &p})
			if err != nil {
				panic(err)
			}
			sys.Run(dur)
			return tj.Throughput(sys.Eng.Now())
		}
		without := run("Exclusive")
		with := run("Dilu")
		a.AddRow(name, without, with, with/maxf(without, 1e-9))
		_ = full
	}
	b := rep.AddTable(report.NewTable(
		"Figure 11(b). Inference latency vs managed instance count (normalized)",
		"# instances", "without Dilu", "with Dilu", "normalized"))
	for _, n := range []int{1, 2, 4, 8} {
		run := func(policy string) float64 {
			sys := systemFor(policy, 1, 1, opts)
			var first *core.Function
			for i := 0; i < n; i++ {
				// Equal shares isolate management overhead from quota
				// effects: both systems grant each instance 1/n.
				p := profiler.For(model.ByName("BERT-base"), profiler.RoleInference)
				p.SMReq, p.SMLim = 1/float64(n), 1/float64(n)
				f, err := sys.DeployInference(fmt.Sprintf("f%d", i), "BERT-base", core.InferOpts{
					Pin: []int{0}, Profile: &p,
					Arrivals: workload.Poisson{RPS: 2},
				})
				if err != nil {
					panic(err)
				}
				if first == nil {
					first = f
				}
			}
			sys.Run(dur)
			return first.Rec.Mean().Millis()
		}
		without := run("MPS-l")
		with := run("Dilu")
		b.AddRow(n, without, with, with/maxf(without, 1e-9))
	}
	rep.AddNote("paper: <1%% training loss, ~1.00 normalized inference latency (our substrate adds no interception cost; see DESIGN.md)")
	return rep
}

// trainFullProfile profiles a model and forces full quotas (overhead
// isolation: both systems grant the whole GPU).
func trainFullProfile(name string) profiler.Profile {
	p := profiler.For(model.ByName(name), profiler.RoleTraining)
	p.SMReq, p.SMLim = 1, 1
	return p
}

package experiments

import (
	"strconv"
	"testing"
)

// llmCell parses one numeric table cell.
func llmCell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", row[i], err)
	}
	return v
}

// TestLLMContinuousBatchBeatsRunToCompletion pins the driver's
// acceptance property: on the same arrivals, token mix, and KV budget,
// continuous batching admits joiners at step boundaries while
// run-to-completion holds them behind the draining batch — so the
// continuous arm must win on TTFT p95 and TTFT violations.
func TestLLMContinuousBatchBeatsRunToCompletion(t *testing.T) {
	rep := LLMContinuousBatch(testOpts())
	if rep.SLO == nil || rep.SLO.LLM == nil {
		t.Fatal("llm_continuous_batch must attach an SLO summary with an LLM block")
	}
	table := rep.Table("LLM batching: token-level SLO attainment")
	if table == nil || len(table.Rows) != 2 {
		t.Fatal("batching table wrong")
	}
	type arm struct{ requests, ttftP95, ttftViol float64 }
	arms := map[string]arm{}
	for _, row := range table.Rows {
		arms[row[0]] = arm{
			requests: llmCell(t, row, 1),
			ttftP95:  llmCell(t, row, 4),
			ttftViol: llmCell(t, row, 5),
		}
	}
	cont, rtc := arms["continuous"], arms["run-to-completion"]
	if cont.requests <= 0 || rtc.requests <= 0 {
		t.Fatalf("an arm served nothing: continuous %v, run-to-completion %v", cont, rtc)
	}
	if cont.ttftP95 >= rtc.ttftP95 {
		t.Fatalf("continuous batching does not beat run-to-completion on TTFT p95: %.1fms vs %.1fms",
			cont.ttftP95, rtc.ttftP95)
	}
	if cont.ttftViol > rtc.ttftViol {
		t.Fatalf("continuous batching has more TTFT violations: %v vs %v",
			cont.ttftViol, rtc.ttftViol)
	}
	// The pinned SLO block is the continuous arm's.
	l := rep.SLO.LLM
	if len(l.Funcs) != 1 || l.Funcs[0].Requests == 0 || l.TokensOut == 0 {
		t.Fatalf("LLM block empty: %+v", l)
	}
}

// TestLLMKVCachePressureForcesEvictions pins the memory-bound regime:
// on KV-tight cards the long token mix must exhaust the cache, forcing
// youngest-sequence preemptions and queue-head refusals, with the KV
// peak visible in the manifest block. The KV conservation invariant
// (armed for every driver by TestMain) audits the charge/release
// ledger throughout the run.
func TestLLMKVCachePressureForcesEvictions(t *testing.T) {
	rep := LLMKVCachePressure(testOpts())
	if rep.SLO == nil || rep.SLO.LLM == nil {
		t.Fatal("llm_kvcache_pressure must attach an SLO summary with an LLM block")
	}
	l := rep.SLO.LLM
	if l.CacheFullPreemptions == 0 {
		t.Fatal("no cache-full preemptions under the KV-tight configuration")
	}
	if l.AdmitRefusals == 0 {
		t.Fatal("no admission refusals under sustained KV pressure")
	}
	if l.KVPeakMB <= 0 || l.KVPeakShare <= 0 {
		t.Fatalf("KV peak not recorded: %.1f MB, share %.4f", l.KVPeakMB, l.KVPeakShare)
	}
	if l.TokensOut == 0 || l.TokensPerSecond <= 0 {
		t.Fatalf("no token throughput recorded: %+v", l)
	}
	table := rep.Table("KV pressure: cache occupancy")
	if table == nil || len(table.Rows) != 1 {
		t.Fatal("pressure table wrong")
	}
	row := table.Rows[0]
	if llmCell(t, row, 0) <= 0 {
		t.Fatal("no requests served")
	}
	// Table and manifest block must agree on the pressure counters.
	if llmCell(t, row, 5) != float64(l.CacheFullPreemptions) ||
		llmCell(t, row, 6) != float64(l.AdmitRefusals) {
		t.Fatalf("table/manifest disagree on pressure counts: row %v vs block %+v", row, l)
	}
}

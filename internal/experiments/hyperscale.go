package experiments

import (
	"dilu/internal/cluster"
	"dilu/internal/report"
	"dilu/internal/sim"
)

// Hyperscale pushes the §5.5 placement simulation an order of magnitude
// past the paper: 10,000 nodes × 4 GPUs (40k GPUs) absorbing ~32,000
// instances of the training/LLM/inference mix. The paper's large-scale
// claim only matters if the scheduler itself keeps up as the world
// grows — this driver is the scenario the cluster's posting/occupancy
// indexes exist for, and BenchmarkHyperscalePlacement pins the
// sub-linear placement cost it relies on (a full-scan Algorithm 1
// spends ~27 s placing this mix; the indexed scheduler, well under a
// second).
//
// Scale maps the driver between CI and full size: node and instance
// counts scale together (floored at the paper's 1,000 nodes / 3,200
// instances), so densities — and therefore the fragmentation story —
// stay comparable across scales.
func Hyperscale(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("hyperscale", "Hyperscale placement (40k GPUs, 32k instances)")
	nodes := int(10000 * opts.Scale)
	if nodes < 1000 {
		nodes = 1000
	}
	total := int(32000 * opts.Scale)
	if total < 3200 {
		total = 3200
	}
	horizon := 3600 * sim.Second
	mix := largeScaleMix(total, horizon, sim.NewRNG(opts.Seed))
	order := []string{"Exclusive", "INFless+-l", "Dilu"}
	scheds := figure17Schedulers()
	t := rep.AddTable(report.NewTable(
		"Hyperscale. Occupancy and fragmentation at cluster ×10",
		"scheduler", "placed", "peak GPUs", "SM frag", "mem frag", "GPU-hours", "cost vs Exclusive"))
	var exclusiveGPUh float64
	for _, name := range order {
		occ, stats, gpuSeconds, placed := runLargeScaleOn(scheds[name], mix, horizon, nodes, opts.Shards)
		opts.Meter.AddVirtual(horizon)
		gpuH := gpuSeconds / 3600
		if name == "Exclusive" {
			exclusiveGPUh = gpuH
		}
		t.AddRow(name, placed, occ.Max(), stats.SMFrag, stats.MemFrag, gpuH,
			gpuH/maxf(exclusiveGPUh, 1e-9))
		rep.AddSeries(occ.Downsample(120 * sim.Second))
	}
	rep.AddNote("extends Figure 17 an order of magnitude past §5.5: the cost and fragmentation ordering must survive 40k GPUs")
	return rep
}

// HyperscaleMax pushes the placement simulation to the sharded engine's
// ceiling: 62,500 nodes × 4 GPUs (250,000 GPUs) absorbing ~200,000
// instances of the §5.5 mix — ×6 past the hyperscale driver, ×62 past
// the paper. Only Dilu runs here (the baselines' story is told at 40k);
// the point of this driver is that one run completes at a quarter
// million GPUs, with the candidate scans fanned out over the cluster
// shards when opts.Shards > 1. Scale maps the size down the same way
// Hyperscale does, flooring at the paper's 1,000 nodes.
func HyperscaleMax(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("hyperscale_max", "Sharded hyperscale ceiling (250k GPUs, 200k instances)")
	nodes := int(62500 * opts.Scale)
	if nodes < 1000 {
		nodes = 1000
	}
	total := int(200000 * opts.Scale)
	if total < 3200 {
		total = 3200
	}
	horizon := 3600 * sim.Second
	mix := largeScaleMix(total, horizon, sim.NewRNG(opts.Seed))
	t := rep.AddTable(report.NewTable(
		"Hyperscale ceiling. One Dilu run at cluster ×62",
		"scheduler", "GPUs", "placed", "peak GPUs", "SM frag", "mem frag", "GPU-hours"))
	occ, stats, gpuSeconds, placed := runLargeScaleOn(
		figure17Schedulers()["Dilu"], mix, horizon, nodes, opts.Shards)
	opts.Meter.AddVirtual(horizon)
	t.AddRow("Dilu", nodes*4, placed, occ.Max(), stats.SMFrag, stats.MemFrag, gpuSeconds/3600)
	rep.AddSeries(occ.Downsample(120 * sim.Second))
	rep.AddNote("the new scale ceiling: sharded windows + parallel candidate scans keep a 250k-GPU replay tractable, byte-identical at any shard count")
	return rep
}

// HyperscaleScheduleBatch places n instances of the §5.5 mix on a
// hyperscale (nodes × 4 GPU) cluster through every comparison
// scheduler, returning per-scheduler placement counts. It backs the
// placement-cost benchmark; the driver above reports the steady-state
// occupancy story.
func HyperscaleScheduleBatch(nodes, n int, seed int64) map[string]int {
	out := make(map[string]int, 3)
	for name, mk := range figure17Schedulers() {
		clu := cluster.New(cluster.Config{Nodes: nodes, GPUsPerNode: 4})
		out[name] = ScheduleBatchWith(mk(clu), n, seed)
	}
	return out
}

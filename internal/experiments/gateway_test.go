package experiments

import (
	"strconv"
	"testing"
)

// cell parses one numeric table cell.
func gwCell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", row[i], err)
	}
	return v
}

// TestOverloadShedTradeoff pins the driver's acceptance property: under
// 2× capacity demand the deadline-shedding policy beats admit-all on
// p99 SLO attainment for admitted traffic, while the per-tenant ledger
// reports the shed counts the goodput was bought with.
func TestOverloadShedTradeoff(t *testing.T) {
	rep := OverloadShed(testOpts())
	if rep.SLO == nil || rep.SLO.Gateway == nil {
		t.Fatal("overload_shed must attach an SLO summary with a gateway block")
	}
	agg := rep.Table("Overload: admitted-traffic SLO attainment")
	if agg == nil || len(agg.Rows) != 3 {
		t.Fatal("aggregate table wrong")
	}
	attain := map[string]float64{}
	shedPct := map[string]float64{}
	for _, row := range agg.Rows {
		attain[row[0]] = gwCell(t, row, 6)
		shedPct[row[0]] = gwCell(t, row, 2)
	}
	if attain["deadline-shed"] <= attain["admit-all"] {
		t.Fatalf("shedding does not beat admit-all on p99 attainment: %.1f%% vs %.1f%%",
			attain["deadline-shed"], attain["admit-all"])
	}
	if shedPct["admit-all"] != 0 {
		t.Fatalf("admit-all shed %.1f%% of traffic", shedPct["admit-all"])
	}
	if shedPct["deadline-shed"] <= 0 {
		t.Fatal("deadline-shed shed nothing under 2× overload")
	}
	// Per-tenant ledger: 3 policies × 3 tenants, with shed counts
	// reported for every tenant under the shedding policies.
	per := rep.Table("Overload: per-tenant admission ledger")
	if per == nil || len(per.Rows) != 9 {
		t.Fatal("per-tenant table wrong")
	}
	for _, row := range per.Rows {
		if row[0] == "deadline-shed" && gwCell(t, row, 4) <= 0 {
			t.Fatalf("tenant %s: no shed count reported under deadline-shed", row[1])
		}
	}
	// The manifest-facing gateway block carries the same per-tenant shed
	// accounting for the policy run the report pins.
	g := rep.SLO.Gateway
	if g.Policy != "deadline-shed" || g.Shed == 0 || len(g.Tenants) != 3 {
		t.Fatalf("gateway block %+v", g)
	}
}

// TestTenantFairnessConcentratesShedding pins the DRF property at the
// driver level: fair-share sheds only the flooding head tenant, and the
// tail tenants' admitted counts match their admit-all counts exactly.
func TestTenantFairnessConcentratesShedding(t *testing.T) {
	rep := TenantFairness(testOpts())
	if rep.SLO == nil || rep.SLO.Gateway == nil {
		t.Fatal("tenant_fairness must attach an SLO summary with a gateway block")
	}
	per := rep.Table("Fairness: per-tenant admission ledger")
	if per == nil || len(per.Rows) != 8 { // 2 policies × 4 tenants
		t.Fatal("per-tenant table wrong")
	}
	type ledger struct{ submitted, admitted, shed float64 }
	rows := map[string]map[string]ledger{}
	for _, row := range per.Rows {
		pol, tenant := row[0], row[1]
		if rows[pol] == nil {
			rows[pol] = map[string]ledger{}
		}
		rows[pol][tenant] = ledger{gwCell(t, row, 2), gwCell(t, row, 3), gwCell(t, row, 4)}
	}
	fair, all := rows["fair-share"], rows["admit-all"]
	if fair["tenant-00"].shed <= 0 {
		t.Fatal("fair-share did not shed the flooding tenant")
	}
	for _, tenant := range []string{"tenant-01", "tenant-02", "tenant-03"} {
		if fair[tenant].shed != 0 {
			t.Fatalf("%s: fair-share shed %v tail requests", tenant, fair[tenant].shed)
		}
		if fair[tenant].admitted != all[tenant].admitted {
			t.Fatalf("%s: tail admission perturbed: %v vs %v admit-all",
				tenant, fair[tenant].admitted, all[tenant].admitted)
		}
	}
	// Both policies face byte-identical offered load.
	for tenant, l := range all {
		if f := fair[tenant]; f.submitted != l.submitted {
			t.Fatalf("%s: offered load differs across policies: %v vs %v", tenant, f.submitted, l.submitted)
		}
	}
}

// TestGatewayDriversDeterministic extends the reproducibility contract
// to the gateway drivers: same (seed, scale) → byte-identical reports.
func TestGatewayDriversDeterministic(t *testing.T) {
	for _, id := range []string{"overload_shed", "tenant_fairness"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a := d.Run(testOpts()).JSON()
		b := d.Run(testOpts()).JSON()
		if a != b {
			t.Fatalf("%s: report not deterministic", id)
		}
	}
}

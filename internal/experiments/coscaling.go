package experiments

import (
	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Figure12 reproduces the co-scaling trace analysis: offered RPS,
// instance count, and per-window SLO violation rate over a bursty trace
// under the full Dilu stack.
func Figure12(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure12", "Co-scaling trace analysis (Figure 12)")
	sys := mustClusterSystem("Dilu", 2, 4, opts)
	dur := opts.dur(600 * sim.Second)
	f, err := sys.DeployInference("rob", "RoBERTa-large", core.InferOpts{
		Instances: 1,
		Arrivals:  workload.Bursty{BaseRPS: 30, Scale: 4, BurstDur: 40 * sim.Second, Quiet: 30 * sim.Second},
	})
	if err != nil {
		panic(err)
	}
	// Windowed SVR: violations per 10 s window.
	svr := metrics.NewSeries("windowed-svr")
	var lastCount, lastViol int
	var next sim.Time = 10 * sim.Second
	sys.OnTick(func(now sim.Time) {
		if now < next {
			return
		}
		next += 10 * sim.Second
		count, viol := f.Rec.Count(), f.Rec.Violations()
		dc, dv := count-lastCount, viol-lastViol
		lastCount, lastViol = count, viol
		if dc > 0 {
			svr.Add(now, float64(dv)/float64(dc)*100)
		} else {
			svr.Add(now, 0)
		}
	})
	sys.Run(dur)
	rep.AddSeries(f.RPSTrace.Downsample(10 * sim.Second))
	rep.AddSeries(f.InstTrace.Downsample(10 * sim.Second))
	rep.AddSeries(svr)
	t := rep.AddTable(report.NewTable(
		"Figure 12. Co-scaling summary",
		"metric", "value"))
	t.AddRow("requests served", float64(f.Served()))
	t.AddRow("overall SVR %", f.Rec.ViolationRate()*100)
	t.AddRow("cold starts", float64(f.ColdStarts.Value))
	t.AddRow("peak instances", f.InstTrace.Max())
	t.AddRow("mean instances", f.InstTrace.Mean())
	rep.AddNote("fast scale-up absorbs the surge while new instances launch (instance count rises shortly after each burst)")
	return rep
}

// table3Trace describes one Azure-style trace row of Table 3.
type table3Trace struct {
	name string
	arr  func() workload.Arrivals
}

func table3Traces() []table3Trace {
	return []table3Trace{
		// Burst cadence matters: the quiet gaps (≈28 s) are shorter than
		// Dilu's 40-sample scale-in window, so Dilu retains standing
		// capacity across bursts while eager baselines churn.
		{"Bursty", func() workload.Arrivals {
			return workload.Bursty{BaseRPS: 25, Scale: 6, BurstDur: 25 * sim.Second, Quiet: 28 * sim.Second}
		}},
		{"Periodic", func() workload.Arrivals {
			return workload.Periodic{BaseRPS: 70, Amp: 0.9, Period: 60 * sim.Second}
		}},
		{"Sporadic", func() workload.Arrivals {
			return workload.Sporadic{ClusterRPS: 40, ClusterDur: 20 * sim.Second, IdleMean: 80 * sim.Second}
		}},
	}
}

// Table3 reproduces the horizontal scaling comparison: cold start counts
// (CSC), SLO violation rate (SVR) and saved GPU time (SGT) relative to
// Dilu for the three Azure trace classes.
func Table3(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("table3", "Horizontal scaling performance (Table 3)")
	dur := opts.dur(600 * sim.Second)
	systems := []string{"FaST-GS+", "INFless+", "Dilu"}
	t := rep.AddTable(report.NewTable(
		"Table 3. CSC / SVR / SGT by trace and system",
		"trace", "system", "CSC", "SVR %", "GPU-seconds", "SGT vs Dilu (s)"))
	for _, tr := range table3Traces() {
		type result struct {
			csc  int64
			svr  float64
			gpuS float64
		}
		results := map[string]result{}
		for _, sysName := range systems {
			sys := mustClusterSystem(sysName, 2, 4, opts)
			// Background training tenants make the cluster multi-tenant:
			// the co-scaling headroom has to be borrowed from collocated
			// jobs, which is where static partitions fall behind.
			if _, err := sys.DeployTraining("bg-bert", "BERT-base", core.TrainOpts{Workers: 2}); err != nil {
				panic(err)
			}
			f, err := sys.DeployInference("rob", "RoBERTa-large", core.InferOpts{
				Instances: 1, Arrivals: tr.arr(),
			})
			if err != nil {
				panic(err)
			}
			sys.Run(dur)
			results[sysName] = result{
				csc:  f.ColdStarts.Value,
				svr:  f.Rec.ViolationRate() * 100,
				gpuS: sys.GPUSecondsUsed(),
			}
		}
		dilu := results["Dilu"]
		for _, sysName := range systems {
			r := results[sysName]
			sgt := r.gpuS - dilu.gpuS
			sgtCell := interface{}(sgt)
			if sysName == "Dilu" {
				sgtCell = "-"
			}
			t.AddRow(tr.name, sysName, float64(r.csc), r.svr, r.gpuS, sgtCell)
		}
	}
	rep.AddNote("paper: Dilu reaches the lowest CSC (7/11/1) and SVR (1.79/9.85/2.33%%), saving hundreds of GPU-seconds vs both baselines")
	return rep
}

package experiments

import (
	"fmt"

	"dilu/internal/report"
)

// Tier classifies a driver by how expensive a full-scale run is. The
// harness and the test suite use it to build filtered subsets: the short
// test tier runs quick and standard drivers only, while `dilu-bench
// -tier quick` gives a sub-second smoke pass over the suite.
type Tier string

const (
	// TierQuick drivers finish in well under a second at Scale 0.1.
	TierQuick Tier = "quick"
	// TierStandard drivers take a few seconds at Scale 0.1.
	TierStandard Tier = "standard"
	// TierSlow drivers dominate suite wall time (large sweeps, many
	// baselines); they are skipped by `go test -short`.
	TierSlow Tier = "slow"
)

// Tiers lists the valid tiers from cheapest to most expensive.
func Tiers() []Tier { return []Tier{TierQuick, TierStandard, TierSlow} }

// Valid reports whether t is a known tier.
func (t Tier) Valid() bool {
	return t == TierQuick || t == TierStandard || t == TierSlow
}

// Driver regenerates one paper artifact.
type Driver struct {
	ID    string // e.g. "table2", "figure7"
	Paper string // paper artifact reference
	Tier  Tier   // cost tier: quick, standard, slow
	Run   func(Options) *report.Report
}

// All returns every experiment driver in paper order.
func All() []Driver {
	return []Driver{
		{"figure2", "Figure 2(a,b) — fragmentation observations", TierQuick, Figure2},
		{"figure2cd", "Figure 2(c,d) — toy co-scaling verification", TierSlow, Figure2cd},
		{"table2", "Table 2 — profiling efficiency", TierQuick, Table2},
		{"figure4", "Figure 4 — TE surfaces and HGSS stars", TierQuick, Figure4},
		{"figure7", "Figure 7 — training-inference collocation", TierStandard, Figure7},
		{"figure8", "Figure 8 — inference-inference collocation", TierSlow, Figure8},
		{"figure9", "Figure 9 — training-training collocation", TierQuick, Figure9},
		{"figure10", "Figure 10 — Gamma CV sweep", TierSlow, Figure10},
		{"figure11", "Figure 11 — vertical scaling overhead", TierQuick, Figure11},
		{"figure12", "Figure 12 — co-scaling trace analysis", TierStandard, Figure12},
		{"table3", "Table 3 — horizontal scaling (CSC/SVR/SGT)", TierStandard, Table3},
		{"figure13", "Figure 13 — kernel issuing traces", TierQuick, Figure13},
		{"figure14", "Figure 14 — total kernel counts", TierQuick, Figure14},
		{"figure15", "Figure 15 — end-to-end and ablations", TierSlow, Figure15},
		{"figure16", "Figure 16 — aggregate throughput", TierSlow, Figure16},
		{"figure17", "Figure 17 — large-scale simulation", TierStandard, Figure17},
		{"figure18", "Figure 18 — sensitivity analyses", TierSlow, Figure18},
		{"ablation-controller", "DESIGN.md §4.6 — RCKM controller ablations (extra)", TierStandard, ControllerAblation},
		{"slo_sweep", "SLO pressure sweep over production-shaped workloads (extra)", TierStandard, SLOSweep},
		{"trace_replay", "Committed sample-trace replay with SLO accounting (extra)", TierStandard, TraceReplay},
		{"tenant_mix", "Multi-tenant Zipf mix across schedulers (extra)", TierStandard, TenantMixStudy},
		{"hyperscale", "Hyperscale placement — 40k GPUs / 32k instances (extra)", TierSlow, Hyperscale},
		{"hyperscale_max", "Sharded hyperscale ceiling — 250k GPUs / 200k instances (extra)", TierSlow, HyperscaleMax},
		{"hetero_mix", "Heterogeneous 70/30 fleet placement comparison (extra)", TierStandard, HeteroMix},
		{"churn_recovery", "SLO attainment through a node-failure wave (extra)", TierStandard, ChurnRecovery},
		{"rolling_drain", "Zero-downtime rolling drain sweep (extra)", TierStandard, RollingDrain},
		{"overload_shed", "Admission policy vs SLO goodput at 2× capacity (extra)", TierQuick, OverloadShed},
		{"tenant_fairness", "DRF fair-share admission under a tenant flood (extra)", TierQuick, TenantFairness},
		{"gray_failure", "Retry/hedge/quarantine vs adversarial slowdown+error schedule (extra)", TierQuick, GrayFailure},
		{"straggler_tail", "Hedged dispatch vs timeout-only under slow-GPU population (extra)", TierStandard, StragglerTail},
		{"coldstart_stages", "Staged cold-start attribution + kernel-cache warm pools (extra)", TierQuick, ColdStartStages},
		{"prewarm_policy", "Predictive prewarming vs reactive scaling on a demand ramp (extra)", TierStandard, PrewarmPolicy},
		{"llm_continuous_batch", "Continuous batching vs run-to-completion on a Zipf token mix (extra)", TierQuick, LLMContinuousBatch},
		{"llm_kvcache_pressure", "KV-cache pressure under memory-bound decode (extra)", TierQuick, LLMKVCachePressure},
	}
}

// ByID returns one driver.
func ByID(id string) (Driver, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Driver{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ByTier returns the drivers in the given tiers, preserving paper order.
func ByTier(tiers ...Tier) []Driver {
	want := map[Tier]bool{}
	for _, t := range tiers {
		want[t] = true
	}
	var out []Driver
	for _, d := range All() {
		if want[d.Tier] {
			out = append(out, d)
		}
	}
	return out
}

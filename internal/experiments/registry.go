package experiments

import (
	"fmt"

	"dilu/internal/report"
)

// Driver regenerates one paper artifact.
type Driver struct {
	ID    string // e.g. "table2", "figure7"
	Paper string // paper artifact reference
	Run   func(Options) *report.Report
}

// All returns every experiment driver in paper order.
func All() []Driver {
	return []Driver{
		{"figure2", "Figure 2(a,b) — fragmentation observations", Figure2},
		{"figure2cd", "Figure 2(c,d) — toy co-scaling verification", Figure2cd},
		{"table2", "Table 2 — profiling efficiency", Table2},
		{"figure4", "Figure 4 — TE surfaces and HGSS stars", Figure4},
		{"figure7", "Figure 7 — training-inference collocation", Figure7},
		{"figure8", "Figure 8 — inference-inference collocation", Figure8},
		{"figure9", "Figure 9 — training-training collocation", Figure9},
		{"figure10", "Figure 10 — Gamma CV sweep", Figure10},
		{"figure11", "Figure 11 — vertical scaling overhead", Figure11},
		{"figure12", "Figure 12 — co-scaling trace analysis", Figure12},
		{"table3", "Table 3 — horizontal scaling (CSC/SVR/SGT)", Table3},
		{"figure13", "Figure 13 — kernel issuing traces", Figure13},
		{"figure14", "Figure 14 — total kernel counts", Figure14},
		{"figure15", "Figure 15 — end-to-end and ablations", Figure15},
		{"figure16", "Figure 16 — aggregate throughput", Figure16},
		{"figure17", "Figure 17 — large-scale simulation", Figure17},
		{"figure18", "Figure 18 — sensitivity analyses", Figure18},
		{"ablation-controller", "DESIGN.md §4.6 — RCKM controller ablations (extra)", ControllerAblation},
	}
}

// ByID returns one driver.
func ByID(id string) (Driver, error) {
	for _, d := range All() {
		if d.ID == id {
			return d, nil
		}
	}
	return Driver{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

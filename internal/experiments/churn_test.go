package experiments

import (
	"strconv"
	"testing"
)

// The churn/heterogeneity drivers run here under the armed simtest
// invariants (TestMain installs the default factory), so every fired
// tick of every scenario verifies quota conservation per capacity
// class, retired-GPU quiescence, and the rest of the checker suite.

const heteroTableCaption = "Heterogeneous mix. Occupancy, fragmentation and capacity-weighted cost"

func TestHeteroMixShape(t *testing.T) {
	rep := HeteroMix(testOpts())
	tab := rep.Table(heteroTableCaption)
	if tab == nil {
		t.Fatal("missing table")
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 schedulers", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		gpuH, err1 := strconv.ParseFloat(row[5], 64)
		capH, err2 := strconv.ParseFloat(row[6], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable cost cells: %v / %v", row[5], row[6])
		}
		// The largest class has capacity 1.0, so capacity-weighted hours
		// can never exceed raw GPU-hours — and on a 70/30 fleet with the
		// small class actually used they must be strictly cheaper.
		if capH > gpuH {
			t.Fatalf("%s: capacity-hours %v exceed GPU-hours %v", row[0], capH, gpuH)
		}
		// occ big / occ small: both device generations must host work at
		// the final snapshot under every scheduler (a mix this large
		// cannot fit on 70% of the fleet).
		if row[8] == "0" || row[9] == "0" {
			t.Fatalf("scheduler %s left a device class idle: big=%s small=%s", row[0], row[8], row[9])
		}
	}
	// Dilu must stay cheaper than Exclusive in capacity-hours (the
	// Figure-17 cost ordering surviving heterogeneity).
	dilu := tab.FindRow("Dilu")
	if dilu == nil {
		t.Fatal("no Dilu row")
	}
	if ratio, err := strconv.ParseFloat(dilu[7], 64); err != nil || ratio >= 1.0 {
		t.Fatalf("Dilu cost vs Exclusive = %s, want < 1.0", dilu[7])
	}
}

func TestChurnRecoveryShape(t *testing.T) {
	rep := ChurnRecovery(testOpts())
	if rep.SLO == nil || rep.SLO.Requests == 0 {
		t.Fatal("churn_recovery must attach a non-empty SLO summary")
	}
	tab := rep.Table("Failure wave: aggregate SLO accounting by system")
	if tab == nil || len(tab.Rows) != 3 {
		t.Fatal("aggregate table wrong")
	}
	for _, row := range tab.Rows {
		if row[1] == "0" {
			t.Fatalf("system %s served nothing through the wave", row[0])
		}
		if row[7] == "0" {
			t.Fatalf("system %s saw no evictions — the wave did not bite", row[0])
		}
	}
}

func TestRollingDrainZeroEvictions(t *testing.T) {
	rep := RollingDrain(testOpts())
	if rep.SLO == nil || rep.SLO.Requests == 0 {
		t.Fatal("rolling_drain must attach a non-empty SLO summary")
	}
	tab := rep.Table("Rolling drain: aggregate SLO accounting by system")
	if tab == nil || len(tab.Rows) != 3 {
		t.Fatal("aggregate table wrong")
	}
	for _, row := range tab.Rows {
		// Zero-downtime signature: migrations happened, evictions did not.
		if row[7] != "0" {
			t.Fatalf("system %s evicted instances during a planned drain: %s", row[0], row[7])
		}
		if row[8] == "0" {
			t.Fatalf("system %s migrated nothing — the sweep did not bite", row[0])
		}
	}
}

func TestChurnDriversDeterministic(t *testing.T) {
	if a, b := ChurnRecovery(testOpts()), ChurnRecovery(testOpts()); a.Table("Failure wave: aggregate SLO accounting by system").String() !=
		b.Table("Failure wave: aggregate SLO accounting by system").String() {
		t.Fatal("churn_recovery not deterministic across runs")
	}
	if a, b := RollingDrain(testOpts()), RollingDrain(testOpts()); a.Table("Rolling drain: aggregate SLO accounting by system").String() !=
		b.Table("Rolling drain: aggregate SLO accounting by system").String() {
		t.Fatal("rolling_drain not deterministic across runs")
	}
	if a, b := HeteroMix(testOpts()), HeteroMix(testOpts()); a.Table(heteroTableCaption).String() !=
		b.Table(heteroTableCaption).String() {
		t.Fatal("hetero_mix not deterministic across runs")
	}
}

package experiments

import (
	"dilu/internal/core"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Gray-failure drivers: the degraded-but-alive regime between healthy
// and fail-stop that churn_recovery/rolling_drain never enter. Slow
// GPUs keep accepting work (and the scheduler keeps offering them),
// flaky devices burn batches without dying — DeepServe's
// fast-detection/recovery concern and FlexPipe's inflight adaptation,
// expressed as mitigations-on-vs-off comparisons over one seeded
// adversarial schedule.

// grayMitigations returns the resilience/health configuration the
// mitigated arms share, scaled off the model's SLO.
func grayMitigations(slo sim.Duration) (*core.ResilienceConfig, *core.HealthConfig) {
	res := &core.ResilienceConfig{
		Timeout:     2 * slo,
		BackoffBase: slo / 4,
		BackoffCap:  2 * slo,
		MaxAttempts: 3,
		RetryBudget: 0.25,
		HedgeDelay:  slo / 2,
	}
	health := &core.HealthConfig{
		SlowdownThreshold: 2.0,
		SlowSamples:       1,
		ErrorThreshold:    3,
		ErrorWindow:       30 * sim.Second,
		ProbeAfter:        5 * sim.Second,
	}
	return res, health
}

// graySchedule builds the adversarial fault schedule both gray drivers'
// faulted arms replay: a staggered straggler population (StragglerMix)
// plus a flaky node emitting a triangular error wave (FaultWave), both
// seeded — the same schedule hits the mitigated and unmitigated runs.
func graySchedule(seed int64, nodes, gpusPerNode int, dur sim.Duration) []workload.FaultEvent {
	rng := sim.NewRNG(seed + 7001)
	slowStart := dur / 6
	slowDur := dur / 2
	events := workload.StragglerMix(rng, nodes, gpusPerNode,
		slowStart, dur/20, slowDur, 2, 6.0)
	events = append(events, workload.FaultWave(rng, 0, gpusPerNode,
		dur/10, dur*2/3, 2.5)...)
	workload.SortFaults(events)
	return events
}

// GrayFailure is the quick-tier mitigations-on/off comparison: a fixed
// 2×4 fleet serving near capacity, one adversarial schedule (stragglers
// + a flaky node), three arms — fault-free baseline, faults without
// mitigations, faults with retry/hedge/quarantine. The mitigated arm's
// SLO summary (with the per-cause resilience columns) is the pinned
// block; the experiments test asserts the p99-attainment restoration at
// the golden scale.
func GrayFailure(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("gray_failure", "Gray failures: retry/hedge/quarantine vs an adversarial slowdown+error schedule (extra)")
	dur := opts.dur(60 * sim.Second)

	const modelName = "ResNet152"
	const nodes, gpusPerNode = 2, 4
	spec := model.ByName(modelName)
	prof := profiler.For(spec, profiler.RoleInference)
	instances := nodes * gpusPerNode // one per GPU: every fault lands on serving capacity
	demand := 0.5 * float64(instances) * prof.ServingRPS
	schedule := graySchedule(opts.Seed, nodes, gpusPerNode, dur)
	res, health := grayMitigations(spec.SLO)

	arms := []struct {
		name      string
		faults    bool
		mitigated bool
	}{
		{"fault-free", false, false},
		{"faults", true, false},
		{"faults+mitigation", true, true},
	}

	t := rep.AddTable(report.NewTable(
		"Gray failure: admitted-traffic SLO attainment by arm (same seed, same schedule)",
		"arm", "reqs", "p99 ms", "p99 attain %", "goodput rps",
		"timeouts", "retries", "hedge wins", "quarantines", "migrations"))

	for _, arm := range arms {
		cfg := core.Config{
			Nodes: nodes, GPUsPerNode: gpusPerNode, Seed: opts.Seed, Meter: opts.Meter,
		}
		if arm.mitigated {
			cfg.Resilience = res
			cfg.Health = health
		}
		sys := core.MustSystem(cfg)
		if _, err := sys.DeployInference("gray-fn", modelName, core.InferOpts{
			Instances: instances, NoScaler: true,
			Deadline: spec.SLO,
			Arrivals: workload.Poisson{RPS: demand},
		}); err != nil {
			panic(err)
		}
		if arm.faults {
			sys.ScheduleFaults(schedule)
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		fs := sys.FaultStats()
		var p99 float64
		for _, st := range sum.Funcs {
			if st.P99Millis > p99 {
				p99 = st.P99Millis
			}
		}
		var rs core.ResilienceStats
		for _, f := range sys.Functions() {
			st := f.ResilienceStats()
			rs.Timeouts += st.Timeouts
			rs.Retries += st.Retries
			rs.HedgeWins += st.HedgeWins
		}
		t.AddRow(arm.name, float64(sum.Requests), p99, sum.P99Attainment*100,
			sum.GoodputRPS, rs.Timeouts, rs.Retries, rs.HedgeWins,
			fs.Quarantines, fs.QuarantineMigrations)
		if arm.name == "faults+mitigation" {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("one seeded schedule (%d events: stragglers 4× + flaky-node error wave) hits both faulted arms; mitigations steal timed-out work off stragglers, hedge deadline requests, and quarantine outliers via the make-before-break drain path", len(schedule))
	return rep
}

// StragglerTail is the standard-tier tail-latency study: a pure
// straggler population (no errors) against hedging on vs off, both with
// timeout/retry enabled — isolating what speculative duplicates buy at
// the tail beyond retries alone, the classic tail-at-scale result.
func StragglerTail(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("straggler_tail", "Straggler tail: hedged dispatch vs timeout-only under a slow-GPU population (extra)")
	dur := opts.dur(120 * sim.Second)

	const modelName = "BERT-base"
	const nodes, gpusPerNode = 2, 4
	spec := model.ByName(modelName)
	prof := profiler.For(spec, profiler.RoleInference)
	gpus := nodes * gpusPerNode
	instances := 2 * gpus
	demand := 0.35 * float64(gpus) * prof.ServingRPS
	// Pin the straggler to GPU (0,0): placement packs in index order and
	// dispatch concentrates on the earliest instances, so that device
	// always carries live traffic while the rest of the fleet keeps the
	// headroom hedged duplicates need to win their races.
	stragglers := workload.StragglerMix(sim.NewRNG(opts.Seed+7101), 1, 1,
		dur/8, dur/30, dur/2, 1, 6.0)
	res, _ := grayMitigations(spec.SLO)

	arms := []struct {
		name  string
		hedge bool
	}{
		{"timeout-only", false},
		{"timeout+hedge", true},
	}

	t := rep.AddTable(report.NewTable(
		"Straggler tail: per-arm attainment (same straggler schedule)",
		"arm", "reqs", "p95 ms", "p99 ms", "goodput rps",
		"retries", "retry success", "hedges", "hedge wins"))

	for _, arm := range arms {
		cfg := *res
		if !arm.hedge {
			cfg.HedgeDelay = 0
		}
		sys := core.MustSystem(core.Config{
			Nodes: nodes, GPUsPerNode: gpusPerNode, Seed: opts.Seed, Meter: opts.Meter,
			Resilience: &cfg,
		})
		if _, err := sys.DeployInference("tail-fn", modelName, core.InferOpts{
			Instances: instances, NoScaler: true,
			Deadline: spec.SLO,
			Arrivals: workload.Poisson{RPS: demand},
		}); err != nil {
			panic(err)
		}
		sys.ScheduleFaults(stragglers)
		sys.Run(dur)
		sum := sys.SLOSummary()
		var rs core.ResilienceStats
		for _, f := range sys.Functions() {
			st := f.ResilienceStats()
			rs.Retries += st.Retries
			rs.RetrySuccess += st.RetrySuccess
			rs.Hedges += st.Hedges
			rs.HedgeWins += st.HedgeWins
		}
		var p95, p99 float64
		for _, st := range sum.Funcs {
			if st.P95Millis > p95 {
				p95 = st.P95Millis
			}
			if st.P99Millis > p99 {
				p99 = st.P99Millis
			}
		}
		t.AddRow(arm.name, float64(sum.Requests), p95, p99, sum.GoodputRPS,
			rs.Retries, rs.RetrySuccess, rs.Hedges, rs.HedgeWins)
		if arm.hedge {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("6× stragglers stretch a third of the fleet; a hedge races each deadline request on a second instance after one SLO of waiting, so the tail rides the fast copy instead of the straggler's backoff cycle")
	return rep
}

// DisturbanceReplayOn replays external churn and/or fault schedules
// (the -churn / -faults CSV flags of cmd/dilu-bench) against the
// standard three-function serving mix on a Dilu system with mitigations
// enabled — the harness entry point for reproducing a recorded
// production incident.
func DisturbanceReplayOn(opts Options, churn []workload.ChurnEvent, faults []workload.FaultEvent) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("disturbance_replay", "External churn/fault schedule replay (extra)")
	dur := opts.dur(120 * sim.Second)

	res, health := grayMitigations(model.ByName("RoBERTa-large").SLO)
	sys := core.MustSystem(core.Config{
		Nodes: 5, GPUsPerNode: 4, Seed: opts.Seed, Meter: opts.Meter,
		Resilience: res, Health: health,
	})
	churnDeploy(sys, 1.0)
	sys.ScheduleChurn(churn)
	sys.ScheduleFaults(faults)
	sys.Run(dur)

	sum := sys.SLOSummary()
	cs := sys.ChurnStats()
	fs := sys.FaultStats()
	t := rep.AddTable(report.NewTable(
		"Disturbance replay: SLO accounting and lifecycle fallout",
		"reqs", "SVR %", "goodput rps", "p99 attain %",
		"failures", "drains", "slow events", "error events",
		"retries", "hedge wins", "quarantines"))
	var rs core.ResilienceStats
	for _, f := range sys.Functions() {
		st := f.ResilienceStats()
		rs.Retries += st.Retries
		rs.HedgeWins += st.HedgeWins
	}
	t.AddRow(float64(sum.Requests), sum.ViolationRate()*100, sum.GoodputRPS,
		sum.P99Attainment*100, cs.Failures, cs.Drains,
		fs.SlowEvents, fs.ErrorEvents, rs.Retries, rs.HedgeWins, fs.Quarantines)
	rep.SetSLO(sum)
	rep.AddNote("replayed %d churn + %d fault events against the three-function mix with retry/hedge/quarantine enabled", len(churn), len(faults))
	return rep
}

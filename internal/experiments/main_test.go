package experiments

import (
	"os"
	"testing"

	"dilu/internal/core"
	"dilu/internal/simtest"
)

// TestMain arms the simtest invariant checkers for every System any
// driver test builds: quota conservation, non-negative residents,
// monotone virtual time and active-set consistency are verified on
// every fired tick of every experiment. The factory hands each System
// fresh checker instances, so parallel harness jobs stay independent.
func TestMain(m *testing.M) {
	core.SetDefaultInvariantFactory(simtest.Checkers)
	os.Exit(m.Run())
}

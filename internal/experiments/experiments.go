// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5). Each driver builds the scenario from the
// public building blocks (core.System, workload generators, profiler,
// scheduler), runs it on virtual time, and emits a report.Report whose
// rows mirror what the paper plots. EXPERIMENTS.md records the
// paper-vs-measured comparison for every driver.
package experiments

import (
	"fmt"

	"dilu/internal/core"
	"dilu/internal/rckm"
	"dilu/internal/scaler"
	"dilu/internal/sim"
)

// Options scale experiments between quick (benchmark) and full runs.
type Options struct {
	// Scale multiplies run durations; 1.0 is the full experiment. Values
	// below 0.1 are clamped.
	Scale float64
	// Seed drives all randomness; 0 means 1.
	Seed int64
	// Shards partitions the large-scale placement replays into N
	// deterministic shards driven through sim.ShardedEngine on all cores
	// (cluster position ranges + conservative barrier windows); 0 or 1
	// runs the serial loop. Results — and therefore manifest bytes — are
	// identical at any value; only wall time changes.
	Shards int
	// Meter, when non-nil, observes every engine the driver spins up
	// (virtual time advanced, engine count). The harness attaches one
	// meter per run for throughput accounting; it never affects results.
	Meter *sim.Meter
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Scale < 0.1 {
		o.Scale = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Shards < 0 {
		o.Shards = 0
	}
	return o
}

// Normalized returns the options every driver actually runs with —
// seed and scale clamped to their valid ranges. The harness keys
// manifest records by normalized values so the record never misstates
// the parameters of the run.
func (o Options) Normalized() Options { return o.withDefaults() }

// Quick returns benchmark-friendly options (short runs).
func Quick() Options { return Options{Scale: 0.25} }

// Full returns full-length options.
func Full() Options { return Options{Scale: 1} }

func (o Options) dur(base sim.Duration) sim.Duration {
	d := sim.Duration(float64(base) * o.Scale)
	if d < 10*sim.Second {
		d = 10 * sim.Second
	}
	return d
}

// gpuBaselines are the GPU-level comparison systems of §5.2.
var gpuBaselines = []string{"Exclusive", "Dilu", "MPS-l", "MPS-r", "TGS", "FaST-GS"}

// systemFor builds a system variant for GPU-level collocation
// experiments (placements are pinned, so only the token policy differs).
// Seed and meter come from the run options.
func systemFor(policy string, nodes, gpusPerNode int, o Options) *core.System {
	cfg := core.Config{Nodes: nodes, GPUsPerNode: gpusPerNode, Seed: o.Seed, Meter: o.Meter}
	switch policy {
	case "Exclusive":
		cfg.Policy = "Exclusive"
		cfg.Scheduler = "Exclusive"
	default:
		cfg.Policy = policy
		cfg.Scheduler = "Dilu"
	}
	return core.MustSystem(cfg)
}

// clusterSystem builds a cluster-level system by evaluation label.
func clusterSystem(label string, nodes, gpusPerNode int, o Options, maxTokens float64) (*core.System, error) {
	cfg := core.Config{Nodes: nodes, GPUsPerNode: gpusPerNode, Seed: o.Seed, Meter: o.Meter}
	cfg.RCKM = rckm.Config{MaxTokens: maxTokens}
	switch label {
	case "Dilu":
		cfg.Policy, cfg.Scheduler = "Dilu", "Dilu"
		cfg.NewScaler = func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) }
	case "Dilu-RC":
		cfg.Policy, cfg.Scheduler = "Dilu", "Dilu"
		cfg.SchedOpts.DisableComplementary = true
		cfg.NewScaler = func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) }
	case "Dilu-WA":
		cfg.Policy, cfg.Scheduler = "Dilu", "Dilu"
		cfg.SchedOpts.DisableAffinity = true
		cfg.NewScaler = func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) }
	case "Dilu-VS":
		cfg.Policy, cfg.Scheduler = "Uncontrolled", "Dilu"
		cfg.NewScaler = func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) }
	case "Exclusive":
		cfg.Policy, cfg.Scheduler = "Exclusive", "Exclusive"
		cfg.NewScaler = func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) }
	case "INFless+", "INFless+-l":
		cfg.Policy, cfg.Scheduler = "MPS-l", "INFless+-l"
		cfg.NewScaler = func() scaler.Policy { return scaler.NewPredictive() }
	case "INFless+-r":
		cfg.Policy, cfg.Scheduler = "MPS-r", "INFless+-r"
		cfg.NewScaler = func() scaler.Policy { return scaler.NewPredictive() }
	case "FaST-GS+":
		cfg.Policy, cfg.Scheduler = "FaST-GS", "FaST-GS+"
		cfg.NewScaler = func() scaler.Policy { return scaler.NewEager() }
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", label)
	}
	return core.NewSystem(cfg)
}

func mustClusterSystem(label string, nodes, gpusPerNode int, o Options) *core.System {
	sys, err := clusterSystem(label, nodes, gpusPerNode, o, 0)
	if err != nil {
		panic(err)
	}
	return sys
}

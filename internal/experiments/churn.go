package experiments

import (
	"fmt"

	"dilu/internal/cluster"
	"dilu/internal/core"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// This file holds the fleet-disturbance scenarios the paper's fixed,
// homogeneous testbed never exercises: mixed GPU generations
// (hetero_mix, the heterogeneity dimension HAS-GPU's allocator prices
// in), abrupt failure waves (churn_recovery), and planned rolling
// drains (rolling_drain, the fragmented churning clusters FlexPipe
// targets). Introspective elasticity's claim — requests/limits plus
// RCKM arbitration absorb disturbance without cold-start storms — is
// most interesting when the cluster itself is the disturbance.

// heteroClasses is the 70/30 big/small fleet of the heterogeneous §5.5
// variant: 70% baseline A100-40GB-class devices and 30% half-capacity
// 24 GB devices (an A30-class generation).
func heteroClasses() []cluster.GPUClass {
	return []cluster.GPUClass{
		{Name: "big", Capacity: 1.0, MemCapMB: 40 * 1024, Weight: 0.7},
		{Name: "small", Capacity: 0.5, MemCapMB: 24 * 1024, Weight: 0.3},
	}
}

// HeteroMix replays the §5.5 3,200-instance mix on a 1,000-node fleet
// mixing GPU generations 70/30 — the Figure-17 fragmentation comparison
// with capacity-normalized scheduling. Cost is reported both in raw
// GPU-hours and capacity-weighted hours (a half-capacity device prices
// at half a baseline one); the per-class occupancy split shows whether
// a scheduler parks work on small devices or burns big ones.
func HeteroMix(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("hetero_mix", "Heterogeneous fleet placement (70/30 big/small GPUs, extra)")
	horizon := 3600 * sim.Second
	mix := largeScaleMix(3200, horizon, sim.NewRNG(opts.Seed))
	order := []string{"Exclusive", "INFless+-l", "Dilu"}
	scheds := figure17Schedulers()
	t := rep.AddTable(report.NewTable(
		"Heterogeneous mix. Occupancy, fragmentation and capacity-weighted cost",
		"scheduler", "placed", "peak GPUs", "SM frag", "mem frag",
		"GPU-hours", "cap-hours", "cost vs Exclusive", "occ big", "occ small"))
	var exclusiveCapH float64
	for _, name := range order {
		r := runLargeScaleClu(scheds[name], mix, horizon, cluster.Config{
			Nodes: 1000, GPUsPerNode: 4, Classes: heteroClasses(),
		}, opts.Shards)
		opts.Meter.AddVirtual(horizon)
		capH := r.capSeconds / 3600
		if name == "Exclusive" {
			exclusiveCapH = capH
		}
		var occBig, occSmall int
		for _, cs := range r.classes {
			switch cs.Name {
			case "big":
				occBig = cs.Occupied
			case "small":
				occSmall = cs.Occupied
			}
		}
		t.AddRow(name, r.placed, r.occ.Max(), r.stats.SMFrag, r.stats.MemFrag,
			r.gpuSeconds/3600, capH, capH/maxf(exclusiveCapH, 1e-9), occBig, occSmall)
		rep.AddSeries(r.occ.Downsample(120 * sim.Second))
	}
	rep.AddNote("normalized utilization keeps the worst/best-fit walks exact on mixed fleets; the cost ordering of Figure 17 must survive heterogeneity")
	return rep
}

// churnAggTable is the per-system table the churn scenarios share: SLO
// accounting plus the lifecycle fallout counters.
func churnAggTable(caption string) *report.Table {
	return report.NewTable(caption,
		"system", "reqs", "SVR %", "cold share %", "goodput rps",
		"p95 attain %", "cold starts", "evicted", "migrated", "lost launches")
}

// churnRow adds one system's aggregate accounting to a churn table.
func churnRow(t *report.Table, label string, sys *core.System) {
	sum := sys.SLOSummary()
	cs := sys.ChurnStats()
	var coldStarts float64
	for _, f := range sys.Functions() {
		coldStarts += float64(f.ColdStarts.Value)
	}
	t.AddRow(label, float64(sum.Requests), sum.ViolationRate()*100,
		sum.ColdStartShare()*100, sum.GoodputRPS, sum.P95Attainment*100,
		coldStarts, cs.EvictedInstances, cs.MigratedInstances, cs.LostLaunches)
}

// churnDeploy stands up the three-function serving mix the churn
// scenarios disturb.
func churnDeploy(sys *core.System, mult float64) {
	deploy := func(name, modelName string, arr workload.Arrivals) {
		if _, err := sys.DeployInference(name, modelName, core.InferOpts{
			Instances: 2, Arrivals: arr,
		}); err != nil {
			panic(err)
		}
	}
	deploy("rob-steady", "RoBERTa-large", workload.Poisson{RPS: 25 * mult})
	deploy("bert-burst", "BERT-base", workload.Bursty{
		BaseRPS: 12 * mult, Scale: 3, BurstDur: 12 * sim.Second, Quiet: 30 * sim.Second,
	})
	deploy("vgg-steady", "VGG19", workload.Poisson{RPS: 10 * mult})
}

// ChurnRecovery pushes a seeded failure wave through the three serving
// systems: nodes fail mid-run (instances evicted and relaunched cold,
// requests requeued) and rejoin later. SLO attainment through the wave
// is the disturbance-absorption measure — cold-start-attributed
// violations show who pays for recovery.
func ChurnRecovery(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("churn_recovery", "SLO attainment through a node-failure wave (extra)")
	dur := opts.dur(240 * sim.Second)
	const nodes = 5
	// Two of five nodes fail, one interval apart, each repairing after a
	// third of the run — drawn from a seeded generator so the wave is
	// part of the scenario's determinism contract.
	wave := workload.FailureWave(sim.NewRNG(opts.Seed+101), nodes,
		dur/4, dur/10, dur/3, 2)
	agg := rep.AddTable(churnAggTable("Failure wave: aggregate SLO accounting by system"))
	for _, label := range sloSystems {
		sys := mustClusterSystem(label, nodes, 4, opts)
		churnDeploy(sys, 1.0)
		sys.ScheduleChurn(wave)
		sys.Run(dur)
		churnRow(agg, label, sys)
		if label == "Dilu" {
			rep.SetSLO(sys.SLOSummary())
		}
		if cs := sys.ChurnStats(); cs.Failures != 2 || cs.Joins != 2 {
			panic(fmt.Sprintf("churn_recovery: wave misfired on %s: %+v", label, cs))
		}
	}
	rep.AddNote("evicted instances relaunch cold with their requests requeued at original arrival stamps: recovery cost lands in cold-start-attributed violations, not dropped requests")
	return rep
}

// RollingDrain sweeps a planned upgrade across the fleet: nodes drain
// one at a time (make-before-break migration — the replacement cold-
// starts elsewhere before the drained instance retires), dwell, and
// rejoin before the next node starts. The zero-downtime claim is that
// served capacity never collapses and SLO attainment stays near the
// undisturbed level.
func RollingDrain(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("rolling_drain", "Zero-downtime rolling node drain (extra)")
	dur := opts.dur(240 * sim.Second)
	const nodes = 5
	sweep := workload.RollingDrain(0, 3, dur/5, dur/8)
	agg := rep.AddTable(churnAggTable("Rolling drain: aggregate SLO accounting by system"))
	for _, label := range sloSystems {
		sys := mustClusterSystem(label, nodes, 4, opts)
		churnDeploy(sys, 1.0)
		sys.ScheduleChurn(sweep)
		sys.Run(dur)
		churnRow(agg, label, sys)
		if label == "Dilu" {
			rep.SetSLO(sys.SLOSummary())
		}
		if cs := sys.ChurnStats(); cs.Drains != 3 || cs.Joins != 3 {
			panic(fmt.Sprintf("rolling_drain: sweep misfired on %s: %+v", label, cs))
		}
	}
	rep.AddNote("drained GPUs accept no new placements (armed as a simtest invariant); migrations count make-before-break replacements, so zero evictions is the zero-downtime signature")
	return rep
}

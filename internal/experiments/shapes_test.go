package experiments

import (
	"strconv"
	"strings"
	"testing"

	"dilu/internal/report"
)

// These tests lock in the headline result shapes at reduced scale so
// regressions in the control loop or calibration surface immediately.
// EXPERIMENTS.md records the full-scale numbers.

func rowFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	if row == nil {
		t.Fatal("missing row")
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", row[col], err)
	}
	return v
}

func TestToyCoScalingShape(t *testing.T) {
	skipSlowTier(t, "figure2cd")
	rep := Figure2cd(testOpts())
	tb := rep.Table("Figure 2(c,d).")
	if tb == nil {
		t.Fatal("missing table")
	}
	// At RPS=256 the collocated setup (3 GPUs) must clearly out-serve
	// Exclusive (4 GPUs) while keeping most of the training throughput.
	row := tb.FindRow("256.0")
	if row == nil {
		row = tb.FindRow("256")
	}
	exclServed := rowFloat(t, row, 3)
	coServed := rowFloat(t, row, 4)
	trainRatio := rowFloat(t, row, 7)
	if coServed < 1.2*exclServed {
		t.Fatalf("co-scaling inference %v not >1.2× exclusive %v", coServed, exclServed)
	}
	if trainRatio < 0.75 {
		t.Fatalf("training ratio %v collapsed", trainRatio)
	}
}

func TestTable3BurstyShape(t *testing.T) {
	rep := Table3(testOpts())
	tb := rep.Table("Table 3.")
	if tb == nil {
		t.Fatal("missing table")
	}
	// Dilu must use the least GPU time on the bursty trace (the lazy
	// scale-in / no-keep-alive economy the paper claims).
	var dilu, infless, fast float64
	for _, row := range tb.Rows {
		if row[0] != "Bursty" {
			continue
		}
		v, _ := strconv.ParseFloat(row[4], 64)
		switch row[1] {
		case "Dilu":
			dilu = v
		case "INFless+":
			infless = v
		case "FaST-GS+":
			fast = v
		}
	}
	if dilu == 0 || dilu > infless || dilu > fast {
		t.Fatalf("Dilu GPU-seconds %v must be lowest (INFless %v, FaST-GS %v)", dilu, infless, fast)
	}
}

func TestFigure10Case2Shape(t *testing.T) {
	skipSlowTier(t, "figure10")
	rep := Figure10(testOpts())
	var tb *report.Table
	for _, cand := range rep.Tables {
		if strings.Contains(cand.Caption, "GPT2-large") {
			tb = cand
		}
	}
	if tb == nil {
		t.Fatal("missing GPT2 case table")
	}
	// At CV=4 the static baselines must trail Dilu by a wide margin.
	row := tb.FindRow("4")
	diluP95 := rowFloat(t, row, 2)
	mpsr := rowFloat(t, row, 3)
	mpsl := rowFloat(t, row, 4)
	if mpsr < 2*diluP95 {
		t.Fatalf("MPS-r p95 %v should be ≫ Dilu %v", mpsr, diluP95)
	}
	// At full scale MPS-l trails Dilu ~5×; short runs compress the gap,
	// so assert a conservative margin only.
	if mpsl < 1.2*diluP95 {
		t.Fatalf("MPS-l p95 %v should exceed Dilu %v", mpsl, diluP95)
	}
}

func TestEndToEndShape(t *testing.T) {
	skipSlowTier(t, "figure15", "figure16")
	rep := Figure15(testOpts())
	b := rep.Table("Figure 15(b).")
	if b == nil {
		t.Fatal("missing table")
	}
	exclGPUs := rowFloat(t, b.FindRow("Exclusive"), 3)
	diluGPUs := rowFloat(t, b.FindRow("Dilu"), 3)
	if exclGPUs < 1.3*diluGPUs {
		t.Fatalf("Exclusive GPUs %v must be ≥1.3× Dilu %v (paper: 1.5×)", exclGPUs, diluGPUs)
	}
	diluJCT := rowFloat(t, b.FindRow("Dilu"), 1)
	if diluJCT > 2.0 {
		t.Fatalf("Dilu mean normalized JCT %v out of band", diluJCT)
	}

	agg := Figure16(testOpts()).Table("Figure 16.")
	exclRel := rowFloat(t, agg.FindRow("Exclusive"), 2)
	diluRel := rowFloat(t, agg.FindRow("Dilu"), 2)
	if diluRel <= exclRel {
		t.Fatalf("Dilu inference aggregate/GPU %v must beat Exclusive %v", diluRel, exclRel)
	}
}

func TestKernelTraceShape(t *testing.T) {
	rep := Figure13(testOpts())
	a := rep.Table("Figure 13(a).")
	if a == nil {
		t.Fatal("missing case-1 table")
	}
	dilu := rowFloat(t, a.FindRow("Dilu"), 1)
	mpsr := rowFloat(t, a.FindRow("MPS-r"), 1)
	if dilu >= mpsr {
		t.Fatalf("at low load Dilu's inference kernel ratio %v should sit below MPS-r %v", dilu, mpsr)
	}
}

func TestControllerAblationShape(t *testing.T) {
	rep := ControllerAblation(testOpts())
	tb := rep.Table("Controller ablation")
	if tb == nil {
		t.Fatal("missing table")
	}
	def := rowFloat(t, tb.FindRow("stabilized (default)"), 1)
	noPress := rowFloat(t, tb.FindRow("no pressure hold"), 1)
	if noPress <= def {
		t.Fatalf("removing the pressure hold should raise p95: %v vs %v", noPress, def)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// sloSystems are the cluster schedulers the trace/SLO scenarios compare:
// Dilu's 2D co-scaling against the INFless-style predictive scaler and
// the FaST-GS-style eager one.
var sloSystems = []string{"Dilu", "INFless+-r", "FaST-GS+"}

// traceModelCatalog maps trace function-name hints to model catalog
// entries. Ordered most-specific first and matched in slice order —
// "bert" is a substring of "roberta", and replay determinism requires
// the resolution to never depend on iteration order.
var traceModelCatalog = []struct{ hint, model string }{
	{"roberta", "RoBERTa-large"},
	{"resnet", "ResNet152"},
	{"gpt2", "GPT2-large"},
	{"bert", "BERT-base"},
	{"vgg", "VGG19"},
}

var traceModelFallback = []string{"RoBERTa-large", "BERT-base", "VGG19"}

// modelForTraceFunc resolves a trace function name to a catalog model:
// substring hints first ("prod-roberta-eu" → RoBERTa-large), then a
// deterministic round-robin over the fallback list.
func modelForTraceFunc(fn string, i int) string {
	lower := strings.ToLower(fn)
	for _, e := range traceModelCatalog {
		if strings.Contains(lower, e.hint) {
			return e.model
		}
	}
	return traceModelFallback[i%len(traceModelFallback)]
}

// sloRow adds one function's SLO accounting to the per-function table.
func sloRow(t *report.Table, system string, st metrics.SLOFuncStats) {
	attain := "no"
	if st.AttainedP95 {
		attain = "yes"
	}
	t.AddRow(system, st.Func, float64(st.Requests), st.ViolationRate()*100,
		float64(st.ColdStartViolations), st.GoodputRPS, st.P95Millis, attain)
}

// sloAggRow adds one system's aggregate SLO accounting.
func sloAggRow(t *report.Table, system string, sum *metrics.SLOSummary) {
	t.AddRow(system, float64(sum.Requests), sum.ViolationRate()*100,
		sum.ColdStartShare()*100, sum.GoodputRPS,
		sum.P95Attainment*100, sum.P99Attainment*100)
}

// newSLOFuncTable returns the per-function accounting table shared by
// the trace/SLO drivers.
func newSLOFuncTable(caption string) *report.Table {
	return report.NewTable(caption,
		"system", "function", "reqs", "SVR %", "cold viol", "goodput rps", "p95 ms", "p95 ok")
}

// newSLOAggTable returns the per-system aggregate table.
func newSLOAggTable(caption string) *report.Table {
	return report.NewTable(caption,
		"system", "reqs", "SVR %", "cold share %", "goodput rps", "p95 attain %", "p99 attain %")
}

// SLOSweep sweeps offered load against the three schedulers and accounts
// SLO attainment, goodput and cold-start-attributed violations at each
// pressure point — the HAS-GPU-style question ("how does co-scaling
// degrade as SLO pressure rises?") the paper's fixed-rate scenarios
// cannot answer. The mix exercises the production-shaped generators:
// bursty head traffic, a diurnal cycle, and Pareto heavy-tail arrivals;
// one function carries a deliberately tightened per-function SLO.
func SLOSweep(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("slo_sweep", "SLO pressure sweep (trace-driven workloads, extra)")
	dur := opts.dur(120 * sim.Second)

	perFunc := rep.AddTable(newSLOFuncTable("SLO sweep: per-function accounting at load ×1.0"))
	agg := rep.AddTable(report.NewTable(
		"SLO sweep: aggregate accounting by load multiplier",
		"load ×", "system", "reqs", "SVR %", "cold share %", "goodput rps", "p95 attain %"))

	for _, mult := range []float64{0.5, 1.0, 2.0} {
		for _, label := range sloSystems {
			sys := mustClusterSystem(label, 2, 4, opts)
			deploy := func(name, modelName string, arr workload.Arrivals, slo sim.Duration) {
				if _, err := sys.DeployInference(name, modelName, core.InferOpts{
					Instances: 1, Arrivals: arr, SLO: slo,
				}); err != nil {
					panic(err)
				}
			}
			deploy("rob-burst", "RoBERTa-large", workload.Bursty{
				BaseRPS: 15 * mult, Scale: 4, BurstDur: 15 * sim.Second, Quiet: 40 * sim.Second,
			}, 0)
			deploy("bert-diurnal", "BERT-base", workload.Diurnal{
				TroughRPS: 4 * mult, DayRPS: 40 * mult, Period: 120 * sim.Second,
			}, model.ByName("BERT-base").SLO/2) // tightened per-function target
			deploy("vgg-pareto", "VGG19", workload.Pareto{RPS: 12 * mult, Alpha: 1.5}, 0)
			sys.Run(dur)
			sum := sys.SLOSummary()
			agg.AddRow(fmt.Sprintf("%.1f", mult), label, float64(sum.Requests),
				sum.ViolationRate()*100, sum.ColdStartShare()*100,
				sum.GoodputRPS, sum.P95Attainment*100)
			if mult == 1.0 {
				for _, st := range sum.Funcs {
					sloRow(perFunc, label, st)
				}
				if label == "Dilu" {
					rep.SetSLO(sum)
				}
			}
		}
	}
	rep.AddNote("SVR and cold-start share should rise with load on every system; Dilu's vertical headroom keeps goodput closest to offered load")
	return rep
}

// TraceReplay replays the committed sample trace (see
// internal/workload/testdata/traces) against the three schedulers — the
// registered driver wraps TraceReplayOn so `dilu-bench -trace` can run
// arbitrary external traces through the identical scenario.
func TraceReplay(opts Options) *report.Report {
	return TraceReplayOn(opts, workload.MustSampleTrace("sample_mix"))
}

// TraceReplayOn replays one parsed arrival trace against the three
// schedulers with full SLO accounting. Each trace function deploys as
// its own inference function (model resolved from the name), replaying
// its exact arrival subsequence through the engine's series cursor.
func TraceReplayOn(opts Options, tr *workload.Trace) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("trace_replay",
		fmt.Sprintf("Trace replay with SLO accounting (trace %q, %d events, extra)", tr.Label, tr.Count()))
	dur := opts.dur(tr.Duration())
	funcs := tr.Functions()

	perFunc := rep.AddTable(newSLOFuncTable(
		fmt.Sprintf("Trace %q: per-function SLO accounting", tr.Label)))
	agg := rep.AddTable(newSLOAggTable(
		fmt.Sprintf("Trace %q: aggregate by system", tr.Label)))

	for _, label := range sloSystems {
		sys := mustClusterSystem(label, 2, 4, opts)
		for i, fn := range funcs {
			if _, err := sys.DeployInference(fn, modelForTraceFunc(fn, i), core.InferOpts{
				Instances: 1, Arrivals: tr.Arrivals(fn),
			}); err != nil {
				panic(err)
			}
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		for _, st := range sum.Funcs {
			sloRow(perFunc, label, st)
		}
		sloAggRow(agg, label, sum)
		if label == "Dilu" {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("replayed through sim.ScheduleSeries cursors: an N-event trace costs one cursor per function, not N heap slots")
	return rep
}

// TenantMixStudy runs a multi-tenant Zipf-skewed mix against the three
// schedulers: head tenants dominate traffic (bursty), tail tenants are
// sporadic — the popularity regime where keep-alive policy and
// cold-start attribution separate the schedulers.
func TenantMixStudy(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("tenant_mix", "Multi-tenant Zipf mix with SLO accounting (extra)")
	dur := opts.dur(120 * sim.Second)

	mix := workload.TenantMix{
		Tenants: 6, TotalRPS: 60, Skew: 1.1,
		Shape: func(i int, rps float64) workload.Arrivals {
			if i == 0 {
				// The head tenant bursts; the tail is Poisson at its
				// (small) popularity share.
				return workload.Bursty{BaseRPS: rps, Scale: 3, BurstDur: 15 * sim.Second, Quiet: 45 * sim.Second}
			}
			return workload.Poisson{RPS: rps}
		},
	}
	// One split, shared by every system: all three schedulers face the
	// byte-identical offered load.
	tenants := mix.Split(sim.NewRNG(opts.Seed), dur)

	weights := rep.AddTable(report.NewTable(
		"Tenant popularity (Zipf skew 1.1)", "tenant", "weight", "arrivals"))
	for _, ta := range tenants {
		weights.AddRow(ta.Tenant, ta.Weight, float64(len(ta.Times)))
	}

	perFunc := rep.AddTable(newSLOFuncTable("Tenant mix: per-tenant SLO accounting"))
	agg := rep.AddTable(newSLOAggTable("Tenant mix: aggregate by system"))
	for _, label := range sloSystems {
		sys := mustClusterSystem(label, 2, 4, opts)
		for i, ta := range tenants {
			// The structured tenant ID is the function name here (the
			// pre-gateway encoding, byte-identical output); the
			// tenant_fairness driver is the one that also sets
			// InferOpts.Tenant and exercises per-tenant admission.
			if _, err := sys.DeployInference(ta.Tenant, traceModelFallback[i%len(traceModelFallback)], core.InferOpts{
				Instances: 1,
				Arrivals:  workload.Times{Label: ta.Tenant, T: ta.Times},
			}); err != nil {
				panic(err)
			}
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		for _, st := range sum.Funcs {
			sloRow(perFunc, label, st)
		}
		sloAggRow(agg, label, sum)
		if label == "Dilu" {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("head tenants stress vertical headroom, tail tenants stress keep-alive: cold-start-attributed violations concentrate in the tail")
	return rep
}

package experiments

import (
	"testing"

	"dilu/internal/sim"
	"dilu/internal/workload"
)

// TestGrayFailureMitigationRestoresAttainment pins the driver's
// acceptance property at the golden scale: the adversarial schedule
// destroys admitted-traffic p99 attainment, and turning the mitigations
// on (same seed, same schedule) restores it while the per-cause columns
// attribute the work to hedges and quarantine migrations.
func TestGrayFailureMitigationRestoresAttainment(t *testing.T) {
	rep := GrayFailure(testOpts())
	if rep.SLO == nil || rep.SLO.Resilience == nil {
		t.Fatal("gray_failure must attach an SLO summary with a resilience block")
	}
	agg := rep.Table("Gray failure: admitted-traffic SLO attainment by arm (same seed, same schedule)")
	if agg == nil || len(agg.Rows) != 3 {
		t.Fatal("aggregate table wrong")
	}
	p99 := map[string]float64{}
	attain := map[string]float64{}
	for _, row := range agg.Rows {
		p99[row[0]] = gwCell(t, row, 2)
		attain[row[0]] = gwCell(t, row, 3)
	}
	if attain["fault-free"] != 100 {
		t.Fatalf("fault-free arm misses p99 attainment: %.1f%%", attain["fault-free"])
	}
	if attain["faults"] >= attain["fault-free"] {
		t.Fatalf("fault schedule did not degrade attainment: %.1f%%", attain["faults"])
	}
	if attain["faults+mitigation"] <= attain["faults"] {
		t.Fatalf("mitigations do not restore p99 attainment: %.1f%% vs %.1f%% unmitigated",
			attain["faults+mitigation"], attain["faults"])
	}
	if p99["faults+mitigation"] >= p99["faults"] {
		t.Fatalf("mitigated p99 %.1fms not below unmitigated %.1fms",
			p99["faults+mitigation"], p99["faults"])
	}
	// Per-cause attribution: the mitigated run must have actually done
	// something — speculative copies won races and the health monitor
	// ejected the flaky capacity (the migrations rode the drain path).
	res := rep.SLO.Resilience
	if res.SlowEvents == 0 || res.ErrorEvents == 0 {
		t.Fatalf("resilience block missing fault events: %+v", res)
	}
	if res.HedgeWins == 0 {
		t.Fatalf("no hedge wins under the adversarial schedule: %+v", res)
	}
	if res.Quarantines == 0 || res.QuarantineMigrations == 0 {
		t.Fatalf("health monitor never quarantined the flaky GPUs: %+v", res)
	}
}

// TestStragglerTailHedgeBeatsTimeoutOnly pins the tail-at-scale result:
// with the same straggler schedule, hedged dispatch cuts the p95 tail
// and lifts goodput over what timeout/retry alone achieves, and wins
// enough races to justify its duplicate work.
func TestStragglerTailHedgeBeatsTimeoutOnly(t *testing.T) {
	rep := StragglerTail(testOpts())
	if rep.SLO == nil || rep.SLO.Resilience == nil {
		t.Fatal("straggler_tail must attach an SLO summary with a resilience block")
	}
	agg := rep.Table("Straggler tail: per-arm attainment (same straggler schedule)")
	if agg == nil || len(agg.Rows) != 2 {
		t.Fatal("aggregate table wrong")
	}
	p95 := map[string]float64{}
	p99 := map[string]float64{}
	goodput := map[string]float64{}
	hedgeWins := map[string]float64{}
	for _, row := range agg.Rows {
		p95[row[0]] = gwCell(t, row, 2)
		p99[row[0]] = gwCell(t, row, 3)
		goodput[row[0]] = gwCell(t, row, 4)
		hedgeWins[row[0]] = gwCell(t, row, 8)
	}
	if p95["timeout+hedge"] >= p95["timeout-only"] {
		t.Fatalf("hedging does not cut the tail: p95 %.1fms vs %.1fms timeout-only",
			p95["timeout+hedge"], p95["timeout-only"])
	}
	if p99["timeout+hedge"] > p99["timeout-only"] {
		t.Fatalf("hedging worsens p99: %.1fms vs %.1fms timeout-only",
			p99["timeout+hedge"], p99["timeout-only"])
	}
	if goodput["timeout+hedge"] <= goodput["timeout-only"] {
		t.Fatalf("hedging does not lift goodput: %.1f vs %.1f rps",
			goodput["timeout+hedge"], goodput["timeout-only"])
	}
	if hedgeWins["timeout-only"] != 0 {
		t.Fatal("timeout-only arm reports hedge wins")
	}
	if hedgeWins["timeout+hedge"] <= 0 {
		t.Fatal("hedge arm never won a race")
	}
	if rep.SLO.Resilience.Hedges == 0 || rep.SLO.Resilience.HedgeWins == 0 {
		t.Fatalf("resilience block missing hedge attribution: %+v", rep.SLO.Resilience)
	}
}

// TestFaultDriversDeterministic extends the reproducibility contract to
// the gray-failure drivers: same (seed, scale) → byte-identical reports.
func TestFaultDriversDeterministic(t *testing.T) {
	for _, id := range []string{"gray_failure", "straggler_tail"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a := d.Run(testOpts()).JSON()
		b := d.Run(testOpts()).JSON()
		if a != b {
			t.Fatalf("%s: report not deterministic", id)
		}
	}
}

// TestDisturbanceReplayShape exercises the -churn/-faults CLI entry
// point: an external schedule of each kind replays against the serving
// mix and the report carries both lifecycle and resilience fallout.
func TestDisturbanceReplayShape(t *testing.T) {
	churn := []workload.ChurnEvent{
		{At: 2 * sim.Second, Kind: workload.ChurnFail, Node: 1},
	}
	faults := []workload.FaultEvent{
		{At: 1 * sim.Second, Kind: workload.FaultSlow, Node: 0, GPU: 0, Factor: 4},
		{At: 3 * sim.Second, Kind: workload.FaultError, Node: 2, GPU: -1},
		{At: 6 * sim.Second, Kind: workload.FaultSlow, Node: 0, GPU: 0, Factor: 1},
	}
	rep := DisturbanceReplayOn(testOpts(), churn, faults)
	if rep.SLO == nil {
		t.Fatal("disturbance_replay must attach an SLO summary")
	}
	agg := rep.Table("Disturbance replay: SLO accounting and lifecycle fallout")
	if agg == nil || len(agg.Rows) != 1 {
		t.Fatal("aggregate table wrong")
	}
	row := agg.Rows[0]
	if gwCell(t, row, 4) != 1 { // failures
		t.Fatalf("churn failure not replayed: %v", row)
	}
	if gwCell(t, row, 6) != 2 || gwCell(t, row, 7) != 1 { // slow, error events
		t.Fatalf("fault events not replayed: %v", row)
	}
	if rep.SLO.Resilience == nil {
		t.Fatal("resilience block missing after fault injection")
	}
}

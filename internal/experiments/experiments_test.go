package experiments

import (
	"strconv"
	"strings"
	"testing"

	"dilu/internal/report"
	"dilu/internal/sim"
)

// quick options keep these integration tests fast while exercising the
// full driver structure.
func testOpts() Options { return Options{Scale: 0.1, Seed: 1} }

// skipSlowTier skips the test under `go test -short` when any of the
// named drivers is in the slow cost tier. Gating through the registry
// keeps the short suite in sync with driver metadata: promoting a driver
// to TierSlow automatically pulls its tests out of the short tier.
func skipSlowTier(t *testing.T, ids ...string) {
	t.Helper()
	if !testing.Short() {
		return
	}
	for _, id := range ids {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if d.Tier == TierSlow {
			t.Skipf("skipping in -short mode: driver %s is %s tier", id, d.Tier)
		}
	}
}

func TestEveryDriverDeclaresATier(t *testing.T) {
	counts := map[Tier]int{}
	for _, d := range All() {
		if !d.Tier.Valid() {
			t.Fatalf("driver %s has invalid tier %q", d.ID, d.Tier)
		}
		counts[d.Tier]++
	}
	for _, tier := range Tiers() {
		if counts[tier] == 0 {
			t.Fatalf("no driver declares tier %s — registry metadata degenerate", tier)
		}
	}
	if got := len(ByTier(Tiers()...)); got != len(All()) {
		t.Fatalf("ByTier(all tiers) = %d drivers, want %d", got, len(All()))
	}
	quick := ByTier(TierQuick)
	for _, d := range quick {
		if d.Tier != TierQuick {
			t.Fatalf("ByTier(quick) returned %s driver %s", d.Tier, d.ID)
		}
	}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	if len(all) != 34 {
		t.Fatalf("registry has %d drivers, want 34", len(all))
	}
	want := []string{"figure2", "figure2cd", "table2", "figure4", "figure7",
		"figure8", "figure9", "figure10", "figure11", "figure12", "table3",
		"figure13", "figure14", "figure15", "figure16", "figure17", "figure18",
		"ablation-controller", "slo_sweep", "trace_replay", "tenant_mix",
		"hyperscale", "hyperscale_max", "hetero_mix", "churn_recovery", "rolling_drain",
		"overload_shed", "tenant_fairness", "gray_failure", "straggler_tail",
		"coldstart_stages", "prewarm_policy",
		"llm_continuous_batch", "llm_kvcache_pressure"}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Run == nil || all[i].Paper == "" {
			t.Fatalf("driver %s incomplete", id)
		}
	}
	if _, err := ByID("figure7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("zzz"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

func TestOptionsClamping(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{Scale: 0.01}.withDefaults()
	if o.Scale != 0.1 {
		t.Fatalf("scale clamp: %v", o.Scale)
	}
	if d := (Options{Scale: 0.1}).withDefaults().dur(20 * 1e6); d < 10*1e6 {
		t.Fatalf("duration floor: %v", d)
	}
}

func cell(t *testing.T, tb *report.Table, rowKey string, col int) float64 {
	t.Helper()
	row := tb.FindRow(rowKey)
	if row == nil {
		t.Fatalf("row %q missing in %q", rowKey, tb.Caption)
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", row[col], err)
	}
	return v
}

func TestTable2Shape(t *testing.T) {
	rep := Table2(testOpts())
	tb := rep.Table("Table 2.")
	if tb == nil {
		t.Fatal("missing table")
	}
	// Traversal must be 60 for every model; Dilu strictly below GPUlet's 16.
	for col := 1; col <= 4; col++ {
		if v := cell(t, tb, "Traversal", col); v != 60 {
			t.Fatalf("traversal col %d = %v", col, v)
		}
		if v := cell(t, tb, "GPUlet", col); v != 16 {
			t.Fatalf("gpulet col %d = %v", col, v)
		}
		dilu := cell(t, tb, "Dilu", col)
		if dilu >= 16 {
			t.Fatalf("Dilu col %d = %v, want < 16", col, dilu)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	rep := Figure4(testOpts())
	tb := rep.Table("Figure 4.")
	if tb == nil || len(tb.Rows) != 4 {
		t.Fatal("star table wrong")
	}
	for _, row := range tb.Rows {
		smr, _ := strconv.ParseFloat(row[2], 64)
		if smr <= 0.05 || smr > 1 {
			t.Fatalf("%s: star SMR %v out of range", row[0], smr)
		}
		blocked, _ := strconv.ParseFloat(row[5], 64)
		if blocked == 0 {
			t.Fatalf("%s: no blocked cells — SLO never binds", row[0])
		}
	}
	// One ridge table per model.
	if len(rep.Tables) != 5 {
		t.Fatalf("tables = %d, want 1 star + 4 ridges", len(rep.Tables))
	}
}

func TestFigure9Shape(t *testing.T) {
	rep := Figure9(testOpts())
	tb := rep.Table("Figure 9.")
	if tb == nil || len(tb.Rows) != 4 {
		t.Fatal("figure9 table wrong")
	}
	for _, row := range tb.Rows {
		dilu, _ := strconv.ParseFloat(row[1], 64)
		mpsr, _ := strconv.ParseFloat(row[3], 64)
		tgs, _ := strconv.ParseFloat(row[4], 64)
		if dilu < 1.4 {
			t.Fatalf("%s: Dilu per-GPU aggregate %v below collocation win", row[0], dilu)
		}
		if dilu <= mpsr {
			t.Fatalf("%s: Dilu %v should beat MPS-r %v", row[0], dilu, mpsr)
		}
		if dilu <= tgs {
			t.Fatalf("%s: Dilu %v should beat TGS %v", row[0], dilu, tgs)
		}
	}
}

func TestFigure17Shape(t *testing.T) {
	rep := Figure17(testOpts())
	tb := rep.Table("Figure 17.")
	if tb == nil {
		t.Fatal("missing table")
	}
	exc := cell(t, tb, "Exclusive", 4) // GPU-hours
	inf := cell(t, tb, "INFless+-l", 4)
	dil := cell(t, tb, "Dilu", 4)
	if !(dil < inf && inf < exc) {
		t.Fatalf("cost ordering broken: Dilu %v, INFless %v, Exclusive %v", dil, inf, exc)
	}
	if frag := cell(t, tb, "Exclusive", 2); frag < cell(t, tb, "Dilu", 2) {
		t.Fatal("Exclusive must have the highest SM fragmentation")
	}
	if len(rep.Series) != 3 {
		t.Fatalf("series = %d", len(rep.Series))
	}
}

func TestHyperscaleShape(t *testing.T) {
	skipSlowTier(t, "hyperscale")
	rep := Hyperscale(testOpts())
	tb := rep.Table("Hyperscale.")
	if tb == nil {
		t.Fatal("missing table")
	}
	// The §5.5 cost ordering must survive the ×10 cluster.
	exc := cell(t, tb, "Exclusive", 5) // GPU-hours
	inf := cell(t, tb, "INFless+-l", 5)
	dil := cell(t, tb, "Dilu", 5)
	if !(dil < inf && inf < exc) {
		t.Fatalf("cost ordering broken: Dilu %v, INFless %v, Exclusive %v", dil, inf, exc)
	}
	// Dilu must place every request at this density (capacity is ample
	// once collocation works); Exclusive is allowed to shed load.
	if placed := cell(t, tb, "Dilu", 1); placed < cell(t, tb, "Exclusive", 1) {
		t.Fatalf("Dilu placed %v requests, fewer than Exclusive", placed)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("series = %d", len(rep.Series))
	}
}

func TestHyperscaleBatchAllSchedulers(t *testing.T) {
	placed := HyperscaleScheduleBatch(1000, 400, 1)
	for _, name := range []string{"Exclusive", "INFless+-l", "Dilu"} {
		if placed[name] != 400 {
			t.Fatalf("%s placed %d / 400 on a 4,000-GPU cluster", name, placed[name])
		}
	}
}

func TestFigure18OversubscriptionDiminishes(t *testing.T) {
	skipSlowTier(t, "figure18")
	rep := Figure18(testOpts())
	a := rep.Table("Figure 18(a).")
	if a == nil {
		t.Fatal("missing 18(a)")
	}
	g100 := cell(t, a, "1.00", 1)
	g150 := cell(t, a, "1.50", 1)
	g250 := cell(t, a, "2.50", 1)
	if g150 >= g100 {
		t.Fatalf("γ=1.5 (%v GPUs) should beat γ=1.0 (%v)", g150, g100)
	}
	// Diminishing returns: the 1.5→2.5 gain is smaller than 1.0→1.5.
	if g150-g250 >= g100-g150 {
		t.Fatalf("no diminishing returns: 1.0→1.5 saves %v, 1.5→2.5 saves %v",
			g100-g150, g150-g250)
	}
}

func TestFigure18MaxTokensUShape(t *testing.T) {
	skipSlowTier(t, "figure18")
	rep := Figure18(testOpts())
	b := rep.Table("Figure 18(b).")
	if b == nil {
		t.Fatal("missing 18(b)")
	}
	low := cell(t, b, "0.25", 2) // SVR at starving tokens
	mid := cell(t, b, "1.00", 2)
	if low <= mid {
		t.Fatalf("conservative MaxTokens should starve: svr(0.25)=%v svr(1)=%v", low, mid)
	}
	trLow := cell(t, b, "0.25", 3)
	trMid := cell(t, b, "1.00", 3)
	if trLow >= trMid {
		t.Fatalf("training should also suffer at 0.25×: %v vs %v", trLow, trMid)
	}
}

func TestFigure2Anchors(t *testing.T) {
	rep := Figure2(testOpts())
	idle := rep.Table("Figure 2(a/b).")
	if idle == nil {
		t.Fatal("missing idling table")
	}
	gpt := idle.FindRow("GPT2-large 4-worker DDP")
	if gpt == nil {
		t.Fatal("missing GPT2 row")
	}
	frac, _ := strconv.ParseFloat(gpt[2], 64)
	if frac < 0.35 || frac > 0.55 {
		t.Fatalf("GPT2 DDP idle fraction %v, want ~0.4 (paper: >40%%)", frac)
	}
	ka := rep.Table("Figure 2(a). Keep-alive")
	if ka == nil {
		t.Fatal("missing keep-alive table")
	}
	waste := cell(t, ka, "time-dimension waste", 1)
	if waste < 0.7 {
		t.Fatalf("keep-alive waste %v, want >0.7 (paper: >95%%)", waste)
	}
}

func TestFigure11OverheadNegligible(t *testing.T) {
	rep := Figure11(testOpts())
	a := rep.Table("Figure 11(a).")
	for _, row := range a.Rows {
		norm, _ := strconv.ParseFloat(row[3], 64)
		if norm < 0.97 || norm > 1.03 {
			t.Fatalf("%s: managed training overhead %v, want ~1.0", row[0], norm)
		}
	}
	b := rep.Table("Figure 11(b).")
	for _, row := range b.Rows {
		norm, _ := strconv.ParseFloat(row[3], 64)
		if norm < 0.9 || norm > 1.15 {
			t.Fatalf("n=%s: managed inference latency ratio %v", row[0], norm)
		}
	}
}

func TestSystemForVariants(t *testing.T) {
	for _, label := range []string{"Dilu", "Dilu-RC", "Dilu-WA", "Dilu-VS",
		"Exclusive", "INFless+", "INFless+-l", "INFless+-r", "FaST-GS+"} {
		sys, err := clusterSystem(label, 1, 2, Options{Seed: 1}, 0)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if sys == nil {
			t.Fatalf("%s: nil system", label)
		}
	}
	if _, err := clusterSystem("bogus", 1, 2, Options{Seed: 1}, 0); err == nil {
		t.Fatal("bogus label accepted")
	}
}

func TestScheduleBatchPlacesEverything(t *testing.T) {
	if placed := ScheduleBatch(400, 1); placed != 400 {
		t.Fatalf("placed %d / 400 on a 4,000-GPU cluster", placed)
	}
}

func TestLargeScaleMixRatio(t *testing.T) {
	mix := largeScaleMix(1000, 3600*sim.Second, sim.NewRNG(99))
	train, llm, inf := 0, 0, 0
	for _, m := range mix {
		switch {
		case strings.HasPrefix(m.fn, "train-"):
			train++
		case strings.HasPrefix(m.fn, "llm-"):
			llm++
		default:
			inf++
		}
	}
	if train != 200 || llm != 200 || inf != 600 {
		t.Fatalf("mix ratio %d:%d:%d, want 200:200:600", train, llm, inf)
	}
	for _, m := range mix {
		if m.depart <= m.arrive {
			t.Fatal("lifetime must be positive")
		}
	}
}

func TestReportsRenderNonEmpty(t *testing.T) {
	// Cheap structural check over the fast drivers.
	for _, id := range []string{"table2", "figure4", "figure9", "figure14", "figure17"} {
		d, _ := ByID(id)
		out := d.Run(testOpts()).String()
		if len(out) < 200 || !strings.Contains(out, "== "+id) {
			t.Fatalf("%s: degenerate report:\n%s", id, out)
		}
	}
}

package experiments

import (
	"fmt"
	"testing"
)

func TestShapeInspect2(t *testing.T) {
	o := Options{Scale: 0.3, Seed: 1}
	for _, id := range []string{"table3", "figure15", "figure16"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		// Per-driver gating keeps table3 (standard tier) in the short
		// suite while the slow figure15/16 drop out.
		if testing.Short() && d.Tier == TierSlow {
			continue
		}
		fmt.Println(d.Run(o).String())
	}
}

package experiments

import (
	"fmt"
	"testing"
)

func TestShapeInspect2(t *testing.T) {
	o := Options{Scale: 0.3, Seed: 1}
	for _, id := range []string{"table3", "figure15", "figure16"} {
		d, _ := ByID(id)
		fmt.Println(d.Run(o).String())
	}
}

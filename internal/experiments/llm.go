package experiments

import (
	"dilu/internal/cluster"
	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// LLM serving drivers: the token-level regime the fixed-batch generative
// path could not express. Both scenarios deploy LLaMA2-7B through
// core.LLMOpts — requests carry Zipf-mixed prompt/decode lengths, each
// scheduling step decodes one token per resident sequence, and KV-cache
// growth is charged against GPU memory — and read the TTFT/TPOT/token-
// throughput roll-up back out of the SLO summary's LLM block.

// llmFuncRow adds one arm's token-level accounting to the table.
func llmFuncRow(t *report.Table, arm string, sum *metrics.SLOSummary) {
	l := sum.LLM
	if l == nil || len(l.Funcs) == 0 {
		panic("experiments: LLM block missing from SLO summary")
	}
	st := l.Funcs[0]
	t.AddRow(arm, float64(st.Requests), float64(st.TokensOut), st.TokensPerSecond,
		st.TTFTP95Millis, float64(st.TTFTViolations), st.TPOTP95Millis,
		sum.GoodputRPS, float64(l.CacheFullPreemptions), float64(l.AdmitRefusals))
}

// llmTokenMix is the production-shaped request-length mix both drivers
// sample: most prompts and decodes short, a heavy tail long.
func llmTokenMix(promptMax, decodeMax int) workload.TokenSampler {
	return workload.ZipfTokenMix{
		PromptMin: 16, PromptMax: promptMax,
		DecodeMin: 8, DecodeMax: decodeMax,
		Alpha: 1.1,
	}
}

// LLMContinuousBatch compares continuous batching against run-to-
// completion static batching on a Zipf prompt/decode mix at moderate
// overload: with run-to-completion a short request arriving behind a
// long batch waits for the whole batch to drain before prefilling, so
// TTFT collapses; continuous batching joins it at the next step
// boundary. Token throughput, TPOT, and goodput come along for the
// comparison — the continuous-batching claim of DeepServe-style
// serverless LLM serving.
func LLMContinuousBatch(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("llm_continuous_batch", "LLM serving: continuous batching vs run-to-completion on a Zipf token mix (extra)")
	dur := opts.dur(60 * sim.Second)

	arms := []struct {
		name string
		rtc  bool
	}{
		{"continuous", false},
		{"run-to-completion", true},
	}
	table := rep.AddTable(report.NewTable(
		"LLM batching: token-level SLO attainment by admission mode",
		"mode", "requests", "tokens out", "tok/s", "ttft p95 ms", "ttft viol", "tpot p95 ms", "goodput rps", "preempt", "refusals"))

	for _, arm := range arms {
		sys := core.MustSystem(core.Config{
			Nodes: 1, GPUsPerNode: 2, Seed: opts.Seed, Meter: opts.Meter,
		})
		if _, err := sys.DeployInference("llama2-chat", "LLaMA2-7B", core.InferOpts{
			Instances: 2, Stages: 1, NoScaler: true,
			Arrivals: workload.Poisson{RPS: 8},
			LLM: &core.LLMOpts{
				MaxBatch:        8,
				RunToCompletion: arm.rtc,
				TTFT:            300 * sim.Millisecond,
				TPOT:            80 * sim.Millisecond,
				Tokens:          llmTokenMix(256, 64),
			},
		}); err != nil {
			panic(err)
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		llmFuncRow(table, arm.name, sum)
		if !arm.rtc {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("same arrivals, same token mix, same KV budget: run-to-completion holds joiners behind the draining batch (TTFT tail grows with batch residency) while continuous batching admits them at step boundaries")
	return rep
}

// LLMKVCachePressure drives memory-bound decode: a KV-tight GPU class
// leaves ~1 GB of cache headroom over the model's weights, the token mix
// skews long, and a sustained overload ramps resident concurrency until
// per-token KV growth exhausts the cache — forcing youngest-sequence
// preemptions mid-decode and admission refusals at the queue head, both
// of which the manifest records. The conservation invariant (armed for
// every driver) audits the charge/release ledger at placement, GPU, and
// device granularity throughout.
func LLMKVCachePressure(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("llm_kvcache_pressure", "LLM serving: KV-cache pressure under memory-bound decode (extra)")
	dur := opts.dur(60 * sim.Second)

	sys := core.MustSystem(core.Config{
		Nodes: 1, GPUsPerNode: 2, Seed: opts.Seed, Meter: opts.Meter,
		// 17 GB cards: LLaMA2-7B's 16 GB of weights leave 1 GB (≈2k
		// tokens) of KV headroom per GPU.
		Classes: []cluster.GPUClass{{Name: "kv-tight", Capacity: 1, MemCapMB: 17 * 1024, Weight: 1}},
	})
	if _, err := sys.DeployInference("llama2-longform", "LLaMA2-7B", core.InferOpts{
		Instances: 2, Stages: 1, NoScaler: true,
		Arrivals: workload.Poisson{RPS: 6},
		LLM: &core.LLMOpts{
			MaxBatch: 16,
			TTFT:     300 * sim.Millisecond,
			TPOT:     80 * sim.Millisecond,
			Tokens:   llmTokenMix(512, 256),
		},
	}); err != nil {
		panic(err)
	}
	sys.Run(dur)
	sum := sys.SLOSummary()

	table := rep.AddTable(report.NewTable(
		"KV pressure: cache occupancy and pressure events",
		"requests", "tokens out", "tok/s", "kv peak mb", "kv peak share %", "preempt", "refusals", "ttft p95 ms"))
	l := sum.LLM
	if l == nil || len(l.Funcs) == 0 {
		panic("experiments: LLM block missing from SLO summary")
	}
	st := l.Funcs[0]
	table.AddRow(float64(st.Requests), float64(st.TokensOut), st.TokensPerSecond,
		l.KVPeakMB, l.KVPeakShare*100, float64(l.CacheFullPreemptions),
		float64(l.AdmitRefusals), st.TTFTP95Millis)
	rep.SetSLO(sum)
	rep.AddNote("decode is memory-bound, not compute-bound: each resident sequence grows its KV slice one token per step until the cache fills, evicting the youngest sequence (its decode restarts from prefill on redispatch) and refusing queue heads")
	return rep
}

package experiments

import (
	"strconv"
	"strings"
	"testing"

	"dilu/internal/sim"
	"dilu/internal/workload"
)

func TestTraceReplayShape(t *testing.T) {
	rep := TraceReplay(testOpts())
	if rep.SLO == nil {
		t.Fatal("trace_replay must attach an SLO summary")
	}
	if rep.SLO.Requests == 0 {
		t.Fatal("no requests accounted")
	}
	per := rep.Table("Trace \"sample_mix\": per-function")
	if per == nil {
		t.Fatal("missing per-function table")
	}
	// 3 systems × 3 trace functions.
	if len(per.Rows) != 9 {
		t.Fatalf("per-function rows = %d, want 9", len(per.Rows))
	}
	agg := rep.Table("Trace \"sample_mix\": aggregate")
	if agg == nil || len(agg.Rows) != 3 {
		t.Fatal("aggregate table wrong")
	}
	// Every system faces the identical replayed offered load, so served
	// request counts agree across systems (all requests complete inside
	// the horizon slack the SLO pressure leaves at scale 0.1).
	for _, row := range agg.Rows[1:] {
		if row[1] == "0" {
			t.Fatalf("system %s served nothing", row[0])
		}
	}
}

func TestTraceReplayOnCustomTrace(t *testing.T) {
	tr := &workload.Trace{Label: "tiny", Events: []workload.TraceEvent{
		{At: sim.Second, Func: "bert-fn"},
		{At: 2 * sim.Second, Func: "bert-fn"},
		{At: 3 * sim.Second, Func: "mystery-fn"},
	}}
	rep := TraceReplayOn(testOpts(), tr)
	if rep.SLO == nil || rep.SLO.Requests == 0 {
		t.Fatalf("custom trace not accounted: %+v", rep.SLO)
	}
	if !strings.Contains(rep.Title, "tiny") {
		t.Fatalf("title %q does not name the trace", rep.Title)
	}
}

func TestModelForTraceFunc(t *testing.T) {
	if m := modelForTraceFunc("prod-roberta-eu", 0); m != "RoBERTa-large" {
		t.Fatalf("hint mapping: %s", m)
	}
	if m := modelForTraceFunc("VGG-serving", 0); m != "VGG19" {
		t.Fatalf("case-insensitive hint: %s", m)
	}
	// Unknown names round-robin deterministically.
	a, b := modelForTraceFunc("x", 0), modelForTraceFunc("x", 1)
	if a == b {
		t.Fatalf("fallback not round-robin: %s/%s", a, b)
	}
}

func TestSLOSweepShape(t *testing.T) {
	rep := SLOSweep(testOpts())
	if rep.SLO == nil {
		t.Fatal("slo_sweep must attach an SLO summary")
	}
	agg := rep.Table("SLO sweep: aggregate")
	if agg == nil {
		t.Fatal("missing aggregate table")
	}
	// 3 load multipliers × 3 systems.
	if len(agg.Rows) != 9 {
		t.Fatalf("aggregate rows = %d, want 9", len(agg.Rows))
	}
	// Offered load, and with it accounted requests, must grow with the
	// multiplier for every system.
	reqs := func(mult, system string) float64 {
		for _, row := range agg.Rows {
			if row[0] == mult && row[1] == system {
				v, err := strconv.ParseFloat(row[2], 64)
				if err != nil {
					t.Fatalf("bad reqs cell %q", row[2])
				}
				return v
			}
		}
		t.Fatalf("row %s/%s missing", mult, system)
		return 0
	}
	for _, system := range sloSystems {
		lo, hi := reqs("0.5", system), reqs("2.0", system)
		if hi <= lo {
			t.Fatalf("%s: requests did not grow with load: %.0f → %.0f", system, lo, hi)
		}
	}
}

func TestTenantMixShape(t *testing.T) {
	rep := TenantMixStudy(testOpts())
	if rep.SLO == nil {
		t.Fatal("tenant_mix must attach an SLO summary")
	}
	w := rep.Table("Tenant popularity")
	if w == nil || len(w.Rows) != 6 {
		t.Fatal("popularity table wrong")
	}
	// Zipf head strictly outweighs the tail.
	head, _ := strconv.ParseFloat(w.Rows[0][1], 64)
	tail, _ := strconv.ParseFloat(w.Rows[5][1], 64)
	if head <= 2*tail {
		t.Fatalf("no skew: head %v tail %v", head, tail)
	}
	per := rep.Table("Tenant mix: per-tenant")
	if per == nil || len(per.Rows) != 18 { // 3 systems × 6 tenants
		t.Fatal("per-tenant table wrong")
	}
}

// TestSLODriversDeterministic pins the reproducibility contract for the
// new drivers the same way the harness manifest does: two runs at the
// same (seed, scale) must produce byte-identical reports including the
// SLO summary JSON.
func TestSLODriversDeterministic(t *testing.T) {
	for _, id := range []string{"slo_sweep", "trace_replay", "tenant_mix"} {
		d, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a := d.Run(testOpts()).JSON()
		b := d.Run(testOpts()).JSON()
		if a != b {
			t.Fatalf("%s: report not deterministic", id)
		}
	}
}

package experiments

import (
	"sync"

	"dilu/internal/core"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// e2eSystems are the Figure 15/16 comparison points, including the three
// ablations.
var e2eSystems = []string{"Exclusive", "INFless+-l", "INFless+-r", "Dilu", "Dilu-RC", "Dilu-WA", "Dilu-VS"}

// e2eResult aggregates one system's end-to-end run.
type e2eResult struct {
	label string
	// svrs holds per-inference-function SLO violation rates (%).
	svrs []float64
	// trainSpeed holds per-job samples/s (finished jobs use their JCT).
	trainSpeed []float64
	maxGPUs    float64
	meanGPUs   float64
	// servedRPS is total completed inference requests per second.
	servedRPS float64
	// trainNorm is Σ per-job throughput normalized by each model's
	// exclusive single-worker rate (so heterogeneous jobs add up).
	trainNorm float64
}

// e2eKey identifies one end-to-end scenario; the meter is deliberately
// not part of the key (it observes, it does not parameterize).
type e2eKey struct {
	scale float64
	seed  int64
}

// e2eEntry caches the scenario results together with their virtual-time
// accounting so cache hits credit the caller's meter exactly what a
// fresh computation would — keeping manifests independent of whether
// Figure 15 or Figure 16 ran (or computed) first.
type e2eEntry struct {
	results []e2eResult
	virtual sim.Duration
	engines int64
}

// e2eSlot is the compute-once cell for one (scale, seed) scenario. A
// panic during compute is captured and replayed to every caller so both
// figure15 and figure16 fail identically instead of one silently
// reading a zero-value entry (sync.Once marks itself done on panic).
type e2eSlot struct {
	once     sync.Once
	entry    e2eEntry
	panicked interface{}
}

var (
	e2eMu    sync.Mutex
	e2eSlots = map[e2eKey]*e2eSlot{}
)

// runEndToEnd executes the §5.4 scenario on every system: four training
// functions submitted at different times (2×2-worker, 2×4-worker
// including an LLM fine-tune) and three inference functions under
// bursty, periodic, and Poisson workloads. Figure 15 and Figure 16
// share one scenario run per (scale, seed); the per-key slot lets the
// parallel harness compute distinct keys (e.g. a seed sweep)
// concurrently while still deduplicating within a key.
func runEndToEnd(opts Options) []e2eResult {
	opts = opts.withDefaults()
	key := e2eKey{scale: opts.Scale, seed: opts.Seed}
	e2eMu.Lock()
	slot, ok := e2eSlots[key]
	if !ok {
		slot = new(e2eSlot)
		e2eSlots[key] = slot
	}
	e2eMu.Unlock()
	slot.once.Do(func() {
		defer func() { slot.panicked = recover() }()
		slot.entry = computeEndToEnd(opts)
	})
	if slot.panicked != nil {
		panic(slot.panicked)
	}
	opts.Meter.AddVirtual(slot.entry.virtual)
	opts.Meter.AddEngines(slot.entry.engines)
	return slot.entry.results
}

func computeEndToEnd(opts Options) e2eEntry {
	// Meter locally so the accounting can be cached and replayed.
	local := new(sim.Meter)
	opts.Meter = local
	dur := opts.dur(600 * sim.Second)
	var out []e2eResult
	for _, label := range e2eSystems {
		sys := mustClusterSystem(label, 5, 4, opts)
		type jobRef struct {
			tj   *core.TrainingJob
			iter int64
		}
		var jobs []*core.TrainingJob
		addJob := func(name, modelName string, workers int, startAt sim.Duration, iters int64) {
			tj, err := sys.DeployTraining(name, modelName, core.TrainOpts{
				Workers: workers, StartAt: startAt, TargetIters: iters,
			})
			if err != nil {
				panic(err)
			}
			jobs = append(jobs, tj)
		}
		scale := opts.Scale
		addJob("bert-train", "BERT-base", 2, 0, int64(3200*scale))
		addJob("resnet-train", "ResNet152", 2, 30*sim.Second, int64(3600*scale))
		addJob("gpt2-train", "GPT2-large", 4, 60*sim.Second, int64(1200*scale))
		addJob("llama-ft", "LLaMA2-7B", 4, 90*sim.Second, int64(900*scale))

		var funcs []*core.Function
		addFn := func(name, modelName string, arr workload.Arrivals) {
			f, err := sys.DeployInference(name, modelName, core.InferOpts{Instances: 1, Arrivals: arr})
			if err != nil {
				panic(err)
			}
			funcs = append(funcs, f)
		}
		addFn("rob-inf", "RoBERTa-large", workload.Bursty{BaseRPS: 25, Scale: 4, BurstDur: 30 * sim.Second, Quiet: 60 * sim.Second})
		addFn("bert-inf", "BERT-base", workload.Periodic{BaseRPS: 90, Amp: 0.8, Period: 150 * sim.Second})
		addFn("vgg-inf", "VGG19", workload.Poisson{RPS: 40})

		sys.Run(dur)

		res := e2eResult{label: label, maxGPUs: sys.GPUSeries.Max(), meanGPUs: sys.GPUSeries.Mean()}
		var served int64
		for _, f := range funcs {
			res.svrs = append(res.svrs, f.Rec.ViolationRate()*100)
			served += f.Served()
		}
		res.servedRPS = float64(served) / dur.Seconds()
		for _, tj := range jobs {
			thr := tj.Throughput(sys.Eng.Now())
			res.trainSpeed = append(res.trainSpeed, thr)
			workers := 1
			if tj.Job != nil {
				workers = len(tj.Job.Workers)
			}
			solo := tj.Spec.TrainThroughput(1.0) * float64(workers)
			if tj.Spec.TrainStages > 1 {
				solo = tj.Spec.TrainThroughput(1.0)
			}
			if solo > 0 {
				res.trainNorm += thr / solo
			}
		}
		_ = jobRef{}
		out = append(out, res)
	}
	return e2eEntry{results: out, virtual: local.Virtual(), engines: local.Engines()}
}

// Figure15 reproduces the end-to-end comparison and component ablations:
// inference SVR, normalized training JCT, and maximum GPUs used.
func Figure15(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure15", "End-to-end performance and ablations (Figure 15)")
	results := runEndToEnd(opts)
	var exclusive e2eResult
	for _, r := range results {
		if r.label == "Exclusive" {
			exclusive = r
		}
	}
	a := rep.AddTable(report.NewTable(
		"Figure 15(a). Inference SLO violation rate (%)",
		"system", "mean SVR", "max SVR"))
	b := rep.AddTable(report.NewTable(
		"Figure 15(b). Training speed (normalized JCT vs Exclusive; lower is better) and GPUs",
		"system", "mean norm JCT", "max norm JCT", "max GPUs"))
	for _, r := range results {
		var mean, max float64
		for _, v := range r.svrs {
			mean += v
			if v > max {
				max = v
			}
		}
		mean /= float64(len(r.svrs))
		a.AddRow(r.label, mean, max)

		var jctMean, jctMax float64
		n := 0
		for i, v := range r.trainSpeed {
			if v <= 0 || exclusive.trainSpeed[i] <= 0 {
				continue
			}
			// JCT ratio ≈ inverse throughput ratio.
			jct := exclusive.trainSpeed[i] / v
			jctMean += jct
			if jct > jctMax {
				jctMax = jct
			}
			n++
		}
		if n > 0 {
			jctMean /= float64(n)
		}
		b.AddRow(r.label, jctMean, jctMax, r.maxGPUs)
	}
	rep.AddNote("paper: Exclusive needs 1.5× Dilu's GPUs; -VS raises mean/max SVR by 158%%/203%%; -RC costs one extra GPU; -WA slightly hurts both")
	return rep
}

// Figure16 reproduces the aggregate throughput comparison: served RPS and
// normalized training throughput per occupied GPU, relative to Exclusive.
func Figure16(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure16", "Aggregate throughput per GPU (Figure 16)")
	results := runEndToEnd(opts)
	var exclusive e2eResult
	for _, r := range results {
		if r.label == "Exclusive" {
			exclusive = r
		}
	}
	exInf := exclusive.servedRPS / maxf(exclusive.meanGPUs, 1e-9)
	exTrain := exclusive.trainNorm / maxf(exclusive.meanGPUs, 1e-9)
	t := rep.AddTable(report.NewTable(
		"Figure 16. Aggregate throughput per occupied GPU (Exclusive = 1.0)",
		"system", "inference RPS/GPU", "rel", "train norm/GPU", "rel", "mean GPUs"))
	for _, r := range results {
		inf := r.servedRPS / maxf(r.meanGPUs, 1e-9)
		tr := r.trainNorm / maxf(r.meanGPUs, 1e-9)
		t.AddRow(r.label, inf, inf/maxf(exInf, 1e-9), tr, tr/maxf(exTrain, 1e-9), r.meanGPUs)
	}
	rep.AddNote("paper: Dilu reaches 3.8×/2.8×/2.3× the inference aggregate of Exclusive/INFless+-l/INFless+-r and 2.5×/2.1×/1.2× in training")
	return rep
}

package experiments

import (
	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Gateway drivers: the overload regime the pre-gateway suite could not
// express. Both scenarios push demand past fixed serving capacity
// (NoScaler — the question is admission, not elasticity) and read the
// per-tenant admitted/shed/goodput ledger back out of the SLO summary.

// gatewayTenantTable is the per-tenant admission accounting table shared
// by the gateway drivers.
func gatewayTenantTable(rep *report.Report, caption string) *report.Table {
	return rep.AddTable(report.NewTable(caption,
		"policy", "tenant", "submitted", "admitted", "shed", "served", "goodput rps"))
}

// gatewayTenantRows adds one run's per-tenant ledger to the table.
func gatewayTenantRows(t *report.Table, policy string, g *metrics.GatewaySLO) {
	for _, ts := range g.Tenants {
		t.AddRow(policy, ts.Tenant, float64(ts.Submitted), float64(ts.Admitted),
			float64(ts.Shed), float64(ts.Served), ts.GoodputRPS)
	}
}

// OverloadShed drives three tenants at 2× their fixed serving capacity
// and compares admission policies: admit-all (the pre-gateway
// behaviour), a per-tenant token bucket at capacity rate, and
// deadline-aware shedding. Under overload admit-all queues grow without
// bound and p99 latency for admitted traffic explodes; shedding trades
// dropped requests for SLO goodput — the DeepServe/HAS-GPU production
// tradeoff the gateway exists to express.
func OverloadShed(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("overload_shed", "Overload shedding: admission policy vs SLO goodput at 2× capacity (extra)")
	dur := opts.dur(60 * sim.Second)

	const modelName = "ResNet152"
	prof := profiler.For(model.ByName(modelName), profiler.RoleInference)
	capacity := prof.ServingRPS // per tenant: one fixed instance each
	demand := 2 * capacity
	slo := model.ByName(modelName).SLO

	policies := []struct {
		name string
		mk   func() core.AdmissionPolicy
	}{
		// Fresh policy values per run: admission state is per-system.
		{"admit-all", func() core.AdmissionPolicy { return nil }},
		{"token-bucket", func() core.AdmissionPolicy { return core.NewTokenBucket(0.9*capacity, capacity) }},
		{"deadline-shed", func() core.AdmissionPolicy { return core.DeadlineShed{Slack: 0.7} }},
	}
	tenants := []string{"tenant-a", "tenant-b", "tenant-c"}

	perTenant := gatewayTenantTable(rep, "Overload: per-tenant admission ledger by policy")
	agg := rep.AddTable(report.NewTable(
		"Overload: admitted-traffic SLO attainment by policy",
		"policy", "submitted", "shed %", "admitted reqs", "goodput rps", "p99 ms", "p99 attain %"))

	for _, pol := range policies {
		sys := core.MustSystem(core.Config{
			Nodes: 1, GPUsPerNode: 4, Seed: opts.Seed, Meter: opts.Meter,
			Admission: pol.mk(),
		})
		for _, tenant := range tenants {
			if _, err := sys.DeployInference(tenant+"-fn", modelName, core.InferOpts{
				Instances: 1, NoScaler: true,
				Tenant:   tenant,
				Deadline: slo,
				Arrivals: workload.Poisson{RPS: demand},
			}); err != nil {
				panic(err)
			}
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		g := sum.Gateway
		if g == nil {
			panic("overload_shed: gateway block missing from SLO summary")
		}
		gatewayTenantRows(perTenant, pol.name, g)
		var p99 float64
		for _, st := range sum.Funcs {
			if st.P99Millis > p99 {
				p99 = st.P99Millis
			}
		}
		agg.AddRow(pol.name, float64(g.Submitted), g.ShedRate()*100,
			float64(sum.Requests), sum.GoodputRPS, p99, sum.P99Attainment*100)
		if pol.name == "deadline-shed" {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("fixed capacity (NoScaler), offered load 2×: admit-all p99 grows with the horizon while shedding policies hold admitted-traffic p99 near the SLO and shed the excess")
	return rep
}

// TenantFairness runs a Zipf tenant mix whose head tenant floods at 3×
// its popularity share and compares admit-all against DRF-style
// weighted fair sharing of the in-flight request pool: fair sharing
// concentrates shedding on the flood tenant and leaves the tail's
// traffic untouched, instead of letting one tenant queue without bound.
func TenantFairness(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("tenant_fairness", "Tenant fairness: DRF fair-share admission under a head-tenant flood (extra)")
	dur := opts.dur(60 * sim.Second)

	const modelName = "ResNet152"
	prof := profiler.For(model.ByName(modelName), profiler.RoleInference)

	mix := workload.TenantMix{
		Tenants: 4, TotalRPS: 2.5 * prof.ServingRPS, Skew: 1,
		Shape: func(i int, rps float64) workload.Arrivals {
			if i == 0 {
				// The head tenant floods at 3× its popularity share.
				return workload.Constant{RPS: 3 * rps}
			}
			return workload.Poisson{RPS: rps}
		},
	}
	// One split shared by both policies: byte-identical offered load.
	tenants := mix.Split(sim.NewRNG(opts.Seed), dur)

	policies := []struct {
		name string
		mk   func() core.AdmissionPolicy
	}{
		{"admit-all", func() core.AdmissionPolicy { return nil }},
		{"fair-share", func() core.AdmissionPolicy { return core.FairShare{Capacity: 24} }},
	}

	perTenant := gatewayTenantTable(rep, "Fairness: per-tenant admission ledger by policy")
	for _, pol := range policies {
		sys := core.MustSystem(core.Config{
			Nodes: 1, GPUsPerNode: 4, Seed: opts.Seed, Meter: opts.Meter,
			Admission: pol.mk(),
		})
		for _, ta := range tenants {
			if _, err := sys.DeployInference(ta.Tenant+"-fn", modelName, core.InferOpts{
				Instances: 1, NoScaler: true,
				Tenant:   ta.Tenant,
				Arrivals: workload.Times{Label: ta.Tenant, T: ta.Times},
			}); err != nil {
				panic(err)
			}
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		g := sum.Gateway
		if g == nil {
			panic("tenant_fairness: gateway block missing from SLO summary")
		}
		gatewayTenantRows(perTenant, pol.name, g)
		if pol.name == "fair-share" {
			rep.SetSLO(sum)
		}
	}
	rep.AddNote("fair-share caps the flood tenant at its max-min share of the in-flight pool (idle shares redistribute), so shed counts concentrate on the flooding tenant while the tail admits everything")
	return rep
}

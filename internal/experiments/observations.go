package experiments

import (
	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Figure2 reproduces the paper's motivating observations (Fig. 2(a,b)):
// GPU over-provisioning under static allocation, GPU idling of
// distributed training, and keep-alive waste.
func Figure2(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure2", "Observations: fragmented GPU resourcing in serverless")

	// Observation-1: INFless-style static allocation for RoBERTa-large
	// under low load: the quota is pinned while utilization idles.
	{
		sys := systemFor("MPS-r", 1, 1, opts)
		prof := profiler.INFless(model.ByName("RoBERTa-large"))
		p := profiler.For(model.ByName("RoBERTa-large"), profiler.RoleInference)
		p.SMReq, p.SMLim, p.IBS = prof.Request, prof.Request, prof.IBS
		f, err := sys.DeployInference("rob-inf", "RoBERTa-large", core.InferOpts{
			Pin: []int{0}, Profile: &p,
			Arrivals: workload.Poisson{RPS: 4},
		})
		if err != nil {
			panic(err)
		}
		dur := opts.dur(120 * sim.Second)
		util := metrics.NewSeries("roberta-sm-used")
		sys.OnTick(func(now sim.Time) {
			util.Add(now, sys.Clu.GPUs()[0].Dev.LastOccupancy())
		})
		sys.Run(dur)
		t := rep.AddTable(report.NewTable(
			"Figure 2(a). Static allocation vs actual use (RoBERTa-large inference, low load)",
			"metric", "value"))
		t.AddRow("allocated SMR (INFless)", prof.Request)
		t.AddRow("mean SM used", util.Mean())
		t.AddRow("overprovision factor", prof.Request/maxf(util.Mean(), 1e-9))
		_ = f
	}

	// Observation-2: 4-worker GPT2-large DDP idles >40% in gradient sync;
	// LLaMA2-7B pipeline fine-tuning workers idle ~20%.
	{
		sys := systemFor("Exclusive", 1, 4, opts)
		_, err := sys.DeployTraining("gpt2-ddp", "GPT2-large", core.TrainOpts{Workers: 4, Pin: []int{0, 1, 2, 3}})
		if err != nil {
			panic(err)
		}
		sys.Run(opts.dur(60 * sim.Second))
		var occ float64
		for _, g := range sys.Clu.GPUs() {
			occ += g.Dev.MeanOccupancy()
		}
		occ /= 4
		t := rep.AddTable(report.NewTable(
			"Figure 2(a/b). Distributed training GPU idling",
			"job", "mean SM busy", "idle fraction"))
		t.AddRow("GPT2-large 4-worker DDP", occ, 1-occ)

		sys2 := systemFor("Exclusive", 1, 4, opts)
		_, err = sys2.DeployTraining("llama-ft", "LLaMA2-7B", core.TrainOpts{Workers: 4, Pin: []int{0, 1, 2, 3}})
		if err != nil {
			panic(err)
		}
		sys2.Run(opts.dur(60 * sim.Second))
		var occ2 float64
		for _, g := range sys2.Clu.GPUs() {
			occ2 += g.Dev.MeanOccupancy()
		}
		occ2 /= 4
		t.AddRow("LLaMA2-7B pipeline fine-tune", occ2, 1-occ2)
	}

	// Observation-3: keep-alive instances on a sporadic trace serve a
	// handful of requests while holding resources almost all the time.
	{
		sys := systemFor("MPS-r", 1, 1, opts)
		f, err := sys.DeployInference("sporadic-fn", "BERT-base", core.InferOpts{
			Instances: 2, Pin: []int{0},
			Arrivals: workload.Sporadic{ClusterRPS: 0.4, ClusterDur: 10 * sim.Second, IdleMean: 40 * sim.Second},
		})
		if err != nil {
			panic(err)
		}
		dur := opts.dur(100 * sim.Second)
		busy := metrics.NewSeries("busy")
		sys.OnTick(func(now sim.Time) {
			if sys.Clu.GPUs()[0].Dev.LastOccupancy() > 0.01 {
				busy.Add(now, 1)
			} else {
				busy.Add(now, 0)
			}
		})
		sys.Run(dur)
		t := rep.AddTable(report.NewTable(
			"Figure 2(a). Keep-alive waste on a sporadic trace",
			"metric", "value"))
		t.AddRow("requests served", float64(f.Served()))
		t.AddRow("requests per 50s of lifetime", float64(f.Served())/dur.Seconds()*50)
		t.AddRow("fraction of time GPU busy", busy.Mean())
		t.AddRow("time-dimension waste", 1-busy.Mean())
	}

	// Observation-1b: spatial view — per-model exclusive allocation vs
	// actual mean occupancy.
	{
		t := rep.AddTable(report.NewTable(
			"Figure 2(b). Exclusive allocation vs mean occupancy (inference, moderate load)",
			"model", "allocated", "mean SM used", "mem used frac"))
		for _, name := range []string{"ResNet152", "BERT-base", "RoBERTa-large", "GPT2-large"} {
			sys := systemFor("Exclusive", 1, 1, opts)
			spec := model.ByName(name)
			rps := 0.5 * spec.InferThroughput(1.0, 1)
			_, err := sys.DeployInference(name, name, core.InferOpts{
				Pin: []int{0}, Arrivals: workload.Poisson{RPS: rps},
			})
			if err != nil {
				panic(err)
			}
			sys.Run(opts.dur(40 * sim.Second))
			g := sys.Clu.GPUs()[0]
			t.AddRow(name, 1.0, g.Dev.MeanOccupancy(), g.Dev.MemUsedMB()/g.Dev.MemoryMB)
		}
	}
	return rep
}

// Figure2cd reproduces the preliminary co-scaling verification: Exclusive
// on 4 GPUs (3 BERT-base DDP workers + 1 RoBERTa-large inference) versus
// collocated on 3 GPUs, across an RPS sweep.
func Figure2cd(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure2cd", "Toy co-scaling verification (Fig. 2(c,d))")
	t := rep.AddTable(report.NewTable(
		"Figure 2(c,d). Exclusive (4 GPUs) vs co-scaling (3 GPUs)",
		"RPS", "excl p95 ms", "co p95 ms", "excl inf rps", "co inf rps",
		"excl train thr", "co train thr", "train ratio"))
	dur := opts.dur(60 * sim.Second)
	for _, rps := range []float64{32, 64, 128, 256, 512} {
		run := func(collocate bool) (p95, served, train float64) {
			var sys *core.System
			var pinI []int
			instances := 1
			if collocate {
				sys = systemFor("Dilu", 1, 3, opts)
				pinI = []int{0, 1, 2}
				instances = 3
			} else {
				sys = systemFor("Exclusive", 1, 4, opts)
				pinI = []int{3}
			}
			tj, err := sys.DeployTraining("bert-t", "BERT-base", core.TrainOpts{Workers: 3, Pin: []int{0, 1, 2}})
			if err != nil {
				panic(err)
			}
			f, err := sys.DeployInference("rob", "RoBERTa-large", core.InferOpts{
				Instances: instances, Pin: pinI,
				Arrivals: workload.Poisson{RPS: rps},
			})
			if err != nil {
				panic(err)
			}
			sys.Run(dur)
			return f.Rec.P95().Millis(), float64(f.Served()) / dur.Seconds(), tj.Throughput(sys.Eng.Now())
		}
		ep95, eServed, eTrain := run(false)
		cp95, cServed, cTrain := run(true)
		t.AddRow(rps, ep95, cp95, eServed, cServed, eTrain, cTrain, cTrain/maxf(eTrain, 1e-9))
	}
	rep.AddNote("paper: +46%% inference throughput and −5.2%% training at RPS=256 on 25%% fewer GPUs")
	return rep
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

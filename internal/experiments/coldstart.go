package experiments

import (
	"fmt"

	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
	"dilu/internal/scaler"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Cold-start drivers: the staged cold-start model (image init → model
// parameter load → kernel JIT), node-local kernel-cache warm pools, and
// predictive prewarming. Both scenarios force repeated scale-to-zero-ish
// cycles (Dilu's TTL-0 scaler tears warm pools down immediately) so the
// relaunch path — where the legacy scalar model misattributed every
// wait to "cold start" — is actually exercised.

// coldStartBlock pulls the staged roll-up out of a summary, failing
// loudly when a stage-enabled arm did not produce one.
func coldStartBlock(arm string, sum *metrics.SLOSummary) *metrics.ColdStartSLO {
	if sum.ColdStart == nil {
		panic(fmt.Sprintf("coldstart: arm %q missing cold_start block from SLO summary", arm))
	}
	return sum.ColdStart
}

// squareWave is a deterministic on/off arrival rate: `burst` seconds at
// high RPS then `quiet` seconds at low RPS, repeating. Unlike
// workload.Bursty the burst windows are fixed, so every arm sees the
// same scale-out/scale-in cadence and cold-relaunch count.
func squareWave(label string, high, low float64, burst, quiet sim.Duration) workload.RateFunc {
	period := burst + quiet
	return workload.RateFunc{
		Label: label,
		Peak:  high,
		RPS: func(t sim.Time) float64 {
			if t%period < burst {
				return high
			}
			return low
		},
	}
}

// ColdStartStages compares three arms on identical bursty load:
//
//   - scalar: the legacy monolithic cold start with its wait>0
//     violation heuristic (the misattribution this PR fixes);
//   - staged: the same timing decomposed into stages — attribution
//     becomes precise (which launch phase was on the violating
//     request's critical path, warm queueing split out) but nothing
//     gets faster (JITFactor 1 keeps cache hits timing-neutral);
//   - staged+cache: kernel-cache hits skip the JIT stage on relaunch
//     (GKM warm pools) and the scheduler breaks placement ties toward
//     cache-warm nodes.
//
// The bursty square wave drives the Dilu scaler through repeated
// scale-out → scale-in (TTL 0 → teardown) → cold-relaunch cycles, so
// the cache arms accumulate hits and their mean effective cold start
// drops by the JIT stage (0.5 s).
func ColdStartStages(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("coldstart_stages",
		"Staged cold starts: per-stage attribution and kernel-cache warm pools (extra)")
	dur := opts.dur(600 * sim.Second)

	// One JIT-dominant model (ResNet152: 0.5 s JIT dwarfs its 0.15 s
	// parameter load) and one load-dominant model (GPT2-large: ~2 s
	// parameter load), so every stage of the decomposition can win a
	// violating request's critical path.
	modelNames := []string{"ResNet152", "GPT2-large"}
	for _, m := range modelNames {
		st := model.ByName(m).ColdStartStages()
		rep.AddNote("%s cold start %.0f ms = image init %.0f + model load %.0f + kernel JIT %.0f",
			m, st.Total().Millis(), st.ImageInit.Millis(), st.ModelLoad.Millis(), st.KernelJIT.Millis())
	}

	arms := []struct {
		name string
		cold *core.ColdStartConfig
		aff  bool
	}{
		{"scalar", nil, false},
		{"staged", &core.ColdStartConfig{JITFactor: 1}, false},
		{"staged+cache", &core.ColdStartConfig{}, true},
	}

	timing := rep.AddTable(report.NewTable(
		"Cold-start timing by arm (cache hits skip the JIT stage)",
		"arm", "reqs", "cold launches", "kcache hit", "kcache miss", "mean cold ms", "goodput rps", "p99 ms"))
	attr := rep.AddTable(report.NewTable(
		"Violation attribution by arm (scalar = wait>0 heuristic)",
		"arm", "viol", "cold viol", "image init", "model load", "kernel jit", "warm queue", "SVR %"))

	for _, arm := range arms {
		cfg := core.Config{
			Nodes: 2, GPUsPerNode: 2, Seed: opts.Seed, Meter: opts.Meter,
			Policy: "Dilu", Scheduler: "Dilu",
			NewScaler: func() scaler.Policy {
				// Fast reactions so several teardown/relaunch cycles fit
				// the horizon: out after 3 s over capacity, in after 5 s
				// under — still TTL 0, the Dilu teardown discipline.
				return scaler.NewDilu(scaler.DiluConfig{Window: 10, PhiOut: 3, PhiIn: 5})
			},
			ColdStart: arm.cold,
		}
		cfg.SchedOpts.KernelCacheAffinity = arm.aff
		sys := core.MustSystem(cfg)
		// StartCold: the deploy itself is a cold start (serverless
		// semantics), so the first burst's requests queue behind the
		// staged launch and get stage-attributed — the exact window the
		// legacy wait>0 heuristic lumped into one "cold" bucket. Bursts
		// at 3× one instance's capacity force scale-out within a few
		// samples; quiet phases at 0.2× force scale-in, and TTL-0
		// teardown makes the next burst pay a fresh cold start.
		for _, m := range modelNames {
			prof := profiler.For(model.ByName(m), profiler.RoleInference)
			wave := squareWave("burst3x", 3*prof.ServingRPS, 0.2*prof.ServingRPS,
				6*sim.Second, 9*sim.Second)
			if _, err := sys.DeployInference("fn-"+m, m, core.InferOpts{
				Instances: 1, StartCold: true, Arrivals: wave,
			}); err != nil {
				panic(err)
			}
		}
		sys.Run(dur)
		sum := sys.SLOSummary()

		var p99 float64
		for _, fs := range sum.Funcs {
			if fs.P99Millis > p99 {
				p99 = fs.P99Millis
			}
		}
		if arm.cold == nil {
			cs := sys.ColdStartStats()
			timing.AddRow(arm.name, float64(sum.Requests), float64(cs.ColdLaunches),
				0, 0, meanColdMillis(cs), sum.GoodputRPS, p99)
		} else {
			c := coldStartBlock(arm.name, sum)
			timing.AddRow(arm.name, float64(sum.Requests), float64(c.ColdLaunches),
				float64(c.KernelCacheHits), float64(c.KernelCacheMisses),
				c.MeanColdMillis(), sum.GoodputRPS, p99)
		}
		attr.AddRow(arm.name, float64(sum.Violations), float64(sum.ColdStartViolations),
			stageViol(sum, metrics.ColdImageInit), stageViol(sum, metrics.ColdModelLoad),
			stageViol(sum, metrics.ColdKernelJIT), warmQueueViol(sum),
			sum.ViolationRate()*100)
		if arm.name == "staged+cache" {
			rep.SetSLO(sum)
			rep.AddNote("staged+cache: %d/%d cold launches hit the kernel cache, mean effective cold start %.0f ms",
				sum.ColdStart.KernelCacheHits,
				sum.ColdStart.KernelCacheHits+sum.ColdStart.KernelCacheMisses,
				sum.ColdStart.MeanColdMillis())
		}
	}
	return rep
}

// meanColdMillis is the legacy-arm counterpart of
// ColdStartSLO.MeanColdMillis, computed from the raw system counters
// (the scalar arm has no cold_start summary block by design).
func meanColdMillis(cs core.ColdStartStats) float64 {
	if cs.ColdLaunches == 0 {
		return 0
	}
	return cs.ColdTime.Millis() / float64(cs.ColdLaunches)
}

// stageViol sums one stage's violation count over the summary's funcs.
func stageViol(sum *metrics.SLOSummary, st metrics.ColdStage) float64 {
	var n int64
	for _, fs := range sum.Funcs {
		switch st {
		case metrics.ColdImageInit:
			n += fs.ImageInitViolations
		case metrics.ColdModelLoad:
			n += fs.ModelLoadViolations
		case metrics.ColdKernelJIT:
			n += fs.KernelJITViolations
		}
	}
	return float64(n)
}

// warmQueueViol sums warm-queue violations over the summary's funcs.
func warmQueueViol(sum *metrics.SLOSummary) float64 {
	var n int64
	for _, fs := range sum.Funcs {
		n += fs.WarmQueueViolations
	}
	return float64(n)
}

// PrewarmPolicy compares reactive scaling against rate-trend predictive
// prewarming on an identical pre-generated ramp workload: three
// functions whose arrival rate climbs from 0.6× to 3× one instance's
// capacity over the horizon. The reactive arm pays every scale-out cold
// start on the request path (φ_out samples of overload, then the full
// staged cold start, while the queue grows); the prewarm arm watches
// the per-function RPS trend and launches ahead of the capacity
// crossing, charging the cold start off the request path. Both arms run
// the staged model (JITFactor 1 — timing-neutral, attribution only) so
// the p99/goodput delta isolates prewarming.
func PrewarmPolicy(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("prewarm_policy",
		"Predictive prewarming vs reactive scaling on a demand ramp (extra)")
	dur := opts.dur(600 * sim.Second)

	models := []string{"ResNet152", "VGG19", "BERT-base"}

	// Pre-generate every function's arrivals once so both arms replay
	// byte-identical load (the tenant_mix discipline): the comparison is
	// the policy, never the draw.
	rng := sim.NewRNG(opts.Seed)
	loads := make([]workload.Times, len(models))
	for i, m := range models {
		cap := profiler.For(model.ByName(m), profiler.RoleInference).ServingRPS
		// 0.15× → 3× capacity over the horizon. Starting far under one
		// instance's capacity keeps the initial cold-start cohort well
		// below the p99 tail (a fraction of 1% of the function's
		// requests), so the tail reflects how each arm handles the ramp,
		// not the deploy.
		ramp := workload.RateFunc{
			Label: "ramp",
			Peak:  3 * cap,
			RPS: func(t sim.Time) float64 {
				frac := float64(t) / float64(dur)
				return (0.15 + 2.85*frac) * cap
			},
		}
		loads[i] = workload.Times{Label: "ramp/" + m, T: ramp.Generate(rng, dur)}
	}

	arms := []struct {
		name    string
		prewarm *core.PrewarmConfig
	}{
		{"reactive", nil},
		// Headroom 1.3 targets ~77% utilization: prewarming at exactly
		// predicted/capacity would run instances saturated and queueing
		// would eat the latency the early launches bought.
		{"prewarm", &core.PrewarmConfig{Headroom: 1.3}},
	}

	perFunc := rep.AddTable(report.NewTable(
		"Ramp: per-function tail latency by arm",
		"arm", "function", "reqs", "SVR %", "cold viol", "p99 ms", "p99 ok"))
	agg := rep.AddTable(report.NewTable(
		"Ramp: aggregate SLO attainment by arm",
		"arm", "reqs", "SVR %", "goodput rps", "p99 attain %", "prewarm launches", "cold launches", "mean cold ms"))

	for _, arm := range arms {
		sys := core.MustSystem(core.Config{
			Nodes: 2, GPUsPerNode: 4, Seed: opts.Seed, Meter: opts.Meter,
			Policy: "Dilu", Scheduler: "Dilu",
			// The reactive path is the paper's own lazy scaler (φ_out 20
			// seconds of sustained overload before scale-out, TTL 0) —
			// the configuration whose ramp-lag prewarming exists to hide.
			NewScaler: func() scaler.Policy {
				return scaler.NewDilu(scaler.DiluConfig{})
			},
			ColdStart: &core.ColdStartConfig{JITFactor: 1},
			Prewarm:   arm.prewarm,
		})
		for i, m := range models {
			// A 300 ms interactive target: loose enough that a
			// well-provisioned arm attains it at p99 through the ramp,
			// tight enough that 20 s of scale-out lag cannot.
			if _, err := sys.DeployInference(fmt.Sprintf("fn-%s", m), m, core.InferOpts{
				Instances: 1, StartCold: true, Arrivals: loads[i],
				SLO: 300 * sim.Millisecond,
			}); err != nil {
				panic(err)
			}
		}
		sys.Run(dur)
		sum := sys.SLOSummary()
		c := coldStartBlock(arm.name, sum)

		for _, fs := range sum.Funcs {
			perFunc.AddRow(arm.name, fs.Func, float64(fs.Requests),
				fs.ViolationRate()*100, float64(fs.ColdStartViolations),
				fs.P99Millis, boolCell(fs.AttainedP99))
		}
		agg.AddRow(arm.name, float64(sum.Requests), sum.ViolationRate()*100,
			sum.GoodputRPS, sum.P99Attainment*100,
			float64(c.PrewarmLaunches), float64(c.ColdLaunches), c.MeanColdMillis())
		if arm.prewarm != nil {
			rep.SetSLO(sum)
			rep.AddNote("prewarm arm: %d prewarm launches of %d cold launches, p99 attainment %.0f%%",
				c.PrewarmLaunches, c.ColdLaunches, sum.P99Attainment*100)
		}
	}
	return rep
}

// boolCell renders a boolean as a yes/no table cell (the slo_sweep
// convention).
func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

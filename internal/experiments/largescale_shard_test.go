package experiments

import (
	"testing"

	"dilu/internal/report"
)

// The sharded replay's whole contract is byte-identity: a driver run at
// Shards=N must render the same report — and therefore the same manifest
// fingerprint — as the serial run, for every N. This exercises the full
// stack (ShardedEngine windows, mailbox delivery order, sharded cluster
// indexes, parallel candidate scans) through the real drivers.
func checkShardInvariance(t *testing.T, id string, shardCounts ...int) {
	t.Helper()
	d, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	serial := d.Run(testOpts())
	want := serial.String()
	wantFP := report.Fingerprint(serial)
	for _, n := range shardCounts {
		o := testOpts()
		o.Shards = n
		rep := d.Run(o)
		if got := rep.String(); got != want {
			t.Fatalf("%s: shards=%d report differs from serial\nserial:\n%s\nsharded:\n%s",
				id, n, want, got)
		}
		if fp := report.Fingerprint(rep); fp != wantFP {
			t.Fatalf("%s: shards=%d fingerprint %s != serial %s", id, n, fp, wantFP)
		}
	}
}

func TestFigure17ShardInvariance(t *testing.T) {
	checkShardInvariance(t, "figure17", 2, 4)
}

func TestHeteroMixShardInvariance(t *testing.T) {
	checkShardInvariance(t, "hetero_mix", 2, 4)
}

func TestHyperscaleShardInvariance(t *testing.T) {
	skipSlowTier(t, "hyperscale")
	checkShardInvariance(t, "hyperscale", 4)
}

func TestHyperscaleMaxShardInvariance(t *testing.T) {
	skipSlowTier(t, "hyperscale_max")
	checkShardInvariance(t, "hyperscale_max", 4)
}

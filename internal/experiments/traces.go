package experiments

import (
	"fmt"

	"dilu/internal/core"
	"dilu/internal/metrics"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// kernelTraceRun collocates an inference function with a training worker
// on one GPU and records the per-second normalized inference kernel
// ratio (inference blocks / total blocks) plus cumulative totals.
func kernelTraceRun(policy, infModel, trainModel string, arr workload.Arrivals, dur sim.Duration, opts Options) (ratio, total, rps *metrics.Series) {
	sys := systemFor(policy, 1, 1, opts)
	_, err := sys.DeployTraining("t", trainModel, core.TrainOpts{Workers: 1, Pin: []int{0}})
	if err != nil {
		panic(err)
	}
	f, err := sys.DeployInference("i", infModel, core.InferOpts{Pin: []int{0}, Arrivals: arr})
	if err != nil {
		panic(err)
	}
	ratio = metrics.NewSeries(policy + "/inf-kernel-ratio")
	total = metrics.NewSeries(policy + "/total-kernels")
	dev := sys.Clu.GPUs()[0].Dev
	var lastInf, lastTotal float64
	var nextSample sim.Time = sim.Second
	sys.OnTick(func(now sim.Time) {
		if now < nextSample {
			return
		}
		nextSample += sim.Second
		var inf, tot float64
		for _, r := range dev.Residents() {
			tot += r.TotalLaunched()
			if r.ID[0] == 'i' { // inference placements are named "i-..."
				inf += r.TotalLaunched()
			}
		}
		dInf, dTot := inf-lastInf, tot-lastTotal
		lastInf, lastTotal = inf, tot
		if dTot > 0 {
			ratio.Add(now, dInf/dTot)
		} else {
			ratio.Add(now, 0)
		}
		total.Add(now, tot)
	})
	sys.Run(dur)
	return ratio, total, f.RPSTrace
}

// Figure13 reproduces the kernel issuing traces: case-1 low inference
// load, case-2 fluctuating (Gamma CV=5) load, comparing Dilu's adaptive
// issuing against static MPS-r.
func Figure13(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure13", "Kernel issuing traces (Figure 13)")
	dur := opts.dur(50 * sim.Second)

	// Case-1: low inference workload (~10 req/s) — Dilu should keep the
	// inference kernel ratio low, leaving SMs to training.
	arr1 := workload.Poisson{RPS: 10}
	rDilu, _, rpsTrace := kernelTraceRun("Dilu", "RoBERTa-large", "BERT-base", arr1, dur, opts)
	rMPS, _, _ := kernelTraceRun("MPS-r", "RoBERTa-large", "BERT-base", arr1, dur, opts)
	rep.AddSeries(rpsTrace)
	rep.AddSeries(rDilu)
	rep.AddSeries(rMPS)
	t := rep.AddTable(report.NewTable(
		"Figure 13(a). Case-1 low load: mean inference kernel ratio",
		"system", "mean ratio"))
	t.AddRow("Dilu", rDilu.Mean())
	t.AddRow("MPS-r", rMPS.Mean())

	// Case-2: fluctuating load (CV=5): Dilu should issue MORE tokens than
	// MPS-r during bursts.
	arr2 := workload.Gamma{RPS: 48, CV: 5}
	fDilu, _, _ := kernelTraceRun("Dilu", "GPT2-large", "RoBERTa-large", arr2, dur, opts)
	fMPS, _, _ := kernelTraceRun("MPS-r", "GPT2-large", "RoBERTa-large", arr2, dur, opts)
	t2 := rep.AddTable(report.NewTable(
		"Figure 13(b). Case-2 fluctuating load: inference kernel ratio",
		"system", "mean ratio", "peak ratio"))
	t2.AddRow("Dilu", fDilu.Mean(), fDilu.Max())
	t2.AddRow("MPS-r", fMPS.Mean(), fMPS.Max())
	rep.AddNote("paper: Dilu keeps a low inference ratio at low load (training throughput +15%% vs MPS-r) and issues more tokens than MPS-r under fluctuation")
	return rep
}

// Figure14 reproduces the total kernel-count comparison for case-1,
// adding the Exclusive train-only / inference-only references.
func Figure14(opts Options) *report.Report {
	opts = opts.withDefaults()
	rep := report.New("figure14", "Total kernel counts (Figure 14)")
	dur := opts.dur(50 * sim.Second)
	arr := workload.Poisson{RPS: 10}
	_, tDilu, _ := kernelTraceRun("Dilu", "RoBERTa-large", "BERT-base", arr, dur, opts)
	_, tMPS, _ := kernelTraceRun("MPS-r", "RoBERTa-large", "BERT-base", arr, dur, opts)

	// Exclusive references: a GPU running only the training job and a GPU
	// running only the inference function.
	exclOnly := func(train bool) *metrics.Series {
		sys := systemFor("Exclusive", 1, 1, opts)
		if train {
			if _, err := sys.DeployTraining("t", "BERT-base", core.TrainOpts{Workers: 1, Pin: []int{0}}); err != nil {
				panic(err)
			}
		} else {
			if _, err := sys.DeployInference("i", "RoBERTa-large", core.InferOpts{Pin: []int{0}, Arrivals: arr}); err != nil {
				panic(err)
			}
		}
		s := metrics.NewSeries(fmt.Sprintf("Exclusive-train=%v/total-kernels", train))
		dev := sys.Clu.GPUs()[0].Dev
		var next sim.Time = sim.Second
		sys.OnTick(func(now sim.Time) {
			if now >= next {
				next += sim.Second
				s.Add(now, dev.TotalExecuted())
			}
		})
		sys.Run(dur)
		return s
	}
	exTrain := exclOnly(true)
	exInf := exclOnly(false)
	rep.AddSeries(tDilu)
	rep.AddSeries(tMPS)
	rep.AddSeries(exTrain)
	rep.AddSeries(exInf)
	t := rep.AddTable(report.NewTable(
		"Figure 14. Final cumulative kernel blocks (higher = better GPU use)",
		"trace", "total blocks"))
	t.AddRow("Dilu (collocated)", lastVal(tDilu))
	t.AddRow("MPS-r (collocated)", lastVal(tMPS))
	t.AddRow("Exclusive-train", lastVal(exTrain))
	t.AddRow("Exclusive-inf", lastVal(exInf))
	rep.AddNote("paper: the Dilu trace keeps the highest total kernel counts (highest GPU utilization)")
	return rep
}

func lastVal(s *metrics.Series) float64 {
	if s.Len() == 0 {
		return 0
	}
	return s.Points[s.Len()-1].Value
}

package experiments

import (
	"testing"

	"dilu/internal/cluster"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// Differential guard for the sharded candidate scans (sched/parallel.go):
// the same §5.5 replay as sched_equiv_test.go, but the "new" side runs on
// a position-sharded cluster with the fork-join pool attached while the
// reference side is the ordinary serial scheduler on an unsharded twin.
// Every decision must pick the same GPU — the sharded argmin merge is
// required to be bit-exact, not just statistically equivalent. The arms
// cover the homogeneous fleet, the 70/30 heterogeneous mix (which takes
// the full-inventory multi-GPU scan), fail/drain/join churn (shard
// re-bucketing under retirement and rejoin), and a nil-pool variant
// (sharded dispatch, serial execution — isolates partition/merge logic
// from the fork-join machinery).

func shardedEquivCluster(t *testing.T, cfg cluster.Config, shards int) *cluster.Cluster {
	t.Helper()
	cfg.Shards = shards
	return cluster.New(cfg)
}

func newShardedDilu(t *testing.T, cfg cluster.Config, shards int, pool *sim.Pool) *sched.Dilu {
	t.Helper()
	s := sched.NewDilu(shardedEquivCluster(t, cfg, shards), sched.Options{})
	s.SetParallel(pool)
	return s
}

func newShardedStatic(t *testing.T, cfg cluster.Config, shards int, pool *sim.Pool) *sched.Static {
	t.Helper()
	s := sched.NewINFlessL(shardedEquivCluster(t, cfg, shards))
	s.SetParallel(pool)
	return s
}

func homogEquivConfig() cluster.Config {
	return cluster.Config{Nodes: 1000, GPUsPerNode: 4}
}

func TestDiluShardedScanEquivalence(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	replayMixEquiv(t,
		newShardedDilu(t, homogEquivConfig(), 4, pool),
		sched.NewDilu(cluster.New(homogEquivConfig()), sched.Options{}))
}

func TestDiluShardedScanEquivalenceNilPool(t *testing.T) {
	replayMixEquiv(t,
		newShardedDilu(t, homogEquivConfig(), 3, nil),
		sched.NewDilu(cluster.New(homogEquivConfig()), sched.Options{}))
}

func TestStaticShardedScanEquivalence(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	replayMixEquiv(t,
		newShardedStatic(t, homogEquivConfig(), 4, pool),
		sched.NewINFlessL(cluster.New(homogEquivConfig())))
}

func TestDiluShardedHeteroEquivalence(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	replayMixEquiv(t,
		newShardedDilu(t, heteroEquivConfig(), 4, pool),
		sched.NewDilu(cluster.New(heteroEquivConfig()), sched.Options{}))
}

func TestStaticShardedHeteroEquivalence(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	replayMixEquiv(t,
		newShardedStatic(t, heteroEquivConfig(), 4, pool),
		sched.NewINFlessL(cluster.New(heteroEquivConfig())))
}

func TestDiluShardedChurnEquivalence(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	replayMixEquivChurn(t,
		newShardedDilu(t, homogEquivConfig(), 4, pool),
		sched.NewDilu(cluster.New(homogEquivConfig()), sched.Options{}), true)
}

func TestDiluShardedHeteroChurnEquivalence(t *testing.T) {
	pool := sim.NewPool(4)
	defer pool.Close()
	replayMixEquivChurn(t,
		newShardedDilu(t, heteroEquivConfig(), 4, pool),
		sched.NewDilu(cluster.New(heteroEquivConfig()), sched.Options{}), true)
}

package report

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"dilu/internal/metrics"
	"dilu/internal/sim"
)

func sampleReport() *Report {
	r := New("figX", "demo")
	t := r.AddTable(NewTable("Table A", "k", "v"))
	t.AddRow("alpha", 1.25)
	t.AddRow("beta, with comma", 2.0)
	s := metrics.NewSeries("trace")
	s.Add(0, 1)
	s.Add(1500*sim.Millisecond, 2.5)
	r.AddSeries(s)
	r.AddNote("a note")
	return r
}

func TestCSVRoundTrips(t *testing.T) {
	out := sampleReport().CSV()
	// Every CSV section must parse back.
	for _, section := range strings.Split(strings.TrimSpace(out), "\n\n") {
		rd := csv.NewReader(strings.NewReader(section))
		rd.FieldsPerRecord = -1
		if _, err := rd.ReadAll(); err != nil {
			t.Fatalf("section does not parse: %v\n%s", err, section)
		}
	}
	if !strings.Contains(out, `"beta, with comma"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, "# series trace") || !strings.Contains(out, "1.500,2.5") {
		t.Fatalf("series section missing:\n%s", out)
	}
}

func TestJSONRoundTrips(t *testing.T) {
	out := sampleReport().JSON()
	var decoded struct {
		ID     string `json:"id"`
		Tables []struct {
			Caption string     `json:"caption"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
		Series []struct {
			Name   string      `json:"name"`
			Points [][2]string `json:"points"`
		} `json:"series"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.ID != "figX" || len(decoded.Tables) != 1 || len(decoded.Series) != 1 {
		t.Fatalf("structure lost: %+v", decoded)
	}
	if decoded.Tables[0].Rows[1][0] != "beta, with comma" {
		t.Fatal("cell content lost")
	}
	if decoded.Series[0].Points[1][0] != "1.500" {
		t.Fatalf("series point lost: %+v", decoded.Series[0])
	}
	if len(decoded.Notes) != 1 {
		t.Fatal("notes lost")
	}
}

func TestExportEmptyReport(t *testing.T) {
	r := New("empty", "nothing")
	if err := r.WriteCSV(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"id": "empty"`) {
		t.Fatal("empty JSON malformed")
	}
}

package report

import (
	"strings"
	"testing"
)

func record(driver string, seed int64, status RunStatus, fp string) RunRecord {
	return RunRecord{
		Driver: driver, Seed: seed, Scale: 1, Status: status,
		Fingerprint: fp, VirtualSeconds: 60, WallSeconds: 1.5, Throughput: 40,
	}
}

func TestManifestJSONOrderIndependent(t *testing.T) {
	a := NewManifest("suite")
	a.Add(record("figure9", 1, RunOK, "aaa"))
	a.Add(record("figure2", 2, RunOK, "bbb"))
	a.Add(record("figure2", 1, RunOK, "ccc"))

	b := NewManifest("suite")
	b.Add(record("figure2", 1, RunOK, "ccc"))
	b.Add(record("figure9", 1, RunOK, "aaa"))
	b.Add(record("figure2", 2, RunOK, "bbb"))

	if a.JSON() != b.JSON() {
		t.Fatalf("manifest bytes depend on insertion order:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
	if strings.Contains(a.JSON(), "wall") {
		t.Fatal("wall-clock timing leaked into manifest bytes")
	}
}

func TestManifestTotals(t *testing.T) {
	m := NewManifest("s")
	m.Add(record("a", 1, RunOK, "x"))
	m.Add(record("b", 1, RunFailed, ""))
	m.Add(record("c", 1, RunTimeout, ""))
	m.Add(record("d", 1, RunSkipped, ""))
	_ = m.JSON()
	want := Totals{Runs: 4, OK: 1, Failed: 1, Timeout: 1, Skipped: 1, VirtualSeconds: 240}
	if m.Totals != want {
		t.Fatalf("totals = %+v, want %+v", m.Totals, want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("suite")
	m.Add(record("figure9", 1, RunOK, "aaa"))
	var b strings.Builder
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "suite" || len(got.Runs) != 1 || got.Runs[0].Key() != "figure9/seed=1/scale=1" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ReadManifest(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad manifest accepted")
	}
}

func TestMergeManifests(t *testing.T) {
	a := NewManifest("shard-a")
	a.Add(record("figure2", 1, RunOK, "x"))
	a.Add(record("figure9", 1, RunOK, "y"))
	b := NewManifest("shard-b")
	b.Add(record("figure9", 1, RunOK, "y")) // duplicate, agrees
	b.Add(record("table2", 1, RunOK, "z"))

	m, err := MergeManifests("merged", a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 3 || m.Totals.OK != 3 {
		t.Fatalf("merged runs = %d, totals %+v", len(m.Runs), m.Totals)
	}
	if m.Runs[0].Driver != "figure2" || m.Runs[2].Driver != "table2" {
		t.Fatalf("merged runs unsorted: %+v", m.Runs)
	}

	c := NewManifest("shard-c")
	c.Add(record("figure9", 1, RunOK, "DIFFERENT"))
	if _, err := MergeManifests("merged", a, c); err == nil {
		t.Fatal("conflicting fingerprints merged silently")
	}
}

func TestFingerprintDistinguishesReports(t *testing.T) {
	r1 := New("figure9", "t")
	r1.AddTable(NewTable("cap", "a")).AddRow("1")
	r2 := New("figure9", "t")
	r2.AddTable(NewTable("cap", "a")).AddRow("2")
	if Fingerprint(r1) == Fingerprint(r2) {
		t.Fatal("different reports share a fingerprint")
	}
	if Fingerprint(r1) != Fingerprint(r1) {
		t.Fatal("fingerprint unstable")
	}
	if Fingerprint(nil) != "" {
		t.Fatal("nil report should have empty fingerprint")
	}
}

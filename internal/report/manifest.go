package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dilu/internal/metrics"
)

// RunStatus is the outcome of one harness run.
type RunStatus string

const (
	RunOK      RunStatus = "ok"
	RunFailed  RunStatus = "failed"
	RunTimeout RunStatus = "timeout"
	RunSkipped RunStatus = "skipped" // cancelled by fail-fast before starting
)

// RunRecord summarizes one experiment run inside a suite manifest.
//
// Wall-clock fields carry json:"-" on purpose: the manifest is the
// seed-reproducible record of WHAT a suite produced, so its serialized
// bytes must be identical across machines, worker counts, and completion
// orders. Timing lives alongside in memory for progress lines and the
// timing table, and is exported separately (see Manifest.TimingTable).
type RunRecord struct {
	Driver string  `json:"driver"`
	Paper  string  `json:"paper,omitempty"`
	Tier   string  `json:"tier,omitempty"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`

	Status RunStatus `json:"status"`
	Error  string    `json:"error,omitempty"`

	// Fingerprint is the sha256 of the report's canonical JSON — equal
	// fingerprints mean byte-equal results, the reproducibility contract.
	Fingerprint string `json:"fingerprint,omitempty"`
	Tables      int    `json:"tables"`
	Series      int    `json:"series"`

	// VirtualSeconds is the simulated time the run advanced, summed over
	// every engine the driver spun up. Deterministic for a given seed.
	VirtualSeconds float64 `json:"virtual_seconds"`
	// Engines is how many independent simulation engines the run used.
	Engines int64 `json:"engines,omitempty"`

	// SLO carries the run's aggregate SLO accounting when the driver
	// tracks it (deterministic for a given seed, like the fingerprint).
	// Absent for drivers without SLO instrumentation, so pre-SLO
	// manifests keep their bytes.
	SLO *SLOBlock `json:"slo,omitempty"`

	// Non-deterministic timing, excluded from manifest bytes.
	WallSeconds float64 `json:"-"`
	// Throughput is virtual seconds simulated per wall second.
	Throughput float64 `json:"-"`
}

// SLOBlock is the compact SLO roll-up a manifest records per run: the
// aggregate side of metrics.SLOSummary without the per-function detail
// (which lives in the report itself, covered by the fingerprint).
type SLOBlock struct {
	Requests            int64   `json:"requests"`
	Violations          int64   `json:"violations"`
	ColdStartViolations int64   `json:"cold_start_violations"`
	GoodputRPS          float64 `json:"goodput_rps"`
	P95Attainment       float64 `json:"p95_attainment"`
	P99Attainment       float64 `json:"p99_attainment"`

	// Gateway is the admission-layer roll-up (per-tenant admitted/shed
	// and goodput); omitted for single-tenant admit-all runs so
	// pre-gateway manifests keep their bytes.
	Gateway *metrics.GatewaySLO `json:"gateway,omitempty"`

	// Resilience is the gray-failure roll-up (fault events and per-cause
	// mitigation attribution); omitted for fault-free runs so pre-fault
	// manifests keep their bytes.
	Resilience *metrics.ResilienceSLO `json:"resilience,omitempty"`

	// ColdStart is the staged cold-start roll-up (per-stage violation
	// attribution, kernel-cache hits, prewarm launches); omitted for
	// runs on the legacy scalar cold-start path so pre-stage manifests
	// keep their bytes.
	ColdStart *metrics.ColdStartSLO `json:"cold_start,omitempty"`

	// LLM is the token-level serving roll-up (TTFT/TPOT, token
	// throughput, KV-cache peaks and pressure events); omitted for runs
	// without a token-level deployment so prior manifests keep their
	// bytes.
	LLM *metrics.LLMSLO `json:"llm,omitempty"`
}

// SLOBlockOf compresses a summary into the manifest block; nil in, nil out.
func SLOBlockOf(s *metrics.SLOSummary) *SLOBlock {
	if s == nil {
		return nil
	}
	return &SLOBlock{
		Requests:            s.Requests,
		Violations:          s.Violations,
		ColdStartViolations: s.ColdStartViolations,
		GoodputRPS:          s.GoodputRPS,
		P95Attainment:       s.P95Attainment,
		P99Attainment:       s.P99Attainment,
		Gateway:             s.Gateway,
		Resilience:          s.Resilience,
		ColdStart:           s.ColdStart,
		LLM:                 s.LLM,
	}
}

// RunKey is the canonical identity of a run inside a suite: driver ×
// seed × scale. The harness keys its jobs with the same helper so
// manifest lookups by job key can never drift out of sync.
func RunKey(driver string, seed int64, scale float64) string {
	return fmt.Sprintf("%s/seed=%d/scale=%g", driver, seed, scale)
}

// Key identifies a run inside a suite: driver × seed × scale.
func (r RunRecord) Key() string { return RunKey(r.Driver, r.Seed, r.Scale) }

// Totals aggregates a manifest's deterministic counters.
type Totals struct {
	Runs           int     `json:"runs"`
	OK             int     `json:"ok"`
	Failed         int     `json:"failed"`
	Timeout        int     `json:"timeout"`
	Skipped        int     `json:"skipped"`
	VirtualSeconds float64 `json:"virtual_seconds"`
}

// Manifest is the deterministic record of one harness suite invocation:
// which runs executed, what they produced (fingerprints), and how much
// virtual time was simulated. Two invocations with the same drivers,
// seeds, and scale produce byte-identical manifests regardless of worker
// count or completion order.
type Manifest struct {
	Suite  string      `json:"suite"`
	Runs   []RunRecord `json:"runs"`
	Totals Totals      `json:"totals"`
}

// NewManifest creates an empty manifest.
func NewManifest(suite string) *Manifest { return &Manifest{Suite: suite} }

// Add appends a run record.
func (m *Manifest) Add(r RunRecord) { m.Runs = append(m.Runs, r) }

// Find returns the record with the given key, or nil.
func (m *Manifest) Find(key string) *RunRecord {
	for i := range m.Runs {
		if m.Runs[i].Key() == key {
			return &m.Runs[i]
		}
	}
	return nil
}

// Normalize sorts runs by key and recomputes totals, making the manifest
// independent of completion order. WriteJSON calls it implicitly.
func (m *Manifest) Normalize() {
	sort.SliceStable(m.Runs, func(i, j int) bool { return m.Runs[i].Key() < m.Runs[j].Key() })
	t := Totals{Runs: len(m.Runs)}
	for _, r := range m.Runs {
		switch r.Status {
		case RunOK:
			t.OK++
		case RunFailed:
			t.Failed++
		case RunTimeout:
			t.Timeout++
		case RunSkipped:
			t.Skipped++
		}
		t.VirtualSeconds += r.VirtualSeconds
	}
	m.Totals = t
}

// WriteJSON emits the canonical manifest: runs sorted by key, totals
// recomputed, two-space indent. The bytes are deterministic for a given
// set of runs.
func (m *Manifest) WriteJSON(w io.Writer) error {
	m.Normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// JSON renders the canonical manifest as a string.
func (m *Manifest) JSON() string {
	var b strings.Builder
	_ = m.WriteJSON(&b)
	return b.String()
}

// TimingTable renders the non-deterministic side of the suite — wall
// seconds and virtual-per-wall throughput per run — as a report table,
// sorted by descending wall time so the expensive drivers lead.
func (m *Manifest) TimingTable() *Table {
	t := NewTable("Suite timing (wall-clock, excluded from the manifest)",
		"run", "status", "wall s", "virtual s", "virtual/wall")
	runs := append([]RunRecord(nil), m.Runs...)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].WallSeconds > runs[j].WallSeconds })
	for _, r := range runs {
		t.AddRow(r.Key(), string(r.Status), r.WallSeconds, r.VirtualSeconds, r.Throughput)
	}
	return t
}

// MergeManifests combines shard manifests into one. Records with the same
// key must agree on status and fingerprint (a disagreement means two
// shards produced different results for the same run — a reproducibility
// violation) and are deduplicated; the result is normalized.
func MergeManifests(suite string, parts ...*Manifest) (*Manifest, error) {
	out := NewManifest(suite)
	seen := map[string]RunRecord{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, r := range p.Runs {
			k := r.Key()
			prev, ok := seen[k]
			if !ok {
				seen[k] = r
				out.Add(r)
				continue
			}
			if prev.Status != r.Status || prev.Fingerprint != r.Fingerprint {
				return nil, fmt.Errorf("report: merge conflict on %s: %s/%s vs %s/%s",
					k, prev.Status, short(prev.Fingerprint), r.Status, short(r.Fingerprint))
			}
		}
	}
	out.Normalize()
	return out, nil
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	if fp == "" {
		return "<none>"
	}
	return fp
}

// ReadManifest parses a manifest previously written by WriteJSON.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("report: bad manifest: %w", err)
	}
	return &m, nil
}

// Fingerprint hashes the report's canonical JSON; equal fingerprints mean
// byte-equal reports.
func Fingerprint(r *Report) string {
	if r == nil {
		return ""
	}
	h := sha256.Sum256([]byte(r.JSON()))
	return hex.EncodeToString(h[:])
}

package report

import (
	"strings"
	"testing"

	"dilu/internal/metrics"
	"dilu/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X. Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 12345.678)
	out := tb.String()
	if !strings.Contains(out, "Table X. Demo") {
		t.Fatal("caption missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Fatalf("cells missing:\n%s", out)
	}
	if !strings.Contains(out, "12346") {
		t.Fatalf("large floats should render without decimals:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // caption, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("longlonglong", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header/separator misaligned:\n%s", out)
	}
}

func TestFindRowAndCell(t *testing.T) {
	tb := NewTable("T", "k", "v")
	tb.AddRow("x", 1)
	tb.AddRow("y", 2)
	if r := tb.FindRow("y"); r == nil || r[1] != "2" {
		t.Fatalf("FindRow = %v", r)
	}
	if tb.FindRow("z") != nil {
		t.Fatal("missing key should return nil")
	}
	if tb.Cell(0, 1) != "1" {
		t.Fatal("Cell wrong")
	}
}

func TestSortRows(t *testing.T) {
	tb := NewTable("T", "k")
	tb.AddRow("b")
	tb.AddRow("a")
	tb.SortRows()
	if tb.Cell(0, 0) != "a" {
		t.Fatal("sort failed")
	}
}

func TestReportComposition(t *testing.T) {
	r := New("figureX", "demo experiment")
	tb := r.AddTable(NewTable("Figure X. Part", "k", "v"))
	tb.AddRow("m", 3.0)
	s := metrics.NewSeries("trace")
	for i := 0; i < 30; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	r.AddSeries(s)
	r.AddNote("paper reports %.1f", 2.5)
	out := r.String()
	for _, want := range []string{"figureX", "Figure X. Part", "series trace", "paper reports 2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if r.Table("Figure X") != tb {
		t.Fatal("Table lookup failed")
	}
	if r.Table("nope") != nil {
		t.Fatal("missing caption should return nil")
	}
}

func TestEmptySeriesRendering(t *testing.T) {
	r := New("x", "t")
	r.AddSeries(metrics.NewSeries("empty"))
	if !strings.Contains(r.String(), "series empty: n=0") {
		t.Fatal("empty series should render summary only")
	}
}

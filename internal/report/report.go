// Package report renders experiment results as aligned ASCII tables and
// compact series dumps, the output format of the benchmark harness and
// the cmd/ tools. Each experiment produces one Report combining tables
// (paper tables, bar charts) and series (line plots).
package report

import (
	"fmt"
	"sort"
	"strings"

	"dilu/internal/metrics"
)

// Table is a rows×columns result with a caption tying it to the paper
// artifact it regenerates.
type Table struct {
	Caption string
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table.
func NewTable(caption string, columns ...string) *Table {
	return &Table{Caption: caption, Columns: columns}
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(b *strings.Builder) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(b, "%s\n", t.Caption)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table standalone.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Cell returns a cell by row/column index (test convenience).
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// FindRow returns the first row whose first cell equals key, or nil.
func (t *Table) FindRow(key string) []string {
	for _, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return r
		}
	}
	return nil
}

// Report is the full output of one experiment.
type Report struct {
	ID     string // experiment id, e.g. "figure7"
	Title  string
	Tables []*Table
	Series []*metrics.Series
	Notes  []string
	// SLO carries the run's SLO accounting when the experiment tracks
	// it (per-function targets, violation/goodput totals, cold-start
	// attribution). The harness lifts it into the suite manifest.
	SLO *metrics.SLOSummary
}

// New creates a report.
func New(id, title string) *Report { return &Report{ID: id, Title: title} }

// AddTable appends a table and returns it for chaining.
func (r *Report) AddTable(t *Table) *Table {
	r.Tables = append(r.Tables, t)
	return t
}

// AddSeries appends a trace.
func (r *Report) AddSeries(s *metrics.Series) { r.Series = append(r.Series, s) }

// AddNote appends a free-form annotation.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SetSLO attaches the run's SLO accounting summary.
func (r *Report) SetSLO(s *metrics.SLOSummary) { r.SLO = s }

// Table returns the table with the given caption prefix, or nil.
func (r *Report) Table(captionPrefix string) *Table {
	for _, t := range r.Tables {
		if strings.HasPrefix(t.Caption, captionPrefix) {
			return t
		}
	}
	return nil
}

// String renders the whole report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		t.Render(&b)
	}
	for _, s := range r.Series {
		b.WriteByte('\n')
		renderSeries(&b, s)
	}
	if r.SLO != nil {
		fmt.Fprintf(&b, "\n%s\n", r.SLO.String())
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// renderSeries prints a compact sampled view of a trace: up to 12 evenly
// spaced points plus summary stats.
func renderSeries(b *strings.Builder, s *metrics.Series) {
	fmt.Fprintf(b, "series %s: n=%d mean=%.2f min=%.2f max=%.2f\n",
		s.Name, s.Len(), s.Mean(), s.Min(), s.Max())
	if s.Len() == 0 {
		return
	}
	step := s.Len() / 12
	if step < 1 {
		step = 1
	}
	var parts []string
	for i := 0; i < s.Len(); i += step {
		p := s.Points[i]
		parts = append(parts, fmt.Sprintf("%.0fs:%.1f", p.At.Seconds(), p.Value))
	}
	fmt.Fprintf(b, "  %s\n", strings.Join(parts, " "))
}

// SortRows orders rows by the first column (stable output for maps).
func (t *Table) SortRows() {
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}

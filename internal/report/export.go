package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dilu/internal/metrics"
)

// WriteCSV streams every table of the report as CSV sections separated
// by blank lines; series are emitted as two-column (seconds, value)
// sections. The format round-trips into spreadsheet/plotting tools for
// regenerating the paper's figures graphically.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, t := range r.Tables {
		if err := cw.Write([]string{"# " + t.Caption}); err != nil {
			return err
		}
		if err := cw.Write(t.Columns); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if err := cw.Write([]string{"# series " + s.Name}); err != nil {
			return err
		}
		if err := cw.Write([]string{"seconds", "value"}); err != nil {
			return err
		}
		for _, p := range s.Points {
			if err := cw.Write([]string{
				fmt.Sprintf("%.3f", p.At.Seconds()),
				fmt.Sprintf("%g", p.Value),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the report as a CSV string.
func (r *Report) CSV() string {
	var b strings.Builder
	_ = r.WriteCSV(&b)
	return b.String()
}

// jsonReport is the stable JSON shape of a report. SLO is omitted when
// absent, so reports predating the SLO layer keep their fingerprints.
type jsonReport struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Tables []jsonTable         `json:"tables,omitempty"`
	Series []jsonSeries        `json:"series,omitempty"`
	Notes  []string            `json:"notes,omitempty"`
	SLO    *metrics.SLOSummary `json:"slo,omitempty"`
}

type jsonTable struct {
	Caption string     `json:"caption"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type jsonSeries struct {
	Name   string      `json:"name"`
	Points [][2]string `json:"points"`
}

// WriteJSON emits the report as a single JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{ID: r.ID, Title: r.Title, Notes: r.Notes, SLO: r.SLO}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{Caption: t.Caption, Columns: t.Columns, Rows: t.Rows})
	}
	for _, s := range r.Series {
		js := jsonSeries{Name: s.Name}
		for _, p := range s.Points {
			js.Points = append(js.Points, [2]string{
				fmt.Sprintf("%.3f", p.At.Seconds()),
				fmt.Sprintf("%g", p.Value),
			})
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// JSON renders the report as a JSON string.
func (r *Report) JSON() string {
	var b strings.Builder
	_ = r.WriteJSON(&b)
	return b.String()
}

// Package instance implements the serving-plane runtimes of Dilu's DL
// functions: batched inference servers (including generative LLM servers
// with prefill/decode structure and pipeline sharding over GPU
// fragments), and DDP / pipeline-parallel training jobs with their
// gradient-sync idle phases.
//
// Instances interact with the substrate through two hooks called by the
// simulation world every 5 ms tick, around the RCKM token cycle and GPU
// execution:
//
//	PreTick  — enqueue block demand (form batches, start iterations)
//	PostTick — detect completions, record latencies, report KLCs
package instance

import (
	"fmt"

	"dilu/internal/gpu"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/rckm"
	"dilu/internal/sim"
)

// Request is one inference invocation.
type Request struct {
	ID       int64
	Arrive   sim.Time // gateway arrival
	Dispatch sim.Time // set when handed to an instance

	// Gateway metadata (see core.Request). Tenant is the accounting
	// identity; Priority and Deadline (absolute completion target, zero =
	// none) order the gateway's pending queue and feed deadline-aware
	// admission. The serving plane carries them but executes batches
	// identically for all values.
	Tenant   string
	Priority int
	Deadline sim.Time

	// Resilience metadata (see core.ResilienceConfig). Attempt counts
	// timeout-driven redeliveries of this request (0 = first try); Hedge
	// marks a speculative duplicate racing the primary copy. Both are
	// zero on every request when resilience is off.
	Attempt int
	Hedge   bool

	// ColdStage is the cold-start stage on this request's critical path,
	// stamped by the serving plane when a launch's activation flush
	// dispatches it (ColdNone when it never waited for a launch). The
	// recorder only counts it when stage tracking is armed.
	ColdStage metrics.ColdStage

	// Token-level metadata for autoregressive (LLM) requests: the prompt
	// length to prefill and the number of output tokens to decode. Zero
	// on every request of a non-LLM function.
	PromptTokens int
	DecodeTokens int
}

// KVBacking is the memory substrate an LLM instance charges KV-cache
// growth against — one per stage, bridging to the cluster placement and
// GPU resident so quota conservation holds at every granularity.
// ReserveKV returns false when the device lacks headroom (cache full).
type KVBacking interface {
	ReserveKV(mb float64) bool
	ReleaseKV(mb float64)
}

// Stage couples one GPU execution context with its RCKM client. Single-
// GPU instances have one stage; fragmented LLM instances have one per
// pipeline shard. KV is non-nil only on token-level LLM instances.
type Stage struct {
	Res    *gpu.Resident
	Client *rckm.Client
	KV     KVBacking
}

// Ticker is implemented by every instance runtime. Busy reports whether
// the runtime has per-tick work pending — queued or in-flight requests
// for inference, an unfinished active job for training. The simulation
// world uses it to keep idle runtimes out of the tick loop; PreTick and
// PostTick are no-ops (beyond flag housekeeping the runtime performs at
// its own idle transition) whenever Busy is false.
type Ticker interface {
	PreTick(now sim.Time)
	PostTick(now sim.Time)
	Busy() bool
}

// Server is the request-serving surface the dispatch plane programs
// against: the fixed-batch Inference runtime and the token-level LLM
// runtime both implement it, so placement, load balancing, resilience
// steals, and teardown are runtime-agnostic.
type Server interface {
	Ticker
	InstID() string
	SetActive(active bool)
	Active() bool
	Enqueue(req Request)
	QueueLen() int
	InFlight() int
	Load() int
	Served() int64
	SetOnComplete(fn func(req Request, done sim.Time) bool)
	StealQueued(id int64) (Request, bool)
	HasRequest(id int64) bool
	DropQueue() []Request
	Abort() []Request
	Idle() bool
}

// ---------------------------------------------------------------------------
// Inference.

// Inference is a batched inference server for one function instance.
type Inference struct {
	ID   string
	Func string
	Spec *model.Spec
	IBS  int

	Stages []Stage
	Rec    *metrics.LatencyRecorder

	active bool
	queue  []Request

	// In-flight batch.
	batch      []Request
	steps      int // remaining execution steps (1 for discriminative; 1+tokens for generative)
	totalSteps int
	stepWork   float64 // per-stage work of the current step
	stepStart  sim.Time
	batchStart sim.Time

	served        int64
	busySince     sim.Time
	lastServedAt  sim.Time
	stepsObserved int64

	// onComplete, when set, intercepts each batch completion before the
	// latency sample is recorded. Returning false discards the
	// completion unrecorded — a hedge copy that lost its race. Nil (the
	// default) records everything, byte-identically to the pre-hook
	// path.
	onComplete func(req Request, done sim.Time) bool
}

// NewInference builds an inference instance. Stages must be non-empty;
// rec may be shared across the function's instances.
func NewInference(id, fn string, spec *model.Spec, ibs int, stages []Stage, rec *metrics.LatencyRecorder) *Inference {
	if len(stages) == 0 {
		panic("instance: inference needs at least one stage")
	}
	if ibs < 1 {
		ibs = 1
	}
	inst := &Inference{ID: id, Func: fn, Spec: spec, IBS: ibs, Stages: stages, Rec: rec}
	inst.applySaturation(1)
	return inst
}

// InstID returns the instance identifier (Server interface; ID stays a
// field for struct-literal construction in tests).
func (in *Inference) InstID() string { return in.ID }

// SetOnComplete installs the resilience layer's completion hook. The
// hook sees every finishing request; returning false suppresses the
// latency sample and the served count for that copy.
func (in *Inference) SetOnComplete(fn func(req Request, done sim.Time) bool) { in.onComplete = fn }

// StealQueued removes and returns the queued (not yet executing) copy
// of request id, if present. The resilience layer uses it to pull a
// timed-out request off a straggling instance's queue for retry
// elsewhere, and to cancel hedge losers that never started executing.
func (in *Inference) StealQueued(id int64) (Request, bool) {
	for i, req := range in.queue {
		if req.ID == id {
			in.queue = append(in.queue[:i], in.queue[i+1:]...)
			return req, true
		}
	}
	return Request{}, false
}

// HasRequest reports whether a copy of request id is held by this
// instance, queued or executing.
func (in *Inference) HasRequest(id int64) bool {
	for _, req := range in.batch {
		if req.ID == id {
			return true
		}
	}
	for _, req := range in.queue {
		if req.ID == id {
			return true
		}
	}
	return false
}

// SetActive marks the instance ready to serve (cold start complete).
func (in *Inference) SetActive(active bool) { in.active = active }

// Active reports whether the instance serves requests.
func (in *Inference) Active() bool { return in.active }

// Enqueue hands a request to the instance's local queue.
func (in *Inference) Enqueue(req Request) { in.queue = append(in.queue, req) }

// QueueLen returns queued (not yet executing) requests.
func (in *Inference) QueueLen() int { return len(in.queue) }

// InFlight returns the size of the executing batch.
func (in *Inference) InFlight() int { return len(in.batch) }

// Load returns queued plus in-flight requests — the dispatch signal used
// by the least-loaded balancer.
func (in *Inference) Load() int { return len(in.queue) + len(in.batch) }

// Served returns the number of completed requests.
func (in *Inference) Served() int64 { return in.served }

func (in *Inference) applySaturation(ibs int) {
	k := in.Spec.InferSatK(ibs)
	for _, st := range in.Stages {
		st.Res.SatK = k
	}
}

// PreTick forms a batch from the queue when the previous one finished.
// Under queue pressure the batch grows past the profiled IBS (adaptive
// batching à la BATCH/INFless) up to twice the profiled size — the burst
// regime the doubled limit quota is provisioned for.
func (in *Inference) PreTick(now sim.Time) {
	if !in.active || in.steps > 0 || len(in.queue) == 0 {
		if len(in.queue) <= 2*in.IBS {
			for _, st := range in.Stages {
				if st.Client != nil {
					st.Client.SetPressured(false)
				}
			}
		}
		return
	}
	maxBatch := in.IBS
	pressured := len(in.queue) > 2*in.IBS
	if pressured {
		maxBatch = 2 * in.IBS
		if maxBatch > model.MaxIBS {
			maxBatch = model.MaxIBS
		}
	}
	for _, st := range in.Stages {
		if st.Client != nil {
			st.Client.SetPressured(pressured)
		}
	}
	n := len(in.queue)
	if n > maxBatch {
		n = maxBatch
	}
	in.batch = append(in.batch[:0], in.queue[:n]...)
	in.queue = in.queue[n:]
	in.batchStart = now
	in.applySaturation(n)
	if in.Spec.Generative {
		in.totalSteps = 1 + in.Spec.AvgOutTokens
		in.steps = in.totalSteps
		in.startStep(now, in.prefillWork(n))
	} else {
		in.totalSteps = 1
		in.steps = 1
		in.startStep(now, in.Spec.InferWork(n))
	}
}

func (in *Inference) prefillWork(ibs int) float64 {
	return in.Spec.PrefillWork * (1 + in.Spec.InferPerItem*float64(ibs-1))
}

func (in *Inference) startStep(now sim.Time, work float64) {
	in.stepStart = now
	in.stepWork = work / float64(len(in.Stages))
	for _, st := range in.Stages {
		st.Res.AddWork(in.stepWork)
	}
}

func (in *Inference) stepDone() bool {
	for _, st := range in.Stages {
		if st.Res.Pending() > 0 {
			return false
		}
	}
	return true
}

// completionTime interpolates when the slowest stage drained. A tick
// labelled T covers the execution interval [T, T+period): work enqueued
// in PreTick(T) runs during that interval, so a drain at fraction f is
// stamped T + f·period (never earlier than the enqueue).
func (in *Inference) completionTime(now sim.Time) sim.Time {
	frac := 0.0
	for _, st := range in.Stages {
		if f := st.Res.CompletionFraction(); f > frac {
			frac = f
		}
	}
	return now + sim.Duration(frac*float64(sim.TickPeriod))
}

// PostTick advances steps and completes batches.
func (in *Inference) PostTick(now sim.Time) {
	if in.steps == 0 || !in.stepDone() {
		return
	}
	done := in.completionTime(now)
	klc := done - in.stepStart
	// Prefill steps of generative batches are skipped for KLC tracking:
	// the decode step is the TPOT-relevant iteration and mixing the two
	// would poison the T_min floor.
	prefill := in.Spec.Generative && in.steps == in.totalSteps && in.totalSteps > 1
	if !prefill {
		for _, st := range in.Stages {
			if st.Client != nil {
				st.Client.ObserveIteration(klc, in.stepWork)
			}
		}
	}
	in.stepsObserved++
	in.steps--
	if in.steps > 0 {
		in.startStep(now, in.Spec.DecodeStepWork(len(in.batch)))
		return
	}
	// Batch complete: record latencies, attributing each sample's
	// gateway wait (Dispatch − Arrive; positive only when the request
	// queued for an instance) so SLO accounting can separate cold-start
	// violations from execution-path ones.
	for _, req := range in.batch {
		if in.onComplete != nil && !in.onComplete(req, done) {
			continue // duplicate copy: already served elsewhere
		}
		lat := done - req.Arrive
		if in.Spec.Generative && in.Spec.AvgOutTokens > 0 {
			lat = lat / sim.Duration(in.Spec.AvgOutTokens) // time per output token
		}
		if in.Rec != nil {
			in.Rec.ObserveWaitStage(lat, req.Dispatch-req.Arrive, req.ColdStage)
		}
		in.served++
	}
	in.lastServedAt = done
	in.batch = in.batch[:0]
	if len(in.queue) == 0 {
		// The instance is about to leave the world's active set; perform
		// the pressure-flag clearing its next (never-delivered) PreTick
		// would have done, so RCKM never sees a stale backlog signal.
		for _, st := range in.Stages {
			if st.Client != nil {
				st.Client.SetPressured(false)
			}
		}
	}
}

// DropQueue fails queued requests back to the caller (instance teardown);
// it returns them for re-dispatch.
func (in *Inference) DropQueue() []Request {
	q := in.queue
	in.queue = nil
	return q
}

// Abort cancels the in-flight batch and drops the queue — the forced
// teardown of a node failure or migration, where waiting for the batch
// is not an option. Every uncompleted request (executing ones first, in
// batch order, then the queue) is returned for gateway re-dispatch with
// its original Arrive stamp, so retried requests pay their lost work in
// recorded latency. Execution state resets, leaving the instance idle.
func (in *Inference) Abort() []Request {
	reqs := make([]Request, 0, len(in.batch)+len(in.queue))
	reqs = append(reqs, in.batch...)
	reqs = append(reqs, in.queue...)
	in.batch = in.batch[:0]
	in.queue = nil
	in.steps = 0
	in.totalSteps = 0
	in.stepWork = 0
	for _, st := range in.Stages {
		if st.Client != nil {
			st.Client.SetPressured(false)
		}
	}
	return reqs
}

// Idle reports whether the instance has no queued or executing work.
func (in *Inference) Idle() bool { return len(in.queue) == 0 && in.steps == 0 }

// Busy implements Ticker: queued or in-flight work exists. Note this is
// independent of Active — a descheduled instance still drains its
// in-flight batch.
func (in *Inference) Busy() bool { return len(in.queue) > 0 || in.steps > 0 }

func (in *Inference) String() string {
	return fmt.Sprintf("inf[%s %s ibs=%d stages=%d]", in.ID, in.Spec.Name, in.IBS, len(in.Stages))
}

// ---------------------------------------------------------------------------
// Training.

// TrainPhase is the position inside a training iteration.
type TrainPhase int

// Training phases.
const (
	TrainCompute TrainPhase = iota
	TrainSyncing
)

// Training is a distributed training job: W workers iterating in lockstep
// (DDP) or a pipeline of stage workers (DeepSpeed fine-tuning). Each
// worker owns a Stage on a distinct GPU; an iteration is compute on every
// worker followed by a communication phase that leaves GPUs idle — the
// fragmentation source of Observation-2.
type Training struct {
	ID   string
	Func string
	Spec *model.Spec

	Workers  []Stage
	Pipeline bool // pipeline-parallel fine-tuning (samples not multiplied by workers)

	active     bool
	phase      TrainPhase
	syncUntil  sim.Time
	iterStart  sim.Time
	iters      int64
	samples    float64
	computeSum sim.Duration

	// TargetIters>0 ends the job and records DoneAt (JCT accounting).
	TargetIters int64
	DoneAt      sim.Time
	StartedAt   sim.Time
	finished    bool
}

// NewTraining builds a training job over the given worker stages.
func NewTraining(id, fn string, spec *model.Spec, workers []Stage) *Training {
	if len(workers) == 0 {
		panic("instance: training needs at least one worker")
	}
	tr := &Training{ID: id, Func: fn, Spec: spec, Workers: workers,
		Pipeline: spec.TrainStages > 1}
	k := spec.TrainSatK()
	for _, w := range workers {
		w.Res.SatK = k
	}
	return tr
}

// SetActive starts (or pauses) the job.
func (tr *Training) SetActive(active bool) { tr.active = active }

// Active reports whether the job is running.
func (tr *Training) Active() bool { return tr.active }

// Finished reports whether the job hit its iteration target.
func (tr *Training) Finished() bool { return tr.finished }

// Busy implements Ticker: an active, unfinished job iterates every tick
// (compute polling and sync-phase countdowns both ride the tick loop).
func (tr *Training) Busy() bool { return tr.active && !tr.finished }

// Iterations returns completed iterations.
func (tr *Training) Iterations() int64 { return tr.iters }

// Samples returns processed samples across all workers.
func (tr *Training) Samples() float64 { return tr.samples }

// Throughput returns samples/second since the job became active.
func (tr *Training) Throughput(now sim.Time) float64 {
	if tr.StartedAt == 0 && tr.iters == 0 {
		return 0
	}
	end := now
	if tr.finished {
		end = tr.DoneAt
	}
	dur := (end - tr.StartedAt).Seconds()
	if dur <= 0 {
		return 0
	}
	return tr.samples / dur
}

// PreTick launches the next iteration's compute when ready.
func (tr *Training) PreTick(now sim.Time) {
	if !tr.active || tr.finished {
		return
	}
	if tr.StartedAt == 0 {
		tr.StartedAt = now
	}
	switch tr.phase {
	case TrainSyncing:
		if now < tr.syncUntil {
			return
		}
		tr.phase = TrainCompute
		tr.launchCompute(now)
	case TrainCompute:
		if tr.iterStart == 0 {
			tr.launchCompute(now)
		}
	}
}

func (tr *Training) launchCompute(now sim.Time) {
	tr.iterStart = now
	for _, w := range tr.Workers {
		w.Res.AddWork(tr.Spec.TrainWork)
	}
}

func (tr *Training) computeDone() bool {
	for _, w := range tr.Workers {
		if w.Res.Pending() > 0 {
			return false
		}
	}
	return true
}

// PostTick detects compute completion (barrier across workers — the
// barrel effect of Principle-1) and enters the sync phase.
func (tr *Training) PostTick(now sim.Time) {
	if !tr.active || tr.finished || tr.phase != TrainCompute || tr.iterStart == 0 {
		return
	}
	if !tr.computeDone() {
		return
	}
	// Tick T covers [T, T+period); see Inference.completionTime.
	frac := 0.0
	for _, w := range tr.Workers {
		if f := w.Res.CompletionFraction(); f > frac {
			frac = f
		}
	}
	done := now + sim.Duration(frac*float64(sim.TickPeriod))
	klc := done - tr.iterStart
	for _, w := range tr.Workers {
		if w.Client != nil {
			w.Client.ObserveIteration(klc, tr.Spec.TrainWork)
		}
	}
	tr.computeSum += klc
	tr.iters++
	if tr.Pipeline {
		tr.samples += float64(tr.Spec.TrainSamples)
	} else {
		tr.samples += float64(tr.Spec.TrainSamples * len(tr.Workers))
	}
	if tr.TargetIters > 0 && tr.iters >= tr.TargetIters {
		tr.finished = true
		tr.DoneAt = done + tr.Spec.TrainSync
		return
	}
	tr.phase = TrainSyncing
	tr.syncUntil = done + tr.Spec.TrainSync
	tr.iterStart = 0
}

// Preempt swaps the job's entire worker set after an eviction (node
// failure or drain): checkpoint-restart semantics. The interrupted
// iteration is abandoned — at most one iteration of work is lost — and
// the job resumes from a fresh compute phase on the new workers at the
// next tick. Completed-iteration and sample counters are preserved.
func (tr *Training) Preempt(workers []Stage) {
	if len(workers) == 0 {
		panic("instance: training needs at least one worker")
	}
	k := tr.Spec.TrainSatK()
	for _, w := range workers {
		w.Res.SatK = k
	}
	tr.Workers = workers
	tr.phase = TrainCompute
	tr.iterStart = 0
	tr.syncUntil = 0
}

// AtBoundary reports whether the job is between iterations (syncing or
// not yet launched) — the only safe point to change the worker set.
func (tr *Training) AtBoundary() bool {
	return !tr.active || tr.phase == TrainSyncing || tr.iterStart == 0
}

// TryAddWorker joins a new worker at an iteration boundary (the elastic
// serverless training extension of the paper's §7). It fails outside
// boundaries; callers retry on their next control period.
func (tr *Training) TryAddWorker(st Stage) bool {
	if tr.finished || !tr.AtBoundary() {
		return false
	}
	st.Res.SatK = tr.Spec.TrainSatK()
	tr.Workers = append(tr.Workers, st)
	return true
}

// TryRemoveWorker retires the most recently added worker at an iteration
// boundary, returning its stage for the caller to detach. Jobs never
// shrink below one worker.
func (tr *Training) TryRemoveWorker() (Stage, bool) {
	if tr.finished || !tr.AtBoundary() || len(tr.Workers) <= 1 {
		return Stage{}, false
	}
	last := tr.Workers[len(tr.Workers)-1]
	tr.Workers = tr.Workers[:len(tr.Workers)-1]
	last.Res.ClearWork()
	return last, true
}

// MeanIterTime returns the average compute time per iteration.
func (tr *Training) MeanIterTime() sim.Duration {
	if tr.iters == 0 {
		return 0
	}
	return tr.computeSum / sim.Duration(tr.iters)
}

func (tr *Training) String() string {
	kind := "ddp"
	if tr.Pipeline {
		kind = "pipeline"
	}
	return fmt.Sprintf("train[%s %s %s x%d]", tr.ID, tr.Spec.Name, kind, len(tr.Workers))
}

// Token-level autoregressive serving: the LLM runtime replaces the
// fixed-cost generative batch of Inference with per-sequence progress.
// Each scheduling step decodes one token for every resident sequence
// (and chunk-prefills joiners), per-sequence KV-cache growth is charged
// against device memory through the stage's KVBacking, and a full cache
// forces preemption of the youngest sequence or refusal of the queue
// head — the memory pressure DeepServe-style serverless LLM serving is
// about.
package instance

import (
	"fmt"

	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/sim"
)

// LLMConfig parameterizes one token-level serving instance.
type LLMConfig struct {
	Prof model.LLMProfile
	// MaxBatch bounds resident sequences per step; <1 defaults to 8.
	MaxBatch int
	// RunToCompletion disables continuous batching: sequences are
	// admitted only when the running batch has fully drained, the
	// static-batching baseline continuous batching is compared against.
	RunToCompletion bool
}

// llmSeq is one resident sequence's decode state.
type llmSeq struct {
	req       Request
	target    int     // output tokens to produce (≥1)
	generated int     // output tokens produced so far
	kvMB      float64 // KV memory currently reserved for this sequence
	prefill   bool    // the next step performs this sequence's prefill
	firstTok  sim.Time
}

// LLM is a token-level autoregressive serving instance. It implements
// Server, so dispatch, resilience, and teardown treat it exactly like
// the fixed-batch Inference runtime.
type LLM struct {
	ID   string
	Func string
	Spec *model.Spec
	Cfg  LLMConfig

	Stages []Stage
	Rec    *metrics.LatencyRecorder
	Tok    *metrics.TokenRecorder

	active bool
	queue  []Request
	seqs   []*llmSeq

	inStep    bool
	stepStart sim.Time
	stepWork  float64 // per-stage work of the current step
	// prefillStep marks the current step as carrying at least one
	// prefill; its KLC is not a decode iteration and is skipped for
	// RCKM's T_min floor, like Inference's prefill steps.
	prefillStep bool

	served int64

	// lastRefusedID latches the queue head whose admission last failed
	// on KV headroom, so a blocked head is counted once per request
	// rather than once per 5 ms tick.
	lastRefusedID int64

	onComplete func(req Request, done sim.Time) bool
	// onPreempt hands a cache-full-preempted sequence's request back to
	// the serving plane for redispatch, original Arrive stamp intact.
	onPreempt func(req Request)
}

// NewLLM builds a token-level serving instance. Stages must be
// non-empty and each must carry a KVBacking; rec/tok may be shared
// across the function's instances.
func NewLLM(id, fn string, spec *model.Spec, cfg LLMConfig, stages []Stage, rec *metrics.LatencyRecorder, tok *metrics.TokenRecorder) *LLM {
	if len(stages) == 0 {
		panic("instance: llm needs at least one stage")
	}
	for _, st := range stages {
		if st.KV == nil {
			panic("instance: llm stage without KV backing")
		}
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 8
	}
	in := &LLM{ID: id, Func: fn, Spec: spec, Cfg: cfg, Stages: stages, Rec: rec, Tok: tok}
	in.applySaturation(1)
	return in
}

// InstID returns the instance identifier (Server interface).
func (in *LLM) InstID() string { return in.ID }

// SetOnComplete installs the resilience layer's completion hook.
func (in *LLM) SetOnComplete(fn func(req Request, done sim.Time) bool) { in.onComplete = fn }

// SetOnPreempt installs the serving plane's cache-full preemption hook.
func (in *LLM) SetOnPreempt(fn func(req Request)) { in.onPreempt = fn }

// SetActive marks the instance ready to serve (cold start complete).
func (in *LLM) SetActive(active bool) { in.active = active }

// Active reports whether the instance serves requests.
func (in *LLM) Active() bool { return in.active }

// Enqueue hands a request to the instance's local queue.
func (in *LLM) Enqueue(req Request) { in.queue = append(in.queue, req) }

// QueueLen returns queued (not yet admitted) requests.
func (in *LLM) QueueLen() int { return len(in.queue) }

// InFlight returns the number of resident sequences.
func (in *LLM) InFlight() int { return len(in.seqs) }

// Load returns queued plus resident requests.
func (in *LLM) Load() int { return len(in.queue) + len(in.seqs) }

// Served returns the number of completed requests.
func (in *LLM) Served() int64 { return in.served }

// KVUsedMB returns the KV memory currently reserved across all resident
// sequences (summed over stages) — the recount source for the
// conservation invariant.
func (in *LLM) KVUsedMB() float64 {
	var mb float64
	for _, s := range in.seqs {
		mb += s.kvMB
	}
	return mb
}

// StealQueued removes and returns the queued copy of request id.
func (in *LLM) StealQueued(id int64) (Request, bool) {
	for i, req := range in.queue {
		if req.ID == id {
			in.queue = append(in.queue[:i], in.queue[i+1:]...)
			return req, true
		}
	}
	return Request{}, false
}

// HasRequest reports whether a copy of request id is held, queued or
// resident.
func (in *LLM) HasRequest(id int64) bool {
	for _, s := range in.seqs {
		if s.req.ID == id {
			return true
		}
	}
	for _, req := range in.queue {
		if req.ID == id {
			return true
		}
	}
	return false
}

func (in *LLM) applySaturation(n int) {
	if n < 1 {
		n = 1
	}
	if n > model.MaxIBS {
		n = model.MaxIBS
	}
	k := in.Spec.InferSatK(n)
	for _, st := range in.Stages {
		st.Res.SatK = k
	}
}

// reserveKV charges mb of KV memory, split evenly across stages. On any
// stage's refusal the already-charged stages are rolled back and false
// is returned — the cache-full signal. The even split stays exact in
// float64 for the catalog's dyadic per-token footprints at power-of-two
// stage counts, so charge/release cycles accumulate zero drift.
func (in *LLM) reserveKV(mb float64) bool {
	per := mb / float64(len(in.Stages))
	for i, st := range in.Stages {
		if !st.KV.ReserveKV(per) {
			for j := 0; j < i; j++ {
				in.Stages[j].KV.ReleaseKV(per)
			}
			return false
		}
	}
	return true
}

func (in *LLM) releaseKV(mb float64) {
	per := mb / float64(len(in.Stages))
	for _, st := range in.Stages {
		st.KV.ReleaseKV(per)
	}
}

// dropSeq releases sequence i's KV and removes it from the batch.
func (in *LLM) dropSeq(i int) *llmSeq {
	s := in.seqs[i]
	in.releaseKV(s.kvMB)
	s.kvMB = 0
	in.seqs = append(in.seqs[:i], in.seqs[i+1:]...)
	return s
}

// preemptYoungest evicts the most recently admitted sequence to free KV
// headroom. Its request is handed back for redispatch with the original
// Arrive stamp, so the lost work shows up in recorded latency.
func (in *LLM) preemptYoungest() bool {
	if len(in.seqs) == 0 {
		return false
	}
	s := in.dropSeq(len(in.seqs) - 1)
	if in.Tok != nil {
		in.Tok.NotePreemption()
	}
	if in.onPreempt != nil {
		in.onPreempt(s.req)
	}
	return true
}

// admit moves queue heads into the batch while slots and KV headroom
// last. A head refused on memory stays queued (FIFO order is part of
// the determinism contract) and is counted once via the refusal latch.
func (in *LLM) admit() {
	for len(in.queue) > 0 && len(in.seqs) < in.Cfg.MaxBatch {
		req := in.queue[0]
		prompt := req.PromptTokens
		if prompt < 1 {
			prompt = 1
		}
		target := req.DecodeTokens
		if target < 1 {
			target = 1
		}
		// Prefill writes the prompt's KV plus the first output token's.
		need := in.Cfg.Prof.KVForTokens(prompt + 1)
		if !in.reserveKV(need) {
			if req.ID != in.lastRefusedID {
				in.lastRefusedID = req.ID
				if in.Tok != nil {
					in.Tok.NoteRefusal()
				}
			}
			return
		}
		in.queue = in.queue[1:]
		in.seqs = append(in.seqs, &llmSeq{req: req, target: target, kvMB: need, prefill: true})
	}
}

// growKV reserves the next output token's KV for every continuing
// sequence, preempting the youngest sequence (and retrying) when the
// cache is full. Freshly admitted sequences already hold their first
// token's KV from admit.
func (in *LLM) growKV() {
	for i := 0; i < len(in.seqs); i++ {
		s := in.seqs[i]
		if s.prefill {
			continue // admit already reserved through the first token
		}
		grow := in.Cfg.Prof.KVForTokens(1)
		for !in.reserveKV(grow) {
			if i == len(in.seqs)-1 {
				// This sequence is itself the youngest: evict it.
				in.dropSeq(i)
				if in.Tok != nil {
					in.Tok.NotePreemption()
				}
				if in.onPreempt != nil {
					in.onPreempt(s.req)
				}
				i--
				grow = 0
				break
			}
			if !in.preemptYoungest() {
				grow = 0
				break
			}
		}
		if grow > 0 {
			s.kvMB += grow
		}
	}
}

// PreTick forms the next scheduling step at a step boundary: admit
// joiners (continuous batching) or a fresh batch (run-to-completion),
// grow continuing sequences' KV, and enqueue the step's block demand.
func (in *LLM) PreTick(now sim.Time) {
	if in.inStep || !in.active {
		return
	}
	if len(in.queue) == 0 && len(in.seqs) == 0 {
		in.setPressured(false)
		return
	}
	// Grow continuing sequences before admitting joiners: resident
	// sequences have KV priority, so a joiner is never admitted only to
	// be evicted for a decoder's next token in the same tick.
	in.growKV()
	if in.Cfg.RunToCompletion {
		if len(in.seqs) == 0 {
			in.admit()
		}
	} else {
		in.admit()
	}
	in.setPressured(len(in.queue) > in.Cfg.MaxBatch)
	if len(in.seqs) == 0 {
		return // queue head refused on memory; retry next tick
	}
	decode, prefillTokens := 0, 0
	for _, s := range in.seqs {
		if s.prefill {
			p := s.req.PromptTokens
			if p < 1 {
				p = 1
			}
			prefillTokens += p
		} else {
			decode++
		}
	}
	in.prefillStep = prefillTokens > 0
	in.applySaturation(len(in.seqs))
	work := in.Cfg.Prof.StepWork(decode, prefillTokens)
	in.stepStart = now
	in.stepWork = work / float64(len(in.Stages))
	for _, st := range in.Stages {
		st.Res.AddWork(in.stepWork)
	}
	in.inStep = true
}

func (in *LLM) setPressured(p bool) {
	for _, st := range in.Stages {
		if st.Client != nil {
			st.Client.SetPressured(p)
		}
	}
}

func (in *LLM) stepDone() bool {
	for _, st := range in.Stages {
		if st.Res.Pending() > 0 {
			return false
		}
	}
	return true
}

// completionTime interpolates when the slowest stage drained (see
// Inference.completionTime for the tick-interval convention).
func (in *LLM) completionTime(now sim.Time) sim.Time {
	frac := 0.0
	for _, st := range in.Stages {
		if f := st.Res.CompletionFraction(); f > frac {
			frac = f
		}
	}
	return now + sim.Duration(frac*float64(sim.TickPeriod))
}

// PostTick advances every resident sequence by one token when the step
// drains, completing sequences that reached their target.
func (in *LLM) PostTick(now sim.Time) {
	if !in.inStep || !in.stepDone() {
		return
	}
	done := in.completionTime(now)
	klc := done - in.stepStart
	if !in.prefillStep {
		for _, st := range in.Stages {
			if st.Client != nil {
				st.Client.ObserveIteration(klc, in.stepWork)
			}
		}
	}
	in.inStep = false
	kept := in.seqs[:0]
	for _, s := range in.seqs {
		if s.prefill {
			s.prefill = false
			s.firstTok = done
			s.generated = 1
			if in.Tok != nil {
				in.Tok.ObserveTTFT(done - s.req.Arrive)
			}
		} else {
			s.generated++
		}
		if in.Tok != nil {
			in.Tok.AddTokens(1)
		}
		if s.generated < s.target {
			kept = append(kept, s)
			continue
		}
		in.completeSeq(s, done)
	}
	// Zero the dropped tail so completed sequences don't pin memory.
	for i := len(kept); i < len(in.seqs); i++ {
		in.seqs[i] = nil
	}
	in.seqs = kept
	if len(in.queue) == 0 && len(in.seqs) == 0 {
		// About to leave the active set: clear the pressure flag the next
		// (never-delivered) PreTick would have cleared.
		in.setPressured(false)
	}
}

// completeSeq releases a finished sequence's KV and records its
// samples. The resilience hook gates recording exactly as on the
// fixed-batch path: a losing hedge copy frees memory but leaves no
// trace.
func (in *LLM) completeSeq(s *llmSeq, done sim.Time) {
	in.releaseKV(s.kvMB)
	s.kvMB = 0
	if in.onComplete != nil && !in.onComplete(s.req, done) {
		return // duplicate copy: already served elsewhere
	}
	if in.Rec != nil {
		// Per-token latency against the model's per-token SLO, matching
		// the fixed-batch generative path's convention.
		lat := (done - s.req.Arrive) / sim.Duration(s.generated)
		in.Rec.ObserveWaitStage(lat, s.req.Dispatch-s.req.Arrive, s.req.ColdStage)
	}
	if in.Tok != nil {
		if s.generated > 1 {
			in.Tok.ObserveTPOT((done - s.firstTok) / sim.Duration(s.generated-1))
		}
		in.Tok.NoteRequest()
	}
	in.served++
}

// DropQueue fails queued requests back to the caller for re-dispatch.
func (in *LLM) DropQueue() []Request {
	q := in.queue
	in.queue = nil
	return q
}

// Abort evicts every resident sequence and drops the queue (forced
// teardown), releasing all KV memory. Uncompleted requests — resident
// first, admission order, then the queue — are returned for gateway
// re-dispatch with their original Arrive stamps.
func (in *LLM) Abort() []Request {
	reqs := make([]Request, 0, len(in.seqs)+len(in.queue))
	for _, s := range in.seqs {
		in.releaseKV(s.kvMB)
		s.kvMB = 0
		reqs = append(reqs, s.req)
	}
	reqs = append(reqs, in.queue...)
	in.seqs = nil
	in.queue = nil
	in.inStep = false
	in.stepWork = 0
	in.prefillStep = false
	in.setPressured(false)
	return reqs
}

// ReleaseAllKV frees every sequence's KV memory and clears all serving
// state without returning requests — the lost-teardown path, where the
// requests are charged to the function's lost ledger rather than
// redispatched. Must run before the placements are removed so the KV
// charge unwinds through the same backing it was made through.
func (in *LLM) ReleaseAllKV() {
	for _, s := range in.seqs {
		in.releaseKV(s.kvMB)
		s.kvMB = 0
	}
	in.seqs = nil
	in.queue = nil
	in.inStep = false
	in.stepWork = 0
	in.prefillStep = false
	in.setPressured(false)
}

// Idle reports whether the instance has no queued or resident work.
func (in *LLM) Idle() bool { return len(in.queue) == 0 && len(in.seqs) == 0 }

// Busy implements Ticker.
func (in *LLM) Busy() bool { return len(in.queue) > 0 || len(in.seqs) > 0 }

func (in *LLM) String() string {
	return fmt.Sprintf("llm[%s %s max=%d stages=%d]", in.ID, in.Spec.Name, in.Cfg.MaxBatch, len(in.Stages))
}

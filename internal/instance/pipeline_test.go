package instance

import (
	"math"
	"testing"

	"dilu/internal/gpu"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/rckm"
	"dilu/internal/sim"
)

// multiWorld runs n GPUs, each with its own manager, under one engine.
type multiWorld struct {
	eng   *sim.Engine
	devs  []*gpu.Device
	mgrs  []*rckm.Manager
	insts []Ticker
}

func newMultiWorld(n int, policy rckm.Policy) *multiWorld {
	w := &multiWorld{eng: sim.NewEngine()}
	for i := 0; i < n; i++ {
		d := gpu.NewDevice("g")
		w.devs = append(w.devs, d)
		w.mgrs = append(w.mgrs, rckm.NewManager(d, policy, rckm.DefaultConfig()))
	}
	w.eng.AddTicker(sim.TickerFunc(func(now sim.Time) {
		for _, in := range w.insts {
			in.PreTick(now)
		}
		for _, m := range w.mgrs {
			m.Issue(now)
		}
		for _, d := range w.devs {
			d.ExecuteTick()
		}
		for _, in := range w.insts {
			in.PostTick(now)
		}
	}))
	return w
}

func (w *multiWorld) stage(t *testing.T, gpuIdx int, id string, slo bool, mem, req, lim float64) Stage {
	t.Helper()
	res, err := w.devs[gpuIdx].Attach(id, mem)
	if err != nil {
		t.Fatal(err)
	}
	c := &rckm.Client{ID: id, Res: res, SLOSensitive: slo, Request: req, Limit: lim}
	w.mgrs[gpuIdx].Register(c)
	return Stage{Res: res, Client: c}
}

func TestPipelineTrainingJob(t *testing.T) {
	// LLaMA2-7B fine-tune: 4 pipeline stage workers on 4 GPUs. Samples
	// count once per iteration (not × workers) and the bubble (TrainSync)
	// idles each GPU ~20%.
	spec := model.ByName("LLaMA2-7B")
	w := newMultiWorld(4, rckm.Exclusive{})
	var stages []Stage
	for i := 0; i < 4; i++ {
		stages = append(stages, w.stage(t, i, "w", false, spec.TrainMemMB, 1, 1))
	}
	tr := NewTraining("ft", "llama-ft", spec, stages)
	if !tr.Pipeline {
		t.Fatal("LLaMA jobs must run in pipeline mode")
	}
	tr.SetActive(true)
	w.insts = append(w.insts, tr)
	w.eng.Run(30 * sim.Second)

	wantIters := 30 / spec.TrainIterTime(1.0).Seconds()
	if got := float64(tr.Iterations()); math.Abs(got-wantIters)/wantIters > 0.15 {
		t.Fatalf("iterations = %v, want ~%v", got, wantIters)
	}
	wantSamples := float64(tr.Iterations()) * float64(spec.TrainSamples)
	if tr.Samples() != wantSamples {
		t.Fatalf("pipeline samples = %v, want %v (not ×workers)", tr.Samples(), wantSamples)
	}
	for _, d := range w.devs {
		if occ := d.MeanOccupancy(); occ < 0.6 || occ > 0.9 {
			t.Fatalf("stage occupancy %v, want ~0.8 (20%% bubble)", occ)
		}
	}
}

func TestPipelineInferenceStraggler(t *testing.T) {
	// A 2-stage LLM where one stage's GPU is contended: the decode step
	// completes at the slow stage's pace (barrel effect across shards).
	spec := model.ByName("LLaMA2-7B")
	w := newMultiWorld(2, rckm.MPS{UseLimit: true})
	fast := w.stage(t, 0, "s0", true, spec.InferMemMB/2, 1, 1)
	slow := w.stage(t, 1, "s1", true, spec.InferMemMB/2, 0.25, 0.25)
	rec := metrics.NewLatencyRecorder("llm", spec.SLO)
	inf := NewInference("i", "llm", spec, 1, []Stage{fast, slow}, rec)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)
	inf.Enqueue(Request{ID: 1, Arrive: 0})
	w.eng.Run(5 * sim.Second)
	if rec.Count() != 1 {
		t.Fatalf("served %d", rec.Count())
	}
	// Both-stages-fast TPOT reference.
	wFast := newMultiWorld(2, rckm.MPS{UseLimit: true})
	a := wFast.stage(t, 0, "s0", true, spec.InferMemMB/2, 1, 1)
	b := wFast.stage(t, 1, "s1", true, spec.InferMemMB/2, 1, 1)
	recFast := metrics.NewLatencyRecorder("llm", spec.SLO)
	inf2 := NewInference("i", "llm", spec, 1, []Stage{a, b}, recFast)
	inf2.SetActive(true)
	wFast.insts = append(wFast.insts, inf2)
	inf2.Enqueue(Request{ID: 1, Arrive: 0})
	wFast.eng.Run(5 * sim.Second)
	if rec.Mean() <= recFast.Mean() {
		t.Fatalf("straggler stage should slow the pipeline: %v vs %v", rec.Mean(), recFast.Mean())
	}
}

func TestInferencePressureFlagLifecycle(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newMultiWorld(1, rckm.Dilu{})
	st := w.stage(t, 0, "i", true, spec.InferMemMB, 0.3, 0.6)
	inf := NewInference("i", "bert", spec, 2, []Stage{st}, nil)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)
	for i := 0; i < 12; i++ {
		inf.Enqueue(Request{ID: int64(i), Arrive: 0})
	}
	w.eng.Step()
	if !st.Client.Pressured() {
		t.Fatal("deep queue should raise the pressure flag")
	}
	w.eng.Run(3 * sim.Second)
	if st.Client.Pressured() {
		t.Fatal("drained queue should clear the pressure flag")
	}
	if inf.Served() != 12 {
		t.Fatalf("served %d / 12", inf.Served())
	}
}

package instance

import (
	"math"
	"testing"

	"dilu/internal/gpu"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/rckm"
	"dilu/internal/sim"
)

// world is a minimal single-GPU tick loop: instances PreTick, manager
// issues, device executes, instances PostTick.
type world struct {
	eng   *sim.Engine
	dev   *gpu.Device
	mgr   *rckm.Manager
	insts []Ticker
}

func newWorld(policy rckm.Policy) *world {
	w := &world{eng: sim.NewEngine(), dev: gpu.NewDevice("g0")}
	w.mgr = rckm.NewManager(w.dev, policy, rckm.DefaultConfig())
	w.eng.AddTicker(sim.TickerFunc(func(now sim.Time) {
		for _, in := range w.insts {
			in.PreTick(now)
		}
		w.mgr.Issue(now)
		w.dev.ExecuteTick()
		for _, in := range w.insts {
			in.PostTick(now)
		}
	}))
	return w
}

func (w *world) addStage(t *testing.T, id string, slo bool, memMB, req, lim float64) Stage {
	t.Helper()
	res, err := w.dev.Attach(id, memMB)
	if err != nil {
		t.Fatal(err)
	}
	c := &rckm.Client{ID: id, Res: res, SLOSensitive: slo, Request: req, Limit: lim}
	w.mgr.Register(c)
	return Stage{Res: res, Client: c}
}

func TestInferenceSingleRequestLatency(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.3, 0.6)
	rec := metrics.NewLatencyRecorder("bert", spec.SLO)
	inf := NewInference("i0", "bert", spec, 4, []Stage{st}, rec)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)

	inf.Enqueue(Request{ID: 1, Arrive: 0})
	w.eng.Run(200 * sim.Millisecond)

	if rec.Count() != 1 {
		t.Fatalf("served %d, want 1", rec.Count())
	}
	// Full GPU, batch 1: exec ≈ spec time; latency ≈ queueing(≤5ms) + exec.
	wantExec := spec.InferExecTime(1.0, 1).Millis()
	got := rec.Mean().Millis()
	if got < wantExec*0.8 || got > wantExec+6 {
		t.Fatalf("latency = %.2fms, want ~%.2fms", got, wantExec)
	}
}

func TestInferenceBatching(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.3, 0.6)
	rec := metrics.NewLatencyRecorder("bert", spec.SLO)
	inf := NewInference("i0", "bert", spec, 8, []Stage{st}, rec)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)

	for i := 0; i < 8; i++ {
		inf.Enqueue(Request{ID: int64(i), Arrive: 0})
	}
	w.eng.Run(sim.Second)
	if rec.Count() != 8 {
		t.Fatalf("served %d, want 8", rec.Count())
	}
	// All eight should ride one batch: total time ≈ one batch-8 execution,
	// far below eight sequential batch-1 executions.
	batch8 := spec.InferExecTime(1.0, 8).Millis()
	seq8 := 8 * spec.InferExecTime(1.0, 1).Millis()
	got := rec.Max().Millis()
	if got > (batch8+seq8)/2 {
		t.Fatalf("max latency %.1fms suggests no batching (batch8=%.1f seq=%.1f)", got, batch8, seq8)
	}
}

func TestInferenceRespectsIBSLimit(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.3, 0.6)
	inf := NewInference("i0", "bert", spec, 2, []Stage{st}, nil)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)
	for i := 0; i < 3; i++ {
		inf.Enqueue(Request{ID: int64(i), Arrive: 0})
	}
	w.eng.Step()
	if inf.InFlight() != 2 {
		t.Fatalf("in flight = %d, want IBS=2", inf.InFlight())
	}
	if inf.QueueLen() != 1 {
		t.Fatalf("queued = %d, want 1", inf.QueueLen())
	}
}

func TestInferenceBurstBatching(t *testing.T) {
	// Queue pressure beyond 2×IBS engages adaptive burst batching up to
	// twice the profiled batch size.
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.3, 0.6)
	inf := NewInference("i0", "bert", spec, 2, []Stage{st}, nil)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)
	for i := 0; i < 9; i++ {
		inf.Enqueue(Request{ID: int64(i), Arrive: 0})
	}
	w.eng.Step()
	if inf.InFlight() != 4 {
		t.Fatalf("in flight = %d, want burst batch 4", inf.InFlight())
	}
}

func TestInferenceInactiveDoesNotServe(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.3, 0.6)
	inf := NewInference("i0", "bert", spec, 4, []Stage{st}, nil)
	w.insts = append(w.insts, inf)
	inf.Enqueue(Request{ID: 1, Arrive: 0})
	w.eng.Run(100 * sim.Millisecond)
	if inf.Served() != 0 {
		t.Fatal("inactive instance served a request")
	}
	if inf.QueueLen() != 1 {
		t.Fatal("queue should hold the request")
	}
}

func TestGenerativeTPOT(t *testing.T) {
	spec := model.ByName("LLaMA2-7B")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.5, 1.0)
	rec := metrics.NewLatencyRecorder("llama", spec.SLO)
	inf := NewInference("i0", "llama", spec, 1, []Stage{st}, rec)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)
	inf.Enqueue(Request{ID: 1, Arrive: 0})
	w.eng.Run(3 * sim.Second)
	if rec.Count() != 1 {
		t.Fatalf("served %d", rec.Count())
	}
	// TPOT ≈ (prefill + 32·decode)/32 at full GPU.
	want := (spec.PrefillWork + 32*spec.DecodeWork1) / model.BlocksPerSecond / 32 * 1000
	got := rec.Mean().Millis()
	if got < want*0.8 || got > want*1.6 {
		t.Fatalf("TPOT = %.1fms, want ~%.1fms", got, want)
	}
	if inf.stepsObserved != 33 { // 1 prefill + 32 decode steps
		t.Fatalf("steps = %d, want 33", inf.stepsObserved)
	}
}

func TestPipelineStagesShareWork(t *testing.T) {
	spec := model.ByName("LLaMA2-7B")
	w := newWorld(rckm.Exclusive{})
	var stages []Stage
	dev2 := gpu.NewDevice("g1") // second GPU with its own manager
	mgr2 := rckm.NewManager(dev2, rckm.Exclusive{}, rckm.DefaultConfig())
	w.eng.AddTicker(sim.TickerFunc(func(now sim.Time) {
		mgr2.Issue(now)
		dev2.ExecuteTick()
	}))
	st1 := w.addStage(t, "s0", true, spec.InferMemMB/2, 0.5, 1.0)
	res2, _ := dev2.Attach("s1", spec.InferMemMB/2)
	c2 := &rckm.Client{ID: "s1", Res: res2, SLOSensitive: true, Request: 0.5, Limit: 1.0}
	mgr2.Register(c2)
	stages = append(stages, st1, Stage{Res: res2, Client: c2})

	rec := metrics.NewLatencyRecorder("llama", spec.SLO)
	inf := NewInference("i0", "llama", spec, 1, stages, rec)
	inf.SetActive(true)
	w.insts = append(w.insts, inf)
	inf.Enqueue(Request{ID: 1, Arrive: 0})
	w.eng.Run(3 * sim.Second)
	if rec.Count() != 1 {
		t.Fatalf("served %d", rec.Count())
	}
	// Two stages at full GPU each halve per-stage work; TPOT should be
	// well below the single-GPU value.
	single := (spec.PrefillWork + 32*spec.DecodeWork1) / model.BlocksPerSecond / 32 * 1000
	if got := rec.Mean().Millis(); got > single {
		t.Fatalf("2-stage TPOT %.1fms not faster than single %.1fms", got, single)
	}
}

func TestTrainingIterationsAndThroughput(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "w0", false, spec.TrainMemMB, 0.4, 0.8)
	tr := NewTraining("t0", "bert-train", spec, []Stage{st})
	tr.SetActive(true)
	w.insts = append(w.insts, tr)
	w.eng.Run(10 * sim.Second)

	// Expected iteration time at full GPU.
	iter := spec.TrainIterTime(1.0).Seconds()
	wantIters := 10.0 / iter
	got := float64(tr.Iterations())
	if math.Abs(got-wantIters)/wantIters > 0.15 {
		t.Fatalf("iterations = %v, want ~%v", got, wantIters)
	}
	thr := tr.Throughput(10 * sim.Second)
	wantThr := spec.TrainThroughput(1.0)
	if math.Abs(thr-wantThr)/wantThr > 0.15 {
		t.Fatalf("throughput = %v, want ~%v", thr, wantThr)
	}
}

func TestTrainingBarrelEffect(t *testing.T) {
	// Two DDP workers where one is throttled: iteration time must follow
	// the slow worker (the lagger of Principle-1).
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.MPS{UseLimit: true})
	fast := w.addStage(t, "w0", false, spec.TrainMemMB, 0.8, 0.8)
	dev2 := gpu.NewDevice("g1")
	mgr2 := rckm.NewManager(dev2, rckm.MPS{UseLimit: true}, rckm.DefaultConfig())
	w.eng.AddTicker(sim.TickerFunc(func(now sim.Time) {
		mgr2.Issue(now)
		dev2.ExecuteTick()
	}))
	res2, _ := dev2.Attach("w1", spec.TrainMemMB)
	c2 := &rckm.Client{ID: "w1", Res: res2, Request: 0.15, Limit: 0.15} // throttled
	mgr2.Register(c2)
	slow := Stage{Res: res2, Client: c2}

	tr := NewTraining("t0", "bert-train", spec, []Stage{fast, slow})
	tr.SetActive(true)
	w.insts = append(w.insts, tr)
	w.eng.Run(20 * sim.Second)

	slowIter := spec.TrainIterTime(0.15)
	fastIter := spec.TrainIterTime(0.8)
	gotIter := tr.MeanIterTime() + spec.TrainSync
	if gotIter < slowIter-10*sim.Millisecond {
		t.Fatalf("iteration %v faster than slow worker %v — no barrier?", gotIter, slowIter)
	}
	if gotIter < fastIter {
		t.Fatalf("iteration %v must exceed fast worker's own %v", gotIter, fastIter)
	}
}

func TestTrainingSyncIdlesGPU(t *testing.T) {
	// GPT2-large: sync is 40% of the iteration; device occupancy over a
	// long window must sit well below 100% even at full grant.
	spec := model.ByName("GPT2-large")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "w0", false, spec.TrainMemMB, 1, 1)
	tr := NewTraining("t0", "gpt2-train", spec, []Stage{st})
	tr.SetActive(true)
	w.insts = append(w.insts, tr)
	w.eng.Run(30 * sim.Second)
	occ := w.dev.MeanOccupancy()
	if occ > 0.75 {
		t.Fatalf("occupancy %.2f too high — sync idle missing (want ~0.6)", occ)
	}
	if occ < 0.35 {
		t.Fatalf("occupancy %.2f too low", occ)
	}
}

func TestTrainingTargetItersJCT(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "w0", false, spec.TrainMemMB, 1, 1)
	tr := NewTraining("t0", "bert-train", spec, []Stage{st})
	tr.TargetIters = 20
	tr.SetActive(true)
	w.insts = append(w.insts, tr)
	w.eng.Run(30 * sim.Second)
	if !tr.Finished() {
		t.Fatal("job did not finish")
	}
	if tr.Iterations() != 20 {
		t.Fatalf("iterations = %d", tr.Iterations())
	}
	want := 20 * spec.TrainIterTime(1.0).Seconds()
	got := (tr.DoneAt - tr.StartedAt).Seconds()
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("JCT = %vs, want ~%vs", got, want)
	}
}

func TestCollocatedTrainingUsesInferenceIdleSMs(t *testing.T) {
	// Dilu policy: training collocated with a mostly-idle inference
	// function should achieve near its solo-at-limit throughput.
	specT := model.ByName("BERT-base")
	specI := model.ByName("RoBERTa-large")
	w := newWorld(rckm.Dilu{})
	wst := w.addStage(t, "w0", false, specT.TrainMemMB, 0.4, 0.9)
	ist := w.addStage(t, "i0", true, specI.InferMemMB, 0.3, 0.6)
	tr := NewTraining("t0", "bert-train", specT, []Stage{wst})
	tr.SetActive(true)
	inf := NewInference("i0", "rob-inf", specI, 4, []Stage{ist}, nil)
	inf.SetActive(true)
	w.insts = append(w.insts, tr, inf)
	// One lonely request every 2 seconds.
	for i := 0; i < 5; i++ {
		req := Request{ID: int64(i), Arrive: sim.Time(i) * 2 * sim.Second}
		w.eng.Schedule(req.Arrive, func(sim.Time) { inf.Enqueue(req) })
	}
	w.eng.Run(10 * sim.Second)
	thr := tr.Throughput(10 * sim.Second)
	solo := specT.TrainThroughput(0.9)
	if thr < 0.75*solo {
		t.Fatalf("collocated training throughput %v too far below solo %v", thr, solo)
	}
	if inf.Served() != 5 {
		t.Fatalf("inference served %d, want 5", inf.Served())
	}
}

func TestDropQueue(t *testing.T) {
	spec := model.ByName("BERT-base")
	w := newWorld(rckm.Exclusive{})
	st := w.addStage(t, "i0", true, spec.InferMemMB, 0.3, 0.6)
	inf := NewInference("i0", "bert", spec, 4, []Stage{st}, nil)
	inf.Enqueue(Request{ID: 1, Arrive: 0})
	inf.Enqueue(Request{ID: 2, Arrive: 0})
	dropped := inf.DropQueue()
	if len(dropped) != 2 || inf.QueueLen() != 0 {
		t.Fatalf("dropped %d, queue %d", len(dropped), inf.QueueLen())
	}
}

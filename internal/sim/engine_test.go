package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineEventOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*Millisecond, func(Time) { got = append(got, 3) })
	e.Schedule(1*Millisecond, func(Time) { got = append(got, 1) })
	e.Schedule(2*Millisecond, func(Time) { got = append(got, 2) })
	e.Run(10 * Millisecond)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(Millisecond, func(Time) { got = append(got, i) })
	}
	e.Run(2 * Millisecond)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestEngineTicksFireAtPeriod(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.AddTicker(TickerFunc(func(now Time) { times = append(times, now) }))
	e.Run(20 * Millisecond)
	if len(times) != 4 {
		t.Fatalf("got %d ticks, want 4 (at 5,10,15,20ms): %v", len(times), times)
	}
	for i, ts := range times {
		want := Time(i+1) * TickPeriod
		if ts != want {
			t.Fatalf("tick %d at %v, want %v", i, ts, want)
		}
	}
}

func TestEngineEventsBeforeTickBoundary(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(5*Millisecond, func(Time) { order = append(order, "event") })
	e.AddTicker(TickerFunc(func(now Time) {
		if now == 5*Millisecond {
			order = append(order, "tick")
		}
	}))
	e.Run(5 * Millisecond)
	if len(order) != 2 || order[0] != "event" || order[1] != "tick" {
		t.Fatalf("order = %v, want [event tick]", order)
	}
}

func TestEngineScheduleInPastRunsNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10*Millisecond, func(now Time) {
		e.Schedule(now-5*Millisecond, func(Time) { ran = true })
	})
	e.Run(11 * Millisecond)
	if !ran {
		t.Fatal("past-scheduled event did not run")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var reschedule func(Time)
	reschedule = func(Time) {
		count++
		if count < 100 {
			e.After(Millisecond, reschedule)
		}
	}
	e.After(Millisecond, reschedule)
	e.Run(Second)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestEngineCustomPeriod(t *testing.T) {
	e := NewEngineWithPeriod(Second)
	ticks := 0
	e.AddTicker(TickerFunc(func(Time) { ticks++ }))
	e.Run(10 * Second)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	now := e.Step()
	if now != TickPeriod {
		t.Fatalf("Step = %v, want %v", now, TickPeriod)
	}
	if e.Now() != TickPeriod {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatal("FromSeconds")
	}
	if FromMillis(2.5) != 2500*Microsecond {
		t.Fatal("FromMillis")
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Fatalf("Millis = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(42).Fork(1)
	b := NewRNG(42).Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("forked streams too correlated: %d/100 equal", same)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(4.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestRNGGammaMoments(t *testing.T) {
	g := NewRNG(11)
	for _, cv := range []float64{0.5, 1, 2, 4} {
		meanGap := 0.1
		var sum, sumSq float64
		n := 40000
		for i := 0; i < n; i++ {
			x := g.GammaInterArrival(meanGap, cv)
			sum += x
			sumSq += x * x
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		gotCV := math.Sqrt(variance) / mean
		if math.Abs(mean-meanGap)/meanGap > 0.05 {
			t.Fatalf("cv=%v: mean = %v, want ~%v", cv, mean, meanGap)
		}
		if math.Abs(gotCV-cv)/cv > 0.1 {
			t.Fatalf("cv=%v: measured CV = %v", cv, gotCV)
		}
	}
}

func TestRNGGammaDegenerate(t *testing.T) {
	g := NewRNG(1)
	if got := g.GammaInterArrival(0.5, 0.0005); got != 0.5 {
		t.Fatalf("CV→0 should be deterministic, got %v", got)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	g := NewRNG(3)
	for _, lambda := range []float64{0.5, 5, 200} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

// Property: Gamma samples are always non-negative and finite for valid params.
func TestRNGGammaNonNegativeProperty(t *testing.T) {
	g := NewRNG(99)
	f := func(shapeSeed, scaleSeed uint8) bool {
		shape := 0.05 + float64(shapeSeed)/16.0
		scale := 0.05 + float64(scaleSeed)/16.0
		x := g.Gamma(shape, scale)
		return x >= 0 && !math.IsNaN(x) && !math.IsInf(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: engine time is monotonically non-decreasing across arbitrary
// event schedules.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d)*Millisecond, func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run(70 * Second)
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterObservesRun(t *testing.T) {
	var m Meter
	e := NewEngine()
	e.SetMeter(&m)
	ticks := 0
	e.AddTicker(TickerFunc(func(Time) { ticks++ }))
	e.Run(1 * Second)
	if got := m.Virtual(); got != 1*Second {
		t.Fatalf("virtual = %v, want 1s", got)
	}
	if m.Ticks() != int64(ticks) || ticks == 0 {
		t.Fatalf("meter ticks %d, engine ticks %d", m.Ticks(), ticks)
	}
	if m.Engines() != 1 {
		t.Fatalf("engines = %d", m.Engines())
	}
	// Second engine on the same meter accumulates.
	e2 := NewEngine()
	e2.SetMeter(&m)
	e2.Run(500 * Millisecond)
	if got := m.Virtual(); got != 1500*Millisecond {
		t.Fatalf("accumulated virtual = %v, want 1.5s", got)
	}
	if m.Engines() != 2 {
		t.Fatalf("engines = %d", m.Engines())
	}
}

func TestUnmeteredEngineRuns(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(10*Millisecond, func(Time) { fired = true })
	e.Run(20 * Millisecond)
	if !fired {
		t.Fatal("event did not fire without a meter")
	}
}

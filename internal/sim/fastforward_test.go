package sim

import (
	"testing"
)

// TestIdleFastForwardTickPhase verifies that fast-forwarding across an
// idle stretch lands subsequent ticks on exactly the same 5 ms lattice
// as stepping every boundary would: a ticker activated by an off-lattice
// event sees its first tick at the next lattice point, not at the event
// time or a shifted phase.
func TestIdleFastForwardTickPhase(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	h := e.AddDynamicTicker(TickerFunc(func(now Time) { ticks = append(ticks, now) }))
	h.SetActive(false)
	// Off-lattice activation: 12.5 ms sits between the 10 and 15 ms
	// boundaries.
	e.Schedule(12*Millisecond+500*Microsecond, func(now Time) {
		if now != 12*Millisecond+500*Microsecond {
			t.Fatalf("event fired at %v", now)
		}
		h.SetActive(true)
	})
	e.Run(30 * Millisecond)
	want := []Time{15 * Millisecond, 20 * Millisecond, 25 * Millisecond, 30 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("now = %v, want 30ms", e.Now())
	}
}

// TestIdleFastForwardOnLatticeActivation checks the boundary case: an
// activation event scheduled exactly on a lattice point runs before the
// tick at that point, and the tick then fires — the same order stepping
// produces.
func TestIdleFastForwardOnLatticeActivation(t *testing.T) {
	e := NewEngine()
	var order []string
	h := e.AddDynamicTicker(TickerFunc(func(now Time) {
		order = append(order, "tick@"+now.String())
	}))
	h.SetActive(false)
	e.Schedule(20*Millisecond, func(Time) {
		order = append(order, "event")
		h.SetActive(true)
	})
	e.Run(25 * Millisecond)
	want := []string{"event", "tick@0.020s", "tick@0.025s"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestIdleFastForwardMatchesStepping runs the same event script on two
// engines — one whose ticker deactivates during idle stretches (enabling
// fast-forward), one always active whose Tick is a no-op while "idle" —
// and requires identical final state and identical tick times during
// busy phases.
func TestIdleFastForwardMatchesStepping(t *testing.T) {
	type world struct {
		eng   *Engine
		busy  bool
		ticks []Time
	}
	script := func(w *world, h *TickerHandle) {
		// Busy 0-20ms, idle until 112.5ms, busy again until 130ms.
		w.busy = true
		w.eng.Schedule(20*Millisecond, func(Time) {
			w.busy = false
			if h != nil {
				h.SetActive(false)
			}
		})
		w.eng.Schedule(112*Millisecond+500*Microsecond, func(Time) {
			w.busy = true
			if h != nil {
				h.SetActive(true)
			}
		})
	}
	tick := func(w *world) Ticker {
		return TickerFunc(func(now Time) {
			if w.busy {
				w.ticks = append(w.ticks, now)
			}
		})
	}

	ff := &world{eng: NewEngine()}
	hff := ff.eng.AddDynamicTicker(tick(ff))
	script(ff, hff)
	ff.eng.Run(130 * Millisecond)

	ref := &world{eng: NewEngine()}
	ref.eng.AddTicker(tick(ref))
	script(ref, nil)
	ref.eng.Run(130 * Millisecond)

	if ff.eng.Now() != ref.eng.Now() {
		t.Fatalf("now: ff=%v ref=%v", ff.eng.Now(), ref.eng.Now())
	}
	if len(ff.ticks) != len(ref.ticks) {
		t.Fatalf("tick counts differ: ff=%v ref=%v", ff.ticks, ref.ticks)
	}
	for i := range ref.ticks {
		if ff.ticks[i] != ref.ticks[i] {
			t.Fatalf("tick %d: ff=%v ref=%v", i, ff.ticks[i], ref.ticks[i])
		}
	}
}

// TestIdleFastForwardEmptyEngine checks that a tickerless engine jumps
// straight to the horizon (and an engine whose only ticker is inactive
// does the same) while events still fire at their times.
func TestIdleFastForwardEmptyEngine(t *testing.T) {
	e := NewEngine()
	h := e.AddDynamicTicker(TickerFunc(func(Time) { t.Fatal("inactive ticker fired") }))
	h.SetActive(false)
	fired := Time(-1)
	e.Schedule(3*Hour+7*Millisecond, func(now Time) { fired = now })
	e.Run(12 * Hour)
	if fired != 3*Hour+7*Millisecond {
		t.Fatalf("event fired at %v", fired)
	}
	if e.Now() != 12*Hour {
		t.Fatalf("now = %v, want 12h", e.Now())
	}
}

// TestStepWithInactiveTickers keeps Step's one-boundary contract under
// dynamic tickers.
func TestStepWithInactiveTickers(t *testing.T) {
	e := NewEngine()
	h := e.AddDynamicTicker(TickerFunc(func(Time) {}))
	h.SetActive(false)
	if got := e.Step(); got != TickPeriod {
		t.Fatalf("Step = %v, want %v", got, TickPeriod)
	}
	if got := e.Step(); got != 2*TickPeriod {
		t.Fatalf("Step = %v, want %v", got, 2*TickPeriod)
	}
}

// TestScheduleSeriesMatchesIndividualSchedules drives two engines with
// the same arrival trace — one via ScheduleSeries, one via a Schedule
// call per arrival — interleaved with competing same-time events, and
// requires the exact same execution order (series entries occupy the
// same sequence range, so ties resolve identically).
func TestScheduleSeriesMatchesIndividualSchedules(t *testing.T) {
	times := []Time{Millisecond, 5 * Millisecond, 5 * Millisecond, 12 * Millisecond}

	run := func(series bool) []string {
		e := NewEngine()
		var got []string
		e.Schedule(5*Millisecond, func(Time) { got = append(got, "pre") })
		if series {
			e.ScheduleSeries(0, times, func(now Time) { got = append(got, "arr@"+now.String()) })
		} else {
			for _, at := range times {
				e.Schedule(at, func(now Time) { got = append(got, "arr@"+now.String()) })
			}
		}
		e.Schedule(5*Millisecond, func(Time) { got = append(got, "post") })
		e.Run(20 * Millisecond)
		return got
	}

	a, b := run(true), run(false)
	if len(a) != len(b) {
		t.Fatalf("series=%v individual=%v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverged at %d: series=%v individual=%v", i, a, b)
		}
	}
}

// TestScheduleSeriesPending verifies Pending accounts for unconsumed
// series entries and that drained series are released.
func TestScheduleSeriesPending(t *testing.T) {
	e := NewEngine()
	e.ScheduleSeries(0, []Time{Millisecond, 2 * Millisecond, 8 * Millisecond}, func(Time) {})
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	e.Run(4 * Millisecond)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	e.Run(10 * Millisecond)
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
}

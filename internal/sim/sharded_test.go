package sim

import (
	"fmt"
	"testing"
)

// TestShardedMailboxOrder pins the mailbox's delivery order: mail from
// several shards with colliding timestamps and keys reaches the
// coordinator sorted by (at, key, src, seq), at the barrier time.
func TestShardedMailboxOrder(t *testing.T) {
	se := NewShardedEngine(3, 100*Millisecond, nil)
	var log []string
	send := func(s int) func(at Time, key uint64) {
		out := se.Outbox(s)
		return func(at Time, key uint64) {
			out.Send(Coordinator, at, key, func(now Time) {
				log = append(log, fmt.Sprintf("at=%d key=%d src=%d now=%s", at, key, s, now))
			})
		}
	}
	// Each shard queues its mail from an event inside the first window.
	se.Schedule(0, 10*Millisecond, func(Time) {
		send(0)(50*Millisecond, 2)
		send(0)(10*Millisecond, 9)
	})
	se.Schedule(1, 20*Millisecond, func(Time) {
		send(1)(10*Millisecond, 9) // ties shard 0's (10ms, 9): src breaks it
		send(1)(50*Millisecond, 1)
	})
	se.Schedule(2, 30*Millisecond, func(Time) {
		send(2)(50*Millisecond, 2) // ties shard 0's (50ms, 2): src breaks it
	})
	se.Run(100 * Millisecond)

	want := []string{
		"at=10000 key=9 src=0 now=0.100s",
		"at=10000 key=9 src=1 now=0.100s",
		"at=50000 key=1 src=1 now=0.100s",
		"at=50000 key=2 src=0 now=0.100s",
		"at=50000 key=2 src=2 now=0.100s",
	}
	if len(log) != len(want) {
		t.Fatalf("coordinator saw %d messages, want %d: %v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("mail %d = %q, want %q", i, log[i], want[i])
		}
	}
}

// TestShardedCrossShardDelivery pins shard-to-shard mail semantics:
// delivery at the next barrier, scheduled at max(at, barrier) on the
// destination shard.
func TestShardedCrossShardDelivery(t *testing.T) {
	se := NewShardedEngine(2, 100*Millisecond, nil)
	var fired []Time
	out := se.Outbox(0)
	se.Schedule(0, 30*Millisecond, func(Time) {
		// Timestamp already in the past by the 100 ms barrier: clamps.
		out.Send(1, 20*Millisecond, 0, func(now Time) { fired = append(fired, now) })
		// Future timestamp: fires on shard 1's own clock at 250 ms.
		out.Send(1, 250*Millisecond, 1, func(now Time) { fired = append(fired, now) })
	})
	se.Run(300 * Millisecond)
	if len(fired) != 2 || fired[0] != 100*Millisecond || fired[1] != 250*Millisecond {
		t.Fatalf("cross-shard deliveries fired at %v, want [100ms 250ms]", fired)
	}
}

// shardInvariantRun drives one fixed logical workload — 240 events with
// global indexes, each reporting to the coordinator keyed by its index —
// through a ShardedEngine with the given shard count and pool, and
// returns the coordinator's observation log. The event-to-shard map is
// index%shards, so different shard counts partition the same events
// differently; the log must come out identical regardless.
func shardInvariantRun(shards int, window Duration, pool *Pool) []string {
	se := NewShardedEngine(shards, window, pool)
	var log []string
	se.AtBarrier(func(now Time) {
		// Hook ordering vs mail: mail delivers first, then hooks; pin it
		// by recording barrier ticks interleaved with the mail log.
		log = append(log, fmt.Sprintf("barrier %s", now))
	})
	outs := make([]*Outbox, shards)
	for s := range outs {
		outs[s] = se.Outbox(s)
	}
	for idx := 0; idx < 240; idx++ {
		s := idx % shards
		at := Time(idx%60) * 16 * Millisecond // collisions across shards on purpose
		gidx := uint64(idx)
		se.Schedule(s, at, func(now Time) {
			outs[s].Send(Coordinator, now, gidx, func(bnow Time) {
				log = append(log, fmt.Sprintf("ev %d at %s delivered %s", gidx, now, bnow))
			})
		})
	}
	se.Run(Second)
	return log
}

// TestShardedShardCountInvariance is the tentpole guarantee in
// miniature: the coordinator-observable history of one workload is
// byte-identical at shards=1, 2, 4 and 8, serial or pooled.
func TestShardedShardCountInvariance(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ref := shardInvariantRun(1, 100*Millisecond, nil)
	if len(ref) == 0 {
		t.Fatal("reference run produced no log")
	}
	for _, shards := range []int{2, 4, 8} {
		for _, p := range []*Pool{nil, pool} {
			got := shardInvariantRun(shards, 100*Millisecond, p)
			if len(got) != len(ref) {
				t.Fatalf("shards=%d pooled=%v: log length %d, want %d", shards, p != nil, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("shards=%d pooled=%v: log[%d] = %q, want %q", shards, p != nil, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestShardedMeterAggregation pins the accounting contract that keeps
// manifests byte-identical across shard counts: the aggregate meter
// sees exactly one engine and global-clock virtual time, while shard
// ticks fold in as a sum.
func TestShardedMeterAggregation(t *testing.T) {
	const horizon = 2 * Second
	for _, shards := range []int{1, 3, 5} {
		se := NewShardedEngine(shards, 250*Millisecond, nil)
		for s := 0; s < shards; s++ {
			// Give every shard an active ticker so ticks actually fire.
			se.Shard(s).AddTicker(TickerFunc(func(Time) {}))
		}
		m := &Meter{}
		se.SetMeter(m)
		se.Run(horizon)
		if m.Engines() != 1 {
			t.Fatalf("shards=%d: aggregate engines = %d, want 1", shards, m.Engines())
		}
		if m.Virtual() != horizon {
			t.Fatalf("shards=%d: aggregate virtual = %s, want %s", shards, m.Virtual(), horizon)
		}
		var shardTicks, shardVirtual int64
		for s := 0; s < shards; s++ {
			shardTicks += se.ShardMeter(s).Ticks()
			shardVirtual += int64(se.ShardMeter(s).Virtual())
		}
		if m.Ticks() != shardTicks {
			t.Fatalf("shards=%d: aggregate ticks = %d, want sum of shard ticks %d", shards, m.Ticks(), shardTicks)
		}
		if shardVirtual != int64(horizon)*int64(shards) {
			t.Fatalf("shards=%d: shard virtual sum = %d, want %d", shards, shardVirtual, int64(horizon)*int64(shards))
		}
	}
}

// TestPoolForkJoin covers the fork-join pool: full index coverage into
// disjoint slots at several widths, nil-pool serial fallback, and panic
// propagation to the caller with the pool still usable afterwards.
func TestPoolForkJoin(t *testing.T) {
	var nilPool *Pool
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 17} {
			got := make([]int, n)
			p.ForkJoin(n, func(i int) { got[i] = i + 1 })
			nilGot := make([]int, n)
			nilPool.ForkJoin(n, func(i int) { nilGot[i] = i + 1 })
			for i := 0; i < n; i++ {
				if got[i] != i+1 || nilGot[i] != i+1 {
					t.Fatalf("workers=%d n=%d: slot %d = %d/%d, want %d", workers, n, i, got[i], nilGot[i], i+1)
				}
			}
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: task panic did not propagate", workers)
				}
			}()
			p.ForkJoin(4, func(i int) {
				if i == 2 {
					panic("boom")
				}
			})
		}()
		// Pool must stay usable after a propagated panic.
		ok := make([]bool, 8)
		p.ForkJoin(8, func(i int) { ok[i] = true })
		for i, v := range ok {
			if !v {
				t.Fatalf("workers=%d: slot %d not run after panic recovery", workers, i)
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

package sim

import "slices"

// DefaultWindow is the default conservative barrier window for a
// ShardedEngine: long enough that barrier overhead amortizes across the
// events inside a window, short enough that cross-shard mail (delivered
// at the next barrier) keeps sub-second latency in virtual time.
const DefaultWindow = 100 * Millisecond

// Coordinator is the destination index addressing the coordinator in
// Send: mail sent there executes serially at the next barrier, in
// mailbox order, rather than being scheduled into a shard queue.
const Coordinator = -1

// mail is one cross-shard message awaiting delivery at a barrier. The
// mailbox pops in (at, key, src, seq) order — the "(time, seq, shard)"
// order of the design, with key as the sender's logical sequence
// number and (src, seq) breaking remaining ties by sender identity and
// per-sender send order. The order is total ((src, seq) is unique), so
// delivery is reproducible at any shard count; senders that need tie
// order itself to be shard-count-invariant supply a key that does not
// depend on the sharding (e.g. a global event index).
type mail struct {
	at  Time
	key uint64
	src int
	seq uint64
	dst int
	fn  func(Time)
}

func (a mail) less(b mail) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key < b.key
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// ShardedEngine advances one simulation run as N shard Engines under a
// conservative time-window barrier (classic conservative PDES): every
// shard executes its own events and ticks freely inside the window
// [T, T+Δ), then all shards synchronize, cross-shard mail is exchanged
// through the deterministic mailbox, coordinator hooks run against the
// merged state, and the next window opens. Within a window the shards
// share no mutable state — each has its own heap, streams, tickers and
// meter — so the windows may run on all cores (via a Pool) or serially
// with bit-identical results.
//
// Determinism contract:
//
//   - Events registered through the ShardedEngine's Schedule /
//     ScheduleSeries draw from one global sequence counter, so the
//     merged pop order across shards — sort by (at, seq) — equals the
//     order a single serial Engine would pop the same registrations.
//   - Mail is delivered at barriers in (at, key, src, seq) order;
//     coordinator-bound mail executes immediately in that order,
//     shard-bound mail is scheduled into its destination with globally
//     ascending sequence numbers.
//   - Barrier hooks run after mail delivery, in registration order.
//
// What a shard may do inside a window: touch only its own state, and
// call its Outbox to queue cross-shard interactions. Everything that
// spans shards (scheduler placement against merged state, churn applied
// cluster-wide, admission) belongs to the coordinator at barriers.
type ShardedEngine struct {
	shards []*Engine
	meters []*Meter // one per shard; merged into the aggregate at barriers
	window Duration
	pool   *Pool

	now Time
	seq uint64 // global registration/delivery sequence across shards

	// outbox[src] buffers mail sent during the current window; the last
	// slot is the coordinator's. A shard appends only to its own buffer,
	// so no locking is needed while a window runs.
	outbox  [][]mail
	scratch []mail

	barriers []func(Time)

	meter       *Meter  // aggregate: global-clock virtual time, merged ticks
	mergedTicks []int64 // per-shard tick counts already folded into meter
}

// NewShardedEngine returns a sharded engine with the given shard count
// (>= 1), barrier window (<= 0 selects DefaultWindow), and fork-join
// pool (nil runs shards serially — same results, one core). Shard tick
// period is TickPeriod, matching NewEngine.
func NewShardedEngine(shards int, window Duration, pool *Pool) *ShardedEngine {
	if shards < 1 {
		panic("sim: shard count must be >= 1")
	}
	if window <= 0 {
		window = DefaultWindow
	}
	se := &ShardedEngine{
		shards:      make([]*Engine, shards),
		meters:      make([]*Meter, shards),
		window:      window,
		pool:        pool,
		outbox:      make([][]mail, shards+1),
		mergedTicks: make([]int64, shards),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
		se.meters[i] = &Meter{}
		se.shards[i].SetMeter(se.meters[i])
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Window returns the barrier window Δ.
func (se *ShardedEngine) Window() Duration { return se.window }

// Now returns the global virtual time — the last barrier reached.
func (se *ShardedEngine) Now() Time { return se.now }

// Shard exposes shard i's Engine for registering tickers and local
// events. Outside Run it may be used freely; while a window is running
// it must only be touched by that shard's own callbacks.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// ShardMeter returns shard i's private meter: its own virtual-time
// advance and tick counts, the per-shard attribution that Meter
// aggregation folds together at barriers.
func (se *ShardedEngine) ShardMeter(i int) *Meter { return se.meters[i] }

// SetMeter attaches the aggregate meter. Like a single Engine it counts
// as one engine and credits global-clock virtual time — both
// independent of the shard count, which keeps manifest accounting
// byte-identical at shards=1, 2, …, all-core. Shard tick counts are
// folded in atomically at each barrier.
func (se *ShardedEngine) SetMeter(m *Meter) {
	se.meter = m
	m.addEngine()
}

// Schedule registers fn on shard s at time at, drawing its sequence
// number from the global counter: registrations interleaved across
// shards keep the exact submission order a serial Engine would give
// them, so the merged (at, seq) pop order is shard-count-invariant.
func (se *ShardedEngine) Schedule(s int, at Time, fn func(Time)) {
	sh := se.shards[s]
	if sh.seq > se.seq {
		se.seq = sh.seq
	}
	se.seq++
	sh.seq = se.seq - 1
	sh.Schedule(at, fn)
}

// ScheduleSeries registers a pre-generated time series on shard s (see
// Engine.ScheduleSeries), reserving its sequence range from the global
// counter like Schedule does.
func (se *ShardedEngine) ScheduleSeries(s int, base Time, times []Time, fn func(Time)) {
	if len(times) == 0 {
		return
	}
	sh := se.shards[s]
	if sh.seq > se.seq {
		se.seq = sh.seq
	}
	sh.seq = se.seq
	sh.ScheduleSeries(base, times, fn)
	se.seq = sh.seq
}

// AtBarrier registers a coordinator hook invoked at every barrier (after
// mail delivery) with the barrier time, in registration order. Hooks run
// serially and may touch all shards: schedule events, send mail, read
// merged state.
func (se *ShardedEngine) AtBarrier(fn func(now Time)) {
	se.barriers = append(se.barriers, fn)
}

// Outbox returns shard s's sending handle. Shard callbacks must send
// through their own outbox — it is the only ShardedEngine surface safe
// to touch while a window runs concurrently.
func (se *ShardedEngine) Outbox(s int) *Outbox { return &Outbox{se: se, src: s} }

// CoordinatorOutbox returns the coordinator's sending handle, for use
// from barrier hooks and coordinator mail; its mail goes out at the
// following barrier.
func (se *ShardedEngine) CoordinatorOutbox() *Outbox {
	return &Outbox{se: se, src: len(se.shards)}
}

// Outbox queues cross-shard mail on behalf of one sender. Each sender
// owns its buffer, so concurrent shards never contend.
type Outbox struct {
	se  *ShardedEngine
	src int
}

// Send queues fn for shard dst (or Coordinator) with timestamp at and
// tie key key. Delivery happens at the next barrier: coordinator mail
// executes there in mailbox order; shard mail is scheduled at
// max(at, barrier). at and key order the mailbox — key should be a
// sharding-invariant logical sequence (a global event index) when tie
// order must not depend on the shard count.
func (o *Outbox) Send(dst int, at Time, key uint64, fn func(Time)) {
	box := &o.se.outbox[o.src]
	*box = append(*box, mail{
		at: at, key: key, src: o.src, seq: uint64(len(*box)), dst: dst, fn: fn,
	})
}

// Run advances global time to until, window by window: all shards run
// [T, T+Δ) — on the pool when one is attached — then the barrier
// delivers mail, fires coordinator hooks, and folds shard meters into
// the aggregate. Equivalent serial and parallel; equivalent at any
// window size for workloads whose cross-window interactions go through
// the mailbox/coordinator (the conservative-PDES contract).
func (se *ShardedEngine) Run(until Time) {
	start := se.now
	for se.now < until {
		end := se.now + se.window
		if end > until {
			end = until
		}
		se.pool.ForkJoin(len(se.shards), func(i int) {
			se.shards[i].Run(end)
		})
		se.now = end
		se.barrier()
	}
	se.meter.AddVirtual(se.now - start)
}

// barrier exchanges mail, runs coordinator hooks, and merges meters at
// the current global time.
func (se *ShardedEngine) barrier() {
	// Dynamic in-window scheduling advanced shard-local sequence
	// counters; fold them into the global counter before assigning
	// delivery sequences so global order stays ascending.
	for _, sh := range se.shards {
		if sh.seq > se.seq {
			se.seq = sh.seq
		}
	}

	// Deterministic mailbox: gather, order by (at, key, src, seq),
	// deliver. Coordinator mail executes here, serially; shard mail is
	// scheduled into its destination with globally ascending sequences.
	se.scratch = se.scratch[:0]
	for i := range se.outbox {
		se.scratch = append(se.scratch, se.outbox[i]...)
		se.outbox[i] = se.outbox[i][:0]
	}
	slices.SortFunc(se.scratch, func(a, b mail) int {
		if a.less(b) {
			return -1
		}
		if b.less(a) {
			return 1
		}
		return 0
	})
	for i := range se.scratch {
		m := &se.scratch[i]
		if m.dst == Coordinator {
			m.fn(se.now)
		} else {
			at := m.at
			if at < se.now {
				at = se.now
			}
			se.Schedule(m.dst, at, m.fn)
		}
		m.fn = nil // release the closure
	}

	for _, fn := range se.barriers {
		fn(se.now)
	}

	// Per-shard attribution folds into the aggregate by atomic,
	// commutative adds — the merge result is independent of the order
	// (or concurrency) in which shards report.
	for i, m := range se.meters {
		if t := m.Ticks(); t > se.mergedTicks[i] {
			se.meter.addTicks(t - se.mergedTicks[i])
			se.mergedTicks[i] = t
		}
	}
}

// Pending reports queued one-shot events across all shards.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	return n
}

// Package sim provides the deterministic discrete-event simulation kernel
// on which every Dilu experiment runs. Simulated time is measured in
// microseconds of virtual time; wall-clock time never enters results.
//
// The engine combines a classic event queue (one-shot callbacks at
// arbitrary times) with fixed-period tickers, which is the natural shape
// for Dilu: request arrivals and cold-start completions are events, while
// the RCKM token cycle and GPU execution advance on a fixed 5 ms tick.
//
// Two properties keep the hot path cheap at scale without changing
// results:
//
//   - The event queue is a value-based 4-ary min-heap: scheduling an
//     event appends into a reused backing array instead of boxing a
//     per-event allocation behind container/heap's interface{} API.
//     Pop order is totally determined by (time, sequence), so the heap's
//     internal arrangement never affects behaviour.
//   - Tickers registered through AddDynamicTicker carry an activity bit.
//     While every dynamic ticker is inactive (and no always-active ticker
//     exists), Run fast-forwards virtual time straight to the next event
//     instead of stepping through empty 5 ms boundaries. The tick phase
//     is preserved — the next fired tick lands on exactly the same
//     period lattice as if every empty tick had been stepped — so a
//     component that deactivates only when its Tick is a no-op observes
//     bit-identical results.
package sim

import (
	"fmt"
)

// Time is virtual simulation time in microseconds since the start of a run.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common durations, mirroring time.Duration style but in virtual µs.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// TickPeriod is the RCKM token issuing period from the paper (5 ms).
const TickPeriod = 5 * Millisecond

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to virtual time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

type event struct {
	at  Time
	seq uint64
	fn  func(Time)
}

// eventHeap is a value-based 4-ary min-heap ordered by (at, seq). The
// backing array doubles as its own free-list: popped slots are reused by
// later pushes, so a steady-state workload schedules events with zero
// per-event heap allocations. (at, seq) is a total order — seq is unique
// — so pop order is independent of sibling arrangement.
type eventHeap []event

func (h event) less(o event) bool {
	if h.at != o.at {
		return h.at < o.at
	}
	return h.seq < o.seq
}

// push appends e and sifts it up to its heap position.
func (h *eventHeap) push(e event) {
	a := *h
	i := len(a)
	a = append(a, e)
	for i > 0 {
		parent := (i - 1) / 4
		if !a[i].less(a[parent]) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
	*h = a
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n].fn = nil // release the closure to the GC; the slot itself is reused
	a = a[:n]
	*h = a
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if a[c].less(a[min]) {
				min = c
			}
		}
		if !a[min].less(a[i]) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// eventStream is a pre-generated, time-sorted series of callbacks to one
// shared function (a request-arrival trace). It is consumed by cursor:
// the engine merges stream heads with the heap top by (at, seq), so the
// series behaves exactly as if each entry had been Scheduled
// individually at registration — same seq range, same tie order — while
// costing one cursor instead of len(times) heap slots, and keeping the
// times array pointer-free (the GC never scans it).
type eventStream struct {
	base  Time
	times []Time
	seq0  uint64
	next  int
	fn    func(Time)
}

// head returns the stream's next event; valid only while next is in
// range.
func (s *eventStream) head() event {
	return event{at: s.base + s.times[s.next], seq: s.seq0 + uint64(s.next), fn: s.fn}
}

// Ticker is a component invoked on every fixed simulation tick, in
// registration order. Tick receives the current virtual time.
type Ticker interface {
	Tick(now Time)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(now Time)

// Tick calls f(now).
func (f TickerFunc) Tick(now Time) { f(now) }

// tickerEntry is one registered ticker with its activity bit.
type tickerEntry struct {
	t       Ticker
	active  bool
	dynamic bool
}

// TickerHandle controls the activity of a ticker registered with
// AddDynamicTicker. It is engine-owned and not safe for concurrent use.
type TickerHandle struct {
	e   *Engine
	idx int
}

// SetActive flips the ticker's activity. An inactive ticker is not
// invoked on ticks, and while no ticker on the engine is active, Run
// fast-forwards across empty tick boundaries (see package comment). The
// caller contracts that the ticker's Tick is a no-op whenever it is
// deactivated; under that contract results are bit-identical to an
// always-active registration.
func (h *TickerHandle) SetActive(active bool) {
	ent := &h.e.tickers[h.idx]
	if ent.active == active {
		return
	}
	ent.active = active
	if active {
		h.e.activeTickers++
	} else {
		h.e.activeTickers--
	}
}

// Active reports the ticker's current activity.
func (h *TickerHandle) Active() bool { return h.e.tickers[h.idx].active }

// Engine is a single-threaded deterministic simulator. It is not safe for
// concurrent use; experiments that need parallelism run independent engines.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	streams []eventStream
	tickers []tickerEntry
	// activeTickers counts tickers with active=true; when it is zero the
	// Run loop fast-forwards across tick boundaries.
	activeTickers int
	period        Duration
	// nextTick is the time of the next pending fixed tick.
	nextTick Time
	// meter, when non-nil, observes virtual time advanced by Run.
	meter *Meter
}

// NewEngine returns an engine whose fixed tick period is TickPeriod (5 ms).
func NewEngine() *Engine { return NewEngineWithPeriod(TickPeriod) }

// NewEngineWithPeriod returns an engine with a custom fixed tick period.
// Period must be positive.
func NewEngineWithPeriod(period Duration) *Engine {
	if period <= 0 {
		panic("sim: tick period must be positive")
	}
	return &Engine{period: period, nextTick: period}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetMeter attaches a Meter that observes this engine's progress. Passing
// nil detaches. Attaching counts the engine on the meter exactly once per
// call with a non-nil meter.
func (e *Engine) SetMeter(m *Meter) {
	e.meter = m
	m.addEngine()
}

// Period returns the fixed tick period.
func (e *Engine) Period() Duration { return e.period }

// AddTicker registers t to be invoked on every fixed tick. Tickers added
// this way are always active; use AddDynamicTicker for components that
// can deregister while idle.
func (e *Engine) AddTicker(t Ticker) {
	e.tickers = append(e.tickers, tickerEntry{t: t, active: true})
	e.activeTickers++
}

// AddDynamicTicker registers t like AddTicker but returns a handle whose
// SetActive lets the component deregister from the tick loop while it has
// no work and re-register when work arrives. The ticker starts active.
func (e *Engine) AddDynamicTicker(t Ticker) *TickerHandle {
	e.tickers = append(e.tickers, tickerEntry{t: t, active: true, dynamic: true})
	e.activeTickers++
	return &TickerHandle{e: e, idx: len(e.tickers) - 1}
}

// Schedule registers fn to run at virtual time at. Events scheduled in the
// past run at the current time, preserving submission order.
func (e *Engine) Schedule(at Time, fn func(Time)) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func(Time)) { e.Schedule(e.now+d, fn) }

// ScheduleSeries registers fn to run at base+times[i] for every entry of
// times, which must be non-decreasing with base+times[0] not in the
// past. It is equivalent to calling Schedule(base+t, fn) for each t — the
// events occupy the same sequence range, so ordering against other
// events (including exact-time ties) is identical — but holds the series
// as a cursor over the caller's slice instead of filling the heap. The
// engine takes ownership of times; the caller must not modify it.
func (e *Engine) ScheduleSeries(base Time, times []Time, fn func(Time)) {
	if len(times) == 0 {
		return
	}
	if base+times[0] < e.now {
		panic("sim: ScheduleSeries starts in the past")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			panic("sim: ScheduleSeries times must be non-decreasing")
		}
	}
	e.streams = append(e.streams, eventStream{
		base: base, times: times, seq0: e.seq + 1, fn: fn,
	})
	e.seq += uint64(len(times))
}

// Pending reports the number of queued one-shot events, including
// unconsumed series entries.
func (e *Engine) Pending() int {
	n := len(e.events)
	for i := range e.streams {
		n += len(e.streams[i].times) - e.streams[i].next
	}
	return n
}

// earliestAt returns the time of the earliest pending event across the
// heap and the streams.
func (e *Engine) earliestAt() (Time, bool) {
	var at Time
	have := false
	if len(e.events) > 0 {
		at, have = e.events[0].at, true
	}
	for i := range e.streams {
		s := &e.streams[i]
		if s.next < len(s.times) {
			if h := s.base + s.times[s.next]; !have || h < at {
				at, have = h, true
			}
		}
	}
	return at, have
}

// popDue removes and returns the earliest pending event if it is due at
// or before bound. Drained streams are dropped as they surface.
func (e *Engine) popDue(bound Time) (event, bool) {
	src := -1 // -1: heap
	var best event
	have := false
	if len(e.events) > 0 {
		best, have = e.events[0], true
	}
	for i := 0; i < len(e.streams); {
		s := &e.streams[i]
		if s.next >= len(s.times) {
			// Drained; release the series (order among sources is
			// irrelevant — (at, seq) decides everything).
			last := len(e.streams) - 1
			e.streams[i] = e.streams[last]
			e.streams[last] = eventStream{}
			e.streams = e.streams[:last]
			continue
		}
		if h := s.head(); !have || h.less(best) {
			best, src, have = h, i, true
		}
		i++
	}
	if !have || best.at > bound {
		return event{}, false
	}
	if src < 0 {
		e.events.pop()
	} else {
		e.streams[src].next++
	}
	return best, true
}

// Run advances virtual time until `until`, executing every due event and
// fixed tick in deterministic order: all events at or before a tick boundary
// run first, then the tick fires. While no ticker is active, boundaries
// with nothing to do are skipped wholesale (idle fast-forward): virtual
// time jumps to the next event — or the horizon — and the tick phase is
// realigned onto the same 5 ms lattice it would have reached by stepping.
func (e *Engine) Run(until Time) {
	start := e.now
	ticks := int64(0)
	for e.now < until {
		if e.activeTickers == 0 {
			// No ticker can observe the skipped boundaries. Jump the
			// tick lattice forward to the first boundary at or after the
			// next event (or the horizon), preserving phase.
			target := until
			if at, ok := e.earliestAt(); ok && at < target {
				target = at
			}
			if target > e.nextTick {
				k := (target - e.nextTick + e.period - 1) / e.period
				e.nextTick += k * e.period
			}
		}
		boundary := e.nextTick
		if boundary > until {
			boundary = until
		}
		// Drain events due at or before the boundary.
		for {
			ev, ok := e.popDue(boundary)
			if !ok {
				break
			}
			e.now = ev.at
			ev.fn(e.now)
		}
		e.now = boundary
		if boundary == e.nextTick {
			for i := range e.tickers {
				if e.tickers[i].active {
					e.tickers[i].t.Tick(e.now)
				}
			}
			e.nextTick += e.period
			ticks++
		}
	}
	e.meter.AddVirtual(e.now - start)
	e.meter.addTicks(ticks)
}

// Step advances exactly one fixed tick (running due events first) and
// returns the new time. Useful in unit tests.
func (e *Engine) Step() Time {
	e.Run(e.nextTick)
	return e.now
}

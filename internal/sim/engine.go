// Package sim provides the deterministic discrete-event simulation kernel
// on which every Dilu experiment runs. Simulated time is measured in
// microseconds of virtual time; wall-clock time never enters results.
//
// The engine combines a classic event queue (one-shot callbacks at
// arbitrary times) with fixed-period tickers, which is the natural shape
// for Dilu: request arrivals and cold-start completions are events, while
// the RCKM token cycle and GPU execution advance on a fixed 5 ms tick.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in microseconds since the start of a run.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration = Time

// Common durations, mirroring time.Duration style but in virtual µs.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// TickPeriod is the RCKM token issuing period from the paper (5 ms).
const TickPeriod = 5 * Millisecond

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMillis converts floating-point milliseconds to virtual time.
func FromMillis(ms float64) Time { return Time(ms * float64(Millisecond)) }

func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

type event struct {
	at  Time
	seq uint64
	fn  func(Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Ticker is a component invoked on every fixed simulation tick, in
// registration order. Tick receives the current virtual time.
type Ticker interface {
	Tick(now Time)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(now Time)

// Tick calls f(now).
func (f TickerFunc) Tick(now Time) { f(now) }

// Engine is a single-threaded deterministic simulator. It is not safe for
// concurrent use; experiments that need parallelism run independent engines.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	tickers []Ticker
	period  Duration
	// nextTick is the time of the next pending fixed tick.
	nextTick Time
	// meter, when non-nil, observes virtual time advanced by Run.
	meter *Meter
}

// NewEngine returns an engine whose fixed tick period is TickPeriod (5 ms).
func NewEngine() *Engine { return NewEngineWithPeriod(TickPeriod) }

// NewEngineWithPeriod returns an engine with a custom fixed tick period.
// Period must be positive.
func NewEngineWithPeriod(period Duration) *Engine {
	if period <= 0 {
		panic("sim: tick period must be positive")
	}
	return &Engine{period: period, nextTick: period}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetMeter attaches a Meter that observes this engine's progress. Passing
// nil detaches. Attaching counts the engine on the meter exactly once per
// call with a non-nil meter.
func (e *Engine) SetMeter(m *Meter) {
	e.meter = m
	m.addEngine()
}

// Period returns the fixed tick period.
func (e *Engine) Period() Duration { return e.period }

// AddTicker registers t to be invoked on every fixed tick.
func (e *Engine) AddTicker(t Ticker) { e.tickers = append(e.tickers, t) }

// Schedule registers fn to run at virtual time at. Events scheduled in the
// past run at the current time, preserving submission order.
func (e *Engine) Schedule(at Time, fn func(Time)) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func(Time)) { e.Schedule(e.now+d, fn) }

// Pending reports the number of queued one-shot events.
func (e *Engine) Pending() int { return len(e.events) }

// Run advances virtual time until `until`, executing every due event and
// fixed tick in deterministic order: all events at or before a tick boundary
// run first, then the tick fires.
func (e *Engine) Run(until Time) {
	start := e.now
	ticks := int64(0)
	for e.now < until {
		boundary := e.nextTick
		if boundary > until {
			boundary = until
		}
		// Drain events due at or before the boundary.
		for len(e.events) > 0 && e.events[0].at <= boundary {
			ev := heap.Pop(&e.events).(*event)
			e.now = ev.at
			ev.fn(e.now)
		}
		e.now = boundary
		if boundary == e.nextTick {
			for _, t := range e.tickers {
				t.Tick(e.now)
			}
			e.nextTick += e.period
			ticks++
		}
	}
	e.meter.AddVirtual(e.now - start)
	e.meter.addTicks(ticks)
}

// Step advances exactly one fixed tick (running due events first) and
// returns the new time. Useful in unit tests.
func (e *Engine) Step() Time {
	e.Run(e.nextTick)
	return e.now
}

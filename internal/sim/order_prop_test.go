package sim

import (
	"math/rand"
	"slices"
	"testing"
)

// The event queue's contract: pops are totally ordered by (time, seq),
// where seq is assigned in submission order — one per Schedule call, a
// contiguous range per ScheduleSeries — regardless of how entries are
// physically held (4-ary heap slots vs series cursors). These property
// tests pit random interleavings of Schedule/ScheduleSeries against a
// reference implementation that holds every event in a flat slice and
// sorts by (time, seq).

// refEvent mirrors one scheduled entry in the reference order.
type refEvent struct {
	at  Time
	seq uint64
	id  int
}

// refOrder computes the expected firing order: stable is unnecessary
// because (at, seq) is a total order, but slices.SortStableFunc keeps
// the comparison honest if a duplicate seq ever appeared.
func refOrder(evs []refEvent, horizon Time) []refEvent {
	var due []refEvent
	for _, e := range evs {
		if e.at <= horizon {
			due = append(due, e)
		}
	}
	slices.SortStableFunc(due, func(a, b refEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	return due
}

// fired is one observed callback invocation.
type fired struct {
	id int
	at Time
}

// buildRandomSchedule drives eng with a random interleaving of Schedule
// and ScheduleSeries calls and returns the reference event list. Times
// are drawn from a coarse lattice so exact-time ties between heap events
// and series entries are common, not exceptional.
func buildRandomSchedule(rng *rand.Rand, eng *Engine, horizon Time, record func(id int) func(Time)) []refEvent {
	var evs []refEvent
	seq := uint64(0) // mirrors the engine's internal counter
	id := 0
	ops := 1 + rng.Intn(20)
	for op := 0; op < ops; op++ {
		if rng.Intn(2) == 0 {
			// One-shot event; occasionally past the horizon (must not fire).
			at := Time(rng.Int63n(int64(horizon)/100*125)) / 100 * 100
			seq++
			evs = append(evs, refEvent{at: at, seq: seq, id: id})
			eng.Schedule(at, record(id))
			id++
		} else {
			// Series: sorted coarse times, possibly with internal
			// duplicates, sharing one callback like a real arrival trace.
			n := 1 + rng.Intn(30)
			times := make([]Time, n)
			for i := range times {
				times[i] = Time(rng.Int63n(int64(horizon))) / 100 * 100
			}
			slices.Sort(times)
			ids := make([]int, n)
			for i := range ids {
				seq++
				evs = append(evs, refEvent{at: times[i], seq: seq, id: id})
				ids[i] = id
				id++
			}
			// The shared callback resolves which series entry fired by
			// consumption order — exactly how the engine advances the
			// cursor.
			next := 0
			eng.ScheduleSeries(0, times, func(now Time) {
				record(ids[next])(now)
				next++
			})
		}
	}
	return evs
}

// TestEventOrderRandomInterleavings is the core property: any mix of
// Schedule and ScheduleSeries pops in exactly the (time, seq) order the
// reference slice-sort predicts, and every callback observes its own
// scheduled time.
func TestEventOrderRandomInterleavings(t *testing.T) {
	const horizon = 10 * Second
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		eng := NewEngine()
		var got []fired
		record := func(id int) func(Time) {
			return func(now Time) { got = append(got, fired{id: id, at: now}) }
		}
		evs := buildRandomSchedule(rng, eng, horizon, record)
		eng.Run(horizon)

		want := refOrder(evs, horizon)
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].id != want[i].id || got[i].at != want[i].at {
				t.Fatalf("trial %d: pop %d = (id %d, %s), want (id %d, %s)",
					trial, i, got[i].id, got[i].at, want[i].id, want[i].at)
			}
		}
		if eng.Pending() != len(evs)-len(want) {
			t.Fatalf("trial %d: %d pending after run, want %d (past-horizon events)",
				trial, eng.Pending(), len(evs)-len(want))
		}
	}
}

// TestEventOrderWithDynamicScheduling extends the property to callbacks
// that schedule follow-up events mid-run (the cold-start / keep-alive
// pattern): children must interleave with pending series entries in
// (time, seq) order too. The reference engine is a flat slice popped by
// linear min-scan, mirroring the engine's clamping of past times.
func TestEventOrderWithDynamicScheduling(t *testing.T) {
	const horizon = 10 * Second
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 5000))

		// Script the spawns up front so the real and reference runs make
		// identical decisions: spawns[id] = delay of the child event, -1
		// for none.
		spawns := map[int]Time{}

		eng := NewEngine()
		var got []fired
		nextChild := 100000 // child ids start far above scheduled ids
		var schedule func(id int) func(Time)
		schedule = func(id int) func(Time) {
			return func(now Time) {
				got = append(got, fired{id: id, at: now})
				if d, ok := spawns[id]; ok {
					child := nextChild
					nextChild++
					eng.Schedule(now+d, schedule(child))
				}
			}
		}
		evs := buildRandomSchedule(rng, eng, horizon, schedule)
		for _, e := range evs {
			if rng.Intn(4) == 0 {
				spawns[e.id] = Time(rng.Int63n(int64(2 * Second)))
			}
		}

		// Reference: pop min (at, seq), fire, apply the same spawn table.
		refSeq := uint64(len(evs))
		pending := append([]refEvent(nil), evs...)
		refChild := 100000
		var want []fired
		for {
			best := -1
			for i, e := range pending {
				if best < 0 || e.at < pending[best].at ||
					(e.at == pending[best].at && e.seq < pending[best].seq) {
					best = i
				}
			}
			if best < 0 || pending[best].at > horizon {
				break
			}
			e := pending[best]
			pending = append(pending[:best], pending[best+1:]...)
			want = append(want, fired{id: e.id, at: e.at})
			if d, ok := spawns[e.id]; ok {
				refSeq++
				pending = append(pending, refEvent{at: e.at + d, seq: refSeq, id: refChild})
				refChild++
			}
		}

		eng.Run(horizon)
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// buildRandomShardedSchedule mirrors buildRandomSchedule, routing the
// same kind of random Schedule/ScheduleSeries interleaving through a
// ShardedEngine with a random shard per op. It returns the reference
// event list (seq mirrors the global counter) and each id's shard.
func buildRandomShardedSchedule(rng *rand.Rand, se *ShardedEngine, horizon Time, record func(shard, id int) func(Time)) ([]refEvent, map[int]int) {
	shardOf := map[int]int{}
	var evs []refEvent
	seq := uint64(0)
	id := 0
	ops := 1 + rng.Intn(20)
	for op := 0; op < ops; op++ {
		s := rng.Intn(se.Shards())
		if rng.Intn(2) == 0 {
			at := Time(rng.Int63n(int64(horizon)/100*125)) / 100 * 100
			seq++
			evs = append(evs, refEvent{at: at, seq: seq, id: id})
			shardOf[id] = s
			se.Schedule(s, at, record(s, id))
			id++
		} else {
			n := 1 + rng.Intn(30)
			times := make([]Time, n)
			for i := range times {
				times[i] = Time(rng.Int63n(int64(horizon))) / 100 * 100
			}
			slices.Sort(times)
			ids := make([]int, n)
			for i := range ids {
				seq++
				evs = append(evs, refEvent{at: times[i], seq: seq, id: id})
				shardOf[id] = s
				ids[i] = id
				id++
			}
			next := 0
			se.ScheduleSeries(s, 0, times, func(now Time) {
				record(s, ids[next])(now)
				next++
			})
		}
	}
	return evs, shardOf
}

// mergeShardFired k-way-merges per-shard pop streams by the reference
// (at, seq) of each fired id — the merge a barrier coordinator would
// perform — so the global order the shards jointly produced can be
// compared against the serial reference sort.
func mergeShardFired(got [][]fired, byID map[int]refEvent) []fired {
	heads := make([]int, len(got))
	var merged []fired
	for {
		best := -1
		for s := range got {
			if heads[s] >= len(got[s]) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			e, b := byID[got[s][heads[s]].id], byID[got[best][heads[best]].id]
			if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
				best = s
			}
		}
		if best < 0 {
			return merged
		}
		merged = append(merged, got[best][heads[best]])
		heads[best]++
	}
}

// TestShardedEventOrderRandomInterleavings is the partitioner/barrier
// property: random interleavings partitioned across random shard counts
// (random windows, serial and pooled) pop, per shard, in exactly the
// reference (time, seq) order restricted to that shard — and the merged
// global stream equals the serial reference heap's order over all
// events. Global sequence assignment at registration is what makes the
// second half hold at any shard count.
func TestShardedEventOrderRandomInterleavings(t *testing.T) {
	const horizon = 10 * Second
	pool := NewPool(4)
	defer pool.Close()
	windows := []Duration{10 * Millisecond, 100 * Millisecond, Second, horizon}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 9000))
		shards := 1 + rng.Intn(8)
		window := windows[rng.Intn(len(windows))]
		var p *Pool
		if rng.Intn(2) == 0 {
			p = pool
		}
		se := NewShardedEngine(shards, window, p)
		got := make([][]fired, shards)
		record := func(shard, id int) func(Time) {
			return func(now Time) { got[shard] = append(got[shard], fired{id: id, at: now}) }
		}
		evs, shardOf := buildRandomShardedSchedule(rng, se, horizon, record)
		se.Run(horizon)

		byID := map[int]refEvent{}
		for _, e := range evs {
			byID[e.id] = e
		}
		fired := 0
		for s := 0; s < shards; s++ {
			var sub []refEvent
			for _, e := range evs {
				if shardOf[e.id] == s {
					sub = append(sub, e)
				}
			}
			want := refOrder(sub, horizon)
			if len(got[s]) != len(want) {
				t.Fatalf("trial %d (shards=%d): shard %d fired %d events, want %d",
					trial, shards, s, len(got[s]), len(want))
			}
			for i := range want {
				if got[s][i].id != want[i].id || got[s][i].at != want[i].at {
					t.Fatalf("trial %d (shards=%d): shard %d pop %d = %+v, want (id %d, %s)",
						trial, shards, s, i, got[s][i], want[i].id, want[i].at)
				}
			}
			fired += len(want)
		}

		merged := mergeShardFired(got, byID)
		want := refOrder(evs, horizon)
		if len(merged) != len(want) {
			t.Fatalf("trial %d (shards=%d): merged %d events, want %d", trial, shards, len(merged), len(want))
		}
		for i := range want {
			if merged[i].id != want[i].id || merged[i].at != want[i].at {
				t.Fatalf("trial %d (shards=%d): merged pop %d = %+v, want (id %d, %s)",
					trial, shards, i, merged[i], want[i].id, want[i].at)
			}
		}
		if se.Pending() != len(evs)-fired {
			t.Fatalf("trial %d: %d pending after run, want %d", trial, se.Pending(), len(evs)-fired)
		}
	}
}

// FuzzEventOrder lets the fuzzer search for interleavings where the
// engine's pop order diverges from the reference sort. Bytes decode to a
// deterministic op script: each op is either one Schedule or one short
// ScheduleSeries.
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x82, 0x10, 0x03, 0x55})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x10, 0x20})
	f.Add([]byte{0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		const horizon = Second
		eng := NewEngine()
		var got []fired
		record := func(id int) func(Time) {
			return func(now Time) { got = append(got, fired{id: id, at: now}) }
		}
		var evs []refEvent
		seq := uint64(0)
		id := 0
		for i := 0; i < len(data); {
			b := data[i]
			i++
			if b%2 == 0 {
				at := Time(b) * 7 * Millisecond
				seq++
				evs = append(evs, refEvent{at: at, seq: seq, id: id})
				eng.Schedule(at, record(id))
				id++
				continue
			}
			n := int(b%5) + 1
			var times []Time
			for j := 0; j < n && i < len(data); j++ {
				times = append(times, Time(data[i])*5*Millisecond)
				i++
			}
			if len(times) == 0 {
				continue
			}
			slices.Sort(times)
			ids := make([]int, len(times))
			for j := range times {
				seq++
				evs = append(evs, refEvent{at: times[j], seq: seq, id: id})
				ids[j] = id
				id++
			}
			next := 0
			eng.ScheduleSeries(0, times, func(now Time) {
				record(ids[next])(now)
				next++
			})
		}
		eng.Run(horizon)
		want := refOrder(evs, horizon)
		if len(got) != len(want) {
			t.Fatalf("fired %d events, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].id != want[i].id || got[i].at != want[i].at {
				t.Fatalf("pop %d = %+v, want (id %d, %s)", i, got[i], want[i].id, want[i].at)
			}
		}
	})
}

// FuzzShardedEventOrder is the differential form of FuzzEventOrder: the
// same decoded op script drives a serial Engine and a ShardedEngine
// (shard count, window and shard assignment all fuzzer-chosen), and the
// sharded run's merged pop stream must match the serial run exactly.
func FuzzShardedEventOrder(f *testing.F) {
	f.Add([]byte{0x03, 0x01, 0x40, 0x82, 0x10, 0x03, 0x55})
	f.Add([]byte{0x0c, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x10, 0x20})
	f.Add([]byte{0x11, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		const horizon = Second
		shards := 1 + int(data[0]%6)
		window := []Duration{TickPeriod, 50 * Millisecond, Second}[int(data[0]/7)%3]
		data = data[1:]

		eng := NewEngine()
		se := NewShardedEngine(shards, window, nil)
		var serial []fired
		shardGot := make([][]fired, shards)
		var evs []refEvent
		seq := uint64(0)
		id := 0
		op := 0
		for i := 0; i < len(data); {
			b := data[i]
			i++
			s := op % shards // deterministic round-robin partition
			op++
			if b%2 == 0 {
				at := Time(b) * 7 * Millisecond
				seq++
				evs = append(evs, refEvent{at: at, seq: seq, id: id})
				evID := id
				eng.Schedule(at, func(now Time) { serial = append(serial, fired{id: evID, at: now}) })
				se.Schedule(s, at, func(now Time) { shardGot[s] = append(shardGot[s], fired{id: evID, at: now}) })
				id++
				continue
			}
			n := int(b%5) + 1
			var times []Time
			for j := 0; j < n && i < len(data); j++ {
				times = append(times, Time(data[i])*5*Millisecond)
				i++
			}
			if len(times) == 0 {
				continue
			}
			slices.Sort(times)
			ids := make([]int, len(times))
			for j := range times {
				seq++
				evs = append(evs, refEvent{at: times[j], seq: seq, id: id})
				ids[j] = id
				id++
			}
			nextA, nextB := 0, 0
			eng.ScheduleSeries(0, slices.Clone(times), func(now Time) {
				serial = append(serial, fired{id: ids[nextA], at: now})
				nextA++
			})
			se.ScheduleSeries(s, 0, times, func(now Time) {
				shardGot[s] = append(shardGot[s], fired{id: ids[nextB], at: now})
				nextB++
			})
		}
		eng.Run(horizon)
		se.Run(horizon)

		byID := map[int]refEvent{}
		for _, e := range evs {
			byID[e.id] = e
		}
		merged := mergeShardFired(shardGot, byID)
		if len(merged) != len(serial) {
			t.Fatalf("sharded fired %d events, serial fired %d", len(merged), len(serial))
		}
		for i := range serial {
			if merged[i] != serial[i] {
				t.Fatalf("pop %d: sharded %+v, serial %+v", i, merged[i], serial[i])
			}
		}
	})
}

package sim

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMeterMergeOrderIndependent is the regression for shard-report
// aggregation: folding the same set of shard meters into an aggregate
// must give identical totals for every permutation of merge order — and
// when every shard reports concurrently. Before Merge existed, callers
// hand-copied counters non-atomically; this pins the commutative-add
// contract the sharded engine's barriers rely on.
func TestMeterMergeOrderIndependent(t *testing.T) {
	const shards = 7
	mk := func() []*Meter {
		ms := make([]*Meter, shards)
		for i := range ms {
			ms[i] = &Meter{}
			ms[i].AddVirtual(Duration(i+1) * Second)
			ms[i].AddEngines(int64(i % 3))
			ms[i].addTicks(int64(100 * (i + 1)))
		}
		return ms
	}
	total := func(agg *Meter) [3]int64 {
		return [3]int64{int64(agg.Virtual()), agg.Engines(), agg.Ticks()}
	}

	base := &Meter{}
	for _, m := range mk() {
		base.Merge(m)
	}
	want := total(base)

	// Every-permutation-by-sampling: shuffled merge orders.
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ms := mk()
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
		agg := &Meter{}
		for _, m := range ms {
			agg.Merge(m)
		}
		if total(agg) != want {
			t.Fatalf("trial %d: shuffled merge totals %v, want %v", trial, total(agg), want)
		}
	}

	// Concurrent reports (run under -race via test-race-subsys).
	for trial := 0; trial < 20; trial++ {
		agg := &Meter{}
		ms := mk()
		var wg sync.WaitGroup
		for _, m := range ms {
			wg.Add(1)
			go func(m *Meter) {
				defer wg.Done()
				agg.Merge(m)
			}(m)
		}
		wg.Wait()
		if total(agg) != want {
			t.Fatalf("trial %d: concurrent merge totals %v, want %v", trial, total(agg), want)
		}
	}

	// Nil safety both ways.
	var nilMeter *Meter
	nilMeter.Merge(mk()[0])
	base.Merge(nil)
	if total(base) != want {
		t.Fatalf("nil merge changed totals: %v, want %v", total(base), want)
	}
}

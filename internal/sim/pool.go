package sim

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of reusable worker goroutines for fork-join
// fan-out: ForkJoin(n, fn) runs fn(0..n-1) across the workers and
// returns when every call has finished. The sharded engine uses one to
// advance shard event queues concurrently within a barrier window, and
// the sharded schedulers use one to fan candidate scans out over
// cluster shards — both at a call rate (one fork-join per window or per
// placement decision) where spawning fresh goroutines would dominate
// the work being parallelized.
//
// A Pool never influences what the parallelized code computes — callers
// contract that tasks touch disjoint state and that results are reduced
// deterministically — so a 1-worker pool (or a nil *Pool) degenerates
// to a plain serial loop with zero goroutine overhead and identical
// results.
type Pool struct {
	workers int
	work    chan poolTask
	closed  sync.Once
}

type poolTask struct {
	fn   func(int)
	i    int
	done *poolJoin
}

// poolJoin collects one ForkJoin's completions and the first panic.
type poolJoin struct {
	wg    sync.WaitGroup
	mu    sync.Mutex
	panic any
}

func (j *poolJoin) run(fn func(int), i int) {
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			if j.panic == nil {
				j.panic = r
			}
			j.mu.Unlock()
		}
		j.wg.Done()
	}()
	fn(i)
}

// NewPool starts a pool of the given worker count; values <= 0 default
// to GOMAXPROCS. Call Close when done with the pool to release the
// worker goroutines.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// The caller participates in every ForkJoin, so one fewer
		// background worker saturates the requested width.
		p.work = make(chan poolTask)
		for w := 0; w < workers-1; w++ {
			go func() {
				for t := range p.work {
					t.done.run(t.fn, t.i)
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForkJoin runs fn(0), …, fn(n-1) across the pool and returns when all
// calls have completed. The calling goroutine executes tasks too, so a
// ForkJoin never deadlocks waiting for a free worker. Task panics are
// re-raised on the caller after every task has finished (first panic
// wins), so a failed scan cannot leave workers running against a
// half-unwound caller. On a nil or 1-worker pool the calls run inline,
// in index order.
func (p *Pool) ForkJoin(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &poolJoin{}
	j.wg.Add(n)
	for i := 0; i < n-1; i++ {
		p.work <- poolTask{fn: fn, i: i, done: j}
	}
	j.run(fn, n-1) // the caller takes the last task itself
	j.wg.Wait()
	if j.panic != nil {
		panic(j.panic)
	}
}

// Close releases the pool's worker goroutines. Idempotent; ForkJoin
// must not be called after Close.
func (p *Pool) Close() {
	if p == nil || p.work == nil {
		return
	}
	p.closed.Do(func() { close(p.work) })
}

package sim

import "sync/atomic"

// Meter accumulates virtual-time accounting across one or more engines.
// The experiment harness attaches one Meter per run so that concurrent
// runs each see only their own engines; all counters are atomic, so a
// single Meter may also be shared by engines running on different
// goroutines.
//
// A Meter never influences simulation behaviour — it only observes — so
// metered and unmetered runs of the same scenario produce identical
// results.
type Meter struct {
	virtual atomic.Int64 // virtual µs advanced by Engine.Run
	engines atomic.Int64 // engines attached via SetMeter
	ticks   atomic.Int64 // fixed ticks fired
}

// Virtual returns the total virtual time advanced by all attached engines.
func (m *Meter) Virtual() Duration { return Duration(m.virtual.Load()) }

// VirtualSeconds returns Virtual() in floating-point seconds.
func (m *Meter) VirtualSeconds() float64 { return Time(m.virtual.Load()).Seconds() }

// Engines returns how many engines have been attached to this meter.
func (m *Meter) Engines() int64 { return m.engines.Load() }

// Ticks returns the total number of fixed ticks fired across attached
// engines, a proxy for simulation work done.
func (m *Meter) Ticks() int64 { return m.ticks.Load() }

// AddVirtual credits d of virtual time to the meter. Engines call this
// from Run; event-replay drivers that advance virtual time without an
// engine (e.g. the large-scale placement simulation) may call it
// directly. Safe on a nil meter.
func (m *Meter) AddVirtual(d Duration) {
	if m != nil && d > 0 {
		m.virtual.Add(int64(d))
	}
}

func (m *Meter) addEngine() {
	if m != nil {
		m.engines.Add(1)
	}
}

// AddEngines credits n engines to the meter. Drivers that replay cached
// results credit the cached accounting through this so attribution stays
// deterministic regardless of which caller computed. Safe on a nil meter.
func (m *Meter) AddEngines(n int64) {
	if m != nil && n > 0 {
		m.engines.Add(n)
	}
}

func (m *Meter) addTicks(n int64) {
	if m != nil && n > 0 {
		m.ticks.Add(n)
	}
}

// Merge atomically folds src's counters into m. The merge is a set of
// commutative, associative adds, so shards reporting concurrently — or
// in any permutation of orders — produce identical totals; this is what
// keeps aggregated attribution deterministic at any shard count. Safe
// on a nil receiver or source; src is read atomically and unmodified.
func (m *Meter) Merge(src *Meter) {
	if m == nil || src == nil {
		return
	}
	if v := src.virtual.Load(); v != 0 {
		m.virtual.Add(v)
	}
	if v := src.engines.Load(); v != 0 {
		m.engines.Add(v)
	}
	if v := src.ticks.Load(); v != 0 {
		m.ticks.Add(v)
	}
}

package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream used by workload generators and
// experiment drivers. It wraps math/rand with distribution helpers the
// paper's workloads need (Poisson and Gamma inter-arrival processes).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded deterministically.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Fork derives an independent, deterministic sub-stream. Streams forked
// with distinct tags never correlate with the parent.
func (g *RNG) Fork(tag int64) *RNG {
	return NewRNG(g.r.Int63() ^ (tag * 0x5E3779B97F4A7C15))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a deterministic permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exp returns an exponential sample with the given rate (mean 1/rate).
func (g *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return g.r.ExpFloat64() / rate
}

// Gamma samples a Gamma(shape, scale) variate using Marsaglia-Tsang for
// shape >= 1 and the boost transform for shape < 1. The Gamma arrival
// process parameterized by coefficient of variation (CV) drives Figure 10:
// shape = 1/CV², scale = mean·CV².
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := g.r.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaInterArrival samples an inter-arrival gap for a Gamma process with
// the given mean gap and coefficient of variation. CV→0 degenerates to a
// deterministic process; CV=1 is Poisson.
func (g *RNG) GammaInterArrival(meanGap, cv float64) float64 {
	if meanGap <= 0 {
		return 0
	}
	if cv <= 0.001 {
		return meanGap
	}
	shape := 1.0 / (cv * cv)
	scale := meanGap * cv * cv
	return g.Gamma(shape, scale)
}

// Pareto samples a Pareto(alpha, xm) variate by inverse transform:
// xm / U^(1/alpha). Heavy-tailed inter-arrival gaps with tail exponent
// alpha drive the bursty production workloads (most gaps tiny, rare gaps
// enormous).
func (g *RNG) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		return 0
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson samples a Poisson(lambda) count (Knuth for small lambda, normal
// approximation for large).
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := g.r.NormFloat64()*math.Sqrt(lambda) + lambda
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

package sched

import (
	"testing"

	"dilu/internal/cluster"
)

// heteroCluster builds a mixed 1.0/0.5-capacity fleet (interleaved by
// the weighted round-robin of cluster.New).
func heteroCluster(nodes int) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Nodes: nodes, GPUsPerNode: 2,
		Classes: []cluster.GPUClass{
			{Name: "big", Capacity: 1.0, MemCapMB: 40 * 1024, Weight: 0.5},
			{Name: "small", Capacity: 0.5, MemCapMB: 24 * 1024, Weight: 0.5},
		},
	})
}

func TestDiluRespectsPerClassCapacity(t *testing.T) {
	clu := heteroCluster(4)
	s := NewDilu(clu, Options{})
	// GPT2-large training requests ~0.47: two of them break Ω·0.5 on a
	// small GPU but fit a big one together.
	p := trainProfile("GPT2-large")
	for i := 0; i < 6; i++ {
		if _, err := s.Schedule(Request{Func: "job", Profile: p, Instances: 1}); err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
	}
	for _, g := range clu.GPUs() {
		if g.SumReq > g.Capacity+1e-9 {
			t.Fatalf("%s (cap %.1f) oversubscribed: ΣReq=%v", g.ID, g.Capacity, g.SumReq)
		}
	}
}

func TestStaticRespectsPerClassCapacity(t *testing.T) {
	clu := heteroCluster(4)
	s := NewINFlessL(clu)
	// GPT2-large inference limit quota is 0.6 > 0.5: small GPUs must
	// never host it.
	p := infProfile("GPT2-large")
	for i := 0; i < 4; i++ {
		decs, err := s.Schedule(Request{Func: "gpt", Profile: p, Instances: 1})
		if err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
		if g := decs[0].GPUs[0]; g.Capacity < p.SMLim {
			t.Fatalf("placement %d landed on %s with capacity %.1f < quota %.1f",
				i, g.ID, g.Capacity, p.SMLim)
		}
	}
	// BERT-base inference (limit 0.2) fits both generations; best-fit by
	// normalized free share must prefer the fuller (small) devices once
	// they host anything.
	small := clu.GPUs()[2] // node-1 is the small class under 50/50 interleave
	if small.Capacity != 0.5 {
		t.Fatalf("expected small GPU at pos 2, got capacity %v", small.Capacity)
	}
}

func TestExclusiveReservesWholeCapacity(t *testing.T) {
	clu := heteroCluster(2)
	s := NewExclusive(clu)
	decs, err := s.Schedule(Request{Func: "f", Profile: infProfile("BERT-base"), Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decs {
		g := d.GPUs[0]
		if d.Placements[0].Req != g.Capacity {
			t.Fatalf("%s: exclusive Req=%v, want whole capacity %v", g.ID, d.Placements[0].Req, g.Capacity)
		}
		if u := g.Util(); u < 1-1e-9 || u > 1+1e-9 {
			t.Fatalf("%s: exclusive utilization %v, want 1.0", g.ID, u)
		}
	}
}

func TestSchedulersSkipRetiredGPUs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*cluster.Cluster) Scheduler
	}{
		{"Dilu", func(c *cluster.Cluster) Scheduler { return NewDilu(c, Options{}) }},
		{"INFless+-l", func(c *cluster.Cluster) Scheduler { return NewINFlessL(c) }},
		{"Exclusive", func(c *cluster.Cluster) Scheduler { return NewExclusive(c) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clu := cluster.New(cluster.Config{Nodes: 3, GPUsPerNode: 2})
			s := tc.mk(clu)
			// Seed some load so active-set paths engage, then retire two
			// of three nodes.
			if _, err := s.Schedule(Request{Func: "seed", Profile: infProfile("BERT-base"), Instances: 2}); err != nil {
				t.Fatal(err)
			}
			clu.FailNode(clu.Nodes[0])
			clu.DrainNode(clu.Nodes[1])
			for i := 0; i < 4; i++ {
				decs, err := s.Schedule(Request{Func: "after", Profile: infProfile("VGG19"), Instances: 1})
				if err != nil {
					break // node 2 full is fine; wrong placements are not
				}
				for _, g := range decs[0].GPUs {
					if g.Node != clu.Nodes[2] {
						t.Fatalf("placement %d landed on retired node %s", i, g.Node.ID)
					}
				}
			}
			// After rejoin, retired nodes are usable again.
			clu.JoinNode(clu.Nodes[0])
			decs, err := s.Schedule(Request{Func: "rejoined", Profile: infProfile("BERT-base"), Instances: 1})
			if err != nil {
				t.Fatalf("post-join placement failed: %v", err)
			}
			_ = decs
		})
	}
}

func TestDiluMultiGPUHeteroWorstFit(t *testing.T) {
	clu := heteroCluster(4)
	s := NewDilu(clu, Options{})
	// LLaMA2-7B shards over 4 stages (per-stage req 0.2, mem 4096):
	// feasible on both generations; worst-fit by normalized free share
	// must spread stages over idle GPUs of either class without
	// breaking per-class capacity.
	p := infProfile("LLaMA2-7B")
	decs, err := s.Schedule(Request{Func: "llm", Profile: p, Instances: 1, GPUsPerInstance: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs[0].GPUs) != 4 {
		t.Fatalf("stages placed on %d GPUs, want 4", len(decs[0].GPUs))
	}
	seen := map[*cluster.GPU]bool{}
	for _, g := range decs[0].GPUs {
		if seen[g] {
			t.Fatalf("stage stacked on %s", g.ID)
		}
		seen[g] = true
		if g.SumReq > g.Capacity+1e-9 {
			t.Fatalf("%s oversubscribed by sharding: %v > %v", g.ID, g.SumReq, g.Capacity)
		}
	}
}

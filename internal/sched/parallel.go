// Parallel sharded candidate scans. When the cluster is partitioned
// into position-range shards (cluster.SetShards) the selection loops —
// the dominant cost of hyperscale placement — fan out over the shards:
// every worker computes its shard's lexicographic argmin (or top-k)
// with exactly the serial per-candidate arithmetic, and the results are
// merged under the same total order. Selection is bit-exact with the
// serial scan because each comparison key ((score, cold, Pos) for Dilu,
// (free, Pos) for Static, (moreFreeMem, Pos) for the worst-fit) is a
// total order: an argmin distributes over any partition of the
// candidate set, so sharding changes only who computes, never what is
// chosen. The workers only read placement state and compact their own
// shard's occupancy buckets (shard-local mutation), which is the
// concurrency contract OccupancyBucketShard documents.
package sched

import (
	"slices"

	"dilu/internal/cluster"
	"dilu/internal/profiler"
	"dilu/internal/sim"
)

// shardBest is one shard's selection result for the Dilu active-set
// argmin: the candidate minimizing (score, cold, pos), or g == nil when
// the shard holds no feasible candidate.
type shardBest struct {
	score float64
	cold  int
	pos   int
	g     *cluster.GPU
}

// better reports whether a ranks strictly before b in the (score, cold,
// pos) lexicographic order — the exact comparison the serial scan
// applies per candidate.
func (a shardBest) better(b shardBest) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	if a.cold != b.cold {
		return a.cold < b.cold
	}
	return a.pos < b.pos
}

// SetParallel attaches a fork-join pool for sharded candidate scans.
// The pool takes effect only when the scheduler's cluster is itself
// sharded (SetShards > 1); a nil pool with a sharded cluster still
// takes the sharded code path, serially — useful for differential
// testing, since results are identical either way.
func (s *Dilu) SetParallel(pool *sim.Pool) { s.pool = pool }

// SetParallel attaches a fork-join pool for sharded candidate scans
// (see Dilu.SetParallel).
func (s *Static) SetParallel(pool *sim.Pool) { s.pool = pool }

// selectOptGPUActiveSharded is selectOptGPUActive fanned out over the
// cluster's shards: each worker runs the serial bucket walk restricted
// to its shard's occupancy index (same start bound, same per-candidate
// arithmetic, shard-local early termination — pruning only discards
// candidates that lose to the shard's own best, which a fortiori lose
// globally), and the shard argmins merge under (score, cold, pos).
func (s *Dilu) selectOptGPUActiveSharded(p profiler.Profile, fn string) *cluster.GPU {
	headroom := s.opts.Omega + 1e-9 - p.SMReq/s.clu.MaxCapacity()
	if headroom < 0 {
		return nil
	}
	start := cluster.OccupancyBucketOf(headroom)
	hostsAny := len(s.clu.FuncGPUs(fn)) > 0
	n := s.clu.ShardCount()
	if cap(s.bestScratch) < n {
		s.bestScratch = make([]shardBest, n)
	}
	bests := s.bestScratch[:n]
	s.pool.ForkJoin(n, func(sh int) {
		bests[sh] = s.scanShardOpt(sh, start, p, fn, hostsAny)
	})
	best := shardBest{score: 1e18, cold: 2, pos: -1}
	for _, b := range bests {
		if b.g != nil && b.better(best) {
			best = b
		}
	}
	return best.g
}

// scanShardOpt is the serial selectOptGPUActive bucket walk over one
// shard's occupancy index.
func (s *Dilu) scanShardOpt(sh, start int, p profiler.Profile, fn string, hostsAny bool) shardBest {
	best := shardBest{score: 1e18, cold: 2, pos: -1}
	for b := start; b >= 0; b-- {
		if best.g != nil {
			ub := float64(b+1) / cluster.OccupancyBuckets
			if s.opts.Alpha*(1-(ub+p.SMReq/s.clu.MinCapacity())) > best.score {
				break
			}
		}
		for _, g := range s.clu.OccupancyBucketShard(sh, b) {
			if !g.Schedulable() {
				continue
			}
			newReq := g.SumReq + p.SMReq
			newLim := g.SumLim + p.SMLim
			newMem := g.MemUsedMB + p.MemMB
			if newReq > s.opts.Omega*g.Capacity+1e-9 || newLim > s.opts.Gamma*g.Capacity+1e-9 || newMem > g.MemCapMB {
				continue
			}
			hosts := hostsAny && g.HostsFunc(fn)
			if hosts && p.Role == profiler.RoleTraining {
				continue
			}
			score := s.opts.Alpha * (1 - newReq/g.Capacity)
			if !s.opts.DisableComplementary {
				score += s.opts.Beta * (1 - newMem/g.MemCapMB)
			}
			if hosts {
				score += 0.5
			}
			if cand := (shardBest{score: score, cold: s.cacheCold(g, fn), pos: g.Pos(), g: g}); cand.better(best) {
				best = cand
			}
		}
	}
	return best
}

// pickSharded is Static.pick's bucket walk fanned out over the shards:
// each worker applies the serial walk — including the one-extra-bucket
// rounding-collapse rule — to its own shard and the (free, pos) argmins
// merge. The fresh-GPU fallback stays with the caller.
func (s *Static) pickSharded(q, memMB float64) *cluster.GPU {
	headroom := 1 + 1e-9 - q/s.clu.MaxCapacity()
	if headroom < 0 {
		return nil
	}
	start := cluster.OccupancyBucketOf(headroom)
	n := s.clu.ShardCount()
	if cap(s.bestScratch) < n {
		s.bestScratch = make([]shardBest, n)
	}
	bests := s.bestScratch[:n]
	s.pool.ForkJoin(n, func(sh int) {
		bests[sh] = s.scanShardPick(sh, start, q, memMB)
	})
	var best *cluster.GPU
	bestFree := 2.0
	bestPos := -1
	for _, b := range bests {
		if b.g != nil && (b.score < bestFree || (b.score == bestFree && b.pos < bestPos)) {
			best, bestFree, bestPos = b.g, b.score, b.pos
		}
	}
	return best
}

// scanShardPick runs Static.pick's walk over one shard; the free share
// rides shardBest.score.
func (s *Static) scanShardPick(sh, start int, q, memMB float64) shardBest {
	best := shardBest{score: 2.0, pos: -1}
	stopBelow := -1
	for b := start; b >= 0; b-- {
		if best.g != nil && b < stopBelow {
			break
		}
		for _, g := range s.clu.OccupancyBucketShard(sh, b) {
			if !g.Schedulable() {
				continue
			}
			if g.SumReq+q > g.Capacity+1e-9 || g.MemUsedMB+memMB > g.MemCapMB {
				continue
			}
			free := 1 - g.Util()
			if free < best.score || (free == best.score && g.Pos() < best.pos) {
				best = shardBest{score: free, pos: g.Pos(), g: g}
			}
		}
		if best.g != nil && stopBelow == -1 {
			stopBelow = b - 1 // one more bucket: rounding-collapse ties
		}
	}
	return best
}

// collectMultiCandsSharded gathers placeMultiGPU's candidate pool in
// parallel: each worker filters its shard — the active-list segment on
// single-class fleets, the full inventory range on heterogeneous ones —
// and pre-selects its shard's worst-fit top `stages` (no smaller set
// can contain the global top `stages`). The per-shard winners, plus the
// caller's extra (inactive) candidates filtered serially, are merged
// back into inventory order, so the caller's serial worst-fit selection
// over the merged pool resolves free-memory ties toward earlier
// positions exactly as the serial candidate list (built in inventory
// order with inactives interleaved) does. Returns the merged pool and
// the number of feasible shard-scanned GPUs (actives on single-class
// fleets, all inventory on heterogeneous ones; extras are not counted —
// the caller prices the interchangeable inactive supply itself).
func (s *Dilu) collectMultiCandsSharded(feasible func(*cluster.GPU) bool, stages int, extra []*cluster.GPU) ([]multiCand, int) {
	n := s.clu.ShardCount()
	if cap(s.shardCands) < n {
		s.shardCands = make([][]multiCand, n)
	}
	shardCands := s.shardCands[:n]
	if cap(s.shardCounts) < n {
		s.shardCounts = make([]int, n)
	}
	counts := s.shardCounts[:n]
	hetero := s.clu.Heterogeneous()
	s.pool.ForkJoin(n, func(sh int) {
		cands := shardCands[sh][:0]
		count := 0
		if hetero {
			lo, hi := s.clu.ShardRange(sh)
			for _, g := range s.clu.GPUs()[lo:hi] {
				if feasible(g) {
					cands = append(cands, multiCand{g, g.MemCapMB - g.MemUsedMB})
					count++
				}
			}
		} else {
			for _, g := range s.clu.ActiveRange(sh) {
				if feasible(g) {
					cands = append(cands, multiCand{g, g.MemCapMB - g.MemUsedMB})
					count++
				}
			}
		}
		topKWorstFit(cands, stages)
		if len(cands) > stages {
			cands = cands[:stages]
		}
		shardCands[sh] = cands
		counts[sh] = count
	})
	merged := s.candScratch[:0]
	total := 0
	for sh := 0; sh < n; sh++ {
		merged = append(merged, shardCands[sh]...)
		total += counts[sh]
	}
	for _, g := range extra {
		if feasible(g) {
			merged = append(merged, multiCand{g, g.MemCapMB - g.MemUsedMB})
		}
	}
	// Back into inventory order: ties in the caller's worst-fit
	// selection then fall toward earlier positions, like the serial
	// candidate list (which is built in inventory order).
	slices.SortFunc(merged, func(a, b multiCand) int { return a.g.Pos() - b.g.Pos() })
	s.candScratch = merged
	return merged, total
}

// topKWorstFit partially selection-sorts cands so the first k entries
// are the worst-fit winners (most free memory first, ties toward the
// earlier list position) — the same loop placeMultiGPU runs, stopped
// at k.
func topKWorstFit(cands []multiCand, k int) {
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if moreFreeMem(cands[j], cands[best]) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
}

package sched

import (
	"fmt"
	"testing"
	"testing/quick"

	"dilu/internal/cluster"
	"dilu/internal/model"
	"dilu/internal/profiler"
)

func infProfile(name string) profiler.Profile {
	return profiler.For(model.ByName(name), profiler.RoleInference)
}

func trainProfile(name string) profiler.Profile {
	return profiler.For(model.ByName(name), profiler.RoleTraining)
}

func TestDiluPacksComplementaryInstances(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 2, GPUsPerNode: 4})
	s := NewDilu(clu, Options{})
	// A training worker (req ~0.4-0.6) and an inference instance
	// (req ~0.2-0.3) complement each other on one GPU.
	dTrain, err := s.Schedule(Request{Func: "bert-train", Profile: trainProfile("BERT-base"), Instances: 1})
	if err != nil {
		t.Fatal(err)
	}
	dInf, err := s.Schedule(Request{Func: "rob-inf", Profile: infProfile("RoBERTa-large"), Instances: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dTrain[0].GPUs[0] != dInf[0].GPUs[0] {
		t.Fatalf("complementary instances not collocated: %s vs %s",
			dTrain[0].GPUs[0].ID, dInf[0].GPUs[0].ID)
	}
	if clu.OccupiedCount() != 1 {
		t.Fatalf("occupied %d GPUs, want 1", clu.OccupiedCount())
	}
}

func TestDiluRespectsOmega(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 2})
	s := NewDilu(clu, Options{Omega: 1.0, Gamma: 1.5})
	p := trainProfile("GPT2-large") // request ~0.5-0.7
	if _, err := s.Schedule(Request{Func: "a", Profile: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(Request{Func: "b", Profile: p}); err != nil {
		t.Fatal(err)
	}
	// Both GPUs now hold one heavy training each; a third must fail or
	// land only where Σreq stays ≤ Ω.
	for _, g := range clu.GPUs() {
		if g.SumReq > 1+1e-9 {
			t.Fatalf("gpu %s oversubscribed on requests: %v", g.ID, g.SumReq)
		}
	}
}

func TestDiluGammaBoundsLimits(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 1})
	s := NewDilu(clu, Options{Gamma: 1.2})
	p := infProfile("RoBERTa-large")
	placed := 0
	for i := 0; i < 10; i++ {
		if _, err := s.Schedule(Request{Func: fmt.Sprintf("f%d", i), Profile: p}); err != nil {
			break
		}
		placed++
	}
	g := clu.GPUs()[0]
	if g.SumLim > 1.2+1e-9 {
		t.Fatalf("Σ limits %v exceed γ=1.2", g.SumLim)
	}
	if placed == 0 {
		t.Fatal("nothing placed")
	}
}

func TestDiluOpensNewGPUWhenFull(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 4})
	s := NewDilu(clu, Options{})
	p := trainProfile("GPT2-large")
	for i := 0; i < 4; i++ {
		if _, err := s.Schedule(Request{Func: fmt.Sprintf("t%d", i), Profile: p}); err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
	}
	if clu.OccupiedCount() < 2 {
		t.Fatalf("heavy jobs should spill to new GPUs, occupied=%d", clu.OccupiedCount())
	}
}

func TestDiluNoCapacityError(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 1})
	s := NewDilu(clu, Options{})
	p := trainProfile("GPT2-large")
	if _, err := s.Schedule(Request{Func: "a", Profile: p, Instances: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(Request{Func: "b", Profile: p, Instances: 5}); err == nil {
		t.Fatal("expected no-capacity error")
	}
	// Failed batch must roll back entirely.
	total := 0
	for _, g := range clu.GPUs() {
		total += len(g.Placements)
	}
	if total != 1 {
		t.Fatalf("rollback failed: %d placements", total)
	}
}

func TestDiluWorkloadAffinityReplication(t *testing.T) {
	// Figure 5(b): once func-a and func-b collocate on GPU-1, a new
	// func-b instance should land with func-a's new instance rather than
	// a random third function.
	clu := cluster.New(cluster.Config{Nodes: 2, GPUsPerNode: 4})
	s := NewDilu(clu, Options{})
	pa := trainProfile("BERT-base")
	pb := infProfile("RoBERTa-large")
	pc := infProfile("BERT-base")
	da, _ := s.Schedule(Request{Func: "a", Profile: pa})
	db, _ := s.Schedule(Request{Func: "b", Profile: pb})
	if da[0].GPUs[0] != db[0].GPUs[0] {
		t.Skip("setup: a and b did not collocate")
	}
	// c joins wherever it fits.
	_, _ = s.Schedule(Request{Func: "c", Profile: pc})
	// A second a: same-function anti-affinity pushes it to a fresh fragment.
	da2, _ := s.Schedule(Request{Func: "a", Profile: pa})
	if da2[0].GPUs[0] == da[0].GPUs[0] {
		t.Skip("setup: a-2 stacked with a-1")
	}
	// Now b scales out: affinity should prefer the GPU hosting a-2 (b's
	// proven partner), not c's GPU.
	db2, err := s.Schedule(Request{Func: "b", Profile: pb})
	if err != nil {
		t.Fatal(err)
	}
	if db2[0].GPUs[0] != da2[0].GPUs[0] {
		t.Fatalf("affinity ignored: b-2 on %s, a-2 on %s", db2[0].GPUs[0].ID, da2[0].GPUs[0].ID)
	}
}

func TestDiluAffinityDisabled(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 2, GPUsPerNode: 4})
	s := NewDilu(clu, Options{DisableAffinity: true})
	p := infProfile("BERT-base")
	if _, err := s.Schedule(Request{Func: "x", Profile: p, Instances: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestDiluMultiGPUWorstFit(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 4})
	s := NewDilu(clu, Options{})
	// Fill GPU 0 with a memory-heavy training worker.
	if _, err := s.Schedule(Request{Func: "t", Profile: trainProfile("GPT2-large")}); err != nil {
		t.Fatal(err)
	}
	// LLaMA over 4 fragments: worst-fit must prefer the 3 empty GPUs
	// plus the fullest only as the last resort.
	p := infProfile("LLaMA2-7B")
	d, err := s.Schedule(Request{Func: "llm", Profile: p, GPUsPerInstance: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(d[0].GPUs) != 4 {
		t.Fatalf("stages = %d", len(d[0].GPUs))
	}
	seen := map[string]bool{}
	for _, g := range d[0].GPUs {
		if seen[g.ID] {
			t.Fatal("stage GPUs must be distinct")
		}
		seen[g.ID] = true
	}
}

func TestDiluRCDisabledUsesFreshGPUs(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 2, GPUsPerNode: 4})
	s := NewDilu(clu, Options{DisableComplementary: true})
	_, _ = s.Schedule(Request{Func: "t", Profile: trainProfile("BERT-base")})
	before := clu.OccupiedCount()
	p := infProfile("LLaMA2-7B")
	d, err := s.Schedule(Request{Func: "llm", Profile: p, GPUsPerInstance: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d[0].GPUs {
		if len(g.Placements) != 1 {
			t.Fatal("-RC stages must use dedicated GPUs")
		}
	}
	if clu.OccupiedCount() != before+4 {
		t.Fatalf("-RC should open 4 fresh GPUs (before=%d now=%d)", before, clu.OccupiedCount())
	}
}

func TestExclusiveOneGPUPerInstance(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 4})
	s := NewExclusive(clu)
	d, err := s.Schedule(Request{Func: "f", Profile: infProfile("BERT-base"), Instances: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 || clu.OccupiedCount() != 3 {
		t.Fatalf("decisions=%d occupied=%d", len(d), clu.OccupiedCount())
	}
	if _, err := s.Schedule(Request{Func: "g", Profile: infProfile("BERT-base"), Instances: 2}); err == nil {
		t.Fatal("expected capacity error on 5th GPU")
	}
}

func TestStaticNoOversubscription(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 2})
	s := NewINFlessL(clu)
	p := infProfile("RoBERTa-large") // limit ~0.4-0.6
	for i := 0; i < 6; i++ {
		if _, err := s.Schedule(Request{Func: fmt.Sprintf("f%d", i), Profile: p}); err != nil {
			break
		}
	}
	for _, g := range clu.GPUs() {
		if g.SumReq > 1+1e-9 {
			t.Fatalf("MPS scheduler oversubscribed: %v", g.SumReq)
		}
	}
}

func TestStaticRequestVsLimitDensity(t *testing.T) {
	// INFless+-r packs more instances per GPU than INFless+-l because the
	// request quota is smaller.
	place := func(s Scheduler) int {
		n := 0
		for i := 0; i < 32; i++ {
			if _, err := s.Schedule(Request{Func: fmt.Sprintf("f%d", i), Profile: infProfile("RoBERTa-large")}); err != nil {
				break
			}
			n++
		}
		return n
	}
	nl := place(NewINFlessL(cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 2})))
	nr := place(NewINFlessR(cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 2})))
	if nr <= nl {
		t.Fatalf("request-quota density %d should exceed limit-quota %d", nr, nl)
	}
}

func TestDiluDensityBeatsStatic(t *testing.T) {
	// The headline scheduling claim: Dilu's unequal quotas with
	// oversubscription achieve higher deployment density than MPS-l on
	// the same hardware.
	packDilu := func() int {
		s := NewDilu(cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 4}), Options{})
		n := 0
		for i := 0; i < 64; i++ {
			if _, err := s.Schedule(Request{Func: fmt.Sprintf("f%d", i), Profile: infProfile("RoBERTa-large")}); err != nil {
				break
			}
			n++
		}
		return n
	}
	packStatic := func() int {
		s := NewINFlessL(cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 4}))
		n := 0
		for i := 0; i < 64; i++ {
			if _, err := s.Schedule(Request{Func: fmt.Sprintf("f%d", i), Profile: infProfile("RoBERTa-large")}); err != nil {
				break
			}
			n++
		}
		return n
	}
	d, st := packDilu(), packStatic()
	if d <= st {
		t.Fatalf("Dilu density %d should beat MPS-l %d", d, st)
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	clu := cluster.New(cluster.Config{Nodes: 1, GPUsPerNode: 1})
	s := NewDilu(clu, Options{})
	d, err := s.Schedule(Request{Func: "f", Profile: trainProfile("GPT2-large")})
	if err != nil {
		t.Fatal(err)
	}
	d[0].Release()
	if clu.OccupiedCount() != 0 {
		t.Fatal("release did not free the GPU")
	}
	if _, err := s.Schedule(Request{Func: "g", Profile: trainProfile("GPT2-large")}); err != nil {
		t.Fatalf("capacity not reusable: %v", err)
	}
}

// Property: whatever the request mix, Dilu never violates Ω, γ, or
// memory on any GPU.
func TestDiluConstraintsProperty(t *testing.T) {
	profiles := []profiler.Profile{
		infProfile("BERT-base"), infProfile("RoBERTa-large"), infProfile("GPT2-large"),
		trainProfile("BERT-base"), trainProfile("GPT2-large"), trainProfile("ResNet152"),
	}
	f := func(picks []uint8) bool {
		clu := cluster.New(cluster.Config{Nodes: 2, GPUsPerNode: 4})
		s := NewDilu(clu, Options{})
		for i, pk := range picks {
			if i > 24 {
				break
			}
			p := profiles[int(pk)%len(profiles)]
			_, _ = s.Schedule(Request{Func: fmt.Sprintf("f%d", pk%5), Profile: p})
		}
		for _, g := range clu.GPUs() {
			if g.SumReq > 1.0+1e-6 || g.SumLim > 1.5+1e-6 || g.MemUsedMB > g.MemCapMB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

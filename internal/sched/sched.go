// Package sched implements Dilu's resourcing-complementary scheduling
// (§3.3, Algorithm 1) and the cluster-level baseline schedulers of the
// evaluation (Exclusive, INFless+-l/-r, FaST-GS+), all operating on the
// ⟨request, limit⟩/memory bookkeeping of internal/cluster.
//
// The Dilu scheduler follows the paper's three principles: workload-
// affinity-first collocation (Principle-1), defragmentation through
// resource complementarity with best-fit scoring and memory worst-fit for
// multi-GPU LLMs (Principle-2), and oversubscription bounded by Ω and γ
// with QoS guarantees (Principle-3).
package sched

import (
	"errors"
	"slices"
	"strconv"

	"dilu/internal/cluster"
	"dilu/internal/profiler"
	"dilu/internal/sim"
)

// Request asks for n instances of one function to be placed.
type Request struct {
	Func    string
	Profile profiler.Profile
	// Instances is n_j: the number of instances (or training workers).
	Instances int
	// GPUsPerInstance > 1 shards one instance over multiple GPU fragments
	// (LLM pipeline stages); the profile's quotas and memory then apply
	// per stage.
	GPUsPerInstance int
}

// Decision is one placed instance.
type Decision struct {
	Instance   string
	Func       string
	GPUs       []*cluster.GPU
	Placements []*cluster.Placement
}

// Release returns the decision's reservations to the cluster. Removing
// a placement already evicted (by cluster.FailNode) is a no-op, so
// releasing a decision after a failure double-counts nothing.
func (d *Decision) Release() {
	for i, p := range d.Placements {
		d.GPUs[i].Remove(p)
	}
}

// OnFailedGPU reports whether any of the decision's GPUs has failed —
// the instance's reservations are gone and it must be rescheduled.
func (d *Decision) OnFailedGPU() bool {
	for _, g := range d.GPUs {
		if g.Health() == cluster.Failed {
			return true
		}
	}
	return false
}

// OnRetiredGPU reports whether any of the decision's GPUs has left
// service (failed, draining, or quarantined) — the gateway should
// migrate the instance off the device.
func (d *Decision) OnRetiredGPU() bool {
	for _, g := range d.GPUs {
		if !g.Schedulable() {
			return true
		}
	}
	return false
}

// OnGPU reports whether the decision holds a reservation on g — fault
// injection uses it to find the instances whose batches a device error
// aborts.
func (d *Decision) OnGPU(g *cluster.GPU) bool {
	for _, dg := range d.GPUs {
		if dg == g {
			return true
		}
	}
	return false
}

// Scheduler places deployment requests onto a cluster.
type Scheduler interface {
	Name() string
	Cluster() *cluster.Cluster
	Schedule(req Request) ([]Decision, error)
}

// ErrNoCapacity is returned when no GPU (active or fresh) satisfies the
// constraints.
var ErrNoCapacity = errors.New("sched: no GPU satisfies constraints")

// instanceID builds "<fn>-<seq>" without fmt: instance-ID construction
// sits on the placement hot path, and Sprintf's interface boxing plus
// verb parsing tripled its allocation cost.
func instanceID(fn string, seq int) string {
	buf := make([]byte, 0, len(fn)+12)
	buf = append(buf, fn...)
	buf = append(buf, '-')
	buf = strconv.AppendInt(buf, int64(seq), 10)
	return string(buf)
}

// stageID builds the "<id>/s<i>" per-stage instance ID of a multi-GPU
// (pipeline-sharded) deployment.
func stageID(id string, stage int) string {
	buf := make([]byte, 0, len(id)+8)
	buf = append(buf, id...)
	buf = append(buf, '/', 's')
	buf = strconv.AppendInt(buf, int64(stage), 10)
	return string(buf)
}

// ---------------------------------------------------------------------------
// Dilu: Algorithm 1.

// Options are the Dilu scheduler hyper-parameters.
type Options struct {
	// Omega bounds Σ request quotas per GPU (Ω, default 1.0).
	Omega float64
	// Gamma bounds Σ limit quotas per GPU (γ, default 1.5 — the
	// oversubscription coefficient of Figure 18(a)).
	Gamma float64
	// Alpha and Beta weight the SM and memory terms of the
	// fragmentation score (default 0.5 / 0.5).
	Alpha, Beta float64
	// DisableAffinity turns off Principle-1 (the -WA ablation).
	DisableAffinity bool
	// DisableComplementary turns off Principle-2 (the -RC ablation):
	// memory is dropped from the score and multi-GPU LLM deployment
	// falls back to whole fresh GPUs.
	DisableComplementary bool
	// KernelCacheAffinity breaks fragmentation-score ties toward GPUs
	// whose node's kernel cache is warm for the function, so a relaunch
	// lands where its JIT artifacts already live and the cold start
	// shrinks. Ties only — the score itself is untouched, and with the
	// staged cold-start model disabled every node is cold, so the
	// refinement is inert and selection stays bit-identical.
	KernelCacheAffinity bool
}

func (o Options) withDefaults() Options {
	if o.Omega <= 0 {
		o.Omega = 1.0
	}
	if o.Gamma <= 0 {
		o.Gamma = 1.5
	}
	if o.Alpha == 0 && o.Beta == 0 {
		o.Alpha, o.Beta = 0.5, 0.5
	}
	return o
}

// Dilu is the Algorithm 1 scheduler.
type Dilu struct {
	opts Options
	clu  *cluster.Cluster
	seq  int

	// Scratch buffers reused across Schedule calls (the scheduler is
	// single-threaded per cluster) so the per-request hot path does not
	// allocate candidate slices.
	affScratch   []*cluster.GPU
	inactScratch []*cluster.GPU
	candScratch  []multiCand
	partners     map[string]bool

	// pool fans candidate scans out over the cluster's shards (see
	// parallel.go); the per-shard scratch below is indexed by shard, so
	// workers never contend.
	pool        *sim.Pool
	bestScratch []shardBest
	shardCands  [][]multiCand
	shardCounts []int
}

// NewDilu builds the scheduler over a cluster.
func NewDilu(clu *cluster.Cluster, opts Options) *Dilu {
	return &Dilu{opts: opts.withDefaults(), clu: clu}
}

// Name implements Scheduler.
func (s *Dilu) Name() string { return "Dilu" }

// Cluster implements Scheduler.
func (s *Dilu) Cluster() *cluster.Cluster { return s.clu }

// Options returns the active hyper-parameters.
func (s *Dilu) Options() Options { return s.opts }

// Schedule implements Algorithm 1's ScheduleInstances loop.
func (s *Dilu) Schedule(req Request) ([]Decision, error) {
	if req.Instances <= 0 {
		req.Instances = 1
	}
	stages := req.GPUsPerInstance
	if stages <= 0 {
		stages = 1
	}
	var out []Decision
	for k := 0; k < req.Instances; k++ {
		var d Decision
		var err error
		if stages > 1 {
			d, err = s.placeMultiGPU(req, stages)
		} else {
			d, err = s.placeSingle(req)
		}
		if err != nil {
			for _, prev := range out {
				prev.Release()
			}
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func (s *Dilu) nextID(fn string) string {
	s.seq++
	return instanceID(fn, s.seq)
}

// placeSingle implements lines 10-18 for a one-GPU instance.
func (s *Dilu) placeSingle(req Request) (Decision, error) {
	p := req.Profile
	var gpu *cluster.GPU
	if !s.opts.DisableAffinity {
		gpu = s.selectOptGPU(s.affinityGPUs(req.Func), p, req.Func)
	}
	if gpu == nil {
		gpu = s.selectOptGPUActive(p, req.Func)
	}
	if gpu == nil {
		gpu = s.freshGPU(p)
	}
	if gpu == nil {
		return Decision{}, ErrNoCapacity
	}
	pl := &cluster.Placement{
		Instance: s.nextID(req.Func), Func: req.Func,
		Req: p.SMReq, Lim: p.SMLim, MemMB: p.MemMB,
	}
	if err := gpu.Place(pl); err != nil {
		return Decision{}, err
	}
	return Decision{Instance: pl.Instance, Func: req.Func,
		GPUs: []*cluster.GPU{gpu}, Placements: []*cluster.Placement{pl}}, nil
}

// multiCand is one placeMultiGPU candidate.
type multiCand struct {
	g    *cluster.GPU
	free float64
}

// moreFreeMem reports whether a has a strictly larger normalized
// free-memory share than b. Equal-capacity GPUs compare raw free MB —
// bit-identical to the pre-heterogeneity comparison — while mixed caps
// cross-multiply instead of dividing, avoiding rounding collapse.
func moreFreeMem(a, b multiCand) bool {
	if a.g.MemCapMB == b.g.MemCapMB {
		return a.free > b.free
	}
	return a.free*b.g.MemCapMB > b.free*a.g.MemCapMB
}

// placeMultiGPU shards an LLM instance over `stages` GPU fragments using
// the memory worst-fit strategy of Principle-2 (most remaining memory
// first, minimizing pipeline depth and end-to-end latency). The whole-
// instance profile is divided across stages: each fragment carries 1/n of
// the quotas and memory.
//
// Candidates come from the cluster's incremental indexes rather than a
// full inventory scan: every feasible active GPU, merged (in inventory
// order) with the `stages` earliest inactive GPUs. Inactive GPUs are
// interchangeable — identical free memory, the worst-fit maximum — and
// the ranking loop breaks free-memory ties toward earlier list positions,
// so capping them at `stages` provably selects the same GPUs a scan of
// all of them would; the feasibility count still reflects every inactive
// GPU.
func (s *Dilu) placeMultiGPU(req Request, stages int) (Decision, error) {
	p := shardProfile(req.Profile, stages)
	if s.opts.DisableComplementary {
		return s.placeExclusiveStages(req, stages)
	}
	feasible := func(g *cluster.GPU) bool {
		return g.Schedulable() &&
			g.SumReq+p.SMReq <= s.opts.Omega*g.Capacity+1e-9 &&
			g.SumLim+p.SMLim <= s.opts.Gamma*g.Capacity+1e-9 &&
			g.MemUsedMB+p.MemMB <= g.MemCapMB
	}
	cands := s.candScratch[:0]
	if s.clu.ShardCount() > 1 {
		// Sharded inventory: per-shard feasibility filters + worst-fit
		// top-`stages` pre-selection, merged back into inventory order
		// (see parallel.go). The feasibility count mirrors the serial
		// branches below: heterogeneous workers scan the full inventory
		// (so the scanned count is the whole feasible supply), while
		// single-class workers scan actives and the interchangeable
		// inactive supply is priced by one representative.
		var scanned int
		if s.clu.Heterogeneous() {
			cands, scanned = s.collectMultiCandsSharded(feasible, stages, nil)
		} else {
			s.inactScratch = s.clu.AppendInactive(s.inactScratch[:0], stages)
			cands, scanned = s.collectMultiCandsSharded(feasible, stages, s.inactScratch)
			if n := s.clu.SchedulableInactive(); n > 0 && len(s.inactScratch) > 0 && feasible(s.inactScratch[0]) {
				scanned += n
			}
		}
		if scanned < stages {
			return Decision{}, ErrNoCapacity
		}
	} else if s.clu.Heterogeneous() {
		// Mixed fleets void the "inactive GPUs are interchangeable"
		// argument below (classes differ in memory and capacity, so
		// feasibility and worst-fit rank vary across idle GPUs): fall
		// back to a full inventory scan. Multi-GPU (LLM) placements are
		// the rare case, and heterogeneous drivers run at cluster sizes
		// where an O(inventory) scan per LLM instance is acceptable.
		for _, g := range s.clu.GPUs() {
			if feasible(g) {
				cands = append(cands, multiCand{g, g.MemCapMB - g.MemUsedMB})
			}
		}
		s.candScratch = cands
		if len(cands) < stages {
			return Decision{}, ErrNoCapacity
		}
	} else {
		s.inactScratch = s.clu.AppendInactive(s.inactScratch[:0], stages)
		inactives := s.inactScratch
		feasibleCount := 0
		// Merge actives and the capped inactives in inventory order so the
		// candidate list is a (never-selected-elements-removed) copy of the
		// full-scan list.
		ii := 0
		for _, g := range s.clu.ActiveGPUs() {
			for ii < len(inactives) && inactives[ii].Pos() < g.Pos() {
				if feasible(inactives[ii]) {
					cands = append(cands, multiCand{inactives[ii], inactives[ii].MemCapMB - inactives[ii].MemUsedMB})
				}
				ii++
			}
			if feasible(g) {
				cands = append(cands, multiCand{g, g.MemCapMB - g.MemUsedMB})
				feasibleCount++
			}
		}
		for ; ii < len(inactives); ii++ {
			if feasible(inactives[ii]) {
				cands = append(cands, multiCand{inactives[ii], inactives[ii].MemCapMB - inactives[ii].MemUsedMB})
			}
		}
		s.candScratch = cands
		// Feasibility counts every schedulable inactive GPU, not just the
		// capped sample: on a single-class fleet they are interchangeable,
		// so one check covers all of them.
		if n := s.clu.SchedulableInactive(); n > 0 && len(inactives) > 0 && feasible(inactives[0]) {
			feasibleCount += n
		}
		if feasibleCount < stages {
			return Decision{}, ErrNoCapacity
		}
	}
	// Worst fit: stable selection of the GPUs with the largest
	// normalized free-memory share (equal-capacity GPUs compare raw free
	// MB, so homogeneous fleets rank exactly as before normalization).
	for i := 0; i < stages; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if moreFreeMem(cands[j], cands[best]) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	id := s.nextID(req.Func)
	d := Decision{Instance: id, Func: req.Func}
	for i := 0; i < stages; i++ {
		pl := &cluster.Placement{
			Instance: stageID(id, i), Func: req.Func,
			Req: p.SMReq, Lim: p.SMLim, MemMB: p.MemMB,
		}
		if err := cands[i].g.Place(pl); err != nil {
			d.Release()
			return Decision{}, err
		}
		d.GPUs = append(d.GPUs, cands[i].g)
		d.Placements = append(d.Placements, pl)
	}
	return d, nil
}

// placeExclusiveStages is the -RC fallback: each stage takes a fresh GPU.
func (s *Dilu) placeExclusiveStages(req Request, stages int) (Decision, error) {
	prof := shardProfile(req.Profile, stages)
	id := s.nextID(req.Func)
	d := Decision{Instance: id, Func: req.Func}
	for i := 0; i < stages; i++ {
		g := s.freshGPU(prof)
		if g == nil {
			d.Release()
			return Decision{}, ErrNoCapacity
		}
		pl := &cluster.Placement{
			Instance: stageID(id, i), Func: req.Func,
			Req: prof.SMReq, Lim: prof.SMLim, MemMB: prof.MemMB,
		}
		if err := g.Place(pl); err != nil {
			d.Release()
			return Decision{}, err
		}
		d.GPUs = append(d.GPUs, g)
		d.Placements = append(d.Placements, pl)
	}
	return d, nil
}

// affinityGPUs computes 𝐺_WA: active GPUs hosting functions that already
// collocate with req.Func elsewhere (replicating proven collocation
// patterns, Figure 5(b)), excluding GPUs that already host req.Func
// itself so instances of one function spread across fragments.
//
// Both steps are served by the cluster's posting index instead of
// scanning all active GPUs: partners are collected from the GPUs
// hosting fn, and the candidate set is the union of the partners'
// posting lists. The union is sorted back into inventory order and
// deduplicated, which reproduces exactly the list an ActiveGPUs filter
// scan would have built (selectOptGPU breaks score ties toward earlier
// candidates, so the order is part of the contract).
func (s *Dilu) affinityGPUs(fn string) []*cluster.GPU {
	hosts := s.clu.FuncGPUs(fn)
	if len(hosts) == 0 {
		return nil
	}
	if s.partners == nil {
		s.partners = make(map[string]bool, 8)
	}
	partners := s.partners
	clear(partners)
	for _, g := range hosts {
		for f := range g.FuncCounts() {
			if f != fn {
				partners[f] = true
			}
		}
	}
	if len(partners) == 0 {
		return nil
	}
	out := s.affScratch[:0]
	for f := range partners {
		for _, g := range s.clu.FuncGPUs(f) {
			if !g.HostsFunc(fn) {
				out = append(out, g)
			}
		}
	}
	slices.SortFunc(out, func(a, b *cluster.GPU) int { return a.Pos() - b.Pos() })
	out = slices.Compact(out) // a GPU hosting k partners appeared k times
	s.affScratch = out
	return out
}

// selectOptGPU is Algorithm 1's SelectOptGPU: the feasible candidate with
// the minimum weighted fragmentation score. GPUs already hosting the
// function are soft-penalized so replicas of one function spread over
// fragments (same-function instances peak together, so stacking them
// recreates the contention the affinity principle avoids).
func (s *Dilu) selectOptGPU(cands []*cluster.GPU, p profiler.Profile, fn string) *cluster.GPU {
	bestScore := 1e18
	bestCold := 2
	var best *cluster.GPU
	for _, g := range cands {
		if !g.Schedulable() {
			continue
		}
		newReq := g.SumReq + p.SMReq
		newLim := g.SumLim + p.SMLim
		newMem := g.MemUsedMB + p.MemMB
		if newReq > s.opts.Omega*g.Capacity+1e-9 || newLim > s.opts.Gamma*g.Capacity+1e-9 || newMem > g.MemCapMB {
			continue
		}
		if g.HostsFunc(fn) && p.Role == profiler.RoleTraining {
			// DDP workers of one job never share a GPU: they would
			// compute in lockstep and simply halve each other.
			continue
		}
		score := s.opts.Alpha * (1 - newReq/g.Capacity)
		if !s.opts.DisableComplementary {
			score += s.opts.Beta * (1 - newMem/g.MemCapMB)
		}
		if g.HostsFunc(fn) {
			score += 0.5
		}
		// Lexicographic argmin of (score, kernel-cache coldness) with
		// scan order breaking full ties — identical to the plain argmin
		// unless cache affinity is on and a node cache is warm.
		cold := s.cacheCold(g, fn)
		if score < bestScore || (score == bestScore && cold < bestCold) {
			bestScore, bestCold, best = score, cold, g
		}
	}
	return best
}

// cacheCold is the kernel-cache tie-break key: 0 when the GPU's node
// holds compiled kernels for fn and cache affinity is enabled, 1
// otherwise — so warmer nodes win score ties. With affinity off (or no
// cache configured) every GPU keys 1 and the tie-break degenerates to
// the historical scan/position order.
func (s *Dilu) cacheCold(g *cluster.GPU, fn string) int {
	if s.opts.KernelCacheAffinity && g.Node != nil && g.Node.KernelsWarm(fn) {
		return 0
	}
	return 1
}

// selectOptGPUActive is selectOptGPU over the whole active set, served
// by the cluster's occupancy index instead of a slice scan. Buckets are
// walked from most- to least-occupied; a bucket whose ΣReq upper bound
// already lower-bounds every remaining score above the best found so
// far ends the walk, so the scan touches only the occupancy bands that
// could still win.
//
// Equivalence with selectOptGPU(ActiveGPUs()): that scan takes the
// first (inventory-order) candidate achieving the minimum score, i.e.
// the lexicographic argmin of (score, cacheCold, Pos) — the cache-
// coldness key degenerates to a constant unless kernel-cache affinity
// is enabled. Bucket order is arbitrary, so the same argmin is computed
// explicitly; and since the SM term alone satisfies score ≥ α·(1 −
// (util + req/cap)) ≥ α·(1 − (ub + req/min-cap)) — the memory term and
// the same-function penalty are non-negative — a bucket bound strictly
// above bestScore proves no remaining candidate can beat *or tie* it
// (the break fires only on strict >, so equal-score candidates that
// could win the coldness/position tie-break are still scanned).
func (s *Dilu) selectOptGPUActive(p profiler.Profile, fn string) *cluster.GPU {
	if s.clu.ShardCount() > 1 {
		// Sharded inventory: fan the walk out over the shards (bit-exact
		// merge under the same total order; see parallel.go).
		return s.selectOptGPUActiveSharded(p, fn)
	}
	// Buckets whose normalized-utilization lower bound already breaks Ω
	// for even the largest-capacity GPU hold no feasible candidate;
	// start below them. (On a homogeneous fleet MaxCapacity is 1.0 and
	// x/1.0 ≡ x, so the bound is bit-identical to the pre-capacity one.)
	headroom := s.opts.Omega + 1e-9 - p.SMReq/s.clu.MaxCapacity()
	if headroom < 0 {
		return nil
	}
	start := cluster.OccupancyBucketOf(headroom)
	bestScore := 1e18
	bestCold := 2
	bestPos := -1
	var best *cluster.GPU
	// The posting index answers "does any GPU host fn" once, up front:
	// when it is empty (the common case for per-instance function names)
	// both HostsFunc checks below are statically false, saving a string
	// map lookup per candidate — the dominant cost of the 32k-instance
	// hyperscale batch profile.
	hostsAny := len(s.clu.FuncGPUs(fn)) > 0
	for b := start; b >= 0; b-- {
		// Everything in buckets ≤ b has utilization < (b+1)/Buckets (the
		// top bucket is clamped, but the walk starts at most there and
		// its bound is checked after scanning it). The score lower bound
		// divides the request by the smallest capacity in the fleet —
		// the largest possible normalized increment.
		if best != nil {
			ub := float64(b+1) / cluster.OccupancyBuckets
			if s.opts.Alpha*(1-(ub+p.SMReq/s.clu.MinCapacity())) > bestScore {
				break
			}
		}
		for _, g := range s.clu.OccupancyBucket(b) {
			if !g.Schedulable() {
				continue
			}
			newReq := g.SumReq + p.SMReq
			newLim := g.SumLim + p.SMLim
			newMem := g.MemUsedMB + p.MemMB
			if newReq > s.opts.Omega*g.Capacity+1e-9 || newLim > s.opts.Gamma*g.Capacity+1e-9 || newMem > g.MemCapMB {
				continue
			}
			hosts := hostsAny && g.HostsFunc(fn)
			if hosts && p.Role == profiler.RoleTraining {
				continue
			}
			score := s.opts.Alpha * (1 - newReq/g.Capacity)
			if !s.opts.DisableComplementary {
				score += s.opts.Beta * (1 - newMem/g.MemCapMB)
			}
			if hosts {
				score += 0.5
			}
			cold := s.cacheCold(g, fn)
			if score < bestScore || (score == bestScore &&
				(cold < bestCold || (cold == bestCold && g.Pos() < bestPos))) {
				bestScore, bestCold, bestPos, best = score, cold, g.Pos(), g
			}
		}
	}
	return best
}

// freshGPU starts a new GPU instance (line 16): the first inactive GPU
// whose class can host the profile (Capacity ≥ max(req/Ω, lim/γ) and
// the memory fits), served by the cluster's free index instead of an
// inventory scan. On a homogeneous fleet every fresh GPU fits, so the
// result is exactly the old FirstInactive.
func (s *Dilu) freshGPU(p profiler.Profile) *cluster.GPU {
	minCap := p.SMReq / s.opts.Omega
	if lc := p.SMLim / s.opts.Gamma; lc > minCap {
		minCap = lc
	}
	return s.clu.FirstInactiveFit(minCap, p.MemMB)
}

// ---------------------------------------------------------------------------
// Baselines.

// Exclusive allocates one whole GPU per instance (pass-through), the
// common scheme of ElasticFlow/Hydrozoa-style systems.
type Exclusive struct {
	clu *cluster.Cluster
	seq int
}

// NewExclusive builds the baseline.
func NewExclusive(clu *cluster.Cluster) *Exclusive { return &Exclusive{clu: clu} }

// Name implements Scheduler.
func (s *Exclusive) Name() string { return "Exclusive" }

// Cluster implements Scheduler.
func (s *Exclusive) Cluster() *cluster.Cluster { return s.clu }

// Schedule implements Scheduler: every instance (and every stage of a
// multi-GPU instance) occupies a dedicated GPU with full quotas.
func (s *Exclusive) Schedule(req Request) ([]Decision, error) {
	if req.Instances <= 0 {
		req.Instances = 1
	}
	stages := req.GPUsPerInstance
	if stages <= 0 {
		stages = 1
	}
	var out []Decision
	for k := 0; k < req.Instances; k++ {
		s.seq++
		d := Decision{Instance: instanceID(req.Func, s.seq), Func: req.Func}
		for i := 0; i < stages; i++ {
			// Any capacity class serves an exclusive reservation; the
			// class's memory must still fit the (per-stage) model.
			g := s.clu.FirstInactiveFit(0, req.Profile.MemMB/float64(stages))
			if g == nil {
				d.Release()
				for _, prev := range out {
					prev.Release()
				}
				return nil, ErrNoCapacity
			}
			pl := &cluster.Placement{
				Instance: stageID(d.Instance, i), Func: req.Func,
				// The whole device is reserved: on a fractional-capacity
				// GPU that is Capacity, not 1.0, so normalized
				// utilization reads exactly 1.
				Req: g.Capacity, Lim: g.Capacity, MemMB: req.Profile.MemMB / float64(stages),
				TrueReq: req.Profile.SMReq / float64(stages),
			}
			if err := g.Place(pl); err != nil {
				d.Release()
				return nil, err
			}
			d.GPUs = append(d.GPUs, g)
			d.Placements = append(d.Placements, pl)
		}
		out = append(out, d)
	}
	return out, nil
}

// Static is the MPS-based scheduler shared by INFless+ and FaST-GS+:
// fixed quotas (limit or request flavor), best-fit by SM, no
// oversubscription (Σ quota ≤ 1, as MPS thread percentages cannot
// exceed the device), no workload affinity, and no multi-GPU sharding —
// LLM instances fall back to dedicated GPUs per stage.
type Static struct {
	label    string
	useLimit bool
	clu      *cluster.Cluster
	seq      int

	// Sharded-scan state, as on Dilu (see parallel.go).
	pool        *sim.Pool
	bestScratch []shardBest
}

// NewINFlessL builds INFless+ with limit quotas.
func NewINFlessL(clu *cluster.Cluster) *Static {
	return &Static{label: "INFless+-l", useLimit: true, clu: clu}
}

// NewINFlessR builds INFless+ with request quotas.
func NewINFlessR(clu *cluster.Cluster) *Static {
	return &Static{label: "INFless+-r", useLimit: false, clu: clu}
}

// NewFaSTGS builds FaST-GS+ (spatially identical to MPS-l).
func NewFaSTGS(clu *cluster.Cluster) *Static {
	return &Static{label: "FaST-GS+", useLimit: true, clu: clu}
}

// Name implements Scheduler.
func (s *Static) Name() string { return s.label }

// Cluster implements Scheduler.
func (s *Static) Cluster() *cluster.Cluster { return s.clu }

func (s *Static) quota(p profiler.Profile) float64 {
	if s.useLimit {
		return p.SMLim
	}
	return p.SMReq
}

// shardProfile divides a whole-instance profile over pipeline stages.
func shardProfile(p profiler.Profile, stages int) profiler.Profile {
	if stages <= 1 {
		return p
	}
	n := float64(stages)
	p.SMReq /= n
	p.SMLim /= n
	p.MemMB /= n
	return p
}

// Schedule implements Scheduler.
func (s *Static) Schedule(req Request) ([]Decision, error) {
	if req.Instances <= 0 {
		req.Instances = 1
	}
	stages := req.GPUsPerInstance
	if stages <= 0 {
		stages = 1
	}
	prof := shardProfile(req.Profile, stages)
	q := s.quota(prof)
	var out []Decision
	fail := func(err error) ([]Decision, error) {
		for _, prev := range out {
			prev.Release()
		}
		return nil, err
	}
	for k := 0; k < req.Instances; k++ {
		s.seq++
		d := Decision{Instance: instanceID(req.Func, s.seq), Func: req.Func}
		for i := 0; i < stages; i++ {
			g := s.pick(q, prof.MemMB, stages > 1)
			if g == nil {
				d.Release()
				return fail(ErrNoCapacity)
			}
			pl := &cluster.Placement{
				Instance: stageID(d.Instance, i), Func: req.Func,
				Req: q, Lim: q, MemMB: prof.MemMB,
				TrueReq: prof.SMReq,
			}
			if err := g.Place(pl); err != nil {
				d.Release()
				return fail(err)
			}
			d.GPUs = append(d.GPUs, g)
			d.Placements = append(d.Placements, pl)
		}
		out = append(out, d)
	}
	return out, nil
}

// pick is the Static best-fit: the feasible active GPU with the least
// free SM share, ties toward inventory order. It walks the occupancy
// index from the most-occupied bucket that still has Σreq ≤ 1−q
// headroom downward; within a bucket (unordered) the inventory-scan tie
// order is reproduced by taking the lexicographic argmin of (free, Pos).
//
// Stopping rule: a lower bucket has strictly smaller ΣReq, so by
// monotonicity of exact rounding its free share 1−ΣReq is ≥ the best's
// — it can tie but never win. Ties across buckets are real: 1−x
// collapses ΣReq values one ulp apart onto the same free (e.g. ΣReq
// 0.25 and 0.25−2⁻⁵⁴ both yield free 0.75, one bucket apart), and the
// reference scan resolves such ties toward the earlier GPU. The
// collapse interval is ~1 ulp of free — vastly narrower than a 1/64
// bucket — so scanning exactly one bucket below the first hit covers
// every possible tie. (The differential replay in
// experiments/sched_equiv_test.go caught this on the §5.5 mix.)
// MPS thread percentages cannot exceed the device, so feasibility is
// ΣReq + q ≤ Capacity per GPU and the free share is 1 − util. On a
// homogeneous fleet Capacity is 1.0 and util ≡ ΣReq bit-for-bit, so
// selection is unchanged from the pre-capacity code.
func (s *Static) pick(q, memMB float64, wholeGPU bool) *cluster.GPU {
	if wholeGPU {
		return s.clu.FirstInactiveFit(q, memMB)
	}
	if s.clu.ShardCount() > 1 {
		// Sharded inventory: per-shard walks merged under (free, Pos) —
		// bit-exact with the serial walk (see parallel.go).
		if g := s.pickSharded(q, memMB); g != nil {
			return g
		}
		return s.clu.FirstInactiveFit(q, memMB)
	}
	headroom := 1 + 1e-9 - q/s.clu.MaxCapacity()
	if headroom >= 0 {
		var best *cluster.GPU
		bestFree := 2.0
		bestPos := -1
		stopBelow := -1
		for b := cluster.OccupancyBucketOf(headroom); b >= 0; b-- {
			if best != nil && b < stopBelow {
				break
			}
			for _, g := range s.clu.OccupancyBucket(b) {
				if !g.Schedulable() {
					continue
				}
				if g.SumReq+q > g.Capacity+1e-9 || g.MemUsedMB+memMB > g.MemCapMB {
					continue
				}
				free := 1 - g.Util()
				if free < bestFree || (free == bestFree && g.Pos() < bestPos) {
					bestFree, bestPos, best = free, g.Pos(), g
				}
			}
			if best != nil && stopBelow == -1 {
				stopBelow = b - 1 // one more bucket: rounding-collapse ties
			}
		}
		if best != nil {
			return best
		}
	}
	return s.clu.FirstInactiveFit(q, memMB)
}

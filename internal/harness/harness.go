// Package harness runs experiment suites on a worker pool. Each job is
// one driver at one (seed, scale) and executes on its own independent
// simulation engines (sim.Engine is single-threaded by design; see
// internal/sim), so jobs parallelize perfectly. The harness collects
// per-run timing — wall time, virtual time simulated, and
// virtual-seconds-per-wall-second throughput — and aggregates results
// into a deterministic, seed-reproducible suite manifest whose bytes do
// not depend on worker count or completion order.
//
// This is the enabling layer for sweep-style scenarios: sensitivity
// grids, multi-seed confidence intervals, and large-cluster scaling
// curves all decompose into independent jobs the pool can drain.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dilu/internal/experiments"
	"dilu/internal/report"
	"dilu/internal/sim"
)

// Job is one unit of suite work: one driver run at one (seed, scale).
// Run receives a fresh meter the harness uses for virtual-time
// accounting; implementations must attach it to every engine they build
// (experiments.Options.Meter does this for all registry drivers).
type Job struct {
	Driver string
	Paper  string
	Tier   experiments.Tier
	Seed   int64
	Scale  float64
	Run    func(m *sim.Meter) *report.Report
}

// Key identifies the job inside the manifest (see report.RunKey).
func (j Job) Key() string { return report.RunKey(j.Driver, j.Seed, j.Scale) }

// Jobs expands drivers × seeds at one scale into the job list, in
// registry order with seeds ascending per driver — the deterministic
// submission order the manifest is keyed by. Seed and scale are
// normalized the way every driver normalizes them (seed 0→1, scale
// clamped to [0.1, …]) so manifest records state the parameters that
// actually ran; jobs that normalize to the same key are deduplicated.
func Jobs(drivers []experiments.Driver, seeds []int64, scale float64) []Job {
	return JobsSharded(drivers, seeds, scale, 0)
}

// JobsSharded is Jobs with a replay shard count threaded into every
// job's Options (see experiments.Options.Shards). Shards appears in
// neither the manifest key nor the record: results are byte-identical at
// any shard count — that invariance is exactly what `make manifest-check`
// verifies — so recording it would only suggest it matters.
func JobsSharded(drivers []experiments.Driver, seeds []int64, scale float64, shards int) []Job {
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	seen := map[string]bool{}
	var out []Job
	for _, d := range drivers {
		d := d
		for _, seed := range seeds {
			opts := experiments.Options{Scale: scale, Seed: seed, Shards: shards}.Normalized()
			job := Job{
				Driver: d.ID,
				Paper:  d.Paper,
				Tier:   d.Tier,
				Seed:   opts.Seed,
				Scale:  opts.Scale,
				Run: func(m *sim.Meter) *report.Report {
					o := opts
					o.Meter = m
					return d.Run(o)
				},
			}
			if seen[job.Key()] {
				continue
			}
			seen[job.Key()] = true
			out = append(out, job)
		}
	}
	return out
}

// EventType distinguishes progress callbacks.
type EventType int

const (
	// JobStart fires when a worker picks the job up.
	JobStart EventType = iota
	// JobDone fires when the job finishes (any status).
	JobDone
)

// Event is one progress notification. Events for different jobs may be
// emitted concurrently; the harness serializes callback invocations.
type Event struct {
	Type   EventType
	Job    Job
	Index  int // position in the submitted job list
	Total  int
	Done   int // completed jobs including this one (JobDone only)
	Result *Result
}

// Config tunes a suite run.
type Config struct {
	// Suite names the manifest (e.g. "dilu-bench").
	Suite string
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Timeout bounds each job's wall time; 0 disables. A timed-out job's
	// goroutine cannot be killed (drivers are not cancellable) — it is
	// abandoned and its eventual result discarded, so a pathological
	// hang costs one oversubscribed slot, not the suite.
	Timeout time.Duration
	// FailFast stops dispatching new jobs after the first failure or
	// timeout; undispatched jobs are recorded as skipped.
	FailFast bool
	// OnEvent, when non-nil, receives serialized progress events.
	OnEvent func(Event)
}

// Result is the outcome of one job.
type Result struct {
	Job     Job
	Status  report.RunStatus
	Err     error
	Report  *report.Report // nil unless Status == RunOK
	Wall    time.Duration
	Virtual sim.Duration
	Engines int64
}

// Outcome is the full result of a suite run.
type Outcome struct {
	// Results are in job submission order, one per submitted job.
	Results []Result
	// Manifest is the deterministic suite record.
	Manifest *report.Manifest
	// Wall is the suite's total wall time.
	Wall time.Duration
}

// Failed reports whether any run did not complete ok.
func (o *Outcome) Failed() bool {
	for _, r := range o.Results {
		if r.Status != report.RunOK {
			return true
		}
	}
	return false
}

// Run drains the job list through the worker pool and assembles the
// outcome. The manifest (and Results order) is deterministic for a given
// job list regardless of cfg.Parallel; see Config for the fail-fast and
// timeout caveats.
func Run(cfg Config, jobs []Job) *Outcome {
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}

	start := time.Now()
	results := make([]Result, len(jobs))

	var mu sync.Mutex // serializes OnEvent and the done counter
	done := 0
	emit := func(ev Event) {
		if cfg.OnEvent == nil {
			return
		}
		mu.Lock()
		if ev.Type == JobDone {
			done++
			ev.Done = done
		}
		ev.Total = len(jobs)
		cfg.OnEvent(ev)
		mu.Unlock()
	}

	// stop flips once under FailFast; workers then drain the queue by
	// marking remaining jobs skipped without running them.
	var stopMu sync.Mutex
	stopped := false
	shouldStop := func() bool {
		stopMu.Lock()
		defer stopMu.Unlock()
		return stopped
	}
	stop := func() {
		stopMu.Lock()
		stopped = true
		stopMu.Unlock()
	}

	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				job := jobs[idx]
				if cfg.FailFast && shouldStop() {
					results[idx] = Result{Job: job, Status: report.RunSkipped,
						Err: fmt.Errorf("harness: skipped by fail-fast")}
					emit(Event{Type: JobDone, Job: job, Index: idx, Result: &results[idx]})
					continue
				}
				emit(Event{Type: JobStart, Job: job, Index: idx})
				res := runOne(job, cfg.Timeout)
				results[idx] = res
				if cfg.FailFast && res.Status != report.RunOK {
					stop()
				}
				emit(Event{Type: JobDone, Job: job, Index: idx, Result: &results[idx]})
			}
		}()
	}
	for idx := range jobs {
		queue <- idx
	}
	close(queue)
	wg.Wait()

	out := &Outcome{Results: results, Wall: time.Since(start)}
	out.Manifest = buildManifest(cfg.Suite, results)
	return out
}

// runOne executes a single job, recovering panics and enforcing the
// per-job timeout.
func runOne(job Job, timeout time.Duration) Result {
	type payload struct {
		rep *report.Report
		err error
	}
	meter := new(sim.Meter)
	begin := time.Now()
	ch := make(chan payload, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- payload{err: fmt.Errorf("harness: %s panicked: %v", job.Key(), r)}
			}
		}()
		ch <- payload{rep: job.Run(meter)}
	}()

	var p payload
	if timeout > 0 {
		select {
		case p = <-ch:
		case <-time.After(timeout):
			// Keep the error wall-clock-free: it lands in the manifest's
			// Error field, whose bytes must be reproducible.
			return Result{
				Job: job, Status: report.RunTimeout,
				Err:  fmt.Errorf("harness: %s exceeded timeout %s", job.Key(), timeout),
				Wall: time.Since(begin), Virtual: meter.Virtual(), Engines: meter.Engines(),
			}
		}
	} else {
		p = <-ch
	}
	wall := time.Since(begin)
	res := Result{Job: job, Wall: wall, Virtual: meter.Virtual(), Engines: meter.Engines()}
	switch {
	case p.err != nil:
		res.Status, res.Err = report.RunFailed, p.err
	case p.rep == nil:
		res.Status, res.Err = report.RunFailed, fmt.Errorf("harness: %s returned a nil report", job.Key())
	default:
		res.Status, res.Report = report.RunOK, p.rep
	}
	return res
}

// buildManifest turns results into the deterministic suite manifest.
// Timing fields are carried on the records for TimingTable but excluded
// from the manifest's serialized bytes (see report.RunRecord).
func buildManifest(suite string, results []Result) *report.Manifest {
	m := report.NewManifest(suite)
	for _, r := range results {
		rec := report.RunRecord{
			Driver: r.Job.Driver,
			Paper:  r.Job.Paper,
			Tier:   string(r.Job.Tier),
			Seed:   r.Job.Seed,
			Scale:  r.Job.Scale,
			Status: r.Status,
		}
		if r.Err != nil {
			rec.Error = r.Err.Error()
		}
		if r.Status == report.RunOK {
			rec.Fingerprint = report.Fingerprint(r.Report)
			rec.Tables = len(r.Report.Tables)
			rec.Series = len(r.Report.Series)
			rec.SLO = report.SLOBlockOf(r.Report.SLO)
		}
		// Timed-out and failed runs may have advanced virtual time, but
		// the amount is racy (it depends on where the run was cut off),
		// so only completed runs contribute deterministic virtual time.
		if r.Status == report.RunOK {
			rec.VirtualSeconds = sim.Time(r.Virtual).Seconds()
			rec.Engines = r.Engines
		}
		rec.WallSeconds = r.Wall.Seconds()
		if r.Wall > 0 {
			// From rec.VirtualSeconds, not r.Virtual: a cut-off run's
			// meter reading is racy, so its throughput is withheld along
			// with its virtual time.
			rec.Throughput = rec.VirtualSeconds / r.Wall.Seconds()
		}
		m.Add(rec)
	}
	m.Normalize()
	return m
}

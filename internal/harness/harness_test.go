package harness

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dilu/internal/experiments"
	"dilu/internal/report"
	"dilu/internal/sim"
)

// fakeJob builds a synthetic job whose report content depends only on id
// and seed, with an optional artificial delay.
func fakeJob(id string, seed int64, delay time.Duration, fail bool) Job {
	return Job{
		Driver: id, Paper: "fake", Tier: experiments.TierQuick, Seed: seed, Scale: 1,
		Run: func(m *sim.Meter) *report.Report {
			if delay > 0 {
				time.Sleep(delay)
			}
			if fail {
				panic("synthetic failure")
			}
			m.AddVirtual(42 * sim.Second)
			rep := report.New(id, "fake "+id)
			rep.AddTable(report.NewTable("t", "k", "v")).AddRow(id, fmt.Sprintf("%d", seed))
			return rep
		},
	}
}

func fakeSuite(n int) []Job {
	var jobs []Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, fakeJob(fmt.Sprintf("job%02d", i), int64(i%3+1), 0, false))
	}
	return jobs
}

func TestManifestIdenticalAcrossParallelism(t *testing.T) {
	run := func(parallel int) string {
		out := Run(Config{Suite: "fake", Parallel: parallel}, fakeSuite(12))
		if out.Failed() {
			t.Fatalf("parallel=%d: suite failed", parallel)
		}
		return out.Manifest.JSON()
	}
	m1, m8 := run(1), run(8)
	if m1 != m8 {
		t.Fatalf("manifest bytes differ between -parallel 1 and -parallel 8:\n%s\nvs\n%s", m1, m8)
	}
}

// The real thing: a subset of quick registry drivers must produce
// byte-identical manifests at parallel 1 vs 8 for the same seed.
func TestRegistryDriversDeterministicAcrossParallelism(t *testing.T) {
	var drivers []experiments.Driver
	for _, id := range []string{"table2", "figure9", "figure14", "figure2"} {
		d, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		drivers = append(drivers, d)
	}
	jobs := Jobs(drivers, []int64{1, 7}, 0.1)
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d, want 8 (4 drivers × 2 seeds)", len(jobs))
	}
	m1 := Run(Config{Suite: "bench", Parallel: 1}, jobs).Manifest.JSON()
	m8 := Run(Config{Suite: "bench", Parallel: 8}, jobs).Manifest.JSON()
	if m1 != m8 {
		t.Fatalf("registry manifest differs across parallelism:\n%s\nvs\n%s", m1, m8)
	}
}

func TestVirtualTimeMetered(t *testing.T) {
	d, err := experiments.ByID("figure9")
	if err != nil {
		t.Fatal(err)
	}
	out := Run(Config{Suite: "s", Parallel: 1}, Jobs([]experiments.Driver{d}, nil, 0.1))
	res := out.Results[0]
	if res.Status != report.RunOK {
		t.Fatalf("status = %s: %v", res.Status, res.Err)
	}
	// figure9 runs 4 pairs × 4 baselines of 10+ virtual seconds each.
	if res.Virtual < 100*sim.Second {
		t.Fatalf("virtual time %v implausibly low — meter not attached?", res.Virtual)
	}
	if res.Engines < 16 {
		t.Fatalf("engines = %d, want ≥ 16", res.Engines)
	}
	rec := out.Manifest.Find("figure9/seed=1/scale=0.1")
	if rec == nil || rec.VirtualSeconds <= 0 {
		t.Fatalf("manifest virtual seconds missing: %+v", rec)
	}
}

func TestTimeoutMarksRunAndSuiteContinues(t *testing.T) {
	jobs := []Job{
		fakeJob("slow", 1, 2*time.Second, false),
		fakeJob("fast", 1, 0, false),
	}
	out := Run(Config{Suite: "s", Parallel: 1, Timeout: 50 * time.Millisecond}, jobs)
	if out.Results[0].Status != report.RunTimeout {
		t.Fatalf("slow job status = %s", out.Results[0].Status)
	}
	if out.Results[1].Status != report.RunOK {
		t.Fatalf("fast job status = %s (suite did not continue)", out.Results[1].Status)
	}
	if out.Manifest.Totals.Timeout != 1 || out.Manifest.Totals.OK != 1 {
		t.Fatalf("totals %+v", out.Manifest.Totals)
	}
}

func TestFailFastSkipsRemaining(t *testing.T) {
	jobs := []Job{
		fakeJob("boom", 1, 0, true),
		fakeJob("a", 1, 10*time.Millisecond, false),
		fakeJob("b", 1, 10*time.Millisecond, false),
	}
	out := Run(Config{Suite: "s", Parallel: 1, FailFast: true}, jobs)
	if out.Results[0].Status != report.RunFailed {
		t.Fatalf("first job status = %s", out.Results[0].Status)
	}
	for i := 1; i < 3; i++ {
		if out.Results[i].Status != report.RunSkipped {
			t.Fatalf("job %d status = %s, want skipped", i, out.Results[i].Status)
		}
	}
	if !out.Failed() {
		t.Fatal("outcome should report failure")
	}
}

func TestPanicBecomesFailedResult(t *testing.T) {
	out := Run(Config{Suite: "s", Parallel: 2}, []Job{
		fakeJob("boom", 1, 0, true),
		fakeJob("ok", 1, 0, false),
	})
	if out.Results[0].Status != report.RunFailed || out.Results[0].Err == nil {
		t.Fatalf("panic result: %+v", out.Results[0])
	}
	if out.Results[1].Status != report.RunOK {
		t.Fatalf("healthy job dragged down: %+v", out.Results[1])
	}
	rec := out.Manifest.Find("boom/seed=1/scale=1")
	if rec == nil || rec.Status != report.RunFailed || rec.Error == "" {
		t.Fatalf("manifest record: %+v", rec)
	}
}

func TestProgressEventsSerializedAndComplete(t *testing.T) {
	var mu sync.Mutex
	starts, dones := 0, 0
	lastDone := 0
	cfg := Config{Suite: "s", Parallel: 4, OnEvent: func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Type {
		case JobStart:
			starts++
		case JobDone:
			dones++
			if ev.Done <= lastDone {
				t.Errorf("done counter not monotonic: %d after %d", ev.Done, lastDone)
			}
			lastDone = ev.Done
			if ev.Result == nil {
				t.Error("JobDone without result")
			}
		}
	}}
	out := Run(cfg, fakeSuite(10))
	if starts != 10 || dones != 10 {
		t.Fatalf("events: %d starts, %d dones, want 10/10", starts, dones)
	}
	if out.Failed() {
		t.Fatal("suite failed")
	}
}

func TestJobsDefaultsSeed(t *testing.T) {
	d, _ := experiments.ByID("table2")
	jobs := Jobs([]experiments.Driver{d}, nil, 0.5)
	if len(jobs) != 1 || jobs[0].Seed != 1 || jobs[0].Scale != 0.5 {
		t.Fatalf("jobs = %+v", jobs)
	}
	if jobs[0].Key() != "table2/seed=1/scale=0.5" {
		t.Fatalf("key = %s", jobs[0].Key())
	}
}

func TestJobsNormalizeAndDedupe(t *testing.T) {
	d, _ := experiments.ByID("table2")
	// Seed 0 normalizes to 1 (what the driver actually runs), so the
	// manifest key must say seed=1 — and seeds {0, 1} are one job.
	jobs := Jobs([]experiments.Driver{d}, []int64{0, 1}, 0.05)
	if len(jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 after normalization dedupe", len(jobs))
	}
	if jobs[0].Key() != "table2/seed=1/scale=0.1" {
		t.Fatalf("key = %s, want normalized seed=1 scale=0.1", jobs[0].Key())
	}
}

package core

import (
	"dilu/internal/instance"
	"dilu/internal/sim"
)

// Request resilience: per-request timeouts with capped-exponential-
// backoff retries, and hedged dispatch for deadline-critical requests.
// Both mitigations ride the gateway ledger — retries and hedges draw
// from a per-tenant budget (the SRE retry-budget rule: amplified
// traffic is bounded to a fraction of admitted traffic, so retry storms
// cannot melt an already-degraded fleet) — and both are accounted so
// the request-conservation invariant extends to at-most-once *service*:
// a request may be delivered many times, but exactly one copy is ever
// recorded as served.

// ResilienceConfig enables the request-resilience layer. The zero value
// of each knob picks the documented default; a nil *ResilienceConfig in
// Config disables the layer entirely (no per-request state, no timers,
// byte-identical output).
type ResilienceConfig struct {
	// Timeout re-delivers a request that has not completed this long
	// after admission: the queued copy is stolen from its straggling
	// instance and, after backoff, dispatched to the least-loaded one.
	// Zero disables timeout/retry (hedging may still be on).
	Timeout sim.Duration
	// BackoffBase and BackoffCap shape the capped exponential backoff:
	// attempt n waits Base·2^(n-1), at most Cap. Defaults 100 ms / 2 s.
	// The schedule is a pure function of the attempt number — no jitter
	// — so runs are deterministic.
	BackoffBase sim.Duration
	BackoffCap  sim.Duration
	// MaxAttempts bounds deliveries per request including the first
	// (default 3). 1 means never retry.
	MaxAttempts int
	// RetryBudget caps per-tenant amplification: retries + hedges may
	// not exceed this fraction of the tenant's admitted requests
	// (default 0.1).
	RetryBudget float64
	// HedgeDelay, when > 0, dispatches a speculative second copy of a
	// deadline-carrying request that is still unfinished this long
	// after admission. First completion wins; the loser is canceled
	// (stolen if queued, discarded unrecorded if executing). Zero
	// disables hedging.
	HedgeDelay sim.Duration
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * sim.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * sim.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.1
	}
	return c
}

// Backoff returns the wait before delivering attempt n (n ≥ 1):
// Base·2^(n-1) capped at Cap. Deterministic — the property tests pin
// this schedule.
func (c *ResilienceConfig) Backoff(attempt int) sim.Duration {
	d := c.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.BackoffCap {
			return c.BackoffCap
		}
	}
	if d > c.BackoffCap {
		return c.BackoffCap
	}
	return d
}

// ResilienceStats counts one function's mitigation outcomes.
type ResilienceStats struct {
	// Timeouts counts timeout firings that acted (stole a queued copy);
	// every one produces a retry, so Timeouts == Retries today, kept
	// separate for when executing-copy timeouts gain a distinct action.
	Timeouts int64
	// Retries counts redeliveries; RetrySuccess counts requests whose
	// recorded completion came from a redelivered copy.
	Retries      int64
	RetrySuccess int64
	// Hedges counts speculative duplicates dispatched; HedgeWins counts
	// races the hedge copy won; HedgeDiscards counts loser completions
	// suppressed by the at-most-once gate.
	Hedges        int64
	HedgeWins     int64
	HedgeDiscards int64
}

// resilience is the per-function request-resilience state. Allocated
// only when Config.Resilience is set; every hot path guards on nil.
type resilience struct {
	cfg *ResilienceConfig
	// done marks request IDs whose service was recorded — the
	// at-most-once gate. len(done) == Function.Served() is invariant.
	done map[int64]bool
	// copies tracks live delivery copies per request, present only
	// while a hedge race is unresolved (value always 2).
	copies map[int64]int
	// parked counts requests sitting in backoff — in no queue, yet
	// still in flight for the conservation ledger.
	parked int64
	// extra counts live duplicate copies beyond the first: the
	// conservation invariant checks recount == in-flight + extra.
	extra int64
	stats ResilienceStats
}

func newResilience(cfg *ResilienceConfig) *resilience {
	return &resilience{cfg: cfg, done: make(map[int64]bool), copies: make(map[int64]int)}
}

// dropCopy settles a resolved hedge race: one duplicate copy left the
// system (stolen, discarded, or dropped in redispatch).
func (r *resilience) dropCopy(id int64) {
	if r.copies[id] > 0 {
		r.extra--
		delete(r.copies, id)
	}
}

// ExtraCopies returns live duplicate delivery copies (hedge races in
// flight); the conservation invariant adds it to the ledger in-flight
// count before comparing against the recount.
func (f *Function) ExtraCopies() int64 {
	if f.res == nil {
		return 0
	}
	return f.res.extra
}

// UniqueServed returns the number of distinct requests recorded as
// served; ok is false when resilience is off (no duplicate tracking —
// every service is unique by construction).
func (f *Function) UniqueServed() (n int64, ok bool) {
	if f.res == nil {
		return 0, false
	}
	return int64(len(f.res.done)), true
}

// ResilienceStats returns the function's mitigation counters (zero
// value when resilience is off).
func (f *Function) ResilienceStats() ResilienceStats {
	if f.res == nil {
		return ResilienceStats{}
	}
	return f.res.stats
}

// armResilience schedules the timeout and hedge checks for a freshly
// admitted request. Timers are per attempt, not per enqueue: an abort/
// redispatch keeps the original clock running, so a request's timeout
// covers its total time in the system.
func (f *Function) armResilience(req instance.Request, now sim.Time) {
	cfg := f.res.cfg
	if cfg.Timeout > 0 && cfg.MaxAttempts > 1 {
		f.armTimeout(req, now)
	}
	if cfg.HedgeDelay > 0 && req.Deadline > 0 {
		f.armHedge(req, now)
	}
}

// armTimeout schedules the timeout check for the given delivery
// attempt. Exactly one timer exists per attempt: a retry arms the next
// attempt's timer, so a fired timer is never stale.
func (f *Function) armTimeout(req instance.Request, now sim.Time) {
	f.sys.Eng.Schedule(now+f.res.cfg.Timeout, func(at sim.Time) {
		f.fireTimeout(req.ID, req.Tenant, at)
	})
}

// fireTimeout is the timeout action: if the request is still waiting in
// some queue (gateway pending or an instance's local queue) and the
// tenant's retry budget allows, steal that copy and redeliver it after
// backoff. An executing copy is left alone — its work is sunk and a
// batch completes within bounded time; killing it buys nothing the
// hedge path doesn't do better.
func (f *Function) fireTimeout(id int64, tenant string, at sim.Time) {
	r := f.res
	if r.done[id] {
		return
	}
	ts := f.sys.tenantStats(tenant)
	if float64(ts.Retries+ts.Hedges) >= r.cfg.RetryBudget*float64(ts.Admitted) {
		return // budget exhausted: the request keeps waiting where it is
	}
	req, ok := f.stealCopy(id)
	if !ok {
		return // executing or parked: nothing to steal
	}
	r.stats.Timeouts++
	r.stats.Retries++
	ts.Retries++
	req.Attempt++
	r.parked++
	f.sys.Eng.After(r.cfg.Backoff(req.Attempt), func(at sim.Time) {
		f.unpark(req, at)
	})
}

// unpark redelivers a backed-off request and arms the next attempt's
// timeout while attempts remain.
func (f *Function) unpark(req instance.Request, now sim.Time) {
	r := f.res
	r.parked--
	if r.done[req.ID] {
		r.dropCopy(req.ID) // a hedge twin completed during the backoff
		return
	}
	req.Dispatch = now
	if in := f.pickLeastLoaded(); in != nil {
		f.enqueue(in, req)
	} else {
		f.pending = append(f.pending, req)
	}
	if req.Attempt+1 < r.cfg.MaxAttempts {
		f.armTimeout(req, now)
	}
}

// armHedge schedules the hedge check for a deadline-carrying request.
func (f *Function) armHedge(req instance.Request, now sim.Time) {
	f.sys.Eng.Schedule(now+f.res.cfg.HedgeDelay, func(at sim.Time) {
		f.fireHedge(req, at)
	})
}

// fireHedge dispatches the speculative duplicate: only when the primary
// copy is still held by some instance (a pending-queued primary means
// there is no capacity for a duplicate either), a *different* instance
// exists to race it on, and the tenant budget allows.
func (f *Function) fireHedge(req instance.Request, at sim.Time) {
	r := f.res
	if r.done[req.ID] || r.copies[req.ID] > 0 {
		return
	}
	ts := f.sys.tenantStats(req.Tenant)
	if float64(ts.Retries+ts.Hedges) >= r.cfg.RetryBudget*float64(ts.Admitted) {
		return
	}
	holder := f.holderOf(req.ID)
	if holder == nil {
		return
	}
	in := f.pickLeastLoadedExcept(holder)
	if in == nil {
		return
	}
	r.copies[req.ID] = 2
	r.extra++
	r.stats.Hedges++
	ts.Hedges++
	hedge := req
	hedge.Hedge = true
	hedge.Dispatch = at
	f.enqueue(in, hedge)
}

// onRequestComplete is the instance completion hook (installed on every
// instance when resilience is on). First completion of a request ID
// wins and is recorded; any later copy is discarded unrecorded. The
// winner also cancels a still-queued loser immediately instead of
// letting it burn a batch slot.
func (f *Function) onRequestComplete(req instance.Request, at sim.Time) bool {
	r := f.res
	if r.done[req.ID] {
		r.stats.HedgeDiscards++
		r.dropCopy(req.ID)
		return false
	}
	r.done[req.ID] = true
	if req.Attempt > 0 {
		r.stats.RetrySuccess++
	}
	if r.copies[req.ID] > 1 {
		if req.Hedge {
			r.stats.HedgeWins++
		}
		if _, ok := f.stealCopy(req.ID); ok {
			r.dropCopy(req.ID)
		}
		// An executing loser resolves at its own completion via the
		// done gate above.
	}
	return true
}

// stealCopy removes one waiting copy of request id from wherever it
// queues: the gateway pending queue, an active instance, or a
// keep-alive instance still draining. Executing copies are not
// stealable.
func (f *Function) stealCopy(id int64) (instance.Request, bool) {
	for i, req := range f.pending {
		if req.ID == id {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			return req, true
		}
	}
	for _, si := range f.active {
		if req, ok := si.inst.StealQueued(id); ok {
			return req, true
		}
	}
	for _, w := range f.warm {
		if w.dead || w.reused {
			continue
		}
		if req, ok := w.si.inst.StealQueued(id); ok {
			return req, true
		}
	}
	return instance.Request{}, false
}

// holderOf returns the instance currently holding (queued or executing)
// a copy of request id, or nil.
func (f *Function) holderOf(id int64) instance.Server {
	for _, si := range f.active {
		if si.inst.HasRequest(id) {
			return si.inst
		}
	}
	for _, w := range f.warm {
		if w.dead || w.reused {
			continue
		}
		if w.si.inst.HasRequest(id) {
			return w.si.inst
		}
	}
	return nil
}

// pickLeastLoadedExcept is pickLeastLoaded skipping one instance — the
// hedge dispatch rule (racing a copy on the same straggler is no race).
func (f *Function) pickLeastLoadedExcept(skip instance.Server) instance.Server {
	var best instance.Server
	bestLoad := 1 << 30
	for _, si := range f.active {
		if si.inst == skip || !si.inst.Active() {
			continue
		}
		if l := si.inst.Load(); l < bestLoad {
			bestLoad = l
			best = si.inst
		}
	}
	return best
}

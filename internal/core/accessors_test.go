package core

import (
	"testing"

	"dilu/internal/sim"
	"dilu/internal/workload"
)

func TestSystemAccessors(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2, Seed: 3})
	if sys.Config().Nodes != 1 || sys.Config().Policy != "Dilu" {
		t.Fatalf("config: %+v", sys.Config())
	}
	if sys.Scheduler().Name() != "Dilu" {
		t.Fatal("scheduler accessor")
	}
	f, err := sys.DeployInference("f", "BERT-base", InferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tj, err := sys.DeployTraining("t", "BERT-base", TrainOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Functions()) != 1 || sys.Functions()[0] != f {
		t.Fatal("functions accessor")
	}
	if len(sys.Jobs()) != 1 || sys.Jobs()[0] != tj {
		t.Fatal("jobs accessor")
	}
	for _, g := range sys.Clu.GPUs() {
		if sys.Manager(g) == nil {
			t.Fatal("manager accessor")
		}
	}
	ticks := 0
	sys.OnTick(func(sim.Time) { ticks++ })
	sys.Run(100 * sim.Millisecond)
	if ticks != 20 {
		t.Fatalf("OnTick fired %d times over 100ms, want 20", ticks)
	}
}

func TestFlushPendingOnActivation(t *testing.T) {
	// Requests arriving while every instance is cold must queue at the
	// function gateway and flush once the cold start completes.
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2, Seed: 3})
	f, err := sys.DeployInference("f", "BERT-base", InferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Deactivate the only instance to emulate an all-cold state, then
	// submit traffic through the gateway.
	si := f.active[0]
	si.inst.SetActive(false)
	for i := 0; i < 5; i++ {
		at := sim.Time(i+1) * 50 * sim.Millisecond
		sys.Eng.Schedule(at, func(now sim.Time) { sys.Submit(now, Request{Func: "f"}) })
	}
	sys.Run(500 * sim.Millisecond)
	if f.Served() != 0 {
		t.Fatal("cold function served requests")
	}
	if len(f.pending) != 5 {
		t.Fatalf("gateway pending = %d, want 5", len(f.pending))
	}
	si.inst.SetActive(true)
	sys.Run(2 * sim.Second)
	if f.Served() != 5 {
		t.Fatalf("served %d after activation, want 5", f.Served())
	}
	if len(f.pending) != 0 {
		t.Fatal("pending not flushed")
	}
}

func TestColdStartDelaysServing(t *testing.T) {
	// A scale-out instance pays the model's cold start; requests beyond
	// the first instance's capacity wait it out.
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2, Seed: 3})
	f, err := sys.DeployInference("f", "RoBERTa-large", InferOpts{
		Arrivals: workload.Constant{RPS: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(sim.Second)
	placementsBefore := 0
	for _, g := range sys.Clu.GPUs() {
		placementsBefore += len(g.Placements)
	}
	f.scaleOut()
	if f.InstancesActive() != 2 {
		t.Fatal("scale-out did not register")
	}
	if f.ColdStarts.Value != 1 {
		t.Fatalf("cold starts = %d", f.ColdStarts.Value)
	}
	placements := 0
	for _, g := range sys.Clu.GPUs() {
		placements += len(g.Placements)
	}
	if placements != placementsBefore+1 {
		t.Fatal("scale-out should reserve a new placement (possibly on a shared GPU — Eq. 1 minimizes GPU count)")
	}
	// The new instance is not serving yet (cold ~2.9s for RoBERTa).
	if f.active[1].inst.Active() {
		t.Fatal("instance active before cold start finished")
	}
	sys.Run(5 * sim.Second)
	if !f.active[1].inst.Active() {
		t.Fatal("instance never activated")
	}
}

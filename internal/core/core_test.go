package core

import (
	"math"
	"testing"

	"dilu/internal/scaler"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

func TestSystemServesInference(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2})
	f, err := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
		Arrivals: workload.Poisson{RPS: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(60 * sim.Second)
	if f.Served() < 1000 {
		t.Fatalf("served %d, want ~1200", f.Served())
	}
	if svr := f.Rec.ViolationRate(); svr > 0.10 {
		t.Fatalf("SVR %.2f%% too high for an uncontended instance", svr*100)
	}
}

func TestSystemTrainingThroughput(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 4})
	tj, err := sys.DeployTraining("bert-t", "BERT-base", TrainOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30 * sim.Second)
	if !tj.Started() {
		t.Fatal("job not placed")
	}
	thr := tj.Throughput(sys.Eng.Now())
	// Two DDP workers at limit quota each ≈ 2× per-worker limit throughput.
	perWorker := tj.Spec.TrainThroughput(tj.Profile.SMLim)
	if thr < 1.5*perWorker {
		t.Fatalf("2-worker throughput %.1f too low (per-worker %.1f)", thr, perWorker)
	}
}

func TestCollocationToyExperiment(t *testing.T) {
	// Figure 2(c)(d): Exclusive uses 4 GPUs (3 BERT-base DDP workers + 1
	// RoBERTa-large inference); collocation uses 3 GPUs, each hosting one
	// training worker + one inference instance. At high RPS collocation
	// should deliver clearly higher inference throughput for fewer GPUs
	// while training loses only a little.
	run := func(collocate bool) (infThr float64, trainThr float64, gpus int) {
		var sys *System
		var pinT, pinI []int
		var instances int
		if collocate {
			sys = MustSystem(Config{Nodes: 1, GPUsPerNode: 3, Policy: "Dilu"})
			pinT, pinI = []int{0, 1, 2}, []int{0, 1, 2}
			instances = 3
		} else {
			sys = MustSystem(Config{Nodes: 1, GPUsPerNode: 4, Policy: "Exclusive"})
			pinT, pinI = []int{0, 1, 2}, []int{3}
			instances = 1
		}
		tj, err := sys.DeployTraining("bert-t", "BERT-base", TrainOpts{Workers: 3, Pin: pinT})
		if err != nil {
			t.Fatal(err)
		}
		f, err := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
			Instances: instances, Pin: pinI,
			Arrivals: workload.Poisson{RPS: 150},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(40 * sim.Second)
		return float64(f.Served()) / 40, tj.Throughput(sys.Eng.Now()), sys.Clu.OccupiedCount()
	}
	exInf, exTrain, exGPUs := run(false)
	coInf, coTrain, coGPUs := run(true)
	if coGPUs >= exGPUs {
		t.Fatalf("collocation should use fewer GPUs: %d vs %d", coGPUs, exGPUs)
	}
	if coInf < 1.2*exInf {
		t.Fatalf("collocated inference throughput %.1f should beat exclusive %.1f by >20%%", coInf, exInf)
	}
	if coTrain < 0.80*exTrain {
		t.Fatalf("collocated training %.1f lost too much vs exclusive %.1f", coTrain, exTrain)
	}
}

func TestLazyScaleOutColdStarts(t *testing.T) {
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 4,
		NewScaler: func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) },
	})
	f, err := sys.DeployInference("bert", "BERT-base", InferOpts{
		Arrivals: workload.Constant{RPS: 260}, // ~2× one instance's capacity
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(120 * sim.Second)
	if f.InstancesActive() < 2 {
		t.Fatalf("sustained overload should add instances: %d", f.InstancesActive())
	}
	if f.ColdStarts.Value < 1 {
		t.Fatal("scale-out must pay a cold start without a warm pool")
	}
}

func TestKeepAliveAvoidsColdStart(t *testing.T) {
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 4,
		NewScaler: func() scaler.Policy { return scaler.NewPredictive() },
	})
	f, err := sys.DeployInference("bert", "BERT-base", InferOpts{Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Force a scale-in then an immediate scale-out: the warm instance
	// must be reused without a cold start.
	sys.Run(2 * sim.Second)
	f.scaleIn(sys.Eng.Now())
	if f.InstancesActive() != 1 {
		t.Fatal("scale-in failed")
	}
	sys.Run(5 * sim.Second)
	f.scaleOut()
	if f.InstancesActive() != 2 {
		t.Fatal("scale-out failed")
	}
	if f.ColdStarts.Value != 0 {
		t.Fatalf("warm reuse still paid %d cold starts", f.ColdStarts.Value)
	}
}

func TestKeepAliveExpiryReleasesGPU(t *testing.T) {
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 4,
		NewScaler: func() scaler.Policy { return scaler.NewPredictive() },
	})
	f, err := sys.DeployInference("bert", "BERT-base", InferOpts{Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(sim.Second)
	before := sys.Clu.Snapshot().MeanMem
	f.scaleIn(sys.Eng.Now())
	sys.Run(30 * sim.Second) // within TTL: memory still held
	if sys.Clu.Snapshot().MeanMem < before*0.99 {
		t.Fatal("keep-alive should hold memory inside the TTL")
	}
	sys.Run(60 * sim.Second) // beyond TTL
	if sys.Clu.Snapshot().MeanMem >= before*0.99 {
		t.Fatal("expired keep-alive did not release memory")
	}
}

func TestTrainTrainCollocationBeatsExclusivePerGPU(t *testing.T) {
	// Figure 9's shape: two training jobs collocated on one GPU deliver
	// more aggregate samples/s/GPU than one job per GPU.
	exclusive := func() float64 {
		sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2, Policy: "Exclusive"})
		a, _ := sys.DeployTraining("a", "BERT-base", TrainOpts{Workers: 1, Pin: []int{0}})
		b, _ := sys.DeployTraining("b", "RoBERTa-large", TrainOpts{Workers: 1, Pin: []int{1}})
		sys.Run(30 * sim.Second)
		return (a.Throughput(sys.Eng.Now())/a.Spec.TrainThroughput(1) +
			b.Throughput(sys.Eng.Now())/b.Spec.TrainThroughput(1)) / 2
	}
	collocated := func() float64 {
		sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 1, Policy: "Dilu"})
		a, _ := sys.DeployTraining("a", "BERT-base", TrainOpts{Workers: 1, Pin: []int{0}})
		b, _ := sys.DeployTraining("b", "RoBERTa-large", TrainOpts{Workers: 1, Pin: []int{0}})
		sys.Run(30 * sim.Second)
		return (a.Throughput(sys.Eng.Now())/a.Spec.TrainThroughput(1) +
			b.Throughput(sys.Eng.Now())/b.Spec.TrainThroughput(1)) / 2
	}
	ex, co := exclusive(), collocated()
	// Exclusive: 1.0 normalized per GPU over two GPUs. Collocated: both on
	// one GPU — per-GPU aggregate should exceed 1.4× exclusive's per-GPU.
	perGPUEx := ex * 2 / 2
	perGPUCo := co * 2 / 1
	if perGPUCo < 1.4*perGPUEx {
		t.Fatalf("collocated per-GPU %.2f should be ≥1.4× exclusive %.2f", perGPUCo, perGPUEx)
	}
}

func TestTrainingJobJCTAndRelease(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2})
	tj, err := sys.DeployTraining("bert-t", "BERT-base", TrainOpts{Workers: 1, TargetIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30 * sim.Second)
	if !tj.Job.Finished() {
		t.Fatal("job should finish 50 iterations in 30s")
	}
	if tj.JCT() <= 0 {
		t.Fatal("JCT missing")
	}
	if sys.Clu.OccupiedCount() != 0 {
		t.Fatalf("finished job must release GPUs, occupied=%d", sys.Clu.OccupiedCount())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2, Seed: 7})
		f, _ := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
			Arrivals: workload.Gamma{RPS: 30, CV: 3},
		})
		tj, _ := sys.DeployTraining("bert-t", "BERT-base", TrainOpts{Workers: 1})
		sys.Run(30 * sim.Second)
		return f.Served(), tj.Throughput(sys.Eng.Now())
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || math.Abs(t1-t2) > 1e-9 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", s1, t1, s2, t2)
	}
}

func TestVerticalScalingProtectsInference(t *testing.T) {
	// Collocate two training jobs with an inference function on one GPU
	// under Dilu vs Uncontrolled (-VS): without token control the
	// trainings' limit grants crush the inference (the paper's ablation
	// reports a >150% SVR increase); Dilu must hold the violation rate
	// far lower.
	run := func(policy string) (float64, float64) {
		sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 1, Policy: policy, Seed: 3})
		if _, err := sys.DeployTraining("gpt2-t", "GPT2-large", TrainOpts{Workers: 1, Pin: []int{0}}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.DeployTraining("rob-t", "RoBERTa-large", TrainOpts{Workers: 1, Pin: []int{0}}); err != nil {
			t.Fatal(err)
		}
		f, err := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
			Pin:      []int{0},
			Arrivals: workload.Gamma{RPS: 40, CV: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(60 * sim.Second)
		return f.Rec.ViolationRate(), f.Rec.P95().Millis()
	}
	diluSVR, diluP95 := run("Dilu")
	uncSVR, uncP95 := run("Uncontrolled")
	if diluSVR >= uncSVR && diluP95 >= uncP95 {
		t.Fatalf("Dilu (svr=%.3f p95=%.0f) should beat uncontrolled (svr=%.3f p95=%.0f)",
			diluSVR, diluP95, uncSVR, uncP95)
	}
}

func TestUnknownConfigErrors(t *testing.T) {
	if _, err := NewSystem(Config{Policy: "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := NewSystem(Config{Scheduler: "nope"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}

func TestGPUSecondsAccounting(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 4})
	_, _ = sys.DeployTraining("t", "BERT-base", TrainOpts{Workers: 2})
	sys.Run(20 * sim.Second)
	used := sys.GPUSecondsUsed()
	// Two GPUs active for ~20s ≈ 40 GPU-seconds (trace starts at t=1s).
	if used < 30 || used > 45 {
		t.Fatalf("GPU-seconds = %.1f, want ~38", used)
	}
}

package core

import (
	"fmt"

	"dilu/internal/cluster"
	"dilu/internal/gpu"
	"dilu/internal/instance"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/rckm"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// TrainOpts configures a training job deployment.
type TrainOpts struct {
	// Workers is the number of DDP workers (or pipeline stages for
	// pipeline-parallel models; defaults to the model's TrainStages).
	Workers int
	// TargetIters ends the job after this many iterations (JCT
	// accounting); 0 runs forever.
	TargetIters int64
	// Profile overrides Dilu profiling when non-nil.
	Profile *profiler.Profile
	// Pin places the workers on the given GPU indices (one worker per
	// index), bypassing the scheduler.
	Pin []int
	// StartAt delays job submission (the end-to-end scenario submits
	// jobs at different times).
	StartAt sim.Time
	// Elastic enables elastic serverless training (§7 future work): the
	// job grows data-parallel workers into residual capacity and retires
	// them under inference pressure.
	Elastic *ElasticOpts
}

// TrainingJob is one deployed training function.
type TrainingJob struct {
	sys     *System
	Name    string
	Spec    *model.Spec
	Profile profiler.Profile
	Job     *instance.Training

	decisions []sched.Decision
	stages    []instance.Stage
	released  bool
	SubmitAt  sim.Time
	elastic   *elasticState
}

// DeployTraining profiles, places, and starts a training job.
func (sys *System) DeployTraining(name, modelName string, opts TrainOpts) (*TrainingJob, error) {
	spec := model.ByName(modelName)
	var prof profiler.Profile
	if opts.Profile != nil {
		prof = *opts.Profile
	} else {
		prof = profiler.For(spec, profiler.RoleTraining)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = spec.TrainStages
	}
	if workers <= 0 {
		workers = 1
	}
	tj := &TrainingJob{sys: sys, Name: name, Spec: spec, Profile: prof, SubmitAt: opts.StartAt}
	start := func(sim.Time) {
		if err := tj.place(workers, opts); err != nil {
			// Deployment failures surface as a job that never starts;
			// experiments check Started().
			return
		}
		tj.Job.TargetIters = opts.TargetIters
		tj.Job.SetActive(true)
		sys.liveJobs = append(sys.liveJobs, tj)
		sys.wakeInst(tj.Job)
		if opts.Elastic != nil && tj.Spec.TrainStages <= 1 {
			// Pipeline jobs have a fixed stage count; only DDP jobs
			// scale their worker set.
			tj.enableElastic(*opts.Elastic, workers)
		}
	}
	if opts.StartAt > 0 {
		sys.Eng.Schedule(opts.StartAt, start)
	} else {
		start(0)
	}
	sys.jobs = append(sys.jobs, tj)
	return tj, nil
}

func (tj *TrainingJob) place(workers int, opts TrainOpts) error {
	sys := tj.sys
	var decs []sched.Decision
	if len(opts.Pin) > 0 {
		if len(opts.Pin) != workers {
			return fmt.Errorf("core: %s pins %d GPUs for %d workers", tj.Name, len(opts.Pin), workers)
		}
		gpus := sys.Clu.GPUs()
		for i, idx := range opts.Pin {
			if idx < 0 || idx >= len(gpus) {
				return fmt.Errorf("core: pin index %d out of range", idx)
			}
			p := &cluster.Placement{
				Instance: fmt.Sprintf("%s/w%d", tj.Name, i), Func: tj.Name,
				Req: tj.Profile.SMReq, Lim: tj.Profile.SMLim, MemMB: tj.Profile.MemMB,
			}
			if err := gpus[idx].Place(p); err != nil {
				for _, d := range decs {
					d.Release()
				}
				return err
			}
			decs = append(decs, sched.Decision{
				Instance: p.Instance, Func: tj.Name,
				GPUs: []*cluster.GPU{gpus[idx]}, Placements: []*cluster.Placement{p},
			})
		}
	} else {
		var err error
		decs, err = sys.scheduler.Schedule(sched.Request{
			Func: tj.Name, Profile: tj.Profile, Instances: workers,
		})
		if err != nil {
			return err
		}
	}
	var stages []instance.Stage
	for _, d := range decs {
		st, err := sys.attach(d, false, tj.Profile)
		if err != nil {
			for _, dd := range decs {
				dd.Release()
			}
			return err
		}
		stages = append(stages, st...)
	}
	tj.decisions = decs
	tj.stages = stages
	tj.Job = instance.NewTraining(tj.Name, tj.Name, tj.Spec, stages)
	return nil
}

// Started reports whether placement succeeded.
func (tj *TrainingJob) Started() bool { return tj.Job != nil }

// maybeFinish releases a finished job's resources exactly once.
func (tj *TrainingJob) maybeFinish(now sim.Time) {
	if tj.Job == nil || tj.released || !tj.Job.Finished() {
		return
	}
	tj.released = true
	tj.Job.SetActive(false)
	tj.releaseElastic()
	for _, d := range tj.decisions {
		tj.sys.detachStages(d, tj.stagesOf(d))
		d.Release()
	}
}

// stagesOf maps a decision's residents back to the job's stages.
func (tj *TrainingJob) stagesOf(d sched.Decision) []instance.Stage {
	var out []instance.Stage
	for _, st := range tj.stages {
		for _, g := range d.GPUs {
			if st.Res.Device() == g.Dev {
				out = append(out, st)
			}
		}
	}
	return out
}

// JCT returns the job completion time for finished jobs.
func (tj *TrainingJob) JCT() sim.Duration {
	if tj.Job == nil || !tj.Job.Finished() {
		return 0
	}
	return tj.Job.DoneAt - tj.SubmitAt
}

// Throughput returns samples/second at the given time.
func (tj *TrainingJob) Throughput(now sim.Time) float64 {
	if tj.Job == nil {
		return 0
	}
	return tj.Job.Throughput(now)
}

// ---------------------------------------------------------------------------
// Shared attach/detach wiring.

// attach creates one resident + RCKM client per stage GPU of a decision,
// entering the GPU's manager and device into the tick-loop active sets
// on their first client/resident.
func (sys *System) attach(d sched.Decision, sloSensitive bool, prof profiler.Profile) ([]instance.Stage, error) {
	var stages []instance.Stage
	for i, g := range d.GPUs {
		pl := d.Placements[i]
		res, err := g.Dev.Attach(pl.Instance, pl.MemMB)
		if err != nil {
			sys.detachStages(d, stages)
			return nil, err
		}
		c := &rckm.Client{
			ID: pl.Instance, Res: res, SLOSensitive: sloSensitive,
			Request: pl.Req, Limit: pl.Lim,
		}
		// Pipeline shards see 1/n of an iteration's launch cycle and work.
		n := float64(len(d.GPUs))
		c.SeedKLCWork(prof.SeedKLC/n, prof.SeedWork/n)
		m := sys.mgrByGPU[g]
		m.Register(c)
		if !sys.mgrActive[m] {
			sys.mgrActive[m] = true
			sys.activeMgrs = append(sys.activeMgrs, m)
		}
		if !sys.devActive[g.Dev] {
			sys.devActive[g.Dev] = true
			sys.activeDevs = append(sys.activeDevs, g.Dev)
		}
		stages = append(stages, instance.Stage{Res: res, Client: c})
	}
	sys.updateTickActivity()
	return stages, nil
}

// detach reverses attach for a whole decision.
func (sys *System) detach(d sched.Decision, stages []instance.Stage) {
	sys.detachStages(d, stages)
}

func (sys *System) detachStages(d sched.Decision, stages []instance.Stage) {
	for _, st := range stages {
		dev := st.Res.Device()
		for _, g := range d.GPUs {
			if g.Dev == dev {
				m := sys.mgrByGPU[g]
				m.Unregister(st.Client)
				dev.Detach(st.Res)
				if len(m.Clients()) == 0 && sys.mgrActive[m] {
					delete(sys.mgrActive, m)
					sys.removeMgr(m)
				}
				if dev.ResidentCount() == 0 && sys.devActive[dev] {
					delete(sys.devActive, dev)
					sys.removeDev(dev)
				}
			}
		}
	}
	sys.updateTickActivity()
}

// removeMgr drops a now-clientless manager from the active set,
// preserving the order of the rest.
func (sys *System) removeMgr(m *rckm.Manager) {
	for i, mm := range sys.activeMgrs {
		if mm == m {
			sys.activeMgrs = append(sys.activeMgrs[:i], sys.activeMgrs[i+1:]...)
			return
		}
	}
}

// removeDev drops a now-empty device from the active set.
func (sys *System) removeDev(d *gpu.Device) {
	for i, dd := range sys.activeDevs {
		if dd == d {
			sys.activeDevs = append(sys.activeDevs[:i], sys.activeDevs[i+1:]...)
			return
		}
	}
}

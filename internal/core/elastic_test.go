package core

import (
	"testing"

	"dilu/internal/sim"
	"dilu/internal/workload"
)

func TestElasticTrainingGrowsIntoIdleCluster(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 4})
	tj, err := sys.DeployTraining("bert-el", "BERT-base", TrainOpts{
		Workers: 1,
		Elastic: &ElasticOpts{MaxWorkers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tj.Elastic() {
		t.Fatal("elastic not armed")
	}
	sys.Run(30 * sim.Second)
	if tj.Workers() != 4 {
		t.Fatalf("workers = %d, want growth to 4", tj.Workers())
	}
	// Throughput should clearly exceed a single worker's rate. (The
	// lifetime average includes the early 1-worker phase, so the bound
	// is below the 4× steady state.)
	thr := tj.Throughput(sys.Eng.Now())
	single := tj.Spec.TrainThroughput(tj.Profile.SMLim)
	if thr < 2.0*single {
		t.Fatalf("elastic throughput %.0f too low vs single %.0f", thr, single)
	}
}

func TestElasticTrainingRespectsMax(t *testing.T) {
	sys := MustSystem(Config{Nodes: 2, GPUsPerNode: 4})
	tj, err := sys.DeployTraining("bert-el", "BERT-base", TrainOpts{
		Workers: 1,
		Elastic: &ElasticOpts{MaxWorkers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30 * sim.Second)
	if tj.Workers() != 2 {
		t.Fatalf("workers = %d, want cap at 2", tj.Workers())
	}
}

func TestElasticTrainingShrinksUnderInferencePressure(t *testing.T) {
	// One GPU cluster: the elastic job grows a second worker only if the
	// cluster allows; then a heavily loaded inference function triggers
	// emergencies and the grown worker must retreat.
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2, Seed: 4})
	tj, err := sys.DeployTraining("bert-el", "BERT-base", TrainOpts{
		Workers: 1,
		Elastic: &ElasticOpts{MinWorkers: 1, MaxWorkers: 2, Every: sim.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * sim.Second)
	if tj.Workers() != 2 {
		t.Fatalf("setup: expected growth to 2 workers, got %d", tj.Workers())
	}
	// A bursty inference function lands on the grown worker's GPU (the
	// only one with request headroom) and pushes it into EMERGENCY.
	grownGPU := tj.elastic.grown[0].dec.GPUs[0]
	f, err := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
		Pin:      []int{gpuIndexOf(sys, grownGPU)},
		Arrivals: workload.Gamma{RPS: 60, CV: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(60 * sim.Second)
	if tj.Workers() != 1 {
		t.Fatalf("workers = %d, want shrink back to 1 under pressure", tj.Workers())
	}
	if f.Served() == 0 {
		t.Fatal("inference starved")
	}
}

func gpuIndexOf(sys *System, target interface{ Active() bool }) int {
	for i, g := range sys.Clu.GPUs() {
		if interface{ Active() bool }(g) == target {
			return i
		}
	}
	return -1
}

func TestElasticDisabledForPipelineJobs(t *testing.T) {
	sys := MustSystem(Config{Nodes: 2, GPUsPerNode: 4})
	tj, err := sys.DeployTraining("llama-ft", "LLaMA2-7B", TrainOpts{
		Workers: 4,
		Elastic: &ElasticOpts{MaxWorkers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * sim.Second)
	if tj.Elastic() {
		t.Fatal("pipeline jobs must not scale their stage count")
	}
	if tj.Workers() != 4 {
		t.Fatalf("workers = %d", tj.Workers())
	}
}

func TestElasticReleasesOnFinish(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 4})
	tj, err := sys.DeployTraining("bert-el", "BERT-base", TrainOpts{
		Workers: 1, TargetIters: 100,
		Elastic: &ElasticOpts{MaxWorkers: 3, Every: sim.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(60 * sim.Second)
	if !tj.Job.Finished() {
		t.Fatal("job should finish")
	}
	if sys.Clu.OccupiedCount() != 0 {
		t.Fatalf("grown workers leaked: %d GPUs still occupied", sys.Clu.OccupiedCount())
	}
}

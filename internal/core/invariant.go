package core

import (
	"fmt"

	"dilu/internal/gpu"
	"dilu/internal/instance"
	"dilu/internal/rckm"
	"dilu/internal/sim"
)

// Invariant is a named, read-only predicate over a System's state,
// checked at the end of every fired simulation tick and once more when
// Run reaches its horizon. A non-nil error aborts the run with a panic
// naming the invariant — simulation state is corrupt, and continuing
// would launder the corruption into results.
//
// Invariants must not mutate the system; per-system checker state (e.g.
// a monotone-time watermark) lives in the closure, which is why the
// default installation point is a factory — every System gets fresh
// instances, keeping parallel harness runs independent.
type Invariant struct {
	Name  string
	Check func(sys *System, now sim.Time) error
}

// defaultInvariantFactory, when non-nil, supplies invariants appended to
// every new System's configured list. Installed once by test mains (see
// internal/simtest); not synchronized, so it must be set before any
// System is built.
var defaultInvariantFactory func() []Invariant

// SetDefaultInvariantFactory installs a factory whose invariants attach
// to every subsequently built System. Passing nil uninstalls. Call only
// from TestMain (before systems exist): the hook is deliberately
// unsynchronized.
func SetDefaultInvariantFactory(f func() []Invariant) { defaultInvariantFactory = f }

// checkInvariants runs every attached invariant, panicking on the first
// violation.
func (sys *System) checkInvariants(now sim.Time) {
	for i := range sys.invariants {
		inv := &sys.invariants[i]
		if err := inv.Check(sys, now); err != nil {
			panic(fmt.Sprintf("core: invariant %q violated at %s: %v", inv.Name, now, err))
		}
	}
}

// ---------------------------------------------------------------------------
// Read-only accessors for invariant checkers (and tests). None of these
// are on the simulation hot path.

// InActiveSet reports whether the runtime is currently registered in the
// tick loop's instance active set.
func (sys *System) InActiveSet(t instance.Ticker) bool { return sys.instActive[t] }

// ActiveSetSizes returns the instance active set's list length and index
// size (equal unless membership bookkeeping is corrupt).
func (sys *System) ActiveSetSizes() (list, index int) {
	return len(sys.activeInsts), len(sys.instActive)
}

// ManagerInActiveSet reports whether the RCKM manager is in the tick
// loop's manager active set.
func (sys *System) ManagerInActiveSet(m *rckm.Manager) bool { return sys.mgrActive[m] }

// DeviceInActiveSet reports whether the device is in the tick loop's
// execution active set.
func (sys *System) DeviceInActiveSet(d *gpu.Device) bool { return sys.devActive[d] }

// VisitInstances calls visit for every live inference instance of the
// function: serving instances first (deployment order), then keep-alive
// (warm) instances that are neither reused nor expired.
func (f *Function) VisitInstances(visit func(in instance.Server, warm bool)) {
	for _, si := range f.active {
		visit(si.inst, false)
	}
	for _, w := range f.warm {
		if !w.dead && !w.reused {
			visit(w.si.inst, true)
		}
	}
}

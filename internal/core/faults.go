package core

import (
	"slices"

	"dilu/internal/cluster"
	"dilu/internal/metrics"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Serving-plane side of gray-failure injection: slowdown and transient-
// error events arrive as a schedule (ScheduleFaults) or direct calls
// (SlowGPU/ErrorGPU), mirroring churn.go's node lifecycle. Slowdowns
// turn a device into a straggler without touching any index the
// scheduler reads — the defining property of a gray failure; errors
// abort in-flight batches and hand the requests back to the gateway for
// redelivery. The health monitor (health.go), when enabled, watches the
// same observable signals and quarantines outliers.

// FaultStats counts injected fault events and their serving-plane
// fallout, plus the health monitor's verdicts.
type FaultStats struct {
	SlowEvents  int
	ErrorEvents int
	// AbortedBatches counts executing batches killed by error events;
	// AbortedRequests counts the requests those aborts redelivered
	// (queued work included — Inference.Abort drains both).
	AbortedBatches  int
	AbortedRequests int
	// Quarantines/Readmits count health-monitor ejections and probe
	// readmissions; QuarantineMigrations counts the make-before-break
	// instance moves quarantines triggered.
	Quarantines          int
	Readmits             int
	QuarantineMigrations int
}

// FaultStats returns the running fault counters.
func (sys *System) FaultStats() FaultStats { return sys.faults }

// ScheduleFaults replays a gray-failure schedule against the system.
// Like ScheduleChurn, events ride a single pointer-free ScheduleSeries
// cursor with timestamps relative to the current virtual time; the
// slice is cloned and sorted, callers may reuse theirs.
func (sys *System) ScheduleFaults(events []workload.FaultEvent) {
	if len(events) == 0 {
		return
	}
	evs := slices.Clone(events)
	workload.SortFaults(evs)
	times := make([]sim.Time, len(evs))
	for i, ev := range evs {
		times[i] = ev.At
	}
	cursor := 0
	sys.Eng.ScheduleSeries(sys.Eng.Now(), times, func(now sim.Time) {
		ev := evs[cursor]
		cursor++
		switch ev.Kind {
		case workload.FaultSlow:
			sys.SlowGPU(ev.Node, ev.GPU, ev.Factor)
		case workload.FaultError:
			sys.ErrorGPU(ev.Node, ev.GPU)
		}
	})
}

// faultGPUs resolves a (node, gpu) event target; gpu == -1 selects the
// whole node.
func (sys *System) faultGPUs(nodeIdx, gpuIdx int) []*cluster.GPU {
	node := nodeAt(sys, nodeIdx)
	if node == nil {
		return nil
	}
	if gpuIdx < 0 {
		return node.GPUs
	}
	if gpuIdx >= len(node.GPUs) {
		return nil
	}
	return node.GPUs[gpuIdx : gpuIdx+1]
}

// SlowGPU sets the straggler factor on one GPU (or a whole node with
// gpu == -1): factor > 1 stretches execution, 1 restores full speed.
// Nothing the scheduler reads changes — detection is the health
// monitor's job, from observed signals.
func (sys *System) SlowGPU(node, gpu int, factor float64) {
	targets := sys.faultGPUs(node, gpu)
	if len(targets) == 0 {
		return
	}
	sys.faults.SlowEvents++
	sys.faultsSeen = true
	for _, g := range targets {
		g.Dev.SetSlowdown(factor)
	}
}

// ErrorGPU injects a transient device error on one GPU (or a whole
// node with gpu == -1): every inference instance holding a reservation
// there aborts its in-flight batch and queue, and the requests are
// redelivered through the gateway with their original arrival stamps —
// the retried work shows up in recorded latency. The device itself
// survives (no eviction); the health monitor observes the error for
// its quarantine verdict. Training jobs ride out batch errors (their
// recovery path is churn's checkpoint-restart, driven by real
// failures).
func (sys *System) ErrorGPU(node, gpu int) {
	targets := sys.faultGPUs(node, gpu)
	if len(targets) == 0 {
		return
	}
	sys.faults.ErrorEvents++
	sys.faultsSeen = true
	now := sys.Eng.Now()
	for _, g := range targets {
		if sys.health != nil {
			sys.health.observeError(g, now)
		}
		for _, f := range sys.funcs {
			f.abortOnGPU(g, now)
		}
	}
}

// abortOnGPU aborts every instance of f holding a reservation on g —
// serving instances and keep-alive entries still draining a batch —
// and redelivers the dropped requests. The instance stays placed:
// transient errors cost work, not capacity.
func (f *Function) abortOnGPU(g *cluster.GPU, now sim.Time) {
	for _, si := range f.active {
		f.abortInstance(si, g, now)
	}
	for _, w := range f.warm {
		if w.dead || w.reused {
			continue
		}
		f.abortInstance(w.si, g, now)
	}
}

// resilienceSLO rolls fault-injection and mitigation counters into the
// SLO summary's resilience block. Nil unless the run injected a fault
// or enabled a mitigation layer, so pre-fault manifests keep their
// exact bytes (every column is additionally omitempty).
func (sys *System) resilienceSLO() *metrics.ResilienceSLO {
	if !sys.faultsSeen && sys.cfg.Resilience == nil && sys.cfg.Health == nil {
		return nil
	}
	r := &metrics.ResilienceSLO{
		SlowEvents:           int64(sys.faults.SlowEvents),
		ErrorEvents:          int64(sys.faults.ErrorEvents),
		AbortedBatches:       int64(sys.faults.AbortedBatches),
		AbortedRequests:      int64(sys.faults.AbortedRequests),
		Quarantines:          int64(sys.faults.Quarantines),
		Readmits:             int64(sys.faults.Readmits),
		QuarantineMigrations: int64(sys.faults.QuarantineMigrations),
	}
	for _, f := range sys.funcs {
		st := f.ResilienceStats()
		r.Timeouts += st.Timeouts
		r.Retries += st.Retries
		r.RetrySuccess += st.RetrySuccess
		r.Hedges += st.Hedges
		r.HedgeWins += st.HedgeWins
		r.HedgeDiscards += st.HedgeDiscards
	}
	return r
}

func (f *Function) abortInstance(si *servedInstance, g *cluster.GPU, now sim.Time) {
	if !si.dec.OnGPU(g) {
		return
	}
	inflight := si.inst.InFlight()
	if inflight == 0 && si.inst.QueueLen() == 0 {
		return
	}
	if inflight > 0 {
		f.sys.faults.AbortedBatches++
	}
	reqs := si.inst.Abort()
	f.sys.faults.AbortedRequests += len(reqs)
	f.redispatch(reqs, now)
}

package core

import (
	"fmt"

	"dilu/internal/cluster"
	"dilu/internal/gpu"
	"dilu/internal/instance"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Token-level (LLM) serving support: per-deployment options, the
// KV-cache bridge from instance stages to cluster/device memory
// accounting, and the 1 Hz KV-occupancy sampling the SLO summary's LLM
// block reports. Everything here is dormant — zero state, zero RNG
// draws, byte-identical manifests — unless a deployment passes LLMOpts.

// LLMOpts switches a deployment to the token-level serving runtime:
// requests carry prompt/decode token counts, each scheduling step
// decodes one token per resident sequence, and per-sequence KV-cache
// growth is charged against GPU memory (a full cache preempts the
// youngest sequence or refuses the queue head).
type LLMOpts struct {
	// MaxBatch bounds resident sequences per instance step; <1 defaults
	// to 8.
	MaxBatch int
	// RunToCompletion disables continuous batching: a fresh batch is
	// admitted only when the running one has fully drained — the
	// static-batching baseline continuous batching is compared against.
	RunToCompletion bool
	// TTFT and TPOT are the token-level SLO targets (time to first
	// token; time per output token over the decode phase). Zero disables
	// the corresponding violation count.
	TTFT sim.Duration
	TPOT sim.Duration
	// Tokens samples per-request (prompt, decode) lengths for requests
	// submitted without explicit counts (the arrival-series path); nil
	// falls back to one prompt token and the model's AvgOutTokens.
	Tokens workload.TokenSampler
}

// llmState is a function's token-level serving state.
type llmState struct {
	opts LLMOpts
	prof model.LLMProfile
	// Tok aggregates TTFT/TPOT/throughput/pressure across the function's
	// instances, like the shared LatencyRecorder.
	Tok *metrics.TokenRecorder
	// rng drives the token-length sampler. Forked only for LLM
	// deployments (with a tag disjoint from the arrival forks), so
	// non-LLM runs draw exactly their historical stream.
	rng *sim.RNG
}

func newLLMState(sys *System, f *Function, opts LLMOpts) (*llmState, error) {
	if !f.Spec.Generative {
		return nil, fmt.Errorf("core: %s deploys non-generative model %s with LLMOpts", f.Name, f.Spec.Name)
	}
	st := &llmState{
		opts: opts,
		prof: f.Spec.LLM(),
		Tok:  metrics.NewTokenRecorder(f.Name, opts.TTFT, opts.TPOT),
	}
	if opts.Tokens != nil {
		st.rng = sys.rng.Fork(-int64(len(sys.funcs) + 1))
	}
	return st, nil
}

// config builds the instance-level configuration.
func (st *llmState) config() instance.LLMConfig {
	return instance.LLMConfig{
		Prof:            st.prof,
		MaxBatch:        st.opts.MaxBatch,
		RunToCompletion: st.opts.RunToCompletion,
	}
}

// sampleTokens draws one request's (prompt, decode) lengths.
func (st *llmState) sampleTokens() (prompt, decode int) {
	if st.opts.Tokens == nil || st.rng == nil {
		return 0, 0 // the runtime's 1-token floors apply
	}
	return st.opts.Tokens.Sample(st.rng)
}

// TokenStats returns the function's token recorder (nil for fixed-batch
// deployments) — read-only access for drivers and tests.
func (f *Function) TokenStats() *metrics.TokenRecorder {
	if f.llm == nil {
		return nil
	}
	return f.llm.Tok
}

// onPreempt returns a cache-full-preempted sequence's request to the
// gateway: redispatched to the least-loaded instance (possibly the
// preempting one — it re-queues behind the cache-pressure it lost to)
// with its original Arrive stamp, so the lost decode work shows up in
// recorded latency.
func (f *Function) onPreempt(req instance.Request) {
	f.redispatch([]instance.Request{req}, f.sys.Eng.Now())
}

// kvStage charges one LLM stage's KV-cache growth against the stage's
// cluster placement and device resident in lockstep, so the quota-
// conservation invariant's three-way check (placements vs GPU ledger vs
// device residents) holds at token granularity. Admission control is the
// cluster-side MemCapMB check; the resident mirrors whatever the cluster
// accepted.
type kvStage struct {
	g   *cluster.GPU
	p   *cluster.Placement
	res *gpu.Resident
}

// ReserveKV implements instance.KVBacking.
func (k *kvStage) ReserveKV(mb float64) bool {
	if !k.g.ReserveKV(k.p, mb) {
		return false
	}
	k.res.GrowMem(mb)
	return true
}

// ReleaseKV implements instance.KVBacking. The two sides guard
// independently — the cluster clamps to the placement's live KV charge
// (zero after a node-failure eviction), the resident no-ops once
// detached — so every teardown ordering unwinds exactly once.
func (k *kvStage) ReleaseKV(mb float64) {
	k.g.ReleaseKV(k.p, mb)
	k.res.ShrinkMem(mb)
}

// sampleKV is the 1 Hz KV-occupancy probe: cluster-wide reserved KV and
// the largest single-GPU share of device memory, tracked as run peaks
// for the SLO summary's LLM block.
func (sys *System) sampleKV() {
	var total float64
	for _, g := range sys.Clu.GPUs() {
		total += g.KVUsedMB
		if g.MemCapMB > 0 {
			if share := g.KVUsedMB / g.MemCapMB; share > sys.kvPeakShare {
				sys.kvPeakShare = share
			}
		}
	}
	if total > sys.kvPeakMB {
		sys.kvPeakMB = total
	}
}

// llmSLO rolls the token recorders into the summary block; nil unless a
// token-level function was deployed, so prior manifests keep their
// bytes.
func (sys *System) llmSLO() *metrics.LLMSLO {
	if !sys.llmDeployed {
		return nil
	}
	var toks []*metrics.TokenRecorder
	for _, f := range sys.funcs {
		if f.llm != nil {
			toks = append(toks, f.llm.Tok)
		}
	}
	return metrics.SummarizeLLM(sys.Eng.Now(), sys.kvPeakMB, sys.kvPeakShare, toks...)
}

package core

import (
	"dilu/internal/cluster"
	"dilu/internal/sim"
)

// Health-aware scheduling: a 1 Hz monitor scores every GPU from the
// signals a DCGM-style agent would see — observed slowdown and
// transient-error arrivals — and ejects outliers from the schedulable
// indexes (cluster.Quarantined). Existing placements migrate
// make-before-break over churn's drain path, placement automatically
// skips quarantined capacity (Schedulable() is already the gate in
// every index), and a probe readmits the GPU once it runs clean. A
// quarantine quota caps how much capacity the monitor may eject, so a
// correlated gray event cannot trick it into shrinking the fleet below
// what the traffic needs.

// HealthConfig enables the per-GPU health monitor. Zero-valued knobs
// take the documented defaults; a nil *HealthConfig in Config disables
// monitoring entirely.
type HealthConfig struct {
	// SlowdownThreshold is the observed straggler factor at or above
	// which a sample counts against the GPU (default 2.0); a readmit
	// probe also requires the factor back below it.
	SlowdownThreshold float64
	// SlowSamples is how many consecutive 1 Hz samples must exceed the
	// threshold before quarantine (default 3) — a single slow second is
	// noise, a streak is a straggler.
	SlowSamples int
	// ErrorThreshold errors within ErrorWindow quarantine the GPU
	// (defaults 3 / 30 s).
	ErrorThreshold int
	ErrorWindow    sim.Duration
	// ProbeAfter is the quarantine dwell before a readmit probe
	// (default 20 s); a dirty probe resets the clock.
	ProbeAfter sim.Duration
	// MaxQuarantineFrac caps simultaneously quarantined GPUs as a
	// fraction of the fleet (default 0.25).
	MaxQuarantineFrac float64
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.SlowdownThreshold <= 0 {
		c.SlowdownThreshold = 2.0
	}
	if c.SlowSamples <= 0 {
		c.SlowSamples = 3
	}
	if c.ErrorThreshold <= 0 {
		c.ErrorThreshold = 3
	}
	if c.ErrorWindow <= 0 {
		c.ErrorWindow = 30 * sim.Second
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 20 * sim.Second
	}
	if c.MaxQuarantineFrac <= 0 {
		c.MaxQuarantineFrac = 0.25
	}
	return c
}

// gpuHealth is the monitor's per-GPU score state.
type gpuHealth struct {
	slowStreak  int
	errs        []sim.Time // error arrivals inside the sliding window
	quarantined bool
	// errsSince counts errors observed while quarantined; a probe
	// readmits only after a zero-error dwell.
	errsSince int
}

// healthMonitor samples GPU health at 1 Hz (riding System.sample) and
// drives the quarantine/probe/readmit cycle.
type healthMonitor struct {
	sys         *System
	cfg         HealthConfig
	state       []gpuHealth // parallel to Clu.GPUs()
	index       map[*cluster.GPU]int
	quarantined int
}

func newHealthMonitor(sys *System, cfg HealthConfig) *healthMonitor {
	gpus := sys.Clu.GPUs()
	m := &healthMonitor{
		sys:   sys,
		cfg:   cfg.withDefaults(),
		state: make([]gpuHealth, len(gpus)),
		index: make(map[*cluster.GPU]int, len(gpus)),
	}
	for i, g := range gpus {
		m.index[g] = i
	}
	return m
}

// sample is the 1 Hz scoring pass: read each device's observed
// slowdown, advance streaks, quarantine outliers.
func (m *healthMonitor) sample(now sim.Time) {
	for i, g := range m.sys.Clu.GPUs() {
		st := &m.state[i]
		if st.quarantined {
			continue
		}
		if g.Dev.Slowdown() >= m.cfg.SlowdownThreshold {
			st.slowStreak++
			if st.slowStreak >= m.cfg.SlowSamples {
				m.quarantine(g, st)
			}
		} else {
			st.slowStreak = 0
		}
	}
}

// observeError feeds one transient-error arrival into the GPU's sliding
// window (called by ErrorGPU at injection time).
func (m *healthMonitor) observeError(g *cluster.GPU, now sim.Time) {
	i, ok := m.index[g]
	if !ok {
		return
	}
	st := &m.state[i]
	if st.quarantined {
		st.errsSince++
		return
	}
	st.errs = append(st.errs, now)
	cut := 0
	for cut < len(st.errs) && now-st.errs[cut] > m.cfg.ErrorWindow {
		cut++
	}
	if cut > 0 {
		st.errs = append(st.errs[:0], st.errs[cut:]...)
	}
	if len(st.errs) >= m.cfg.ErrorThreshold {
		m.quarantine(g, st)
	}
}

// quarantine ejects one GPU: out of the schedulable indexes, existing
// instances migrated make-before-break (churn's drain path — the
// replacement cold-starts elsewhere before the old instance retires),
// probe scheduled. The quota and lifecycle guards keep the monitor off
// churn-owned (draining/failed) GPUs and bound total ejected capacity.
func (m *healthMonitor) quarantine(g *cluster.GPU, st *gpuHealth) {
	sys := m.sys
	if g.Health() != cluster.Healthy {
		return
	}
	total := len(m.state)
	if float64(m.quarantined+1) > m.cfg.MaxQuarantineFrac*float64(total) {
		return // quota: keep serving on a degraded device over shrinking the fleet
	}
	st.quarantined = true
	st.errsSince = 0
	st.slowStreak = 0
	st.errs = st.errs[:0]
	m.quarantined++
	sys.Clu.QuarantineGPU(g)
	sys.faults.Quarantines++
	sys.faultsSeen = true
	before := sys.churn.MigratedInstances
	for _, f := range sys.funcs {
		f.sweepWarmRetired()
		f.migrateRetired()
	}
	for _, tj := range sys.jobs {
		tj.preemptRetired(false)
	}
	sys.faults.QuarantineMigrations += sys.churn.MigratedInstances - before
	sys.Eng.After(m.cfg.ProbeAfter, func(at sim.Time) { m.probe(g, at) })
}

// probe decides readmission after the quarantine dwell: clean (no
// errors while quarantined, slowdown back under threshold) readmits;
// dirty resets the dwell and re-probes. If churn failed or drained the
// GPU meanwhile, the monitor hands the device over to that lifecycle.
func (m *healthMonitor) probe(g *cluster.GPU, at sim.Time) {
	st := &m.state[m.index[g]]
	if g.Health() != cluster.Quarantined {
		if st.quarantined {
			st.quarantined = false
			m.quarantined--
		}
		return
	}
	if st.errsSince == 0 && g.Dev.Slowdown() < m.cfg.SlowdownThreshold {
		st.quarantined = false
		m.quarantined--
		m.sys.Clu.ReadmitGPU(g)
		m.sys.faults.Readmits++
		return
	}
	st.errsSince = 0
	m.sys.Eng.After(m.cfg.ProbeAfter, func(next sim.Time) { m.probe(g, next) })
}

// Predictive prewarming: a rate-trend policy (in the spirit of
// HAS-GPU's hybrid auto-scaling) that launches instances *ahead* of
// projected demand so their cold starts are paid off the request path.
// Nil-gated like resilience and health: Config.Prewarm == nil keeps
// the serving plane byte-identical.
package core

import (
	"math"

	"dilu/internal/sim"
)

// PrewarmConfig tunes the rate-trend prewarming policy. The policy
// runs in each function's 1 Hz control step: it fits a linear trend to
// the trailing RPS samples, projects demand one cold-start ahead, and
// launches cold instances now so they are active when that demand
// lands.
type PrewarmConfig struct {
	// Window is the trailing sample count the trend fit uses
	// (default 5 — five seconds of history).
	Window int
	// Lead is how far ahead demand is projected; zero defaults to the
	// function's full cold-start duration plus one control period, the
	// earliest a launch decided now can be serving.
	Lead sim.Duration
	// Headroom multiplies projected demand before conversion to an
	// instance count (default 1.0; >1 over-provisions).
	Headroom float64
	// MaxPerStep caps prewarm launches per function per control step
	// (default 1), bounding the cost of a mispredicted spike.
	MaxPerStep int
}

func (c PrewarmConfig) withDefaults() PrewarmConfig {
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.0
	}
	if c.MaxPerStep <= 0 {
		c.MaxPerStep = 1
	}
	return c
}

// prewarmState is one function's prewarming bookkeeping.
type prewarmState struct {
	cfg PrewarmConfig
	// ring holds the trailing RPS samples, oldest first.
	ring []float64
	// launching holds the projected ready times of prewarmed cold
	// starts still in their launch window, so consecutive steps do not
	// re-launch for capacity that is already on the way.
	launching []sim.Time
}

func newPrewarmState(cfg PrewarmConfig) *prewarmState {
	return &prewarmState{cfg: cfg.withDefaults()}
}

// prewarmStep is the per-function 1 Hz prewarming decision. A rising
// trend projected `lead` ahead that exceeds current-plus-launching
// capacity triggers up to MaxPerStep cold launches, counted as prewarm
// launches (their cold starts run with no request forced to wait on
// them — that is the point).
func (f *Function) prewarmStep(now sim.Time) {
	pw := f.prewarm
	cfg := pw.cfg
	// Prune launch windows that have completed.
	kept := pw.launching[:0]
	for _, t := range pw.launching {
		if t > now {
			kept = append(kept, t)
		}
	}
	pw.launching = kept
	if len(pw.ring) < 2 || f.Profile.ServingRPS <= 0 {
		return
	}
	first, last := pw.ring[0], pw.ring[len(pw.ring)-1]
	slope := (last - first) / float64(len(pw.ring)-1) // RPS per second
	if slope <= 0 {
		return
	}
	lead := cfg.Lead
	if lead <= 0 {
		lead = f.Spec.ColdStart() + sim.Second
	}
	predicted := last + slope*lead.Seconds()
	needed := int(math.Ceil(predicted * cfg.Headroom / f.Profile.ServingRPS))
	have := len(f.active) + len(pw.launching)
	for i := 0; i < cfg.MaxPerStep && have < needed; i++ {
		if _, err := f.launch(true); err != nil {
			break // no capacity: the reactive scaler's problem now
		}
		f.sys.coldStats.PrewarmLaunches++
		// Spec.ColdStart() upper-bounds the launch window (a kernel-
		// cache hit only shortens it), so the entry conservatively
		// counts as "on the way" slightly too long rather than double-
		// launching.
		pw.launching = append(pw.launching, now+sim.Time(f.Spec.ColdStart()))
		have++
	}
}

// observe feeds the control step's RPS sample into the trend ring
// before the decision runs.
func (pw *prewarmState) observe(rps float64) {
	pw.ring = append(pw.ring, rps)
	if len(pw.ring) > pw.cfg.Window {
		pw.ring = pw.ring[:copy(pw.ring, pw.ring[len(pw.ring)-pw.cfg.Window:])]
	}
}

package core

import (
	"math"
	"testing"

	"dilu/internal/instance"
	"dilu/internal/sim"
)

// gatewaySystem is a 1×2 system with one deployed function and its only
// instance deactivated, so submitted requests park in the pending queue.
func gatewaySystem(t *testing.T, cfg Config) (*System, *Function) {
	t.Helper()
	sys := MustSystem(cfg)
	f, err := sys.DeployInference("f", "BERT-base", InferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, f
}

func TestSubmitUnknownFunctionPanics(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Submit to unknown function did not panic")
		}
	}()
	sys.Submit(0, Request{Func: "nope"})
}

func TestSubmitInheritsDeploymentTenant(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2})
	if _, err := sys.DeployInference("a", "BERT-base", InferOpts{Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	sys.Submit(0, Request{Func: "a"})                  // inherits "acme"
	sys.Submit(0, Request{Func: "a", Tenant: "other"}) // explicit override
	stats := sys.GatewayTenantStats()
	if len(stats) != 2 {
		t.Fatalf("tenant ledgers = %d, want 2 (acme, other)", len(stats))
	}
	if stats[0].Tenant != "acme" || stats[0].Submitted != 1 {
		t.Fatalf("acme ledger = %+v", stats[0])
	}
	if stats[1].Tenant != "other" || stats[1].Submitted != 1 {
		t.Fatalf("other ledger = %+v", stats[1])
	}
}

// TestPendingDrainOrder pins the pending queue's drain order: priority
// descending, then deadline ascending (no deadline last), and — the
// regression this test exists for — FIFO among full ties, so the
// pre-gateway all-default workloads drain in exactly their arrival
// order.
func TestPendingDrainOrder(t *testing.T) {
	sys, f := gatewaySystem(t, Config{Nodes: 1, GPUsPerNode: 2, Seed: 3})
	f.active[0].inst.SetActive(false)

	submit := func(tag string, prio int, deadline sim.Duration) {
		// Encode the tag in the tenant so the drain order is observable.
		sys.Submit(sys.Eng.Now(), Request{Func: "f", Tenant: tag, Priority: prio, Deadline: deadline})
	}
	submit("late-deadline", 0, 500*sim.Millisecond)
	submit("default-1", 0, 0)
	submit("high-prio", 1, 0)
	submit("early-deadline", 0, 100*sim.Millisecond)
	submit("default-2", 0, 0)
	submit("high-prio-late", 1, 900*sim.Millisecond)

	f.orderPending()
	got := make([]string, len(f.pending))
	for i, req := range f.pending {
		got[i] = req.Tenant
	}
	// Priority 1 first (FIFO between the deadline-less and the
	// deadlined: deadline ascending puts 900ms ahead of none), then the
	// deadlined priority-0 requests by deadline, then the defaults in
	// arrival order.
	want := []string{"high-prio-late", "high-prio", "early-deadline", "late-deadline", "default-1", "default-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}

	// All-default queues must stay strictly FIFO (the byte-compat
	// contract for every pre-gateway driver).
	f.pending = f.pending[:0]
	for i := 0; i < 8; i++ {
		f.pending = append(f.pending, instance.Request{ID: int64(i + 1)})
	}
	f.orderPending()
	for i, req := range f.pending {
		if req.ID != int64(i+1) {
			t.Fatalf("all-default queue reordered at %d: %v", i, req.ID)
		}
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	tb := NewTokenBucket(10, 5) // 10/s sustained, burst 5
	admitted := 0
	// Burst at t=0: exactly the bucket depth.
	for i := 0; i < 20; i++ {
		if tb.Admit(0, Request{Tenant: "a"}, nil) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("burst admitted %d, want 5", admitted)
	}
	// After one second the bucket holds min(burst, 10) = 5 again.
	admitted = 0
	for i := 0; i < 20; i++ {
		if tb.Admit(sim.Second, Request{Tenant: "a"}, nil) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("refilled admitted %d, want 5", admitted)
	}
	// Independent per-tenant buckets.
	if !tb.Admit(sim.Second, Request{Tenant: "b"}, nil) {
		t.Fatal("fresh tenant denied its full bucket")
	}
	// A zero-rate bucket admits nothing.
	if NewTokenBucket(0, 0).Admit(0, Request{}, nil) {
		t.Fatal("zero-rate bucket admitted")
	}
}

func TestFairSharesWaterFilling(t *testing.T) {
	// Demand saturates capacity: shares sum to capacity exactly.
	alloc := FairShares(10, nil, []float64{8, 8, 8})
	var sum float64
	for _, a := range alloc {
		sum += a
	}
	if math.Abs(sum-10) > 1e-9 {
		t.Fatalf("saturated shares sum %v, want 10", sum)
	}
	// Equal weights, equal demand → equal split.
	for _, a := range alloc {
		if math.Abs(a-10.0/3) > 1e-9 {
			t.Fatalf("equal-demand split %v", alloc)
		}
	}
	// Idle share redistributes: one small demand frees room.
	alloc = FairShares(10, nil, []float64{1, 20, 20})
	if math.Abs(alloc[0]-1) > 1e-9 || math.Abs(alloc[1]-4.5) > 1e-9 || math.Abs(alloc[2]-4.5) > 1e-9 {
		t.Fatalf("redistribution alloc %v, want [1 4.5 4.5]", alloc)
	}
	// Weighted: tenant 0 gets twice tenant 1's share.
	alloc = FairShares(9, []float64{2, 1}, []float64{100, 100})
	if math.Abs(alloc[0]-6) > 1e-9 || math.Abs(alloc[1]-3) > 1e-9 {
		t.Fatalf("weighted alloc %v, want [6 3]", alloc)
	}
	// Under-demanded capacity: everyone gets their full demand.
	alloc = FairShares(100, nil, []float64{3, 4})
	if alloc[0] != 3 || alloc[1] != 4 {
		t.Fatalf("slack alloc %v, want [3 4]", alloc)
	}
}

func TestDeadlineShedUnderBacklog(t *testing.T) {
	sys, f := gatewaySystem(t, Config{Nodes: 1, GPUsPerNode: 2, Seed: 5})
	p := DeadlineShed{}
	// Healthy function, generous deadline: admitted.
	if !p.Admit(0, Request{Func: "f", Deadline: sim.Second}, f) {
		t.Fatal("unloaded function shed a 1s-deadline request")
	}
	// No serving instance → estimate is +Inf → any deadline sheds.
	f.active[0].inst.SetActive(false)
	if p.Admit(0, Request{Func: "f", Deadline: sim.Minute}, f) {
		t.Fatal("coldstarting function admitted a deadlined request")
	}
	// Without any deadline (request or SLO) there is nothing to shed
	// against.
	f.Rec = sys.funcByName["f"].Rec
	noSLO := DeadlineShed{}
	req := Request{Func: "f"}
	if f.Rec.SLO() > 0 && noSLO.Admit(0, req, f) {
		t.Fatal("SLO-bound function admitted despite cold state")
	}
}

func TestChainShortCircuits(t *testing.T) {
	tb := NewTokenBucket(1, 1)
	chain := Chain{NewTokenBucket(0, 0), tb}
	if chain.Name() != "token-bucket+token-bucket" {
		t.Fatalf("chain name %q", chain.Name())
	}
	if chain.Admit(0, Request{Tenant: "a"}, nil) {
		t.Fatal("chain admitted through a deny-all link")
	}
	// The second bucket must not have been drained by the short-circuit.
	if !tb.Admit(0, Request{Tenant: "a"}, nil) {
		t.Fatal("short-circuited chain drained the downstream bucket")
	}
}

func TestShedRequestsNeverReachInstances(t *testing.T) {
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 2, Seed: 9,
		Admission: NewTokenBucket(1, 2),
	})
	f, err := sys.DeployInference("f", "BERT-base", InferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sys.Submit(0, Request{Func: "f"})
	}
	sub, adm, shed := f.GatewayCounts()
	if sub != 10 || adm != 2 || shed != 8 {
		t.Fatalf("ledger %d/%d/%d, want 10/2/8", sub, adm, shed)
	}
	if got := f.RecountInFlight(); got != 2 {
		t.Fatalf("in-flight recount %d, want 2 (shed requests leaked into the plane)", got)
	}
	sys.Run(2 * sim.Second)
	if f.Served() != 2 {
		t.Fatalf("served %d, want the 2 admitted", f.Served())
	}
	sum := sys.SLOSummary()
	if sum.Gateway == nil {
		t.Fatal("admission policy set but no gateway SLO block")
	}
	if sum.Gateway.Policy != "token-bucket" || sum.Gateway.Shed != 8 {
		t.Fatalf("gateway block %+v", sum.Gateway)
	}
}

// TestGatewayBlockAbsentForDefaultRuns pins the byte-compat contract:
// a single-tenant admit-all run reports no gateway block, so every
// pre-gateway manifest keeps its bytes.
func TestGatewayBlockAbsentForDefaultRuns(t *testing.T) {
	sys, _ := gatewaySystem(t, Config{Nodes: 1, GPUsPerNode: 2, Seed: 4})
	for i := 0; i < 5; i++ {
		sys.Submit(0, Request{Func: "f"})
	}
	sys.Run(sim.Second)
	if sum := sys.SLOSummary(); sum.Gateway != nil {
		t.Fatalf("default run grew a gateway block: %+v", sum.Gateway)
	}
}

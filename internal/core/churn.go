package core

import (
	"slices"

	"dilu/internal/cluster"
	"dilu/internal/instance"
	"dilu/internal/sched"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// This file is the serving-plane side of cluster churn: node failures,
// drains, and joins arrive as scheduled events (ScheduleChurn) or direct
// calls, the cluster retires/restores the inventory slots, and the
// gateway turns evicted placements into rescheduling work — cold
// relaunches with cold-start accounting for failures, make-before-break
// migrations for drains, checkpoint-restart preemption for training.

// ChurnStats counts lifecycle events and their serving-plane fallout.
type ChurnStats struct {
	Failures int
	Drains   int
	Joins    int
	// EvictedInstances counts inference instances killed by failures
	// (each relaunched cold); MigratedInstances counts drain-driven
	// make-before-break replacements.
	EvictedInstances  int
	MigratedInstances int
	// PreemptedJobs counts training-job checkpoint-restarts.
	PreemptedJobs int
	// LostLaunches counts relaunch attempts that found no capacity (the
	// horizontal scaler retries on its own cadence afterwards).
	LostLaunches int
}

// ChurnStats returns the running churn counters.
func (sys *System) ChurnStats() ChurnStats { return sys.churn }

// ScheduleChurn replays a node-lifecycle schedule against the system.
// Events ride a single ScheduleSeries cursor — pointer-free, exactly
// like arrival traces — with timestamps relative to the current virtual
// time. The slice is cloned and sorted; callers may reuse theirs.
func (sys *System) ScheduleChurn(events []workload.ChurnEvent) {
	if len(events) == 0 {
		return
	}
	evs := slices.Clone(events)
	workload.SortChurn(evs)
	times := make([]sim.Time, len(evs))
	for i, ev := range evs {
		times[i] = ev.At
	}
	cursor := 0
	sys.Eng.ScheduleSeries(sys.Eng.Now(), times, func(now sim.Time) {
		ev := evs[cursor]
		cursor++
		switch ev.Kind {
		case workload.ChurnFail:
			sys.FailNode(ev.Node)
		case workload.ChurnDrain:
			sys.DrainNode(ev.Node)
		case workload.ChurnJoin:
			sys.JoinNode(ev.Node)
		}
	})
}

// FailNode fails one node abruptly: the cluster evicts every placement
// on its GPUs, then the gateway reschedules the fallout — inference
// instances relaunch cold elsewhere (counted in Function.ColdStarts,
// requests requeued with their original arrival stamps), training jobs
// preempt and restart on fresh workers.
func (sys *System) FailNode(idx int) {
	node := nodeAt(sys, idx)
	if node == nil {
		return
	}
	sys.churn.Failures++
	sys.Clu.FailNode(node)
	now := sys.Eng.Now()
	for _, f := range sys.funcs {
		f.sweepWarmRetired()
		f.evictFailed(now)
	}
	for _, tj := range sys.jobs {
		tj.preemptRetired(true)
	}
}

// DrainNode stops new placements on a node and migrates its served
// instances make-before-break: a cold replacement launches elsewhere
// first, and the drained instance retires only once the replacement's
// cold start completes — the zero-downtime upgrade path.
func (sys *System) DrainNode(idx int) {
	node := nodeAt(sys, idx)
	if node == nil {
		return
	}
	sys.churn.Drains++
	sys.Clu.DrainNode(node)
	for _, f := range sys.funcs {
		f.sweepWarmRetired()
		f.migrateRetired()
	}
	for _, tj := range sys.jobs {
		tj.preemptRetired(false)
	}
}

// JoinNode returns a failed or drained node to service.
func (sys *System) JoinNode(idx int) {
	node := nodeAt(sys, idx)
	if node == nil {
		return
	}
	sys.churn.Joins++
	sys.Clu.JoinNode(node)
}

func nodeAt(sys *System, idx int) *cluster.Node {
	if idx < 0 || idx >= len(sys.Clu.Nodes) {
		return nil
	}
	return sys.Clu.Nodes[idx]
}

// sweepWarmRetired tears down keep-alive entries parked on retired GPUs
// before any relaunch can reuse them (a failed GPU's reservations are
// already gone; a draining one must empty out). A swept instance may
// still be finishing the batch it carried into keep-alive; that work is
// aborted and handed back to the gateway like any other eviction —
// request conservation holds across churn.
func (f *Function) sweepWarmRetired() {
	now := f.sys.Eng.Now()
	for i := len(f.warm) - 1; i >= 0; i-- {
		w := f.warm[i]
		if w.dead || w.reused || !w.si.dec.OnRetiredGPU() {
			continue
		}
		w.dead = true
		f.warm = append(f.warm[:i], f.warm[i+1:]...)
		reqs := w.si.inst.Abort()
		f.teardown(w.si)
		f.redispatch(reqs, now)
	}
}

// evictFailed kills every served instance touching a failed GPU: its
// queued and in-flight requests go back to the gateway (original Arrive
// stamps — retries pay their lost work in recorded latency), the stages
// detach, and a cold replacement launches immediately.
func (f *Function) evictFailed(now sim.Time) {
	for i := len(f.active) - 1; i >= 0; i-- {
		si := f.active[i]
		if !si.dec.OnFailedGPU() {
			continue
		}
		f.active = append(f.active[:i], f.active[i+1:]...)
		f.sys.churn.EvictedInstances++
		si.inst.SetActive(false)
		reqs := si.inst.Abort()
		f.teardown(si)
		if _, err := f.launch(true); err != nil {
			f.sys.churn.LostLaunches++
		}
		f.redispatch(reqs, now)
	}
}

// migrateRetired launches a cold replacement for every served instance
// on a retired (draining) GPU and schedules the old instance's
// retirement for when the replacement finishes cold-starting. If no
// replacement fits, the old instance keeps serving — the drain stalls
// rather than dropping capacity.
func (f *Function) migrateRetired() {
	for i := len(f.active) - 1; i >= 0; i-- {
		si := f.active[i]
		if si.migrating || !si.dec.OnRetiredGPU() {
			continue
		}
		if _, err := f.launch(true); err != nil {
			f.sys.churn.LostLaunches++
			continue
		}
		si.migrating = true
		f.sys.churn.MigratedInstances++
		// The replacement's activation event sits at now+ColdStart; one
		// millisecond later is strictly after it, so the handover never
		// leaves the function without the capacity it had.
		f.sys.Eng.After(f.Spec.ColdStart()+sim.Millisecond, func(at sim.Time) {
			f.retire(si, at)
		})
	}
}

// retire removes one served instance (if it is still serving — a
// failure may have raced the migration) and hands its outstanding work
// back to the gateway.
func (f *Function) retire(si *servedInstance, now sim.Time) {
	idx := slices.Index(f.active, si)
	if idx < 0 {
		return
	}
	f.active = append(f.active[:idx], f.active[idx+1:]...)
	si.inst.SetActive(false)
	reqs := si.inst.Abort()
	f.teardown(si)
	f.redispatch(reqs, now)
}

// redispatch returns aborted requests to the gateway: straight onto the
// least-loaded serving instance, or the pending queue when none serves.
// Under resilience, a copy whose request was already served elsewhere
// (a hedge loser caught in the abort) is dropped instead of redelivered
// — at-most-once service survives churn and fault interleavings.
func (f *Function) redispatch(reqs []instance.Request, now sim.Time) {
	for _, req := range reqs {
		if f.res != nil && f.res.done[req.ID] {
			f.res.dropCopy(req.ID)
			continue
		}
		if in := f.pickLeastLoaded(); in != nil {
			req.Dispatch = now
			f.enqueue(in, req)
		} else {
			f.pending = append(f.pending, req)
		}
	}
}

// preemptRetired restarts a training job whose workers touch retired
// GPUs: checkpoint-restart. Every stage detaches, the scheduler places
// a fresh worker set (on failure it retries every 5 s of virtual time —
// the wave may need to pass first), and the job resumes after a
// checkpoint-reload delay with its iteration progress intact.
func (tj *TrainingJob) preemptRetired(failedOnly bool) {
	if tj.Job == nil || tj.released || tj.Job.Finished() {
		return
	}
	hit := false
	check := func(d sched.Decision) bool {
		if failedOnly {
			return d.OnFailedGPU()
		}
		return d.OnRetiredGPU()
	}
	for _, d := range tj.decisions {
		if check(d) {
			hit = true
			break
		}
	}
	if !hit && tj.elastic != nil {
		for _, w := range tj.elastic.grown {
			if check(w.dec) {
				hit = true
				break
			}
		}
	}
	if !hit {
		return
	}
	tj.sys.churn.PreemptedJobs++
	workers := len(tj.decisions)
	for _, d := range tj.decisions {
		tj.sys.detachStages(d, tj.stagesOf(d))
		d.Release()
	}
	tj.releaseElastic()
	tj.decisions = nil
	tj.stages = nil
	tj.Job.SetActive(false)
	tj.replaceWorkers(workers)
}

// replaceWorkers places a fresh worker set for a preempted job,
// retrying on a fixed cadence while capacity is short.
func (tj *TrainingJob) replaceWorkers(workers int) {
	sys := tj.sys
	if tj.released || tj.Job.Finished() {
		return
	}
	decs, err := sys.scheduler.Schedule(sched.Request{
		Func: tj.Name, Profile: tj.Profile, Instances: workers,
	})
	if err != nil {
		sys.churn.LostLaunches++
		sys.Eng.After(5*sim.Second, func(sim.Time) { tj.replaceWorkers(workers) })
		return
	}
	var stages []instance.Stage
	stagesByDec := make([][]instance.Stage, 0, len(decs))
	for _, d := range decs {
		st, aerr := sys.attach(d, false, tj.Profile)
		if aerr != nil {
			for j, dd := range decs {
				if j < len(stagesByDec) {
					sys.detachStages(dd, stagesByDec[j])
				}
				dd.Release()
			}
			sys.Eng.After(5*sim.Second, func(sim.Time) { tj.replaceWorkers(workers) })
			return
		}
		stagesByDec = append(stagesByDec, st)
		stages = append(stages, st...)
	}
	tj.decisions = decs
	tj.stages = stages
	tj.Job.Preempt(stages)
	// Checkpoint reload before compute resumes — the training analogue
	// of the inference cold start.
	sys.Eng.After(tj.Spec.ColdStart(), func(sim.Time) {
		if tj.released || tj.Job.Finished() {
			return
		}
		tj.Job.SetActive(true)
		sys.wakeInst(tj.Job)
	})
}

// Package core assembles Dilu's three planes — control (profiler +
// scheduler), scaling (global scaler + per-GPU RCKM), and serving
// (gateway, instances, GPUs) — into a runnable System, and can assemble
// every baseline configuration of the evaluation from the same parts
// (Exclusive, MPS-l/-r, TGS, FaST-GS+, INFless+-l/-r, and the -RC/-WA/-VS
// ablations).
//
// A System owns one deterministic simulation engine. Experiments deploy
// functions/jobs, run the virtual clock, and read metrics back.
package core

import (
	"fmt"

	"dilu/internal/cluster"
	"dilu/internal/instance"
	"dilu/internal/metrics"
	"dilu/internal/rckm"
	"dilu/internal/scaler"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// Config selects the system variant and its substrate dimensions.
type Config struct {
	// Nodes and GPUsPerNode define the testbed (paper default: 5 × 4).
	Nodes       int
	GPUsPerNode int
	// Policy is the RCKM token-issuing policy name: Dilu, MPS-l, MPS-r,
	// Exclusive, TGS, FaST-GS, Uncontrolled. Default Dilu.
	Policy string
	// Scheduler is the cluster scheduler name: Dilu, Exclusive,
	// INFless+-l, INFless+-r, FaST-GS+. Default Dilu.
	Scheduler string
	// SchedOpts tunes the Dilu scheduler (Ω, γ, ablations).
	SchedOpts sched.Options
	// RCKM tunes Algorithm 2 (MaxTokens, η values).
	RCKM rckm.Config
	// NewScaler builds a fresh horizontal-scaling policy per inference
	// function; nil disables horizontal scaling.
	NewScaler func() scaler.Policy
	// Seed drives all randomness.
	Seed int64
	// Meter, when non-nil, observes the engine's virtual-time progress
	// (harness throughput accounting). It never affects behaviour.
	Meter *sim.Meter
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.Policy == "" {
		c.Policy = "Dilu"
	}
	if c.Scheduler == "" {
		c.Scheduler = "Dilu"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// System is one fully wired serverless DL serving stack.
type System struct {
	cfg Config
	Eng *sim.Engine
	Clu *cluster.Cluster

	scheduler sched.Scheduler
	managers  []*rckm.Manager // parallel to Clu.GPUs()
	mgrByGPU  map[*cluster.GPU]*rckm.Manager

	funcs []*Function
	jobs  []*TrainingJob
	insts []instance.Ticker

	rng    *sim.RNG
	reqSeq int64

	// GPUSeries samples occupied-GPU count once per second (SGT and
	// Figure 17 accounting).
	GPUSeries *metrics.Series

	onTick []func(now sim.Time)

	horizon sim.Duration
}

// NewSystem builds a system.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	policy, err := rckm.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	clu := cluster.New(cluster.Config{Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode, WithDevices: true})
	sys := &System{
		cfg:       cfg,
		Eng:       sim.NewEngine(),
		Clu:       clu,
		rng:       sim.NewRNG(cfg.Seed),
		mgrByGPU:  make(map[*cluster.GPU]*rckm.Manager),
		GPUSeries: metrics.NewSeries("occupied-gpus"),
	}
	if cfg.Meter != nil {
		sys.Eng.SetMeter(cfg.Meter)
	}
	switch cfg.Scheduler {
	case "Dilu":
		sys.scheduler = sched.NewDilu(clu, cfg.SchedOpts)
	case "Exclusive":
		sys.scheduler = sched.NewExclusive(clu)
	case "INFless+-l":
		sys.scheduler = sched.NewINFlessL(clu)
	case "INFless+-r":
		sys.scheduler = sched.NewINFlessR(clu)
	case "FaST-GS+":
		sys.scheduler = sched.NewFaSTGS(clu)
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", cfg.Scheduler)
	}
	for _, g := range clu.GPUs() {
		m := rckm.NewManager(g.Dev, policy, cfg.RCKM)
		sys.managers = append(sys.managers, m)
		sys.mgrByGPU[g] = m
	}
	sys.Eng.AddTicker(sim.TickerFunc(sys.tick))
	// One-second sampler for scaling decisions and occupancy traces.
	var sampler func(now sim.Time)
	sampler = func(now sim.Time) {
		sys.sample(now)
		sys.Eng.Schedule(now+sim.Second, sampler)
	}
	sys.Eng.Schedule(sim.Second, sampler)
	return sys, nil
}

// MustSystem is NewSystem that panics on configuration errors (test and
// experiment convenience).
func MustSystem(cfg Config) *System {
	sys, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return sys
}

// Config returns the system configuration (with defaults applied).
func (sys *System) Config() Config { return sys.cfg }

// Scheduler exposes the cluster scheduler.
func (sys *System) Scheduler() sched.Scheduler { return sys.scheduler }

// Functions returns the deployed inference functions.
func (sys *System) Functions() []*Function { return sys.funcs }

// Jobs returns the deployed training jobs.
func (sys *System) Jobs() []*TrainingJob { return sys.jobs }

// Manager returns the RCKM manager of a GPU.
func (sys *System) Manager(g *cluster.GPU) *rckm.Manager { return sys.mgrByGPU[g] }

// OnTick registers a per-5ms-tick observer (trace sampling for Figures
// 13/14).
func (sys *System) OnTick(fn func(now sim.Time)) { sys.onTick = append(sys.onTick, fn) }

// tick is the world loop: demand, tokens, execution, completions.
func (sys *System) tick(now sim.Time) {
	for _, in := range sys.insts {
		in.PreTick(now)
	}
	for _, m := range sys.managers {
		if len(m.Clients()) > 0 {
			m.Issue(now)
		}
	}
	for _, g := range sys.Clu.GPUs() {
		if len(g.Dev.Residents()) > 0 {
			g.Dev.ExecuteTick()
		}
	}
	for _, in := range sys.insts {
		in.PostTick(now)
	}
	for _, j := range sys.jobs {
		j.maybeFinish(now)
	}
	for _, fn := range sys.onTick {
		fn(now)
	}
}

// sample runs the 1 Hz control loop: RPS accounting, horizontal scaling,
// occupancy traces.
func (sys *System) sample(now sim.Time) {
	if sys.horizon > 0 && now > sys.horizon {
		return
	}
	sys.GPUSeries.Add(now, float64(sys.Clu.OccupiedCount()))
	for _, f := range sys.funcs {
		f.sample(now)
	}
}

// Run advances the virtual clock to the horizon.
func (sys *System) Run(d sim.Duration) {
	sys.horizon = sys.Eng.Now() + d
	sys.Eng.Run(sys.horizon)
}

// GPUSecondsUsed integrates the occupied-GPU trace (for SGT and the cost
// comparisons of Figure 17).
func (sys *System) GPUSecondsUsed() float64 { return sys.GPUSeries.Integral() }

func (sys *System) nextReqID() int64 {
	sys.reqSeq++
	return sys.reqSeq
}

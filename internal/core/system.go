// Package core assembles Dilu's three planes — control (profiler +
// scheduler), scaling (global scaler + per-GPU RCKM), and serving
// (gateway, instances, GPUs) — into a runnable System, and can assemble
// every baseline configuration of the evaluation from the same parts
// (Exclusive, MPS-l/-r, TGS, FaST-GS+, INFless+-l/-r, and the -RC/-WA/-VS
// ablations).
//
// A System owns one deterministic simulation engine. Experiments deploy
// functions/jobs, run the virtual clock, and read metrics back.
package core

import (
	"fmt"

	"dilu/internal/cluster"
	"dilu/internal/gpu"
	"dilu/internal/instance"
	"dilu/internal/metrics"
	"dilu/internal/rckm"
	"dilu/internal/scaler"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// Config selects the system variant and its substrate dimensions.
type Config struct {
	// Nodes and GPUsPerNode define the testbed (paper default: 5 × 4).
	Nodes       int
	GPUsPerNode int
	// Classes makes the fleet heterogeneous (mixed GPU generations);
	// empty keeps the uniform capacity-1.0 fleet.
	Classes []cluster.GPUClass
	// Policy is the RCKM token-issuing policy name: Dilu, MPS-l, MPS-r,
	// Exclusive, TGS, FaST-GS, Uncontrolled. Default Dilu.
	Policy string
	// Scheduler is the cluster scheduler name: Dilu, Exclusive,
	// INFless+-l, INFless+-r, FaST-GS+. Default Dilu.
	Scheduler string
	// SchedOpts tunes the Dilu scheduler (Ω, γ, ablations).
	SchedOpts sched.Options
	// RCKM tunes Algorithm 2 (MaxTokens, η values).
	RCKM rckm.Config
	// NewScaler builds a fresh horizontal-scaling policy per inference
	// function; nil disables horizontal scaling.
	NewScaler func() scaler.Policy
	// Admission is the gateway's admission policy; nil is the admit-all
	// pass-through (every submitted request is injected unconditionally,
	// the pre-gateway behaviour). Policies hold per-run state — build a
	// fresh value per System.
	Admission AdmissionPolicy
	// Resilience enables per-request timeout/retry and hedged dispatch
	// (see ResilienceConfig); nil disables the layer with zero overhead.
	Resilience *ResilienceConfig
	// Health enables the per-GPU health monitor and quarantine cycle
	// (see HealthConfig); nil disables monitoring.
	Health *HealthConfig
	// ColdStart enables the staged cold-start model with node-local
	// kernel caches (see ColdStartConfig); nil keeps the legacy scalar
	// cold start — identical timing, no caches, no stage attribution.
	ColdStart *ColdStartConfig
	// Prewarm enables predictive prewarming (see PrewarmConfig); nil
	// disables the layer with zero overhead.
	Prewarm *PrewarmConfig
	// RequeueOnTeardown makes the no-keep-alive scale-in path requeue an
	// instance's in-flight batch through the gateway instead of counting
	// it lost. Default false preserves the historical drop-on-teardown
	// ledger (resilience-enabled systems always requeue — losing
	// requests would defeat the retry machinery).
	RequeueOnTeardown bool
	// Seed drives all randomness.
	Seed int64
	// Meter, when non-nil, observes the engine's virtual-time progress
	// (harness throughput accounting). It never affects behaviour.
	Meter *sim.Meter
	// Invariants are read-only state checkers run at the end of every
	// fired tick and at the Run horizon; a violation panics. The default
	// factory's invariants (see SetDefaultInvariantFactory) are appended
	// to this list. Checkers never affect results — they are not tickers
	// and do not keep an idle system from fast-forwarding.
	Invariants []Invariant
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.Policy == "" {
		c.Policy = "Dilu"
	}
	if c.Scheduler == "" {
		c.Scheduler = "Dilu"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Resilience != nil {
		r := c.Resilience.withDefaults()
		c.Resilience = &r
	}
	if c.ColdStart != nil {
		cs := c.ColdStart.withDefaults()
		c.ColdStart = &cs
	}
	if c.Prewarm != nil {
		pw := c.Prewarm.withDefaults()
		c.Prewarm = &pw
	}
	return c
}

// System is one fully wired serverless DL serving stack.
type System struct {
	cfg Config
	Eng *sim.Engine
	Clu *cluster.Cluster

	scheduler sched.Scheduler
	managers  []*rckm.Manager // parallel to Clu.GPUs()
	mgrByGPU  map[*cluster.GPU]*rckm.Manager

	funcs      []*Function
	jobs       []*TrainingJob
	funcByName map[string]*Function

	// gw is the admission gateway (System.Submit); tenantFuncs and
	// tenantOrder index deployed functions by their deployment tenant
	// for fair-share admission and per-tenant SLO roll-ups.
	gw          gateway
	tenantFuncs map[string][]*Function
	tenantOrder []string

	// Active sets. The tick loop iterates exactly the entities whose
	// per-tick work is non-trivial, instead of scanning the whole world:
	// instances with queued or in-flight work, managers with registered
	// clients, devices with attached residents, and started-but-
	// unreleased training jobs. Membership is updated incrementally at
	// attach/detach and demand transitions; each set's predicate matches
	// the guard the pre-refactor full scan applied, so results are
	// bit-identical. When every set is empty (and no OnTick observer is
	// registered) the system deregisters its engine ticker entirely,
	// letting the engine fast-forward across idle stretches.
	activeInsts []instance.Ticker
	instActive  map[instance.Ticker]bool
	activeMgrs  []*rckm.Manager
	mgrActive   map[*rckm.Manager]bool
	activeDevs  []*gpu.Device
	devActive   map[*gpu.Device]bool
	liveJobs    []*TrainingJob
	tickHandle  *sim.TickerHandle

	rng    *sim.RNG
	reqSeq int64

	// GPUSeries samples occupied-GPU count once per second (SGT and
	// Figure 17 accounting).
	GPUSeries *metrics.Series

	onTick []func(now sim.Time)

	churn ChurnStats

	// faults counts injected gray-failure events and mitigation
	// outcomes; faultsSeen latches once any fault fires so the SLO
	// summary's resilience block appears only on runs that need it.
	faults     FaultStats
	faultsSeen bool
	health     *healthMonitor

	// coldStats aggregates cold-launch activity (kernel-cache hits,
	// prewarm launches, total cold time); surfaced in the SLO summary
	// only when the stage model or prewarming is configured.
	coldStats ColdStartStats

	// llmDeployed latches once any deployment uses the token-level
	// runtime; it gates the 1 Hz KV-occupancy probe and the SLO summary's
	// LLM block, keeping every fixed-batch run byte-identical. The peaks
	// are run maxima over the probe's samples.
	llmDeployed bool
	kvPeakMB    float64
	kvPeakShare float64

	invariants []Invariant

	horizon sim.Duration
}

// NewSystem builds a system.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	policy, err := rckm.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	clu := cluster.New(cluster.Config{Nodes: cfg.Nodes, GPUsPerNode: cfg.GPUsPerNode, WithDevices: true, Classes: cfg.Classes})
	sys := &System{
		cfg:         cfg,
		Eng:         sim.NewEngine(),
		Clu:         clu,
		rng:         sim.NewRNG(cfg.Seed),
		mgrByGPU:    make(map[*cluster.GPU]*rckm.Manager),
		instActive:  make(map[instance.Ticker]bool),
		mgrActive:   make(map[*rckm.Manager]bool),
		devActive:   make(map[*gpu.Device]bool),
		funcByName:  make(map[string]*Function),
		tenantFuncs: make(map[string][]*Function),
		gw:          gateway{policy: cfg.Admission, stats: make(map[string]*TenantStats), report: cfg.Admission != nil},
		GPUSeries:   metrics.NewSeries("occupied-gpus"),
	}
	if cfg.Meter != nil {
		sys.Eng.SetMeter(cfg.Meter)
	}
	sys.invariants = append(sys.invariants, cfg.Invariants...)
	if defaultInvariantFactory != nil {
		sys.invariants = append(sys.invariants, defaultInvariantFactory()...)
	}
	switch cfg.Scheduler {
	case "Dilu":
		sys.scheduler = sched.NewDilu(clu, cfg.SchedOpts)
	case "Exclusive":
		sys.scheduler = sched.NewExclusive(clu)
	case "INFless+-l":
		sys.scheduler = sched.NewINFlessL(clu)
	case "INFless+-r":
		sys.scheduler = sched.NewINFlessR(clu)
	case "FaST-GS+":
		sys.scheduler = sched.NewFaSTGS(clu)
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", cfg.Scheduler)
	}
	for _, g := range clu.GPUs() {
		m := rckm.NewManager(g.Dev, policy, cfg.RCKM)
		sys.managers = append(sys.managers, m)
		sys.mgrByGPU[g] = m
	}
	if cfg.Health != nil {
		sys.health = newHealthMonitor(sys, *cfg.Health)
	}
	if cfg.ColdStart != nil {
		for _, n := range clu.Nodes {
			n.Kernels = gpu.NewKernelCache(cfg.ColdStart.CacheCap)
		}
	}
	sys.tickHandle = sys.Eng.AddDynamicTicker(sim.TickerFunc(sys.tick))
	sys.updateTickActivity() // nothing deployed yet: start deregistered
	// One-second sampler for scaling decisions and occupancy traces.
	var sampler func(now sim.Time)
	sampler = func(now sim.Time) {
		sys.sample(now)
		sys.Eng.Schedule(now+sim.Second, sampler)
	}
	sys.Eng.Schedule(sim.Second, sampler)
	return sys, nil
}

// MustSystem is NewSystem that panics on configuration errors (test and
// experiment convenience).
func MustSystem(cfg Config) *System {
	sys, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return sys
}

// Config returns the system configuration (with defaults applied).
func (sys *System) Config() Config { return sys.cfg }

// Scheduler exposes the cluster scheduler.
func (sys *System) Scheduler() sched.Scheduler { return sys.scheduler }

// Functions returns the deployed inference functions.
func (sys *System) Functions() []*Function { return sys.funcs }

// Jobs returns the deployed training jobs.
func (sys *System) Jobs() []*TrainingJob { return sys.jobs }

// Manager returns the RCKM manager of a GPU.
func (sys *System) Manager(g *cluster.GPU) *rckm.Manager { return sys.mgrByGPU[g] }

// OnTick registers a per-5ms-tick observer (trace sampling for Figures
// 13/14). A system with observers ticks on every period for as long as
// it runs.
func (sys *System) OnTick(fn func(now sim.Time)) {
	sys.onTick = append(sys.onTick, fn)
	sys.updateTickActivity()
}

// wakeInst adds an instance runtime to the active set. Idempotent; idle
// instances are swept back out by the tick loop.
func (sys *System) wakeInst(t instance.Ticker) {
	if sys.instActive[t] {
		return
	}
	sys.instActive[t] = true
	sys.activeInsts = append(sys.activeInsts, t)
	sys.updateTickActivity()
}

// updateTickActivity (de)registers the system's engine ticker to match
// whether the next tick would do any work. The deactivation contract of
// sim.TickerHandle holds by construction: with every active set empty
// and no observers, tick is a no-op.
func (sys *System) updateTickActivity() {
	sys.tickHandle.SetActive(len(sys.activeInsts) > 0 || len(sys.activeMgrs) > 0 ||
		len(sys.activeDevs) > 0 || len(sys.liveJobs) > 0 || len(sys.onTick) > 0)
}

// tick is the world loop: demand, tokens, execution, completions. Each
// phase walks its active set; the sets' predicates mirror the guards the
// full scans used (instances with work, managers with clients, devices
// with residents), and every per-entity step touches only that entity's
// state, so iteration order within a phase cannot affect results.
func (sys *System) tick(now sim.Time) {
	for _, in := range sys.activeInsts {
		in.PreTick(now)
	}
	for _, m := range sys.activeMgrs {
		m.Issue(now)
	}
	for _, d := range sys.activeDevs {
		d.ExecuteTick()
	}
	idled := false
	for _, in := range sys.activeInsts {
		in.PostTick(now)
		if !in.Busy() {
			idled = true
		}
	}
	if idled {
		kept := sys.activeInsts[:0]
		for _, in := range sys.activeInsts {
			if in.Busy() {
				kept = append(kept, in)
			} else {
				delete(sys.instActive, in)
			}
		}
		for i := len(kept); i < len(sys.activeInsts); i++ {
			sys.activeInsts[i] = nil
		}
		sys.activeInsts = kept
	}
	if len(sys.liveJobs) > 0 {
		kept := sys.liveJobs[:0]
		for _, j := range sys.liveJobs {
			j.maybeFinish(now)
			if !j.released {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(sys.liveJobs); i++ {
			sys.liveJobs[i] = nil
		}
		sys.liveJobs = kept
	}
	for _, fn := range sys.onTick {
		fn(now)
	}
	sys.updateTickActivity()
	sys.checkInvariants(now)
}

// sample runs the 1 Hz control loop: RPS accounting, horizontal scaling,
// occupancy traces.
func (sys *System) sample(now sim.Time) {
	if sys.horizon > 0 && now > sys.horizon {
		return
	}
	sys.GPUSeries.Add(now, float64(sys.Clu.OccupiedCount()))
	if sys.llmDeployed {
		sys.sampleKV()
	}
	for _, f := range sys.funcs {
		f.sample(now)
	}
	if sys.health != nil {
		sys.health.sample(now)
	}
}

// Run advances the virtual clock to the horizon. Attached invariants are
// verified once more at the horizon: events fired during an idle
// fast-forward span (scale decisions, keep-alive expiries) would
// otherwise escape checking when no further tick fires.
func (sys *System) Run(d sim.Duration) {
	sys.horizon = sys.Eng.Now() + d
	sys.Eng.Run(sys.horizon)
	sys.checkInvariants(sys.Eng.Now())
}

// GPUSecondsUsed integrates the occupied-GPU trace (for SGT and the cost
// comparisons of Figure 17).
func (sys *System) GPUSecondsUsed() float64 { return sys.GPUSeries.Integral() }

// SLOSummary rolls up every deployed inference function's SLO accounting
// (violations, cold-start attribution, goodput, percentile attainment)
// over the virtual time elapsed so far. Functions appear in deployment
// order, so the summary is deterministic.
func (sys *System) SLOSummary() *metrics.SLOSummary {
	recs := make([]*metrics.LatencyRecorder, len(sys.funcs))
	for i, f := range sys.funcs {
		recs[i] = f.Rec
	}
	sum := metrics.SummarizeSLO(sys.Eng.Now(), recs...)
	sum.Gateway = sys.gatewaySLO(sys.Eng.Now())
	sum.Resilience = sys.resilienceSLO()
	sum.ColdStart = sys.coldStartSLO()
	sum.LLM = sys.llmSLO()
	return sum
}

func (sys *System) nextReqID() int64 {
	sys.reqSeq++
	return sys.reqSeq
}

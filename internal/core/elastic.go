package core

import (
	"dilu/internal/instance"
	"dilu/internal/rckm"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// ElasticOpts enables elastic serverless training for a job — the §7
// future-work direction the paper names ("more elastic serverless
// training"), implemented in the spirit of ElasticFlow: a data-parallel
// job grows extra workers into residual cluster capacity and retires
// them when their GPUs come under inference pressure.
type ElasticOpts struct {
	// MinWorkers and MaxWorkers bound the worker count. Min defaults to
	// the initial worker count, Max to 2× it.
	MinWorkers int
	MaxWorkers int
	// Every is the control period (default 2 s). Worker-set changes only
	// land at iteration boundaries, so the effective cadence is bounded
	// by iteration length too.
	Every sim.Duration
}

func (e ElasticOpts) withDefaults(initial int) ElasticOpts {
	if e.MinWorkers <= 0 {
		e.MinWorkers = initial
	}
	if e.MaxWorkers <= 0 {
		e.MaxWorkers = 2 * initial
	}
	if e.MaxWorkers < e.MinWorkers {
		e.MaxWorkers = e.MinWorkers
	}
	if e.Every <= 0 {
		e.Every = 2 * sim.Second
	}
	return e
}

// elasticState tracks one elastic job's controller.
type elasticState struct {
	opts ElasticOpts
	// grown maps each added worker's stage to its reservation so it can
	// be released on shrink.
	grown []elasticWorker
	seq   int
	// growPauseUntil damps shrink→grow oscillation: after retreating
	// from a pressured GPU the job stays at its reduced size for a
	// while instead of immediately re-claiming the same fragment.
	growPauseUntil sim.Time
}

type elasticWorker struct {
	stage instance.Stage
	dec   sched.Decision
}

// enableElastic arms the controller for a deployed job.
func (tj *TrainingJob) enableElastic(opts ElasticOpts, initial int) {
	tj.elastic = &elasticState{opts: opts.withDefaults(initial)}
	var step func(now sim.Time)
	step = func(now sim.Time) {
		tj.elasticStep(now)
		tj.sys.Eng.Schedule(now+tj.elastic.opts.Every, step)
	}
	tj.sys.Eng.Schedule(tj.elastic.opts.Every, step)
}

// Workers returns the job's current worker count.
func (tj *TrainingJob) Workers() int {
	if tj.Job == nil {
		return 0
	}
	return len(tj.Job.Workers)
}

// Elastic reports whether the job scales its worker set.
func (tj *TrainingJob) Elastic() bool { return tj.elastic != nil }

// elasticStep runs one control period: shrink away from pressured GPUs,
// otherwise grow into residual capacity.
func (tj *TrainingJob) elasticStep(now sim.Time) {
	es := tj.elastic
	if es == nil || tj.Job == nil || tj.released || tj.Job.Finished() {
		return
	}
	// Shrink: any grown worker whose GPU is protecting an SLO-sensitive
	// task gets retired. The job's TryRemoveWorker pops the most recent
	// worker, so pressured workers are rotated to the tail first.
	if len(tj.Job.Workers) > es.opts.MinWorkers && len(es.grown) > 0 {
		for i := len(es.grown) - 1; i >= 0; i-- {
			w := es.grown[i]
			mgr := tj.sys.mgrByGPU[w.dec.GPUs[0]]
			if mgr == nil || mgr.State() != rckm.StateEmergency {
				continue
			}
			if !tj.Job.AtBoundary() {
				return
			}
			// Move the pressured worker to the tail so the boundary pop
			// removes exactly it.
			last := len(tj.Job.Workers) - 1
			for j, st := range tj.Job.Workers {
				if st == w.stage {
					tj.Job.Workers[j], tj.Job.Workers[last] = tj.Job.Workers[last], tj.Job.Workers[j]
					break
				}
			}
			if _, ok := tj.Job.TryRemoveWorker(); ok {
				tj.sys.detachStages(w.dec, []instance.Stage{w.stage})
				w.dec.Release()
				es.grown = append(es.grown[:i], es.grown[i+1:]...)
				es.growPauseUntil = now + 15*es.opts.Every
			}
			return
		}
	}
	// Grow: place one more worker if the scheduler finds room and the
	// job is at a boundary.
	if now < es.growPauseUntil || len(tj.Job.Workers) >= es.opts.MaxWorkers || !tj.Job.AtBoundary() {
		return
	}
	es.seq++
	decs, err := tj.sys.scheduler.Schedule(sched.Request{
		Func: tj.Name, Profile: tj.Profile, Instances: 1,
	})
	if err != nil {
		return
	}
	stages, err := tj.sys.attach(decs[0], false, tj.Profile)
	if err != nil {
		decs[0].Release()
		return
	}
	if !tj.Job.TryAddWorker(stages[0]) {
		tj.sys.detachStages(decs[0], stages)
		decs[0].Release()
		return
	}
	es.grown = append(es.grown, elasticWorker{stage: stages[0], dec: decs[0]})
}

// releaseElastic tears down grown workers when the job finishes.
func (tj *TrainingJob) releaseElastic() {
	if tj.elastic == nil {
		return
	}
	for _, w := range tj.elastic.grown {
		tj.sys.detachStages(w.dec, []instance.Stage{w.stage})
		w.dec.Release()
	}
	tj.elastic.grown = nil
}

package core

import (
	"testing"

	"dilu/internal/scaler"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

func TestLLMInferenceSchedulerSharding(t *testing.T) {
	// A generative model deployed without pinning shards over its
	// pipeline depth via the scheduler's memory worst-fit.
	sys := MustSystem(Config{Nodes: 2, GPUsPerNode: 4})
	f, err := sys.DeployInference("llama", "LLaMA2-7B", InferOpts{
		Arrivals: workload.Poisson{RPS: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Stages != 4 {
		t.Fatalf("stages = %d, want the model's pipeline depth 4", f.Stages)
	}
	if got := sys.Clu.OccupiedCount(); got != 4 {
		t.Fatalf("occupied %d GPUs, want 4 fragments", got)
	}
	sys.Run(60 * sim.Second)
	if f.Served() < 60 {
		t.Fatalf("LLM served %d", f.Served())
	}
	// TPOT SLO should mostly hold at this light load.
	if svr := f.Rec.ViolationRate(); svr > 0.15 {
		t.Fatalf("LLM TPOT SVR %.2f too high", svr)
	}
}

func TestLLMCollocatesWithTrainingOnFragments(t *testing.T) {
	// The paper's Figure 7 LLaMA case: the LLM's fragments share GPUs
	// with training workers instead of new GPUs being opened.
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 4})
	if _, err := sys.DeployTraining("bert-t", "BERT-base", TrainOpts{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if sys.Clu.OccupiedCount() != 4 {
		t.Fatal("setup: 4 training workers should hold 4 GPUs")
	}
	if _, err := sys.DeployInference("llama", "LLaMA2-7B", InferOpts{
		Arrivals: workload.Poisson{RPS: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if sys.Clu.OccupiedCount() != 4 {
		t.Fatalf("LLM should reuse the 4 fragments, occupied=%d", sys.Clu.OccupiedCount())
	}
	sys.Run(20 * sim.Second)
}

func TestDeploymentFailsWhenClusterFull(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 1})
	// Two 20 GB jobs fill the GPU exactly (memory) and its request quota.
	if _, err := sys.DeployTraining("gpt2", "GPT2-large", TrainOpts{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DeployTraining("gpt2b", "GPT2-large", TrainOpts{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// A third cannot fit on any axis; placement failure surfaces via
	// Started (submission is asynchronous by design).
	third, err := sys.DeployTraining("gpt2c", "GPT2-large", TrainOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if third.Started() {
		t.Fatal("third 20GB job should not fit")
	}
	// Nor can a 2-worker job on a 1-GPU cluster (workers never share).
	sys2 := MustSystem(Config{Nodes: 1, GPUsPerNode: 1})
	tj, err := sys2.DeployTraining("ddp", "BERT-base", TrainOpts{Workers: 2})
	if err != nil {
		t.Fatal(err) // deferred placement reports via Started
	}
	if tj.Started() {
		t.Fatal("2 DDP workers cannot share the single GPU")
	}
}

func TestINFlessSystemVariantServes(t *testing.T) {
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 2, Policy: "MPS-l", Scheduler: "INFless+-l",
		NewScaler: func() scaler.Policy { return scaler.NewPredictive() },
	})
	f, err := sys.DeployInference("bert", "BERT-base", InferOpts{
		Arrivals: workload.Poisson{RPS: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30 * sim.Second)
	if f.Served() < 1000 {
		t.Fatalf("INFless+ variant served %d", f.Served())
	}
}

func TestFaSTGSSystemVariantServes(t *testing.T) {
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 2, Policy: "FaST-GS", Scheduler: "FaST-GS+",
		NewScaler: func() scaler.Policy { return scaler.NewEager() },
	})
	f, err := sys.DeployInference("bert", "BERT-base", InferOpts{
		Arrivals: workload.Poisson{RPS: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30 * sim.Second)
	if f.Served() < 1000 {
		t.Fatalf("FaST-GS+ variant served %d", f.Served())
	}
}

func TestPinValidation(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2})
	if _, err := sys.DeployInference("x", "BERT-base", InferOpts{Pin: []int{99}}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
	if _, err := sys.DeployInference("y", "LLaMA2-7B", InferOpts{Pin: []int{0}}); err == nil {
		t.Fatal("4-stage model pinned to 1 GPU accepted")
	}
	tj, err := sys.DeployTraining("t", "BERT-base", TrainOpts{Workers: 2, Pin: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if tj.Started() {
		t.Fatal("mismatched training pin should fail placement")
	}
}

func TestScaleOutRespectsCapacity(t *testing.T) {
	// On a one-GPU cluster already shared by training + inference, the
	// scaler's extra instances must fail gracefully without corrupting
	// the run.
	sys := MustSystem(Config{
		Nodes: 1, GPUsPerNode: 1,
		NewScaler: func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{Window: 10, PhiOut: 5, PhiIn: 8}) },
	})
	if _, err := sys.DeployTraining("t", "GPT2-large", TrainOpts{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := sys.DeployInference("i", "RoBERTa-large", InferOpts{
		Arrivals: workload.Constant{RPS: 300}, // far beyond one instance
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(60 * sim.Second)
	if f.Served() == 0 {
		t.Fatal("system wedged under failed scale-outs")
	}
}

func TestDelayedTrainingSubmission(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 2})
	tj, err := sys.DeployTraining("late", "BERT-base", TrainOpts{Workers: 1, StartAt: 10 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * sim.Second)
	if tj.Started() {
		t.Fatal("job started before its submission time")
	}
	sys.Run(10 * sim.Second)
	if !tj.Started() {
		t.Fatal("job did not start after submission time")
	}
	if tj.SubmitAt != 10*sim.Second {
		t.Fatalf("submit time %v", tj.SubmitAt)
	}
}

func TestFunctionSubmitManual(t *testing.T) {
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 1})
	f, err := sys.DeployInference("manual", "BERT-base", InferOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		at := sim.Time(i+1) * 100 * sim.Millisecond
		sys.Eng.Schedule(at, func(now sim.Time) { sys.Submit(now, Request{Func: "manual"}) })
	}
	sys.Run(5 * sim.Second)
	if f.Served() != 10 {
		t.Fatalf("served %d / 10 submitted", f.Served())
	}
	if sub, adm, shed := f.GatewayCounts(); sub != 10 || adm != 10 || shed != 0 {
		t.Fatalf("gateway counts = %d/%d/%d, want 10/10/0", sub, adm, shed)
	}
}

func TestGenerativePressureHolds(t *testing.T) {
	// An LLM instance under backlog must keep serving without deadlock
	// and report pressure to its clients.
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 4, Seed: 2})
	f, err := sys.DeployInference("llama", "LLaMA2-7B", InferOpts{
		Arrivals: workload.Bursty{BaseRPS: 2, Scale: 6, BurstDur: 20 * sim.Second, Quiet: 30 * sim.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(90 * sim.Second)
	if f.Served() < 100 {
		t.Fatalf("LLM under bursts served only %d", f.Served())
	}
}

func TestMPSLRespectsStaticGrantUnderScaleChanges(t *testing.T) {
	// Regression: releasing a collocated instance must not leave the MPS
	// normalization stale.
	sys := MustSystem(Config{Nodes: 1, GPUsPerNode: 1, Policy: "MPS-l"})
	tj, err := sys.DeployTraining("t", "BERT-base", TrainOpts{Workers: 1, TargetIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sys.DeployInference("i", "RoBERTa-large", InferOpts{
		Arrivals: workload.Poisson{RPS: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(60 * sim.Second)
	if !tj.Job.Finished() {
		t.Fatal("training never finished")
	}
	if f.Served() < 900 {
		t.Fatalf("inference starved after job release: %d", f.Served())
	}
}

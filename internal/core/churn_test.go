package core

import (
	"strings"
	"testing"

	"dilu/internal/cluster"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// churnSystem builds a 3-node serving system with one inference
// function under steady load.
func churnSystem(t *testing.T) (*System, *Function) {
	t.Helper()
	sys := MustSystem(Config{Nodes: 3, GPUsPerNode: 2, Seed: 11})
	f, err := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
		Instances: 3, Arrivals: workload.Poisson{RPS: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, f
}

// placementsOnNode counts live placements across a node's GPUs.
func placementsOnNode(n *cluster.Node) int {
	total := 0
	for _, g := range n.GPUs {
		total += len(g.Placements)
	}
	return total
}

func TestFailNodeEvictsAndRelaunchesCold(t *testing.T) {
	sys, f := churnSystem(t)
	sys.Run(5 * sim.Second)
	before := f.InstancesActive()
	coldBefore := f.ColdStarts.Value
	// Fail the node hosting the first instance's GPU.
	target := f.active[0].dec.GPUs[0].Node
	idx := -1
	for i, n := range sys.Clu.Nodes {
		if n == target {
			idx = i
		}
	}
	sys.FailNode(idx)
	if got := placementsOnNode(target); got != 0 {
		t.Fatalf("failed node still holds %d placements", got)
	}
	for _, g := range target.GPUs {
		if g.Dev.ResidentCount() != 0 {
			t.Fatalf("failed %s still executes residents", g.ID)
		}
	}
	cs := sys.ChurnStats()
	if cs.Failures != 1 || cs.EvictedInstances == 0 {
		t.Fatalf("churn stats wrong: %+v", cs)
	}
	if f.ColdStarts.Value <= coldBefore {
		t.Fatal("eviction relaunch did not pay a cold start")
	}
	if f.InstancesActive() != before {
		t.Fatalf("instances %d after relaunch, want %d", f.InstancesActive(), before)
	}
	// The system keeps serving through and after the failure.
	served := f.Served()
	sys.Run(10 * sim.Second)
	if f.Served() <= served {
		t.Fatal("function stopped serving after the failure")
	}
}

func TestDrainNodeMigratesMakeBeforeBreak(t *testing.T) {
	sys, f := churnSystem(t)
	sys.Run(5 * sim.Second)
	target := sys.Clu.Nodes[0]
	hadPlacements := placementsOnNode(target) > 0
	sys.DrainNode(0)
	// The drain completes once the replacements' cold starts elapse.
	sys.Run(f.Spec.ColdStart() + 5*sim.Second)
	if got := placementsOnNode(target); got != 0 {
		t.Fatalf("drained node still holds %d placements after migration", got)
	}
	cs := sys.ChurnStats()
	if cs.EvictedInstances != 0 {
		t.Fatalf("planned drain evicted %d instances", cs.EvictedInstances)
	}
	if hadPlacements && cs.MigratedInstances == 0 {
		t.Fatal("nothing migrated off the drained node")
	}
	// Make-before-break: capacity never dipped, so requests kept flowing.
	served := f.Served()
	sys.Run(5 * sim.Second)
	if f.Served() <= served {
		t.Fatal("function stopped serving during the drain")
	}
}

func TestOverlappingDrainsDoNotDuplicateMigrations(t *testing.T) {
	sys, f := churnSystem(t)
	sys.Run(5 * sim.Second)
	before := f.InstancesActive()
	// Repeated drain events for the same node inside one cold-start
	// window: the second and third must not re-migrate instances whose
	// handover is already in flight.
	sys.DrainNode(0)
	afterFirst := sys.ChurnStats().MigratedInstances
	sys.DrainNode(0)
	sys.DrainNode(0)
	if cs := sys.ChurnStats(); cs.MigratedInstances != afterFirst {
		t.Fatalf("repeated drains re-migrated: %d → %d", afterFirst, cs.MigratedInstances)
	}
	// A different node draining in the same window may cascade-migrate
	// the fresh replacements that landed on it — that is new work, not
	// duplication — but the serving instance count must come back to
	// baseline once the handovers complete, with both nodes empty.
	sys.DrainNode(1)
	sys.Run(2*f.Spec.ColdStart() + 5*sim.Second)
	if got := f.InstancesActive(); got != before {
		t.Fatalf("instances = %d after overlapping drains, want %d (no duplicates)", got, before)
	}
	if got := placementsOnNode(sys.Clu.Nodes[0]) + placementsOnNode(sys.Clu.Nodes[1]); got != 0 {
		t.Fatalf("drained nodes still hold %d placements", got)
	}
}

func TestJoinNodeRestoresPlacements(t *testing.T) {
	sys, _ := churnSystem(t)
	sys.Run(2 * sim.Second)
	sys.FailNode(0)
	sys.Run(2 * sim.Second)
	sys.JoinNode(0)
	node := sys.Clu.Nodes[0]
	for _, g := range node.GPUs {
		if !g.Schedulable() {
			t.Fatalf("%s not schedulable after join", g.ID)
		}
	}
	// A fresh deployment can land on the rejoined node again.
	f2, err := sys.DeployInference("bert", "BERT-base", InferOpts{Instances: 6})
	if err != nil {
		t.Fatal(err)
	}
	_ = f2
}

func TestTrainingJobPreemptsAndFinishes(t *testing.T) {
	sys := MustSystem(Config{Nodes: 2, GPUsPerNode: 2, Seed: 3})
	tj, err := sys.DeployTraining("job", "BERT-base", TrainOpts{Workers: 2, TargetIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * sim.Second)
	if !tj.Started() || tj.Job.Iterations() == 0 {
		t.Fatal("job not making progress before the failure")
	}
	itersBefore := tj.Job.Iterations()
	// Fail whichever node hosts the first worker.
	target := tj.decisions[0].GPUs[0].Node
	idx := 0
	for i, n := range sys.Clu.Nodes {
		if n == target {
			idx = i
		}
	}
	sys.FailNode(idx)
	if sys.ChurnStats().PreemptedJobs != 1 {
		t.Fatalf("job not preempted: %+v", sys.ChurnStats())
	}
	for _, d := range tj.decisions {
		for _, g := range d.GPUs {
			if g.Node == target {
				t.Fatalf("preempted worker re-placed on the failed node %s", g.ID)
			}
		}
	}
	sys.Run(60 * sim.Second)
	if !tj.Job.Finished() {
		t.Fatalf("job never finished after preemption (iters %d)", tj.Job.Iterations())
	}
	if tj.Job.Iterations() < itersBefore {
		t.Fatal("iteration progress lost across preemption")
	}
}

func TestScheduleChurnReplaysTrace(t *testing.T) {
	sys, _ := churnSystem(t)
	evs, err := workload.ParseChurnCSV(strings.NewReader("1,fail,0\n3,join,0\n5,drain,1\n8,join,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	sys.ScheduleChurn(evs)
	sys.Run(10 * sim.Second)
	cs := sys.ChurnStats()
	if cs.Failures != 1 || cs.Drains != 1 || cs.Joins != 2 {
		t.Fatalf("trace misapplied: %+v", cs)
	}
	for _, n := range sys.Clu.Nodes {
		for _, g := range n.GPUs {
			if !g.Schedulable() {
				t.Fatalf("%s still retired after the trace's joins", g.ID)
			}
		}
	}
}

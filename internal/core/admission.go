package core

import (
	"math"
	"strings"

	"dilu/internal/sim"
)

// Admission policies decide, per submitted request, whether the gateway
// admits or sheds. The three built-ins cover the production triad:
// per-tenant token-bucket rate limits, DRF-style weighted fair sharing
// of serving capacity, and deadline-aware load shedding that trades
// dropped requests against SLO goodput under overload (the kserve
// batcher/inference-graph admission semantics, collapsed to the
// single-stage request model). Policies hold per-run state, so build a
// fresh value per System.

// AdmissionPolicy decides one request at submission time. The gateway
// has already resolved the request's effective tenant (empty inherits
// the function's deployment tenant) and the target function; policies
// may read — never mutate — serving-plane state through f and f.sys.
type AdmissionPolicy interface {
	Name() string
	Admit(now sim.Time, req Request, f *Function) bool
}

// ---------------------------------------------------------------------------
// Token bucket.

// TokenBucket rate-limits each tenant independently: a bucket of Burst
// tokens refills continuously at Rate tokens/second, and a request is
// admitted only when a full token is available. Buckets start full and
// refill lazily at admission time, so the policy is deterministic and
// costs O(1) per request with no tickers.
type TokenBucket struct {
	Rate  float64 // sustained admissions per second per tenant
	Burst float64 // bucket depth; <=0 defaults to max(Rate, 1)

	buckets map[string]*tbBucket
}

type tbBucket struct {
	tokens float64
	last   sim.Time
}

// NewTokenBucket builds a per-tenant token-bucket policy.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst}
}

func (tb *TokenBucket) burst() float64 {
	if tb.Burst > 0 {
		return tb.Burst
	}
	return math.Max(tb.Rate, 1)
}

// Name implements AdmissionPolicy.
func (tb *TokenBucket) Name() string { return "token-bucket" }

// Admit implements AdmissionPolicy.
func (tb *TokenBucket) Admit(now sim.Time, req Request, _ *Function) bool {
	if tb.Rate <= 0 {
		return false
	}
	if tb.buckets == nil {
		tb.buckets = make(map[string]*tbBucket)
	}
	b, ok := tb.buckets[req.Tenant]
	if !ok {
		b = &tbBucket{tokens: tb.burst(), last: now}
		tb.buckets[req.Tenant] = b
	}
	if now > b.last {
		b.tokens = math.Min(tb.burst(), b.tokens+(now-b.last).Seconds()*tb.Rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// ---------------------------------------------------------------------------
// DRF-style fair sharing.

// FairShare divides a fixed pool of serving capacity — Capacity
// concurrent in-flight requests, the dominant resource of an inference
// tenant — across tenants by weighted max-min fairness (DRF collapsed
// to its single-resource case). A request is admitted only while its
// tenant's in-flight count stays within the tenant's current fair
// allocation; idle tenants' unused shares redistribute to the busy
// ones, so the pool is always fully usable.
type FairShare struct {
	// Capacity is the total concurrent-request pool. <=0 admits all.
	Capacity float64
	// Weights maps tenant to relative weight; missing tenants weigh 1.
	Weights map[string]float64
}

// Name implements AdmissionPolicy.
func (fs FairShare) Name() string { return "fair-share" }

func (fs FairShare) weight(tenant string) float64 {
	if w, ok := fs.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// Admit implements AdmissionPolicy: recompute the max-min allocation
// over the tenants' current in-flight demand (with this request added
// to its tenant's) and admit iff the tenant stays within its share.
func (fs FairShare) Admit(now sim.Time, req Request, f *Function) bool {
	if fs.Capacity <= 0 {
		return true
	}
	sys := f.sys
	tenants := sys.tenantOrder
	idx := -1
	weights := make([]float64, 0, len(tenants)+1)
	demands := make([]float64, 0, len(tenants)+1)
	for i, t := range tenants {
		if t == req.Tenant {
			idx = i
		}
		var inflight int64
		for _, tf := range sys.tenantFuncs[t] {
			inflight += tf.InFlightCount()
		}
		weights = append(weights, fs.weight(t))
		demands = append(demands, float64(inflight))
	}
	if idx < 0 {
		// Tenant without a deployment of its own (request-level identity
		// on a shared function): account it as one extra tenant.
		idx = len(demands)
		weights = append(weights, fs.weight(req.Tenant))
		demands = append(demands, 0)
	}
	demands[idx]++ // the request under decision
	alloc := FairShares(fs.Capacity, weights, demands)
	return demands[idx] <= alloc[idx]+fairShareEps
}

const fairShareEps = 1e-9

// FairShares computes the weighted max-min (DRF, single dominant
// resource) allocation of capacity across tenants: each tenant receives
// min(demand_i, level·w_i) with the water level chosen so the total
// equals min(capacity, Σdemand). When demand saturates the pool the
// shares sum to capacity exactly — the property the admission property
// test pins. Nil weights (or non-positive entries) count as 1.
func FairShares(capacity float64, weights, demands []float64) []float64 {
	alloc := make([]float64, len(demands))
	if capacity <= 0 {
		return alloc
	}
	w := func(i int) float64 {
		if i < len(weights) && weights[i] > 0 {
			return weights[i]
		}
		return 1
	}
	active := make([]int, 0, len(demands))
	for i, d := range demands {
		if d > 0 {
			active = append(active, i)
		}
	}
	remaining := capacity
	for len(active) > 0 && remaining > fairShareEps {
		var wsum float64
		for _, i := range active {
			wsum += w(i)
		}
		level := remaining / wsum
		// Saturate every tenant whose residual demand sits below its
		// weighted share of the remainder; their leftovers redistribute
		// on the next pass. If nobody saturates, the level splits the
		// remainder exactly and the filling is done.
		kept := active[:0]
		saturated := false
		for _, i := range active {
			if demands[i]-alloc[i] <= level*w(i)+fairShareEps {
				remaining -= demands[i] - alloc[i]
				alloc[i] = demands[i]
				saturated = true
			} else {
				kept = append(kept, i)
			}
		}
		active = kept
		if !saturated {
			for _, i := range active {
				alloc[i] += level * w(i)
			}
			remaining = 0
		}
	}
	return alloc
}

// ---------------------------------------------------------------------------
// Deadline-aware load shedding.

// DeadlineShed sheds requests whose estimated completion would overrun
// their deadline — admission-time load shedding that keeps the admitted
// queue short enough to serve within budget, trading dropped requests
// for SLO goodput under overload. A request without its own deadline
// budget falls back to the target function's SLO; with neither, it is
// always admitted.
type DeadlineShed struct {
	// Slack scales the deadline the estimate is compared against:
	// values below 1 shed earlier (headroom for estimate error), above
	// 1 admit more optimistically. <=0 defaults to 1.
	Slack float64
}

// Name implements AdmissionPolicy.
func (DeadlineShed) Name() string { return "deadline-shed" }

// Admit implements AdmissionPolicy.
func (p DeadlineShed) Admit(now sim.Time, req Request, f *Function) bool {
	deadline := req.Deadline
	if deadline <= 0 {
		deadline = f.Rec.SLO()
	}
	if deadline <= 0 {
		return true
	}
	slack := p.Slack
	if slack <= 0 {
		slack = 1
	}
	return f.estimateLatency() <= deadline.Seconds()*slack
}

// estimateLatency is the gateway's completion estimate for one more
// request on this function, in seconds: the current backlog (gateway
// pending plus every instance's queued and in-flight work) plus the
// request itself, drained at the serving instances' aggregate profiled
// throughput. With nothing serving (cold-start window, eviction) the
// estimate is +Inf — a deadline-bound request cannot be promised
// anything.
func (f *Function) estimateLatency() float64 {
	backlog := len(f.pending)
	serving := 0
	for _, si := range f.active {
		backlog += si.inst.Load()
		if si.inst.Active() {
			serving++
		}
	}
	rate := float64(serving) * f.Profile.ServingRPS
	if rate <= 0 {
		return math.Inf(1)
	}
	return float64(backlog+1) / rate
}

// ---------------------------------------------------------------------------
// Composition.

// Chain composes admission policies: a request is admitted only when
// every link admits it, evaluated in order with short-circuit on the
// first shed (a later token bucket is not drained by a request an
// earlier link already rejected).
type Chain []AdmissionPolicy

// Name implements AdmissionPolicy.
func (c Chain) Name() string {
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = p.Name()
	}
	return strings.Join(parts, "+")
}

// Admit implements AdmissionPolicy.
func (c Chain) Admit(now sim.Time, req Request, f *Function) bool {
	for _, p := range c {
		if !p.Admit(now, req, f) {
			return false
		}
	}
	return true
}

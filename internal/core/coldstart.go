// Staged cold starts: the serving-plane half of the cold-start stage
// model. model.ColdStartStages supplies the decomposition (image init,
// parameter load, kernel JIT); this file applies the node-local kernel
// cache to shrink the JIT stage on relaunch, stamps each request freed
// by a cold launch with the stage actually on its critical path, and
// rolls cache/stage activity into the SLO summary's cold-start block.
package core

import (
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/sched"
	"dilu/internal/sim"
)

// ColdStartConfig enables the staged cold-start model with node-local
// kernel caches. Nil (the Config default) keeps the legacy scalar
// path — identical timing, no caches, no stage attribution — so every
// pre-stage driver manifest stays byte-identical.
type ColdStartConfig struct {
	// JITFactor scales the kernel-JIT stage of a cold launch whose
	// target nodes all hold compiled kernels for the function: 0 (the
	// default) skips the stage entirely, 0.5 halves it, 1 disables the
	// shortening while keeping caches and attribution live.
	JITFactor float64
	// CacheCap bounds each node's kernel cache (LRU entries); <= 0
	// defaults to 32 functions per node.
	CacheCap int
}

func (c ColdStartConfig) withDefaults() ColdStartConfig {
	if c.CacheCap <= 0 {
		c.CacheCap = 32
	}
	return c
}

// ColdStartStats aggregates the run's cold-launch activity for the SLO
// summary's cold-start block.
type ColdStartStats struct {
	KernelCacheHits   int64
	KernelCacheMisses int64
	PrewarmLaunches   int64
	ColdLaunches      int64
	ColdTime          sim.Duration
}

// ColdStartStats returns the run's cold-launch counters.
func (sys *System) ColdStartStats() ColdStartStats { return sys.coldStats }

// trackColdStages reports whether precise cold-on-path attribution is
// armed: either the stage model or prewarming makes cold starts
// first-class.
func (sys *System) trackColdStages() bool {
	return sys.cfg.ColdStart != nil || sys.cfg.Prewarm != nil
}

// coldStages returns the effective stage durations for a cold launch
// on the decision's GPUs. With the stage model enabled, a launch whose
// target nodes all hold compiled kernels for the function shrinks its
// JIT stage by JITFactor; multi-node instances hit only when every
// node is warm (each shard JITs locally). The default decomposition
// sums exactly to Spec.ColdStart(), so the legacy path's timing is
// unchanged to the nanosecond.
func (f *Function) coldStages(dec sched.Decision) model.ColdStartStages {
	st := f.Spec.ColdStartStages()
	cc := f.sys.cfg.ColdStart
	if cc == nil {
		return st
	}
	warm := len(dec.GPUs) > 0
	for _, g := range dec.GPUs {
		if g.Node == nil || !g.Node.KernelsWarm(f.Name) {
			warm = false
			break
		}
	}
	if warm {
		f.sys.coldStats.KernelCacheHits++
		st.KernelJIT = sim.Duration(float64(st.KernelJIT) * cc.JITFactor)
	} else {
		f.sys.coldStats.KernelCacheMisses++
	}
	return st
}

// noteKernels records the function's kernels as compiled on every node
// the decision touches — called when an instance activates (its JIT,
// full or shortened, has completed by then). No-op on the legacy path:
// caches exist only when the stage model is configured.
func (f *Function) noteKernels(dec sched.Decision) {
	if f.sys.cfg.ColdStart == nil {
		return
	}
	for _, g := range dec.GPUs {
		if g.Node != nil && g.Node.Kernels != nil {
			g.Node.Kernels.Note(f.Name)
		}
	}
}

// coldStageOnPath attributes a request freed by a cold launch to the
// launch stage its wait overlapped the most: the launch window is
// [ready − total, ready], split into the three stage segments, and the
// stage with the maximum overlap of [arrive, ready] wins (earlier
// stage on exact ties). A request that never waited inside the window
// gets ColdNone.
func coldStageOnPath(arrive, ready sim.Time, st model.ColdStartStages) metrics.ColdStage {
	start := ready - sim.Time(st.Total())
	if arrive < start {
		arrive = start
	}
	if arrive >= ready {
		return metrics.ColdNone
	}
	b1 := start + sim.Time(st.ImageInit)
	b2 := b1 + sim.Time(st.ModelLoad)
	overlap := func(lo, hi sim.Time) sim.Duration {
		if arrive > lo {
			lo = arrive
		}
		if hi <= lo {
			return 0
		}
		return sim.Duration(hi - lo)
	}
	best, bestStage := sim.Duration(0), metrics.ColdNone
	for _, seg := range [...]struct {
		lo, hi sim.Time
		stage  metrics.ColdStage
	}{
		{start, b1, metrics.ColdImageInit},
		{b1, b2, metrics.ColdModelLoad},
		{b2, ready, metrics.ColdKernelJIT},
	} {
		if ov := overlap(seg.lo, seg.hi); ov > best {
			best, bestStage = ov, seg.stage
		}
	}
	return bestStage
}

// flushPendingCold is flushPending for a cold launch's activation: the
// same priority/deadline drain, with each dispatched request stamped
// with the cold-start stage on its critical path. Dispatch order and
// timing are identical to flushPending — the stamp is attribution
// metadata the recorder only counts when stage tracking is armed, so
// the legacy path's bytes are untouched.
func (f *Function) flushPendingCold(now sim.Time, st model.ColdStartStages) {
	if len(f.pending) == 0 {
		return
	}
	f.orderPending()
	drained := 0
	for _, req := range f.pending {
		in := f.pickLeastLoaded()
		if in == nil {
			break
		}
		req.Dispatch = now
		req.ColdStage = coldStageOnPath(req.Arrive, now, st)
		f.enqueue(in, req)
		drained++
	}
	if drained == 0 {
		return
	}
	f.pending = append(f.pending[:0], f.pending[drained:]...)
}

// coldStartSLO assembles the SLO summary's cold-start block; nil (and
// therefore absent from manifests) unless the stage model or
// prewarming is configured.
func (sys *System) coldStartSLO() *metrics.ColdStartSLO {
	if !sys.trackColdStages() {
		return nil
	}
	cs := &metrics.ColdStartSLO{
		KernelCacheHits:   sys.coldStats.KernelCacheHits,
		KernelCacheMisses: sys.coldStats.KernelCacheMisses,
		PrewarmLaunches:   sys.coldStats.PrewarmLaunches,
		ColdLaunches:      sys.coldStats.ColdLaunches,
		ColdMillisTotal:   sys.coldStats.ColdTime.Millis(),
	}
	for _, f := range sys.funcs {
		cs.ImageInitViolations += int64(f.Rec.StageViolations(metrics.ColdImageInit))
		cs.ModelLoadViolations += int64(f.Rec.StageViolations(metrics.ColdModelLoad))
		cs.KernelJITViolations += int64(f.Rec.StageViolations(metrics.ColdKernelJIT))
		cs.WarmQueueViolations += int64(f.Rec.WarmQueueViolations())
	}
	return cs
}

package core

import (
	"cmp"
	"fmt"
	"slices"

	"dilu/internal/cluster"
	"dilu/internal/instance"
	"dilu/internal/metrics"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/scaler"
	"dilu/internal/sched"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// InferOpts configures an inference function deployment.
type InferOpts struct {
	// Instances is the initial (pre-warmed) instance count; default 1.
	Instances int
	// Stages shards every instance over this many GPU fragments
	// (generative models default to their pipeline depth when 0).
	Stages int
	// Arrivals drives the function's request workload; nil means requests
	// are submitted manually via System.Submit.
	Arrivals workload.Arrivals
	// Profile overrides Dilu profiling when non-nil (used by ablations
	// and calibration experiments).
	Profile *profiler.Profile
	// Pin places instances on the given GPU indices directly, bypassing
	// the scheduler — used by the GPU-level collocation experiments that
	// fix placements by construction (Figures 7-11, 13, 14).
	Pin []int
	// NoScaler disables horizontal scaling for this function even when
	// the system has a scaler factory.
	NoScaler bool
	// StartCold launches the initial instances through the cold-start
	// path (serverless deploy semantics: the first requests queue behind
	// the launch and pay it on their critical path). Default false keeps
	// the historical pre-warmed deploy, where instances serve from t=0.
	StartCold bool
	// SLO overrides the model's default latency SLO for this deployment
	// (per-function targets for SLO-pressure scenarios); zero keeps the
	// model default.
	SLO sim.Duration
	// Tenant is the deployment's tenant identity: requests submitted
	// without an explicit tenant are accounted against it, and it labels
	// the function's row in the per-tenant SLO roll-up. Empty is the
	// default tenant (single-tenant runs keep their pre-tenant output).
	Tenant string
	// Priority and Deadline seed the requests the deployment's Arrivals
	// series submits: Priority orders the gateway's pending queue (higher
	// first), Deadline is each request's completion budget relative to
	// submission (deadline-aware admission and pending-queue ordering).
	Priority int
	Deadline sim.Duration
	// LLM switches the deployment to the token-level serving runtime
	// (continuous batching, per-sequence KV-cache accounting); nil keeps
	// the fixed-batch runtime. See LLMOpts.
	LLM *LLMOpts
}

// servedInstance couples a running inference instance with its
// reservation.
type servedInstance struct {
	inst   instance.Server
	dec    sched.Decision
	stages []instance.Stage
	// migrating marks an instance whose make-before-break replacement
	// is already launched and whose retirement is scheduled; a second
	// drain event inside the cold-start window must not migrate it
	// again.
	migrating bool
}

// warmEntry is a keep-alive (descheduled but resident) instance.
type warmEntry struct {
	si      *servedInstance
	expires sim.Time
	reused  bool
	dead    bool
}

// Function is one deployed serverless inference function.
type Function struct {
	sys     *System
	Name    string
	Spec    *model.Spec
	Profile profiler.Profile
	Stages  int

	Rec *metrics.LatencyRecorder

	// ColdStarts counts instance launches that paid a cold start after
	// initial deployment (the CSC of Table 3). Launches counts every
	// post-deployment launch including warm reuses.
	ColdStarts metrics.Counter
	Launches   metrics.Counter

	// RPSTrace and InstTrace are 1 Hz traces for Figure 12.
	RPSTrace  *metrics.Series
	InstTrace *metrics.Series

	policy scaler.Policy
	active []*servedInstance
	warm   []*warmEntry

	pending []instance.Request
	arrived int // arrivals in the current 1 s sample window

	// Gateway ledger (see gateway.go): submitted = admitted + shed, and
	// admitted = served + in-flight + lost. The simtest
	// request-conservation invariant recounts these from the serving
	// plane every tick. lost counts admitted requests destroyed with
	// their instance on the no-keep-alive scale-in path (the one teardown
	// that drops work rather than redispatching it — see scaleIn).
	tenant    string
	submitted int64
	admitted  int64
	shed      int64
	lost      int64

	// res is the request-resilience state (timeout/retry/hedge); nil
	// whenever Config.Resilience is nil — every touchpoint guards on
	// it, keeping the default path byte-identical.
	res *resilience

	// prewarm is the predictive-prewarming state (rate-trend ring and
	// in-flight launch windows); nil whenever Config.Prewarm is nil.
	prewarm *prewarmState

	// llm is the token-level serving state (profile, token recorder,
	// length sampler); nil whenever the deployment has no LLMOpts —
	// every touchpoint guards on it, keeping fixed-batch deployments
	// byte-identical.
	llm *llmState

	pinned []int
	seq    int
}

// Tenant returns the function's deployment tenant ("" = default).
func (f *Function) Tenant() string { return f.tenant }

// GatewayCounts returns the function's admission ledger.
func (f *Function) GatewayCounts() (submitted, admitted, shed int64) {
	return f.submitted, f.admitted, f.shed
}

// Lost returns admitted requests destroyed with their instance (the
// no-keep-alive scale-in teardown) — the only way an admitted request
// leaves the system unserved.
func (f *Function) Lost() int64 { return f.lost }

// InFlightCount is the ledger view of the function's in-system requests:
// admitted but neither served nor lost. Fair-share admission treats it
// as the tenant's dominant-resource demand.
func (f *Function) InFlightCount() int64 { return f.admitted - f.Served() - f.lost }

// RecountInFlight recounts in-flight requests from first principles —
// gateway pending plus every instance's queued and batched work,
// including keep-alive entries whose expiry fired but whose teardown
// kept the entry in the list. The conservation invariant compares this
// against InFlightCount every tick.
func (f *Function) RecountInFlight() int64 {
	n := int64(len(f.pending))
	for _, si := range f.active {
		n += int64(si.inst.Load())
	}
	for _, w := range f.warm {
		if !w.reused {
			n += int64(w.si.inst.Load())
		}
	}
	if f.res != nil {
		// Backed-off retries sit in no queue but are still in flight;
		// hedge duplicates inflate the recount by design — the invariant
		// compares against InFlightCount() + ExtraCopies().
		n += f.res.parked
	}
	return n
}

// DeployInference profiles (unless overridden), places and pre-warms an
// inference function.
func (sys *System) DeployInference(name, modelName string, opts InferOpts) (*Function, error) {
	spec := model.ByName(modelName)
	var prof profiler.Profile
	if opts.Profile != nil {
		prof = *opts.Profile
	} else {
		prof = profiler.For(spec, profiler.RoleInference)
	}
	stages := opts.Stages
	if stages == 0 && spec.Generative {
		stages = spec.PipelineStages
	}
	if stages <= 0 {
		stages = 1
	}
	slo := spec.SLO
	if opts.SLO > 0 {
		slo = opts.SLO
	}
	f := &Function{
		sys: sys, Name: name, Spec: spec, Profile: prof, Stages: stages,
		Rec:       metrics.NewLatencyRecorder(name, slo),
		RPSTrace:  metrics.NewSeries(name + "/rps"),
		InstTrace: metrics.NewSeries(name + "/instances"),
		pinned:    opts.Pin,
		tenant:    opts.Tenant,
	}
	if opts.LLM != nil {
		st, err := newLLMState(sys, f, *opts.LLM)
		if err != nil {
			return nil, err
		}
		f.llm = st
		sys.llmDeployed = true
	}
	if sys.cfg.Resilience != nil {
		f.res = newResilience(sys.cfg.Resilience)
	}
	if sys.cfg.Prewarm != nil {
		f.prewarm = newPrewarmState(*sys.cfg.Prewarm)
	}
	if sys.trackColdStages() {
		f.Rec.SetColdStageTracking(true)
	}
	if f.tenant != "" {
		f.Rec.SetTenant(f.tenant)
	}
	if sys.cfg.NewScaler != nil && !opts.NoScaler {
		f.policy = sys.cfg.NewScaler()
	}
	n := opts.Instances
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if _, err := f.launch(opts.StartCold); err != nil {
			return nil, err
		}
	}
	if opts.Arrivals != nil {
		// Arrival times are relative to the deployment moment: a
		// function deployed mid-run starts its trace fresh. One shared
		// callback serves every arrival — the submission time arrives as
		// the event's `now` — so an N-request trace costs N heap slots,
		// not N closures. Arrivals enter through the gateway like any
		// Submit, with the deployment's tenant/priority/deadline stamped
		// on every request.
		base := sys.Eng.Now()
		arr := opts.Arrivals.Generate(sys.rng.Fork(int64(len(sys.funcs)+1)), sys.remainingHorizonHint())
		tmpl := Request{Func: name, Tenant: opts.Tenant, Priority: opts.Priority, Deadline: opts.Deadline}
		sys.Eng.ScheduleSeries(base, arr, func(now sim.Time) { sys.submit(f, now, tmpl) })
	}
	sys.funcs = append(sys.funcs, f)
	// Last deployment wins the name (redeploy semantics); Submit resolves
	// through this index, and the tenant index feeds fair-share admission
	// and the per-tenant SLO roll-up.
	sys.funcByName[name] = f
	if _, ok := sys.tenantFuncs[f.tenant]; !ok {
		sys.tenantOrder = append(sys.tenantOrder, f.tenant)
	}
	sys.tenantFuncs[f.tenant] = append(sys.tenantFuncs[f.tenant], f)
	return f, nil
}

// remainingHorizonHint bounds pre-generated arrivals; experiments run at
// most a few simulated hours.
func (sys *System) remainingHorizonHint() sim.Duration { return 4 * sim.Hour }

// inject delivers one admitted request into the serving plane. It is
// the gateway's dispatch step — System.Submit is the public entry
// point; nothing reaches an instance without passing admission.
func (f *Function) inject(now sim.Time, greq Request) {
	f.arrived++
	req := instance.Request{
		ID: f.sys.nextReqID(), Arrive: now,
		Tenant: greq.Tenant, Priority: greq.Priority,
		PromptTokens: greq.PromptTokens, DecodeTokens: greq.DecodeTokens,
	}
	if greq.Deadline > 0 {
		req.Deadline = now + greq.Deadline
	}
	if f.llm != nil && req.PromptTokens == 0 && req.DecodeTokens == 0 {
		// Token-level deployments stamp sampled lengths on requests that
		// carry none (the arrival-series path); explicit lengths pass
		// through untouched.
		req.PromptTokens, req.DecodeTokens = f.llm.sampleTokens()
	}
	if f.res != nil {
		f.armResilience(req, now)
	}
	if in := f.pickLeastLoaded(); in != nil {
		req.Dispatch = now
		f.enqueue(in, req)
		return
	}
	f.pending = append(f.pending, req)
}

// enqueue hands a request to an instance, entering it into the system's
// tick-loop active set on the idle→busy transition.
func (f *Function) enqueue(in instance.Server, req instance.Request) {
	wasBusy := in.Busy()
	in.Enqueue(req)
	if !wasBusy {
		f.sys.wakeInst(in)
	}
}

// pickLeastLoaded is the gateway's dispatch rule across active instances.
func (f *Function) pickLeastLoaded() instance.Server {
	var best instance.Server
	bestLoad := 1 << 30
	for _, si := range f.active {
		if !si.inst.Active() {
			continue
		}
		if l := si.inst.Load(); l < bestLoad {
			bestLoad = l
			best = si.inst
		}
	}
	return best
}

// orderPending sorts the gateway's pending queue for draining: higher
// priority first, then earlier absolute deadline (no deadline last),
// and — the sort being stable — FIFO within ties. A queue of default
// requests (priority 0, no deadline) therefore drains in exactly the
// pre-gateway FIFO order.
func (f *Function) orderPending() {
	slices.SortStableFunc(f.pending, func(a, b instance.Request) int {
		if c := cmp.Compare(b.Priority, a.Priority); c != 0 {
			return c
		}
		da, db := a.Deadline, b.Deadline
		if da <= 0 {
			da = sim.Time(1<<63 - 1)
		}
		if db <= 0 {
			db = sim.Time(1<<63 - 1)
		}
		return cmp.Compare(da, db)
	})
}

// flushPending hands queued gateway requests to active instances in
// priority/deadline order (FIFO-stable within ties), keeping whatever
// cannot be placed queued for the next activation.
func (f *Function) flushPending(now sim.Time) {
	if len(f.pending) == 0 {
		return
	}
	f.orderPending()
	drained := 0
	for _, req := range f.pending {
		in := f.pickLeastLoaded()
		if in == nil {
			break
		}
		req.Dispatch = now
		f.enqueue(in, req)
		drained++
	}
	if drained == 0 {
		return
	}
	f.pending = append(f.pending[:0], f.pending[drained:]...)
}

// InstancesActive returns the number of serving (or cold-starting)
// instances.
func (f *Function) InstancesActive() int { return len(f.active) }

// Served sums completed requests over all instances (including retired
// ones via the recorder).
func (f *Function) Served() int64 {
	if f.Rec == nil {
		return 0
	}
	return int64(f.Rec.Count())
}

// launch places one instance. cold=true applies the model's cold-start
// delay before the instance starts serving; cold launches after initial
// deployment increment ColdStarts unless a warm instance is reused.
func (f *Function) launch(cold bool) (*servedInstance, error) {
	sys := f.sys
	// Keep-alive reuse.
	if w := f.popWarm(); w != nil {
		w.si.inst.SetActive(true)
		f.active = append(f.active, w.si)
		f.Launches.Inc()
		f.flushPending(sys.Eng.Now())
		return w.si, nil
	}
	var dec sched.Decision
	if len(f.pinned) > 0 {
		d, err := f.pinPlace()
		if err != nil {
			return nil, err
		}
		dec = d
	} else {
		decs, err := sys.scheduler.Schedule(sched.Request{
			Func: f.Name, Profile: f.Profile, Instances: 1, GPUsPerInstance: f.Stages,
		})
		if err != nil {
			return nil, err
		}
		dec = decs[0]
	}
	stages, err := sys.attach(dec, true, f.Profile)
	if err != nil {
		dec.Release()
		return nil, err
	}
	f.seq++
	var in instance.Server
	if f.llm != nil {
		// Bridge each stage's KV charges to its placement and resident so
		// quota conservation holds at the cluster and device granularities
		// alike. attach appends stages in decision-GPU order, so index i
		// pairs stage, GPU, and placement.
		for i := range stages {
			stages[i].KV = &kvStage{g: dec.GPUs[i], p: dec.Placements[i], res: stages[i].Res}
		}
		l := instance.NewLLM(fmt.Sprintf("%s#%d", f.Name, f.seq), f.Name, f.Spec,
			f.llm.config(), stages, f.Rec, f.llm.Tok)
		l.SetOnPreempt(f.onPreempt)
		in = l
	} else {
		in = instance.NewInference(fmt.Sprintf("%s#%d", f.Name, f.seq), f.Name, f.Spec, f.Profile.IBS, stages, f.Rec)
	}
	if f.res != nil {
		in.SetOnComplete(f.onRequestComplete)
	}
	si := &servedInstance{inst: in, dec: dec, stages: stages}
	f.active = append(f.active, si)
	if cold {
		f.ColdStarts.Inc()
		f.Launches.Inc()
		// Staged cold start: the default decomposition's total equals
		// the historical scalar exactly, and with the stage model
		// enabled a kernel-cache hit shrinks the JIT stage. The
		// activation flush stamps each freed request with the stage on
		// its critical path — attribution metadata the recorder counts
		// only when stage tracking is armed.
		st := f.coldStages(dec)
		sys.coldStats.ColdLaunches++
		sys.coldStats.ColdTime += st.Total()
		sys.Eng.After(st.Total(), func(now sim.Time) {
			in.SetActive(true)
			f.noteKernels(dec)
			f.flushPendingCold(now, st)
		})
	} else {
		in.SetActive(true)
		f.noteKernels(dec)
	}
	return si, nil
}

// pinPlace reserves the function's quotas on explicitly chosen GPUs. A
// sharded instance (Stages > 1) spans every pinned GPU; single-stage
// instances round-robin over the pinned list so Instances=3, Pin=[0,1,2]
// puts one instance on each GPU.
func (f *Function) pinPlace() (sched.Decision, error) {
	sys := f.sys
	gpus := sys.Clu.GPUs()
	var targets []int
	if f.Stages > 1 {
		if len(f.pinned) != f.Stages {
			return sched.Decision{}, fmt.Errorf("core: %s pins %d GPUs for %d stages", f.Name, len(f.pinned), f.Stages)
		}
		targets = f.pinned
	} else {
		targets = []int{f.pinned[f.seq%len(f.pinned)]}
	}
	d := sched.Decision{Instance: fmt.Sprintf("%s-pin%d", f.Name, f.seq), Func: f.Name}
	per := float64(len(targets))
	for i, idx := range targets {
		if idx < 0 || idx >= len(gpus) {
			return sched.Decision{}, fmt.Errorf("core: pin index %d out of range", idx)
		}
		g := gpus[idx]
		p := &cluster.Placement{
			Instance: fmt.Sprintf("%s/s%d", d.Instance, i), Func: f.Name,
			Req: f.Profile.SMReq / per, Lim: f.Profile.SMLim / per, MemMB: f.Profile.MemMB / per,
		}
		if err := g.Place(p); err != nil {
			d.Release()
			return sched.Decision{}, err
		}
		d.GPUs = append(d.GPUs, g)
		d.Placements = append(d.Placements, p)
	}
	return d, nil
}

// scaleOut launches one instance (cold) in response to the scaler.
func (f *Function) scaleOut() {
	_, _ = f.launch(true)
}

// scaleIn deactivates the least-loaded instance; its reservation either
// enters the keep-alive pool (TTL > 0) or is torn down immediately.
func (f *Function) scaleIn(now sim.Time) {
	if len(f.active) <= 1 {
		return
	}
	idx := len(f.active) - 1
	load := 1 << 30
	for i, si := range f.active {
		if l := si.inst.Load(); l < load {
			load = l
			idx = i
		}
	}
	si := f.active[idx]
	f.active = append(f.active[:idx], f.active[idx+1:]...)
	si.inst.SetActive(false)
	// Re-dispatch its queue.
	for _, req := range si.inst.DropQueue() {
		if in := f.pickLeastLoaded(); in != nil {
			f.enqueue(in, req)
		} else {
			f.pending = append(f.pending, req)
		}
	}
	ttl := sim.Duration(0)
	if f.policy != nil {
		ttl = f.policy.KeepAliveTTL()
	}
	if ttl <= 0 {
		if f.sys.cfg.RequeueOnTeardown || f.res != nil {
			// Requeue-on-teardown: the dying instance's in-flight batch
			// (the queue already drained above) goes back through the
			// gateway with original arrival stamps — the retried work
			// shows up as latency, not as lost requests. Resilience-
			// enabled systems always take this path.
			reqs := si.inst.Abort()
			f.teardown(si)
			f.redispatch(reqs, now)
			return
		}
		// The instance dies with whatever batch it was executing: those
		// requests are destroyed, not redispatched (retrying work whose
		// results are half-computed is the caller's policy, and no
		// pre-gateway driver did). The ledger records them so request
		// conservation still balances: admitted = served + in-flight + lost.
		f.lost += int64(si.inst.Load())
		f.teardown(si)
		return
	}
	w := &warmEntry{si: si, expires: now + ttl}
	f.warm = append(f.warm, w)
	f.sys.Eng.Schedule(w.expires, func(sim.Time) {
		if !w.reused && !w.dead {
			w.dead = true
			f.teardown(si)
		}
	})
}

func (f *Function) popWarm() *warmEntry {
	for i := len(f.warm) - 1; i >= 0; i-- {
		w := f.warm[i]
		if !w.dead && !w.reused {
			w.reused = true
			f.warm = append(f.warm[:i], f.warm[i+1:]...)
			return w
		}
	}
	return nil
}

// teardown releases an instance's devices and reservations.
func (f *Function) teardown(si *servedInstance) {
	if l, ok := si.inst.(*instance.LLM); ok {
		// Unwind any remaining KV charge through the stage backings before
		// the placements go away (the lost-teardown path, where no Abort
		// preceded us); a post-Abort call finds nothing to release.
		l.ReleaseAllKV()
	}
	f.sys.detach(si.dec, si.stages)
	si.dec.Release()
}

// sample is the 1 Hz control step for this function.
func (f *Function) sample(now sim.Time) {
	rps := float64(f.arrived)
	f.arrived = 0
	f.RPSTrace.Add(now, rps)
	f.InstTrace.Add(now, float64(len(f.active)))
	f.flushPending(now)
	if f.prewarm != nil {
		f.prewarm.observe(rps)
		f.prewarmStep(now)
	}
	if f.policy == nil {
		return
	}
	delta := f.policy.Decide(now, rps, len(f.active), f.Profile.ServingRPS)
	switch {
	case delta > 0:
		f.scaleOut()
	case delta < 0:
		f.scaleIn(now)
	}
}

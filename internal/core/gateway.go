package core

import (
	"fmt"
	"slices"

	"dilu/internal/metrics"
	"dilu/internal/sim"
)

// This file is the production request path in front of the serving
// plane: every request enters the system as a core.Request through
// System.Submit, carrying structured tenant identity, priority, and a
// deadline budget. The gateway accounts the request against its tenant,
// consults the admission policy (nil = admit-all pass-through), and
// either injects the request into the target function or sheds it. The
// ledger it maintains — submitted = admitted + shed per tenant and per
// function, admitted = served + in-flight — is what the simtest
// request-conservation invariant recounts from first principles.

// Request is one inference invocation submitted to the gateway.
type Request struct {
	// Func names the target inference function (the DeployInference
	// name).
	Func string
	// Tenant is the structured tenant identity the request is accounted
	// against. Empty inherits the target function's deployment tenant
	// (which is itself empty for single-tenant scenarios — the default
	// tenant).
	Tenant string
	// Priority orders gateway-queued requests: higher drains first.
	Priority int
	// Deadline is the request's completion budget relative to its
	// submission time; zero means none (deadline-aware policies then
	// fall back to the function's SLO target).
	Deadline sim.Duration
	// PromptTokens and DecodeTokens are the token-level lengths of an
	// LLM request; zero on both makes the target function's token
	// sampler (if any) stamp them at injection. Ignored by fixed-batch
	// functions.
	PromptTokens int
	DecodeTokens int
}

// TenantStats is the gateway's per-tenant admission ledger. Retries and
// Hedges count resilience redeliveries drawn against the tenant's retry
// budget (Retries + Hedges ≤ RetryBudget × Admitted — the budget check
// reads exactly these counters, so amplification is bounded per tenant,
// not per function).
type TenantStats struct {
	Tenant    string
	Submitted int64
	Admitted  int64
	Shed      int64
	Retries   int64
	Hedges    int64
}

// gateway is the admission front of a System: the pluggable policy and
// the per-tenant ledger. Tenant accounting is always on (the counters
// are what the conservation invariant audits); the SLO-summary gateway
// block is reported only once a policy or a non-default tenant makes
// the run multi-tenant, so pre-gateway manifests keep their bytes.
type gateway struct {
	policy AdmissionPolicy
	stats  map[string]*TenantStats
	order  []string // first-submission order (deterministic)
	report bool
}

// tenantStats returns (creating on first use) the ledger of one tenant.
func (sys *System) tenantStats(tenant string) *TenantStats {
	if ts, ok := sys.gw.stats[tenant]; ok {
		return ts
	}
	ts := &TenantStats{Tenant: tenant}
	sys.gw.stats[tenant] = ts
	sys.gw.order = append(sys.gw.order, tenant)
	if tenant != "" {
		sys.gw.report = true
	}
	return ts
}

// AdmissionPolicy returns the configured admission policy (nil means
// admit-all).
func (sys *System) AdmissionPolicy() AdmissionPolicy { return sys.gw.policy }

// Submit routes one request through the gateway at the current virtual
// time: tenant accounting, admission, then dispatch into the serving
// plane. It reports whether the request was admitted. Submitting to an
// unknown function panics — a driver wiring bug, not a load condition.
func (sys *System) Submit(now sim.Time, req Request) bool {
	f := sys.funcByName[req.Func]
	if f == nil {
		panic(fmt.Sprintf("core: Submit to unknown function %q", req.Func))
	}
	return sys.submit(f, now, req)
}

// submit is the gateway hot path with the target function pre-resolved
// (the deployment arrival series uses it directly, skipping the by-name
// lookup per request).
func (sys *System) submit(f *Function, now sim.Time, req Request) bool {
	if req.Tenant == "" {
		req.Tenant = f.tenant
	}
	ts := sys.tenantStats(req.Tenant)
	ts.Submitted++
	f.submitted++
	if sys.gw.policy != nil && !sys.gw.policy.Admit(now, req, f) {
		ts.Shed++
		f.shed++
		return false
	}
	ts.Admitted++
	f.admitted++
	f.inject(now, req)
	return true
}

// GatewayTenantStats returns a copy of the per-tenant gateway ledger in
// first-submission order (read-only view for invariants and tests).
func (sys *System) GatewayTenantStats() []TenantStats {
	out := make([]TenantStats, 0, len(sys.gw.order))
	for _, t := range sys.gw.order {
		out = append(out, *sys.gw.stats[t])
	}
	return out
}

// gatewaySLO rolls the admission ledger into the SLO summary's gateway
// block: aggregate and per-tenant submitted/admitted/shed, with served
// and goodput joined from the tenant's deployed functions. Nil until a
// policy or a non-default tenant makes the run multi-tenant, so
// pre-gateway manifests keep their bytes. Tenants are sorted by name
// for output stability; the default tenant renders as "default".
func (sys *System) gatewaySLO(horizon sim.Duration) *metrics.GatewaySLO {
	if !sys.gw.report {
		return nil
	}
	g := &metrics.GatewaySLO{}
	if sys.gw.policy != nil {
		g.Policy = sys.gw.policy.Name()
	}
	seconds := horizon.Seconds()
	tenants := slices.Sorted(slices.Values(sys.gw.order))
	for _, tenant := range tenants {
		ts := sys.gw.stats[tenant]
		row := metrics.TenantSLOStats{
			Tenant:    tenant,
			Submitted: ts.Submitted,
			Admitted:  ts.Admitted,
			Shed:      ts.Shed,
			Retries:   ts.Retries,
			Hedges:    ts.Hedges,
		}
		if row.Tenant == "" {
			row.Tenant = "default"
		}
		goodput := 0
		for _, f := range sys.tenantFuncs[tenant] {
			row.Served += f.Served()
			goodput += f.Rec.Goodput()
		}
		if seconds > 0 {
			row.GoodputRPS = float64(goodput) / seconds
		}
		g.Submitted += row.Submitted
		g.Admitted += row.Admitted
		g.Shed += row.Shed
		g.Tenants = append(g.Tenants, row)
	}
	return g
}

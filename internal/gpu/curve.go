// Package gpu models a GPU device at the granularity Dilu's control loop
// observes and actuates: kernel-block execution per 5 ms token period,
// SM-saturation efficiency, memory capacity, and contention between
// collocated residents.
//
// The saturation curve eff_K(s) = tanh(a·s^β)/tanh(a), a = 1/K, β = 1.6,
// captures how well a workload converts an SM share s ∈ [0,1] into
// throughput. It is sigmoidal: tiny partitions pay disproportionate
// per-kernel overheads (slow start), the middle rises steeply while
// kernels still have blocks to spread over new SMs, and it flattens past
// a knee — the marginal effect Figure 4 of the paper is built on, and the
// reason throughput efficacy TE = eff(s)/s peaks at an interior SMR.
// Large K (≥ LinearK) degenerates to exactly linear scaling; small K
// saturates early. The inverse gives the SM occupancy actually consumed
// to sustain a given execution rate, which is what makes idle SMs of a
// saturated instance genuinely reusable by collocated instances.
package gpu

import "math"

// PartitionExp is the low-end penalty exponent β: throughput of a share s
// scales like s^β before the knee.
const PartitionExp = 1.6

// LinearK is the saturation constant at or above which the curve is
// treated as exactly linear (eff(s) = s).
const LinearK = 1e5

// maxSteepness bounds a = 1/K so tanh stays distinguishable from 1 in
// float64.
const maxSteepness = 40.0

// Eff returns the throughput fraction achieved with SM share s under
// saturation constant K. s is clamped to [0,1].
func Eff(k, s float64) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	if k <= 0 {
		return 1 // degenerate: fully saturated at any share
	}
	if k >= LinearK {
		return s
	}
	a := 1 / k
	if a > maxSteepness {
		a = maxSteepness
	}
	return math.Tanh(a*math.Pow(s, PartitionExp)) / math.Tanh(a)
}

// EffInv returns the SM share required to achieve throughput fraction y
// under saturation constant K; the inverse of Eff. y is clamped to [0,1].
func EffInv(k, y float64) float64 {
	if y <= 0 {
		return 0
	}
	if y >= 1 {
		return 1
	}
	if k <= 0 {
		return 0
	}
	if k >= LinearK {
		return y
	}
	a := 1 / k
	if a > maxSteepness {
		a = maxSteepness
	}
	s := math.Pow(math.Atanh(y*math.Tanh(a))/a, 1/PartitionExp)
	if s > 1 {
		return 1
	}
	return s
}

// KneeForEff returns the saturation constant K such that Eff(K, sKnee) =
// effTarget. The model catalog expresses saturation as "share at which
// the workload reaches effTarget (e.g. 0.95) of its peak"; this solves
// tanh(a·s^β) = t·tanh(a) for a = 1/K by bisection (the left side grows
// from s^β to 1 as a increases, so the root is unique when s^β < t < 1).
func KneeForEff(sKnee, effTarget float64) float64 {
	if sKnee <= 0 {
		return 0
	}
	sb := math.Pow(sKnee, PartitionExp)
	if sb >= effTarget {
		// The knee cannot exceed the target efficiency point; treat as
		// nearly linear scaling.
		return LinearK * 10
	}
	lo, hi := 1e-4, maxSteepness
	for i := 0; i < 60; i++ {
		a := (lo + hi) / 2
		if math.Tanh(a*sb)/math.Tanh(a) < effTarget {
			lo = a
		} else {
			hi = a
		}
	}
	return 2 / (lo + hi)
}

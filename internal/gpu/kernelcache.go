package gpu

// KernelCache models a node-local cache of compiled GPU-kernel
// artifacts (the GKM mechanism): once a function's kernels have been
// JIT-compiled on a node, a relaunch of that function on the same node
// skips — or shrinks — the kernel-JIT stage of its cold start.
//
// The cache is a deterministic LRU over function names: entries are
// refreshed on Note and evicted in least-recently-noted order when the
// capacity bound is exceeded. Determinism matters because cache state
// feeds scheduler tie-breaking and cold-start durations, both of which
// must reproduce byte-identical manifests at any worker count — so the
// recency order lives in a slice, never a map iteration.
type KernelCache struct {
	cap   int
	index map[string]int // function -> position in order
	order []string       // least-recently-noted first
}

// NewKernelCache builds a cache bounded to capacity entries
// (capacity <= 0 means unbounded).
func NewKernelCache(capacity int) *KernelCache {
	return &KernelCache{cap: capacity, index: make(map[string]int)}
}

// Warm reports whether the node has compiled kernels for the function.
// Read-only: recency and eviction state are untouched, so schedulers
// may probe freely while breaking placement ties.
func (c *KernelCache) Warm(fn string) bool {
	_, ok := c.index[fn]
	return ok
}

// Note records that the function's kernels are now compiled on this
// node, refreshing its recency and evicting the least-recently-noted
// entry if the capacity bound is exceeded.
func (c *KernelCache) Note(fn string) {
	if pos, ok := c.index[fn]; ok {
		// Refresh: move to most-recent by shifting the tail down.
		copy(c.order[pos:], c.order[pos+1:])
		c.order[len(c.order)-1] = fn
		for i := pos; i < len(c.order); i++ {
			c.index[c.order[i]] = i
		}
		return
	}
	c.order = append(c.order, fn)
	c.index[fn] = len(c.order) - 1
	if c.cap > 0 && len(c.order) > c.cap {
		victim := c.order[0]
		copy(c.order, c.order[1:])
		c.order = c.order[:len(c.order)-1]
		delete(c.index, victim)
		for i, f := range c.order {
			c.index[f] = i
		}
	}
}

// Len returns the number of cached functions.
func (c *KernelCache) Len() int { return len(c.order) }

package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

// TestWaterfillProportionalFairness: under contention the common scale
// factor preserves the ratio of executed work between residents.
func TestWaterfillProportionalFairness(t *testing.T) {
	d := NewDevice("g")
	a, _ := d.Attach("a", 1)
	b, _ := d.Attach("b", 1)
	a.SatK, b.SatK = LinearK, LinearK
	a.AddWork(10 * d.Capacity)
	b.AddWork(10 * d.Capacity)
	a.SetGrant(0.8 * d.Capacity)
	b.SetGrant(0.4 * d.Capacity)
	d.ExecuteTick()
	// Wants are 0.8C and 0.4C (sum 1.2 > 1): both scale by the same λ.
	ratio := a.ExecutedLast() / b.ExecutedLast()
	if math.Abs(ratio-2.0) > 0.02 {
		t.Fatalf("contention broke proportionality: ratio %v", ratio)
	}
	if occ := d.LastOccupancy(); math.Abs(occ-1.0) > 0.01 {
		t.Fatalf("occupancy %v, want saturated", occ)
	}
}

// TestWaterfillSparesUncontendedTick: if total demand fits, no resident
// is scaled.
func TestWaterfillSparesUncontendedTick(t *testing.T) {
	d := NewDevice("g")
	a, _ := d.Attach("a", 1)
	b, _ := d.Attach("b", 1)
	a.SatK, b.SatK = LinearK, LinearK
	a.AddWork(0.3 * d.Capacity)
	b.AddWork(0.3 * d.Capacity)
	a.SetGrant(0.5 * d.Capacity)
	b.SetGrant(0.5 * d.Capacity)
	d.ExecuteTick()
	if a.ExecutedLast() != 0.3*d.Capacity || b.ExecutedLast() != 0.3*d.Capacity {
		t.Fatalf("uncontended demand throttled: %v/%v", a.ExecutedLast(), b.ExecutedLast())
	}
}

// TestCompletionFractionBounds: the sub-tick completion estimate stays in
// [0,1] and equals 1 while work remains.
func TestCompletionFractionBounds(t *testing.T) {
	d := NewDevice("g")
	r, _ := d.Attach("a", 1)
	r.SatK = LinearK
	r.AddWork(0.25 * d.Capacity)
	r.SetGrant(d.Capacity)
	d.ExecuteTick()
	f := r.CompletionFraction()
	if math.Abs(f-0.25) > 0.01 {
		t.Fatalf("fraction = %v, want ~0.25", f)
	}
	r.AddWork(10 * d.Capacity)
	d.ExecuteTick()
	if r.CompletionFraction() != 1 {
		t.Fatal("in-progress work must report fraction 1")
	}
}

// Property: executed work is monotone in grant (more tokens never yield
// less progress), all else equal.
func TestExecutedMonotoneInGrantProperty(t *testing.T) {
	f := func(g1, g2 uint16, knee uint8) bool {
		lo, hi := float64(g1), float64(g2)
		if lo > hi {
			lo, hi = hi, lo
		}
		run := func(grant float64) float64 {
			d := NewDevice("g")
			r, _ := d.Attach("a", 1)
			r.SatK = KneeForEff(0.05+float64(knee%90)/100, 0.95)
			r.AddWork(1e9)
			r.SetGrant(grant)
			d.ExecuteTick()
			return r.ExecutedLast()
		}
		return run(hi) >= run(lo)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with equal saturation and equal grants, contention splits
// work equally regardless of demand magnitude.
func TestContentionSymmetryProperty(t *testing.T) {
	f := func(knee uint8) bool {
		d := NewDevice("g")
		a, _ := d.Attach("a", 1)
		b, _ := d.Attach("b", 1)
		k := KneeForEff(0.1+float64(knee%80)/100, 0.95)
		a.SatK, b.SatK = k, k
		a.AddWork(1e9)
		b.AddWork(1e9)
		a.SetGrant(d.Capacity)
		b.SetGrant(d.Capacity)
		d.ExecuteTick()
		return math.Abs(a.ExecutedLast()-b.ExecutedLast()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package gpu

import (
	"fmt"
)

// DefaultCapacityPerTick is the number of kernel-block units an A100-class
// device executes per 5 ms token period at 100% SM utilization. Work
// figures in the model catalog are calibrated against this constant.
const DefaultCapacityPerTick = 5000.0

// DefaultMemoryMB mirrors the A100-40GB cards of the paper's testbed.
const DefaultMemoryMB = 40 * 1024.0

// Device is one simulated GPU. Residents are the execution contexts of
// collocated function instances; each tick the device executes up to its
// block capacity across residents, honoring token grants and resolving SM
// contention by proportional waterfilling.
type Device struct {
	ID       string
	Capacity float64 // block-units per tick at full SM
	MemoryMB float64

	residents []*Resident
	usedMem   float64
	// want is ExecuteTick's per-resident scratch, reused across ticks so
	// the 5 ms execution loop does not allocate.
	want []float64

	// slow is the gray-failure straggler factor: when > 1 every usable
	// rate is divided by it, so the device does one tick's work in slow
	// ticks while still reporting nominal Capacity to the scheduler —
	// exactly the signal mismatch that makes stragglers gray. Zero (the
	// untouched default) and 1 mean full speed.
	slow float64

	// lastOccupancy is the total SM share consumed in the previous
	// ExecuteTick, in [0,1]. Exposed for utilization/fragmentation traces.
	lastOccupancy float64
	// lastExecuted is the total blocks executed in the previous tick.
	lastExecuted float64
	// totalExecuted accumulates blocks over the device lifetime.
	totalExecuted float64
	ticks         int64
	occupancySum  float64
}

// NewDevice returns a device with default A100-like capacity and memory.
func NewDevice(id string) *Device {
	return &Device{ID: id, Capacity: DefaultCapacityPerTick, MemoryMB: DefaultMemoryMB}
}

// Resident is one instance's execution context on a device.
type Resident struct {
	dev   *Device
	ID    string
	SatK  float64 // saturation constant for the current kernel mix
	MemMB float64

	pending float64 // block demand not yet executed
	granted float64 // token grant for the current tick, in blocks

	executedLast  float64 // blocks executed in the previous tick
	demandLast    float64 // pending at the start of the previous tick
	grantedLast   float64
	usableLast    float64 // grant- and contention-bounded rate last tick
	totalLaunched float64 // cumulative executed blocks (Fig. 13/14 traces)

	detached bool
}

// Attach reserves memMB on the device and registers a resident. It fails
// when the device lacks free memory (constraint 4 of the scheduling
// objective).
func (d *Device) Attach(id string, memMB float64) (*Resident, error) {
	if d.usedMem+memMB > d.MemoryMB {
		return nil, fmt.Errorf("gpu %s: out of memory: used %.0f + %.0f > %.0f MB",
			d.ID, d.usedMem, memMB, d.MemoryMB)
	}
	r := &Resident{dev: d, ID: id, MemMB: memMB, SatK: 1}
	d.usedMem += memMB
	d.residents = append(d.residents, r)
	return r, nil
}

// Detach releases the resident's memory and removes it from the device.
func (d *Device) Detach(r *Resident) {
	if r == nil || r.detached || r.dev != d {
		return
	}
	r.detached = true
	d.usedMem -= r.MemMB
	for i, res := range d.residents {
		if res == r {
			d.residents = append(d.residents[:i], d.residents[i+1:]...)
			break
		}
	}
}

// GrowMem enlarges the resident's reservation in place (KV-cache growth
// during token-level decode). The caller is responsible for checking
// feasibility against the cluster's MemCapMB view first; the device
// mirrors the charge so its MemUsedMB stays consistent with placements.
func (r *Resident) GrowMem(mb float64) {
	if r == nil || r.detached || mb <= 0 {
		return
	}
	r.MemMB += mb
	r.dev.usedMem += mb
}

// ShrinkMem returns part of the resident's reservation (KV-cache release
// on sequence completion, preemption, or abort).
func (r *Resident) ShrinkMem(mb float64) {
	if r == nil || r.detached || mb <= 0 {
		return
	}
	r.MemMB -= mb
	r.dev.usedMem -= mb
}

// Residents returns the currently attached residents. The slice is the
// device's live bookkeeping — callers must treat it as read-only and must
// not hold it across Attach/Detach; use ResidentCount for hot-path
// presence checks.
func (d *Device) Residents() []*Resident { return d.residents }

// ResidentCount returns the number of attached residents without exposing
// the underlying slice.
func (d *Device) ResidentCount() int { return len(d.residents) }

// MemUsedMB returns reserved device memory.
func (d *Device) MemUsedMB() float64 { return d.usedMem }

// MemFreeMB returns unreserved device memory.
func (d *Device) MemFreeMB() float64 { return d.MemoryMB - d.usedMem }

// SetSlowdown sets the straggler factor applied to every resident's
// usable rate (f > 1 stretches execution f×; f ≤ 1 restores full
// speed). Fault injection's knob — the health monitor reads it back via
// Slowdown the way a DCGM-style per-GPU probe would observe degraded
// throughput.
func (d *Device) SetSlowdown(f float64) {
	if f <= 1 {
		f = 0
	}
	d.slow = f
}

// Slowdown returns the current straggler factor (1 when the device runs
// at full speed).
func (d *Device) Slowdown() float64 {
	if d.slow > 1 {
		return d.slow
	}
	return 1
}

// LastOccupancy returns the SM share consumed in the previous tick.
func (d *Device) LastOccupancy() float64 { return d.lastOccupancy }

// LastExecuted returns blocks executed in the previous tick.
func (d *Device) LastExecuted() float64 { return d.lastExecuted }

// TotalExecuted returns cumulative blocks executed.
func (d *Device) TotalExecuted() float64 { return d.totalExecuted }

// MeanOccupancy returns the average SM occupancy across all ticks so far.
func (d *Device) MeanOccupancy() float64 {
	if d.ticks == 0 {
		return 0
	}
	return d.occupancySum / float64(d.ticks)
}

// AddWork enqueues block demand for the resident.
func (r *Resident) AddWork(blocks float64) {
	if blocks > 0 {
		r.pending += blocks
	}
}

// ClearWork drops any not-yet-executed demand (instance termination or
// batch cancellation).
func (r *Resident) ClearWork() { r.pending = 0 }

// Pending returns the outstanding block demand.
func (r *Resident) Pending() float64 { return r.pending }

// SetGrant sets the token grant (in blocks) for the next tick.
func (r *Resident) SetGrant(tokens float64) {
	if tokens < 0 {
		tokens = 0
	}
	r.granted = tokens
}

// Grant returns the current token grant.
func (r *Resident) Grant() float64 { return r.granted }

// ExecutedLast returns blocks executed in the previous tick — the kernel
// launch rate R_current that RCKM's rate windows observe.
func (r *Resident) ExecutedLast() float64 { return r.executedLast }

// DemandLast returns the demand present at the start of the previous tick.
func (r *Resident) DemandLast() float64 { return r.demandLast }

// GrantedLast returns the grant that applied in the previous tick.
func (r *Resident) GrantedLast() float64 { return r.grantedLast }

// CompletionFraction estimates how far into the previous tick the
// resident's demand drained, for sub-tick latency interpolation. It
// returns 1 when the demand outlived the tick.
func (r *Resident) CompletionFraction() float64 {
	if r.pending > 0 || r.usableLast <= 0 {
		return 1
	}
	f := r.executedLast / r.usableLast
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

// TotalLaunched returns cumulative executed blocks.
func (r *Resident) TotalLaunched() float64 { return r.totalLaunched }

// Device returns the device the resident is attached to.
func (r *Resident) Device() *Device { return r.dev }

// ExecuteTick runs one 5 ms execution round. For each resident the usable
// rate is Capacity·eff(K, grant/Capacity), bounded by pending demand.
// When the summed SM occupancy implied by those rates exceeds the device,
// all residents are scaled back by a common factor (binary-searched
// waterfill), which is precisely the contention that inflates kernel
// launch cycles in the paper's §3.4.1 observation.
func (d *Device) ExecuteTick() {
	if cap(d.want) < len(d.residents) {
		d.want = make([]float64, len(d.residents))
	}
	want := d.want[:len(d.residents)]
	var totalOcc float64
	for i, r := range d.residents {
		r.demandLast = r.pending
		r.grantedLast = r.granted
		s := r.granted / d.Capacity
		usable := d.Capacity * Eff(r.SatK, s)
		if d.slow > 1 { // straggler: stretch execution, keep nominal capacity
			usable /= d.slow
		}
		w := r.pending
		if w > usable {
			w = usable
		}
		want[i] = w
		totalOcc += EffInv(r.SatK, w/d.Capacity)
	}

	scale := 1.0
	if totalOcc > 1 {
		// Find the largest common scale λ with Σ occ(λ·want) ≤ 1.
		lo, hi := 0.0, 1.0
		for iter := 0; iter < 30; iter++ {
			mid := (lo + hi) / 2
			var occ float64
			for i, r := range d.residents {
				occ += EffInv(r.SatK, mid*want[i]/d.Capacity)
			}
			if occ > 1 {
				hi = mid
			} else {
				lo = mid
			}
		}
		scale = lo
	}

	var executedTotal, occTotal float64
	for i, r := range d.residents {
		s := r.granted / d.Capacity
		r.usableLast = d.Capacity * Eff(r.SatK, s) * scale
		if d.slow > 1 {
			r.usableLast /= d.slow
		}
		x := want[i] * scale
		if x > r.pending {
			x = r.pending
		}
		r.pending -= x
		r.executedLast = x
		r.totalLaunched += x
		executedTotal += x
		occTotal += EffInv(r.SatK, x/d.Capacity)
	}
	d.lastExecuted = executedTotal
	d.totalExecuted += executedTotal
	d.lastOccupancy = occTotal
	d.occupancySum += occTotal
	d.ticks++
}

package gpu

import "testing"

func TestKernelCacheLRU(t *testing.T) {
	c := NewKernelCache(2)
	if c.Warm("a") {
		t.Fatal("empty cache reported warm")
	}
	c.Note("a")
	c.Note("b")
	if !c.Warm("a") || !c.Warm("b") || c.Len() != 2 {
		t.Fatalf("expected a,b warm; len=%d", c.Len())
	}
	// Refresh a, then insert c: b is now least-recently-noted and evicted.
	c.Note("a")
	c.Note("c")
	if c.Warm("b") {
		t.Fatal("refreshed entry was evicted instead of LRU victim")
	}
	if !c.Warm("a") || !c.Warm("c") || c.Len() != 2 {
		t.Fatalf("expected a,c warm after eviction; len=%d", c.Len())
	}
	// Warm is read-only: probing must not refresh recency, so after two
	// probes of "a" the recency order is still a (oldest), c — and
	// inserting d evicts a.
	c.Warm("a")
	_ = c.Warm("a")
	c.Note("d")
	if c.Warm("a") {
		t.Fatal("Warm probe refreshed recency: a should have been evicted")
	}
	if !c.Warm("c") || !c.Warm("d") {
		t.Fatal("expected c,d warm")
	}
}

func TestKernelCacheUnbounded(t *testing.T) {
	c := NewKernelCache(0)
	for _, fn := range []string{"a", "b", "c", "d", "e"} {
		c.Note(fn)
	}
	if c.Len() != 5 {
		t.Fatalf("unbounded cache evicted: len=%d", c.Len())
	}
	// Re-noting is idempotent on size.
	c.Note("c")
	if c.Len() != 5 {
		t.Fatalf("re-note changed size: len=%d", c.Len())
	}
}

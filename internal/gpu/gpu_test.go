package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEffBoundary(t *testing.T) {
	if Eff(0.5, 0) != 0 {
		t.Fatal("eff(0) != 0")
	}
	if Eff(0.5, 1) != 1 {
		t.Fatal("eff(1) != 1")
	}
	if Eff(0.5, 2) != 1 {
		t.Fatal("eff clamps above 1")
	}
	if Eff(0, 0.3) != 1 {
		t.Fatal("K=0 means fully saturated")
	}
}

func TestEffMonotone(t *testing.T) {
	for _, k := range []float64{0.05, 0.15, 0.3, 1, LinearK} {
		prev := 0.0
		for s := 0.05; s <= 1.0; s += 0.05 {
			e := Eff(k, s)
			if e <= prev {
				t.Fatalf("k=%v: eff not increasing at s=%v", k, s)
			}
			prev = e
		}
	}
}

func TestEffSigmoidInteriorTEPeak(t *testing.T) {
	// Throughput efficacy eff(s)/s must peak strictly inside (0,1): this
	// is what puts the stars of Figure 4 at moderate SMRs instead of the
	// grid edge.
	k := KneeForEff(0.4, 0.95)
	bestS, bestTE := 0.0, 0.0
	for s := 0.05; s <= 1.0; s += 0.05 {
		te := Eff(k, s) / s
		if te > bestTE {
			bestTE, bestS = te, s
		}
	}
	if bestS <= 0.051 || bestS >= 0.95 {
		t.Fatalf("TE peak at s=%v, want interior", bestS)
	}
}

func TestEffLinearSentinel(t *testing.T) {
	for s := 0.1; s < 1.0; s += 0.2 {
		if got := Eff(LinearK, s); math.Abs(got-s) > 1e-12 {
			t.Fatalf("LinearK eff(%v) = %v, want linear", s, got)
		}
		if got := EffInv(LinearK, s); math.Abs(got-s) > 1e-12 {
			t.Fatalf("LinearK effinv(%v) = %v", s, got)
		}
	}
}

func TestEffInvRoundTrip(t *testing.T) {
	for _, k := range []float64{0.08, 0.2, 1, 10} {
		for s := 0.0; s <= 1.0; s += 0.1 {
			y := Eff(k, s)
			back := EffInv(k, y)
			if math.Abs(back-s) > 1e-6 && s < 1 {
				t.Fatalf("roundtrip k=%v s=%v -> %v", k, s, back)
			}
		}
	}
}

func TestKneeForEff(t *testing.T) {
	for _, knee := range []float64{0.15, 0.28, 0.5, 0.8} {
		k := KneeForEff(knee, 0.95)
		if got := Eff(k, knee); math.Abs(got-0.95) > 1e-6 {
			t.Fatalf("eff at knee %v = %v, want 0.95", knee, got)
		}
		// Below the knee the curve must be meaningfully sub-peak, i.e.
		// extra SMs up to the knee genuinely help.
		if got := Eff(k, knee/3); got > 0.75 {
			t.Fatalf("knee %v: eff(knee/3) = %v, too generous at low share", knee, got)
		}
	}
}

func TestKneeForEffDegenerate(t *testing.T) {
	if KneeForEff(0, 0.95) != 0 {
		t.Fatal("zero knee")
	}
	if KneeForEff(0.99, 0.95) != 1e6 {
		t.Fatal("knee beyond target should be ~linear")
	}
}

// Property: EffInv(K, Eff(K, s)) == s for s in (0,1).
func TestEffInverseProperty(t *testing.T) {
	f := func(ks, ss uint8) bool {
		// K below ~0.08 pushes tanh into float64 saturation where the
		// inverse is intentionally lossy near y→1; stay above it here.
		k := 0.08 + float64(ks)/64.0
		s := float64(ss%100) / 100.0
		y := Eff(k, s)
		return math.Abs(EffInv(k, y)-s) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAttachMemory(t *testing.T) {
	d := NewDevice("g0")
	r1, err := d.Attach("a", 30*1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Attach("b", 20*1024); err == nil {
		t.Fatal("expected OOM")
	}
	d.Detach(r1)
	if _, err := d.Attach("b", 20*1024); err != nil {
		t.Fatalf("after detach: %v", err)
	}
	if d.MemUsedMB() != 20*1024 {
		t.Fatalf("mem used = %v", d.MemUsedMB())
	}
}

func TestDeviceDetachIdempotent(t *testing.T) {
	d := NewDevice("g0")
	r, _ := d.Attach("a", 100)
	d.Detach(r)
	d.Detach(r)
	if d.MemUsedMB() != 0 {
		t.Fatalf("double detach corrupted memory: %v", d.MemUsedMB())
	}
}

func TestSoloExecutionFullGrant(t *testing.T) {
	d := NewDevice("g0")
	r, _ := d.Attach("a", 100)
	r.SatK = 10 // nearly linear
	r.AddWork(3 * d.Capacity)
	r.SetGrant(d.Capacity)
	d.ExecuteTick()
	if math.Abs(r.ExecutedLast()-d.Capacity) > 1 {
		t.Fatalf("executed = %v, want ~capacity", r.ExecutedLast())
	}
	if math.Abs(d.LastOccupancy()-1.0) > 0.01 {
		t.Fatalf("occupancy = %v", d.LastOccupancy())
	}
	d.ExecuteTick()
	d.ExecuteTick()
	if r.Pending() > 1 {
		t.Fatalf("work should drain: pending=%v", r.Pending())
	}
}

func TestExecutionLimitedByGrant(t *testing.T) {
	d := NewDevice("g0")
	r, _ := d.Attach("a", 100)
	r.SatK = 1e6 // linear
	r.AddWork(d.Capacity)
	r.SetGrant(0.3 * d.Capacity)
	d.ExecuteTick()
	if math.Abs(r.ExecutedLast()-0.3*d.Capacity) > d.Capacity*0.01 {
		t.Fatalf("executed = %v, want ~30%% capacity", r.ExecutedLast())
	}
}

func TestSaturatedInstanceLeavesRoom(t *testing.T) {
	// A heavily saturated instance at full grant consumes little occupancy,
	// leaving SMs for a collocated one — the basis of profitable collocation.
	d := NewDevice("g0")
	a, _ := d.Attach("a", 100)
	a.SatK = KneeForEff(0.2, 0.95) // saturates at 20% SMs
	b, _ := d.Attach("b", 100)
	b.SatK = KneeForEff(0.2, 0.95)
	a.AddWork(10 * d.Capacity)
	b.AddWork(10 * d.Capacity)
	a.SetGrant(d.Capacity)
	b.SetGrant(d.Capacity)
	d.ExecuteTick()
	// Each achieves ~full rate; occupancy far below 2.0 yet both run.
	if a.ExecutedLast() < 0.95*d.Capacity || b.ExecutedLast() < 0.95*d.Capacity {
		t.Fatalf("executed a=%v b=%v", a.ExecutedLast(), b.ExecutedLast())
	}
}

func TestContentionScalesDown(t *testing.T) {
	// Two linear (unsaturated) instances each granted full capacity must
	// share: each gets ~half, and total occupancy caps at 1.
	d := NewDevice("g0")
	a, _ := d.Attach("a", 100)
	a.SatK = 1e6
	b, _ := d.Attach("b", 100)
	b.SatK = 1e6
	a.AddWork(10 * d.Capacity)
	b.AddWork(10 * d.Capacity)
	a.SetGrant(d.Capacity)
	b.SetGrant(d.Capacity)
	d.ExecuteTick()
	if math.Abs(a.ExecutedLast()-0.5*d.Capacity) > 0.02*d.Capacity {
		t.Fatalf("a executed %v, want ~half", a.ExecutedLast())
	}
	if d.LastOccupancy() > 1.001 {
		t.Fatalf("occupancy = %v > 1", d.LastOccupancy())
	}
}

func TestExecutionBoundedByPending(t *testing.T) {
	d := NewDevice("g0")
	r, _ := d.Attach("a", 100)
	r.SatK = 1e6
	r.AddWork(100)
	r.SetGrant(d.Capacity)
	d.ExecuteTick()
	if r.ExecutedLast() != 100 || r.Pending() != 0 {
		t.Fatalf("executed %v pending %v", r.ExecutedLast(), r.Pending())
	}
}

func TestTotalsAccumulate(t *testing.T) {
	d := NewDevice("g0")
	r, _ := d.Attach("a", 100)
	r.SatK = 1e6
	for i := 0; i < 5; i++ {
		r.AddWork(100)
		r.SetGrant(d.Capacity)
		d.ExecuteTick()
	}
	if r.TotalLaunched() != 500 {
		t.Fatalf("total launched = %v", r.TotalLaunched())
	}
	if d.TotalExecuted() != 500 {
		t.Fatalf("device total = %v", d.TotalExecuted())
	}
	if d.MeanOccupancy() <= 0 {
		t.Fatal("mean occupancy not tracked")
	}
}

// Property: SM occupancy never exceeds 1 for arbitrary grants, demands and
// saturations. (Executed block-units are model-normalized and MAY exceed
// Capacity when saturated residents collocate — that is the collocation
// win the paper exploits — so occupancy is the only physical invariant.)
func TestDeviceCapacityInvariant(t *testing.T) {
	f := func(cfg []struct {
		Work  uint16
		Grant uint16
		Knee  uint8
	}) bool {
		if len(cfg) == 0 || len(cfg) > 12 {
			return true
		}
		d := NewDevice("g")
		for i, c := range cfg {
			r, err := d.Attach(string(rune('a'+i)), 10)
			if err != nil {
				return true
			}
			knee := 0.05 + float64(c.Knee%90)/100.0
			r.SatK = KneeForEff(knee, 0.95)
			r.AddWork(float64(c.Work))
			r.SetGrant(float64(c.Grant))
		}
		d.ExecuteTick()
		return d.LastOccupancy() <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: work is conserved — executed never exceeds what was pending.
func TestWorkConservationProperty(t *testing.T) {
	f := func(work, grant uint16) bool {
		d := NewDevice("g")
		r, _ := d.Attach("a", 1)
		r.SatK = 0.5
		r.AddWork(float64(work))
		r.SetGrant(float64(grant))
		d.ExecuteTick()
		return math.Abs(r.ExecutedLast()+r.Pending()-float64(work)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

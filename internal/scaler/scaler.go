// Package scaler implements the horizontal-scaling half of Dilu's 2D
// co-scaling (§3.4.2) as pure per-function decision policies, together
// with the reactive (FaST-GS+) and keep-alive/predictive (INFless+)
// baselines of Table 3.
//
// A policy receives one RPS sample per second from the gateway and the
// current instance count, and answers with an instance-count delta. The
// serving plane executes deltas (launch with cold start, or reuse of a
// keep-alive instance) — policies only decide.
package scaler

import (
	"dilu/internal/sim"
)

// Policy is a per-function horizontal scaling decider.
type Policy interface {
	Name() string
	// Decide consumes the latest one-second RPS sample and returns the
	// desired change in instance count (usually -1, 0 or +1).
	Decide(now sim.Time, rps float64, instances int, perInstanceRPS float64) int
	// KeepAliveTTL is how long a descheduled instance lingers warm before
	// its resources are released (0 = immediate release).
	KeepAliveTTL() sim.Duration
}

// ---------------------------------------------------------------------------
// Dilu: lazy scale-out/in.

// DiluConfig holds the sliding-window hyper-parameters of §3.4.2.
type DiluConfig struct {
	Window int // sliding window length in samples (default 40 ≙ 40 s)
	PhiOut int // samples over capacity required to scale out (default 20)
	PhiIn  int // samples under (n−1)-capacity required to scale in (default 30)
	Min    int // minimum instances kept (default 1)
}

func (c DiluConfig) withDefaults() DiluConfig {
	if c.Window <= 0 {
		c.Window = 40
	}
	if c.PhiOut <= 0 {
		c.PhiOut = 20
	}
	if c.PhiIn <= 0 {
		c.PhiIn = 30
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	return c
}

// Dilu is the lazy horizontal scaler: bursts shorter than the window are
// absorbed by vertical scaling (RCKM's EMERGENCY scale-up); only
// sustained overload adds instances, and only sustained underload
// removes them, which is what cuts cold starts in Table 3.
type Dilu struct {
	cfg     DiluConfig
	samples []float64
}

// NewDilu builds the policy.
func NewDilu(cfg DiluConfig) *Dilu { return &Dilu{cfg: cfg.withDefaults()} }

// Name implements Policy.
func (d *Dilu) Name() string { return "Dilu" }

// KeepAliveTTL implements Policy: Dilu relies on lazy scale-in rather
// than a warm pool, so releases are immediate.
func (d *Dilu) KeepAliveTTL() sim.Duration { return 0 }

// Decide implements Policy.
func (d *Dilu) Decide(_ sim.Time, rps float64, instances int, perInstanceRPS float64) int {
	d.samples = append(d.samples, rps)
	if len(d.samples) > d.cfg.Window {
		d.samples = d.samples[len(d.samples)-d.cfg.Window:]
	}
	if perInstanceRPS <= 0 {
		return 0
	}
	capNow := float64(instances) * perInstanceRPS
	capLess := float64(instances-1) * perInstanceRPS
	over, under := 0, 0
	for _, s := range d.samples {
		if s > capNow {
			over++
		}
		if s < capLess {
			under++
		}
	}
	if over >= d.cfg.PhiOut {
		d.samples = d.samples[:0] // re-arm after a decision
		return +1
	}
	if instances > d.cfg.Min && under > d.cfg.PhiIn {
		d.samples = d.samples[:0]
		return -1
	}
	return 0
}

// ---------------------------------------------------------------------------
// FaST-GS+: eager reactive scaling.

// Eager is the FaST-GS+ strategy: launch as soon as a couple of samples
// exceed capacity and terminate almost as quickly. It reacts fast but
// churns instances, paying cold starts for every few-second burst.
type Eager struct {
	OutAfter int // consecutive over-capacity samples to scale out (default 2)
	InAfter  int // consecutive under-capacity samples to scale in (default 5)
	Min      int

	overRun, underRun int
}

// NewEager builds the policy with FaST-GS+ defaults.
func NewEager() *Eager { return &Eager{OutAfter: 2, InAfter: 5, Min: 1} }

// Name implements Policy.
func (e *Eager) Name() string { return "FaST-GS+" }

// KeepAliveTTL implements Policy: a brief grace period only.
func (e *Eager) KeepAliveTTL() sim.Duration { return 5 * sim.Second }

// Decide implements Policy.
func (e *Eager) Decide(_ sim.Time, rps float64, instances int, perInstanceRPS float64) int {
	if perInstanceRPS <= 0 {
		return 0
	}
	if rps > float64(instances)*perInstanceRPS {
		e.overRun++
	} else {
		e.overRun = 0
	}
	if rps < float64(instances-1)*perInstanceRPS {
		e.underRun++
	} else {
		e.underRun = 0
	}
	if e.overRun >= e.OutAfter {
		e.overRun = 0
		return +1
	}
	if instances > e.Min && e.underRun >= e.InAfter {
		e.underRun = 0
		return -1
	}
	return 0
}

// ---------------------------------------------------------------------------
// INFless+: windowed reactive scaling with keep-alive and histogram
// prewarming.

// Predictive is the INFless+/Azure-style strategy: a medium reactive
// window plus a keep-alive pool sized from prior knowledge. Terminated
// instances stay warm for the TTL (reducing cold starts on recurring
// load) at the price of held GPU memory — the waste Table 3 charges it.
type Predictive struct {
	Window  int
	OutFrac float64 // fraction of window over capacity to scale out
	InFrac  float64 // fraction of window under capacity to scale in
	TTL     sim.Duration
	Min     int
	samples []float64
	// interArrival histogram state for prewarm prediction.
	lastBusy   sim.Time
	gapEWMA    float64
	hasGap     bool
	prewarmHit bool
}

// NewPredictive builds the policy with INFless+ defaults.
func NewPredictive() *Predictive {
	return &Predictive{Window: 15, OutFrac: 0.6, InFrac: 0.8, TTL: 60 * sim.Second, Min: 1}
}

// Name implements Policy.
func (p *Predictive) Name() string { return "INFless+" }

// KeepAliveTTL implements Policy.
func (p *Predictive) KeepAliveTTL() sim.Duration { return p.TTL }

// Decide implements Policy.
func (p *Predictive) Decide(now sim.Time, rps float64, instances int, perInstanceRPS float64) int {
	p.samples = append(p.samples, rps)
	if len(p.samples) > p.Window {
		p.samples = p.samples[len(p.samples)-p.Window:]
	}
	if perInstanceRPS <= 0 {
		return 0
	}
	// Track idle-gap EWMA for the histogram-style prewarm: when load
	// returns after a gap close to the learned period, scale out ahead
	// of the window filling up.
	if rps > 0 {
		if p.lastBusy > 0 {
			gap := (now - p.lastBusy).Seconds()
			if gap > 5 {
				if p.hasGap {
					p.gapEWMA = 0.7*p.gapEWMA + 0.3*gap
				} else {
					p.gapEWMA = gap
					p.hasGap = true
				}
			}
		}
		p.lastBusy = now
	}
	capNow := float64(instances) * perInstanceRPS
	capLess := float64(instances-1) * perInstanceRPS
	over, under := 0, 0
	for _, s := range p.samples {
		if s > capNow {
			over++
		}
		if s < capLess {
			under++
		}
	}
	if float64(over) >= p.OutFrac*float64(p.Window) {
		p.samples = p.samples[:0]
		return +1
	}
	// Prewarm: a burst beginning right after a learned-period gap adds
	// an instance one step early.
	if p.hasGap && rps > capNow && over >= 2 && !p.prewarmHit {
		p.prewarmHit = true
		return +1
	}
	if rps <= capNow {
		p.prewarmHit = false
	}
	if instances > p.Min && float64(under) >= p.InFrac*float64(p.Window) {
		p.samples = p.samples[:0]
		return -1
	}
	return 0
}

package scaler

import (
	"testing"
	"testing/quick"

	"dilu/internal/sim"
)

// feed pushes a constant-RPS run of n samples and returns the cumulative
// delta the policy asked for, updating the instance count as it goes.
func feed(p Policy, rps float64, n, instances int, capRPS float64) (int, int) {
	deltas := 0
	for i := 0; i < n; i++ {
		d := p.Decide(sim.Time(i)*sim.Second, rps, instances, capRPS)
		instances += d
		deltas += d
	}
	return deltas, instances
}

func TestDiluLazyIgnoresShortBurst(t *testing.T) {
	p := NewDilu(DiluConfig{})
	// 10 seconds of 3× overload — shorter than φ_out=20 — must not
	// trigger scale-out (vertical scaling absorbs it).
	if d, _ := feed(p, 30, 10, 1, 10); d != 0 {
		t.Fatalf("short burst scaled out: %d", d)
	}
}

func TestDiluScalesOutOnSustainedOverload(t *testing.T) {
	p := NewDilu(DiluConfig{})
	d, n := feed(p, 30, 25, 1, 10)
	if d < 1 {
		t.Fatalf("sustained overload not scaled: delta=%d", d)
	}
	if n < 2 {
		t.Fatalf("instances = %d", n)
	}
}

func TestDiluScaleInIsLazier(t *testing.T) {
	p := NewDilu(DiluConfig{})
	// 25 quiet samples with 3 instances: under-count reaches 25 < φ_in+1.
	if d, _ := feed(p, 1, 25, 3, 10); d != 0 {
		t.Fatalf("scaled in too eagerly: %d", d)
	}
	// 10 more quiet samples push it over φ_in=30.
	if d, _ := feed(p, 1, 10, 3, 10); d != -1 {
		t.Fatalf("lazy scale-in missing: %d", d)
	}
}

func TestDiluRespectsMinimum(t *testing.T) {
	p := NewDilu(DiluConfig{})
	if _, n := feed(p, 0, 200, 1, 10); n != 1 {
		t.Fatalf("dropped below minimum: %d", n)
	}
}

func TestDiluZeroCapacityNoDecision(t *testing.T) {
	p := NewDilu(DiluConfig{})
	if d, _ := feed(p, 100, 50, 1, 0); d != 0 {
		t.Fatal("decisions without capacity knowledge")
	}
}

func TestEagerReactsFast(t *testing.T) {
	p := NewEager()
	d, _ := feed(p, 30, 3, 1, 10)
	if d < 1 {
		t.Fatalf("eager policy too slow: %d", d)
	}
}

func TestEagerChurnsOnFlappingLoad(t *testing.T) {
	// Alternating 12s-high/12s-low load: eager scales out and in
	// repeatedly while Dilu holds one instance.
	eager, dilu := NewEager(), NewDilu(DiluConfig{})
	churnE, churnD := 0, 0
	nE, nD := 1, 1
	for cycle := 0; cycle < 6; cycle++ {
		for i := 0; i < 12; i++ {
			if d := eager.Decide(0, 30, nE, 10); d != 0 {
				churnE++
				nE += d
			}
			if d := dilu.Decide(0, 30, nD, 10); d != 0 {
				churnD++
				nD += d
			}
		}
		for i := 0; i < 12; i++ {
			if d := eager.Decide(0, 1, nE, 10); d != 0 {
				churnE++
				nE += d
			}
			if d := dilu.Decide(0, 1, nD, 10); d != 0 {
				churnD++
				nD += d
			}
		}
	}
	if churnE <= churnD {
		t.Fatalf("eager churn %d should exceed Dilu churn %d", churnE, churnD)
	}
}

func TestPredictiveKeepAliveTTL(t *testing.T) {
	p := NewPredictive()
	if p.KeepAliveTTL() != 60*sim.Second {
		t.Fatalf("TTL = %v", p.KeepAliveTTL())
	}
	if NewDilu(DiluConfig{}).KeepAliveTTL() != 0 {
		t.Fatal("Dilu must not keep warm pools")
	}
	if NewEager().KeepAliveTTL() != 5*sim.Second {
		t.Fatal("eager grace period wrong")
	}
}

func TestPredictiveScalesOnWindow(t *testing.T) {
	p := NewPredictive()
	d, _ := feed(p, 30, 12, 1, 10)
	if d < 1 {
		t.Fatalf("predictive did not scale on sustained load: %d", d)
	}
}

func TestPredictivePrewarmAfterLearnedGap(t *testing.T) {
	p := NewPredictive()
	now := sim.Time(0)
	step := func(rps float64, n int, instances int) int {
		total := 0
		for i := 0; i < n; i++ {
			total += p.Decide(now, rps, instances, 10)
			now += sim.Second
		}
		return total
	}
	// Two bursts separated by a ~30s gap teach the period.
	step(25, 5, 2)
	step(0, 30, 2)
	step(25, 5, 2)
	step(0, 30, 2)
	// Third burst: prewarm should fire within the first few samples.
	got := step(25, 4, 2)
	if got < 1 {
		t.Fatalf("no prewarm on learned periodic burst: %d", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if NewDilu(DiluConfig{}).Name() != "Dilu" ||
		NewEager().Name() != "FaST-GS+" ||
		NewPredictive().Name() != "INFless+" {
		t.Fatal("policy names wrong")
	}
}

// Property: instance count driven by any policy never falls below the
// minimum and deltas are in {-1, 0, +1}.
func TestPolicyDeltaBoundsProperty(t *testing.T) {
	f := func(loads []uint8, which uint8) bool {
		var p Policy
		switch which % 3 {
		case 0:
			p = NewDilu(DiluConfig{})
		case 1:
			p = NewEager()
		default:
			p = NewPredictive()
		}
		instances := 1
		for i, l := range loads {
			d := p.Decide(sim.Time(i)*sim.Second, float64(l), instances, 10)
			if d < -1 || d > 1 {
				return false
			}
			instances += d
			if instances < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Package rckm implements the Real-time CUDA Kernel Manager — the
// server side of Dilu's vertical scaling (§3.4.1, Algorithm 2) — together
// with the token-issuing policies of every GPU-level baseline the paper
// compares against (Exclusive, static MPS, TGS, FaST-GS).
//
// One Manager governs one GPU. Each collocated instance registers a
// Client (the stand-in for the LD_PRELOAD interception library): every
// 5 ms tick the manager inspects the clients' recent kernel launch rates
// and kernel-launch-cycle (KLC) inflation and issues tokens that bound
// the blocks each instance may execute next tick.
package rckm

import (
	"fmt"

	"dilu/internal/gpu"
	"dilu/internal/sim"
)

// State is the per-GPU global vertical-scaling state of Algorithm 2.
type State int

// Algorithm 2 states.
const (
	StateNone State = iota
	StateContention
	StateEmergency
	StateRecovery
)

func (s State) String() string {
	switch s {
	case StateNone:
		return "NONE"
	case StateContention:
		return "CONTENTION"
	case StateEmergency:
		return "EMERGENCY"
	case StateRecovery:
		return "RECOVERY"
	}
	return "?"
}

// rateWindowLen is the number of 5 ms periods in the kernel rate windows
// RW of Algorithm 2 (20 ms of history).
const rateWindowLen = 4

// klcWindowLen is the number of recent iterations a KLC bucket's minimum
// spans.
const klcWindowLen = 16

// Client is the manager-side view of one collocated instance.
type Client struct {
	ID           string
	Res          *gpu.Resident
	SLOSensitive bool    // inference functions; training is throughput-typed
	Request      float64 // profiled request quota (fraction of a GPU)
	Limit        float64 // profiled limit quota (fraction of a GPU)

	rates [rateWindowLen]float64
	rIdx  int

	// KLC tracking: the current iteration launch cycle compared against
	// a windowed minimum of *the same work regime* (per-batch bucket).
	// Bucketing keeps the batch-size dimension out of the baseline: a
	// batch-4 iteration is compared with recent batch-4 iterations, so
	// ΔT measures contention and token starvation, not batching. New
	// buckets are seeded by linearly scaling the profiled batch-1
	// reference. Windowing (not all-time minima) gives the controller
	// finite memory.
	klcCur   float64
	curWork  float64
	buckets  []klcBucket
	seedSec  float64
	seedWork float64

	rLast float64 // tokens issued in the previous cycle

	// cooldownUntil suppresses EMERGENCY re-entry after an episode ends
	// (hysteresis against grant-level oscillation); severe inflation
	// (ΔT > 2η) bypasses it.
	cooldownUntil sim.Time

	// pressured is the interception library's queue-pressure flag: the
	// instance is batching beyond its profiled IBS to drain a backlog.
	// In the paper's stack this state is visible to RCKM as sustained
	// KLC inflation (outsized iterations against the all-time floor);
	// with per-regime baselines it is reported explicitly and holds the
	// EMERGENCY scale-up until the backlog clears.
	pressured bool

	// TGS-specific opportunistic share.
	oppShare float64
}

// klcBucket is the recent-iteration window of one work regime.
type klcBucket struct {
	work float64
	win  [klcWindowLen]float64
	idx  int
	n    int
}

func (b *klcBucket) push(v float64) {
	b.win[b.idx] = v
	b.idx = (b.idx + 1) % klcWindowLen
	if b.n < klcWindowLen {
		b.n++
	}
}

func (b *klcBucket) min() float64 {
	if b.n == 0 {
		return 0
	}
	m := b.win[0]
	for i := 1; i < b.n; i++ {
		if v := b.win[i]; v < m {
			m = v
		}
	}
	return m
}

func (c *Client) bucketFor(work float64) *klcBucket {
	for i := range c.buckets {
		if c.buckets[i].work == work {
			return &c.buckets[i]
		}
	}
	c.buckets = append(c.buckets, klcBucket{work: work})
	b := &c.buckets[len(c.buckets)-1]
	if c.seedSec > 0 && c.seedWork > 0 {
		// Expected cycle for this regime, scaled from the profiled
		// batch-1 reference: time is linear in work at a fixed grant.
		b.push(c.seedSec * work / c.seedWork)
	}
	return b
}

// ObserveIteration reports a completed iteration's kernel launch cycle
// and its block work; ΔT compares the cycle against recent cycles of the
// same work regime.
func (c *Client) ObserveIteration(klc sim.Duration, work float64) {
	if work <= 0 || klc <= 0 {
		return
	}
	cur := klc.Seconds()
	c.klcCur = cur
	c.curWork = work
	c.bucketFor(work).push(cur)
}

// SeedKLC primes the reference launch cycle (seconds of an uncontended
// batch-1 iteration at the limit quota) and its work, from profiling
// knowledge, so instances launched under contention still detect
// inflation.
func (c *Client) SeedKLC(seconds float64) { c.SeedKLCWork(seconds, 1) }

// SeedKLCWork seeds the reference cycle together with its block work.
func (c *Client) SeedKLCWork(seconds, work float64) {
	if seconds <= 0 {
		return
	}
	c.seedSec = seconds
	if work <= 0 {
		work = 1
	}
	c.seedWork = work
	c.klcCur = seconds
	c.curWork = work
	c.bucketFor(work).push(seconds)
}

// DeltaT returns the relative KLC inflation (T_current − T_min)/T_min
// within the current work regime's recent window.
func (c *Client) DeltaT() float64 {
	if c.curWork <= 0 {
		return 0
	}
	min := c.bucketFor(c.curWork).min()
	if min <= 0 {
		return 0
	}
	return (c.klcCur - min) / min
}

// SetPressured reports whether the instance is burst-batching beyond its
// profiled IBS (queue backlog).
func (c *Client) SetPressured(p bool) { c.pressured = p }

// Pressured returns the queue-pressure flag.
func (c *Client) Pressured() bool { return c.pressured }

// LastIssued returns the tokens issued in the previous cycle.
func (c *Client) LastIssued() float64 { return c.rLast }

func (c *Client) shiftRateWindow() {
	c.rates[c.rIdx] = c.Res.ExecutedLast()
	c.rIdx = (c.rIdx + 1) % rateWindowLen
}

func (c *Client) windowSum() float64 {
	var s float64
	for _, r := range c.rates {
		s += r
	}
	return s
}

// Config holds the manager hyper-parameters of Algorithm 2.
type Config struct {
	// MaxTokens is the maximum number of tokens issuable per period for a
	// quota of 1.0, in block units. Zero defaults to the device capacity
	// per tick (the Figure 18(b) sensitivity sweeps multiples of it).
	MaxTokens float64
	// EtaViolation is the KLC inflation threshold that triggers the
	// EMERGENCY protective scale-up. An episode exits at half this
	// threshold (hysteresis) and re-entry is suppressed for
	// EmergencyCooldown unless inflation exceeds twice the threshold.
	EtaViolation float64
	// EtaIncrease is the multiplicative growth factor in RECOVERY.
	EtaIncrease float64
	// EmergencyCooldown is the re-entry suppression window.
	EmergencyCooldown sim.Duration

	// Ablation switches for the DESIGN.md §4.6 controller choices; all
	// default to the stabilized controller. They exist so the ablation
	// benches can quantify each interpretation against the naive reading
	// of Algorithm 2.
	//
	// NoHysteresis disables the exit threshold/cooldown (emergencies
	// re-trigger freely). NoPressureHold ignores the interception
	// library's queue-pressure flag. NoAntiWindup restores the paper's
	// literal EMERGENCY/CONTENTION formulas (unbounded ΔT decay and
	// R_last freeze).
	NoHysteresis   bool
	NoPressureHold bool
	NoAntiWindup   bool
}

// DefaultConfig returns the hyper-parameters used across the evaluation.
func DefaultConfig() Config {
	return Config{
		MaxTokens: gpu.DefaultCapacityPerTick, EtaViolation: 0.6,
		EtaIncrease: 1.25, EmergencyCooldown: 250 * sim.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxTokens <= 0 {
		c.MaxTokens = gpu.DefaultCapacityPerTick
	}
	if c.EtaViolation <= 0 {
		// The paper's contention example is a KLC doubling (25→50 ms);
		// 0.6 triggers well before that while staying above ordinary
		// batch-growth noise (batch 1→2 inflates the cycle by ~35-50%).
		c.EtaViolation = 0.6
	}
	if c.EtaIncrease <= 1 {
		c.EtaIncrease = 1.25
	}
	if c.EmergencyCooldown <= 0 {
		c.EmergencyCooldown = 250 * sim.Millisecond
	}
	return c
}

// Manager issues tokens to the clients of one GPU under a Policy.
type Manager struct {
	Dev     *gpu.Device
	cfg     Config
	policy  Policy
	clients []*Client

	state      State
	owner      *Client
	ownerDelta float64
}

// NewManager creates a manager for dev under the given policy.
func NewManager(dev *gpu.Device, policy Policy, cfg Config) *Manager {
	return &Manager{Dev: dev, cfg: cfg.withDefaults(), policy: policy, state: StateNone}
}

// Config returns the manager's hyper-parameters.
func (m *Manager) Config() Config { return m.cfg }

// State returns the current Algorithm 2 global state.
func (m *Manager) State() State { return m.state }

// Policy returns the active token-issuing policy.
func (m *Manager) Policy() Policy { return m.policy }

// Clients returns the registered clients.
func (m *Manager) Clients() []*Client { return m.clients }

// Register adds an instance's client to the manager.
func (m *Manager) Register(c *Client) {
	if c.Limit <= 0 {
		c.Limit = 1
	}
	if c.Request <= 0 {
		c.Request = c.Limit
	}
	c.rLast = m.cfg.MaxTokens * c.Request
	c.oppShare = 0.02
	m.clients = append(m.clients, c)
}

// Unregister removes a client; if it owned the EMERGENCY state the state
// resets to NONE.
func (m *Manager) Unregister(c *Client) {
	for i, cl := range m.clients {
		if cl == c {
			m.clients = append(m.clients[:i], m.clients[i+1:]...)
			break
		}
	}
	if m.owner == c {
		m.owner = nil
		m.state = StateNone
		m.ownerDelta = 0
	}
}

// Issue runs one token cycle: shifts every client's rate window with the
// rate observed by the GPU last tick, applies the policy, and programs
// the residents' grants for the upcoming execution tick.
func (m *Manager) Issue(now sim.Time) {
	for _, c := range m.clients {
		c.shiftRateWindow()
	}
	m.policy.issue(m, now)
}

func (m *Manager) othersWindowSum(self *Client) float64 {
	var s float64
	for _, c := range m.clients {
		if c != self {
			s += c.windowSum()
		}
	}
	return s
}

// setState applies Algorithm 2's ownership rule: only the instance that
// set EMERGENCY may reset or modify it.
func (m *Manager) setState(c *Client, s State) {
	if m.state == StateEmergency && m.owner != nil && m.owner != c {
		return
	}
	m.state = s
	if s == StateEmergency {
		m.owner = c
	} else {
		m.owner = nil
		m.ownerDelta = 0
	}
}

// Policy computes per-client token grants. Implementations are the Dilu
// RCKM and the GPU-sharing baselines.
type Policy interface {
	Name() string
	issue(m *Manager, now sim.Time)
}

// ---------------------------------------------------------------------------
// Dilu: Algorithm 2 — introspective vertical elasticity.

// Dilu is the paper's fast scale-up/down control algorithm.
type Dilu struct{}

// Name implements Policy.
func (Dilu) Name() string { return "Dilu" }

func (Dilu) issue(m *Manager, now sim.Time) {
	if len(m.clients) == 1 && !m.clients[0].SLOSensitive {
		// Single resident: NONE state, full limit.
		c := m.clients[0]
		m.state = StateNone
		c.rLast = m.cfg.MaxTokens * c.Limit
		c.Res.SetGrant(c.rLast)
		return
	}
	// SLO-sensitive clients first: they drive the global state.
	for _, c := range m.clients {
		if !c.SLOSensitive {
			continue
		}
		dt := c.DeltaT()
		inEmergency := m.state == StateEmergency && m.owner == c
		var trigger bool
		if m.cfg.NoHysteresis {
			trigger = dt > m.cfg.EtaViolation
		} else {
			trigger = dt > m.cfg.EtaViolation &&
				(now >= c.cooldownUntil || dt > 2*m.cfg.EtaViolation)
			if inEmergency {
				// Hysteresis: hold the protective state until inflation
				// is mostly gone, then pay the cooldown before
				// re-entering.
				trigger = dt > m.cfg.EtaViolation/2
				if !trigger && !c.pressured {
					c.cooldownUntil = now + m.cfg.EmergencyCooldown
				}
			}
		}
		if c.pressured && !m.cfg.NoPressureHold {
			// Backlog bursts hold the protective scale-up regardless of
			// the per-iteration signal (§3.4.2: fast scale-up buys time
			// for the lazy scale-out).
			trigger = true
			if dt < 1 {
				dt = 1
			}
		}
		var issue float64
		switch {
		case trigger:
			// Protective scale-up.
			m.setState(c, StateEmergency)
			if m.owner == c {
				m.ownerDelta = dt
			}
			issue = m.cfg.MaxTokens * c.Limit
		case c.windowSum() == 0:
			// Own queue idle: scale down to request.
			m.setState(c, StateRecovery)
			issue = m.cfg.MaxTokens * c.Request
		case m.othersWindowSum(c) == 0:
			// Collocated instances idle: take more, gradually.
			m.setState(c, StateRecovery)
			issue = c.rLast * m.cfg.EtaIncrease
			if max := m.cfg.MaxTokens * c.Limit; issue > max {
				issue = max
			}
		default:
			m.setState(c, StateContention)
			issue = m.cfg.MaxTokens * c.Request
		}
		c.rLast = issue
		c.Res.SetGrant(issue)
	}
	// Throughput-typed (training) clients follow the global state.
	for _, c := range m.clients {
		if c.SLOSensitive {
			continue
		}
		var issue float64
		switch m.state {
		case StateNone:
			issue = m.cfg.MaxTokens * c.Limit
		case StateEmergency:
			issue = m.cfg.MaxTokens * c.Request
			if c.rLast < issue {
				issue = c.rLast
			}
			if d := m.ownerDelta; d > 1 {
				issue /= d
			}
			// The request quota exists to avoid starvation (§3.2); the
			// protective decay is floored at half of it so even a long
			// emergency leaves throughput jobs a workable share.
			if floor := 0.5 * m.cfg.MaxTokens * c.Request; !m.cfg.NoAntiWindup && issue < floor {
				issue = floor
			}
		case StateRecovery:
			issue = c.rLast * m.cfg.EtaIncrease
			if max := m.cfg.MaxTokens * c.Limit; issue > max {
				issue = max
			}
		case StateContention:
			if m.cfg.NoAntiWindup {
				issue = c.rLast // the paper's literal line 31
				break
			}
			// The request quota is the profiled starvation-avoidance
			// floor (§3.2): steady contention restores it, so transient
			// emergency decays do not wind the grant down permanently.
			issue = m.cfg.MaxTokens * c.Request
			if c.rLast > issue {
				issue = c.rLast
			}
		}
		c.rLast = issue
		c.Res.SetGrant(issue)
	}
}

// ---------------------------------------------------------------------------
// Static MPS: the official spatial-partition baseline.

// MPS issues constant grants from either the limit (MPS-l) or request
// (MPS-r) quotas. Because CUDA MPS cannot oversubscribe thread
// percentages, grants are normalized when the quotas sum above 1.
type MPS struct {
	UseLimit bool
}

// Name implements Policy.
func (p MPS) Name() string {
	if p.UseLimit {
		return "MPS-l"
	}
	return "MPS-r"
}

func (p MPS) issue(m *Manager, _ sim.Time) {
	var sum float64
	for _, c := range m.clients {
		sum += p.quota(c)
	}
	norm := 1.0
	if sum > 1 {
		norm = 1 / sum
	}
	for _, c := range m.clients {
		c.rLast = m.cfg.MaxTokens * p.quota(c) * norm
		c.Res.SetGrant(c.rLast)
	}
}

func (p MPS) quota(c *Client) float64 {
	if p.UseLimit {
		return c.Limit
	}
	return c.Request
}

// ---------------------------------------------------------------------------
// Exclusive: whole-GPU pass-through.

// Exclusive grants full capacity to every resident (experiments place a
// single instance per GPU under this policy).
type Exclusive struct{}

// Name implements Policy.
func (Exclusive) Name() string { return "Exclusive" }

func (Exclusive) issue(m *Manager, _ sim.Time) {
	for _, c := range m.clients {
		c.rLast = m.cfg.MaxTokens
		c.Res.SetGrant(c.rLast)
	}
}

// ---------------------------------------------------------------------------
// TGS: transparent GPU sharing (NSDI'23) — productive jobs first,
// opportunistic jobs probe for leftover capacity by trial.

// TGS models the adaptive rate control of TGS: high-priority (productive)
// clients always receive full tokens; low-priority (opportunistic) ones
// start from a tiny share that grows slowly while the productive job is
// unharmed and collapses multiplicatively on any interference signal.
type TGS struct{}

// Name implements Policy.
func (TGS) Name() string { return "TGS" }

func (TGS) issue(m *Manager, _ sim.Time) {
	// TGS designates exactly one productive job per GPU (the user-tagged
	// high-priority task): the first SLO-sensitive client, or the first
	// client outright. Everything else — including a second inference
	// function — runs opportunistically, which is why the paper measures
	// 405-442× latency inflation for collocated low-priority inference.
	productiveIdx := 0
	for i, c := range m.clients {
		if c.SLOSensitive {
			productiveIdx = i
			break
		}
	}
	interference := false
	productiveBusy := false
	for i, c := range m.clients {
		if i != productiveIdx {
			continue
		}
		if c.DeltaT() > 0.10 {
			interference = true
		}
		if c.windowSum() > 0 {
			productiveBusy = true
		}
	}
	for i, c := range m.clients {
		productive := i == productiveIdx
		if productive {
			c.rLast = m.cfg.MaxTokens
			c.Res.SetGrant(c.rLast)
			continue
		}
		switch {
		case interference:
			c.oppShare *= 0.05 // multiplicative collapse on harm
		case !productiveBusy:
			c.oppShare *= 1.05 // probe faster while productive is idle
		default:
			c.oppShare += 0.0005 // cautious incremental trial (~0.1/s)
		}
		if c.oppShare < 0.005 {
			c.oppShare = 0.005
		}
		if c.oppShare > 1 {
			c.oppShare = 1
		}
		c.rLast = m.cfg.MaxTokens * c.oppShare
		c.Res.SetGrant(c.rLast)
	}
}

// ---------------------------------------------------------------------------
// FaST-GS: spatio-temporal sharing on static MPS.

// FaSTGS models FaST-GShare: spatial partitions equal to MPS-l plus a
// temporal dequeue layer whose CUDA-event bookkeeping costs a fixed
// fraction of issued tokens. Saturated (small) models hide the overhead,
// larger near-linear models pay it — matching the paper's observation
// that the gap is negligible for BERT-base/VGG19.
type FaSTGS struct {
	// Overhead is the token fraction lost to event collection and
	// prioritized dequeuing. Zero defaults to 7%.
	Overhead float64
}

// Name implements Policy.
func (FaSTGS) Name() string { return "FaST-GS" }

func (p FaSTGS) issue(m *Manager, _ sim.Time) {
	ovh := p.Overhead
	if ovh <= 0 {
		ovh = 0.07
	}
	var sum float64
	for _, c := range m.clients {
		sum += c.Limit
	}
	norm := 1.0
	if sum > 1 {
		norm = 1 / sum
	}
	// Temporal layer: idle partitions are redistributed to busy clients,
	// but each period's issue pays the bookkeeping overhead.
	var idleShare float64
	busy := 0
	for _, c := range m.clients {
		if c.windowSum() == 0 {
			idleShare += c.Limit * norm
		} else {
			busy++
		}
	}
	for _, c := range m.clients {
		share := c.Limit * norm
		if c.windowSum() == 0 {
			share *= 0.25 // parked partition
		} else if busy > 0 {
			share += idleShare / float64(busy)
		}
		c.rLast = m.cfg.MaxTokens * share * (1 - ovh)
		c.Res.SetGrant(c.rLast)
	}
}

// ---------------------------------------------------------------------------
// Uncontrolled: the -VS ablation.

// Uncontrolled grants every client its limit quota unconditionally and
// without normalization — collocation without any vertical scaling
// control. Training freely infringes on inference compute, which is what
// inflates SVR by >150% in the Figure 15 ablation.
type Uncontrolled struct{}

// Name implements Policy.
func (Uncontrolled) Name() string { return "Uncontrolled" }

func (Uncontrolled) issue(m *Manager, _ sim.Time) {
	for _, c := range m.clients {
		c.rLast = m.cfg.MaxTokens * c.Limit
		c.Res.SetGrant(c.rLast)
	}
}

// PolicyByName constructs a policy from its evaluation label.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "Dilu":
		return Dilu{}, nil
	case "MPS-l":
		return MPS{UseLimit: true}, nil
	case "MPS-r":
		return MPS{}, nil
	case "Exclusive":
		return Exclusive{}, nil
	case "TGS":
		return TGS{}, nil
	case "FaST-GS":
		return FaSTGS{}, nil
	case "Uncontrolled":
		return Uncontrolled{}, nil
	}
	return nil, fmt.Errorf("rckm: unknown policy %q", name)
}

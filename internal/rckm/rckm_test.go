package rckm

import (
	"math"
	"testing"
	"testing/quick"

	"dilu/internal/gpu"
	"dilu/internal/sim"
)

func newHarness(policy Policy) (*gpu.Device, *Manager) {
	dev := gpu.NewDevice("g0")
	m := NewManager(dev, policy, DefaultConfig())
	return dev, m
}

func addClient(t *testing.T, dev *gpu.Device, m *Manager, id string, slo bool, req, lim float64) *Client {
	t.Helper()
	res, err := dev.Attach(id, 1024)
	if err != nil {
		t.Fatal(err)
	}
	res.SatK = 1e6 // linear unless a test overrides
	c := &Client{ID: id, Res: res, SLOSensitive: slo, Request: req, Limit: lim}
	m.Register(c)
	return c
}

func tick(dev *gpu.Device, m *Manager, n int) {
	for i := 0; i < n; i++ {
		m.Issue(0)
		dev.ExecuteTick()
	}
}

func TestSingleTrainingGetsLimitNone(t *testing.T) {
	dev, m := newHarness(Dilu{})
	c := addClient(t, dev, m, "train", false, 0.4, 0.65)
	c.Res.AddWork(1e9)
	tick(dev, m, 3)
	if m.State() != StateNone {
		t.Fatalf("state = %v, want NONE", m.State())
	}
	want := m.Config().MaxTokens * 0.65
	if math.Abs(c.LastIssued()-want) > 1 {
		t.Fatalf("issued = %v, want %v", c.LastIssued(), want)
	}
}

func TestEmergencyScaleUpAndCollateralScaleDown(t *testing.T) {
	dev, m := newHarness(Dilu{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	inf.Res.AddWork(1e9)
	train.Res.AddWork(1e9)
	tick(dev, m, 4) // fill rate windows; both busy → CONTENTION
	if m.State() != StateContention {
		t.Fatalf("state = %v, want CONTENTION", m.State())
	}
	// Report an inflated KLC on the inference client.
	inf.SeedKLC(1e-6)
	inf.ObserveIteration(sim.FromSeconds(2e-2), 1e4) // 2e-6 s/blk = 2× min
	trainBefore := train.LastIssued()
	tick(dev, m, 1)
	if m.State() != StateEmergency {
		t.Fatalf("state = %v, want EMERGENCY", m.State())
	}
	wantInf := m.Config().MaxTokens * inf.Limit
	if math.Abs(inf.LastIssued()-wantInf) > 1 {
		t.Fatalf("inference issued %v, want limit %v", inf.LastIssued(), wantInf)
	}
	if train.LastIssued() >= trainBefore {
		t.Fatalf("training not scaled down: %v >= %v", train.LastIssued(), trainBefore)
	}
	// ΔT=1 → divisor 1? here ΔT=1.0 exactly: issue = min(req, last)/1
	maxTrain := m.Config().MaxTokens * train.Request
	if train.LastIssued() > maxTrain+1 {
		t.Fatalf("training issued %v above request cap %v", train.LastIssued(), maxTrain)
	}
}

func TestIdleInferenceScalesDownToRequest(t *testing.T) {
	dev, m := newHarness(Dilu{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	train.Res.AddWork(1e9)
	// Inference has no demand at all → its window stays zero.
	tick(dev, m, 6)
	if m.State() != StateRecovery {
		t.Fatalf("state = %v, want RECOVERY", m.State())
	}
	want := m.Config().MaxTokens * inf.Request
	if math.Abs(inf.LastIssued()-want) > 1 {
		t.Fatalf("idle inference issued %v, want request %v", inf.LastIssued(), want)
	}
	// Training should climb toward limit in RECOVERY.
	tick(dev, m, 20)
	wantTrain := m.Config().MaxTokens * train.Limit
	if math.Abs(train.LastIssued()-wantTrain) > 1 {
		t.Fatalf("training issued %v, want limit %v", train.LastIssued(), wantTrain)
	}
}

func TestInferenceGrowsWhenOthersIdle(t *testing.T) {
	dev, m := newHarness(Dilu{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	_ = train // no demand: training idle (e.g. gradient sync)
	inf.Res.AddWork(1e9)
	tick(dev, m, 1)
	first := inf.LastIssued()
	tick(dev, m, 10)
	if inf.LastIssued() <= first {
		t.Fatalf("inference should grow while others idle: %v -> %v", first, inf.LastIssued())
	}
	if max := m.Config().MaxTokens * inf.Limit; inf.LastIssued() > max+1 {
		t.Fatalf("growth exceeded limit cap: %v > %v", inf.LastIssued(), max)
	}
}

func TestEmergencyOwnership(t *testing.T) {
	dev, m := newHarness(Dilu{})
	a := addClient(t, dev, m, "infA", true, 0.3, 0.6)
	b := addClient(t, dev, m, "infB", true, 0.3, 0.6)
	a.Res.AddWork(1e9)
	b.Res.AddWork(1e9)
	tick(dev, m, 4)
	a.SeedKLCWork(1e-2, 1e4)
	a.ObserveIteration(sim.FromSeconds(2e-2), 1e4) // inflate A to ΔT=1
	tick(dev, m, 1)
	if m.State() != StateEmergency || m.owner != a {
		t.Fatalf("A should own EMERGENCY (state=%v)", m.State())
	}
	// B stays busy and in contention — it must not reset A's emergency.
	tick(dev, m, 1)
	if m.State() != StateEmergency {
		t.Fatalf("non-owner reset EMERGENCY: state=%v", m.State())
	}
	// A recovers: its own branch (contention) may modify the state.
	a.ObserveIteration(sim.FromSeconds(1.02e-2), 1e4)
	tick(dev, m, 1)
	if m.State() == StateEmergency {
		t.Fatal("owner failed to reset EMERGENCY after recovery")
	}
}

func TestUnregisterOwnerResetsState(t *testing.T) {
	dev, m := newHarness(Dilu{})
	a := addClient(t, dev, m, "infA", true, 0.3, 0.6)
	b := addClient(t, dev, m, "train", false, 0.4, 0.8)
	a.Res.AddWork(1e9)
	b.Res.AddWork(1e9)
	tick(dev, m, 4)
	a.SeedKLC(1e-6)
	a.ObserveIteration(sim.FromSeconds(2e-2), 1e4)
	tick(dev, m, 1)
	if m.State() != StateEmergency {
		t.Fatal("setup: no emergency")
	}
	m.Unregister(a)
	if m.State() != StateNone {
		t.Fatalf("state = %v after owner unregister, want NONE", m.State())
	}
}

func TestMPSStaticNormalization(t *testing.T) {
	dev, m := newHarness(MPS{UseLimit: true})
	a := addClient(t, dev, m, "a", true, 0.3, 0.8)
	b := addClient(t, dev, m, "b", false, 0.3, 0.8)
	a.Res.AddWork(1e9)
	b.Res.AddWork(1e9)
	tick(dev, m, 3)
	// limits sum to 1.6 → normalized to 0.5 each
	want := m.Config().MaxTokens * 0.5
	if math.Abs(a.LastIssued()-want) > 1 || math.Abs(b.LastIssued()-want) > 1 {
		t.Fatalf("MPS-l grants = %v/%v, want %v", a.LastIssued(), b.LastIssued(), want)
	}
}

func TestMPSRequestQuota(t *testing.T) {
	dev, m := newHarness(MPS{})
	a := addClient(t, dev, m, "a", true, 0.3, 0.8)
	tick(dev, m, 1)
	if want := m.Config().MaxTokens * 0.3; math.Abs(a.LastIssued()-want) > 1 {
		t.Fatalf("MPS-r grant = %v, want %v", a.LastIssued(), want)
	}
}

func TestMPSStaticUnderIdlePartner(t *testing.T) {
	// The static partition must NOT grow when the partner idles — that is
	// the fragmentation Dilu eliminates.
	dev, m := newHarness(MPS{UseLimit: true})
	a := addClient(t, dev, m, "a", true, 0.3, 0.5)
	b := addClient(t, dev, m, "b", false, 0.3, 0.5)
	_ = b // b never has demand
	a.Res.AddWork(1e9)
	tick(dev, m, 10)
	if want := m.Config().MaxTokens * 0.5; math.Abs(a.LastIssued()-want) > 1 {
		t.Fatalf("MPS grant drifted to %v", a.LastIssued())
	}
}

func TestExclusiveFullGrant(t *testing.T) {
	dev, m := newHarness(Exclusive{})
	a := addClient(t, dev, m, "a", false, 0.4, 0.65)
	tick(dev, m, 1)
	if a.LastIssued() != m.Config().MaxTokens {
		t.Fatalf("exclusive grant = %v", a.LastIssued())
	}
}

func TestTGSOpportunisticCollapsesOnInterference(t *testing.T) {
	dev, m := newHarness(TGS{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	inf.Res.AddWork(1e9)
	train.Res.AddWork(1e9)
	tick(dev, m, 20)
	grown := train.LastIssued()
	inf.SeedKLC(1e-6)
	inf.ObserveIteration(sim.FromSeconds(2e-2), 1e4)
	tick(dev, m, 1)
	if train.LastIssued() >= grown*0.2 {
		t.Fatalf("TGS opportunistic share should collapse: %v -> %v", grown, train.LastIssued())
	}
	if inf.LastIssued() != m.Config().MaxTokens {
		t.Fatalf("TGS productive grant = %v, want full", inf.LastIssued())
	}
}

func TestTGSOpportunisticGrowsWhileProductiveIdle(t *testing.T) {
	dev, m := newHarness(TGS{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	_ = inf // productive idle
	train.Res.AddWork(1e9)
	tick(dev, m, 1)
	first := train.LastIssued()
	tick(dev, m, 30)
	if train.LastIssued() <= first*2 {
		t.Fatalf("opportunistic should grow while productive idle: %v -> %v", first, train.LastIssued())
	}
}

func TestFaSTGSRedistributesIdlePartition(t *testing.T) {
	dev, m := newHarness(FaSTGS{})
	a := addClient(t, dev, m, "a", true, 0.25, 0.5)
	b := addClient(t, dev, m, "b", true, 0.25, 0.5)
	a.Res.AddWork(1e9)
	// b idle
	tick(dev, m, 2)
	// a busy should receive its own share plus most of b's, minus overhead
	spatialOnly := m.Config().MaxTokens * 0.5 * 0.93
	if a.LastIssued() <= spatialOnly {
		t.Fatalf("temporal redistribution missing: %v <= %v", a.LastIssued(), spatialOnly)
	}
	if b.LastIssued() >= m.Config().MaxTokens*0.5*0.93 {
		t.Fatalf("idle partition should be parked: %v", b.LastIssued())
	}
}

func TestFaSTGSOverheadReducesGrant(t *testing.T) {
	dev, m := newHarness(FaSTGS{Overhead: 0.10})
	a := addClient(t, dev, m, "a", true, 0.5, 1.0)
	a.Res.AddWork(1e9)
	tick(dev, m, 2)
	want := m.Config().MaxTokens * 1.0 * 0.9
	if math.Abs(a.LastIssued()-want) > 1 {
		t.Fatalf("grant = %v, want %v (10%% overhead)", a.LastIssued(), want)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, n := range []string{"Dilu", "MPS-l", "MPS-r", "Exclusive", "TGS", "FaST-GS"} {
		p, err := PolicyByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Fatalf("policy %q reports name %q", n, p.Name())
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestObserveIterationTracksMin(t *testing.T) {
	c := &Client{}
	c.ObserveIteration(10*sim.Millisecond, 1000)
	c.ObserveIteration(5*sim.Millisecond, 1000)
	c.ObserveIteration(20*sim.Millisecond, 1000)
	if got := c.DeltaT(); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("ΔT = %v, want 3 (20ms vs 5ms min)", got)
	}
}

func TestObserveIterationIgnoresInvalid(t *testing.T) {
	c := &Client{}
	c.ObserveIteration(0, 100)
	c.ObserveIteration(10*sim.Millisecond, 0)
	if c.DeltaT() != 0 {
		t.Fatal("invalid observations must be ignored")
	}
}

// Property: under the Dilu policy, issued tokens stay within
// [0, MaxTokens·limit] for throughput clients and [0, MaxTokens·limit]
// for SLO clients, across random demand patterns.
func TestDiluIssueBoundsProperty(t *testing.T) {
	f := func(demA, demB []uint16, klcScale uint8) bool {
		dev, m := newHarness(Dilu{})
		a := &Client{ID: "a", SLOSensitive: true, Request: 0.3, Limit: 0.6}
		b := &Client{ID: "b", Request: 0.4, Limit: 0.8}
		resA, _ := dev.Attach("a", 10)
		resB, _ := dev.Attach("b", 10)
		resA.SatK, resB.SatK = 1e6, 1e6
		a.Res, b.Res = resA, resB
		m.Register(a)
		m.Register(b)
		a.SeedKLC(1e-6)
		n := len(demA)
		if len(demB) < n {
			n = len(demB)
		}
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			resA.AddWork(float64(demA[i]))
			resB.AddWork(float64(demB[i]))
			if i%7 == 3 {
				a.ObserveIteration(sim.FromSeconds(float64(klcScale%5+1)*1e-6*1e4), 1e4)
			}
			m.Issue(0)
			dev.ExecuteTick()
			max := m.Config().MaxTokens
			if a.LastIssued() < 0 || a.LastIssued() > max*a.Limit+1 {
				return false
			}
			if b.LastIssued() < 0 || b.LastIssued() > max*b.Limit+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

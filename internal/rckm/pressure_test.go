package rckm

import (
	"testing"

	"dilu/internal/gpu"
	"dilu/internal/sim"
)

func TestPressureHoldsEmergency(t *testing.T) {
	dev, m := newHarness(Dilu{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	inf.Res.AddWork(1e9)
	train.Res.AddWork(1e9)
	tick(dev, m, 4)
	inf.SetPressured(true)
	tick(dev, m, 1)
	if m.State() != StateEmergency {
		t.Fatalf("pressure did not trigger EMERGENCY: %v", m.State())
	}
	// Pressure holds across many cycles even with no KLC inflation.
	tick(dev, m, 50)
	if m.State() != StateEmergency {
		t.Fatalf("pressure did not hold EMERGENCY: %v", m.State())
	}
	if want := m.Config().MaxTokens * inf.Limit; inf.LastIssued() != want {
		t.Fatalf("pressured inference issued %v, want limit %v", inf.LastIssued(), want)
	}
	// Clearing the pressure releases the state.
	inf.SetPressured(false)
	tick(dev, m, 2)
	if m.State() == StateEmergency {
		t.Fatal("EMERGENCY survived pressure clear")
	}
}

func TestNoPressureHoldAblation(t *testing.T) {
	dev := gpu.NewDevice("g0")
	cfg := DefaultConfig()
	cfg.NoPressureHold = true
	m := NewManager(dev, Dilu{}, cfg)
	res, _ := dev.Attach("inf", 10)
	res.SatK = 1e6
	c := &Client{ID: "inf", Res: res, SLOSensitive: true, Request: 0.3, Limit: 0.6}
	m.Register(c)
	tr, _ := dev.Attach("t", 10)
	tr.SatK = 1e6
	ct := &Client{ID: "t", Res: tr, Request: 0.4, Limit: 0.8}
	m.Register(ct)
	res.AddWork(1e9)
	tr.AddWork(1e9)
	tick(dev, m, 4)
	c.SetPressured(true)
	tick(dev, m, 2)
	if m.State() == StateEmergency {
		t.Fatal("ablated controller must ignore pressure")
	}
}

func TestNoAntiWindupAblationFreezesRLast(t *testing.T) {
	dev := gpu.NewDevice("g0")
	cfg := DefaultConfig()
	cfg.NoAntiWindup = true
	cfg.NoHysteresis = true
	m := NewManager(dev, Dilu{}, cfg)
	res, _ := dev.Attach("inf", 10)
	res.SatK = 1e6
	inf := &Client{ID: "inf", Res: res, SLOSensitive: true, Request: 0.3, Limit: 0.6}
	m.Register(inf)
	tr, _ := dev.Attach("t", 10)
	tr.SatK = 1e6
	train := &Client{ID: "t", Res: tr, Request: 0.4, Limit: 0.8}
	m.Register(train)
	res.AddWork(1e9)
	tr.AddWork(1e9)
	tick(dev, m, 4)
	// Sustained severe inflation decays training without a floor...
	inf.SeedKLCWork(1e-2, 1e4)
	for i := 0; i < 40; i++ {
		inf.ObserveIteration(sim.FromSeconds(5e-2), 1e4) // ΔT = 4
		tick(dev, m, 1)
	}
	decayed := train.LastIssued()
	if decayed > 0.05*m.Config().MaxTokens*train.Request {
		t.Fatalf("literal formula should decay training deeply, got %v", decayed)
	}
	// ...and CONTENTION freezes the decayed value (the windup the
	// stabilized controller repairs).
	inf.ObserveIteration(sim.FromSeconds(1.01e-2), 1e4)
	tick(dev, m, 3)
	if m.State() != StateContention {
		t.Fatalf("state = %v", m.State())
	}
	if train.LastIssued() > decayed*1.01 {
		t.Fatalf("literal CONTENTION should freeze R_last: %v vs %v", train.LastIssued(), decayed)
	}
}

func TestAntiWindupFloorAndRestore(t *testing.T) {
	dev, m := newHarness(Dilu{})
	inf := addClient(t, dev, m, "inf", true, 0.3, 0.6)
	train := addClient(t, dev, m, "train", false, 0.4, 0.8)
	inf.Res.AddWork(1e9)
	train.Res.AddWork(1e9)
	tick(dev, m, 4)
	inf.SeedKLCWork(1e-2, 1e4)
	for i := 0; i < 40; i++ {
		inf.ObserveIteration(sim.FromSeconds(5e-2), 1e4)
		tick(dev, m, 1)
	}
	floor := 0.5 * m.Config().MaxTokens * train.Request
	if train.LastIssued() < floor-1 {
		t.Fatalf("decay broke the floor: %v < %v", train.LastIssued(), floor)
	}
	// Recovery of the inference restores the request quota.
	inf.ObserveIteration(sim.FromSeconds(1.01e-2), 1e4)
	tick(dev, m, 3)
	want := m.Config().MaxTokens * train.Request
	if train.LastIssued() < want-1 {
		t.Fatalf("CONTENTION should restore request: %v < %v", train.LastIssued(), want)
	}
}

// Package model is the DL model catalog and performance model. Every
// figure in the paper evaluates some subset of seven models (ResNet152,
// VGG19, BERT-base, RoBERTa-large, GPT2-large, LLaMA2-7B, ChatGLM3-6B);
// this package describes each one by the quantities the simulator needs:
//
//   - kernel-block work per inference batch / training iteration,
//   - SM-saturation knee (how early extra SMs stop helping),
//   - memory footprints and parameter sizes,
//   - SLOs and batching sub-linearity,
//   - LLM prefill/decode structure and training sync/pipeline overheads.
//
// Work is expressed in the block units of internal/gpu: a device executes
// gpu.DefaultCapacityPerTick blocks per 5 ms tick at full SM, i.e.
// BlocksPerSecond per second, so "W blocks" means "W/BlocksPerSecond
// seconds on a whole idle A100". Calibration anchors from the paper are
// noted inline (e.g. RoBERTa-large: +2% throughput from 50%→100% SMR at
// IBS=4; kernel launch cycle ≈ 25 ms; params 0.2–12.6 GB).
package model

import (
	"fmt"
	"math"

	"dilu/internal/gpu"
	"dilu/internal/sim"
)

// BlocksPerSecond is the full-SM execution rate of a device in block
// units per second of virtual time.
const BlocksPerSecond = gpu.DefaultCapacityPerTick * float64(sim.Second/sim.TickPeriod)

// Family classifies a model's domain.
type Family int

// Model families used by the paper's workload mix.
const (
	Vision Family = iota
	NLP
	LLM
)

func (f Family) String() string {
	switch f {
	case Vision:
		return "vision"
	case NLP:
		return "nlp"
	case LLM:
		return "llm"
	}
	return "unknown"
}

// Spec describes one model's resource behaviour for both inference and
// training roles.
type Spec struct {
	Name     string
	Family   Family
	ParamsGB float64

	// Inference.
	InferMemMB   float64      // device memory of one inference instance
	InferWork1   float64      // blocks per batch-1 execution
	InferPerItem float64      // marginal work of each extra batch item, as a fraction of InferWork1
	InferKnee1   float64      // SM share where batch-1 inference reaches 95% of peak
	KneeBatchExp float64      // knee growth exponent with batch size
	SLO          sim.Duration // end-to-end latency SLO for one request

	// Generative (LLM) inference.
	Generative     bool
	PrefillWork    float64 // blocks for prefilling a batch-1 prompt
	DecodeWork1    float64 // blocks per decode step at batch 1
	DecodePerItem  float64 // marginal decode work per extra sequence
	AvgOutTokens   int     // output length used for closed-form latency
	PipelineStages int     // inference pipeline depth when sharded over fragments
	// KVMBPerToken is the per-token KV-cache footprint charged against
	// device memory by token-level serving. Catalog values are dyadic
	// rationals (exact in float64) so repeated reserve/release cycles
	// accumulate zero drift against the cluster's quota bookkeeping.
	KVMBPerToken float64

	// Training.
	TrainMemMB   float64      // per-worker device memory
	TrainWork    float64      // blocks per iteration (forward+backward)
	TrainSync    sim.Duration // gradient-sync / communication idle per iteration
	TrainSamples int          // samples per iteration per worker
	TrainKnee    float64      // SM share where training reaches 95% of peak
	TrainStages  int          // >1 means pipeline-parallel fine-tuning (DeepSpeed)
}

// MaxIBS is the largest inference batch size the profiler explores.
const MaxIBS = 32

// InferWork returns the blocks of one inference batch execution.
func (s *Spec) InferWork(ibs int) float64 {
	if ibs < 1 {
		ibs = 1
	}
	return s.InferWork1 * (1 + s.InferPerItem*float64(ibs-1))
}

// InferKnee returns the saturation knee for the given batch size.
func (s *Spec) InferKnee(ibs int) float64 {
	if ibs < 1 {
		ibs = 1
	}
	k := s.InferKnee1 * math.Pow(float64(ibs), s.KneeBatchExp)
	if k > 0.93 {
		k = 0.93
	}
	return k
}

// InferSatK returns the eff-curve constant for inference at a batch size.
func (s *Spec) InferSatK(ibs int) float64 {
	return gpu.KneeForEff(s.InferKnee(ibs), 0.95)
}

// TrainSatK returns the eff-curve constant for training iterations.
func (s *Spec) TrainSatK() float64 {
	return gpu.KneeForEff(s.TrainKnee, 0.95)
}

// InferExecTime predicts one batch execution time at SM share smr. For
// generative models this is prefill plus AvgOutTokens decode steps.
func (s *Spec) InferExecTime(smr float64, ibs int) sim.Duration {
	eff := gpu.Eff(s.InferSatK(ibs), smr)
	if eff <= 0 {
		return sim.Hour
	}
	work := s.InferWork(ibs)
	if s.Generative {
		work = s.GenerateWork(ibs, s.AvgOutTokens)
	}
	return sim.FromSeconds(work / (BlocksPerSecond * eff))
}

// DecodeStepWork returns the blocks of one decode step at batch size ibs.
func (s *Spec) DecodeStepWork(ibs int) float64 {
	if ibs < 1 {
		ibs = 1
	}
	return s.DecodeWork1 * (1 + s.DecodePerItem*float64(ibs-1))
}

// GenerateWork returns the total blocks to serve a generative batch:
// prefill plus outTokens decode steps.
func (s *Spec) GenerateWork(ibs, outTokens int) float64 {
	if ibs < 1 {
		ibs = 1
	}
	prefill := s.PrefillWork * (1 + s.InferPerItem*float64(ibs-1))
	return prefill + float64(outTokens)*s.DecodeStepWork(ibs)
}

// TPOT predicts the time-per-output-token at SM share smr and batch ibs —
// the paper's LLM latency metric.
func (s *Spec) TPOT(smr float64, ibs int) sim.Duration {
	eff := gpu.Eff(s.InferSatK(ibs), smr)
	if eff <= 0 {
		return sim.Hour
	}
	return sim.FromSeconds(s.DecodeStepWork(ibs) / (BlocksPerSecond * eff))
}

// InferThroughput predicts requests/second at a given share and batch.
func (s *Spec) InferThroughput(smr float64, ibs int) float64 {
	t := s.InferExecTime(smr, ibs).Seconds()
	if t <= 0 {
		return 0
	}
	return float64(ibs) / t
}

// ThroughputEfficacy is the paper's TE metric: throughput per SM unit
// (SMR expressed in percent, matching TE = IBS/(t_exec·SMR)).
func (s *Spec) ThroughputEfficacy(smr float64, ibs int) float64 {
	if smr <= 0 {
		return 0
	}
	return s.InferThroughput(smr, ibs) / (smr * 100)
}

// TrainIterTime predicts one training iteration (compute + sync idle) at
// SM share smr.
func (s *Spec) TrainIterTime(smr float64) sim.Duration {
	eff := gpu.Eff(s.TrainSatK(), smr)
	if eff <= 0 {
		return sim.Hour
	}
	compute := sim.FromSeconds(s.TrainWork / (BlocksPerSecond * eff))
	return compute + s.TrainSync
}

// TrainThroughput predicts samples/second per worker at SM share smr.
func (s *Spec) TrainThroughput(smr float64) float64 {
	t := s.TrainIterTime(smr).Seconds()
	if t <= 0 {
		return 0
	}
	return float64(s.TrainSamples) / t
}

// TrainIdleFraction is the share of an iteration spent in communication
// (Observation-2 of the paper: >40% for 4-worker GPT2-large DDP).
func (s *Spec) TrainIdleFraction(smr float64) float64 {
	t := s.TrainIterTime(smr)
	if t <= 0 {
		return 0
	}
	return float64(s.TrainSync) / float64(t)
}

// ColdStartStages decomposes an instance cold start into its three
// serially-executed phases. The serving plane charges each phase
// against the wall clock in order; attribution (which phase was on a
// request's critical path) and shortening (a node-local kernel cache
// skipping JIT) both operate on this decomposition.
type ColdStartStages struct {
	ImageInit sim.Duration // container image pull + runtime/driver init
	ModelLoad sim.Duration // parameter load over PCIe-class bandwidth
	KernelJIT sim.Duration // GPU-kernel JIT / graph capture on first touch
}

// Total is the wall-clock cold-start duration: the stages run serially.
func (st ColdStartStages) Total() sim.Duration {
	return st.ImageInit + st.ModelLoad + st.KernelJIT
}

// Cold-start decomposition constants. ImageInit+KernelJIT must sum to
// the pre-stage-model scalar's 2 s container-init term exactly (integer
// nanoseconds), so ColdStartStages().Total() == the historical
// ColdStart() for every spec — the byte-identity of all pre-stage
// driver manifests depends on it.
const (
	coldImageInit = 3 * sim.Second / 2 // 1.5 s: image pull + runtime init
	coldKernelJIT = sim.Second / 2     // 0.5 s: kernel JIT / graph capture
	coldLoadGBps  = 1.5                // PCIe-class parameter-load bandwidth
)

// ColdStartStages returns the default cold-start decomposition:
// fixed-cost image/runtime init, size-proportional parameter load, and
// fixed-cost kernel JIT. The parts sum exactly to ColdStart().
func (s *Spec) ColdStartStages() ColdStartStages {
	return ColdStartStages{
		ImageInit: coldImageInit,
		ModelLoad: sim.FromSeconds(s.ParamsGB / coldLoadGBps),
		KernelJIT: coldKernelJIT,
	}
}

// ColdStart returns the instance cold-start duration: container and
// runtime init plus loading parameters over PCIe-class bandwidth plus
// kernel JIT — the sum of ColdStartStages.
func (s *Spec) ColdStart() sim.Duration {
	return s.ColdStartStages().Total()
}

func (s *Spec) String() string { return fmt.Sprintf("%s(%s)", s.Name, s.Family) }

// catalog holds every model of the paper's evaluation. Work constants are
// calibrated so full-GPU batch-1 latencies and training iteration times
// are A100-plausible and the paper's qualitative anchors hold.
var catalog = []*Spec{
	{
		Name: "ResNet152", Family: Vision, ParamsGB: 0.23,
		InferMemMB: 1200, InferWork1: 14000, InferPerItem: 0.35,
		InferKnee1: 0.30, KneeBatchExp: 0.45, SLO: 75 * sim.Millisecond,
		TrainMemMB: 6 * 1024, TrainWork: 45000, TrainSync: 10 * sim.Millisecond,
		TrainSamples: 64, TrainKnee: 0.58,
	},
	{
		Name: "VGG19", Family: Vision, ParamsGB: 0.55,
		InferMemMB: 1600, InferWork1: 10000, InferPerItem: 0.60,
		InferKnee1: 0.36, KneeBatchExp: 0.45, SLO: 60 * sim.Millisecond,
		TrainMemMB: 8 * 1024, TrainWork: 40000, TrainSync: 18 * sim.Millisecond,
		TrainSamples: 32, TrainKnee: 0.62,
	},
	{
		Name: "BERT-base", Family: NLP, ParamsGB: 0.42,
		InferMemMB: 1400, InferWork1: 6000, InferPerItem: 0.40,
		InferKnee1: 0.18, KneeBatchExp: 0.40, SLO: 40 * sim.Millisecond,
		TrainMemMB: 6 * 1024, TrainWork: 40000, TrainSync: 12 * sim.Millisecond,
		TrainSamples: 32, TrainKnee: 0.48,
	},
	{
		// Anchor: at IBS=4 the knee sits near 40% SM, so doubling SMR from
		// 50% to 100% buys only ~2% throughput (paper §3.2); batch-4 exec
		// ≈ 31 ms at its knee, matching the ~25 ms KLC observation.
		Name: "RoBERTa-large", Family: NLP, ParamsGB: 1.42,
		InferMemMB: 3200, InferWork1: 15000, InferPerItem: 0.35,
		InferKnee1: 0.25, KneeBatchExp: 0.40, SLO: 100 * sim.Millisecond,
		TrainMemMB: 12 * 1024, TrainWork: 90000, TrainSync: 25 * sim.Millisecond,
		TrainSamples: 16, TrainKnee: 0.62,
	},
	{
		Name: "GPT2-large", Family: NLP, ParamsGB: 3.1,
		InferMemMB: 6400, InferWork1: 28000, InferPerItem: 0.40,
		InferKnee1: 0.44, KneeBatchExp: 0.35, SLO: 150 * sim.Millisecond,
		// Anchor: 4-worker DDP training idles >40% of each iteration in
		// gradient sync (paper Fig. 2(a)): 80ms sync / (120ms+80ms) = 40%.
		TrainMemMB: 20 * 1024, TrainWork: 120000, TrainSync: 80 * sim.Millisecond,
		TrainSamples: 8, TrainKnee: 0.72,
	},
	{
		Name: "LLaMA2-7B", Family: LLM, ParamsGB: 12.6, Generative: true,
		InferMemMB: 16 * 1024, InferWork1: 90000, InferPerItem: 0.50,
		InferKnee1: 0.62, KneeBatchExp: 0.30, SLO: 80 * sim.Millisecond,
		PrefillWork: 90000, DecodeWork1: 15000, DecodePerItem: 0.15,
		AvgOutTokens: 32, PipelineStages: 4, KVMBPerToken: 0.5,
		// Fine-tuning uses DeepSpeed pipeline parallelism; each worker
		// idles ~20% in pipeline bubbles (paper Fig. 2(b)).
		TrainMemMB: 9 * 1024, TrainWork: 200000, TrainSync: 55 * sim.Millisecond,
		TrainSamples: 4, TrainKnee: 0.85, TrainStages: 4,
	},
	{
		Name: "ChatGLM3-6B", Family: LLM, ParamsGB: 11.7, Generative: true,
		InferMemMB: 14 * 1024, InferWork1: 80000, InferPerItem: 0.50,
		InferKnee1: 0.60, KneeBatchExp: 0.30, SLO: 80 * sim.Millisecond,
		PrefillWork: 80000, DecodeWork1: 13500, DecodePerItem: 0.15,
		AvgOutTokens: 32, PipelineStages: 4, KVMBPerToken: 0.4375,
		TrainMemMB: 8 * 1024, TrainWork: 180000, TrainSync: 50 * sim.Millisecond,
		TrainSamples: 4, TrainKnee: 0.85, TrainStages: 4,
	},
}

// All returns every catalog model in declaration order.
func All() []*Spec { return catalog }

// ByName returns a model by name; it panics on unknown names, which is a
// programming error in experiment drivers.
func ByName(name string) *Spec {
	for _, s := range catalog {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("model: unknown model %q", name))
}

// LLMRefPromptTokens is the prompt length the catalog's PrefillWork
// figure was calibrated at. Token-level serving scales prefill cost
// linearly from this reference.
const LLMRefPromptTokens = 128

// LLMProfile is the token-level cost model for autoregressive serving:
// per-token prefill work, batch-size-dependent decode step work, and
// per-token KV-cache footprint. Derived from a generative Spec so the
// closed-form (GenerateWork) and token-level views share calibration.
type LLMProfile struct {
	Name             string
	PrefillTokenWork float64 // blocks per prompt token prefilled
	DecodeWork1      float64 // blocks per decode step at one sequence
	DecodePerSeq     float64 // marginal decode work per extra sequence
	KVMBPerToken     float64 // KV-cache MB charged per resident token
	SLO              sim.Duration
}

// LLM returns the token-level profile of a generative spec; it panics on
// non-generative models, which is a driver programming error.
func (s *Spec) LLM() LLMProfile {
	if !s.Generative {
		panic(fmt.Sprintf("model: %s is not generative", s.Name))
	}
	return LLMProfile{
		Name:             s.Name,
		PrefillTokenWork: s.PrefillWork / LLMRefPromptTokens,
		DecodeWork1:      s.DecodeWork1,
		DecodePerSeq:     s.DecodePerItem,
		KVMBPerToken:     s.KVMBPerToken,
		SLO:              s.SLO,
	}
}

// StepWork returns the blocks of one continuous-batching iteration that
// decodes decodeSeqs sequences while prefilling prefillTokens prompt
// tokens (chunked-prefill style: joiners share the step with decoders).
func (p LLMProfile) StepWork(decodeSeqs, prefillTokens int) float64 {
	var w float64
	if prefillTokens > 0 {
		w += float64(prefillTokens) * p.PrefillTokenWork
	}
	if decodeSeqs > 0 {
		w += p.DecodeWork1 * (1 + p.DecodePerSeq*float64(decodeSeqs-1))
	}
	return w
}

// KVForTokens returns the KV-cache memory of n resident tokens.
func (p LLMProfile) KVForTokens(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * p.KVMBPerToken
}

// Names returns all catalog model names.
func Names() []string {
	out := make([]string, len(catalog))
	for i, s := range catalog {
		out[i] = s.Name
	}
	return out
}

package model

import (
	"math"
	"testing"
	"testing/quick"

	"dilu/internal/sim"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{"ResNet152", "VGG19", "BERT-base", "RoBERTa-large",
		"GPT2-large", "LLaMA2-7B", "ChatGLM3-6B"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("catalog has %d models, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("catalog[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ByName("nope")
}

func TestParamsRangeMatchesPaper(t *testing.T) {
	// Paper: "model parameters range from 0.2GB to 12.6GB".
	minP, maxP := math.Inf(1), 0.0
	for _, s := range All() {
		if s.ParamsGB < minP {
			minP = s.ParamsGB
		}
		if s.ParamsGB > maxP {
			maxP = s.ParamsGB
		}
	}
	if minP > 0.3 || maxP != 12.6 {
		t.Fatalf("params range [%v, %v], want ~[0.23, 12.6]", minP, maxP)
	}
}

func TestRoBERTaSaturationAnchor(t *testing.T) {
	// Paper anchor: RoBERTa-large at IBS=4 gains ~2% from 50%→100% SMR.
	s := ByName("RoBERTa-large")
	t50 := s.InferThroughput(0.5, 4)
	t100 := s.InferThroughput(1.0, 4)
	gain := t100/t50 - 1
	if gain < 0.005 || gain > 0.05 {
		t.Fatalf("50→100%% SMR gain = %.3f, want ~0.02", gain)
	}
}

func TestRoBERTaKLCAnchor(t *testing.T) {
	// Paper: KLC ≈ 25 ms for RoBERTa-large inference iteration.
	s := ByName("RoBERTa-large")
	klc := s.InferExecTime(0.5, 4).Millis()
	if klc < 20 || klc > 40 {
		t.Fatalf("batch-4 exec = %.1fms, want 20-40ms", klc)
	}
}

func TestGPT2TrainIdleAnchor(t *testing.T) {
	// Paper: 4-worker GPT2-large DDP idles >40% of the iteration.
	s := ByName("GPT2-large")
	idle := s.TrainIdleFraction(1.0)
	if idle < 0.38 || idle > 0.45 {
		t.Fatalf("GPT2 train idle = %.2f, want ~0.40", idle)
	}
}

func TestLLaMAPipelineIdleAnchor(t *testing.T) {
	// Paper: LLaMA2-7B pipeline fine-tuning workers idle ~20%.
	s := ByName("LLaMA2-7B")
	idle := s.TrainIdleFraction(1.0)
	if idle < 0.15 || idle > 0.27 {
		t.Fatalf("LLaMA train idle = %.2f, want ~0.20", idle)
	}
	if s.TrainStages != 4 {
		t.Fatal("LLaMA fine-tunes with 4 pipeline stages")
	}
}

func TestInferThroughputIncreasesWithSMR(t *testing.T) {
	for _, s := range All() {
		prev := 0.0
		for smr := 0.1; smr <= 1.0; smr += 0.1 {
			thr := s.InferThroughput(smr, 4)
			if thr < prev {
				t.Fatalf("%s: throughput decreased at smr=%.1f", s.Name, smr)
			}
			prev = thr
		}
	}
}

func TestInferWorkSubLinearInBatch(t *testing.T) {
	for _, s := range All() {
		w1 := s.InferWork(1)
		w4 := s.InferWork(4)
		if w4 <= w1 {
			t.Fatalf("%s: batch work must grow", s.Name)
		}
		if w4 >= 4*w1 {
			t.Fatalf("%s: batching must be sub-linear (w4=%v, 4*w1=%v)", s.Name, w4, 4*w1)
		}
	}
}

func TestSLOFeasibility(t *testing.T) {
	// Every model must have at least one <IBS,SMR> configuration meeting
	// t_exec <= SLO/2 (the profiler's feasibility rule), otherwise the
	// HGSS search cannot succeed.
	for _, s := range All() {
		budget := s.SLO / 2
		feasible := false
		for ibs := 1; ibs <= MaxIBS && !feasible; ibs *= 2 {
			for smr := 0.1; smr <= 1.0; smr += 0.1 {
				var texec sim.Duration
				if s.Generative {
					texec = s.TPOT(smr, ibs)
				} else {
					texec = s.InferExecTime(smr, ibs)
				}
				if texec <= budget {
					feasible = true
					break
				}
			}
		}
		if !feasible {
			t.Fatalf("%s: no feasible <IBS,SMR> under SLO/2=%.0fms", s.Name, budget.Millis())
		}
	}
}

func TestTrainThroughputSaturates(t *testing.T) {
	for _, s := range All() {
		thrKnee := s.TrainThroughput(s.TrainKnee)
		thrFull := s.TrainThroughput(1.0)
		if thrKnee < 0.85*thrFull {
			t.Fatalf("%s: throughput at knee %.2f should be near peak: %.2f vs %.2f",
				s.Name, s.TrainKnee, thrKnee, thrFull)
		}
	}
}

func TestColdStartScalesWithParams(t *testing.T) {
	small := ByName("ResNet152").ColdStart()
	large := ByName("LLaMA2-7B").ColdStart()
	if large <= small {
		t.Fatal("cold start must grow with model size")
	}
	if large < 8*sim.Second || large > 15*sim.Second {
		t.Fatalf("LLaMA cold start = %v, want ~10s", large)
	}
}

func TestTPOTMeetsSLOAtFullGPU(t *testing.T) {
	for _, s := range All() {
		if !s.Generative {
			continue
		}
		if got := s.TPOT(1.0, 1); got > s.SLO {
			t.Fatalf("%s: TPOT at full GPU %.1fms exceeds SLO %.1fms",
				s.Name, got.Millis(), s.SLO.Millis())
		}
	}
}

func TestThroughputEfficacyShape(t *testing.T) {
	// TE must decline in SMR beyond the knee (the marginal-effect basis
	// of Figure 4) and rise with batch size at fixed SMR.
	s := ByName("RoBERTa-large")
	knee := s.InferKnee(4)
	teAtKnee := s.ThroughputEfficacy(knee, 4)
	teFull := s.ThroughputEfficacy(1.0, 4)
	if teFull >= teAtKnee {
		t.Fatalf("TE should fall beyond knee: knee=%v full=%v", teAtKnee, teFull)
	}
	te1 := s.ThroughputEfficacy(0.4, 1)
	te8 := s.ThroughputEfficacy(0.4, 8)
	if te8 <= te1 {
		t.Fatalf("TE should rise with batch: ibs1=%v ibs8=%v", te1, te8)
	}
}

func TestGenerateWorkComposition(t *testing.T) {
	s := ByName("LLaMA2-7B")
	w := s.GenerateWork(1, 32)
	want := s.PrefillWork + 32*s.DecodeWork1
	if math.Abs(w-want) > 1e-9 {
		t.Fatalf("generate work = %v, want %v", w, want)
	}
}

// Property: exec time is monotone non-increasing in SMR for all models
// and batch sizes.
func TestExecTimeMonotoneProperty(t *testing.T) {
	models := All()
	f := func(mi, bi uint8, s1, s2 uint8) bool {
		m := models[int(mi)%len(models)]
		ibs := 1 << (bi % 6)
		a := 0.01 + float64(s1%100)/100.0
		b := 0.01 + float64(s2%100)/100.0
		if a > b {
			a, b = b, a
		}
		return m.InferExecTime(b, ibs) <= m.InferExecTime(a, ibs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch work is monotone in batch size.
func TestBatchWorkMonotoneProperty(t *testing.T) {
	models := All()
	f := func(mi uint8, b1, b2 uint8) bool {
		m := models[int(mi)%len(models)]
		x, y := int(b1%32)+1, int(b2%32)+1
		if x > y {
			x, y = y, x
		}
		return m.InferWork(x) <= m.InferWork(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The staged cold-start decomposition must sum exactly (integer
// nanoseconds, not approximately) to the historical scalar formula for
// every catalog model: pre-stage driver manifests are byte-identical
// only if the default stage total is the same int64 the old
// ColdStart() returned.
func TestColdStartStagesSumExact(t *testing.T) {
	for _, m := range All() {
		st := m.ColdStartStages()
		legacy := 2*sim.Second + sim.FromSeconds(m.ParamsGB/1.5)
		if got := st.Total(); got != legacy {
			t.Errorf("%s: stages total %v != legacy scalar %v", m.Name, got, legacy)
		}
		if got := m.ColdStart(); got != st.Total() {
			t.Errorf("%s: ColdStart %v != stages total %v", m.Name, got, st.Total())
		}
		if st.ImageInit <= 0 || st.ModelLoad < 0 || st.KernelJIT <= 0 {
			t.Errorf("%s: non-positive stage in %+v", m.Name, st)
		}
	}
}

package model

import (
	"strings"
	"testing"

	"dilu/internal/sim"
)

func TestFamilyAndSpecStrings(t *testing.T) {
	if Vision.String() != "vision" || NLP.String() != "nlp" || LLM.String() != "llm" {
		t.Fatal("family names wrong")
	}
	if Family(99).String() != "unknown" {
		t.Fatal("unknown family")
	}
	s := ByName("LLaMA2-7B").String()
	if !strings.Contains(s, "LLaMA2-7B") || !strings.Contains(s, "llm") {
		t.Fatalf("spec string: %s", s)
	}
}

func TestBatchClampsToOne(t *testing.T) {
	s := ByName("RoBERTa-large")
	if s.InferWork(0) != s.InferWork(1) || s.InferWork(-3) != s.InferWork(1) {
		t.Fatal("InferWork must clamp batch to 1")
	}
	if s.DecodeStepWork(0) != s.DecodeStepWork(1) {
		t.Fatal("DecodeStepWork must clamp")
	}
	if s.InferKnee(0) != s.InferKnee(1) {
		t.Fatal("InferKnee must clamp")
	}
	llm := ByName("LLaMA2-7B")
	if llm.GenerateWork(0, 8) != llm.GenerateWork(1, 8) {
		t.Fatal("GenerateWork must clamp")
	}
}

func TestDegenerateShares(t *testing.T) {
	s := ByName("BERT-base")
	if s.InferExecTime(0, 1) != sim.Hour {
		t.Fatal("zero share exec time should be the sentinel hour")
	}
	if thr := s.InferThroughput(0, 1); thr > 0.001 {
		t.Fatalf("zero share throughput should be negligible: %v", thr)
	}
	if s.ThroughputEfficacy(0, 1) != 0 {
		t.Fatal("zero share TE")
	}
	if thr := s.TrainThroughput(0); thr > 0.01 {
		t.Fatalf("zero share training throughput should be negligible: %v", thr)
	}
	if s.TrainIdleFraction(0) <= 0 {
		t.Fatal("idle fraction at zero share should still be defined (all idle-ish)")
	}
	llm := ByName("ChatGLM3-6B")
	if llm.TPOT(0, 1) != sim.Hour {
		t.Fatal("zero share TPOT sentinel")
	}
}

func TestChatGLMCoverage(t *testing.T) {
	s := ByName("ChatGLM3-6B")
	if !s.Generative || s.PipelineStages != 4 {
		t.Fatal("ChatGLM must be generative with 4 stages")
	}
	if s.TPOT(0.5, 2) <= 0 || s.TPOT(0.5, 2) > s.SLO {
		t.Fatalf("ChatGLM TPOT at half GPU: %v", s.TPOT(0.5, 2))
	}
	w := s.GenerateWork(2, 16)
	if w <= s.PrefillWork {
		t.Fatal("generate work must include decode steps")
	}
}

func TestKneeCapAtLargeBatch(t *testing.T) {
	for _, s := range All() {
		if k := s.InferKnee(MaxIBS); k > 0.93 {
			t.Fatalf("%s: knee %v exceeds cap", s.Name, k)
		}
	}
}

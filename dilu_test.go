package dilu

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sys := NewSystem(Config{Nodes: 1, GPUsPerNode: 2, Seed: 5})
	f, err := sys.DeployInference("rob", "RoBERTa-large", InferOpts{
		Arrivals: Poisson{RPS: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	tj, err := sys.DeployTraining("bert", "BERT-base", TrainOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(30 * Second)
	if f.Served() < 400 {
		t.Fatalf("served %d", f.Served())
	}
	if tj.Throughput(sys.Eng.Now()) <= 0 {
		t.Fatal("training made no progress")
	}
}

func TestPublicAPICatalog(t *testing.T) {
	if len(Models()) != 7 {
		t.Fatalf("catalog size %d", len(Models()))
	}
	if ModelByName("LLaMA2-7B").ParamsGB != 12.6 {
		t.Fatal("catalog lookup broken")
	}
}

func TestPublicAPIProfiling(t *testing.T) {
	p := ProfileInference("RoBERTa-large")
	if p.SMReq <= 0 || p.SMReq > p.SMLim || p.IBS < 1 || p.ServingRPS <= 0 {
		t.Fatalf("bad inference profile %+v", p)
	}
	q := ProfileTraining("GPT2-large")
	if q.SMReq <= 0 || q.SMReq > q.SMLim {
		t.Fatalf("bad training profile %+v", q)
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 34 {
		t.Fatalf("expected 34 experiment drivers, got %d", len(exps))
	}
	if _, err := ExperimentByID("table2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("bogus id accepted")
	}
	rep := mustExperiment(t, "table2")
	if rep.Table("Table 2.") == nil {
		t.Fatal("table2 report missing its table")
	}
}

func mustExperiment(t *testing.T, id string) *Report {
	t.Helper()
	d, err := ExperimentByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return d.Run(ExperimentOptions{Scale: 0.1, Seed: 1})
}

func TestNewSystemErrRejectsBadConfig(t *testing.T) {
	if _, err := NewSystemErr(Config{Policy: "bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

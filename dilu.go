// Package dilu is a Go reproduction of "Dilu: Enabling GPU
// Resourcing-on-Demand for Serverless DL Serving via Introspective
// Elasticity" (ASPLOS 2025).
//
// It implements the paper's full stack — multi-factor profiling with
// pruning search (§3.2), resourcing-complementary scheduling
// (Algorithm 1, §3.3), and adaptive 2D co-scaling built on a per-GPU
// real-time kernel manager (Algorithm 2, §3.4) — together with every
// baseline of the evaluation (Exclusive, MPS-l/-r, TGS, FaST-GS+,
// INFless+-l/-r) on a deterministic discrete-time GPU cluster simulator
// that substitutes for the paper's A100 testbed (see DESIGN.md).
//
// The root package re-exports the public API; the quickest way in:
//
//	sys := dilu.NewSystem(dilu.Config{Nodes: 2, GPUsPerNode: 4})
//	f, _ := sys.DeployInference("rob", "RoBERTa-large", dilu.InferOpts{
//	    Arrivals: dilu.Poisson{RPS: 30},
//	})
//	tj, _ := sys.DeployTraining("bert", "BERT-base", dilu.TrainOpts{Workers: 2})
//	sys.Run(2 * dilu.Minute)
//	fmt.Println(f.Rec.P95(), tj.Throughput(sys.Eng.Now()))
//
// Every table and figure of the paper's evaluation can be regenerated
// through the experiments registry (see cmd/dilu-bench and
// EXPERIMENTS.md).
package dilu

import (
	"dilu/internal/core"
	"dilu/internal/experiments"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

// Re-exported virtual-time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Core system types.
type (
	// Config selects the system variant (token policy, scheduler,
	// scaler) and testbed dimensions.
	Config = core.Config
	// System is a fully wired serverless DL serving stack.
	System = core.System
	// InferOpts configures an inference function deployment.
	InferOpts = core.InferOpts
	// TrainOpts configures a training job deployment.
	TrainOpts = core.TrainOpts
	// Function is a deployed inference function.
	Function = core.Function
	// TrainingJob is a deployed training job.
	TrainingJob = core.TrainingJob
)

// Workload generators.
type (
	// Arrivals is a deterministic request arrival process.
	Arrivals = workload.Arrivals
	// Poisson is a homogeneous Poisson arrival process.
	Poisson = workload.Poisson
	// Gamma is a Gamma-renewal process parameterized by CV.
	Gamma = workload.Gamma
	// Bursty is the Azure-style bursty trace class.
	Bursty = workload.Bursty
	// Periodic is the Azure-style periodic trace class.
	Periodic = workload.Periodic
	// Sporadic is the Azure-style sporadic trace class.
	Sporadic = workload.Sporadic
)

// Profiling.
type (
	// Profile is a function's resourcing metadata (⟨request, limit⟩,
	// IBS, memory, serving capacity).
	Profile = profiler.Profile
	// ModelSpec describes a DL model's performance behaviour.
	ModelSpec = model.Spec
)

// Experiment harness.
type (
	// ExperimentOptions scale experiment runs.
	ExperimentOptions = experiments.Options
	// Experiment regenerates one paper table or figure.
	Experiment = experiments.Driver
	// Report is a rendered experiment result.
	Report = report.Report
)

// NewSystem builds a system, panicking on configuration errors. Use
// core semantics: zero-value Config gives the full Dilu stack on a
// 5-node × 4-GPU cluster.
func NewSystem(cfg Config) *System { return core.MustSystem(cfg) }

// NewSystemErr builds a system, returning configuration errors.
func NewSystemErr(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Models returns the built-in DL model catalog (ResNet152, VGG19,
// BERT-base, RoBERTa-large, GPT2-large, LLaMA2-7B, ChatGLM3-6B).
func Models() []*ModelSpec { return model.All() }

// ModelByName looks up a catalog model; it panics on unknown names.
func ModelByName(name string) *ModelSpec { return model.ByName(name) }

// ProfileInference runs Dilu's HGSS profiling for a model.
func ProfileInference(modelName string) Profile {
	return profiler.For(model.ByName(modelName), profiler.RoleInference)
}

// ProfileTraining runs Dilu's binary-search profiling for a model.
func ProfileTraining(modelName string) Profile {
	return profiler.For(model.ByName(modelName), profiler.RoleTraining)
}

// Experiments returns every paper-artifact driver in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one driver (e.g. "table2", "figure7").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

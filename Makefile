# Local targets mirror the workflows exactly: `make ci` runs every gate
# the push/PR workflow (.github/workflows/ci.yml) enforces — including
# the bench-smoke/bench-gate job via `ci-bench` — and `make nightly`
# runs the scheduled slow-path gates of nightly.yml (full non-short
# suite, hyperscale benchmark, manifest determinism check).

GO ?= go

.PHONY: build test test-short test-race-subsys cover-check bench bench-quick bench-gate \
	bench-baseline bench-hyperscale manifest-check vet fmt-check ci ci-bench nightly

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detected pass over the invariant checkers, the workload
# subsystem (trace parsing, generators), the cluster index property
# tests, and the sharded-engine order/barrier/mailbox properties — fast
# enough for the check gate, where the full -race suite is not.
test-race-subsys:
	$(GO) test -race ./internal/sim/... ./internal/simtest/... ./internal/workload/... ./internal/cluster/...

# Coverage floor over the library packages: the short tier with a
# profile, gated against the committed floor in bench/coverage-floor.txt.
# The floor is a ratchet, not a target — raise it when coverage rises,
# never lower it to make a PR pass. Uses only go tool cover + awk so the
# gate runs on the bare CI image.
COVER_OUT ?= /tmp/dilu-cover.out
cover-check:
	$(GO) test -short -coverprofile $(COVER_OUT) ./internal/...
	@total=$$($(GO) tool cover -func $(COVER_OUT) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	floor=$$(cat bench/coverage-floor.txt); \
	echo "total coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the committed floor $$floor%"; exit 1; }

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-iteration sweep of the suite benchmarks with allocation counts, in
# benchstat-comparable form (-short keeps the hyperscale sizes out; run
# `make bench` for the full sweep). Compare against the committed
# baseline with
#   make bench-quick > /tmp/new.txt && benchstat bench/baseline.txt /tmp/new.txt
# (single-iteration numbers are noisy; treat benchstat deltas under ~20%
# as noise and re-run with -count before acting on them).
bench-quick:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x -benchmem .

# Pinned-benchmark regression gate: re-run the pinned benchmarks (best
# of -count 3 as the noise floor) and fail on >10% ns/op regression
# against bench/baseline.txt. cmd/bench-gate is the dependency-free
# benchstat stand-in. The -bench regex is derived from
# PINNED_BENCHMARKS so the run set and the gated set cannot drift.
# Recipes avoid `test | tee` because the default shell has no pipefail —
# a crashing benchmark must fail the target even mid-log.
PINNED_BENCHMARKS = BenchmarkSchedulerThroughput BenchmarkFigure17_LargeScale BenchmarkSuiteQuickSerial BenchmarkGatewaySubmit BenchmarkGrayFailure BenchmarkColdStartStages BenchmarkLLMContinuousBatch BenchmarkShardedHyperscale
# The gate compares per-name best ns/op, and a sub-benchmarked pinned
# name emits timing lines only for its children — so the sharded
# hyperscale benchmark is gated by its two sub-benchmark paths while the
# -bench regex selects it by top-level name.
PINNED_GATE_NAMES = $(subst BenchmarkShardedHyperscale,BenchmarkShardedHyperscale/shards=1 BenchmarkShardedHyperscale/shards=all,$(PINNED_BENCHMARKS))
empty :=
space := $(empty) $(empty)
PINNED_BENCH_RE = ^($(subst $(space),|,$(strip $(PINNED_BENCHMARKS))))$$
BENCH_GATE_OUT ?= /tmp/dilu-bench-gate.txt
bench-gate:
	$(GO) test -run '^$$' -bench '$(PINNED_BENCH_RE)' -benchtime 1x -count 3 -benchmem . \
		> $(BENCH_GATE_OUT) || { cat $(BENCH_GATE_OUT); exit 1; }
	@cat $(BENCH_GATE_OUT)
	$(GO) run ./cmd/bench-gate -baseline bench/baseline.txt -new $(BENCH_GATE_OUT) -max-regress 0.10 $(PINNED_GATE_NAMES)

# Refresh the committed baseline after an intentional perf change: the
# full -short sweep for benchstat visibility, plus -count 3 of the
# pinned benchmarks so the gate's best-of-3 comparison is symmetric
# (bench-gate takes the per-name minimum across the whole file — a
# single unlucky baseline sample would otherwise inflate the tolerated
# regression by the run-to-run noise margin).
bench-baseline:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x -benchmem . > bench/baseline.txt
	$(GO) test -run '^$$' -bench '$(PINNED_BENCH_RE)' -benchtime 1x -count 3 -benchmem . >> bench/baseline.txt

# Hyperscale placement benchmark (40k GPUs / 32k instances): too heavy
# for the per-PR bench smoke (-short keeps it out), pinned nightly so
# the sub-linear placement claim stays guarded by automation.
BENCH_NIGHTLY_OUT ?= /tmp/dilu-bench-nightly.txt
bench-hyperscale:
	$(GO) test -run '^$$' -bench '^BenchmarkHyperscalePlacement$$' -benchtime 1x -benchmem . \
		> $(BENCH_NIGHTLY_OUT) || { cat $(BENCH_NIGHTLY_OUT); exit 1; }
	@cat $(BENCH_NIGHTLY_OUT)

# Full-registry manifest determinism check: every driver (slow tier
# included) runs serially, on all cores, and in sharded-replay mode at
# the golden scale; all manifests must be byte-identical. The shards
# axis (1 vs 2 vs all-core) is the determinism claim of the sharded
# engine — one run partitioned across cores, same bytes. This is the
# whole-registry extension of the committed quick/trace golden tests.
# The token-level drivers then get their own dedicated axis: continuous
# batching joins/preempts mid-stream and KV charge/release races would
# show up exactly here, so they are byte-compared in isolation too.
LLM_DRIVERS = llm_continuous_batch llm_kvcache_pressure
MANIFEST_DIR ?= /tmp
manifest-check:
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 1 -q -manifest $(MANIFEST_DIR)/dilu-manifest-serial.json
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 0 -q -manifest $(MANIFEST_DIR)/dilu-manifest-parallel.json
	cmp $(MANIFEST_DIR)/dilu-manifest-serial.json $(MANIFEST_DIR)/dilu-manifest-parallel.json
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 0 -shards 2 -q -manifest $(MANIFEST_DIR)/dilu-manifest-shards2.json
	cmp $(MANIFEST_DIR)/dilu-manifest-serial.json $(MANIFEST_DIR)/dilu-manifest-shards2.json
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 0 -shards 0 -q -manifest $(MANIFEST_DIR)/dilu-manifest-shardsall.json
	cmp $(MANIFEST_DIR)/dilu-manifest-serial.json $(MANIFEST_DIR)/dilu-manifest-shardsall.json
	@echo "manifest determinism: serial == parallel == shards=2 == shards=all"
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 1 -q -manifest $(MANIFEST_DIR)/dilu-manifest-llm-serial.json $(LLM_DRIVERS)
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 0 -q -manifest $(MANIFEST_DIR)/dilu-manifest-llm-parallel.json $(LLM_DRIVERS)
	cmp $(MANIFEST_DIR)/dilu-manifest-llm-serial.json $(MANIFEST_DIR)/dilu-manifest-llm-parallel.json
	$(GO) run ./cmd/dilu-bench -scale 0.1 -parallel 0 -shards 2 -q -manifest $(MANIFEST_DIR)/dilu-manifest-llm-shards2.json $(LLM_DRIVERS)
	cmp $(MANIFEST_DIR)/dilu-manifest-llm-serial.json $(MANIFEST_DIR)/dilu-manifest-llm-shards2.json
	@echo "LLM driver determinism: serial == parallel == shards=2"

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci-bench is the local mirror of the workflow's bench-smoke job: the
# one-iteration suite sweep, then the pinned-benchmark gate.
ci-bench: bench-quick bench-gate

ci: build vet fmt-check test-short test-race-subsys cover-check ci-bench

# nightly mirrors .github/workflows/nightly.yml: the slow path the
# per-PR workflow skips.
nightly: test bench-hyperscale manifest-check

# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same gates the push/PR workflow enforces.

GO ?= go

.PHONY: build test test-short bench vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build vet fmt-check test-short

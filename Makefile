# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same gates the push/PR workflow enforces.

GO ?= go

.PHONY: build test test-short test-race-subsys bench bench-quick vet fmt-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detected pass over the invariant checkers and the workload
# subsystem (trace parsing, generators) — fast enough for the check
# gate, where the full -race suite is not.
test-race-subsys:
	$(GO) test -race ./internal/simtest/... ./internal/workload/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-iteration sweep of the suite benchmarks with allocation counts, in
# benchstat-comparable form. Compare against the committed baseline with
#   make bench-quick > /tmp/new.txt && benchstat bench/baseline.txt /tmp/new.txt
# (single-iteration numbers are noisy; treat benchstat deltas under ~20%
# as noise and re-run with -count before acting on them).
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build vet fmt-check test-short test-race-subsys

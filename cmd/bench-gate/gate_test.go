package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: dilu
BenchmarkSchedulerThroughput-16     	       1	  52000000 ns/op	  1000000 B/op	    2000 allocs/op
BenchmarkSchedulerThroughput-16     	       1	  48000000 ns/op	  1000000 B/op	    2000 allocs/op
BenchmarkSchedulerThroughput-16     	       1	  51000000 ns/op	  1000000 B/op	    2000 allocs/op
BenchmarkFigure17_LargeScale-16     	       1	 900000000 ns/op
BenchmarkSuiteQuickSerial           	       1	 300000000 ns/op
PASS
ok  	dilu	3.1s
`

func TestBestNsOpStripsGOMAXPROCSAndTakesMinimum(t *testing.T) {
	got, err := bestNsOp(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	// The -16 suffix is stripped; the best of the three -count runs wins.
	if v := got["BenchmarkSchedulerThroughput"]; v != 48000000 {
		t.Fatalf("best ns/op = %v, want 48000000", v)
	}
	// Names without a GOMAXPROCS suffix parse as-is.
	if v := got["BenchmarkSuiteQuickSerial"]; v != 300000000 {
		t.Fatalf("unsuffixed benchmark = %v, want 300000000", v)
	}
	if _, ok := got["BenchmarkSchedulerThroughput-16"]; ok {
		t.Fatal("suffixed name leaked into the map")
	}
}

func TestStripGOMAXPROCS(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo-128":    "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar", // sub-benchmark, not a proc count
		"BenchmarkFoo/sub-4":  "BenchmarkFoo/sub",
		"BenchmarkFoo/sub-x4": "BenchmarkFoo/sub-x4",
	}
	for in, want := range cases {
		if got := stripGOMAXPROCS(in); got != want {
			t.Fatalf("stripGOMAXPROCS(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	oldBest := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200}
	newBest := map[string]float64{"BenchmarkA": 108, "BenchmarkB": 150}
	var out strings.Builder
	if failed := runGate(&out, oldBest, newBest, []string{"BenchmarkA", "BenchmarkB"}, 0.10); failed {
		t.Fatalf("gate failed within threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "+8.0%") {
		t.Fatalf("delta missing from table:\n%s", out.String())
	}
	// The delta table and verdict must show on PASS too, not only on FAIL.
	if !strings.Contains(out.String(), "PASS: 2 pinned benchmark(s)") {
		t.Fatalf("PASS summary missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("per-row ok marker missing:\n%s", out.String())
	}
}

func TestGateFailsBeyondThreshold(t *testing.T) {
	oldBest := map[string]float64{"BenchmarkA": 100}
	newBest := map[string]float64{"BenchmarkA": 111}
	var out strings.Builder
	if failed := runGate(&out, oldBest, newBest, []string{"BenchmarkA"}, 0.10); !failed {
		t.Fatalf("gate passed an +11%% regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("verdict missing FAIL marker:\n%s", out.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	oldBest := map[string]float64{"BenchmarkA": 100}
	// Present in the baseline but absent from the fresh log (renamed or
	// deleted) — must fail, never silently pass.
	var out strings.Builder
	if failed := runGate(&out, oldBest, map[string]float64{}, []string{"BenchmarkA"}, 0.10); !failed {
		t.Fatal("gate passed with the benchmark missing from the new log")
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("verdict missing MISSING marker:\n%s", out.String())
	}
	// And the symmetric direction: a benchmark with no baseline entry.
	out.Reset()
	if failed := runGate(&out, map[string]float64{}, map[string]float64{"BenchmarkA": 90}, []string{"BenchmarkA"}, 0.10); !failed {
		t.Fatal("gate passed with the benchmark missing from the baseline")
	}
}

func TestGateImprovementNeverFails(t *testing.T) {
	var out strings.Builder
	if failed := runGate(&out, map[string]float64{"BenchmarkA": 100}, map[string]float64{"BenchmarkA": 50}, []string{"BenchmarkA"}, 0.10); failed {
		t.Fatalf("gate failed a 2× improvement:\n%s", out.String())
	}
}

// Command bench-gate compares a fresh `go test -bench` log against the
// committed baseline (bench/baseline.txt) and fails on material ns/op
// regressions of pinned benchmarks — the CI teeth behind "don't slow
// the placement path back down".
//
//	bench-gate -baseline bench/baseline.txt -new /tmp/bench.txt \
//	    BenchmarkSchedulerThroughput BenchmarkFigure17_LargeScale
//
// It is a deliberately dependency-free stand-in for benchstat (the CI
// image bakes no external Go tools): per benchmark it takes the best
// (minimum) ns/op across -count repetitions on each side — the usual
// noise floor estimator for single-machine runs — and gates on the
// ratio. Benchmarks missing from either side fail the gate: a renamed
// or deleted pinned benchmark must be an explicit baseline update, not
// a silent pass.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// bestNsOp parses a Go benchmark log and returns, per benchmark name
// (GOMAXPROCS suffix stripped), the minimum ns/op seen.
func bestNsOp(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iterations, value, "ns/op", ...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if best, ok := out[name]; !ok || v < best {
				out[name] = v
			}
			break
		}
	}
	return out, sc.Err()
}

func main() {
	baseline := flag.String("baseline", "bench/baseline.txt", "committed baseline benchmark log")
	fresh := flag.String("new", "", "freshly produced benchmark log to gate")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum tolerated ns/op regression (0.10 = +10%)")
	flag.Parse()
	if *fresh == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-gate -baseline old.txt -new new.txt Benchmark1 [Benchmark2 ...]")
		os.Exit(2)
	}
	oldBest, err := bestNsOp(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		os.Exit(2)
	}
	newBest, err := bestNsOp(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		os.Exit(2)
	}
	failed := false
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark (best ns/op)", "baseline", "new", "delta")
	for _, name := range flag.Args() {
		o, okO := oldBest[name]
		n, okN := newBest[name]
		switch {
		case !okO || !okN:
			fmt.Printf("%-40s %14s %14s %8s\n", name, mark(okO, o), mark(okN, n), "MISSING")
			failed = true
		default:
			delta := n/o - 1
			verdict := fmt.Sprintf("%+.1f%%", delta*100)
			if delta > *maxRegress {
				verdict += " FAIL"
				failed = true
			}
			fmt.Printf("%-40s %14.0f %14.0f %8s\n", name, o, n, verdict)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "bench-gate: regression beyond %.0f%% (or missing benchmark); "+
			"if intentional, refresh the baseline with `make bench-baseline`\n", *maxRegress*100)
		os.Exit(1)
	}
}

func mark(ok bool, v float64) string {
	if !ok {
		return "—"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

// Command bench-gate compares a fresh `go test -bench` log against the
// committed baseline (bench/baseline.txt) and fails on material ns/op
// regressions of pinned benchmarks — the CI teeth behind "don't slow
// the placement path back down".
//
//	bench-gate -baseline bench/baseline.txt -new /tmp/bench.txt \
//	    BenchmarkSchedulerThroughput BenchmarkFigure17_LargeScale
//
// It is a deliberately dependency-free stand-in for benchstat (the CI
// image bakes no external Go tools): per benchmark it takes the best
// (minimum) ns/op across -count repetitions on each side — the usual
// noise floor estimator for single-machine runs — and gates on the
// ratio. Benchmarks missing from either side fail the gate: a renamed
// or deleted pinned benchmark must be an explicit baseline update, not
// a silent pass. The parse/compare logic lives in gate.go and is unit
// tested.
package main

import (
	"flag"
	"fmt"
	"os"
)

func bestNsOpFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bestNsOp(f)
}

func main() {
	baseline := flag.String("baseline", "bench/baseline.txt", "committed baseline benchmark log")
	fresh := flag.String("new", "", "freshly produced benchmark log to gate")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum tolerated ns/op regression (0.10 = +10%)")
	flag.Parse()
	if *fresh == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-gate -baseline old.txt -new new.txt Benchmark1 [Benchmark2 ...]")
		os.Exit(2)
	}
	oldBest, err := bestNsOpFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		os.Exit(2)
	}
	newBest, err := bestNsOpFile(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-gate: %v\n", err)
		os.Exit(2)
	}
	if runGate(os.Stdout, oldBest, newBest, flag.Args(), *maxRegress) {
		fmt.Fprintf(os.Stderr, "bench-gate: regression beyond %.0f%% (or missing benchmark); "+
			"if intentional, refresh the baseline with `make bench-baseline`\n", *maxRegress*100)
		os.Exit(1)
	}
}

package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// bestNsOp parses a Go benchmark log and returns, per benchmark name
// (GOMAXPROCS suffix stripped), the minimum ns/op seen — the usual
// noise floor estimator across -count repetitions.
func bestNsOp(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iterations, value, "ns/op", ...
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripGOMAXPROCS(fields[0])
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			if best, ok := out[name]; !ok || v < best {
				out[name] = v
			}
			break
		}
	}
	return out, sc.Err()
}

// stripGOMAXPROCS removes the "-N" parallelism suffix Go appends to
// benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo") while leaving
// hyphenated sub-benchmark names intact.
func stripGOMAXPROCS(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// runGate compares the two best-ns/op maps over the pinned benchmark
// names, writing the verdict table to w. It reports failure when any
// pinned benchmark regresses past maxRegress or is missing from either
// side — a renamed or deleted pinned benchmark must be an explicit
// baseline update, not a silent pass.
func runGate(w io.Writer, oldBest, newBest map[string]float64, names []string, maxRegress float64) bool {
	nfail := 0
	worst := 0.0
	fmt.Fprintf(w, "%-40s %14s %14s %12s\n", "benchmark (best ns/op)", "baseline", "new", "delta")
	for _, name := range names {
		o, okO := oldBest[name]
		n, okN := newBest[name]
		switch {
		case !okO || !okN:
			fmt.Fprintf(w, "%-40s %14s %14s %12s\n", name, mark(okO, o), mark(okN, n), "MISSING")
			nfail++
		default:
			delta := n/o - 1
			if delta > worst {
				worst = delta
			}
			verdict := fmt.Sprintf("%+.1f%% ok", delta*100)
			if delta > maxRegress {
				verdict = fmt.Sprintf("%+.1f%% FAIL", delta*100)
				nfail++
			}
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %12s\n", name, o, n, verdict)
		}
	}
	if nfail > 0 {
		fmt.Fprintf(w, "FAIL: %d of %d pinned benchmark(s) regressed past +%.0f%% (or went missing)\n",
			nfail, len(names), maxRegress*100)
	} else {
		fmt.Fprintf(w, "PASS: %d pinned benchmark(s) within +%.0f%% of baseline (worst %+.1f%%)\n",
			len(names), maxRegress*100, worst*100)
	}
	return nfail > 0
}

func mark(ok bool, v float64) string {
	if !ok {
		return "—"
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

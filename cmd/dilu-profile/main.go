// Command dilu-profile runs Dilu's multi-factor profiling (§3.2) for
// catalog models and prints the resulting ⟨request, limit⟩ quotas,
// inference batch sizes and search costs, with optional comparison
// against the Table 2 baseline searchers.
//
//	dilu-profile                       # profile every model, both roles
//	dilu-profile -model RoBERTa-large  # one model
//	dilu-profile -compare              # include Traversal/GPUlet/INFless
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/report"
)

func main() {
	name := flag.String("model", "", "profile a single model (default: all)")
	compare := flag.Bool("compare", false, "compare search methods (Table 2)")
	flag.Parse()

	var specs []*model.Spec
	if *name != "" {
		found := false
		for _, s := range model.All() {
			if s.Name == *name {
				specs = append(specs, s)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown model %q; available: %s\n",
				*name, strings.Join(model.Names(), ", "))
			os.Exit(2)
		}
	} else {
		specs = model.All()
	}

	t := report.NewTable("Dilu multi-factor profiles",
		"model", "role", "request", "limit", "IBS", "mem MB", "serving RPS", "trials")
	for _, s := range specs {
		pi := profiler.For(s, profiler.RoleInference)
		t.AddRow(s.Name, "inference", pi.SMReq, pi.SMLim, pi.IBS, pi.MemMB, pi.ServingRPS, pi.Trials)
		pt := profiler.For(s, profiler.RoleTraining)
		t.AddRow(s.Name, "training", pt.SMReq, pt.SMLim, "-", pt.MemMB, "-", pt.Trials)
	}
	fmt.Print(t.String())

	if *compare {
		c := report.NewTable("\nSearch method comparison (trials)",
			"model", "Traversal", "INFless", "GPUlet", "Dilu")
		for _, s := range specs {
			c.AddRow(s.Name,
				profiler.Traversal(s).Trials,
				profiler.INFless(s).Trials,
				profiler.GPUlet(s).Trials,
				profiler.HGSS(s).Trials)
		}
		fmt.Print(c.String())
	}
}

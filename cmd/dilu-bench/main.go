// Command dilu-bench regenerates the paper's evaluation tables and
// figures through the parallel experiment harness. Without arguments it
// runs every experiment; pass experiment ids (e.g. "table2 figure7") to
// run a subset.
//
//	dilu-bench -scale 1.0                 # full-length runs (EXPERIMENTS.md)
//	dilu-bench -scale 0.25 figure10       # quick look at one artifact
//	dilu-bench -parallel 8                # drain the suite on 8 workers
//	dilu-bench -tier quick                # sub-second smoke subset
//	dilu-bench -seeds 1,2,3 figure9       # multi-seed sweep of one driver
//	dilu-bench -shards 0 hyperscale_max   # sharded replay on all cores
//	dilu-bench -trace prod.csv            # replay an external arrival trace
//	dilu-bench -churn ops.csv -faults gray.csv  # replay a recorded incident
//	dilu-bench -out results -manifest results/manifest.json
//	dilu-bench -list
//
// Progress lines go to stderr; reports and the timing summary go to
// stdout (or to -out when set). The manifest is deterministic for a
// given driver set, seeds, and scale — identical bytes regardless of
// -parallel — and records a fingerprint per run so reproducibility is
// checkable with a diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dilu/internal/experiments"
	"dilu/internal/harness"
	"dilu/internal/report"
	"dilu/internal/workload"
)

func main() { os.Exit(run()) }

// run is main's body; it returns the process exit code instead of
// calling os.Exit so deferred profile writers always flush.
func run() int {
	scale := flag.Float64("scale", 1.0, "experiment duration scale (1.0 = full runs)")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	seeds := flag.String("seeds", "", "comma-separated seed sweep (overrides -seed), e.g. 1,2,3")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count (1 = serial)")
	shards := flag.Int("shards", 1, "shard count for the large-scale replay drivers (0 = all cores, 1 = serial); results are byte-identical at any value")
	timeout := flag.Duration("timeout", 0, "per-driver wall-clock timeout (0 = none), e.g. 5m")
	failFast := flag.Bool("failfast", false, "stop dispatching after the first failure")
	tier := flag.String("tier", "", "run only these cost tiers (comma-separated: quick,standard,slow)")
	tracePath := flag.String("trace", "", "replay this arrival trace file (.csv or .json) through the trace_replay scenario instead of running registry drivers")
	churnPath := flag.String("churn", "", "replay this churn schedule CSV (seconds,action,node) through the disturbance_replay scenario instead of running registry drivers; combinable with -faults")
	faultsPath := flag.String("faults", "", "replay this fault schedule CSV (seconds,action,node,gpu[,factor]) through the disturbance_replay scenario instead of running registry drivers; combinable with -churn")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "report format: text, csv, json")
	outDir := flag.String("out", "", "write per-run reports and the manifest into this directory")
	manifestPath := flag.String("manifest", "", "write the suite manifest JSON to this path")
	quiet := flag.Bool("q", false, "suppress live progress lines")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the suite run to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the suite) to this path")
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-12s %-9s %s\n", d.ID, d.Tier, d.Paper)
		}
		return 0
	}

	// Validate everything before running: a typo must not cost the user
	// a full suite run (bad format/ids/seeds), and a bad output path
	// must fail in milliseconds, not after the suite finishes.
	if _, ok := formats[*format]; !ok {
		fmt.Fprintf(os.Stderr, "dilu-bench: unknown format %q (valid: text, csv, json)\n", *format)
		return 2
	}
	drivers, err := selectDrivers(flag.Args(), *tier)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *tracePath != "" {
		// An external trace replaces the run set with one trace_replay
		// scenario over the loaded file. Mixing it with ids or tiers
		// would make the manifest ambiguous about what actually ran.
		if len(flag.Args()) > 0 || *tier != "" {
			fmt.Fprintln(os.Stderr, "dilu-bench: -trace cannot be combined with experiment ids or -tier")
			return 2
		}
		tr, err := workload.LoadTrace(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dilu-bench: "+err.Error())
			return 2
		}
		drivers = []experiments.Driver{{
			ID:    "trace_replay",
			Paper: fmt.Sprintf("external trace replay — %s (%d events)", *tracePath, tr.Count()),
			Tier:  experiments.TierStandard,
			Run:   func(o experiments.Options) *report.Report { return experiments.TraceReplayOn(o, tr) },
		}}
	}
	if *churnPath != "" || *faultsPath != "" {
		// External disturbance schedules replace the run set with one
		// disturbance_replay scenario, mirroring -trace. The two flags
		// compose (a real incident usually has both kinds of events) but
		// mixing with ids, tiers, or -trace would make the manifest
		// ambiguous about what actually ran.
		if len(flag.Args()) > 0 || *tier != "" || *tracePath != "" {
			fmt.Fprintln(os.Stderr, "dilu-bench: -churn/-faults cannot be combined with experiment ids, -tier, or -trace")
			return 2
		}
		var churn []workload.ChurnEvent
		var faults []workload.FaultEvent
		var desc []string
		if *churnPath != "" {
			churn, err = workload.LoadChurn(*churnPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dilu-bench: "+err.Error())
				return 2
			}
			desc = append(desc, fmt.Sprintf("%s (%d churn events)", *churnPath, len(churn)))
		}
		if *faultsPath != "" {
			faults, err = workload.LoadFaults(*faultsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dilu-bench: "+err.Error())
				return 2
			}
			desc = append(desc, fmt.Sprintf("%s (%d fault events)", *faultsPath, len(faults)))
		}
		drivers = []experiments.Driver{{
			ID:    "disturbance_replay",
			Paper: "external disturbance replay — " + strings.Join(desc, ", "),
			Tier:  experiments.TierStandard,
			Run: func(o experiments.Options) *report.Report {
				return experiments.DisturbanceReplayOn(o, churn, faults)
			},
		}}
	}
	seedList, err := parseSeeds(*seeds, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Resolve the defaulted manifest path up front so the probe covers
	// the common `-out dir` usage too; probing comes after every other
	// validation so a typo'd argument never touches existing outputs.
	mpath := *manifestPath
	if *outDir != "" && mpath == "" {
		mpath = filepath.Join(*outDir, "manifest.json")
	}
	if err := prepareOutputs(*outDir, mpath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Profiling brackets exactly the suite run: flag validation, report
	// emission, and the heap-profile write stay out of the CPU profile.
	// stopCPU runs right after harness.Run; the defer only covers early
	// exits in between.
	stopCPU := func() {}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dilu-bench: cannot write -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "dilu-bench: -cpuprofile: %v\n", err)
			return 2
		}
		stopped := false
		stopCPU = func() {
			if !stopped {
				stopped = true
				pprof.StopCPUProfile()
				pf.Close()
			}
		}
		defer stopCPU()
	}
	if *memProfile != "" {
		// Probe writability now; the profile itself is taken post-run.
		pf, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dilu-bench: cannot write -memprofile: %v\n", err)
			return 2
		}
		defer func() {
			runtime.GC() // materialize final heap statistics
			if err := pprof.Lookup("allocs").WriteTo(pf, 0); err != nil {
				fmt.Fprintf(os.Stderr, "dilu-bench: -memprofile: %v\n", err)
			}
			pf.Close()
		}()
	}

	nshards := *shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	jobs := harness.JobsSharded(drivers, seedList, *scale, nshards)
	cfg := harness.Config{
		Suite:    "dilu-bench",
		Parallel: *parallel,
		Timeout:  *timeout,
		FailFast: *failFast,
	}
	if !*quiet {
		cfg.OnEvent = progressPrinter()
	}

	outcome := harness.Run(cfg, jobs)
	stopCPU()

	if err := emit(outcome, *format, *outDir, mpath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	summarize(outcome)
	if outcome.Failed() {
		return 1
	}
	return 0
}

// selectDrivers resolves positional ids and the tier filter into the run
// set, preserving registry (paper) order. Naming a driver that the tier
// filter excludes is an error — a silent partial drop would let the user
// read the resulting manifest as covering a run that never happened.
func selectDrivers(ids []string, tierFlag string) ([]experiments.Driver, error) {
	var tiers []experiments.Tier
	if tierFlag != "" {
		for _, s := range strings.Split(tierFlag, ",") {
			t := experiments.Tier(strings.TrimSpace(s))
			if !t.Valid() {
				return nil, fmt.Errorf("dilu-bench: unknown tier %q (valid: quick, standard, slow)", s)
			}
			tiers = append(tiers, t)
		}
	}
	if len(ids) == 0 {
		if tiers == nil {
			return experiments.All(), nil
		}
		drivers := experiments.ByTier(tiers...)
		if len(drivers) == 0 {
			return nil, fmt.Errorf("dilu-bench: no drivers match tier filter %q", tierFlag)
		}
		return drivers, nil
	}
	inTier := map[string]bool{}
	for _, d := range experiments.ByTier(tiers...) {
		inTier[d.ID] = true
	}
	var drivers []experiments.Driver
	for _, id := range ids {
		d, err := experiments.ByID(id)
		if err != nil {
			return nil, err
		}
		if tiers != nil && !inTier[d.ID] {
			return nil, fmt.Errorf("dilu-bench: %s is %s tier, excluded by -tier %s", d.ID, d.Tier, tierFlag)
		}
		drivers = append(drivers, d)
	}
	return drivers, nil
}

func parseSeeds(sweep string, single int64) ([]int64, error) {
	if sweep == "" {
		return []int64{single}, nil
	}
	var out []int64
	for _, s := range strings.Split(sweep, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dilu-bench: bad seed %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// progressPrinter emits one live line per job completion to stderr.
func progressPrinter() func(harness.Event) {
	return func(ev harness.Event) {
		if ev.Type != harness.JobDone || ev.Result == nil {
			return
		}
		r := ev.Result
		line := fmt.Sprintf("[%d/%d] %-28s %-7s %6.1fs wall",
			ev.Done, ev.Total, r.Job.Key(), r.Status, r.Wall.Seconds())
		if r.Status == report.RunOK && r.Wall > 0 {
			line += fmt.Sprintf("  %8.0fs virtual (%.0f× real-time)",
				r.Virtual.Seconds(), r.Virtual.Seconds()/r.Wall.Seconds())
		}
		if r.Err != nil {
			line += "  " + r.Err.Error()
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// prepareOutputs creates -out and probes that the manifest's directory
// is writable before the suite runs, so a bad path fails in
// milliseconds instead of discarding a finished run. The probe never
// touches an existing manifest — a later validation failure or Ctrl-C
// must not destroy the previous good one.
func prepareOutputs(outDir, manifestPath string) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("dilu-bench: cannot create -out: %w", err)
		}
	}
	if manifestPath != "" {
		if fi, err := os.Stat(manifestPath); err == nil && fi.IsDir() {
			return fmt.Errorf("dilu-bench: -manifest %s is a directory", manifestPath)
		}
		probe, err := os.CreateTemp(filepath.Dir(manifestPath), ".dilu-bench-probe-*")
		if err != nil {
			return fmt.Errorf("dilu-bench: cannot write -manifest: %w", err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	return nil
}

// emit writes reports (stdout or -out files) and the manifest.
func emit(outcome *harness.Outcome, format, outDir, manifestPath string) error {
	f := formats[format]
	for _, res := range outcome.Results {
		if res.Status != report.RunOK {
			continue
		}
		body := f.render(res.Report)
		if outDir == "" {
			fmt.Print(body)
			fmt.Println()
			continue
		}
		name := strings.NewReplacer("/", "-", "=", "").Replace(res.Job.Key()) + f.ext
		if err := os.WriteFile(filepath.Join(outDir, name), []byte(body), 0o644); err != nil {
			return err
		}
	}
	if outDir != "" {
		timing := outcome.Manifest.TimingTable().String()
		if err := os.WriteFile(filepath.Join(outDir, "timings.txt"), []byte(timing), 0o644); err != nil {
			return err
		}
	}
	if manifestPath != "" {
		// Temp-and-rename keeps the previous manifest intact until the
		// new one is fully written.
		tmp, err := os.CreateTemp(filepath.Dir(manifestPath), ".dilu-bench-manifest-*")
		if err != nil {
			return err
		}
		werr := outcome.Manifest.WriteJSON(tmp)
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), manifestPath)
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return werr
		}
	}
	return nil
}

// formats is the single source of truth for -format: renderer + file
// extension. Adding a format means adding one entry here.
var formats = map[string]struct {
	render func(*report.Report) string
	ext    string
}{
	"text": {func(r *report.Report) string { return r.String() }, ".txt"},
	"csv":  {(*report.Report).CSV, ".csv"},
	"json": {(*report.Report).JSON, ".json"},
}

// summarize prints the suite roll-up and timing table to stderr, plus
// every non-ok run's error — unconditionally, so -q never swallows the
// reason behind a non-zero exit.
func summarize(outcome *harness.Outcome) {
	t := outcome.Manifest.Totals
	var virtual, busy float64
	for _, r := range outcome.Results {
		virtual += r.Virtual.Seconds()
		busy += r.Wall.Seconds()
		if r.Status != report.RunOK && r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", r.Job.Key(), r.Status, r.Err)
		}
	}
	fmt.Fprintf(os.Stderr, "\n%s\n", outcome.Manifest.TimingTable().String())
	fmt.Fprintf(os.Stderr,
		"suite: %d runs (%d ok, %d failed, %d timeout, %d skipped) in %.1fs wall; %.0fs virtual simulated (%.1f× real-time, %.1fx worker occupancy)\n",
		t.Runs, t.OK, t.Failed, t.Timeout, t.Skipped,
		outcome.Wall.Seconds(), virtual,
		virtual/max(outcome.Wall.Seconds(), 1e-9),
		busy/max(outcome.Wall.Seconds(), 1e-9))
}

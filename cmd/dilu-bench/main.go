// Command dilu-bench regenerates the paper's evaluation tables and
// figures. Without arguments it runs every experiment; pass experiment
// ids (e.g. "table2 figure7") to run a subset.
//
//	dilu-bench -scale 1.0            # full-length runs (EXPERIMENTS.md)
//	dilu-bench -scale 0.25 figure10  # quick look at one artifact
//	dilu-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dilu/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "experiment duration scale (1.0 = full runs)")
	seed := flag.Int64("seed", 1, "deterministic random seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, json")
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-12s %s\n", d.ID, d.Paper)
		}
		return
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	var drivers []experiments.Driver
	if flag.NArg() == 0 {
		drivers = experiments.All()
	} else {
		for _, id := range flag.Args() {
			d, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			drivers = append(drivers, d)
		}
	}
	for _, d := range drivers {
		start := time.Now()
		rep := d.Run(opts)
		switch *format {
		case "csv":
			if err := rep.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case "json":
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		default:
			fmt.Println(rep.String())
			fmt.Printf("[%s completed in %.1fs wall time]\n\n", d.ID, time.Since(start).Seconds())
		}
	}
}

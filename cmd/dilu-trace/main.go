// Command dilu-trace records per-second GPU traces (kernel-issue ratio,
// cumulative blocks, occupancy, offered RPS) for a training-inference
// collocation under a chosen token policy and emits them as CSV — the
// raw data behind Figures 13 and 14, ready for external plotting.
//
//	dilu-trace -system Dilu  -inf RoBERTa-large -train BERT-base -rps 10 > dilu.csv
//	dilu-trace -system MPS-r -inf RoBERTa-large -train BERT-base -rps 10 > mpsr.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"dilu/internal/core"
	"dilu/internal/rckm"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

func main() {
	system := flag.String("system", "Dilu", "token policy: Dilu, MPS-l, MPS-r, Exclusive, TGS, FaST-GS, Uncontrolled")
	infModel := flag.String("inf", "RoBERTa-large", "inference model")
	trainModel := flag.String("train", "BERT-base", "collocated training model")
	rps := flag.Float64("rps", 10, "mean inference request rate")
	cv := flag.Float64("cv", 1, "arrival coefficient of variation")
	dur := flag.Float64("dur", 50, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if _, err := rckm.PolicyByName(*system); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sys, err := core.NewSystem(core.Config{Nodes: 1, GPUsPerNode: 1, Policy: *system, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := sys.DeployTraining("t", *trainModel, core.TrainOpts{Workers: 1, Pin: []int{0}}); err != nil {
		fmt.Fprintln(os.Stderr, "training:", err)
		os.Exit(1)
	}
	f, err := sys.DeployInference("i", *infModel, core.InferOpts{
		Pin:      []int{0},
		Arrivals: workload.Gamma{RPS: *rps, CV: *cv},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inference:", err)
		os.Exit(1)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	_ = w.Write([]string{"seconds", "rps", "inf_kernel_ratio", "total_blocks", "occupancy", "inf_grant_frac", "train_grant_frac"})

	dev := sys.Clu.GPUs()[0].Dev
	var lastInf, lastTotal float64
	var next sim.Time = sim.Second
	arrived := 0
	sys.OnTick(func(now sim.Time) {
		if now < next {
			return
		}
		next += sim.Second
		var inf, tot, infGrant, trainGrant float64
		for _, r := range dev.Residents() {
			tot += r.TotalLaunched()
			if r.ID[0] == 'i' {
				inf += r.TotalLaunched()
				infGrant = r.GrantedLast() / dev.Capacity
			} else {
				trainGrant = r.GrantedLast() / dev.Capacity
			}
		}
		dInf, dTot := inf-lastInf, tot-lastTotal
		lastInf, lastTotal = inf, tot
		ratio := 0.0
		if dTot > 0 {
			ratio = dInf / dTot
		}
		served := int(f.Served())
		rpsNow := float64(served - arrived)
		arrived = served
		_ = w.Write([]string{
			fmt.Sprintf("%.0f", now.Seconds()),
			fmt.Sprintf("%.0f", rpsNow),
			fmt.Sprintf("%.4f", ratio),
			fmt.Sprintf("%.0f", tot),
			fmt.Sprintf("%.3f", dev.LastOccupancy()),
			fmt.Sprintf("%.3f", infGrant),
			fmt.Sprintf("%.3f", trainGrant),
		})
	})
	sys.Run(sim.FromSeconds(*dur))
}

// Command dilu-sim runs an ad-hoc serverless DL serving scenario: one
// inference function and one optional training job, collocated on a
// small GPU cluster under a chosen system variant, and prints the
// resulting QoS and utilization metrics.
//
//	dilu-sim -system Dilu -inf RoBERTa-large -rps 40 -cv 3 -train BERT-base
//	dilu-sim -system MPS-l -inf GPT2-large -rps 20 -dur 120
package main

import (
	"flag"
	"fmt"
	"os"

	"dilu/internal/core"
	"dilu/internal/rckm"
	"dilu/internal/scaler"
	"dilu/internal/sim"
	"dilu/internal/workload"
)

func main() {
	system := flag.String("system", "Dilu", "token policy: Dilu, MPS-l, MPS-r, Exclusive, TGS, FaST-GS, Uncontrolled")
	infModel := flag.String("inf", "RoBERTa-large", "inference model")
	trainModel := flag.String("train", "", "collocated training model (empty = none)")
	rps := flag.Float64("rps", 30, "mean inference request rate")
	cv := flag.Float64("cv", 1, "arrival coefficient of variation (1 = Poisson)")
	dur := flag.Float64("dur", 60, "simulated seconds")
	nodes := flag.Int("nodes", 1, "cluster nodes")
	gpus := flag.Int("gpus", 2, "GPUs per node")
	seed := flag.Int64("seed", 1, "random seed")
	autoscale := flag.Bool("autoscale", false, "enable Dilu's lazy horizontal scaler")
	flag.Parse()

	if _, err := rckm.PolicyByName(*system); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.Config{Nodes: *nodes, GPUsPerNode: *gpus, Policy: *system, Seed: *seed}
	if *autoscale {
		cfg.NewScaler = func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) }
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var tj *core.TrainingJob
	if *trainModel != "" {
		tj, err = sys.DeployTraining(*trainModel+"-train", *trainModel, core.TrainOpts{Workers: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "training deploy:", err)
			os.Exit(1)
		}
	}
	f, err := sys.DeployInference(*infModel+"-inf", *infModel, core.InferOpts{
		Arrivals: workload.Gamma{RPS: *rps, CV: *cv},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inference deploy:", err)
		os.Exit(1)
	}

	horizon := sim.FromSeconds(*dur)
	sys.Run(horizon)

	fmt.Printf("system          %s\n", *system)
	fmt.Printf("simulated       %.0fs on %d GPUs (%d occupied)\n",
		*dur, *nodes**gpus, sys.Clu.OccupiedCount())
	fmt.Printf("inference       %s: served=%d p50=%.1fms p95=%.1fms SVR=%.2f%% cold-starts=%d instances=%d\n",
		*infModel, f.Served(), f.Rec.P50().Millis(), f.Rec.P95().Millis(),
		f.Rec.ViolationRate()*100, f.ColdStarts.Value, f.InstancesActive())
	if tj != nil {
		fmt.Printf("training        %s: %.1f samples/s (%.0f%% of exclusive)\n",
			*trainModel, tj.Throughput(sys.Eng.Now()),
			100*tj.Throughput(sys.Eng.Now())/tj.Spec.TrainThroughput(1.0))
	}
	var occ float64
	n := 0
	for _, g := range sys.Clu.ActiveGPUs() {
		occ += g.Dev.MeanOccupancy()
		n++
	}
	if n > 0 {
		fmt.Printf("mean SM busy    %.1f%% across %d active GPUs\n", occ/float64(n)*100, n)
	}
}

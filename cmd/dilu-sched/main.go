// Command dilu-sched exercises the cluster schedulers at scale: it
// replays a heterogeneous instance mix (training : LLM inference :
// non-LLM inference = 2:2:6, as in §5.5) through a chosen scheduler on a
// large cluster and reports occupancy, fragmentation, and decision
// latency.
//
//	dilu-sched -scheduler Dilu -instances 3200 -nodes 1000
//	dilu-sched -scheduler Exclusive -instances 800
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dilu/internal/cluster"
	"dilu/internal/experiments"
	"dilu/internal/sched"
)

func main() {
	name := flag.String("scheduler", "Dilu", "Dilu, Exclusive, INFless+-l, INFless+-r, FaST-GS+")
	instances := flag.Int("instances", 3200, "instances to place")
	nodes := flag.Int("nodes", 1000, "cluster nodes (4 GPUs each)")
	gamma := flag.Float64("gamma", 1.5, "oversubscription coefficient (Dilu only)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	clu := cluster.New(cluster.Config{Nodes: *nodes, GPUsPerNode: 4})
	var s sched.Scheduler
	switch *name {
	case "Dilu":
		s = sched.NewDilu(clu, sched.Options{Gamma: *gamma})
	case "Exclusive":
		s = sched.NewExclusive(clu)
	case "INFless+-l":
		s = sched.NewINFlessL(clu)
	case "INFless+-r":
		s = sched.NewINFlessR(clu)
	case "FaST-GS+":
		s = sched.NewFaSTGS(clu)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *name)
		os.Exit(2)
	}

	start := time.Now()
	placed := experiments.ScheduleBatchWith(s, *instances, *seed)
	elapsed := time.Since(start)

	st := clu.Snapshot()
	fmt.Printf("scheduler        %s\n", s.Name())
	fmt.Printf("placed           %d / %d instances in %.2fs (%.2f ms/decision)\n",
		placed, *instances, elapsed.Seconds(),
		float64(elapsed.Milliseconds())/float64(max(placed, 1)))
	fmt.Printf("occupied GPUs    %d / %d\n", st.OccupiedGPUs, st.TotalGPUs)
	fmt.Printf("SM fragmentation %.1f%%   memory fragmentation %.1f%%\n",
		st.SMFrag*100, st.MemFrag*100)
	fmt.Printf("mean density     %.2f request quota, %.1f%% memory per active GPU\n",
		st.MeanReq, st.MeanMem*100)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package dilu

import (
	"flag"
	"os"
	"testing"

	"dilu/internal/core"
	"dilu/internal/simtest"
)

// TestMain arms the simtest invariant checkers for the suite-level
// tests (golden manifests): every System built by a driver run from
// this package is verified on every fired tick. The checkers are
// read-only and do not affect tick activity, so golden manifest bytes
// are identical with and without them — which is itself part of what
// the golden tests pin.
//
// Benchmark invocations (-bench) stay unchecked: the per-tick scans
// would contaminate comparisons against bench/baseline.txt, which was
// recorded without checkers.
func TestMain(m *testing.M) {
	flag.Parse()
	if b := flag.Lookup("test.bench"); b == nil || b.Value.String() == "" {
		core.SetDefaultInvariantFactory(simtest.Checkers)
	}
	os.Exit(m.Run())
}

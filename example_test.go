package dilu_test

import (
	"fmt"

	"dilu"
)

// Example demonstrates the minimal serving loop: deploy one inference
// function and one training job on a Dilu-managed node, run a simulated
// minute, and read the QoS outcomes. Everything runs on deterministic
// virtual time.
func Example() {
	sys := dilu.NewSystem(dilu.Config{Nodes: 1, GPUsPerNode: 2, Seed: 42})
	f, _ := sys.DeployInference("roberta-serve", "RoBERTa-large", dilu.InferOpts{
		Arrivals: dilu.Poisson{RPS: 20},
	})
	tj, _ := sys.DeployTraining("bert-finetune", "BERT-base", dilu.TrainOpts{Workers: 1})
	sys.Run(dilu.Minute)

	fmt.Printf("requests served: %d (SVR %.1f%%)\n", f.Served(), f.Rec.ViolationRate()*100)
	fmt.Printf("training keeps >90%% of an exclusive GPU: %v\n",
		tj.Throughput(sys.Eng.Now()) > 0.9*tj.Spec.TrainThroughput(1.0))
	fmt.Printf("GPUs shared: %d occupied of %d\n", sys.Clu.OccupiedCount(), len(sys.Clu.GPUs()))
	// Output:
	// requests served: 1154 (SVR 0.0%)
	// training keeps >90% of an exclusive GPU: true
	// GPUs shared: 1 occupied of 2
}

// ExampleProfileInference shows Dilu's Hybrid Growth Search profiling a
// model: the resulting ⟨request, limit⟩ SM quotas and batch size are what
// the scheduler and the RCKM enforce at runtime.
func ExampleProfileInference() {
	p := dilu.ProfileInference("RoBERTa-large")
	fmt.Printf("request=%.2f limit=%.2f IBS=%d trials=%d\n", p.SMReq, p.SMLim, p.IBS, p.Trials)
	// Output:
	// request=0.20 limit=0.40 IBS=2 trials=7
}

// ExampleProfileTraining shows the binary-search training profiler: the
// request quota sustains 80% of exclusive throughput, the limit ~98%.
func ExampleProfileTraining() {
	p := dilu.ProfileTraining("GPT2-large")
	spec := dilu.ModelByName("GPT2-large")
	reqRatio := spec.TrainThroughput(p.SMReq) / spec.TrainThroughput(1.0)
	fmt.Printf("request sustains ~80%% of exclusive: %v\n", reqRatio > 0.76 && reqRatio < 0.86)
	// Output:
	// request sustains ~80% of exclusive: true
}

// ExampleExperiments enumerates the paper-artifact drivers.
func ExampleExperiments() {
	for _, d := range dilu.Experiments()[:3] {
		fmt.Println(d.ID)
	}
	// Output:
	// figure2
	// figure2cd
	// table2
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment
// driver at a reduced scale and reports domain metrics alongside wall
// time; `cmd/dilu-bench -scale 1` produces the full-length numbers
// recorded in EXPERIMENTS.md.
package dilu

import (
	"runtime"
	"testing"

	"dilu/internal/core"
	"dilu/internal/experiments"
	"dilu/internal/harness"
	"dilu/internal/model"
	"dilu/internal/profiler"
	"dilu/internal/sim"
)

// benchOpts keeps benchmark iterations short while preserving every
// experiment's structure.
func benchOpts() experiments.Options { return experiments.Options{Scale: 0.1, Seed: 1} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	d, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep := d.Run(benchOpts())
		if len(rep.Tables) == 0 && len(rep.Series) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// BenchmarkFigure2_Observations regenerates the Fig. 2(a,b) motivation
// measurements (over-provisioning, DDP idling, keep-alive waste).
func BenchmarkFigure2_Observations(b *testing.B) { runExperiment(b, "figure2") }

// BenchmarkFigure2_CoScalingToy regenerates the Fig. 2(c,d) toy
// co-scaling verification (Exclusive 4 GPUs vs collocated 3 GPUs).
func BenchmarkFigure2_CoScalingToy(b *testing.B) { runExperiment(b, "figure2cd") }

// BenchmarkTable2_ProfilingEfficiency regenerates the Table 2 search
// trial-count comparison.
func BenchmarkTable2_ProfilingEfficiency(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure4_TESurface regenerates the Fig. 4 throughput-efficacy
// surfaces with HGSS stars.
func BenchmarkFigure4_TESurface(b *testing.B) { runExperiment(b, "figure4") }

// BenchmarkFigure7_TrainInferCollocation regenerates the Fig. 7
// training-inference collocation comparison.
func BenchmarkFigure7_TrainInferCollocation(b *testing.B) { runExperiment(b, "figure7") }

// BenchmarkFigure8_InferInferCollocation regenerates the Fig. 8
// inference-inference collocation comparison.
func BenchmarkFigure8_InferInferCollocation(b *testing.B) { runExperiment(b, "figure8") }

// BenchmarkFigure9_TrainTrainCollocation regenerates the Fig. 9
// training-training aggregate-throughput comparison.
func BenchmarkFigure9_TrainTrainCollocation(b *testing.B) { runExperiment(b, "figure9") }

// BenchmarkFigure10_GammaCV regenerates the Fig. 10 p95-vs-CV sweep.
func BenchmarkFigure10_GammaCV(b *testing.B) { runExperiment(b, "figure10") }

// BenchmarkFigure11_Overhead regenerates the Fig. 11 vertical-scaling
// overhead study.
func BenchmarkFigure11_Overhead(b *testing.B) { runExperiment(b, "figure11") }

// BenchmarkFigure12_CoScalingTrace regenerates the Fig. 12 co-scaling
// trace analysis.
func BenchmarkFigure12_CoScalingTrace(b *testing.B) { runExperiment(b, "figure12") }

// BenchmarkTable3_HorizontalScaling regenerates the Table 3 CSC/SVR/SGT
// comparison.
func BenchmarkTable3_HorizontalScaling(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure13_KernelIssuing regenerates the Fig. 13 kernel issuing
// traces.
func BenchmarkFigure13_KernelIssuing(b *testing.B) { runExperiment(b, "figure13") }

// BenchmarkFigure14_TotalKernels regenerates the Fig. 14 total kernel
// count comparison.
func BenchmarkFigure14_TotalKernels(b *testing.B) { runExperiment(b, "figure14") }

// BenchmarkFigure15_EndToEnd regenerates the Fig. 15 end-to-end and
// ablation comparison.
func BenchmarkFigure15_EndToEnd(b *testing.B) { runExperiment(b, "figure15") }

// BenchmarkFigure16_AggregateThroughput regenerates the Fig. 16 per-GPU
// aggregate throughput comparison.
func BenchmarkFigure16_AggregateThroughput(b *testing.B) { runExperiment(b, "figure16") }

// BenchmarkFigure17_LargeScale regenerates the Fig. 17 1,000-node /
// 3,200-instance placement simulation.
func BenchmarkFigure17_LargeScale(b *testing.B) { runExperiment(b, "figure17") }

// BenchmarkFigure18_Sensitivity regenerates the Fig. 18 oversubscription
// and MaxTokens sensitivity sweeps.
func BenchmarkFigure18_Sensitivity(b *testing.B) { runExperiment(b, "figure18") }

// BenchmarkSchedulerThroughput measures Algorithm 1 placing 3,200
// heterogeneous instances on a 1,000-node cluster — the §5.3 scheduling
// overhead the paper reports as 1.12 s.
func BenchmarkSchedulerThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if placed := experiments.ScheduleBatch(3200, 1); placed < 3000 {
			b.Fatalf("placed only %d instances", placed)
		}
	}
}

// BenchmarkHyperscalePlacement demonstrates that placement cost tracks
// *feasible candidates*, not cluster size: the same 3,200-instance
// batch on 4k vs 40k GPUs costs nearly the same (a full-scan scheduler
// pays ~10× there), and the full 32k-instance hyperscale batch grows
// with the work actually placed. Excluded from CI's bench-smoke via
// -short (the 32k case dominates suite wall time); run it with
// `make bench` or `go test -bench HyperscalePlacement -benchtime 1x .`.
func BenchmarkHyperscalePlacement(b *testing.B) {
	if testing.Short() {
		b.Skip("hyperscale sizes are excluded from the short/CI bench sweep")
	}
	for _, bc := range []struct {
		name        string
		nodes, inst int
	}{
		{"nodes=1000/inst=3200", 1000, 3200},
		{"nodes=10000/inst=3200", 10000, 3200},
		{"nodes=10000/inst=32000", 10000, 32000},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if placed := experiments.ScheduleBatchOn(bc.nodes, bc.inst, 1); placed < bc.inst*9/10 {
					b.Fatalf("placed only %d/%d instances", placed, bc.inst)
				}
			}
		})
	}
}

// BenchmarkShardedHyperscale pins the sharded placement kernel on the
// 40k-GPU / 32k-instance hyperscale batch: shards=1 takes the serial
// scan paths, shards=all partitions the cluster across every core and
// fans the candidate scans out on the fork-join pool. Placements are
// bit-identical between the two (the shard-equivalence differentials
// guard that); the ratio of the two timings is the parallel speedup on
// the machine at hand. On a single-core host the two arms coincide —
// the gate then guards the sharded dispatch overhead instead.
func BenchmarkShardedHyperscale(b *testing.B) {
	if testing.Short() {
		b.Skip("hyperscale sizes are excluded from the short/CI bench sweep")
	}
	const nodes, inst = 10000, 32000
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 1},
		{"shards=all", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if placed := experiments.ScheduleBatchShardedOn(nodes, inst, 1, bc.shards); placed < inst*9/10 {
					b.Fatalf("placed only %d/%d instances", placed, inst)
				}
			}
		})
	}
}

// BenchmarkHGSS measures one hybrid-growth profiling search.
func BenchmarkHGSS(b *testing.B) {
	spec := model.ByName("RoBERTa-large")
	for i := 0; i < b.N; i++ {
		if r := profiler.HGSS(spec); r.IBS < 1 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkTrainingProfiler measures one binary-search profiling run.
func BenchmarkTrainingProfiler(b *testing.B) {
	spec := model.ByName("GPT2-large")
	for i := 0; i < b.N; i++ {
		if r := profiler.ProfileTraining(spec); r.Request <= 0 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkControllerAblation regenerates the DESIGN.md §4.6 controller
// ablation table (not a paper artifact; quantifies the interpretation
// choices against literal Algorithm 2).
func BenchmarkControllerAblation(b *testing.B) { runExperiment(b, "ablation-controller") }

// BenchmarkSLOSweep runs the SLO pressure sweep over production-shaped
// workloads (bursty, diurnal, Pareto) across the three schedulers.
func BenchmarkSLOSweep(b *testing.B) { runExperiment(b, "slo_sweep") }

// BenchmarkTraceReplay replays the committed sample trace against the
// three schedulers with full SLO accounting.
func BenchmarkTraceReplay(b *testing.B) { runExperiment(b, "trace_replay") }

// BenchmarkTenantMix runs the multi-tenant Zipf-skew mix across the
// three schedulers.
func BenchmarkTenantMix(b *testing.B) { runExperiment(b, "tenant_mix") }

// BenchmarkHeteroMix runs the heterogeneous 70/30 fleet placement
// comparison (normalized-utilization scheduling on mixed capacities).
func BenchmarkHeteroMix(b *testing.B) { runExperiment(b, "hetero_mix") }

// BenchmarkChurnRecovery runs the failure-wave scenario: eviction,
// cold relaunch and request requeue under the three serving systems.
func BenchmarkChurnRecovery(b *testing.B) { runExperiment(b, "churn_recovery") }

// BenchmarkRollingDrain runs the zero-downtime upgrade sweep
// (make-before-break migration off draining nodes).
func BenchmarkRollingDrain(b *testing.B) { runExperiment(b, "rolling_drain") }

// BenchmarkGrayFailure runs the three-arm gray-failure comparison:
// fault injection, timeout/retry/hedge resilience, and health-monitor
// quarantine all on the hot path of the mitigated arm.
func BenchmarkGrayFailure(b *testing.B) { runExperiment(b, "gray_failure") }

// BenchmarkStragglerTail runs the hedged-dispatch tail study under a
// pinned slow-GPU schedule.
func BenchmarkStragglerTail(b *testing.B) { runExperiment(b, "straggler_tail") }

// BenchmarkColdStartStages runs the three-arm staged cold-start
// comparison: stage decomposition, per-stage violation attribution, and
// kernel-cache warm pools all on the hot path of the cached arm.
func BenchmarkColdStartStages(b *testing.B) { runExperiment(b, "coldstart_stages") }

// BenchmarkLLMContinuousBatch runs the two-arm token-level serving
// comparison: continuous batching, per-step KV-cache charge/release,
// and the preemption/refusal machinery all sit on the hot path.
func BenchmarkLLMContinuousBatch(b *testing.B) { runExperiment(b, "llm_continuous_batch") }

// BenchmarkPrewarmPolicy runs the reactive-vs-prewarm ramp comparison
// with the rate-trend prewarming step on the sampling path.
func BenchmarkPrewarmPolicy(b *testing.B) { runExperiment(b, "prewarm_policy") }

// BenchmarkGatewaySubmit measures the gateway hot path — tenant ledger
// update, admission decision, dispatch into the serving plane — for
// submits that an always-full token bucket admits, on a warm function
// with a fixed two-instance pool. Each op is a batch of 10k submits so
// the single-iteration bench-gate run measures above the timer noise
// floor; divide ns/op by submitsPerOp for the per-submit cost.
func BenchmarkGatewaySubmit(b *testing.B) {
	const submitsPerOp = 10_000
	sys := core.MustSystem(core.Config{
		Nodes: 1, GPUsPerNode: 4, Seed: 1,
		Admission: core.NewTokenBucket(1e12, 1e12),
	})
	if _, err := sys.DeployInference("gw", "ResNet152", core.InferOpts{Instances: 2, NoScaler: true, Tenant: "bench"}); err != nil {
		b.Fatal(err)
	}
	sys.Run(sim.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sys.Eng.Now()
		for j := 0; j < submitsPerOp; j++ {
			if !sys.Submit(now, core.Request{Func: "gw", Tenant: "bench"}) {
				b.Fatal("bench bucket shed a request")
			}
		}
	}
}

// benchSuite drains the quick-tier drivers through the harness worker
// pool at the given parallelism; comparing the serial and all-core
// variants measures the suite-level speedup the harness buys.
func benchSuite(b *testing.B, parallel int) {
	b.Helper()
	drivers := experiments.ByTier(experiments.TierQuick)
	jobs := harness.Jobs(drivers, nil, 0.1)
	for i := 0; i < b.N; i++ {
		out := harness.Run(harness.Config{Suite: "bench", Parallel: parallel}, jobs)
		if out.Failed() {
			b.Fatalf("suite failed: %s", out.Manifest.JSON())
		}
	}
}

// BenchmarkSuiteQuickSerial runs the quick-tier suite on one worker.
func BenchmarkSuiteQuickSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteQuickParallel runs the quick-tier suite on all cores.
func BenchmarkSuiteQuickParallel(b *testing.B) { benchSuite(b, 0) }

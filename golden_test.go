package dilu

import (
	"os"
	"testing"

	"dilu/internal/experiments"
	"dilu/internal/harness"
)

// TestQuickTierGoldenManifest pins the quick-tier suite manifest
// (drivers × seed 1 × scale 0.1) to the exact bytes captured before the
// active-set/idle-fast-forward refactor of the simulation hot path
// (testdata/golden-quick.json). Determinism is the refactor's contract:
// skipping idle entities, fast-forwarding empty tick stretches, serving
// the scheduler from incremental indexes, and re-shaping the event queue
// must all be unobservable in results. The suite runs serially and on
// all cores; both must reproduce the golden bytes.
//
// Regenerate (only after an intentional semantic change):
//
//	go run ./cmd/dilu-bench -tier quick -scale 0.1 -parallel 1 -q -manifest testdata/golden-quick.json
func TestQuickTierGoldenManifest(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden-quick.json")
	if err != nil {
		t.Fatalf("golden manifest missing: %v", err)
	}
	jobs := harness.Jobs(experiments.ByTier(experiments.TierQuick), nil, 0.1)
	for _, parallel := range []int{1, 0} {
		out := harness.Run(harness.Config{Suite: "dilu-bench", Parallel: parallel}, jobs)
		if out.Failed() {
			t.Fatalf("parallel=%d: suite failed:\n%s", parallel, out.Manifest.JSON())
		}
		if got := out.Manifest.JSON(); got != string(golden) {
			t.Errorf("parallel=%d: manifest diverged from golden bytes\ngot:\n%s", parallel, got)
		}
	}
}

package dilu

import (
	"os"
	"testing"

	"dilu/internal/experiments"
	"dilu/internal/harness"
)

// TestQuickTierGoldenManifest pins the quick-tier suite manifest
// (drivers × seed 1 × scale 0.1) to the exact bytes captured before the
// active-set/idle-fast-forward refactor of the simulation hot path
// (testdata/golden-quick.json). Determinism is the refactor's contract:
// skipping idle entities, fast-forwarding empty tick stretches, serving
// the scheduler from incremental indexes, and re-shaping the event queue
// must all be unobservable in results. The suite runs serially and on
// all cores; both must reproduce the golden bytes.
//
// Regenerate (only after an intentional semantic change):
//
//	go run ./cmd/dilu-bench -tier quick -scale 0.1 -parallel 1 -q -manifest testdata/golden-quick.json
func TestQuickTierGoldenManifest(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden-quick.json")
	if err != nil {
		t.Fatalf("golden manifest missing: %v", err)
	}
	jobs := harness.Jobs(experiments.ByTier(experiments.TierQuick), nil, 0.1)
	for _, parallel := range []int{1, 0} {
		out := harness.Run(harness.Config{Suite: "dilu-bench", Parallel: parallel}, jobs)
		if out.Failed() {
			t.Fatalf("parallel=%d: suite failed:\n%s", parallel, out.Manifest.JSON())
		}
		if got := out.Manifest.JSON(); got != string(golden) {
			t.Errorf("parallel=%d: manifest diverged from golden bytes\ngot:\n%s", parallel, got)
		}
	}
}

// TestTraceReplayGoldenManifest pins the trace_replay driver — the
// committed sample trace replayed against all three schedulers, with the
// SLO block the harness lifts into the manifest — to exact bytes
// (testdata/golden-trace.json), serial and on all cores. Scenario
// determinism for the trace subsystem is thereby held to the same
// standard as the quick tier: parsing, per-function series compilation,
// replay through ScheduleSeries cursors, and SLO accounting must be
// bit-stable regardless of worker count.
//
// Regenerate (only after an intentional semantic change):
//
//	go run ./cmd/dilu-bench -scale 0.1 -parallel 1 -q -manifest testdata/golden-trace.json trace_replay
func TestTraceReplayGoldenManifest(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden-trace.json")
	if err != nil {
		t.Fatalf("golden manifest missing: %v", err)
	}
	d, err := experiments.ByID("trace_replay")
	if err != nil {
		t.Fatal(err)
	}
	jobs := harness.Jobs([]experiments.Driver{d}, nil, 0.1)
	for _, parallel := range []int{1, 0} {
		out := harness.Run(harness.Config{Suite: "dilu-bench", Parallel: parallel}, jobs)
		if out.Failed() {
			t.Fatalf("parallel=%d: suite failed:\n%s", parallel, out.Manifest.JSON())
		}
		if got := out.Manifest.JSON(); got != string(golden) {
			t.Errorf("parallel=%d: manifest diverged from golden bytes\ngot:\n%s", parallel, got)
		}
	}
}

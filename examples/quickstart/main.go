// Quickstart: deploy one inference function and one training job on a
// Dilu-managed 2-GPU node, run two simulated minutes, and print the QoS
// and utilization outcomes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dilu"
)

func main() {
	// A zero-ish Config gives the full Dilu stack: Algorithm 1
	// scheduling, per-GPU RCKM token control (Algorithm 2), and
	// deterministic virtual time.
	sys := dilu.NewSystem(dilu.Config{Nodes: 1, GPUsPerNode: 2, Seed: 42})

	// Profiling happens automatically at deployment: HGSS finds the
	// <SMR, IBS> star for inference, binary search the training quotas.
	f, err := sys.DeployInference("roberta-serve", "RoBERTa-large", dilu.InferOpts{
		Arrivals: dilu.Poisson{RPS: 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	tj, err := sys.DeployTraining("bert-finetune", "BERT-base", dilu.TrainOpts{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}

	sys.Run(2 * dilu.Minute)

	fmt.Println("== quickstart results (2 simulated minutes) ==")
	fmt.Printf("inference  %s: profile <req=%.2f lim=%.2f ibs=%d>\n",
		f.Name, f.Profile.SMReq, f.Profile.SMLim, f.Profile.IBS)
	fmt.Printf("           served=%d  p50=%.1fms  p95=%.1fms  SLO violations=%.2f%%\n",
		f.Served(), f.Rec.P50().Millis(), f.Rec.P95().Millis(), f.Rec.ViolationRate()*100)
	fmt.Printf("training   %s: profile <req=%.2f lim=%.2f>\n",
		tj.Name, tj.Profile.SMReq, tj.Profile.SMLim)
	fmt.Printf("           %.1f samples/s (%.0f%% of an exclusive GPU)\n",
		tj.Throughput(sys.Eng.Now()),
		100*tj.Throughput(sys.Eng.Now())/tj.Spec.TrainThroughput(1.0))
	fmt.Printf("cluster    %d of %d GPUs occupied — both functions share one GPU\n",
		sys.Clu.OccupiedCount(), len(sys.Clu.GPUs()))
}

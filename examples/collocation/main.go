// Collocation: reproduce a Figure-7-style training-inference collocation
// study interactively — the same pair of functions under every GPU-level
// baseline the paper compares (Exclusive, Dilu, MPS-l, MPS-r, TGS,
// FaST-GS), printing inference latency and collocated training
// throughput side by side.
//
//	go run ./examples/collocation
package main

import (
	"fmt"
	"log"

	"dilu"
	"dilu/internal/report"
)

func main() {
	const (
		infModel   = "RoBERTa-large"
		trainModel = "BERT-base"
		rps        = 20.0
		duration   = 90 * dilu.Second
	)

	t := report.NewTable(
		fmt.Sprintf("Training-inference collocation: %s inference @%.0f RPS + %s training",
			infModel, rps, trainModel),
		"system", "GPUs", "p50 ms", "p95 ms", "SVR %", "train samples/s", "train % of excl")

	var exclusiveThr float64
	for _, system := range []string{"Exclusive", "Dilu", "MPS-l", "MPS-r", "TGS", "FaST-GS"} {
		var sys *dilu.System
		var trainPin, infPin []int
		if system == "Exclusive" {
			// Dedicated GPUs: inference on GPU 1, training on GPU 0.
			sys = dilu.NewSystem(dilu.Config{Nodes: 1, GPUsPerNode: 2,
				Policy: "Exclusive", Scheduler: "Exclusive", Seed: 7})
			trainPin, infPin = []int{0}, []int{1}
		} else {
			// Shared single GPU under the baseline's token policy.
			sys = dilu.NewSystem(dilu.Config{Nodes: 1, GPUsPerNode: 1,
				Policy: system, Seed: 7})
			trainPin, infPin = []int{0}, []int{0}
		}
		tj, err := sys.DeployTraining("train", trainModel, dilu.TrainOpts{Workers: 1, Pin: trainPin})
		if err != nil {
			log.Fatal(err)
		}
		f, err := sys.DeployInference("serve", infModel, dilu.InferOpts{
			Pin:      infPin,
			Arrivals: dilu.Poisson{RPS: rps},
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.Run(duration)

		thr := tj.Throughput(sys.Eng.Now())
		if system == "Exclusive" {
			exclusiveThr = thr
		}
		t.AddRow(system, sys.Clu.OccupiedCount(),
			f.Rec.P50().Millis(), f.Rec.P95().Millis(), f.Rec.ViolationRate()*100,
			thr, 100*thr/exclusiveThr)
	}
	fmt.Print(t.String())
	fmt.Println("\nDilu keeps latency near Exclusive on half the GPUs while TGS nearly")
	fmt.Println("stops the training job and static MPS splits waste idle SMs.")
}

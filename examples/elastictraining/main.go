// Elastic training: the paper's §7 future-work direction — a
// data-parallel training job that grows workers into residual GPU
// capacity and retreats when inference needs protection. Watch the
// worker count rise while the cluster is idle, then fall when a bursty
// inference function claims its GPU.
//
//	go run ./examples/elastictraining
package main

import (
	"fmt"
	"log"

	"dilu"
	"dilu/internal/core"
	"dilu/internal/sim"
)

func main() {
	sys := dilu.NewSystem(dilu.Config{Nodes: 1, GPUsPerNode: 4, Seed: 9})

	tj, err := sys.DeployTraining("bert-elastic", "BERT-base", dilu.TrainOpts{
		Workers: 1,
		Elastic: &core.ElasticOpts{MinWorkers: 1, MaxWorkers: 4, Every: dilu.Second},
	})
	if err != nil {
		log.Fatal(err)
	}

	// After a quiet warm-up, a demanding inference function arrives.
	var f *dilu.Function
	sys.Eng.Schedule(40*dilu.Second, func(sim.Time) {
		var err error
		f, err = sys.DeployInference("rob-burst", "RoBERTa-large", dilu.InferOpts{
			Pin:      []int{3}, // lands on one of the borrowed GPUs
			Arrivals: dilu.Gamma{RPS: 55, CV: 3},
		})
		if err != nil {
			log.Fatal(err)
		}
	})

	fmt.Println("time    workers  train-samples/s  note")
	var next sim.Time = 10 * sim.Second
	sys.OnTick(func(now sim.Time) {
		if now < next {
			return
		}
		next += 10 * sim.Second
		note := ""
		switch {
		case now.Seconds() == 40:
			note = "<- inference function deployed"
		case now.Seconds() == 10:
			note = "growing into idle GPUs"
		}
		fmt.Printf("%5.0fs  %7d  %15.0f  %s\n",
			now.Seconds(), tj.Workers(), tj.Throughput(now), note)
	})
	sys.Run(120 * dilu.Second)

	fmt.Printf("\nfinal: %d workers, %.0f samples/s", tj.Workers(), tj.Throughput(sys.Eng.Now()))
	if f != nil {
		fmt.Printf("; inference p95=%.0fms SVR=%.2f%%", f.Rec.P95().Millis(), f.Rec.ViolationRate()*100)
	}
	fmt.Println()
	fmt.Println("the job borrowed idle GPUs while they lasted and gave them back under pressure.")
}

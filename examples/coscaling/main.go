// Co-scaling: drive a bursty Azure-style workload against the full Dilu
// stack (fast vertical scale-up + lazy horizontal scale-out) and print
// the resulting scaling timeline — a Figure-12-style trace.
//
//	go run ./examples/coscaling
package main

import (
	"fmt"
	"log"

	"dilu"
	"dilu/internal/core"
	"dilu/internal/scaler"
	"dilu/internal/sim"
)

func main() {
	cfg := dilu.Config{
		Nodes: 2, GPUsPerNode: 4, Seed: 11,
		// The lazy scaler: scale out only after φ_out=20 of 40 one-second
		// samples exceed deployed capacity; bursts shorter than that are
		// absorbed vertically by RCKM's EMERGENCY scale-up.
		NewScaler: func() scaler.Policy { return scaler.NewDilu(scaler.DiluConfig{}) },
	}
	sys := dilu.NewSystem(cfg)

	f, err := sys.DeployInference("roberta-serve", "RoBERTa-large", core.InferOpts{
		Arrivals: dilu.Bursty{
			BaseRPS: 30, Scale: 3.5,
			BurstDur: 50 * dilu.Second, Quiet: 60 * dilu.Second,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Print a scaling timeline every 20 simulated seconds.
	fmt.Println("time    rps(off)  instances  served  p95(ms)  cold-starts")
	var next sim.Time = 20 * sim.Second
	sys.OnTick(func(now sim.Time) {
		if now < next {
			return
		}
		next += 20 * sim.Second
		rps := 0.0
		if n := f.RPSTrace.Len(); n > 0 {
			rps = f.RPSTrace.Points[n-1].Value
		}
		fmt.Printf("%5.0fs  %8.0f  %9d  %6d  %7.0f  %11d\n",
			now.Seconds(), rps, f.InstancesActive(), f.Served(),
			f.Rec.P95().Millis(), f.ColdStarts.Value)
	})
	sys.Run(400 * dilu.Second)

	fmt.Printf("\nfinal: served=%d SVR=%.2f%% cold-starts=%d peak instances=%.0f\n",
		f.Served(), f.Rec.ViolationRate()*100, f.ColdStarts.Value, f.InstTrace.Max())
	fmt.Println("bursts inside the 40s window are absorbed vertically; sustained load adds instances lazily.")
}

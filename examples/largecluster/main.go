// Large cluster: place a 2:2:6 training/LLM/inference mix on a
// 1,000-node (4,000-GPU) cluster under the three §5.5 schedulers and
// compare occupancy and fragmentation — a Figure-17-style study at
// whatever instance count you choose.
//
//	go run ./examples/largecluster
//	go run ./examples/largecluster -instances 3200
package main

import (
	"flag"
	"fmt"
	"time"

	"dilu/internal/cluster"
	"dilu/internal/experiments"
	"dilu/internal/report"
	"dilu/internal/sched"
)

func main() {
	instances := flag.Int("instances", 1600, "instances to place")
	flag.Parse()

	t := report.NewTable(
		fmt.Sprintf("Placing %d instances (train:LLM:inference = 2:2:6) on 1,000 nodes", *instances),
		"scheduler", "occupied GPUs", "SM frag %", "mem frag %", "decisions/s")

	builders := []struct {
		name string
		mk   func(*cluster.Cluster) sched.Scheduler
	}{
		{"Exclusive", func(c *cluster.Cluster) sched.Scheduler { return sched.NewExclusive(c) }},
		{"INFless+-l", func(c *cluster.Cluster) sched.Scheduler { return sched.NewINFlessL(c) }},
		{"Dilu", func(c *cluster.Cluster) sched.Scheduler { return sched.NewDilu(c, sched.Options{}) }},
	}
	var exclusiveGPUs int
	for _, b := range builders {
		clu := cluster.New(cluster.Config{Nodes: 1000, GPUsPerNode: 4})
		s := b.mk(clu)
		start := time.Now()
		placed := experiments.ScheduleBatchWith(s, *instances, 1)
		elapsed := time.Since(start).Seconds()
		st := clu.Snapshot()
		if b.name == "Exclusive" {
			exclusiveGPUs = st.OccupiedGPUs
		}
		t.AddRow(b.name, st.OccupiedGPUs, st.SMFrag*100, st.MemFrag*100,
			float64(placed)/elapsed)
	}
	fmt.Print(t.String())
	fmt.Printf("\nDilu's resourcing-complementary packing (Ω=1, γ=1.5) cuts GPU count\n")
	fmt.Printf("relative to Exclusive's %d GPUs while keeping the lowest SM fragmentation.\n", exclusiveGPUs)
}

module dilu

go 1.24
